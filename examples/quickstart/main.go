// Quickstart: persistent static variables, pmalloc, and durable memory
// transactions. Run it several times — the counter and the linked list
// survive process restarts because the emulated SCM is backed by a file.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	mnemosyne "repro"
)

func main() {
	dir := filepath.Join(os.TempDir(), "mnemosyne-quickstart")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	pm, err := mnemosyne.Open(mnemosyne.Config{
		DevicePath: filepath.Join(dir, "scm.img"),
		Dir:        dir,
		DeviceSize: 64 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer pm.Close()

	// A pstatic variable: allocated once, durable forever.
	counter, created, err := pm.Static("runs", 8)
	if err != nil {
		log.Fatal(err)
	}
	mem := pm.Memory()
	if created {
		mnemosyne.StoreDurable(mem, counter, 0)
		fmt.Println("first run: initialized persistent state")
	}

	// Persistent linked list of run records, head in another static.
	// Each node: [next addr][run number], pmalloc'd inside the same
	// durable transaction that bumps the counter — all or nothing.
	head, _, err := pm.Static("run-log", 8)
	if err != nil {
		log.Fatal(err)
	}
	err = pm.Atomic(func(tx *mnemosyne.Tx) error {
		run := tx.LoadU64(counter) + 1
		tx.StoreU64(counter, run)

		node, err := tx.Alloc(16)
		if err != nil {
			return err
		}
		tx.StoreU64(node, tx.LoadU64(head)) // next = old head
		tx.StoreU64(node.Add(8), run)
		tx.StoreU64(head, uint64(node))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("this is run #%d; previous runs:", mem.LoadU64(counter))
	for node := mnemosyne.Addr(mem.LoadU64(head)); node != mnemosyne.Nil; {
		fmt.Printf(" %d", mem.LoadU64(node.Add(8)))
		node = mnemosyne.Addr(mem.LoadU64(node))
	}
	fmt.Println()
}
