// ldapcache: the paper's OpenLDAP conversion in miniature (§6.2). A
// directory's read-mostly entry cache — an AVL tree — is made persistent
// with durable transactions, removing the Berkeley DB backing store
// entirely: "the backing store can be removed, leaving only a persistent
// cache." The example loads directory entries, simulates a crash, and
// shows the cache reincarnating with all entries intact.
//
//	go run ./examples/ldapcache [-entries 500]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	mnemosyne "repro"
)

var entries = flag.Int("entries", 500, "directory entries to load")

// A miniature directory entry: DN plus a few attributes, serialized with
// length-prefixed strings.
func encodeEntry(uid string, i int) []byte {
	attrs := []string{
		"uid: " + uid,
		fmt.Sprintf("cn: User Number %d", i),
		fmt.Sprintf("mail: %s@example.com", uid),
		"objectClass: inetOrgPerson",
	}
	var out []byte
	for _, a := range attrs {
		out = append(out, byte(len(a)))
		out = append(out, a...)
	}
	return out
}

func main() {
	flag.Parse()
	dir, err := os.MkdirTemp("", "mnemosyne-ldap-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := mnemosyne.Config{Dir: dir, DeviceSize: 128 << 20}
	pm, err := mnemosyne.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}

	root, _, err := pm.Static("ldap.cache", 8)
	if err != nil {
		log.Fatal(err)
	}
	cache := mnemosyne.NewAVL(root)

	th, err := pm.NewThread()
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < *entries; i++ {
		uid := fmt.Sprintf("user.%d", i)
		dn := fmt.Sprintf("uid=%s,ou=People,dc=example,dc=com", uid)
		// The paper places atomic blocks around the cache updates;
		// here the whole insert is one durable transaction.
		if err := th.Atomic(func(tx *mnemosyne.Tx) error {
			return cache.Put(tx, []byte(dn), encodeEntry(uid, i))
		}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("loaded %d entries into the persistent cache in %v\n",
		*entries, time.Since(start))

	// Power failure mid-flight.
	dev := pm.Device()
	dev.Crash(mnemosyne.RandomCrash(7))
	if err := pm.Runtime().Close(); err != nil {
		log.Fatal(err)
	}

	// slapd restarts: the cache reincarnates; no index rebuild, no
	// database recovery pass, no data loss.
	t0 := time.Now()
	pm, err = mnemosyne.Attach(dev, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reincarnated after crash in %v\n", time.Since(t0))

	th2, err := pm.NewThread()
	if err != nil {
		log.Fatal(err)
	}
	cache = mnemosyne.NewAVL(root)
	if err := th2.Atomic(func(tx *mnemosyne.Tx) error {
		if got := cache.Len(tx); got != *entries {
			return fmt.Errorf("cache has %d entries, want %d", got, *entries)
		}
		dn := "uid=user.42,ou=People,dc=example,dc=com"
		v, err := cache.Get(tx, []byte(dn))
		if err != nil {
			return fmt.Errorf("lookup %s: %w", dn, err)
		}
		fmt.Printf("sample lookup after crash: %s -> %d attribute bytes\n", dn, len(v))
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("all directory entries survived the crash")
	_ = pm.Close()
}
