// crashrecovery: demonstrates Mnemosyne's consistency guarantees under
// power failure. A workload of durable transactions runs against a B+
// tree; at a random point the emulated SCM suffers a crash that loses an
// arbitrary subset of in-flight writes; the stack reattaches, recovery
// replays the transaction logs, and every committed update is verified
// intact — with zero torn or partial states.
//
//	go run ./examples/crashrecovery [-rounds 5] [-txs 300]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	mnemosyne "repro"
)

var (
	rounds = flag.Int("rounds", 5, "crash/recover rounds")
	txs    = flag.Int("txs", 300, "transactions per round")
	seed   = flag.Int64("seed", 42, "crash PRNG seed")
)

func main() {
	flag.Parse()
	dir, err := os.MkdirTemp("", "mnemosyne-crash-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := mnemosyne.Config{Dir: dir, DeviceSize: 128 << 20, AsyncTruncation: true}
	pm, err := mnemosyne.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	dev := pm.Device()

	root, _, err := pm.Static("crash.tree", 8)
	if err != nil {
		log.Fatal(err)
	}
	tree := mnemosyne.NewBPTree(root)
	expect := map[uint64]byte{}
	rng := rand.New(rand.NewSource(*seed))

	for round := 0; round < *rounds; round++ {
		th, err := pm.NewThread()
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < *txs; i++ {
			key := uint64(rng.Intn(2000))
			tag := byte(rng.Intn(256))
			err := th.Atomic(func(tx *mnemosyne.Tx) error {
				return tree.Put(tx, key, []byte{tag, byte(round)})
			})
			if err != nil {
				log.Fatal(err)
			}
			expect[key] = tag
		}

		// Power failure: async truncation means many committed
		// transactions still live only in the redo logs.
		pm.TM().StopTruncation()
		dev.Crash(mnemosyne.RandomCrash(*seed + int64(round)))
		fmt.Printf("round %d: crashed with %d committed keys... ", round, len(expect))

		// Reincarnate over the surviving bytes.
		if err := pm.Runtime().Close(); err != nil {
			log.Fatal(err)
		}
		pm, err = mnemosyne.Attach(dev, cfg)
		if err != nil {
			log.Fatal(err)
		}
		rec := pm.TM().Recovery()

		// Verify every committed update, byte for byte.
		verify, err := pm.NewThread()
		if err != nil {
			log.Fatal(err)
		}
		tree = mnemosyne.NewBPTree(root)
		bad := 0
		if err := verify.Atomic(func(tx *mnemosyne.Tx) error {
			for key, tag := range expect {
				v, err := tree.Get(tx, key)
				if err != nil || len(v) != 2 || v[0] != tag {
					bad++
				}
			}
			return nil
		}); err != nil {
			log.Fatal(err)
		}
		if bad > 0 {
			log.Fatalf("round %d: %d committed updates lost or torn", round, bad)
		}
		fmt.Printf("recovered (replayed %d txs in %v), all %d keys intact\n",
			rec.Replayed, rec.Duration, len(expect))
	}
	fmt.Println("every committed transaction survived every crash")
}
