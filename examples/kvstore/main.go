// kvstore: a durable key-value store on persistent memory. Values live in
// a persistent hash table updated with durable transactions, so every
// acknowledged set/del survives crashes and restarts — no serialization,
// no write-ahead files in the application.
//
//	go run ./examples/kvstore set lang go
//	go run ./examples/kvstore get lang
//	go run ./examples/kvstore del lang
//	go run ./examples/kvstore list
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	mnemosyne "repro"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: kvstore set <key> <value> | get <key> | del <key> | list")
	os.Exit(2)
}

// keys are hashed into the table's uint64 key space; the full key string
// is stored alongside the value to resolve it on list/get.
func hashKey(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func encode(key, val string) []byte {
	out := make([]byte, 2+len(key)+len(val))
	out[0] = byte(len(key))
	out[1] = byte(len(key) >> 8)
	copy(out[2:], key)
	copy(out[2+len(key):], val)
	return out
}

func decode(b []byte) (key, val string) {
	n := int(b[0]) | int(b[1])<<8
	return string(b[2 : 2+n]), string(b[2+n:])
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	dir := filepath.Join(os.TempDir(), "mnemosyne-kvstore")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	pm, err := mnemosyne.Open(mnemosyne.Config{
		DevicePath: filepath.Join(dir, "scm.img"),
		Dir:        dir,
		DeviceSize: 64 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer pm.Close()

	root, created, err := pm.Static("kv.root", 8)
	if err != nil {
		log.Fatal(err)
	}
	th, err := pm.NewThread()
	if err != nil {
		log.Fatal(err)
	}
	var table *mnemosyne.HashTable
	if created {
		table, err = mnemosyne.CreateHashTable(th, root, 1024)
	} else {
		err = th.Atomic(func(tx *mnemosyne.Tx) error {
			table, err = mnemosyne.OpenHashTable(tx, root)
			return err
		})
	}
	if err != nil {
		log.Fatal(err)
	}

	switch os.Args[1] {
	case "set":
		if len(os.Args) != 4 {
			usage()
		}
		key, val := os.Args[2], os.Args[3]
		err = th.Atomic(func(tx *mnemosyne.Tx) error {
			return table.Put(tx, hashKey(key), encode(key, val))
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("set %q (durable)\n", key)
	case "get":
		if len(os.Args) != 3 {
			usage()
		}
		err = th.Atomic(func(tx *mnemosyne.Tx) error {
			raw, err := table.Get(tx, hashKey(os.Args[2]))
			if err != nil {
				return err
			}
			_, val := decode(raw)
			fmt.Println(val)
			return nil
		})
		if err == mnemosyne.ErrNotFound {
			fmt.Fprintln(os.Stderr, "not found")
			os.Exit(1)
		}
		if err != nil {
			log.Fatal(err)
		}
	case "del":
		if len(os.Args) != 3 {
			usage()
		}
		err = th.Atomic(func(tx *mnemosyne.Tx) error {
			return table.Delete(tx, hashKey(os.Args[2]))
		})
		if err == mnemosyne.ErrNotFound {
			fmt.Fprintln(os.Stderr, "not found")
			os.Exit(1)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("deleted")
	case "list":
		err = th.Atomic(func(tx *mnemosyne.Tx) error {
			fmt.Printf("%d keys\n", table.Len(tx))
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
	default:
		usage()
	}
}
