package mnemosyne_test

import (
	"fmt"
	"os"

	mnemosyne "repro"
)

// examplePM opens a throwaway in-memory instance for the examples.
func examplePM() (*mnemosyne.PM, func()) {
	dir, err := os.MkdirTemp("", "mnemosyne-example")
	if err != nil {
		panic(err)
	}
	pm, err := mnemosyne.Open(mnemosyne.Config{Dir: dir, DeviceSize: 64 << 20})
	if err != nil {
		os.RemoveAll(dir)
		panic(err)
	}
	return pm, func() {
		pm.Close()
		os.RemoveAll(dir)
	}
}

// A durable transaction on a leased thread: all stores inside fn become
// durable atomically when fn returns nil.
func ExamplePM_Atomic() {
	pm, cleanup := examplePM()
	defer cleanup()

	counter, _, err := pm.Static("example.counter", 8)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 3; i++ {
		err := pm.Atomic(func(tx *mnemosyne.Tx) error {
			tx.StoreU64(counter, tx.LoadU64(counter)+1)
			return nil
		})
		if err != nil {
			panic(err)
		}
	}
	fmt.Println(pm.Memory().LoadU64(counter))
	// Output: 3
}

// A snapshot read transaction: loads observe one consistent committed
// snapshot, with no thread lease, no log record and no fence. Tx and
// ReadTx both implement Reader, so read-side helpers work inside either.
func ExamplePM_View() {
	pm, cleanup := examplePM()
	defer cleanup()

	pair, _, err := pm.Static("example.pair", 16)
	if err != nil {
		panic(err)
	}
	if err := pm.Atomic(func(tx *mnemosyne.Tx) error {
		tx.StoreU64(pair, 40)
		tx.StoreU64(pair.Add(8), 2)
		return nil
	}); err != nil {
		panic(err)
	}

	sum := func(r mnemosyne.Reader) uint64 { // any Reader: Tx or ReadTx
		return r.LoadU64(pair) + r.LoadU64(pair.Add(8))
	}
	err = pm.View(func(r *mnemosyne.ReadTx) error {
		fmt.Println(sum(r))
		return nil
	})
	if err != nil {
		panic(err)
	}
	// Output: 42
}

// A batch of operations in one transaction: one lease, one log append and
// one durability fence for the whole batch. All fns commit or abort as a
// unit.
func ExamplePM_AtomicBatch() {
	pm, cleanup := examplePM()
	defer cleanup()

	slots, _, err := pm.Static("example.slots", 4*8)
	if err != nil {
		panic(err)
	}
	var fns []func(tx *mnemosyne.Tx) error
	for i := 0; i < 4; i++ {
		i := i
		fns = append(fns, func(tx *mnemosyne.Tx) error {
			tx.StoreU64(slots.Add(int64(i)*8), uint64(i*i))
			return nil
		})
	}
	if err := pm.AtomicBatch(fns); err != nil {
		panic(err)
	}
	err = pm.View(func(r *mnemosyne.ReadTx) error {
		for i := 0; i < 4; i++ {
			fmt.Println(r.LoadU64(slots.Add(int64(i) * 8)))
		}
		return nil
	})
	if err != nil {
		panic(err)
	}
	// Output:
	// 0
	// 1
	// 4
	// 9
}
