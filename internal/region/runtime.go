package region

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pmem"
	"repro/internal/scm"
	"repro/internal/telemetry"
)

// Runtime lifecycle metrics. The gauges record the most recent Open's
// reincarnation costs (§6.3.2); the counters aggregate region activity.
var (
	telBootNs = telemetry.NewGauge("region_manager_boot_ns",
		"kernel-side page-mapping-table reconstruction time at open, ns")
	telRemapNs = telemetry.NewGauge("region_remap_ns",
		"time to remap persistent regions into the process at open, ns")
	telRegionsMapped = telemetry.NewGauge("region_regions_mapped",
		"persistent regions remapped by the most recent open")
	telPMaps = telemetry.NewCounter("region_pmaps_total",
		"dynamic persistent regions created")
	telPUnmaps = telemetry.NewCounter("region_punmaps_total",
		"dynamic persistent regions deleted")
	telFaults = telemetry.NewCounter("region_page_faults_total",
		"swappable-region pages faulted in from backing files")
)

// Region flags.
const (
	// FlagSwappable marks a region whose pages may be evicted to the
	// backing file under memory pressure. Swappable regions are mapped
	// lazily (pages fault in on first access). Regions without the flag
	// are pinned: mapped eagerly and never evicted, giving lock-free
	// address translation.
	FlagSwappable uint64 = 1 << iota
)

// Static region layout (the region mapped at pmem.Base). The 16 KB region
// table matches §4.2: "The library reserves 16KB in the static persistent
// region to store a region table containing the process's persistent
// regions."
const (
	staticMagic = 0x4d4e535441544943 // "MNSTATIC"

	hdrMagicOff  = 0
	hdrVersOff   = 8
	hdrNextOff   = 16 // next unassigned persistent address
	hdrCursorOff = 24 // bump cursor for pstatic variable space

	tableOff   = 64
	regionEnt  = 48 // state, addr, len, fileID, flags, reserved
	maxRegions = 340

	dirOff     = tableOff + maxRegions*regionEnt // pstatic directory
	dirEnt     = 64                              // nameLen, name[40], off, size
	dirNameMax = 40
	maxStatics = 512

	staticDataOff = dirOff + maxStatics*dirEnt

	// DefaultStaticSize is the default size of the static region.
	DefaultStaticSize = 256 << 10
)

// Region table entry states. The table doubles as an intention log
// (§4.2): a crash between "creating" and "complete" makes the recovery
// path destroy the partially created region.
const (
	stateFree     = 0
	stateCreating = 1
	stateComplete = 2
	stateDeleting = 3
)

const staticFileName = "static.pr"

// Config configures the libmnemosyne runtime.
type Config struct {
	// Dir is where backing files live. Empty selects the
	// MNEMOSYNE_REGION_PATH environment variable and then the current
	// directory, as in the paper.
	Dir string
	// StaticSize is the static region's size; zero selects
	// DefaultStaticSize.
	StaticSize int64
}

// Region describes one mapped persistent region.
type Region struct {
	Addr   pmem.Addr
	Len    int64
	Flags  uint64
	fileID uint32
	slot   int // region table slot; -1 for the static region
	// pages maps region page index to SCM frame; -1 means not resident.
	// Immutable after mapping for pinned regions; guarded by the
	// runtime's swap lock for swappable ones.
	pages []int32
}

func (r *Region) swappable() bool { return r.Flags&FlagSwappable != 0 }

// Contains reports whether a falls inside the region.
func (r *Region) Contains(a pmem.Addr) bool {
	return a >= r.Addr && a.Sub(r.Addr) < r.Len
}

type pageRef struct {
	r   *Region
	idx int
}

// OpenStats records the costs of runtime reincarnation (§6.3.2).
type OpenStats struct {
	// ManagerBoot is the kernel-side PMT reconstruction time.
	ManagerBoot time.Duration
	// Remap is the time to remap persistent regions into the process.
	Remap time.Duration
	// RegionsMapped counts the regions recreated.
	RegionsMapped int
}

// Runtime is the libmnemosyne layer: it creates and records the persistent
// regions of a process.
type Runtime struct {
	mgr *Manager
	dev *scm.Device
	ctx *scm.Context
	cfg Config

	mu      sync.Mutex                // serializes pmap/punmap/static
	regions atomic.Pointer[[]*Region] // sorted by Addr; copy-on-write

	swapMu   sync.RWMutex // guards swappable page tables and residency
	resident []pageRef    // FIFO of resident swappable pages

	static *Region
	stats  OpenStats

	// cacheSlabs recycles read-through cache slabs across short-lived Mems
	// (leased transaction threads bind a fresh Mem per lease); without it,
	// every lease allocates and abandons a slab of ReadCacheWords entries.
	// A plain capped free list, not a sync.Pool: the GC empties pools, and
	// a lease that then cold-allocates megabytes mid-workload costs more
	// than the cache saves. cacheGen guards reuse: see Mem.EnableReadCache.
	cacheMu    sync.Mutex
	cacheSlabs []cacheSlab
	cacheGen   atomic.Uint64
}

// Open boots the region manager on the device and reincarnates the
// process's persistent regions from dir.
func Open(dev *scm.Device, cfg Config) (*Runtime, error) {
	if cfg.Dir == "" {
		cfg.Dir = os.Getenv("MNEMOSYNE_REGION_PATH")
	}
	if cfg.Dir == "" {
		cfg.Dir = "."
	}
	if cfg.StaticSize == 0 {
		cfg.StaticSize = DefaultStaticSize
	}
	if cfg.StaticSize < staticDataOff+4096 {
		return nil, fmt.Errorf("region: static size %d too small", cfg.StaticSize)
	}
	cfg.StaticSize = (cfg.StaticSize + scm.PageSize - 1) &^ (scm.PageSize - 1)

	mgr, err := BootManager(dev, cfg.Dir)
	if err != nil {
		return nil, err
	}
	rt := &Runtime{mgr: mgr, dev: dev, ctx: dev.NewContext(), cfg: cfg}
	rt.stats.ManagerBoot = mgr.BootTime()
	empty := []*Region{}
	rt.regions.Store(&empty)

	start := time.Now()
	if err := rt.mapStatic(); err != nil {
		return nil, err
	}
	if err := rt.recoverRegions(); err != nil {
		return nil, err
	}
	rt.collectOrphanFiles()
	rt.stats.Remap = time.Since(start)
	telBootNs.Set(rt.stats.ManagerBoot.Nanoseconds())
	telRemapNs.Set(rt.stats.Remap.Nanoseconds())
	telRegionsMapped.Set(int64(rt.stats.RegionsMapped))
	if telemetry.TraceEnabled() {
		telemetry.Emit(telemetry.EvRegionOpen, 0,
			uint64(rt.stats.RegionsMapped), uint64(rt.stats.ManagerBoot.Nanoseconds()))
	}
	return rt, nil
}

// Stats returns the reincarnation costs of this open.
func (rt *Runtime) Stats() OpenStats { return rt.stats }

// Manager exposes the kernel-side manager (for tests and tooling).
func (rt *Runtime) Manager() *Manager { return rt.mgr }

// Device returns the underlying SCM device.
func (rt *Runtime) Device() *scm.Device { return rt.dev }

// StaticRegion returns the static region descriptor.
func (rt *Runtime) StaticRegion() *Region { return rt.static }

// Close releases backing file handles. Persistent state is untouched.
func (rt *Runtime) Close() error { return rt.mgr.Close() }

func (rt *Runtime) mapStatic() error {
	fid, err := rt.mgr.CreateFile(staticFileName)
	if err != nil {
		return err
	}
	r := &Region{Addr: pmem.Base, Len: rt.cfg.StaticSize, fileID: fid, slot: -1}
	if err := rt.mapPages(r); err != nil {
		return err
	}
	rt.static = r
	rt.publishRegion(r)

	if rt.loadStatic(hdrMagicOff) != staticMagic {
		// First run: initialize the static region header.
		rt.storeStatic(hdrVersOff, 1)
		rt.storeStatic(hdrNextOff, uint64(pmem.Base)+uint64(rt.cfg.StaticSize))
		rt.storeStatic(hdrCursorOff, staticDataOff)
		rt.ctx.Fence()
		rt.storeStatic(hdrMagicOff, staticMagic)
		rt.ctx.Fence()
	}
	return nil
}

// loadStatic/storeStatic access the static region header via the already
// mapped pages (durable via WTStore + caller's fence).
func (rt *Runtime) loadStatic(off int64) uint64 {
	return rt.ctx.LoadU64(rt.mustResolve(pmem.Base.Add(off)))
}

func (rt *Runtime) storeStatic(off int64, v uint64) {
	rt.ctx.WTStoreU64(rt.mustResolve(pmem.Base.Add(off)), v)
}

// mustResolve translates for runtime-internal metadata in pinned regions.
func (rt *Runtime) mustResolve(a pmem.Addr) int64 {
	r := rt.lookupRegion(a)
	if r == nil {
		panic(fmt.Sprintf("region: unmapped metadata address %v", a))
	}
	idx := a.Sub(r.Addr) / scm.PageSize
	frame := r.pages[idx]
	if frame < 0 {
		panic(fmt.Sprintf("region: metadata page not resident at %v", a))
	}
	return rt.mgr.FrameBase(frame) + a.Sub(r.Addr)%scm.PageSize
}

// mapPages eagerly maps a pinned region (or lazily initializes a swappable
// one). "Soft faults" reuse frames already resident from the PMT scan;
// hard faults read the backing file.
func (rt *Runtime) mapPages(r *Region) error {
	n := int(r.Len / scm.PageSize)
	r.pages = make([]int32, n)
	if r.swappable() {
		for i := range r.pages {
			r.pages[i] = -1
		}
		return nil
	}
	for i := 0; i < n; i++ {
		frame, ok := rt.mgr.LookupFrame(r.fileID, uint64(i))
		if !ok {
			var err error
			frame, err = rt.faultInEvicting(r.fileID, uint64(i))
			if err != nil {
				return err
			}
		}
		r.pages[i] = frame
	}
	return nil
}

// faultInEvicting faults a page in, evicting resident swappable pages as
// needed to find a free frame.
func (rt *Runtime) faultInEvicting(fid uint32, pageOff uint64) (int32, error) {
	for {
		frame, err := rt.mgr.FaultIn(fid, pageOff)
		if err == nil {
			telFaults.Inc()
			return frame, nil
		}
		if !errors.Is(err, ErrNoFrames) {
			return 0, err
		}
		if !rt.evictOne() {
			return 0, ErrNoFrames
		}
	}
}

// evictOne evicts the oldest resident swappable page. Callers must hold
// swapMu for writing or guarantee no concurrent swappable access.
func (rt *Runtime) evictOne() bool {
	if len(rt.resident) == 0 {
		return false
	}
	ref := rt.resident[0]
	rt.resident = rt.resident[1:]
	frame := ref.r.pages[ref.idx]
	if frame < 0 {
		return rt.evictOne()
	}
	if err := rt.mgr.EvictFrame(frame); err != nil {
		panic(fmt.Sprintf("region: evict failed: %v", err))
	}
	ref.r.pages[ref.idx] = -1
	return true
}

func (rt *Runtime) publishRegion(r *Region) {
	old := *rt.regions.Load()
	next := make([]*Region, 0, len(old)+1)
	next = append(next, old...)
	next = append(next, r)
	sort.Slice(next, func(i, j int) bool { return next[i].Addr < next[j].Addr })
	rt.regions.Store(&next)
}

func (rt *Runtime) unpublishRegion(r *Region) {
	old := *rt.regions.Load()
	next := make([]*Region, 0, len(old))
	for _, x := range old {
		if x != r {
			next = append(next, x)
		}
	}
	rt.regions.Store(&next)
}

// lookupRegion finds the region containing a, lock-free.
func (rt *Runtime) lookupRegion(a pmem.Addr) *Region {
	regs := *rt.regions.Load()
	i := sort.Search(len(regs), func(i int) bool { return regs[i].Addr > a })
	if i == 0 {
		return nil
	}
	r := regs[i-1]
	if !r.Contains(a) {
		return nil
	}
	return r
}

// Region returns the mapped region containing a, or nil.
func (rt *Runtime) Region(a pmem.Addr) *Region { return rt.lookupRegion(a) }

// Regions returns a snapshot of the mapped regions, sorted by address.
func (rt *Runtime) Regions() []*Region {
	regs := *rt.regions.Load()
	out := make([]*Region, len(regs))
	copy(out, regs)
	return out
}

func (rt *Runtime) tableEntry(slot int) int64 {
	return tableOff + int64(slot)*regionEnt
}

func (rt *Runtime) readEntry(slot int) (state uint64, addr pmem.Addr, length int64, fid uint32, flags uint64) {
	ent := rt.tableEntry(slot)
	state = rt.loadStatic(ent)
	addr = pmem.Addr(rt.loadStatic(ent + 8))
	length = int64(rt.loadStatic(ent + 16))
	fid = uint32(rt.loadStatic(ent + 24))
	flags = rt.loadStatic(ent + 32)
	return
}

// recoverRegions walks the region table: completed regions are remapped
// into the address space, partially created or deleted ones are destroyed
// (§4.2: "When an application starts, libmnemosyne recreates previously
// allocated persistent regions and destroys partially created ones.").
func (rt *Runtime) recoverRegions() error {
	for slot := 0; slot < maxRegions; slot++ {
		state, addr, length, fid, flags := rt.readEntry(slot)
		switch state {
		case stateFree:
		case stateComplete:
			r := &Region{Addr: addr, Len: length, Flags: flags, fileID: fid, slot: slot}
			if err := rt.mapPages(r); err != nil {
				return err
			}
			rt.publishRegion(r)
			if r.swappable() {
				// Pages already resident (found in the PMT)
				// become evictable again.
				for i := 0; i < len(r.pages); i++ {
					if frame, ok := rt.mgr.LookupFrame(fid, uint64(i)); ok {
						r.pages[i] = frame
						rt.resident = append(rt.resident, pageRef{r: r, idx: i})
					}
				}
			}
			rt.stats.RegionsMapped++
		case stateCreating, stateDeleting:
			rt.destroySlot(slot, length, fid)
		}
	}
	return nil
}

// destroySlot frees any frames and the backing file of a dead region and
// clears its table entry.
func (rt *Runtime) destroySlot(slot int, length int64, fid uint32) {
	if fid != 0 {
		for p := uint64(0); p < uint64(length/scm.PageSize); p++ {
			if frame, ok := rt.mgr.LookupFrame(fid, p); ok {
				rt.mgr.FreeFrame(frame)
			}
		}
		_ = rt.mgr.DeleteFile(fid)
	}
	ent := rt.tableEntry(slot)
	rt.storeStatic(ent, stateFree)
	rt.ctx.Fence()
}

// collectOrphanFiles removes region backing files registered in the file
// table but referenced by no region table entry (a crash window between
// file creation and the intention record).
func (rt *Runtime) collectOrphanFiles() {
	live := map[uint32]bool{rt.static.fileID: true}
	for slot := 0; slot < maxRegions; slot++ {
		state, _, _, fid, _ := rt.readEntry(slot)
		if state != stateFree {
			live[fid] = true
		}
	}
	rt.mgr.mu.Lock()
	var orphans []uint32
	for name, id := range rt.mgr.names {
		if strings.HasPrefix(name, "region-") && !live[id] {
			orphans = append(orphans, id)
		}
	}
	rt.mgr.mu.Unlock()
	for _, id := range orphans {
		_ = rt.mgr.DeleteFile(id)
	}
}

// PMap creates a dynamic persistent region of at least length bytes,
// analogous to mmap (§4.2). The region's address is stable across
// restarts. Prefer PMapAt, which stores the address through a persistent
// pointer so the region cannot leak on a crash.
func (rt *Runtime) PMap(length int64, flags uint64) (pmem.Addr, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if length <= 0 {
		return pmem.Nil, errors.New("region: pmap length must be positive")
	}
	length = (length + scm.PageSize - 1) &^ (scm.PageSize - 1)

	// Reserve the address range first, durably: even if we crash
	// mid-create, the range is never reissued.
	addr := pmem.Addr(rt.loadStatic(hdrNextOff))
	if !addr.Add(length - 1).IsPersistent() {
		return pmem.Nil, errors.New("region: persistent address space exhausted")
	}
	rt.storeStatic(hdrNextOff, uint64(addr)+uint64(length))
	rt.ctx.Fence()

	slot := -1
	for s := 0; s < maxRegions; s++ {
		if state, _, _, _, _ := rt.readEntry(s); state == stateFree {
			slot = s
			break
		}
	}
	if slot < 0 {
		return pmem.Nil, errors.New("region: region table full")
	}

	name := fmt.Sprintf("region-%016x.pr", uint64(addr))
	fid, err := rt.mgr.CreateFile(name)
	if err != nil {
		return pmem.Nil, err
	}

	// Intention record: fields plus state=creating become durable
	// together; recovery destroys the region unless state reaches
	// complete.
	ent := rt.tableEntry(slot)
	rt.storeStatic(ent+8, uint64(addr))
	rt.storeStatic(ent+16, uint64(length))
	rt.storeStatic(ent+24, uint64(fid))
	rt.storeStatic(ent+32, flags)
	rt.storeStatic(ent, stateCreating)
	rt.ctx.Fence()

	r := &Region{Addr: addr, Len: length, Flags: flags, fileID: fid, slot: slot}
	if err := rt.mapPages(r); err != nil {
		rt.destroySlot(slot, length, fid)
		return pmem.Nil, err
	}
	rt.publishRegion(r)

	rt.storeStatic(ent, stateComplete)
	rt.ctx.Fence()
	telPMaps.Inc()
	return addr, nil
}

// PMapAt creates a region and durably stores its address at ptr, which
// must itself be persistent — the paper's leak-avoidance discipline: "the
// pmap function takes as an in/out parameter a persistent variable to
// receive the region's address."
func (rt *Runtime) PMapAt(ptr pmem.Addr, length int64, flags uint64) (pmem.Addr, error) {
	if !ptr.IsPersistent() {
		return pmem.Nil, fmt.Errorf("region: pmap destination %v is not persistent", ptr)
	}
	addr, err := rt.PMap(length, flags)
	if err != nil {
		return pmem.Nil, err
	}
	rt.ctx.WTStoreU64(rt.mustResolve(ptr), uint64(addr))
	rt.ctx.Fence()
	return addr, nil
}

// PUnmap deletes the dynamic region starting at addr. The whole region is
// deleted; partial unmapping is not supported.
func (rt *Runtime) PUnmap(addr pmem.Addr) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	r := rt.lookupRegion(addr)
	if r == nil || r.Addr != addr {
		return fmt.Errorf("region: no region starts at %v", addr)
	}
	if r.slot < 0 {
		return errors.New("region: cannot unmap the static region")
	}
	ent := rt.tableEntry(r.slot)
	rt.storeStatic(ent, stateDeleting)
	rt.ctx.Fence()

	rt.swapMu.Lock()
	keep := rt.resident[:0]
	for _, ref := range rt.resident {
		if ref.r != r {
			keep = append(keep, ref)
		}
	}
	rt.resident = keep
	rt.unpublishRegion(r)
	rt.swapMu.Unlock()

	rt.destroySlot(r.slot, r.Len, r.fileID)
	telPUnmaps.Inc()
	return nil
}

// StaticInfo describes one named persistent static variable.
type StaticInfo struct {
	Name string
	Addr pmem.Addr
	Size int64
}

// Statics enumerates the persistent static variables of this process.
func (rt *Runtime) Statics() []StaticInfo {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var out []StaticInfo
	for i := 0; i < maxStatics; i++ {
		ent := dirOff + int64(i)*dirEnt
		nameLen := rt.loadStatic(ent)
		if nameLen == 0 || nameLen > dirNameMax {
			continue
		}
		buf := make([]byte, nameLen)
		rt.ctx.Load(buf, rt.mustResolve(pmem.Base.Add(ent+8)))
		out = append(out, StaticInfo{
			Name: string(buf),
			Addr: pmem.Base.Add(int64(rt.loadStatic(ent + 48))),
			Size: int64(rt.loadStatic(ent + 56)),
		})
	}
	return out
}

// WearLevel remaps every resident page whose physical frame has absorbed
// at least minWrites writes (per the device's wear counters) onto a fresh
// frame, spreading wear across SCM. The runtime must be quiesced: no
// concurrent Memory access. Returns the number of pages moved. Requires
// the device to be opened with TrackWear.
func (rt *Runtime) WearLevel(minWrites uint32) (int, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.swapMu.Lock()
	defer rt.swapMu.Unlock()
	moved := 0
	for _, r := range *rt.regions.Load() {
		for idx, frame := range r.pages {
			if frame < 0 {
				continue
			}
			if rt.dev.WearCount(rt.mgr.FrameBase(frame)) < minWrites {
				continue
			}
			newF, err := rt.mgr.RemapFrame(frame)
			if err == ErrNoFrames {
				return moved, nil // nothing left to move onto
			}
			if err != nil {
				return moved, err
			}
			r.pages[idx] = newF
			moved++
		}
	}
	return moved, nil
}

// Static returns the address of the named persistent static variable,
// allocating it in the static region on first use. created reports whether
// this call allocated it (the program should then initialize it). This is
// the runtime analogue of the paper's pstatic keyword: initialized once
// when the program first runs, retaining its value across invocations.
func (rt *Runtime) Static(name string, size int64) (addr pmem.Addr, created bool, err error) {
	if len(name) == 0 || len(name) > dirNameMax {
		return pmem.Nil, false, fmt.Errorf("region: bad static name %q", name)
	}
	if size <= 0 {
		return pmem.Nil, false, errors.New("region: static size must be positive")
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()

	freeSlot := -1
	for i := 0; i < maxStatics; i++ {
		ent := dirOff + int64(i)*dirEnt
		nameLen := rt.loadStatic(ent)
		if nameLen == 0 {
			if freeSlot < 0 {
				freeSlot = i
			}
			continue
		}
		if int(nameLen) != len(name) {
			continue
		}
		buf := make([]byte, nameLen)
		rt.ctx.Load(buf, rt.mustResolve(pmem.Base.Add(ent+8)))
		if string(buf) != name {
			continue
		}
		off := rt.loadStatic(ent + 48)
		storedSize := int64(rt.loadStatic(ent + 56))
		if storedSize != size {
			return pmem.Nil, false, fmt.Errorf("region: static %q has size %d, requested %d", name, storedSize, size)
		}
		return pmem.Base.Add(int64(off)), false, nil
	}
	if freeSlot < 0 {
		return pmem.Nil, false, errors.New("region: static directory full")
	}

	cursor := int64(rt.loadStatic(hdrCursorOff))
	cursor = (cursor + 63) &^ 63
	if cursor+size > rt.cfg.StaticSize {
		return pmem.Nil, false, errors.New("region: static region full")
	}
	// Bump the cursor durably first: a crash mid-create leaks the space
	// but never aliases two variables.
	rt.storeStatic(hdrCursorOff, uint64(cursor+size))
	rt.ctx.Fence()

	ent := dirOff + int64(freeSlot)*dirEnt
	rt.ctx.WTStore(rt.mustResolve(pmem.Base.Add(ent+8)), []byte(name))
	rt.storeStatic(ent+48, uint64(cursor))
	rt.storeStatic(ent+56, uint64(size))
	rt.ctx.Fence()
	rt.storeStatic(ent, uint64(len(name)))
	rt.ctx.Fence()
	return pmem.Base.Add(cursor), true, nil
}
