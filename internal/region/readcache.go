package region

import (
	"repro/internal/pmem"
	"repro/internal/telemetry"
)

// Read-through cache metrics, aggregated over every Mem in the process.
// The owner goroutine tallies into plain per-Mem counters and flushes them
// here in batches, so the hot read path never executes an atomic add.
var (
	telReadCacheHits = telemetry.NewCounter("region_readcache_hits_total",
		"word loads served from the volatile read-through cache")
	telReadCacheMisses = telemetry.NewCounter("region_readcache_misses_total",
		"word loads that missed the read-through cache and hit the device")
)

// cacheStatsBatch is how many hit/miss events accumulate Mem-side before
// they are flushed to the global counters.
const cacheStatsBatch = 1 << 10

// cacheEntry is one direct-mapped slot of the read-through cache. A zero
// addr (pmem.Nil is never a cacheable persistent word) marks an empty
// slot. tag is the version the caller observed on the word's covering
// lock when the entry was filled: the entry is served only while the lock
// still carries exactly that version, so any committed write to the
// word's lock stripe invalidates it for free.
type cacheEntry struct {
	addr pmem.Addr
	tag  uint64
	val  uint64
}

// EnableReadCache attaches a direct-mapped volatile cache of persistent
// words to this memory view. words is rounded up to a power of two;
// words <= 0 disables the cache. The cache is private to the Mem's owner
// goroutine and holds no locks.
//
// The cache is not consulted by LoadU64 itself: plain loads cannot know
// which version of the word they saw. Callers that validate loads against
// a versioned lock word (the transaction read paths) use CacheLoadU64 and
// CacheFill, passing the observed lock version as the entry tag.
func (m *Mem) EnableReadCache(words int) {
	if words <= 0 {
		m.ReleaseReadCache()
		return
	}
	n := 1
	for n < words {
		n <<= 1
	}
	// Reuse a recycled slab of the right size. A slab released under the
	// current cache generation carries only entries the versioned-lock
	// validation still guards — no matter which Mem filled them — so its
	// contents survive as a warm start. A slab from an older generation
	// predates a transaction-system reopen (restarted commit clock,
	// recovery writing words outside the lock protocol) and is cleared.
	if sl, ok := m.rt.takeSlab(n); ok {
		m.cache = sl.s
		if sl.gen != m.rt.cacheGen.Load() {
			for i := range m.cache {
				m.cache[i] = cacheEntry{}
			}
		}
	} else {
		m.cache = make([]cacheEntry, n)
	}
	m.cacheMask = uint64(n - 1)
}

// maxPooledSlabs caps the runtime's slab free list. The list holds one
// slab per recently closed caching Mem, so its natural size is the peak
// thread-lease concurrency; the cap only bounds pathological churn.
const maxPooledSlabs = 64

// takeSlab pops a recycled slab of exactly n entries, searching the few
// list entries for a size match (one runtime normally has one size).
func (rt *Runtime) takeSlab(n int) (cacheSlab, bool) {
	rt.cacheMu.Lock()
	defer rt.cacheMu.Unlock()
	for i := len(rt.cacheSlabs) - 1; i >= 0; i-- {
		if len(rt.cacheSlabs[i].s) == n {
			sl := rt.cacheSlabs[i]
			last := len(rt.cacheSlabs) - 1
			rt.cacheSlabs[i] = rt.cacheSlabs[last]
			rt.cacheSlabs[last] = cacheSlab{}
			rt.cacheSlabs = rt.cacheSlabs[:last]
			return sl, true
		}
	}
	return cacheSlab{}, false
}

// putSlab returns a slab to the free list, dropping it when full.
func (rt *Runtime) putSlab(sl cacheSlab) {
	rt.cacheMu.Lock()
	if len(rt.cacheSlabs) < maxPooledSlabs {
		rt.cacheSlabs = append(rt.cacheSlabs, sl)
	}
	rt.cacheMu.Unlock()
}

// cacheSlab is a pooled cache allocation, stamped with the runtime cache
// generation current when it was released.
type cacheSlab struct {
	gen uint64
	s   []cacheEntry
}

// ReleaseReadCache detaches the cache and returns its slab to the
// runtime's pool for the next short-lived Mem (leased threads bind a
// fresh Mem per lease; without recycling, every lease would allocate and
// abandon a multi-megabyte slab, and the resulting GC pressure dwarfs
// what the cache saves). Callers flush stats first if they care.
func (m *Mem) ReleaseReadCache() {
	if m.cache != nil {
		m.rt.putSlab(cacheSlab{gen: m.rt.cacheGen.Load(), s: m.cache})
		m.cache = nil
	}
	m.cacheMask = 0
}

// InvalidateReadCaches retires the contents of every pooled read-cache
// slab: slabs released before the call are cleared on their next reuse.
// Transaction systems call it when (re)opening, because a reopen restarts
// the commit clock and replays recovery writes outside the lock protocol,
// so a stale (addr, version) pair could otherwise validate against an
// unrelated version of the word. Caches currently attached to live Mems
// are unaffected; they belong to transaction systems already running.
func (rt *Runtime) InvalidateReadCaches() { rt.cacheGen.Add(1) }

// ReadCacheEnabled reports whether EnableReadCache attached a cache.
func (m *Mem) ReadCacheEnabled() bool { return m.cache != nil }

// cacheSlot maps a word address to its direct-mapped slot.
func (m *Mem) cacheSlot(a pmem.Addr) *cacheEntry {
	return &m.cache[(uint64(a)>>3)&m.cacheMask]
}

// CacheLoadU64 serves the word at a from the cache when the entry's tag
// matches tag — the version the caller just sampled, unlocked, on the
// word's covering lock. A matching tag proves no transaction committed a
// write through that lock since the entry was filled (versions only ever
// advance at commit, and in-place mutation happens only while the lock is
// held), so the cached value is exactly what a device load would return.
func (m *Mem) CacheLoadU64(a pmem.Addr, tag uint64) (uint64, bool) {
	if m.cache == nil {
		return 0, false
	}
	e := m.cacheSlot(a)
	if e.addr == a && e.tag == tag {
		m.cacheHits++
		if m.cacheHits >= cacheStatsBatch {
			telReadCacheHits.Add(uint64(m.cacheHits))
			m.cacheHits = 0
		}
		return e.val, true
	}
	m.cacheMisses++
	if m.cacheMisses >= cacheStatsBatch {
		telReadCacheMisses.Add(uint64(m.cacheMisses))
		m.cacheMisses = 0
	}
	return 0, false
}

// CacheFill records a validated (lock version, value) pair for the word
// at a. The caller must have confirmed the pair is consistent: the lock
// covering a held version tag both before and after the device load that
// produced val.
func (m *Mem) CacheFill(a pmem.Addr, tag, val uint64) {
	if m.cache == nil {
		return
	}
	*m.cacheSlot(a) = cacheEntry{addr: a, tag: tag, val: val}
}

// FlushCacheStats publishes any batched hit/miss tallies to the global
// telemetry counters. Callers invoke it when a Mem goes idle (thread
// close, reader pool return) so short runs still report accurate totals.
func (m *Mem) FlushCacheStats() {
	if m.cacheHits > 0 {
		telReadCacheHits.Add(uint64(m.cacheHits))
		m.cacheHits = 0
	}
	if m.cacheMisses > 0 {
		telReadCacheMisses.Add(uint64(m.cacheMisses))
		m.cacheMisses = 0
	}
}
