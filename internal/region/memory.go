package region

import (
	"fmt"

	"repro/internal/pmem"
	"repro/internal/scm"
)

// Mem is a per-goroutine view of the persistent address space,
// implementing pmem.Memory. It owns an SCM hardware context (and thus its
// own emulated write-combining buffer) and a one-entry TLB caching the
// last region touched.
type Mem struct {
	rt  *Runtime
	ctx *scm.Context
	tlb *Region

	// Optional direct-mapped read-through cache (see readcache.go). nil
	// unless EnableReadCache was called; private to the owner goroutine.
	cache       []cacheEntry
	cacheMask   uint64
	cacheHits   uint32
	cacheMisses uint32
}

var _ pmem.Memory = (*Mem)(nil)

// NewMemory returns a Memory view for one goroutine.
func (rt *Runtime) NewMemory() *Mem {
	return &Mem{rt: rt, ctx: rt.dev.NewContext()}
}

// Context exposes the underlying hardware context (for delay accounting).
func (m *Mem) Context() *scm.Context { return m.ctx }

// Runtime returns the owning runtime.
func (m *Mem) Runtime() *Runtime { return m.rt }

func (m *Mem) region(a pmem.Addr) *Region {
	if r := m.tlb; r != nil && r.Contains(a) {
		return r
	}
	r := m.rt.lookupRegion(a)
	if r == nil {
		panic(fmt.Sprintf("region: access to unmapped persistent address %v", a))
	}
	m.tlb = r
	return r
}

// withPage translates a and runs f with the device offset. The access
// [a, a+n) must not cross a page boundary; byte-granular operations split
// beforehand. For swappable regions the page is faulted in if necessary
// and the access runs under the swap lock so eviction cannot race it.
func (m *Mem) withPage(a pmem.Addr, n int64, f func(devOff int64)) {
	r := m.region(a)
	off := a.Sub(r.Addr)
	if off+n > r.Len {
		panic(fmt.Sprintf("region: access [%v,+%d) overruns region at %v", a, n, r.Addr))
	}
	idx := off / scm.PageSize
	inPage := off % scm.PageSize
	if inPage+n > scm.PageSize {
		panic("region: internal: access crosses page boundary")
	}
	if !r.swappable() {
		f(m.rt.mgr.FrameBase(r.pages[idx]) + inPage)
		return
	}

	rt := m.rt
	rt.swapMu.RLock()
	if frame := r.pages[idx]; frame >= 0 {
		f(rt.mgr.FrameBase(frame) + inPage)
		rt.swapMu.RUnlock()
		return
	}
	rt.swapMu.RUnlock()

	rt.swapMu.Lock()
	frame := r.pages[idx]
	if frame < 0 {
		var err error
		frame, err = rt.faultInEvicting(r.fileID, uint64(idx))
		if err != nil {
			rt.swapMu.Unlock()
			panic(fmt.Sprintf("region: page fault at %v: %v", a, err))
		}
		r.pages[idx] = frame
		rt.resident = append(rt.resident, pageRef{r: r, idx: int(idx)})
	}
	f(rt.mgr.FrameBase(frame) + inPage)
	rt.swapMu.Unlock()
}

// translate resolves a pinned-region address to its device offset without
// taking any lock; ok is false for swappable regions, which must go
// through withPage. This is the word-access fast path: pinned page tables
// are immutable after mapping.
func (m *Mem) translate(a pmem.Addr, n int64) (devOff int64, ok bool) {
	r := m.region(a)
	if r.swappable() {
		return 0, false
	}
	off := a.Sub(r.Addr)
	if off+n > r.Len {
		panic(fmt.Sprintf("region: access [%v,+%d) overruns region at %v", a, n, r.Addr))
	}
	return m.rt.mgr.FrameBase(r.pages[off/scm.PageSize]) + off%scm.PageSize, true
}

// LoadU64 implements pmem.Memory.
func (m *Mem) LoadU64(a pmem.Addr) (v uint64) {
	if devOff, ok := m.translate(a, 8); ok {
		return m.ctx.LoadU64(devOff)
	}
	m.withPage(a, 8, func(devOff int64) { v = m.ctx.LoadU64(devOff) })
	return v
}

// StoreU64 implements pmem.Memory.
func (m *Mem) StoreU64(a pmem.Addr, v uint64) {
	if devOff, ok := m.translate(a, 8); ok {
		m.ctx.StoreU64(devOff, v)
		return
	}
	m.withPage(a, 8, func(devOff int64) { m.ctx.StoreU64(devOff, v) })
}

// StoreU64InDirtyLine is StoreU64 for a word whose cache line this memory
// view already dirtied since that line's last flush (see
// scm.Context.StoreU64InDirtyLine).
func (m *Mem) StoreU64InDirtyLine(a pmem.Addr, v uint64) {
	if devOff, ok := m.translate(a, 8); ok {
		m.ctx.StoreU64InDirtyLine(devOff, v)
		return
	}
	m.withPage(a, 8, func(devOff int64) { m.ctx.StoreU64InDirtyLine(devOff, v) })
}

// WTStoreU64 implements pmem.Memory.
func (m *Mem) WTStoreU64(a pmem.Addr, v uint64) {
	if devOff, ok := m.translate(a, 8); ok {
		m.ctx.WTStoreU64(devOff, v)
		return
	}
	m.withPage(a, 8, func(devOff int64) { m.ctx.WTStoreU64(devOff, v) })
}

// Flush implements pmem.Memory.
func (m *Mem) Flush(a pmem.Addr) {
	line := a &^ (scm.LineSize - 1)
	m.withPage(line, scm.LineSize, func(devOff int64) { m.ctx.Flush(devOff) })
}

// FlushRange implements pmem.Memory.
func (m *Mem) FlushRange(a pmem.Addr, n int64) {
	if n <= 0 {
		return
	}
	first := a &^ (scm.LineSize - 1)
	last := a.Add(n-1) &^ (scm.LineSize - 1)
	for line := first; line <= last; line = line.Add(scm.LineSize) {
		m.Flush(line)
	}
}

// Fence implements pmem.Memory.
func (m *Mem) Fence() { m.ctx.Fence() }

// Load implements pmem.Memory.
func (m *Mem) Load(buf []byte, a pmem.Addr) {
	m.chunked(a, int64(len(buf)), func(devOff, pos, n int64) {
		m.ctx.Load(buf[pos:pos+n], devOff)
	})
}

// Store implements pmem.Memory.
func (m *Mem) Store(a pmem.Addr, buf []byte) {
	m.chunked(a, int64(len(buf)), func(devOff, pos, n int64) {
		m.ctx.Store(devOff, buf[pos:pos+n])
	})
}

// WTStore implements pmem.Memory.
func (m *Mem) WTStore(a pmem.Addr, buf []byte) {
	m.chunked(a, int64(len(buf)), func(devOff, pos, n int64) {
		m.ctx.WTStore(devOff, buf[pos:pos+n])
	})
}

// chunked splits [a, a+n) at page boundaries and invokes f per chunk with
// the chunk's device offset, position in the buffer, and length.
func (m *Mem) chunked(a pmem.Addr, n int64, f func(devOff, pos, chunk int64)) {
	pos := int64(0)
	for pos < n {
		inPage := a.Add(pos).Sub(pmem.Addr(0)) % scm.PageSize
		chunk := scm.PageSize - inPage
		if chunk > n-pos {
			chunk = n - pos
		}
		p := pos
		m.withPage(a.Add(pos), chunk, func(devOff int64) { f(devOff, p, chunk) })
		pos += chunk
	}
}
