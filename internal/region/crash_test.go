package region_test

import (
	"fmt"
	"testing"

	"repro/internal/crashpoint"
	"repro/internal/pmem"
	"repro/internal/region"
	"repro/internal/scm"
)

// TestCrashPointsRegion explores every crash point of a region lifecycle —
// statics, pmap into a persistent pointer, durable data writes, and the
// clear-pointer-then-punmap discipline — and checks §4.2's recovery
// contract: tables stay remappable, statics keep their addresses, a
// non-nil persistent pointer always names a live mapped region with its
// acknowledged contents, and at most one region (the in-flight pmap's
// leak window) may exist without a referencing pointer.
func TestCrashPointsRegion(t *testing.T) {
	const (
		wordsA = 8
		wordsB = 8
	)
	workload := func() (*crashpoint.Run, error) {
		dev, err := scm.Open(scm.Config{Size: 2 << 20, Mode: scm.DelayOff})
		if err != nil {
			return nil, err
		}
		dir := t.TempDir()
		// Acknowledged progress, updated by Body as operations complete.
		var ptrA, ptrB pmem.Addr // static slots (recorded once created)
		var bAddr pmem.Addr      // region B's address, for post-unmap checks
		ackedAW, ackedBW := 0, 0 // durable data words in A and B
		cleared, unmapped := false, false

		return &crashpoint.Run{
			Dev: dev,
			Body: func() error {
				rt, err := region.Open(dev, region.Config{Dir: dir, StaticSize: 64 << 10})
				if err != nil {
					return err
				}
				ptrA, _, err = rt.Static("region.crash.ptrA", 8)
				if err != nil {
					return err
				}
				ptrB, _, err = rt.Static("region.crash.ptrB", 8)
				if err != nil {
					return err
				}
				mem := rt.NewMemory()

				a, err := rt.PMapAt(ptrA, scm.PageSize, 0)
				if err != nil {
					return err
				}
				for i := int64(0); i < wordsA; i++ {
					pmem.StoreDurable(mem, a.Add(i*8), 0xA100+uint64(i))
					ackedAW = int(i) + 1
				}

				b, err := rt.PMapAt(ptrB, 2*scm.PageSize, 0)
				if err != nil {
					return err
				}
				bAddr = b
				for i := int64(0); i < wordsB; i++ {
					pmem.StoreDurable(mem, b.Add(i*8), 0xB200+uint64(i))
					ackedBW = int(i) + 1
				}

				// Deletion discipline: durably drop the reference first so
				// the pointer can never dangle, then unmap.
				pmem.StoreDurable(mem, ptrB, 0)
				cleared = true
				if err := rt.PUnmap(b); err != nil {
					return err
				}
				unmapped = true
				return nil
			},
			Check: func() error {
				rt, err := region.Open(dev, region.Config{Dir: dir, StaticSize: 64 << 10})
				if err != nil {
					return fmt.Errorf("region tables not remappable: %w", err)
				}
				defer rt.Close()
				pa, _, err := rt.Static("region.crash.ptrA", 8)
				if err != nil {
					return err
				}
				pb, _, err := rt.Static("region.crash.ptrB", 8)
				if err != nil {
					return err
				}
				if ptrA != pmem.Nil && pa != ptrA {
					return fmt.Errorf("static ptrA moved: %v, was %v", pa, ptrA)
				}
				if ptrB != pmem.Nil && pb != ptrB {
					return fmt.Errorf("static ptrB moved: %v, was %v", pb, ptrB)
				}
				mem := rt.NewMemory()

				av := pmem.Addr(mem.LoadU64(pa))
				if av == pmem.Nil {
					if ackedAW > 0 {
						return fmt.Errorf("region A lost after %d acked writes", ackedAW)
					}
				} else {
					if rt.Region(av) == nil {
						return fmt.Errorf("ptrA names %v but no region is mapped there", av)
					}
					for i := int64(0); i < int64(ackedAW); i++ {
						if v := mem.LoadU64(av.Add(i * 8)); v != 0xA100+uint64(i) {
							return fmt.Errorf("region A word %d reads %#x after %d acked writes", i, v, ackedAW)
						}
					}
				}

				bv := pmem.Addr(mem.LoadU64(pb))
				if cleared && bv != pmem.Nil {
					return fmt.Errorf("ptrB reads %v after its durable clear", bv)
				}
				if bv != pmem.Nil {
					if rt.Region(bv) == nil {
						return fmt.Errorf("ptrB dangles: %v is not mapped", bv)
					}
					for i := int64(0); i < int64(ackedBW); i++ {
						if v := mem.LoadU64(bv.Add(i * 8)); v != 0xB200+uint64(i) {
							return fmt.Errorf("region B word %d reads %#x after %d acked writes", i, v, ackedBW)
						}
					}
				} else if ackedBW > 0 && !cleared && ackedBW < wordsB {
					// ptrB became durable before the first write was
					// acknowledged, so it may read nil only once the clear
					// is the one in-flight operation (all writes acked).
					return fmt.Errorf("ptrB lost after %d acked writes with the clear not yet issued", ackedBW)
				}
				if unmapped && bAddr != pmem.Nil && rt.Region(bAddr) != nil {
					return fmt.Errorf("region B still mapped after acked punmap")
				}

				// Leak bound: beyond the regions the two pointers name, at
				// most one unreferenced region may exist — the pmap whose
				// pointer store the crash interrupted.
				staticAddr := rt.StaticRegion().Addr
				unknown := 0
				for _, r := range rt.Regions() {
					if r.Addr == staticAddr || r.Addr == av || r.Addr == bv {
						continue
					}
					if !unmapped && r.Addr == bAddr {
						// B's deletion was in flight; the region may
						// legitimately survive (its pointer is cleared).
						continue
					}
					unknown++
				}
				if unknown > 1 {
					return fmt.Errorf("%d unreferenced regions survived recovery (at most the in-flight pmap may leak)", unknown)
				}
				return nil
			},
		}, nil
	}

	rep, err := crashpoint.Explore(workload, crashpoint.Options{
		Schedule: crashpoint.TestSchedule(testing.Short(), 32),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		for _, f := range rep.Failures {
			t.Errorf("%v", f)
		}
		t.Fatalf("region recovery oracle failed at %d of %d crash points (%s)",
			len(rep.Failures), rep.Points, rep)
	}
	t.Logf("region: %s", rep)
}
