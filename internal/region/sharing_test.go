package region

import (
	"sync"
	"testing"

	"repro/internal/pmem"
	"repro/internal/rawl"
	"repro/internal/scm"
)

// TestProducerConsumerSharing exercises the safe sharing pattern of §4.5:
// "sharing is safe if the processes cooperate to ensure that (i) within
// each region, only one process writes to a log or allocates from a heap,
// and (ii) both processes have started and completed recovery before
// accessing shared data. Thus, producer-consumer style communication ...
// can be implemented safely."
//
// Two runtimes over the same device model the two processes: the producer
// appends work items to a shared tornbit log, the consumer reads them via
// the Lamport single-producer/single-consumer protocol and truncates.
func TestProducerConsumerSharing(t *testing.T) {
	dev, err := scm.Open(scm.Config{Size: 8 << 20, Mode: scm.DelayOff})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	// Process A creates the shared region and the log, and completes
	// "recovery" (its Open) before B starts.
	rtA, err := Open(dev, Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ptr, _, err := rtA.Static("queue", 8)
	if err != nil {
		t.Fatal(err)
	}
	base, err := rtA.PMapAt(ptr, rawl.Size(4096), 0)
	if err != nil {
		t.Fatal(err)
	}
	memA := rtA.NewMemory()
	log, err := rawl.Create(memA, base, 4096)
	if err != nil {
		t.Fatal(err)
	}

	// Process B maps the same device after A finished setting up.
	rtB, err := Open(dev, Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	memB := rtB.NewMemory()

	const items = 2000
	type job struct {
		pos rawl.Pos
		val uint64
	}
	jobs := make(chan job, 64)

	var wg sync.WaitGroup
	wg.Add(2)
	var consumed []uint64
	go func() { // producer: the only writer of the log
		defer wg.Done()
		for i := uint64(0); i < items; i++ {
			for {
				pos, err := log.Append([]uint64{i, i * 3})
				if err == rawl.ErrLogFull {
					continue // wait for the consumer to truncate
				}
				if err != nil {
					t.Error(err)
					return
				}
				log.Flush()
				jobs <- job{pos: pos, val: i}
				break
			}
		}
		close(jobs)
	}()
	go func() { // consumer: truncates with its own runtime's memory
		defer wg.Done()
		for j := range jobs {
			consumed = append(consumed, j.val)
			log.TruncateTo(memB, j.pos)
		}
	}()
	wg.Wait()

	if len(consumed) != items {
		t.Fatalf("consumed %d items", len(consumed))
	}
	for i, v := range consumed {
		if v != uint64(i) {
			t.Fatalf("item %d = %d", i, v)
		}
	}
	// The consumer's view of shared data is coherent.
	if got := memB.LoadU64(pmem.Addr(base)); got == 0 {
		t.Log("log header visible through consumer runtime")
	}
}
