package region

import (
	"testing"

	"repro/internal/scm"
)

func TestRemapFrameMovesDataAndMapping(t *testing.T) {
	dev, err := scm.Open(scm.Config{Size: 4 << 20, Mode: scm.DelayOff, TrackWear: true})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Open(dev, Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := rt.PMap(scm.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	mem := rt.NewMemory()
	mem.WTStoreU64(addr, 0xfeedbead)
	mem.WTStoreU64(addr.Add(2048), 77)
	mem.Fence()

	r := rt.Region(addr)
	oldFrame := r.pages[0]
	newFrame, err := rt.Manager().RemapFrame(oldFrame)
	if err != nil {
		t.Fatal(err)
	}
	if newFrame == oldFrame {
		t.Fatal("frame did not move")
	}
	r.pages[0] = newFrame

	// Data still readable through the same virtual address.
	if got := mem.LoadU64(addr); got != 0xfeedbead {
		t.Fatalf("word after remap = %#x", got)
	}
	if got := mem.LoadU64(addr.Add(2048)); got != 77 {
		t.Fatalf("word2 after remap = %d", got)
	}
	// And the new mapping survives reboot.
	m2, err := BootManager(dev, rt.Manager().Dir())
	if err != nil {
		t.Fatal(err)
	}
	got, ok := m2.LookupFrame(r.fileID, 0)
	if !ok || got != newFrame {
		t.Fatalf("mapping after reboot = %d,%v want %d", got, ok, newFrame)
	}
}

func TestWearLevelMovesHotPages(t *testing.T) {
	dev, err := scm.Open(scm.Config{Size: 8 << 20, Mode: scm.DelayOff, TrackWear: true})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Open(dev, Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := rt.PMap(4*scm.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	mem := rt.NewMemory()
	// Hammer page 0; touch page 2 lightly.
	for i := 0; i < 5000; i++ {
		mem.WTStoreU64(addr, uint64(i))
	}
	mem.Fence()
	mem.WTStoreU64(addr.Add(2*scm.PageSize), 42)
	mem.Fence()

	r := rt.Region(addr)
	hotFrame := r.pages[0]
	if dev.WearCount(rt.Manager().FrameBase(hotFrame)) < 5000 {
		t.Fatalf("wear counter = %d", dev.WearCount(rt.Manager().FrameBase(hotFrame)))
	}
	moved, err := rt.WearLevel(4000)
	if err != nil {
		t.Fatal(err)
	}
	if moved < 1 {
		t.Fatalf("moved %d pages", moved)
	}
	if r.pages[0] == hotFrame {
		t.Fatal("hot page not remapped")
	}
	if got := mem.LoadU64(addr); got != 4999 {
		t.Fatalf("data after wear leveling = %d", got)
	}
	if got := mem.LoadU64(addr.Add(2 * scm.PageSize)); got != 42 {
		t.Fatalf("cold data after wear leveling = %d", got)
	}
}

func TestBootReclaimsDuplicateMappings(t *testing.T) {
	// Fabricate the crash window of RemapFrame: two frames mapping the
	// same (file, page). Boot must keep one and free the other.
	dev, err := scm.Open(scm.Config{Size: 4 << 20, Mode: scm.DelayOff})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	m, err := BootManager(dev, dir)
	if err != nil {
		t.Fatal(err)
	}
	fid, err := m.CreateFile("dup.pr")
	if err != nil {
		t.Fatal(err)
	}
	f1, err := m.AllocFrame(fid, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Write a second PMT entry for the same page directly (the crash
	// leaves exactly this).
	f2, err := m.AllocFrame(fid, 8)
	if err != nil {
		t.Fatal(err)
	}
	m.writePMT(f2, fid, 7)
	free := m.FreeFrames()

	m2, err := BootManager(dev, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := m2.LookupFrame(fid, 7); !ok || (got != f1 && got != f2) {
		t.Fatalf("mapping lost: %d %v", got, ok)
	}
	if m2.FreeFrames() != free+1 {
		t.Fatalf("duplicate not reclaimed: free %d, want %d", m2.FreeFrames(), free+1)
	}
}
