package region

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pmem"
	"repro/internal/scm"
)

func testRuntime(t *testing.T, devSize int64) (*scm.Device, *Runtime) {
	t.Helper()
	dev, err := scm.Open(scm.Config{Size: devSize, Mode: scm.DelayOff})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Open(dev, Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	return dev, rt
}

// reopen simulates a process restart on the same (persistent) device.
func reopen(t *testing.T, dev *scm.Device, rt *Runtime) *Runtime {
	t.Helper()
	dir := rt.cfg.Dir
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	rt2, err := Open(dev, Config{Dir: dir, StaticSize: rt.cfg.StaticSize})
	if err != nil {
		t.Fatal(err)
	}
	return rt2
}

func TestManagerBootFormatsFreshDevice(t *testing.T) {
	dev, err := scm.Open(scm.Config{Size: 1 << 20, Mode: scm.DelayOff})
	if err != nil {
		t.Fatal(err)
	}
	m, err := BootManager(dev, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if m.Frames() <= 0 {
		t.Fatal("no usable frames")
	}
	if m.FreeFrames() != m.Frames() {
		t.Fatalf("free=%d frames=%d", m.FreeFrames(), m.Frames())
	}
}

func TestManagerFrameAllocSurvivesReboot(t *testing.T) {
	dir := t.TempDir()
	dev, err := scm.Open(scm.Config{Size: 1 << 20, Mode: scm.DelayOff})
	if err != nil {
		t.Fatal(err)
	}
	m, err := BootManager(dev, dir)
	if err != nil {
		t.Fatal(err)
	}
	fid, err := m.CreateFile("test.pr")
	if err != nil {
		t.Fatal(err)
	}
	frame, err := m.AllocFrame(fid, 3)
	if err != nil {
		t.Fatal(err)
	}
	free := m.FreeFrames()

	// Reboot: a new manager on the same device must reconstruct the
	// mapping from the persistent mapping table.
	m2, err := BootManager(dev, dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := m2.LookupFrame(fid, 3)
	if !ok || got != frame {
		t.Fatalf("LookupFrame after reboot = %d,%v want %d", got, ok, frame)
	}
	if m2.FreeFrames() != free {
		t.Fatalf("free after reboot = %d, want %d", m2.FreeFrames(), free)
	}
	if id, ok := m2.LookupFile("test.pr"); !ok || id != fid {
		t.Fatalf("file table lost: %d,%v", id, ok)
	}
}

func TestManagerEvictAndFaultRoundTrip(t *testing.T) {
	dir := t.TempDir()
	dev, err := scm.Open(scm.Config{Size: 1 << 20, Mode: scm.DelayOff})
	if err != nil {
		t.Fatal(err)
	}
	m, err := BootManager(dev, dir)
	if err != nil {
		t.Fatal(err)
	}
	fid, err := m.CreateFile("swap.pr")
	if err != nil {
		t.Fatal(err)
	}
	frame, err := m.AllocFrame(fid, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := dev.NewContext()
	ctx.StoreU64(m.FrameBase(frame), 0xfeedface)
	ctx.Flush(m.FrameBase(frame))
	if err := m.EvictFrame(frame); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.LookupFrame(fid, 0); ok {
		t.Fatal("frame still mapped after evict")
	}
	frame2, err := m.FaultIn(fid, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := ctx.LoadU64(m.FrameBase(frame2)); got != 0xfeedface {
		t.Fatalf("faulted page content = %#x", got)
	}
}

func TestRuntimeStaticVariablePersists(t *testing.T) {
	dev, rt := testRuntime(t, 4<<20)
	addr, created, err := rt.Static("counter", 8)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("first Static should create")
	}
	mem := rt.NewMemory()
	pmem.StoreDurable(mem, addr, 41)

	rt2 := reopen(t, dev, rt)
	addr2, created2, err := rt2.Static("counter", 8)
	if err != nil {
		t.Fatal(err)
	}
	if created2 {
		t.Fatal("Static recreated after restart")
	}
	if addr2 != addr {
		t.Fatalf("static moved: %v -> %v", addr, addr2)
	}
	if got := rt2.NewMemory().LoadU64(addr2); got != 41 {
		t.Fatalf("static value = %d, want 41", got)
	}
}

func TestStaticNameTooLongRejected(t *testing.T) {
	_, rt := testRuntime(t, 4<<20)
	long := make([]byte, dirNameMax+1)
	for i := range long {
		long[i] = 'a'
	}
	if _, _, err := rt.Static(string(long), 8); err == nil {
		t.Fatal("expected error for long name")
	}
}

func TestStaticSizeMismatchRejected(t *testing.T) {
	_, rt := testRuntime(t, 4<<20)
	if _, _, err := rt.Static("v", 16); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rt.Static("v", 32); err == nil {
		t.Fatal("expected size-mismatch error")
	}
}

func TestStaticDistinctVariablesDoNotAlias(t *testing.T) {
	_, rt := testRuntime(t, 4<<20)
	a, _, err := rt.Static("a", 64)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := rt.Static("b", 64)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("aliasing statics")
	}
	mem := rt.NewMemory()
	mem.StoreU64(a, 1)
	mem.StoreU64(b, 2)
	if mem.LoadU64(a) != 1 || mem.LoadU64(b) != 2 {
		t.Fatal("statics overlap")
	}
}

func TestPMapDataPersistsAcrossRestart(t *testing.T) {
	dev, rt := testRuntime(t, 4<<20)
	ptr, _, err := rt.Static("root", 8)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := rt.PMapAt(ptr, 2*scm.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	mem := rt.NewMemory()
	if mem.LoadU64(ptr) != uint64(addr) {
		t.Fatal("PMapAt did not store the region address")
	}
	msg := []byte("persistent region payload spanning pages")
	mem.Store(addr.Add(scm.PageSize-16), msg) // crosses the page boundary
	pmem.PublishRange(mem, addr.Add(scm.PageSize-16), int64(len(msg)))

	rt2 := reopen(t, dev, rt)
	mem2 := rt2.NewMemory()
	addr2 := pmem.Addr(mem2.LoadU64(ptr))
	if addr2 != addr {
		t.Fatalf("root pointer changed: %v -> %v", addr, addr2)
	}
	got := make([]byte, len(msg))
	mem2.Load(got, addr2.Add(scm.PageSize-16))
	if string(got) != string(msg) {
		t.Fatalf("payload = %q", got)
	}
}

func TestPMapAddressesNeverReused(t *testing.T) {
	_, rt := testRuntime(t, 4<<20)
	a, err := rt.PMap(scm.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.PUnmap(a); err != nil {
		t.Fatal(err)
	}
	b, err := rt.PMap(scm.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b == a {
		t.Fatal("address reused after punmap")
	}
}

func TestPUnmapFreesFramesAndFile(t *testing.T) {
	_, rt := testRuntime(t, 4<<20)
	free := rt.Manager().FreeFrames()
	a, err := rt.PMap(4*scm.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Manager().FreeFrames() != free-4 {
		t.Fatalf("frames not allocated: %d", rt.Manager().FreeFrames())
	}
	if err := rt.PUnmap(a); err != nil {
		t.Fatal(err)
	}
	if rt.Manager().FreeFrames() != free {
		t.Fatalf("frames leaked: %d != %d", rt.Manager().FreeFrames(), free)
	}
	files, err := filepath.Glob(filepath.Join(rt.Manager().Dir(), "region-*.pr"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Fatalf("backing files leaked: %v", files)
	}
}

func TestPUnmapUnknownRegionFails(t *testing.T) {
	_, rt := testRuntime(t, 4<<20)
	if err := rt.PUnmap(pmem.Base.Add(1 << 30)); err == nil {
		t.Fatal("expected error")
	}
}

func TestCrashDuringPMapRollsBack(t *testing.T) {
	// Simulate a crash after the intention record but before completion:
	// fabricate a "creating" entry, then reopen. Recovery must destroy
	// it.
	dev, rt := testRuntime(t, 4<<20)
	addr, err := rt.PMap(scm.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rt.lookupRegion(addr)
	ent := rt.tableEntry(r.slot)
	rt.storeStatic(ent, stateCreating)
	rt.ctx.Fence()
	free := rt.Manager().FreeFrames()

	rt2 := reopen(t, dev, rt)
	if got := rt2.lookupRegion(addr); got != nil {
		t.Fatal("partially created region mapped after recovery")
	}
	if state, _, _, _, _ := rt2.readEntry(r.slot); state != stateFree {
		t.Fatalf("slot state = %d, want free", state)
	}
	if rt2.Manager().FreeFrames() != free+1 {
		t.Fatalf("frames not reclaimed: %d, want %d", rt2.Manager().FreeFrames(), free+1)
	}
}

func TestUnflushedWritesLostOnCrash(t *testing.T) {
	dev, rt := testRuntime(t, 4<<20)
	addr, err := rt.PMap(scm.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	mem := rt.NewMemory()
	mem.StoreU64(addr, 123) // never flushed
	mem.StoreU64(addr.Add(64), 456)
	mem.Flush(addr.Add(64))
	dev.Crash(scm.DropAll{})
	if got := mem.LoadU64(addr); got != 0 {
		t.Fatalf("unflushed write survived: %d", got)
	}
	if got := mem.LoadU64(addr.Add(64)); got != 456 {
		t.Fatalf("flushed write lost: %d", got)
	}
}

func TestSwappableRegionLargerThanSCM(t *testing.T) {
	// Device: 1 MB (256 frames, minus metadata). Region: 2 MB swappable.
	dev, err := scm.Open(scm.Config{Size: 1 << 20, Mode: scm.DelayOff})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Open(dev, Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := rt.PMap(2<<20, FlagSwappable)
	if err != nil {
		t.Fatal(err)
	}
	mem := rt.NewMemory()
	// Touch every page: must evict to make progress.
	npages := int64(2 << 20 / scm.PageSize)
	for p := int64(0); p < npages; p++ {
		mem.WTStoreU64(addr.Add(p*scm.PageSize), uint64(p)+1)
		mem.Fence()
	}
	// Re-read everything: evicted pages fault back in from the file.
	for p := int64(0); p < npages; p++ {
		if got := mem.LoadU64(addr.Add(p * scm.PageSize)); got != uint64(p)+1 {
			t.Fatalf("page %d = %d, want %d", p, got, p+1)
		}
	}
}

func TestSwappableDataSurvivesRestart(t *testing.T) {
	dev, err := scm.Open(scm.Config{Size: 1 << 20, Mode: scm.DelayOff})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	rt, err := Open(dev, Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ptr, _, err := rt.Static("swaproot", 8)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := rt.PMapAt(ptr, 2<<20, FlagSwappable)
	if err != nil {
		t.Fatal(err)
	}
	mem := rt.NewMemory()
	npages := int64(2 << 20 / scm.PageSize)
	for p := int64(0); p < npages; p++ {
		mem.WTStoreU64(addr.Add(p*scm.PageSize), uint64(p)^0xabcd)
		mem.Fence()
	}

	rt2 := reopen(t, dev, rt)
	mem2 := rt2.NewMemory()
	for p := int64(0); p < npages; p++ {
		if got := mem2.LoadU64(addr.Add(p * scm.PageSize)); got != uint64(p)^0xabcd {
			t.Fatalf("page %d = %#x after restart", p, got)
		}
	}
}

func TestManyRegionsReincarnate(t *testing.T) {
	dev, rt := testRuntime(t, 8<<20)
	var addrs []pmem.Addr
	mem := rt.NewMemory()
	for i := 0; i < 20; i++ {
		a, err := rt.PMap(scm.PageSize, 0)
		if err != nil {
			t.Fatal(err)
		}
		pmem.StoreDurable(mem, a, uint64(i)*7+1)
		addrs = append(addrs, a)
	}
	rt2 := reopen(t, dev, rt)
	if rt2.Stats().RegionsMapped != 20 {
		t.Fatalf("RegionsMapped = %d", rt2.Stats().RegionsMapped)
	}
	mem2 := rt2.NewMemory()
	for i, a := range addrs {
		if got := mem2.LoadU64(a); got != uint64(i)*7+1 {
			t.Fatalf("region %d = %d", i, got)
		}
	}
}

func TestRegionPathEnvVar(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("MNEMOSYNE_REGION_PATH", dir)
	dev, err := scm.Open(scm.Config{Size: 4 << 20, Mode: scm.DelayOff})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Open(dev, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.PMap(scm.PageSize, 0); err != nil {
		t.Fatal(err)
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no backing files in MNEMOSYNE_REGION_PATH dir")
	}
}

func TestAccessToUnmappedAddressPanics(t *testing.T) {
	_, rt := testRuntime(t, 4<<20)
	mem := rt.NewMemory()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	mem.LoadU64(pmem.Base.Add(1 << 35))
}

func TestConcurrentMemoriesDisjointRegions(t *testing.T) {
	_, rt := testRuntime(t, 8<<20)
	const workers = 4
	addrs := make([]pmem.Addr, workers)
	for i := range addrs {
		a, err := rt.PMap(4*scm.PageSize, 0)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = a
	}
	done := make(chan bool, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			mem := rt.NewMemory()
			base := addrs[w]
			for i := int64(0); i < 2000; i++ {
				off := (i % 2048) * 8
				mem.StoreU64(base.Add(off), uint64(w+1)*1000+uint64(i))
				if i%32 == 0 {
					mem.Flush(base.Add(off))
				}
			}
			done <- true
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
}
