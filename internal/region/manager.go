// Package region implements Mnemosyne's persistent regions (§3.1, §4.2 of
// the paper): segments of the persistent virtual address space backed by
// storage-class memory and swappable to backing files.
//
// The package has two layers, mirroring the paper's architecture:
//
//   - Manager is the kernel-side region manager. It owns the SCM frame
//     allocator and the persistent mapping table (PMT) stored at the base
//     of physical SCM, which records <scm frame, backing file, page offset>
//     triples so that virtual-to-physical mappings survive reboot. Boot
//     reconstruction scans the PMT, rebuilds the free list and the reverse
//     map, and reattaches backing files.
//
//   - Runtime is the user-side libmnemosyne layer. It keeps a region table
//     in the static persistent region — which doubles as an intention log
//     for region creation — implements pmap/punmap and pstatic variables,
//     and hands out per-goroutine Memory views that translate persistent
//     addresses to device offsets.
package region

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/scm"
)

// Manager metadata layout at the base of the device:
//
//	offset 0:   magic (8 bytes)
//	offset 8:   frame count (8 bytes)
//	offset 64:  file table, maxFiles entries of 64 bytes
//	            {nameLen u64, name [56]byte}; id = index+1
//	after:      persistent mapping table, one 16-byte entry per frame
//	            {fileID u64, pageOff u64}; fileID 0 marks a free frame
const (
	mgrMagic     = 0x4d4e5245474d4752 // "MNREGMGR"
	maxFiles     = 256
	fileEntSize  = 64
	fileNameMax  = 56
	fileTableOff = 64
	pmtOff       = fileTableOff + maxFiles*fileEntSize
	pmtEntSize   = 16
)

// ErrNoFrames reports that physical SCM is exhausted; the caller may evict
// a resident page and retry.
var ErrNoFrames = errors.New("region: out of SCM frames")

// Manager is the kernel-side region manager.
type Manager struct {
	dev *scm.Device
	ctx *scm.Context
	dir string

	nframes    int32
	metaFrames int32

	mu      sync.Mutex
	free    []int32
	reverse map[uint64]int32 // fileID<<48|pageOff -> frame
	info    []frameInfo      // volatile copy of the PMT, indexed by frame
	files   map[uint32]*os.File
	names   map[string]uint32

	bootTime time.Duration
}

type frameInfo struct {
	fileID  uint32
	pageOff uint64
}

func fileKey(fileID uint32, pageOff uint64) uint64 {
	return uint64(fileID)<<48 | pageOff
}

// BootManager attaches to the device, reconstructs mappings from the
// persistent mapping table, and reopens backing files in dir. This is the
// OS-boot reconstruction path of §4.2, timed by the reincarnation
// benchmark.
func BootManager(dev *scm.Device, dir string) (*Manager, error) {
	start := time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	m := &Manager{
		dev:     dev,
		ctx:     dev.NewContext(),
		dir:     dir,
		files:   make(map[uint32]*os.File),
		names:   make(map[string]uint32),
		reverse: make(map[uint64]int32),
	}
	total := dev.Size() / scm.PageSize
	if total > 1<<31 {
		return nil, errors.New("region: device too large")
	}
	m.nframes = int32(total)
	metaBytes := int64(pmtOff) + int64(m.nframes)*pmtEntSize
	m.metaFrames = int32((metaBytes + scm.PageSize - 1) / scm.PageSize)
	if m.metaFrames >= m.nframes {
		return nil, errors.New("region: device too small for mapping table")
	}

	if m.ctx.LoadU64(0) != mgrMagic {
		// Fresh device: format the metadata area.
		m.ctx.WTStoreU64(8, uint64(m.nframes))
		for f := int32(0); f < m.nframes; f++ {
			m.ctx.WTStoreU64(m.pmtEntry(f), 0)
			m.ctx.WTStoreU64(m.pmtEntry(f)+8, 0)
		}
		for i := 0; i < maxFiles; i++ {
			m.ctx.WTStoreU64(fileTableOff+int64(i)*fileEntSize, 0)
		}
		m.ctx.Fence()
		m.ctx.WTStoreU64(0, mgrMagic)
		m.ctx.Fence()
	} else if got := m.ctx.LoadU64(8); got != uint64(m.nframes) {
		return nil, fmt.Errorf("region: device formatted with %d frames, have %d", got, m.nframes)
	}

	// Reconstruct the file table.
	for i := 0; i < maxFiles; i++ {
		ent := fileTableOff + int64(i)*fileEntSize
		nameLen := m.ctx.LoadU64(ent)
		if nameLen == 0 || nameLen > fileNameMax {
			continue
		}
		buf := make([]byte, nameLen)
		m.ctx.Load(buf, ent+8)
		m.names[string(buf)] = uint32(i + 1)
	}

	// Scan the PMT: rebuild the free list and reverse map, the moral
	// equivalent of updating Linux page descriptors and creating VFS
	// inodes for each mapping.
	m.info = make([]frameInfo, m.nframes)
	for f := m.metaFrames; f < m.nframes; f++ {
		ent := m.pmtEntry(f)
		fid := uint32(m.ctx.LoadU64(ent))
		off := m.ctx.LoadU64(ent + 8)
		if fid == 0 {
			m.free = append(m.free, f)
			continue
		}
		if _, ok := m.reverse[fileKey(fid, off)]; ok {
			// A crash during a wear-leveling remap can leave two
			// frames mapping the same page with identical contents;
			// keep the first and reclaim the duplicate.
			m.writePMT(f, 0, 0)
			m.free = append(m.free, f)
			continue
		}
		m.info[f] = frameInfo{fileID: fid, pageOff: off}
		m.reverse[fileKey(fid, off)] = f
	}
	m.bootTime = time.Since(start)
	return m, nil
}

// BootTime reports how long boot reconstruction took (§6.3.2).
func (m *Manager) BootTime() time.Duration { return m.bootTime }

// Frames reports the number of usable (non-metadata) frames.
func (m *Manager) Frames() int { return int(m.nframes - m.metaFrames) }

// FreeFrames reports how many frames are currently unallocated.
func (m *Manager) FreeFrames() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.free)
}

// Dir returns the backing-file directory.
func (m *Manager) Dir() string { return m.dir }

func (m *Manager) pmtEntry(frame int32) int64 {
	return pmtOff + int64(frame)*pmtEntSize
}

// FrameBase returns the device offset of a frame.
func (m *Manager) FrameBase(frame int32) int64 {
	return int64(frame) * scm.PageSize
}

// writePMT durably records a frame's mapping.
func (m *Manager) writePMT(frame int32, fid uint32, pageOff uint64) {
	ent := m.pmtEntry(frame)
	m.ctx.WTStoreU64(ent, uint64(fid))
	m.ctx.WTStoreU64(ent+8, pageOff)
	m.ctx.Fence()
}

// CreateFile registers (or finds) a backing file by name and returns its
// stable id. The registration is durable before the function returns.
func (m *Manager) CreateFile(name string) (uint32, error) {
	if len(name) == 0 || len(name) > fileNameMax {
		return 0, fmt.Errorf("region: bad backing file name %q", name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if id, ok := m.names[name]; ok {
		return id, nil
	}
	for i := 0; i < maxFiles; i++ {
		ent := fileTableOff + int64(i)*fileEntSize
		if m.ctx.LoadU64(ent) != 0 {
			continue
		}
		m.ctx.WTStore(ent+8, []byte(name))
		m.ctx.Fence()
		m.ctx.WTStoreU64(ent, uint64(len(name)))
		m.ctx.Fence()
		id := uint32(i + 1)
		m.names[name] = id
		return id, nil
	}
	return 0, errors.New("region: file table full")
}

// LookupFile returns the id of a registered backing file.
func (m *Manager) LookupFile(name string) (uint32, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id, ok := m.names[name]
	return id, ok
}

// DeleteFile unregisters a backing file and removes it from disk. All its
// frames must have been freed first.
func (m *Manager) DeleteFile(id uint32) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var name string
	for n, i := range m.names {
		if i == id {
			name = n
			break
		}
	}
	if name == "" {
		return fmt.Errorf("region: no file with id %d", id)
	}
	ent := fileTableOff + int64(id-1)*fileEntSize
	m.ctx.WTStoreU64(ent, 0)
	m.ctx.Fence()
	delete(m.names, name)
	if f, ok := m.files[id]; ok {
		f.Close()
		delete(m.files, id)
	}
	err := os.Remove(filepath.Join(m.dir, name))
	if errors.Is(err, os.ErrNotExist) {
		err = nil
	}
	return err
}

func (m *Manager) fileName(id uint32) string {
	for n, i := range m.names {
		if i == id {
			return n
		}
	}
	return ""
}

// handle returns (opening if necessary) the OS file for a backing file id.
// Caller holds m.mu.
func (m *Manager) handle(id uint32) (*os.File, error) {
	if f, ok := m.files[id]; ok {
		return f, nil
	}
	name := m.fileName(id)
	if name == "" {
		return nil, fmt.Errorf("region: unknown file id %d", id)
	}
	f, err := os.OpenFile(filepath.Join(m.dir, name), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	m.files[id] = f
	return f, nil
}

// AllocFrame allocates a free SCM frame for page pageOff of file fid and
// durably records the mapping. Returns ErrNoFrames when SCM is full; the
// caller (the runtime) evicts and retries.
func (m *Manager) AllocFrame(fid uint32, pageOff uint64) (int32, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.free) == 0 {
		return 0, ErrNoFrames
	}
	frame := m.free[len(m.free)-1]
	m.free = m.free[:len(m.free)-1]
	m.info[frame] = frameInfo{fileID: fid, pageOff: pageOff}
	m.reverse[fileKey(fid, pageOff)] = frame
	m.writePMT(frame, fid, pageOff)
	return frame, nil
}

// FreeFrame durably releases a frame without writing its contents
// anywhere. Used when destroying a region.
func (m *Manager) FreeFrame(frame int32) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.freeLocked(frame)
}

func (m *Manager) freeLocked(frame int32) {
	fi := m.info[frame]
	if fi.fileID != 0 {
		delete(m.reverse, fileKey(fi.fileID, fi.pageOff))
		m.info[frame] = frameInfo{}
	}
	m.writePMT(frame, 0, 0)
	m.free = append(m.free, frame)
}

// LookupFrame finds the resident frame holding page pageOff of file fid.
func (m *Manager) LookupFrame(fid uint32, pageOff uint64) (int32, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.reverse[fileKey(fid, pageOff)]
	return f, ok
}

// EvictFrame writes a frame's contents back to its backing file and frees
// the frame. This is the memory-pressure swap path of §4.2.
func (m *Manager) EvictFrame(frame int32) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	fi := m.info[frame]
	if fi.fileID == 0 {
		return fmt.Errorf("region: evicting unmapped frame %d", frame)
	}
	f, err := m.handle(fi.fileID)
	if err != nil {
		return err
	}
	buf := make([]byte, scm.PageSize)
	m.ctx.Load(buf, m.FrameBase(frame))
	if _, err := f.WriteAt(buf, int64(fi.pageOff)*scm.PageSize); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	m.freeLocked(frame)
	return nil
}

// RemapFrame migrates a frame's contents and mapping to a fresh frame,
// spreading writes across physical SCM (§4.5: "virtualization enables
// remapping heavily used virtual pages to spread writes to different
// physical PCM frames"). Returns the new frame. The caller must update
// its page tables and guarantee no concurrent access to the page.
//
// The new mapping is written before the old one is freed, so a crash in
// between leaves a duplicate mapping (both frames hold identical durable
// contents) that boot reconstruction reclaims.
func (m *Manager) RemapFrame(frame int32) (int32, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fi := m.info[frame]
	if fi.fileID == 0 {
		return 0, fmt.Errorf("region: remapping unmapped frame %d", frame)
	}
	if len(m.free) == 0 {
		return 0, ErrNoFrames
	}
	newF := m.free[len(m.free)-1]
	m.free = m.free[:len(m.free)-1]

	buf := make([]byte, scm.PageSize)
	m.ctx.Load(buf, m.FrameBase(frame))
	m.dev.DurableFill(m.FrameBase(newF), buf)

	m.writePMT(newF, fi.fileID, fi.pageOff)
	m.writePMT(frame, 0, 0)
	m.info[newF] = fi
	m.info[frame] = frameInfo{}
	m.reverse[fileKey(fi.fileID, fi.pageOff)] = newF
	m.free = append(m.free, frame)
	return newF, nil
}

// FaultIn loads page pageOff of file fid into a free frame, returning the
// frame. A page beyond the file's current size reads as zeros (a fresh
// page). Returns ErrNoFrames when SCM is full.
func (m *Manager) FaultIn(fid uint32, pageOff uint64) (int32, error) {
	frame, err := m.AllocFrame(fid, pageOff)
	if err != nil {
		return 0, err
	}
	m.mu.Lock()
	f, err := m.handle(fid)
	m.mu.Unlock()
	if err != nil {
		m.FreeFrame(frame)
		return 0, err
	}
	buf := make([]byte, scm.PageSize)
	n, err := f.ReadAt(buf, int64(pageOff)*scm.PageSize)
	if err != nil && err != io.EOF {
		m.FreeFrame(frame)
		return 0, err
	}
	for i := n; i < len(buf); i++ {
		buf[i] = 0
	}
	// The faulted-in contents are already durable (they came from the
	// file); fill the frame through the DMA path so a crash cannot
	// revert it to stale prior contents.
	m.dev.DurableFill(m.FrameBase(frame), buf)
	return frame, nil
}

// Close closes all backing file handles. Device contents are untouched.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var first error
	for id, f := range m.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		delete(m.files, id)
	}
	return first
}
