package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

var telSlowCaptured = NewCounter("telemetry_slow_captures_total",
	"Transactions captured by the slow-commit flight recorder.")

// SpanView is one span of a captured slow transaction, with the phase
// rendered by name for direct JSON consumption.
type SpanView struct {
	ID      uint64 `json:"id"`
	Parent  uint64 `json:"parent"`
	Phase   string `json:"phase"`
	TID     uint64 `json:"tid"`
	StartNs int64  `json:"start_ns"`
	EndNs   int64  `json:"end_ns"`
	DurNs   int64  `json:"dur_ns"`
}

// SlowEntry is one captured slow transaction: the root span plus every
// descendant the span ring still held at capture time.
type SlowEntry struct {
	Root       uint64     `json:"root"`
	Phase      string     `json:"phase"`
	TID        uint64     `json:"tid"`
	DurNs      int64      `json:"dur_ns"`
	StartNs    int64      `json:"start_ns"`
	CapturedAt time.Time  `json:"captured_at"`
	Spans      []SpanView `json:"spans"`
}

// maxEntrySpans caps the tree captured per entry; a pathological fan-out
// must not turn one capture into a megabyte of JSON.
const maxEntrySpans = 1024

// Recorder is the always-on slow-commit flight recorder: root spans whose
// duration meets the threshold are captured with their full span tree,
// and the N slowest within a sliding window are retained. The hot path
// pays one comparison per root span; capture itself (a span-ring scan) is
// paid only by transactions that were already slow.
type Recorder struct {
	thresholdNs atomic.Int64 // 0 = disarmed

	mu      sync.Mutex
	keep    int
	window  time.Duration
	entries []*SlowEntry
}

// DefaultRecorder is the process-wide flight recorder, disarmed until
// Configure sets a threshold.
var DefaultRecorder = &Recorder{keep: 8, window: 10 * time.Minute}

// Configure arms the recorder: root spans lasting at least threshold are
// captured, the keep slowest within the sliding window are retained.
// keep <= 0 keeps the previous (default 8); window <= 0 keeps the
// previous (default 10m). A non-positive threshold disarms the recorder.
func (r *Recorder) Configure(threshold time.Duration, keep int, window time.Duration) {
	r.mu.Lock()
	if keep > 0 {
		r.keep = keep
		if len(r.entries) > keep {
			sort.Slice(r.entries, func(i, j int) bool { return r.entries[i].DurNs > r.entries[j].DurNs })
			r.entries = r.entries[:keep]
		}
	}
	if window > 0 {
		r.window = window
	}
	r.mu.Unlock()
	if threshold <= 0 {
		r.thresholdNs.Store(0)
		if r == DefaultRecorder {
			spanStateClear(spanRecordBit)
		}
		return
	}
	phaseInit()
	ensureSpanRing()
	r.thresholdNs.Store(threshold.Nanoseconds())
	if r == DefaultRecorder {
		spanStateSet(spanRecordBit)
	}
}

// Threshold returns the current capture threshold (0 = disarmed).
func (r *Recorder) Threshold() time.Duration {
	return time.Duration(r.thresholdNs.Load())
}

// offer is called by Span.End for every completed root span while the
// recorder is armed. Fast path: one atomic load and one comparison.
func (r *Recorder) offer(id uint64, ph Phase, tid uint64, start, end int64) {
	th := r.thresholdNs.Load()
	dur := end - start
	if th <= 0 || dur < th {
		return
	}
	r.capture(&SlowEntry{
		Root:    id,
		Phase:   ph.String(),
		TID:     tid,
		DurNs:   dur,
		StartNs: start,
	})
}

// capture reassembles the root's span tree from the span record ring and
// inserts the entry, evicting expired entries and — when full — the
// fastest retained one.
func (r *Recorder) capture(e *SlowEntry) {
	records := spanRingSnapshot()
	children := make(map[uint64][]*SpanRecord)
	var rootRec *SpanRecord
	for i := range records {
		rec := &records[i]
		if rec.ID == e.Root {
			rootRec = rec
			continue
		}
		children[rec.Parent] = append(children[rec.Parent], rec)
	}
	add := func(rec *SpanRecord) {
		e.Spans = append(e.Spans, SpanView{
			ID: rec.ID, Parent: rec.Parent, Phase: rec.Phase.String(),
			TID: rec.TID, StartNs: rec.Start, EndNs: rec.End,
			DurNs: rec.End - rec.Start,
		})
	}
	if rootRec != nil {
		add(rootRec)
	} else {
		// The root's own record may have been overwritten (or raced) in
		// the ring; synthesize it from the offer so the entry always has
		// its root interval.
		e.Spans = append(e.Spans, SpanView{
			ID: e.Root, Phase: e.Phase, TID: e.TID,
			StartNs: e.StartNs, EndNs: e.StartNs + e.DurNs, DurNs: e.DurNs,
		})
	}
	// BFS over parent links: every included non-root span's parent is in
	// the entry by construction, so the dump is always a well-formed tree.
	queue := []uint64{e.Root}
	for len(queue) > 0 && len(e.Spans) < maxEntrySpans {
		id := queue[0]
		queue = queue[1:]
		for _, rec := range children[id] {
			if len(e.Spans) >= maxEntrySpans {
				break
			}
			add(rec)
			queue = append(queue, rec.ID)
		}
	}
	sort.Slice(e.Spans, func(i, j int) bool { return e.Spans[i].StartNs < e.Spans[j].StartNs })

	// Stamp CapturedAt only now: tree reassembly above scans the whole
	// span ring, and the sliding window should measure retention from the
	// moment the entry lands, not from when the root span ended.
	e.CapturedAt = time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expireLocked(e.CapturedAt)
	if len(r.entries) >= r.keep {
		// Replace the fastest retained entry — but only if the newcomer
		// is slower.
		min := 0
		for i, old := range r.entries {
			if old.DurNs < r.entries[min].DurNs {
				min = i
			}
		}
		if r.entries[min].DurNs >= e.DurNs {
			return
		}
		r.entries[min] = e
	} else {
		r.entries = append(r.entries, e)
	}
	telSlowCaptured.Inc()
}

// expireLocked drops entries captured before the sliding window.
func (r *Recorder) expireLocked(now time.Time) {
	if r.window <= 0 {
		return
	}
	cutoff := now.Add(-r.window)
	kept := r.entries[:0]
	for _, e := range r.entries {
		if e.CapturedAt.After(cutoff) {
			kept = append(kept, e)
		}
	}
	r.entries = kept
}

// Entries returns the retained slow transactions, slowest first.
func (r *Recorder) Entries() []*SlowEntry {
	r.mu.Lock()
	r.expireLocked(time.Now())
	out := make([]*SlowEntry, len(r.entries))
	copy(out, r.entries)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].DurNs > out[j].DurNs })
	return out
}

// WriteJSON dumps the recorder state as a JSON document — the payload of
// the /debug/mnemosyne/slow endpoint and `pmctl slow`.
func (r *Recorder) WriteJSON(w io.Writer) error {
	entries := r.Entries()
	if entries == nil {
		entries = []*SlowEntry{}
	}
	r.mu.Lock()
	window, keep := r.window, r.keep
	r.mu.Unlock()
	out := struct {
		ThresholdNs int64        `json:"threshold_ns"`
		WindowNs    int64        `json:"window_ns"`
		Keep        int          `json:"keep"`
		Entries     []*SlowEntry `json:"entries"`
	}{r.thresholdNs.Load(), int64(window), keep, entries}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteChromeJSON renders the retained slow transactions as Chrome
// trace_event complete ("X") events, one trace row per capture's root
// span id, loadable at chrome://tracing or ui.perfetto.dev.
func (r *Recorder) WriteChromeJSON(w io.Writer) error {
	entries := r.Entries()
	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	for _, e := range entries {
		for _, sp := range e.Spans {
			sep := ",\n"
			if first {
				sep = ""
				first = false
			}
			if _, err := fmt.Fprintf(w,
				"%s{\"name\":%q,\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"span\":%d,\"parent\":%d,\"root\":%d}}",
				sep, sp.Phase, sp.TID, float64(sp.StartNs)/1e3, float64(sp.DurNs)/1e3,
				sp.ID, sp.Parent, e.Root); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}
