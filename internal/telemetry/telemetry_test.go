package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewRegistry().Histogram("h", "")
	// Bucket i holds values with bits.Len64(v) == i.
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1 << 40, 41}, {-5, 0},
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	counts := h.BucketCounts()
	want := map[int]uint64{0: 2, 1: 1, 2: 2, 3: 2, 4: 1, 10: 1, 11: 1, 41: 1}
	for i, c := range counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	if h.Count() != uint64(len(cases)) {
		t.Errorf("count = %d, want %d", h.Count(), len(cases))
	}
}

func TestHistogramBucketUpper(t *testing.T) {
	for _, c := range []struct {
		i    int
		want uint64
	}{{0, 0}, {1, 1}, {2, 3}, {3, 7}, {11, 2047}} {
		if got := bucketUpper(c.i); got != c.want {
			t.Errorf("bucketUpper(%d) = %d, want %d", c.i, got, c.want)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewRegistry().Histogram("h", "")
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", q)
	}
	// 100 observations of 100ns and one of 1ms: p50 must sit in
	// 100's bucket [64,128), p99.9 in the millisecond bucket.
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	h.Observe(1_000_000)
	if q := h.Quantile(0.50); q < 64 || q > 128 {
		t.Errorf("p50 = %v, want within [64,128]", q)
	}
	if q := h.Quantile(0.999); q < 524288 || q > 1048576 {
		t.Errorf("p99.9 = %v, want within the 1ms bucket", q)
	}
	if m := h.Mean(); math.Abs(m-(100*100+1_000_000)/101.0) > 1 {
		t.Errorf("mean = %v", m)
	}
}

func TestCounterConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i))
				// Concurrent reads must be race-clean.
				_ = c.Value()
				_ = h.Quantile(0.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge = %d, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x", "") != r.Counter("x", "other help") {
		t.Error("same name returned distinct counters")
	}
	if r.Histogram("x", "") != r.Histogram("x", "") {
		t.Error("same name returned distinct histograms")
	}
}

func TestTracerWraparound(t *testing.T) {
	tr := NewTracer(10) // rounds up to 16
	if tr.Capacity() != 16 {
		t.Fatalf("capacity = %d, want 16", tr.Capacity())
	}
	tr.Emit(EvFence, 1, 1, 1) // dropped: not enabled
	tr.Enable()
	defer tr.Disable()
	const emitted = 40
	for i := 0; i < emitted; i++ {
		tr.Emit(EvLogAppend, uint64(i), uint64(i), 0)
	}
	evs := tr.Events()
	if len(evs) != 16 {
		t.Fatalf("events = %d, want 16 (ring capacity)", len(evs))
	}
	// The ring must retain exactly the newest 16 events, in order.
	for i, e := range evs {
		wantA := uint64(emitted - 16 + i)
		if e.A != wantA {
			t.Errorf("event %d: A = %d, want %d", i, e.A, wantA)
		}
		if e.Kind != EvLogAppend {
			t.Errorf("event %d: kind = %v", i, e.Kind)
		}
		if i > 0 && e.TS < evs[i-1].TS {
			t.Errorf("event %d out of order", i)
		}
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(64)
	tr.Enable()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Emit(EvFence, uint64(w), uint64(i), 0)
				if i%100 == 0 {
					_ = tr.Events()
				}
			}
		}(w)
	}
	wg.Wait()
	if n := len(tr.Events()); n == 0 || n > 64 {
		t.Errorf("events = %d, want (0,64]", n)
	}
}

func TestChromeTraceJSON(t *testing.T) {
	tr := NewTracer(16)
	tr.Enable()
	tr.Emit(EvTxnBegin, 3, 0, 0)
	tr.Emit(EvTxnCommit, 3, 1500, 8)
	tr.Emit(EvFence, 3, 64, 0)
	var b strings.Builder
	if err := tr.WriteChromeJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TID  uint64  `json:"tid"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("events = %d, want 3", len(doc.TraceEvents))
	}
	byName := map[string]string{}
	for _, e := range doc.TraceEvents {
		byName[e.Name] = e.Ph
	}
	if byName["txn_commit"] != "X" {
		t.Errorf("txn_commit ph = %q, want X (duration event)", byName["txn_commit"])
	}
	if byName["fence"] != "i" {
		t.Errorf("fence ph = %q, want i (instant event)", byName["fence"])
	}
}

func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("scm_fences_total", "fence operations")
	c.Add(42)
	g := r.Gauge("region_regions_mapped", "regions mapped at open")
	g.Set(7)
	r.Sampled("heap_free_bytes", "free heap bytes", func() float64 { return 3.5 })
	h := r.Histogram("commit_latency_ns", "commit latency")
	h.Observe(1) // bucket 1, le="1"
	h.Observe(2) // bucket 2, le="3"
	h.Observe(3) // bucket 2
	h.Observe(9) // bucket 4, le="15"

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP commit_latency_ns commit latency
# TYPE commit_latency_ns histogram
commit_latency_ns_bucket{le="0"} 0
commit_latency_ns_bucket{le="1"} 1
commit_latency_ns_bucket{le="3"} 3
commit_latency_ns_bucket{le="7"} 3
commit_latency_ns_bucket{le="15"} 4
commit_latency_ns_bucket{le="+Inf"} 4
commit_latency_ns_sum 15
commit_latency_ns_count 4
# HELP heap_free_bytes free heap bytes
# TYPE heap_free_bytes gauge
heap_free_bytes 3.5
# HELP region_regions_mapped regions mapped at open
# TYPE region_regions_mapped gauge
region_regions_mapped 7
# HELP scm_fences_total fence operations
# TYPE scm_fences_total counter
scm_fences_total 42
`
	if b.String() != want {
		t.Errorf("prometheus output mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "").Add(5)
	h := r.Histogram("lat", "")
	h.Observe(100)
	h.Observe(200)
	s := r.Snapshot()
	if s["c"] != 5 {
		t.Errorf("c = %v", s["c"])
	}
	if s["lat_count"] != 2 || s["lat_sum"] != 300 {
		t.Errorf("lat_count=%v lat_sum=%v", s["lat_count"], s["lat_sum"])
	}
	if _, ok := s["lat_p99"]; !ok {
		t.Error("missing lat_p99")
	}
}

func TestKindNames(t *testing.T) {
	for k := EvNone; k < numKinds; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if fmt.Sprint(EvRecoveryReplay) != "recovery_replay" {
		t.Errorf("EvRecoveryReplay = %v", EvRecoveryReplay)
	}
}
