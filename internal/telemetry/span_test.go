package telemetry

import (
	"sync"
	"testing"
	"time"
)

// spanTestCleanup restores the global span state a test mutated.
func spanTestCleanup(t *testing.T) {
	t.Cleanup(func() {
		DisableAttribution()
		DefaultTracer.Disable()
		DefaultRecorder.Configure(0, 0, 0)
	})
}

func TestSpanDisabledIsZero(t *testing.T) {
	if SpansOn() {
		t.Skip("another test left span consumers enabled")
	}
	sp := SpanBegin(PhaseTxn, 1, 0)
	if sp.ID != 0 {
		t.Fatalf("disabled SpanBegin minted id %d, want zero span", sp.ID)
	}
	sp.End() // must be a no-op, not a panic
}

// TestSpanRingWraparound overfills the span record ring and checks that a
// snapshot stays bounded and every surviving record is coherent — the
// seqlock must hide torn slots, and wraparound must drop oldest-first.
func TestSpanRingWraparound(t *testing.T) {
	spanTestCleanup(t)
	EnableAttribution()
	mark := SpanBegin(PhaseTxn, 0, 0)
	floor := mark.ID
	mark.End()

	const n = (1 << spanRingBits) + 2048
	var last uint64
	for i := 0; i < n; i++ {
		sp := SpanBegin(PhaseLogFence, 7, 0)
		last = sp.ID
		sp.End()
	}
	recs := spanRingSnapshot()
	if len(recs) > 1<<spanRingBits {
		t.Fatalf("snapshot returned %d records, ring holds %d", len(recs), 1<<spanRingBits)
	}
	seen := map[uint64]bool{}
	found := false
	for _, r := range recs {
		if r.ID == 0 {
			t.Fatal("snapshot contains a zero-id record")
		}
		if r.End < r.Start {
			t.Fatalf("record %d ends (%d) before it starts (%d)", r.ID, r.End, r.Start)
		}
		if r.ID > floor && seen[r.ID] {
			t.Fatalf("span id %d appears twice in the ring", r.ID)
		}
		seen[r.ID] = true
		if r.ID == last {
			found = true
		}
	}
	if !found {
		t.Fatal("the most recent span was evicted before older ones")
	}
}

// TestTraceRingWraparound overfills a small event ring: Events must return
// at most the capacity, sorted, with only the newest entries surviving.
func TestTraceRingWraparound(t *testing.T) {
	tr := NewTracer(16)
	tr.Enable()
	for i := 0; i < 100; i++ {
		tr.Emit(EvFence, uint64(i), uint64(i), 0)
	}
	events := tr.Events()
	if len(events) != 16 {
		t.Fatalf("got %d events from a 16-slot ring", len(events))
	}
	for i, e := range events {
		if i > 0 && e.TS < events[i-1].TS {
			t.Fatal("events not sorted by timestamp")
		}
		if e.A < 100-16 {
			t.Fatalf("event %d survived wraparound; oldest expected was %d", e.A, 100-16)
		}
	}
}

// TestConcurrentSpanPairing hammers begin/end from many goroutines with
// the trace mirror, attribution and concurrent snapshots all on, and then
// checks pairing: every span_end event has a matching span_begin with the
// same phase. Run with -race this also exercises the seqlock paths.
func TestConcurrentSpanPairing(t *testing.T) {
	spanTestCleanup(t)
	EnableAttribution()
	DefaultTracer.Enable()
	mark := SpanBegin(PhaseTxn, 0, 0)
	floor := mark.ID
	mark.End()

	const goroutines, spansPerG = 8, 200
	var wg, readerWG sync.WaitGroup
	stop := make(chan struct{})
	readerWG.Add(1)
	go func() { // concurrent reader: snapshots must never tear
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, r := range spanRingSnapshot() {
				if r.End < r.Start {
					t.Error("torn span record escaped the seqlock")
					return
				}
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < spansPerG; i++ {
				root := SpanBegin(PhaseTxn, uint64(g), 0)
				child := SpanBegin(PhaseLogFence, uint64(g), root.ID)
				child.End()
				child.End() // idempotent: second End must not double-record
				root.End()
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()

	begins := map[uint64]Phase{}
	var ends []Event
	for _, e := range DefaultTracer.Events() {
		id := e.A >> 8
		if id <= floor {
			continue
		}
		switch e.Kind {
		case EvSpanBegin:
			begins[id] = Phase(e.A & 0xff)
		case EvSpanEnd:
			ends = append(ends, e)
		}
	}
	wantEnds := goroutines * spansPerG * 2
	if len(ends) != wantEnds {
		t.Fatalf("got %d span_end events, want %d (double End leaked, or events lost)", len(ends), wantEnds)
	}
	for _, e := range ends {
		id, ph := e.A>>8, Phase(e.A&0xff)
		bp, ok := begins[id]
		if !ok {
			t.Fatalf("span %d ended without a begin", id)
		}
		if bp != ph {
			t.Fatalf("span %d began as %v but ended as %v", id, bp, ph)
		}
	}
}

// TestRecorderCaptureAndEviction drives the recorder directly: slow roots
// are captured with their trees, the keep cap retains the slowest, and a
// faster newcomer cannot displace a slower capture.
func TestRecorderCaptureAndEviction(t *testing.T) {
	spanTestCleanup(t)
	EnableAttribution() // feeds the span ring the recorder reassembles from
	r := &Recorder{}
	r.Configure(time.Microsecond, 2, time.Minute)

	slowRoot := func(children int, dur time.Duration) uint64 {
		root := SpanBegin(PhaseTxn, 3, 0)
		for i := 0; i < children; i++ {
			c := SpanBegin(PhaseLogFence, 3, root.ID)
			c.End()
		}
		start := spanNow() - dur.Nanoseconds()
		r.offer(root.ID, root.Phase, root.TID, start, spanNow())
		id := root.ID
		root.End()
		return id
	}

	a := slowRoot(3, 10*time.Millisecond)
	b := slowRoot(2, 30*time.Millisecond)
	c := slowRoot(1, 20*time.Millisecond) // evicts a (10ms), not b
	_ = slowRoot(0, time.Nanosecond)      // under threshold: ignored

	entries := r.Entries()
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2 (keep cap)", len(entries))
	}
	if entries[0].Root != b || entries[1].Root != c {
		t.Fatalf("kept roots %d,%d; want slowest-first %d,%d", entries[0].Root, entries[1].Root, b, c)
	}
	for _, e := range entries {
		if e.Root == a {
			t.Fatal("fastest capture was not evicted")
		}
		ids := map[uint64]bool{e.Root: true}
		for _, sp := range e.Spans {
			if sp.ID != e.Root && !ids[sp.Parent] {
				t.Fatalf("entry %d: span %d's parent %d not in the entry (not a tree)", e.Root, sp.ID, sp.Parent)
			}
			ids[sp.ID] = true
		}
	}
	if entries[0].Spans == nil || len(entries[0].Spans) != 3 { // root + 2 children
		t.Fatalf("slowest entry has %d spans, want 3", len(entries[0].Spans))
	}
}

func TestRecorderWindowExpiry(t *testing.T) {
	spanTestCleanup(t)
	EnableAttribution()
	r := &Recorder{}
	r.Configure(time.Nanosecond, 4, 50*time.Millisecond)
	sp := SpanBegin(PhaseTxn, 1, 0)
	r.offer(sp.ID, sp.Phase, sp.TID, sp.Start-int64(time.Millisecond), spanNow())
	sp.End()
	if len(r.Entries()) != 1 {
		t.Fatal("capture did not land")
	}
	time.Sleep(100 * time.Millisecond)
	if got := len(r.Entries()); got != 0 {
		t.Fatalf("%d entries survived past the sliding window", got)
	}
}

func TestRecorderDisarm(t *testing.T) {
	spanTestCleanup(t)
	r := &Recorder{}
	r.Configure(time.Nanosecond, 4, time.Minute)
	if r.Threshold() == 0 {
		t.Fatal("configured recorder reports disarmed")
	}
	r.Configure(0, 0, 0)
	if r.Threshold() != 0 {
		t.Fatal("threshold 0 did not disarm")
	}
	r.offer(1, PhaseTxn, 0, 0, int64(time.Second))
	if len(r.Entries()) != 0 {
		t.Fatal("disarmed recorder captured a span")
	}
}
