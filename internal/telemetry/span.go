package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Phase names one stage of a transaction's (or request's) life. The span
// layer attributes latency and fence counts to phases, so "why was this
// commit slow?" decomposes into "which phase took the time" — the same
// decomposition Marathe et al. use to compare undo/redo/hybrid designs.
type Phase uint8

// Span phases, one per instrumented stage across the stack.
const (
	PhaseNone       Phase = iota
	PhaseRequest          // kvserve: one protocol command, wire to reply
	PhaseParse            // kvserve: request-line split and verb decode
	PhaseExec             // kvserve: verb execution (txn or view inside)
	PhaseView             // mtm: slot-free snapshot read transaction
	PhaseLeaseWait        // mtm: blocked waiting for a free log slot
	PhaseTxn              // mtm: one Atomic call, begin to durable commit
	PhaseBody             // mtm: user closure incl. read/write-set tracking and lock acquisition
	PhaseValidate         // mtm: commit-time read-set validation
	PhaseLogAppend        // mtm: redo-record assembly and log append
	PhaseLogFence         // mtm: the durability fence over the redo record
	PhaseWriteBack        // mtm: in-place store of the write set
	PhaseTruncate         // mtm: commit-path line flushing and log truncation (or its enqueue)
	PhaseGCEnqueue        // mtm: group commit, epoch enqueue to done broadcast
	PhaseGCLead           // mtm: group commit, leader protocol incl. gather window
	PhaseGCFlush          // mtm: group commit, epoch streaming + covering fences
	PhaseAsyncTrunc       // mtm: log-manager batch flush + truncate
	PhaseAlloc            // pheap: pmalloc
	PhaseFree             // pheap: pfree
	PhaseFence            // scm: fence, incl. write-combining drain
	PhaseRawlFlush        // rawl: explicit log flush
	PhaseRawlTrunc        // rawl: log truncation (head rewrite)
	PhaseUndoLog          // mtm: undo mode, old-value batch append + ordering fence
	PhaseUndoApply        // mtm: undo mode, in-place stores + commit marker fence
	NumPhases
)

var phaseNames = [NumPhases]string{
	PhaseNone:       "none",
	PhaseRequest:    "request",
	PhaseParse:      "parse",
	PhaseExec:       "exec",
	PhaseView:       "view",
	PhaseLeaseWait:  "lease_wait",
	PhaseTxn:        "txn",
	PhaseBody:       "txn_body",
	PhaseValidate:   "validate",
	PhaseLogAppend:  "log_append",
	PhaseLogFence:   "log_fence",
	PhaseWriteBack:  "write_back",
	PhaseTruncate:   "truncate",
	PhaseGCEnqueue:  "gc_enqueue",
	PhaseGCLead:     "gc_lead",
	PhaseGCFlush:    "gc_flush",
	PhaseAsyncTrunc: "async_trunc",
	PhaseAlloc:      "alloc",
	PhaseFree:       "free",
	PhaseFence:      "scm_fence",
	PhaseRawlFlush:  "rawl_flush",
	PhaseRawlTrunc:  "rawl_truncate",
	PhaseUndoLog:    "undo_log",
	PhaseUndoApply:  "undo_apply",
}

// String returns the phase's attribution name.
func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// spanState is the fused enable word: one atomic load decides everything a
// disabled SpanBegin needs to know. Bits are owned by the three consumers
// of spans — the trace ring, the attribution registry, and the flight
// recorder — so any one can be on without paying for the others.
const (
	spanTraceBit  = 1 << iota // mirror spans into DefaultTracer's ring
	spanAttrBit               // feed phase histograms + the span record ring
	spanRecordBit             // flight recorder is armed (implies ring pushes)
)

var spanState atomic.Uint32

func spanStateSet(bit uint32) {
	for {
		old := spanState.Load()
		if spanState.CompareAndSwap(old, old|bit) {
			return
		}
	}
}

func spanStateClear(bit uint32) {
	for {
		old := spanState.Load()
		if spanState.CompareAndSwap(old, old&^bit) {
			return
		}
	}
}

// SpansOn reports whether any span consumer is enabled; hot paths with
// non-trivial parent bookkeeping may check it first. SpanBegin itself is
// already a single atomic load when everything is off.
func SpansOn() bool { return spanState.Load() != 0 }

// spanEpoch anchors span timestamps; sharing one epoch across all spans
// keeps parent/child intervals directly comparable.
var spanEpoch = time.Now()

func spanNow() int64 { return time.Since(spanEpoch).Nanoseconds() }

// spanIDs mints process-unique span ids. ID 0 is reserved for "no span":
// a zero Span is the disabled sentinel and parent 0 marks a root.
var spanIDs atomic.Uint64

// Span is one live begin/end interval. It is a plain value — beginning a
// span allocates nothing — and must be ended on the goroutine that began
// it. The zero Span is inert: End on it is a no-op, so instrumentation
// does not need to re-check the enable state on every exit path.
type Span struct {
	ID     uint64
	Parent uint64
	Phase  Phase
	TID    uint64
	Start  int64
}

// SpanBegin opens a span of the given phase. tid is the logical thread
// (mtm thread id, scm context id, or 0), parent the enclosing span's ID
// (0 for a root). When every span consumer is disabled it returns the
// zero Span after a single atomic load.
func SpanBegin(ph Phase, tid, parent uint64) Span {
	st := spanState.Load()
	if st == 0 {
		return Span{}
	}
	id := spanIDs.Add(1)
	if st&spanTraceBit != 0 {
		// A/B packing mirrors the ring's two-argument shape:
		// A = id<<8 | phase, B = parent.
		DefaultTracer.Emit(EvSpanBegin, tid, id<<8|uint64(ph), parent)
	}
	return Span{ID: id, Parent: parent, Phase: ph, TID: tid, Start: spanNow()}
}

// End closes the span: it feeds the trace ring, the per-phase latency
// histogram, the span record ring, and — for a root span over the slow
// threshold — the flight recorder. Idempotent: the first End wins, so a
// deferred End backing up an explicit one is safe.
func (sp *Span) End() {
	if sp.ID == 0 {
		return
	}
	id := sp.ID
	sp.ID = 0
	st := spanState.Load()
	if st == 0 {
		return
	}
	end := spanNow()
	dur := end - sp.Start
	if dur < 0 {
		dur = 0
	}
	if st&spanTraceBit != 0 {
		DefaultTracer.Emit(EvSpanEnd, sp.TID, id<<8|uint64(sp.Phase), uint64(dur))
	}
	if st&(spanAttrBit|spanRecordBit) == 0 {
		return
	}
	phaseHist(sp.Phase).Observe(dur)
	spanRingPush(SpanRecord{
		ID: id, Parent: sp.Parent, Phase: sp.Phase, TID: sp.TID,
		Start: sp.Start, End: end,
	})
	if st&spanRecordBit != 0 && sp.Parent == 0 {
		DefaultRecorder.offer(id, sp.Phase, sp.TID, sp.Start, end)
	}
}

// Per-phase attribution instruments: a latency histogram and a fence
// counter per phase, registered in the Default registry so they ride the
// existing Prometheus/expvar/STATS exposition.
var (
	phaseInitOnce sync.Once
	phaseHists    [NumPhases]*Histogram
	phaseFences   [NumPhases]*Counter
)

func phaseInit() {
	phaseInitOnce.Do(func() {
		for p := Phase(0); p < NumPhases; p++ {
			if p == PhaseNone {
				// Unregistered sinks, so a stray PhaseNone cannot nil-deref
				// or pollute the registry.
				phaseHists[p] = &Histogram{name: "phase_none_latency_ns"}
				phaseFences[p] = &Counter{name: "phase_none_fences_total"}
				continue
			}
			name := phaseNames[p]
			phaseHists[p] = NewHistogram("phase_"+name+"_latency_ns",
				"Span latency of the "+name+" phase, ns (recorded while span attribution is enabled).")
			phaseFences[p] = NewCounter("phase_"+name+"_fences_total",
				"Device fences attributed to the "+name+" phase.")
		}
	})
}

func phaseHist(p Phase) *Histogram {
	phaseInit()
	if p >= NumPhases {
		p = PhaseNone
	}
	return phaseHists[p]
}

// CountPhaseFence attributes one device fence to a phase. Unconditional
// (one atomic add on paths that already pay for a fence), so the
// fences-per-phase trajectory is exact and deterministic even with
// attribution off — the perf gate depends on that.
func CountPhaseFence(p Phase) {
	phaseInit()
	if p >= NumPhases {
		p = PhaseNone
	}
	phaseFences[p].Inc()
}

// PhaseFences returns the fence count attributed to a phase.
func PhaseFences(p Phase) uint64 {
	phaseInit()
	if p >= NumPhases {
		p = PhaseNone
	}
	return phaseFences[p].Value()
}

// EnableAttribution turns on per-phase latency attribution: completed
// spans feed the phase histograms and the span record ring (which the
// flight recorder reads). Near-zero overhead remains when off.
func EnableAttribution() {
	phaseInit()
	ensureSpanRing()
	spanStateSet(spanAttrBit)
}

// DisableAttribution stops feeding the phase histograms and span ring;
// already-recorded data remains readable.
func DisableAttribution() { spanStateClear(spanAttrBit) }

// AttributionEnabled reports whether span attribution is on.
func AttributionEnabled() bool { return spanState.Load()&spanAttrBit != 0 }

// PhaseSummary is one phase's attribution snapshot, embedded in mnbench's
// versioned JSON output.
type PhaseSummary struct {
	Count  uint64  `json:"count"`
	P50Ns  float64 `json:"p50_ns"`
	P99Ns  float64 `json:"p99_ns"`
	MeanNs float64 `json:"mean_ns"`
	Fences uint64  `json:"fences"`
}

// PhaseSummaries returns the attribution state of every phase that saw a
// span or a fence, keyed by phase name.
func PhaseSummaries() map[string]PhaseSummary {
	phaseInit()
	out := make(map[string]PhaseSummary)
	for p := Phase(1); p < NumPhases; p++ {
		h, f := phaseHists[p], phaseFences[p]
		if h.Count() == 0 && f.Value() == 0 {
			continue
		}
		out[phaseNames[p]] = PhaseSummary{
			Count:  h.Count(),
			P50Ns:  h.Quantile(0.50),
			P99Ns:  h.Quantile(0.99),
			MeanNs: h.Mean(),
			Fences: f.Value(),
		}
	}
	return out
}

// SpanRecord is one completed span in the span record ring.
type SpanRecord struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent"`
	Phase  Phase  `json:"-"`
	TID    uint64 `json:"tid"`
	Start  int64  `json:"start_ns"`
	End    int64  `json:"end_ns"`
}

// spanSlot is one seqlock ring entry, mirroring traceSlot: odd seq means
// a write is in flight, so concurrent snapshots skip torn slots.
type spanSlot struct {
	seq                    atomic.Uint64
	id, parent, phase, tid atomic.Uint64
	start, end             atomic.Uint64
}

// spanRing holds the most recent completed spans so the flight recorder
// can reassemble a slow transaction's full tree after the fact. 1<<14
// spans cover thousands of transactions at ~10 spans each.
const spanRingBits = 14

var (
	spanRingMu    sync.Mutex
	spanRingSlots []spanSlot
	spanRingCur   atomic.Uint64
)

func ensureSpanRing() {
	spanRingMu.Lock()
	if spanRingSlots == nil {
		spanRingSlots = make([]spanSlot, 1<<spanRingBits)
	}
	spanRingMu.Unlock()
}

func spanRingPush(r SpanRecord) {
	slots := spanRingSlots
	if slots == nil {
		return
	}
	i := spanRingCur.Add(1) - 1
	s := &slots[i&(1<<spanRingBits-1)]
	s.seq.Add(1)
	s.id.Store(r.ID)
	s.parent.Store(r.Parent)
	s.phase.Store(uint64(r.Phase))
	s.tid.Store(r.TID)
	s.start.Store(uint64(r.Start))
	s.end.Store(uint64(r.End))
	s.seq.Add(1)
}

// spanRingSnapshot copies every stable record out of the span ring.
func spanRingSnapshot() []SpanRecord {
	spanRingMu.Lock()
	slots := spanRingSlots
	spanRingMu.Unlock()
	if slots == nil {
		return nil
	}
	out := make([]SpanRecord, 0, len(slots))
	for i := range slots {
		s := &slots[i]
		seq := s.seq.Load()
		if seq == 0 || seq&1 == 1 {
			continue
		}
		r := SpanRecord{
			ID:     s.id.Load(),
			Parent: s.parent.Load(),
			Phase:  Phase(s.phase.Load()),
			TID:    s.tid.Load(),
			Start:  int64(s.start.Load()),
			End:    int64(s.end.Load()),
		}
		if s.seq.Load() != seq {
			continue
		}
		out = append(out, r)
	}
	return out
}
