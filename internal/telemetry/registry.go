// Package telemetry is the unified observability layer of the Mnemosyne
// stack: a metrics registry of lock-free counters, gauges and fixed-bucket
// latency histograms, a bounded ring-buffer tracer of persistence
// lifecycle events, and exposition in Prometheus text format over an
// optional HTTP endpoint.
//
// The paper's whole evaluation (Tables 4-6, Figure 6) rests on counting
// persistence primitives — stores, write-through stores, flushes and above
// all fences — and on end-to-end latency distributions. This package gives
// every layer one place to report those numbers and one place to read
// them, live, from a running server.
//
// Design constraints, in order:
//
//   - Hot paths (scm stores, rawl appends, transaction commits) must stay
//     allocation-free. Every instrument is a pre-registered struct of
//     atomics; recording is one or two uncontended atomic adds.
//   - Counters are padded to a cache line so independently updated
//     instruments never false-share.
//   - Reading is always safe concurrently with writing: snapshots are
//     approximate under load but race-free.
//
// Most callers use the package-level Default registry through NewCounter,
// NewGauge, NewHistogram and NewSampled, mirroring expvar's global style;
// tests build private Registry instances.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The padding keeps two
// counters allocated back to back from sharing a cache line, so hot-path
// instruments on different goroutines do not false-share.
type Counter struct {
	name, help string
	v          atomic.Uint64
	_          [56]byte
}

// Name returns the metric name.
func (c *Counter) Name() string { return c.name }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	name, help string
	v          atomic.Int64
	_          [56]byte
}

// Name returns the metric name.
func (g *Gauge) Name() string { return g.name }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// sampledGauge is a gauge whose value is computed at read time — the
// zero-hot-path-cost instrument. The SCM device's operation counters are
// exposed this way: the device already aggregates per-context counters, so
// exposition samples Device.Snapshot instead of charging the store path a
// second atomic update.
type sampledGauge struct {
	name, help string
	fn         func() float64
}

// Registry holds named metrics. All methods are safe for concurrent use;
// metric reads and writes never take the registry lock.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	sampled  map[string]*sampledGauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		sampled:  make(map[string]*sampledGauge),
	}
}

// Default is the process-wide registry, used by the package-level
// constructors and served by Handler.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use. Repeated
// registration with the same name returns the same counter, so package-level
// instruments and per-instance wiring can coexist.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name, help: help}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name, help string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{name: name, help: help}
	r.hists[name] = h
	return h
}

// Sampled registers (or replaces) a gauge computed by fn at exposition
// time. Replacement semantics suit instruments bound to a live instance:
// when a process reopens its persistent-memory stack, the newest instance
// wins.
func (r *Registry) Sampled(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sampled[name] = &sampledGauge{name: name, help: help, fn: fn}
}

// Package-level constructors against Default.

// NewCounter returns the named counter in the Default registry.
func NewCounter(name, help string) *Counter { return Default.Counter(name, help) }

// NewGauge returns the named gauge in the Default registry.
func NewGauge(name, help string) *Gauge { return Default.Gauge(name, help) }

// NewHistogram returns the named histogram in the Default registry.
func NewHistogram(name, help string) *Histogram { return Default.Histogram(name, help) }

// NewSampled registers a sampled gauge in the Default registry.
func NewSampled(name, help string, fn func() float64) { Default.Sampled(name, help, fn) }

// Snapshot returns a flat name->value view of every metric. Histograms
// expand to <name>_count, <name>_sum, <name>_p50 and <name>_p99. The
// mnbench -json output embeds this so benchmark runs carry their full
// measurement context.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]float64)
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = float64(g.Value())
	}
	for name, s := range r.sampled {
		out[name] = s.fn()
	}
	for name, h := range r.hists {
		out[name+"_count"] = float64(h.Count())
		out[name+"_sum"] = float64(h.Sum())
		out[name+"_p50"] = h.Quantile(0.50)
		out[name+"_p99"] = h.Quantile(0.99)
	}
	return out
}

// WritePrometheus writes every metric in Prometheus text exposition
// format (version 0.0.4), sorted by name for deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.sampled))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	for n := range r.sampled {
		names = append(names, n)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, n := range names {
		if c, ok := r.counters[n]; ok {
			writeHeader(&b, n, c.help, "counter")
			fmt.Fprintf(&b, "%s %d\n", n, c.Value())
		} else if g, ok := r.gauges[n]; ok {
			writeHeader(&b, n, g.help, "gauge")
			fmt.Fprintf(&b, "%s %d\n", n, g.Value())
		} else if s, ok := r.sampled[n]; ok {
			writeHeader(&b, n, s.help, "gauge")
			fmt.Fprintf(&b, "%s %g\n", n, s.fn())
		} else if h, ok := r.hists[n]; ok {
			h.writePrometheus(&b)
		}
	}
	r.mu.RUnlock()
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHeader(b *strings.Builder, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
}
