package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind identifies a persistence lifecycle event.
type Kind uint8

// Trace event kinds. The A/B argument meanings per kind:
//
//	EvTxnBegin       -
//	EvTxnCommit      A=latency ns, B=write-set words
//	EvTxnAbort       A=latency ns
//	EvLogAppend      A=payload words, B=record buffer words
//	EvLogTruncate    -
//	EvFlush          A=device line offset, B=1 if the line was dirty
//	EvFence          A=write-combining bytes drained
//	EvRecoveryReplay A=commit timestamp, B=words replayed
//	EvRegionOpen     A=regions mapped, B=manager boot ns
//	EvAlloc          A=block address, B=size bytes
//	EvFree           A=block address
//	EvRequest        A=latency ns
//	EvSpanBegin      A=span id<<8|phase, B=parent span id
//	EvSpanEnd        A=span id<<8|phase, B=duration ns
const (
	EvNone Kind = iota
	EvTxnBegin
	EvTxnCommit
	EvTxnAbort
	EvLogAppend
	EvLogTruncate
	EvFlush
	EvFence
	EvRecoveryReplay
	EvRegionOpen
	EvAlloc
	EvFree
	EvRequest
	EvSpanBegin
	EvSpanEnd
	numKinds
)

var kindNames = [numKinds]string{
	EvNone:           "none",
	EvTxnBegin:       "txn_begin",
	EvTxnCommit:      "txn_commit",
	EvTxnAbort:       "txn_abort",
	EvLogAppend:      "log_append",
	EvLogTruncate:    "log_truncate",
	EvFlush:          "flush",
	EvFence:          "fence",
	EvRecoveryReplay: "recovery_replay",
	EvRegionOpen:     "region_open",
	EvAlloc:          "alloc",
	EvFree:           "free",
	EvRequest:        "request",
	EvSpanBegin:      "span_begin",
	EvSpanEnd:        "span_end",
}

// String returns the event kind's trace name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// durationKinds marks kinds whose A argument is a duration in
// nanoseconds; the Chrome exporter renders them as complete ("X") events.
var durationKinds = [numKinds]bool{
	EvTxnCommit: true,
	EvTxnAbort:  true,
	EvRequest:   true,
}

// Event is one recorded trace event.
type Event struct {
	TS   int64 // nanoseconds since the tracer was created
	Kind Kind
	TID  uint64 // logical thread (scm context / mtm thread / connection)
	A, B uint64 // kind-specific arguments, see the Kind constants
}

// traceSlot is one ring entry. Fields are atomics so a snapshot racing a
// writer is race-detector clean; the seq word is odd while a write is in
// flight, so torn slots are skipped rather than misread.
type traceSlot struct {
	seq                 atomic.Uint64
	ts, kind, tid, a, b atomic.Uint64
}

// Tracer is a bounded lock-free ring buffer of events. Emit is a few
// atomic stores when enabled and a single atomic load when disabled, so
// tracing instrumentation can live permanently on hot paths. When the
// ring wraps, the oldest events are overwritten.
type Tracer struct {
	enabled atomic.Bool
	start   time.Time
	cursor  atomic.Uint64
	mask    uint64

	mu    sync.Mutex // guards lazy slot allocation
	slots []traceSlot
	cap   int
}

// NewTracer returns a tracer whose ring holds capacity events (rounded up
// to a power of two, minimum 16). The ring memory is allocated on the
// first Enable, so an unused tracer costs nothing.
func NewTracer(capacity int) *Tracer {
	n := 16
	for n < capacity {
		n <<= 1
	}
	return &Tracer{start: time.Now(), cap: n}
}

// DefaultTracer is the process-wide tracer, disabled until Enable.
var DefaultTracer = NewTracer(1 << 16)

// Enable allocates the ring (first call) and turns event recording on.
// Enabling the DefaultTracer also turns on span emission into its ring.
func (t *Tracer) Enable() {
	t.mu.Lock()
	if t.slots == nil {
		t.slots = make([]traceSlot, t.cap)
		t.mask = uint64(t.cap - 1)
	}
	t.mu.Unlock()
	t.enabled.Store(true)
	if t == DefaultTracer {
		spanStateSet(spanTraceBit)
	}
}

// Disable turns event recording off; recorded events remain readable.
func (t *Tracer) Disable() {
	t.enabled.Store(false)
	if t == DefaultTracer {
		spanStateClear(spanTraceBit)
	}
}

// Enabled reports whether events are being recorded.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// Capacity returns the ring size in events.
func (t *Tracer) Capacity() int { return t.cap }

// Emit records one event. No-op (one atomic load) when disabled.
func (t *Tracer) Emit(k Kind, tid, a, b uint64) {
	if !t.enabled.Load() {
		return
	}
	ts := uint64(time.Since(t.start).Nanoseconds())
	i := t.cursor.Add(1) - 1
	s := &t.slots[i&t.mask]
	s.seq.Add(1) // odd: write in flight
	s.ts.Store(ts)
	s.kind.Store(uint64(k))
	s.tid.Store(tid)
	s.a.Store(a)
	s.b.Store(b)
	s.seq.Add(1) // even: stable
}

// Emit records one event on the DefaultTracer.
func Emit(k Kind, tid, a, b uint64) { DefaultTracer.Emit(k, tid, a, b) }

// TraceEnabled reports whether the DefaultTracer is recording; hot paths
// with non-trivial argument computation check it first.
func TraceEnabled() bool { return DefaultTracer.Enabled() }

// Events returns a snapshot of the recorded events, oldest first. Events
// being written concurrently are skipped. At most Capacity events are
// returned; earlier ones have been overwritten.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	slots := t.slots
	t.mu.Unlock()
	if slots == nil {
		return nil
	}
	out := make([]Event, 0, len(slots))
	for i := range slots {
		s := &slots[i]
		seq := s.seq.Load()
		if seq == 0 || seq&1 == 1 {
			continue // never written, or write in flight
		}
		e := Event{
			TS:   int64(s.ts.Load()),
			Kind: Kind(s.kind.Load()),
			TID:  s.tid.Load(),
			A:    s.a.Load(),
			B:    s.b.Load(),
		}
		if s.seq.Load() != seq {
			continue // overwritten while reading
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// WriteChromeJSON writes the recorded events as a Chrome trace_event JSON
// document (load it at chrome://tracing or https://ui.perfetto.dev).
// Duration-carrying kinds become complete ("X") events; the rest are
// instants.
func (t *Tracer) WriteChromeJSON(w io.Writer) error {
	events := t.Events()
	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, e := range events {
		sep := ","
		if i == len(events)-1 {
			sep = ""
		}
		tsUS := float64(e.TS) / 1e3
		var line string
		if e.Kind == EvSpanBegin || e.Kind == EvSpanEnd {
			// Span events render as Chrome duration events, named by
			// phase and nested per tid; A packs id<<8|phase.
			ph := "B"
			if e.Kind == EvSpanEnd {
				ph = "E"
			}
			line = fmt.Sprintf(
				"{\"name\":%q,\"ph\":%q,\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"args\":{\"span\":%d,\"b\":%d}}%s\n",
				Phase(e.A&0xff).String(), ph, e.TID, tsUS, e.A>>8, e.B, sep)
		} else if int(e.Kind) < len(durationKinds) && durationKinds[e.Kind] {
			// A complete event spans [start, start+dur); e.TS is the end.
			durUS := float64(e.A) / 1e3
			start := tsUS - durUS
			if start < 0 {
				start = 0
			}
			line = fmt.Sprintf(
				"{\"name\":%q,\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"a\":%d,\"b\":%d}}%s\n",
				e.Kind.String(), e.TID, start, durUS, e.A, e.B, sep)
		} else {
			line = fmt.Sprintf(
				"{\"name\":%q,\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"args\":{\"a\":%d,\"b\":%d}}%s\n",
				e.Kind.String(), e.TID, tsUS, e.A, e.B, sep)
		}
		if _, err := io.WriteString(w, line); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}
