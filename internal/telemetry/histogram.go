package telemetry

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed histogram bucket count. Bucket i holds values v
// with bits.Len64(v) == i: bucket 0 is exactly zero, bucket i (i >= 1)
// covers [2^(i-1), 2^i - 1]. 48 buckets span 1 ns to about 39 hours when
// observing nanoseconds, with no configuration and no allocation.
const NumBuckets = 48

// Histogram is a fixed power-of-two-bucket histogram. Observe is one
// bits.Len64 plus three atomic adds; there is no lock and no allocation,
// so hot paths can observe every operation.
type Histogram struct {
	name, help string
	count, sum atomic.Uint64
	buckets    [NumBuckets]atomic.Uint64
	_          [56]byte
}

// Name returns the metric name.
func (h *Histogram) Name() string { return h.name }

// bucketFor maps a value to its bucket index.
func bucketFor(v uint64) int {
	i := bits.Len64(v)
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	return i
}

// bucketUpper returns the inclusive upper bound of bucket i.
func bucketUpper(i int) uint64 {
	if i == 0 {
		return 0
	}
	return 1<<uint(i) - 1
}

// Observe records one value. Negative values are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketFor(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(v))
}

// ObserveSince records the elapsed nanoseconds since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Nanoseconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// BucketCounts returns a copy of the per-bucket counts.
func (h *Histogram) BucketCounts() [NumBuckets]uint64 {
	var out [NumBuckets]uint64
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// inside the bucket containing the target rank. The estimate is exact to
// within the bucket's power-of-two width. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= target {
			if i == 0 {
				return 0
			}
			lo := float64(uint64(1) << uint(i-1))
			hi := float64(uint64(1) << uint(i))
			frac := float64(target-(cum-c)) / float64(c)
			return lo + frac*(hi-lo)
		}
	}
	return float64(bucketUpper(NumBuckets - 1))
}

// Mean returns the average observed value (0 with no observations).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// writePrometheus emits the histogram in Prometheus cumulative-bucket
// form. Buckets past the last non-empty one are elided (the +Inf bucket
// carries the total), keeping the exposition small and deterministic.
func (h *Histogram) writePrometheus(b *strings.Builder) {
	writeHeader(b, h.name, h.help, "histogram")
	counts := h.BucketCounts()
	last := -1
	for i, c := range counts {
		if c > 0 {
			last = i
		}
	}
	var cum uint64
	for i := 0; i <= last; i++ {
		cum += counts[i]
		fmt.Fprintf(b, "%s_bucket{le=\"%d\"} %d\n", h.name, bucketUpper(i), cum)
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", h.name, h.Count())
	fmt.Fprintf(b, "%s_sum %d\n", h.name, h.Sum())
	fmt.Fprintf(b, "%s_count %d\n", h.name, h.Count())
}
