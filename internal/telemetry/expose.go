package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Handler returns an HTTP handler exposing the registry and tracer:
//
//	/metrics               Prometheus text exposition format
//	/trace                 Chrome trace_event JSON of the event ring
//	/debug/mnemosyne/slow  slow-commit flight recorder dump (JSON;
//	                       ?format=chrome for a trace_event document)
//	/debug/vars            expvar JSON (includes the registry snapshot)
//	/debug/pprof/...       runtime profiling endpoints
func Handler(r *Registry, t *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = t.WriteChromeJSON(w)
	})
	mux.HandleFunc("/debug/mnemosyne/slow", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if req.URL.Query().Get("format") == "chrome" {
			_ = DefaultRecorder.WriteChromeJSON(w)
			return
		}
		_ = DefaultRecorder.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// publishMu guards the expvar registration, which panics on duplicates.
var publishMu sync.Mutex

// publishExpvar mirrors the registry into expvar under "telemetry".
func publishExpvar(r *Registry) {
	publishMu.Lock()
	defer publishMu.Unlock()
	name := "telemetry"
	if r != Default {
		name = "telemetry_aux"
	}
	if expvar.Get(name) == nil {
		expvar.Publish(name, expvar.Func(func() interface{} { return r.Snapshot() }))
	}
}

// Serve starts an HTTP server for the registry and tracer on addr and
// returns once the listener is bound, along with the bound address (useful
// with ":0"). The server runs until the process exits or Close is called
// on the returned server.
func Serve(addr string, r *Registry, t *Tracer) (*http.Server, string, error) {
	publishExpvar(r)
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{
		Handler:           Handler(r, t),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(l) }()
	return srv, l.Addr().String(), nil
}
