package blob

import (
	"errors"
	"testing"
)

func TestCheckWrite(t *testing.T) {
	if err := CheckWrite(0, 10); err != nil {
		t.Fatalf("zero-length write rejected: %v", err)
	}
	if err := CheckWrite(10, 10); err != nil {
		t.Fatalf("at-cap write rejected: %v", err)
	}
	if err := CheckWrite(11, 10); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized write: got %v, want ErrTooLarge", err)
	}
	if err := CheckWrite(-1, 10); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("negative write length: got %v, want ErrTooLarge", err)
	}
}

func TestCheckRead(t *testing.T) {
	if err := CheckRead(0, 10); err != nil {
		t.Fatalf("zero-length read rejected: %v", err)
	}
	if err := CheckRead(10, 10); err != nil {
		t.Fatalf("at-cap read rejected: %v", err)
	}
	if err := CheckRead(11, 10); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized read: got %v, want ErrCorrupt", err)
	}
	// A corrupt prefix loaded as uint64 becomes negative when reinterpreted
	// as int64 — the classic make([]byte, huge) hazard.
	if err := CheckRead(int64(^uint64(0)>>1)+(-1)-(1<<62), 10); err == nil {
		t.Fatal("garbage length accepted")
	}
	if err := CheckRead(-1, 10); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("negative read length: got %v, want ErrCorrupt", err)
	}
}
