// Package blob centralizes the length-prefix discipline shared by the
// variable-length payload codecs in this repo: pds value blocks
// ([8B length][bytes]) and the shard record codec ([2B key length]...,
// 4B field lengths). Both previously carried their own ad-hoc bound
// checks (or none at all on the decode side); this package is the one
// place that says what a sane length is.
//
// Two situations call for different error identities:
//
//   - Encode side: the caller handed us an oversized payload. That is a
//     caller error (ErrTooLarge) and must be reported before any
//     persistent allocation happens, so an oversized write can never
//     half-commit.
//   - Decode side: a length loaded back from persistent memory is
//     negative or absurd. That is data corruption (ErrCorrupt) and must
//     be caught before the length is used to size an allocation — a
//     corrupt 2^60 "length" must fail cleanly, not take the process down
//     in make().
//
// Zero-length payloads are valid on both sides: an empty value is a
// value, and both checks accept n == 0 explicitly.
package blob

import (
	"errors"
	"fmt"
)

// ErrTooLarge reports an encode-side payload above the caller's cap.
var ErrTooLarge = errors.New("blob: payload too large")

// ErrCorrupt reports a decode-side length prefix that cannot be valid:
// negative, or above the codec's cap.
var ErrCorrupt = errors.New("blob: corrupt length prefix")

// CheckWrite validates an encode-side payload length n against cap max.
// n == 0 is valid; n > max is the caller's error.
func CheckWrite(n, max int64) error {
	if n < 0 {
		return fmt.Errorf("%w: negative length %d", ErrTooLarge, n)
	}
	if n > max {
		return fmt.Errorf("%w: %d bytes exceeds %d", ErrTooLarge, n, max)
	}
	return nil
}

// CheckRead validates a decode-side length prefix n (as loaded from
// persistent memory or a wire payload) against cap max. Any value
// outside [0, max] means the stored prefix is corrupt and must not be
// used to size an allocation.
func CheckRead(n, max int64) error {
	if n < 0 || n > max {
		return fmt.Errorf("%w: stored length %d outside [0, %d]", ErrCorrupt, n, max)
	}
	return nil
}
