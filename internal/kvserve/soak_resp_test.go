package kvserve

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/scm"
)

// respSoakModel is one RESP client's acknowledged state: binary string
// values and hash field maps, over a private keyspace.
type respSoakModel struct {
	strs   map[string][]byte
	hashes map[string]map[string]string
}

// TestSoakRESPMixedCrash drives line-protocol and RESP clients against
// the same server concurrently — binary values, hashes, and far-future
// TTLs over RESP, classic text commands over the line protocol — then
// crashes the device under a reproducible keep/drop policy mid-test and
// reincarnates the stack. Every acknowledged write from either transport
// must survive, byte for byte. Run with -race this shakes the shared
// engine: both transports dispatch into one registry, one batch
// partitioner, one store.
func TestSoakRESPMixedCrash(t *testing.T) {
	waves, pairs, ops := 2, 2, 40
	if testing.Short() {
		ops = 15
	}
	clients := 2 * pairs // half line, half RESP
	cfg := core.Config{
		Dir:             t.TempDir(),
		DeviceSize:      64 << 20,
		Threads:         clients + 2,
		AsyncTruncation: true,
	}
	pm, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dev := pm.Device()

	serve := func() (*Server, string, string) {
		t.Helper()
		srv, err := New(pm)
		if err != nil {
			t.Fatal(err)
		}
		ll, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		rl, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ll)
		go srv.ServeRESP(rl)
		return srv, ll.Addr().String(), rl.Addr().String()
	}

	lineExpect := map[string]string{} // acknowledged line-client state
	respExpect := respSoakModel{strs: map[string][]byte{}, hashes: map[string]map[string]string{}}

	srv, lineAddr, respAddr := serve()
	for wave := 0; wave < waves; wave++ {
		lineModels := make([]map[string]string, pairs)
		respModels := make([]respSoakModel, pairs)
		var wg sync.WaitGroup
		errs := make(chan error, clients)

		// Line clients: the legacy text protocol, untouched by the redesign.
		for ci := 0; ci < pairs; ci++ {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				model := map[string]string{}
				lineModels[ci] = model
				c := dial(t, lineAddr)
				defer c.conn.Close()
				rng := rand.New(rand.NewSource(int64(wave*100 + ci)))
				for j := 0; j < ops; j++ {
					key := fmt.Sprintf("lw%dc%dk%d", wave, ci, rng.Intn(8))
					if rng.Intn(4) == 0 {
						reply := c.cmd(t, "DEL "+key)
						if reply != "OK" && reply != "MISSING" {
							errs <- fmt.Errorf("line DEL %s: %s", key, reply)
							return
						}
						delete(model, key)
					} else {
						val := fmt.Sprintf("tv%d.%d.%d", wave, ci, j)
						if reply := c.cmd(t, "SET "+key+" "+val); reply != "OK" {
							errs <- fmt.Errorf("line SET %s: %s", key, reply)
							return
						}
						model[key] = val
					}
				}
			}(ci)
		}

		// RESP clients: pipelined batches of binary-valued SETs, hash
		// writes, deletes, and far-future TTL stamps (far enough that the
		// wall clock never crosses them inside a test run, so the model
		// stays exact).
		for ci := 0; ci < pairs; ci++ {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				model := respSoakModel{strs: map[string][]byte{}, hashes: map[string]map[string]string{}}
				respModels[ci] = model
				c := respDial(t, respAddr)
				defer c.conn.Close()
				rng := rand.New(rand.NewSource(int64(wave*1000 + ci)))
				flush := func(sent int) bool {
					if err := c.w.Flush(); err != nil {
						errs <- err
						return false
					}
					for i := 0; i < sent; i++ {
						if v, err := c.r.ReadValue(); err != nil {
							errs <- fmt.Errorf("resp reply %d: %v", i, err)
							return false
						} else if v.Type == '-' {
							errs <- fmt.Errorf("resp reply %d: error %q", i, v.Str)
							return false
						}
					}
					return true
				}
				for j := 0; j < ops; j += 4 {
					// One pipelined batch of up to 4 acknowledged writes.
					sent := 0
					for b := 0; b < 4 && j+b < ops; b++ {
						switch rng.Intn(5) {
						case 0: // delete
							key := fmt.Sprintf("rw%dc%dk%d", wave, ci, rng.Intn(8))
							if err := c.w.WriteCommandStrings("DEL", key); err != nil {
								errs <- err
								return
							}
							delete(model.strs, key)
						case 1: // hash write
							hkey := fmt.Sprintf("rw%dc%dh%d", wave, ci, rng.Intn(3))
							f := fmt.Sprintf("f%d", rng.Intn(4))
							v := fmt.Sprintf("hv%d.%d", wave, rng.Intn(1000))
							if err := c.w.WriteCommandStrings("HSET", hkey, f, v); err != nil {
								errs <- err
								return
							}
							if model.hashes[hkey] == nil {
								model.hashes[hkey] = map[string]string{}
							}
							model.hashes[hkey][f] = v
						default: // binary-valued SET, sometimes with a far TTL
							key := fmt.Sprintf("rw%dc%dk%d", wave, ci, rng.Intn(8))
							val := []byte(fmt.Sprintf("bv%d.%d \x00binary\r\n%d", wave, ci, rng.Intn(1000)))
							args := [][]byte{[]byte("SET"), []byte(key), val}
							if rng.Intn(3) == 0 {
								args = append(args, []byte("EX"), []byte("100000"))
							}
							if err := c.w.WriteCommand(args...); err != nil {
								errs <- err
								return
							}
							model.strs[key] = val
						}
						sent++
					}
					if !flush(sent) {
						return
					}
				}
			}(ci)
		}

		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		// Keyspaces are disjoint per (transport, wave, client): each model
		// is authoritative for its own keys.
		for ci := 0; ci < pairs; ci++ {
			for n := 0; n < 8; n++ {
				k := fmt.Sprintf("lw%dc%dk%d", wave, ci, n)
				if v, ok := lineModels[ci][k]; ok {
					lineExpect[k] = v
				} else {
					delete(lineExpect, k)
				}
				rk := fmt.Sprintf("rw%dc%dk%d", wave, ci, n)
				if v, ok := respModels[ci].strs[rk]; ok {
					respExpect.strs[rk] = v
				} else {
					delete(respExpect.strs, rk)
				}
			}
			for hk, fields := range respModels[ci].hashes {
				respExpect.hashes[hk] = fields
			}
		}

		// Power failure: drain sessions, halt truncation, lose a random
		// subset of unpersisted state, reincarnate the whole stack.
		srv.Close()
		pm.TM().StopTruncation()
		dev.Crash(scm.NewRandomPolicy(int64(7000 + wave)))
		pm, err = core.Attach(dev, cfg)
		if err != nil {
			t.Fatalf("reattach after crash %d: %v", wave, err)
		}
		srv, lineAddr, respAddr = serve()

		// Verify through BOTH transports: line keys over RESP too, so the
		// transports agree on every byte the other acknowledged.
		lc := dial(t, lineAddr)
		rc := respDial(t, respAddr)
		for k, v := range lineExpect {
			if got := lc.cmd(t, "GET "+k); got != "VALUE "+v {
				t.Fatalf("after crash %d: line GET %s = %q, want %q", wave, k, got, "VALUE "+v)
			}
			if got, ok := rc.bulk(t, "GET", k); !ok || string(got) != v {
				t.Fatalf("after crash %d: resp GET %s = %q (present=%v), want %q", wave, k, got, ok, v)
			}
		}
		for k, v := range respExpect.strs {
			got, ok := rc.bulk(t, "GET", k)
			if !ok || !bytes.Equal(got, v) {
				t.Fatalf("after crash %d: resp GET %s = %q (present=%v), want %q", wave, k, got, ok, v)
			}
			if ttl := rc.integer(t, "TTL", k); ttl != -1 && ttl <= 0 {
				t.Fatalf("after crash %d: TTL %s = %d, want -1 or a future deadline", wave, k, ttl)
			}
		}
		for hk, fields := range respExpect.hashes {
			if n := rc.integer(t, "HLEN", hk); n != int64(len(fields)) {
				t.Fatalf("after crash %d: HLEN %s = %d, want %d", wave, hk, n, len(fields))
			}
			for f, v := range fields {
				if got, ok := rc.bulk(t, "HGET", hk, f); !ok || string(got) != v {
					t.Fatalf("after crash %d: HGET %s %s = %q (present=%v), want %q", wave, hk, f, got, ok, v)
				}
			}
		}
		total := len(lineExpect) + len(respExpect.strs) + len(respExpect.hashes)
		if got := lc.cmd(t, "COUNT"); got != fmt.Sprintf("COUNT %d", total) {
			t.Fatalf("after crash %d: %s, want %d acked keys", wave, got, total)
		}
		lc.conn.Close()
		rc.conn.Close()
	}
	srv.Close()
	if got := pm.TM().LiveThreads(); got != 0 {
		t.Fatalf("live threads after all sessions closed = %d, want 0", got)
	}
}
