package kvserve

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/mtm"
	"repro/internal/pds"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

// request is one parsed command: argv (verb included), its registry
// definition, and a pre-computed error reply for unparseable input.
type request struct {
	args [][]byte
	def  *cmdDef
	bad  *Reply
}

// parseLine tokenizes one line-protocol command. Definitions with a
// lineSplit re-tokenize with SplitN so the last argument keeps its
// spaces (SET's value), exactly as the pre-registry parser did.
func (s *Server) parseLine(line string) request {
	trimmed := strings.TrimSpace(line)
	fields := strings.Fields(trimmed)
	if len(fields) == 0 {
		bad := errReply("unknown command")
		return request{bad: &bad}
	}
	def := registry[strings.ToUpper(fields[0])]
	if def == nil {
		bad := errReply("unknown command")
		return request{bad: &bad}
	}
	var parts []string
	if def.lineSplit > 0 {
		parts = strings.SplitN(trimmed, " ", def.lineSplit)
	} else {
		parts = fields
	}
	args := make([][]byte, len(parts))
	for i, p := range parts {
		args[i] = []byte(p)
	}
	return request{args: args, def: def}
}

// parseCommand wraps an argv decoded by the RESP reader. Arguments are
// binary-safe and already framed; only the verb needs resolving.
func (s *Server) parseCommand(args [][]byte) request {
	if len(args) == 0 {
		bad := errReply("unknown command")
		return request{bad: &bad}
	}
	def := registry[strings.ToUpper(string(args[0]))]
	if def == nil {
		bad := errReply("unknown command")
		return request{args: args, bad: &bad}
	}
	return request{args: args, def: def}
}

// exec runs one parsed request: per-verb counter, arity contract, then
// the handler. parent is the exec span commands attribute their
// transactions under.
func (s *Server) exec(sess *session, th *mtm.Thread, pr request, parent uint64) Reply {
	if pr.bad != nil {
		return *pr.bad
	}
	pr.def.calls.Inc()
	if !pr.def.arityOK(len(pr.args)) {
		return errReply("usage: " + pr.def.usage)
	}
	c := &call{s: s, sess: sess, th: th, args: pr.args, parent: parent}
	return pr.def.handler(c)
}

// call is one command invocation's execution context.
type call struct {
	s      *Server
	sess   *session
	th     *mtm.Thread // batch-assigned transaction thread, or nil
	args   [][]byte
	parent uint64 // exec span id
}

func (c *call) str(i int) string { return string(c.args[i]) }

// updateShard runs fn as a durable transaction on shard k, resolving the
// transaction thread when the backend needs one (batch-assigned thread
// first, else the session's lazily-leased writer).
func (c *call) updateShard(k int, fn func(n *node, tx *mtm.Tx) error) error {
	st := c.s.store
	var th *mtm.Thread
	if st.NeedsThread() {
		var err error
		th, err = c.sess.writeThread(c.th)
		if err != nil {
			return err
		}
	}
	return st.Update(th, c.parent, k, fn)
}

func (c *call) update(key string, fn func(n *node, tx *mtm.Tx) error) error {
	return c.updateShard(c.s.store.ShardOf(key), fn)
}

func (c *call) view(key string, fn func(n *node, r mtm.Reader) error) error {
	st := c.s.store
	return st.View(c.parent, st.ShardOf(key), fn)
}

// mput stores every pair atomically through the backend (one transaction
// or the cross-shard intent protocol).
func (c *call) mput(keys []string, recs [][]byte) error {
	st := c.s.store
	var th *mtm.Thread
	if st.NeedsThread() {
		var err error
		th, err = c.sess.writeThread(c.th)
		if err != nil {
			return err
		}
	}
	return st.MPut(th, c.parent, keys, recs)
}

// errHashCollision reports a write whose key hashes onto a slot already
// holding a different key's record; the put is refused instead of
// silently destroying the colliding key's data.
var errHashCollision = errors.New("hash collision with a different stored key")

// putRecord stores rec at key's tree slot after comparing the stored
// full key: overwriting the same key is the normal update, overwriting a
// colliding key would destroy its record.
func (s *Server) putRecord(n *node, tx *mtm.Tx, key string, rec []byte) error {
	h := s.hash(key)
	raw, err := n.tree.Get(tx, h)
	if err == nil {
		k, derr := shard.DecodeRecordKey(raw)
		if derr != nil {
			return derr
		}
		if k != key {
			return fmt.Errorf("%w: %q vs stored %q", errHashCollision, key, k)
		}
	} else if err != pds.ErrNotFound {
		return err
	}
	return n.tree.Put(tx, h, rec)
}

// recordAt reads key's record on shard k through any Reader, resolving
// hash collisions against the stored full key. Absent, colliding, and
// expired slots answer ok=false; an expired record is additionally
// queued for lazy reaping so a read eventually reclaims its space.
func (s *Server) recordAt(n *node, r mtm.Reader, k int, key string) (shard.Record, bool, error) {
	raw, err := n.tree.Get(r, s.hash(key))
	if err == pds.ErrNotFound {
		return shard.Record{}, false, nil
	}
	if err != nil {
		return shard.Record{}, false, err
	}
	rec, err := shard.DecodeRecord(raw)
	if err != nil {
		return shard.Record{}, false, err
	}
	if rec.Key != key {
		return shard.Record{}, false, nil // hash collision with another key
	}
	if rec.Expired(s.now()) {
		s.reapLater(k, s.hash(key))
		return shard.Record{}, false, nil
	}
	return rec, true, nil
}

func (c *call) record(n *node, r mtm.Reader, key string) (shard.Record, bool, error) {
	return c.s.recordAt(n, r, c.s.store.ShardOf(key), key)
}

func checkKeySize(key string) error {
	if len(key) > MaxKeyLen {
		return fmt.Errorf("key too long (max %d bytes)", MaxKeyLen)
	}
	return nil
}

func checkValueSize(n int) error {
	if n > MaxValueLen {
		return fmt.Errorf("value too long (max %d bytes)", MaxValueLen)
	}
	return nil
}

// --- string command handlers ---

// cmdSet stores a string record, optionally with an expiry deadline
// (SET <key> <value> EX <seconds> | PX <milliseconds>). The line
// protocol tokenizes SET into exactly three arguments — the value is the
// rest of the line, spaces included — so expiry options are reachable
// over RESP only.
func cmdSet(c *call) Reply {
	key := c.str(1)
	value := c.args[2]
	if err := checkKeySize(key); err != nil {
		return errfReply(err)
	}
	if err := checkValueSize(len(value)); err != nil {
		return errfReply(err)
	}
	var deadline int64
	if len(c.args) > 3 {
		if len(c.args) != 5 {
			return errReply("usage: " + registry["SET"].usage)
		}
		if !c.s.store.SupportsTTL() {
			return errReply(errNoTTL)
		}
		d, err := parseExpiry(c.s.now(), c.str(3), c.args[4])
		if err != nil {
			return errfReply(err)
		}
		deadline = d
	}
	rec, err := shard.EncodeRecord(shard.Record{
		Key: key, Type: shard.RecString, Expire: deadline, Value: value,
	})
	if err != nil {
		return errfReply(err)
	}
	err = c.update(key, func(n *node, tx *mtm.Tx) error {
		if err := c.s.putRecord(n, tx, key, rec); err != nil {
			return err
		}
		if deadline != 0 {
			return c.s.wheelAdd(n, tx, c.s.hash(key), deadline)
		}
		return nil
	})
	if err != nil {
		return errfReply(err)
	}
	return simpleReply("OK")
}

// parseExpiry converts an EX/PX option into an absolute deadline.
func parseExpiry(now int64, opt string, arg []byte) (int64, error) {
	d, err := strconv.ParseInt(string(arg), 10, 64)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("invalid expire time %q", string(arg))
	}
	switch strings.ToUpper(opt) {
	case "EX":
		return now + d*int64(time.Second), nil
	case "PX":
		return now + d*int64(time.Millisecond), nil
	}
	return 0, fmt.Errorf("unknown SET option %q", opt)
}

func cmdGet(c *call) Reply {
	key := c.str(1)
	var out Reply
	err := c.view(key, func(n *node, r mtm.Reader) error {
		rec, ok, err := c.record(n, r, key)
		if err != nil {
			return err
		}
		if !ok {
			out = nilReply()
			return nil
		}
		if rec.Type != shard.RecString {
			return shard.ErrWrongType
		}
		out = bulkReply(append([]byte(nil), rec.Value...))
		return nil
	})
	if err != nil {
		return errfReply(err)
	}
	return out
}

// cmdDel deletes each named key, answering how many were present. An
// expired-but-unswept record is physically removed yet counts as absent,
// so the oracle "an expired key never resurrects" extends to DEL's
// return value.
func cmdDel(c *call) Reply {
	deleted := int64(0)
	for _, a := range c.args[1:] {
		key := string(a)
		n := int64(0)
		err := c.update(key, func(nd *node, tx *mtm.Tx) error {
			n = 0 // conflict retries rerun the closure
			raw, err := nd.tree.Get(tx, c.s.hash(key))
			if err == pds.ErrNotFound {
				return nil
			}
			if err != nil {
				return err
			}
			rec, err := shard.DecodeRecord(raw)
			if err != nil {
				return err
			}
			if rec.Key != key {
				return nil // hash collision with another key
			}
			if err := nd.tree.Delete(tx, c.s.hash(key)); err != nil {
				return err
			}
			if !rec.Expired(c.s.now()) {
				n = 1
			}
			return nil
		})
		if err != nil {
			return errfReply(err)
		}
		deleted += n
	}
	return intReply(deleted)
}

// cmdMGet answers every key from per-shard snapshots, visiting shards in
// ascending order: all answers from one shard reflect one committed
// snapshot. Keys holding non-string records answer nil, like redis.
func cmdMGet(c *call) Reply {
	keys := c.args[1:]
	st := c.s.store
	elems := make([]Reply, len(keys))
	parts := make([][]int, st.NShards())
	for i := range keys {
		k := st.ShardOf(string(keys[i]))
		parts[k] = append(parts[k], i)
	}
	for k, idxs := range parts {
		if len(idxs) == 0 {
			continue
		}
		err := st.View(c.parent, k, func(n *node, r mtm.Reader) error {
			for _, i := range idxs {
				rec, ok, err := c.s.recordAt(n, r, k, string(keys[i]))
				if err != nil {
					return err
				}
				if !ok || rec.Type != shard.RecString {
					elems[i] = nilReply()
					continue
				}
				elems[i] = bulkReply(append([]byte(nil), rec.Value...))
			}
			return nil
		})
		if err != nil {
			return errfReply(err)
		}
	}
	return arrayReply(elems)
}

// cmdMSet stores every pair atomically. The line protocol tokenizes by
// whitespace, so line-protocol MSET values cannot contain spaces — the
// odd-argument error says so and points at RESP, where bulk strings
// carry arbitrary bytes.
func cmdMSet(c *call) Reply {
	args := c.args[1:]
	if len(args)%2 != 0 {
		return errReply("usage: " + registry["MSET"].usage +
			" (line-protocol values cannot contain spaces; use the RESP port for binary values)")
	}
	keys := make([]string, 0, len(args)/2)
	recs := make([][]byte, 0, len(args)/2)
	for i := 0; i < len(args); i += 2 {
		key := string(args[i])
		if err := checkKeySize(key); err != nil {
			return errfReply(err)
		}
		if err := checkValueSize(len(args[i+1])); err != nil {
			return errfReply(err)
		}
		rec, err := shard.EncodeRecord(shard.Record{
			Key: key, Type: shard.RecString, Value: args[i+1],
		})
		if err != nil {
			return errfReply(err)
		}
		keys = append(keys, key)
		recs = append(recs, rec)
	}
	if err := c.mput(keys, recs); err != nil {
		return errfReply(err)
	}
	return simpleReply("OK")
}

// cmdMDel deletes every named key, one transaction per touched shard in
// ascending order, reporting how many were present.
func cmdMDel(c *call) Reply {
	st := c.s.store
	parts := make([][]string, st.NShards())
	for _, a := range c.args[1:] {
		k := st.ShardOf(string(a))
		parts[k] = append(parts[k], string(a))
	}
	deleted := int64(0)
	for k, keys := range parts {
		if len(keys) == 0 {
			continue
		}
		n := int64(0)
		err := c.updateShard(k, func(nd *node, tx *mtm.Tx) error {
			n = 0 // conflict retries rerun the closure
			for _, key := range keys {
				raw, err := nd.tree.Get(tx, c.s.hash(key))
				if err == pds.ErrNotFound {
					continue
				}
				if err != nil {
					return err
				}
				rec, err := shard.DecodeRecord(raw)
				if err != nil {
					return err
				}
				if rec.Key != key {
					continue // hash collision with another key
				}
				if err := nd.tree.Delete(tx, c.s.hash(key)); err != nil {
					return err
				}
				if !rec.Expired(c.s.now()) {
					n++
				}
			}
			return nil
		})
		if err != nil {
			return errfReply(err)
		}
		deleted += n
	}
	return intReply(deleted)
}

// cmdCount answers the live key count: a per-shard snapshot scan that
// skips records past their expiry deadline, so an unswept-but-expired
// key is never counted.
func cmdCount(c *call) Reply {
	st := c.s.store
	total := int64(0)
	for k := 0; k < st.NShards(); k++ {
		err := st.View(c.parent, k, func(n *node, r mtm.Reader) error {
			now := c.s.now()
			live := int64(0)
			n.tree.Scan(r, 0, func(_ uint64, val []byte) bool {
				rec, err := shard.DecodeRecord(val)
				if err == nil && !rec.Expired(now) {
					live++
				}
				return true
			})
			total += live
			return nil
		})
		if err != nil {
			return errfReply(err)
		}
	}
	return intReply(total)
}

// --- rendering and dispatch ---

// renderLegacy turns a Reply into the line protocol's reply text. Errors
// always render as "ERROR <msg>"; definitions may override the rest
// (GET's VALUE/MISSING, DEL's OK/MISSING, MGET's per-key lines).
func renderLegacy(pr request, r Reply) string {
	if r.kind == replyError {
		return "ERROR " + r.str
	}
	if pr.def != nil && pr.def.legacy != nil {
		return pr.def.legacy(pr.args, r)
	}
	return legacyDefault(r)
}

func legacyDefault(r Reply) string {
	switch r.kind {
	case replySimple:
		return r.str
	case replyInt:
		return strconv.FormatInt(r.n, 10)
	case replyBulk:
		return string(r.bulk)
	case replyNil:
		return "MISSING"
	case replyBye:
		return "BYE"
	case replyArray:
		outs := make([]string, len(r.arr))
		for i, e := range r.arr {
			outs[i] = legacyDefault(e)
		}
		return strings.Join(outs, "\n")
	}
	return "ERROR internal: unrenderable reply"
}

// handle executes one line-protocol command and renders its legacy
// reply; req is the request span id the parse/exec spans attach under.
// Crash and fuzz harnesses drive the server through this entry point.
func (s *Server) handle(sess *session, th *mtm.Thread, line string, req uint64) string {
	pr, rep := s.handleLine(sess, th, line, req)
	return renderLegacy(pr, rep)
}

func (s *Server) handleLine(sess *session, th *mtm.Thread, line string, req uint64) (request, Reply) {
	parse := telemetry.SpanBegin(telemetry.PhaseParse, 0, req)
	pr := s.parseLine(line)
	parse.End()
	exec := telemetry.SpanBegin(telemetry.PhaseExec, 0, req)
	defer exec.End()
	return pr, s.exec(sess, th, pr, exec.ID)
}

// dispatch times and traces one line-protocol command around handle. th
// is the transaction thread a batch partition assigned, or nil — the
// engine serves reads through thread-less Views and leases the session's
// write thread on demand for writes.
func (s *Server) dispatch(sess *session, th *mtm.Thread, line string) string {
	reply, _ := s.dispatchLine(sess, th, line)
	return reply
}

func (s *Server) dispatchLine(sess *session, th *mtm.Thread, line string) (string, bool) {
	var tid uint64
	if th != nil {
		tid = th.ID()
	}
	// The request span is a root (parent 0): when it outlasts the flight
	// recorder's threshold, the whole tree under it — parse, exec, txn and
	// its commit phases — is captured as one slow entry.
	req := telemetry.SpanBegin(telemetry.PhaseRequest, tid, 0)
	start := time.Now()
	pr, rep := s.handleLine(sess, th, line, req.ID)
	lat := time.Since(start).Nanoseconds()
	req.End()
	telReqs.Inc()
	telReqLat.Observe(lat)
	if rep.kind == replyError {
		telErrs.Inc()
	}
	if telemetry.TraceEnabled() {
		telemetry.Emit(telemetry.EvRequest, tid, uint64(lat), uint64(len(line)))
	}
	return renderLegacy(pr, rep), rep.kind == replyBye
}

// dispatchArgs is dispatch for a RESP-framed argv: same spans, counters,
// and engine, different framing and rendering.
func (s *Server) dispatchArgs(sess *session, th *mtm.Thread, args [][]byte) Reply {
	var tid uint64
	if th != nil {
		tid = th.ID()
	}
	req := telemetry.SpanBegin(telemetry.PhaseRequest, tid, 0)
	start := time.Now()
	parse := telemetry.SpanBegin(telemetry.PhaseParse, 0, req.ID)
	pr := s.parseCommand(args)
	parse.End()
	exec := telemetry.SpanBegin(telemetry.PhaseExec, 0, req.ID)
	rep := s.exec(sess, th, pr, exec.ID)
	exec.End()
	lat := time.Since(start).Nanoseconds()
	req.End()
	telReqs.Inc()
	telReqLat.Observe(lat)
	if rep.kind == replyError {
		telErrs.Inc()
	}
	if telemetry.TraceEnabled() {
		size := 0
		for _, a := range args {
			size += len(a)
		}
		telemetry.Emit(telemetry.EvRequest, tid, uint64(lat), uint64(size))
	}
	return rep
}

// Line classes for batch partitioning.
const (
	lineBarrier = iota // runs alone on the session goroutine
	lineRead           // keyed single-key read: partitioned, no thread
	lineWrite          // keyed single-key write: partitioned, needs a thread
)

// classify maps a parsed request onto a batch-partitioning class using
// the registry's keyed/write flags: single-key commands run concurrently
// hashed by key, everything else is a barrier.
func classify(pr request) (key string, kind int) {
	d := pr.def
	if pr.bad != nil || d == nil || !d.keyed || len(pr.args) < 2 {
		return "", lineBarrier
	}
	if !d.arityOK(len(pr.args)) {
		return "", lineBarrier
	}
	if d.keyedMax > 0 && len(pr.args) > d.keyedMax {
		return "", lineBarrier
	}
	if d.write {
		return string(pr.args[1]), lineWrite
	}
	return string(pr.args[1]), lineRead
}

// batchItem is one pipelined command inside a batch, transport-erased:
// run executes a partitionable item on the assigned thread, barrier
// executes on the session goroutine and reports whether the session
// should close (QUIT).
type batchItem struct {
	key     string
	kind    int
	run     func(th *mtm.Thread)
	barrier func() bool
}

// runBatch serves one batch of pipelined commands. Keyed single-key
// commands spread across partition goroutines by key hash — same key,
// same partition, so per-key order is preserved. Keyed reads run on
// snapshot Views and need no thread; a batch containing keyed writes
// materializes per-partition transaction threads first (on backends that
// need them; the sharded store leases inside each destination shard).
// Barriers drain queued keyed work, then run alone on the session
// goroutine. Returns the index of the item that closed the session, or
// -1 when the whole batch was served.
func (s *Server) runBatch(sess *session, items []batchItem) int {
	hasWrite := false
	for i := range items {
		if items[i].kind == lineWrite {
			hasWrite = true
			break
		}
	}
	var threads []*mtm.Thread
	nparts := 1
	if len(items) >= 8 {
		nparts = batchPartitions
	}
	if hasWrite && s.store.NeedsThread() {
		threads = sess.batchThreads(len(items))
		nparts = len(threads)
		if nparts == 0 {
			nparts = 1 // pool exhausted: serial on the session goroutine
		}
	}
	thOf := func(p int) *mtm.Thread {
		if p < len(threads) {
			return threads[p]
		}
		return nil
	}

	pending := make([][]int, nparts)
	flush := func() {
		total := 0
		for _, idxs := range pending {
			total += len(idxs)
		}
		if total == 0 {
			return
		}
		if total <= 2 || nparts == 1 {
			// Not worth goroutine coordination.
			for _, idxs := range pending {
				for _, i := range idxs {
					items[i].run(thOf(0))
				}
			}
		} else {
			var wg sync.WaitGroup
			for p := 1; p < nparts; p++ {
				if len(pending[p]) == 0 {
					continue
				}
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for _, i := range pending[p] {
						items[i].run(thOf(p))
					}
				}(p)
			}
			for _, i := range pending[0] {
				items[i].run(thOf(0))
			}
			wg.Wait()
		}
		for p := range pending {
			pending[p] = pending[p][:0]
		}
	}
	for i := range items {
		if items[i].kind != lineBarrier && nparts > 1 {
			p := int(s.hash(items[i].key) % uint64(nparts))
			pending[p] = append(pending[p], i)
			continue
		}
		flush()
		if items[i].barrier() {
			// Commands pipelined after QUIT are dropped unanswered.
			return i
		}
	}
	flush()
	return -1
}

// dispatchBatch serves one batch of pipelined lines, returning replies
// in request order and whether the session should close.
func (s *Server) dispatchBatch(sess *session, lines []string) ([]string, bool) {
	replies := make([]string, len(lines))
	if len(lines) == 1 {
		r, bye := s.dispatchLine(sess, nil, lines[0])
		replies[0] = r
		return replies, bye
	}
	items := make([]batchItem, len(lines))
	for i := range lines {
		i, line := i, lines[i]
		key, kind := classify(s.parseLine(line))
		items[i] = batchItem{
			key:  key,
			kind: kind,
			run: func(th *mtm.Thread) {
				replies[i] = s.dispatch(sess, th, line)
			},
			barrier: func() bool {
				r, bye := s.dispatchLine(sess, nil, line)
				replies[i] = r
				return bye
			},
		}
	}
	if stop := s.runBatch(sess, items); stop >= 0 {
		return replies[:stop+1], true
	}
	return replies, false
}

// dispatchBatchRESP is dispatchBatch for RESP-framed commands.
func (s *Server) dispatchBatchRESP(sess *session, cmds [][][]byte) ([]Reply, bool) {
	replies := make([]Reply, len(cmds))
	if len(cmds) == 1 {
		replies[0] = s.dispatchArgs(sess, nil, cmds[0])
		return replies, replies[0].kind == replyBye
	}
	items := make([]batchItem, len(cmds))
	for i := range cmds {
		i, args := i, cmds[i]
		key, kind := classify(s.parseCommand(args))
		items[i] = batchItem{
			key:  key,
			kind: kind,
			run: func(th *mtm.Thread) {
				replies[i] = s.dispatchArgs(sess, th, args)
			},
			barrier: func() bool {
				replies[i] = s.dispatchArgs(sess, nil, args)
				return replies[i].kind == replyBye
			},
		}
	}
	if stop := s.runBatch(sess, items); stop >= 0 {
		return replies[:stop+1], true
	}
	return replies, false
}
