package kvserve

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestRegistryArity pins every verb's arity contract: the registry is
// what both transports trust before running a handler, so an entry that
// drifts breaks usage errors on both wires at once.
func TestRegistryArity(t *testing.T) {
	cases := []struct {
		verb string
		argc int
		ok   bool
	}{
		{"PING", 1, true}, {"PING", 2, true},
		{"ECHO", 1, false}, {"ECHO", 2, true}, {"ECHO", 3, false},
		{"QUIT", 1, true},
		{"SET", 2, false}, {"SET", 3, true}, {"SET", 5, true},
		{"GET", 1, false}, {"GET", 2, true}, {"GET", 3, false},
		{"DEL", 1, false}, {"DEL", 2, true}, {"DEL", 4, true},
		{"MGET", 1, false}, {"MGET", 2, true}, {"MGET", 9, true},
		{"MSET", 2, false}, {"MSET", 3, true}, {"MSET", 5, true},
		{"MDEL", 1, false}, {"MDEL", 2, true},
		{"COUNT", 1, true}, {"COUNT", 2, false},
		{"DBSIZE", 1, true},
		{"STATS", 1, true}, {"STATS", 2, false},
		{"HSET", 3, false}, {"HSET", 4, true}, {"HSET", 6, true},
		{"HGET", 2, false}, {"HGET", 3, true}, {"HGET", 4, false},
		{"HDEL", 2, false}, {"HDEL", 3, true}, {"HDEL", 5, true},
		{"HLEN", 2, true}, {"HLEN", 3, false},
		{"HGETALL", 2, true}, {"HGETALL", 3, false},
		{"EXPIRE", 2, false}, {"EXPIRE", 3, true}, {"EXPIRE", 4, false},
		{"PEXPIRE", 3, true},
		{"TTL", 2, true}, {"TTL", 3, false},
		{"PTTL", 2, true},
		{"PERSIST", 2, true}, {"PERSIST", 1, false},
	}
	for _, c := range cases {
		def := registry[c.verb]
		if def == nil {
			t.Fatalf("verb %s not registered", c.verb)
		}
		if got := def.arityOK(c.argc); got != c.ok {
			t.Errorf("%s with %d args: arityOK = %v, want %v", c.verb, c.argc, got, c.ok)
		}
	}
}

// TestRegistryEntries checks structural invariants of the table itself:
// names map to themselves, every entry has a handler, a usage string
// that names the verb, and a per-verb telemetry counter.
func TestRegistryEntries(t *testing.T) {
	if len(registry) < 20 {
		t.Fatalf("registry holds %d verbs, expected the full command set", len(registry))
	}
	for name, def := range registry {
		if def.name != name {
			t.Errorf("registry[%q].name = %q", name, def.name)
		}
		if name != strings.ToUpper(name) {
			t.Errorf("verb %q not upper-cased", name)
		}
		if def.handler == nil {
			t.Errorf("%s has no handler", name)
		}
		if def.usage == "" || !strings.HasPrefix(def.usage, name) {
			t.Errorf("%s usage %q does not lead with the verb", name, def.usage)
		}
		if def.calls == nil {
			t.Errorf("%s has no invocation counter", name)
		}
		if def.arity == 0 {
			t.Errorf("%s has no arity contract", name)
		}
		if def.keyedMax > 0 && !def.keyed {
			t.Errorf("%s sets keyedMax without keyed", name)
		}
		if def.lineSplit > 0 && def.lineSplit < 3 {
			t.Errorf("%s lineSplit = %d, must keep verb and key intact", name, def.lineSplit)
		}
	}
}

// TestClassify pins the batch partitioner's read/write/barrier
// classification — the property the pipeline scheduler builds on: keyed
// single-key commands may run concurrently hashed by key, everything
// else serializes.
func TestClassify(t *testing.T) {
	var s Server
	cases := []struct {
		line string
		key  string
		kind int
	}{
		{"GET k1", "k1", lineRead},
		{"TTL k1", "k1", lineRead},
		{"PTTL k1", "k1", lineRead},
		{"HGET h f", "h", lineRead},
		{"HLEN h", "h", lineRead},
		{"HGETALL h", "h", lineRead},
		{"SET k1 v", "k1", lineWrite},
		{"SET k1 v with spaces", "k1", lineWrite},
		{"DEL k1", "k1", lineWrite},
		{"HSET h f v", "h", lineWrite},
		{"HDEL h f", "h", lineWrite},
		{"EXPIRE k1 5", "k1", lineWrite},
		{"PEXPIRE k1 5000", "k1", lineWrite},
		{"PERSIST k1", "k1", lineWrite},

		// Multi-key, admin, and session commands are barriers.
		{"DEL a b", "", lineBarrier}, // variadic DEL exceeds keyedMax
		{"MGET a b", "", lineBarrier},
		{"MSET a 1 b 2", "", lineBarrier},
		{"MDEL a b", "", lineBarrier},
		{"COUNT", "", lineBarrier},
		{"STATS", "", lineBarrier},
		{"PING", "", lineBarrier},
		{"QUIT", "", lineBarrier},

		// Malformed input never reaches a partition goroutine.
		{"GET", "", lineBarrier},        // arity violation
		{"GET a b", "", lineBarrier},    // arity violation
		{"NONSENSE k", "", lineBarrier}, // unknown verb
		{"", "", lineBarrier},           // empty line
		{"EXPIRE k", "", lineBarrier},   // arity violation
	}
	for _, c := range cases {
		key, kind := classify(s.parseLine(c.line))
		if key != c.key || kind != c.kind {
			t.Errorf("classify(%q) = (%q, %d), want (%q, %d)", c.line, key, kind, c.key, c.kind)
		}
	}
}

// TestLegacyRenderDefaults pins the default line-protocol rendering of
// each reply shape (verbs without a legacy override rely on these).
func TestLegacyRenderDefaults(t *testing.T) {
	cases := []struct {
		r    Reply
		want string
	}{
		{simpleReply("OK"), "OK"},
		{intReply(7), "7"},
		{bulkString("payload"), "payload"},
		{nilReply(), "MISSING"},
		{byeReply(), "BYE"},
		{arrayReply([]Reply{bulkString("a"), nilReply()}), "a\nMISSING"},
	}
	for _, c := range cases {
		if got := legacyDefault(c.r); got != c.want {
			t.Errorf("legacyDefault(%+v) = %q, want %q", c.r, got, c.want)
		}
	}
	// Errors render with the ERROR prefix regardless of any override.
	if got := renderLegacy(request{def: registry["GET"]}, errReply("boom")); got != "ERROR boom" {
		t.Errorf("error render = %q", got)
	}
}

// TestEchoByeKeepsSession guards the structural QUIT detection: session
// teardown keys off the replyBye kind, so a bulk reply that happens to
// spell "BYE" must not close the connection.
func TestEchoByeKeepsSession(t *testing.T) {
	_, _, addr := startServer(t, core.Config{Dir: t.TempDir(), DeviceSize: 64 << 20})
	c := dial(t, addr)
	if got := c.cmd(t, "ECHO BYE"); got != "BYE" {
		t.Fatalf("ECHO BYE -> %q", got)
	}
	if got := c.cmd(t, "PING"); got != "PONG" {
		t.Fatalf("session closed after ECHO BYE: PING -> %q", got)
	}
	if got := c.cmd(t, "QUIT"); got != "BYE" {
		t.Fatalf("QUIT -> %q", got)
	}
	if _, err := c.r.ReadByte(); err == nil {
		t.Fatal("connection still open after QUIT")
	}
}
