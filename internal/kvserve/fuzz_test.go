package kvserve

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// FuzzKVProtocol throws arbitrary wire lines at the command handler. The
// server must answer every line with exactly one reply line — never
// panicking, never wedging the session — and still serve a well-formed
// command afterwards. The persistent stack underneath is real, so fuzzed
// SETs exercise the transaction and allocation paths with hostile keys
// and values too.
func FuzzKVProtocol(f *testing.F) {
	pm, err := core.Open(core.Config{DeviceSize: 16 << 20, Threads: 2, Dir: f.TempDir()})
	if err != nil {
		f.Fatal(err)
	}
	s, err := New(pm)
	if err != nil {
		f.Fatal(err)
	}
	th, err := pm.NewThread()
	if err != nil {
		f.Fatal(err)
	}

	f.Add("SET key value")
	f.Add("GET key")
	f.Add("DEL key")
	f.Add("COUNT")
	f.Add("PING")
	f.Add("STATS")
	f.Add("QUIT")
	f.Add("")
	f.Add("   ")
	f.Add("set lower case")
	f.Add("SET")
	f.Add("GET a b c")
	f.Add("SET \x00\xff b")
	f.Add("SET k " + strings.Repeat("v", 4096))
	f.Add("UNKNOWN command here")

	sess := &session{s: s, th: th}
	f.Fuzz(func(t *testing.T, line string) {
		reply := s.handle(sess, th, line, 0)
		if reply == "" {
			t.Fatalf("empty reply to %q", line)
		}
		// MGET is the one command whose reply spans lines: exactly one
		// per requested key. Everything else answers a single line.
		if fields := strings.Fields(line); len(fields) > 1 && strings.ToUpper(fields[0]) == "MGET" {
			if !strings.HasPrefix(reply, "ERROR") && strings.Count(reply, "\n") != len(fields)-2 {
				t.Fatalf("MGET %d keys answered %d lines: %q", len(fields)-1, strings.Count(reply, "\n")+1, reply)
			}
		} else if strings.ContainsAny(reply, "\n\r") {
			t.Fatalf("multi-line reply to %q: %q", line, reply)
		}
		if got := s.handle(sess, th, "PING", 0); got != "PONG" {
			t.Fatalf("server wedged after %q: PING answered %q", line, got)
		}
	})
}
