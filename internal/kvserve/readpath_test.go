package kvserve

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// TestReadOnlySessionZeroLeases proves the slot-free read path end to
// end over the wire: a GET/MGET/COUNT/STATS-only connection performs
// zero thread leases and zero durability fences — reads ride snapshot
// Views, never the transaction log.
func TestReadOnlySessionZeroLeases(t *testing.T) {
	_, pm, addr := startServer(t, core.Config{Dir: t.TempDir(), DeviceSize: 64 << 20})

	// Seed data on a writing connection, fully acknowledged before the
	// baselines are sampled.
	w := dial(t, addr)
	for i := 0; i < 8; i++ {
		if got := w.cmd(t, fmt.Sprintf("SET rk%d rv%d", i, i)); got != "OK" {
			t.Fatalf("SET %d -> %q", i, got)
		}
	}
	if got := w.cmd(t, "QUIT"); got != "BYE" {
		t.Fatalf("QUIT -> %q", got)
	}
	w.conn.Close()

	leases0 := uint64(telemetry.Default.Snapshot()["mtm_thread_leases_total"])
	fences0 := pm.Device().Snapshot().Fences
	readtx0 := uint64(telemetry.Default.Snapshot()["mtm_readtx_started_total"])

	r := dial(t, addr)
	for i := 0; i < 8; i++ {
		want := fmt.Sprintf("VALUE rv%d", i)
		if got := r.cmd(t, fmt.Sprintf("GET rk%d", i)); got != want {
			t.Fatalf("GET rk%d -> %q, want %q", i, got, want)
		}
	}
	if got := r.cmd(t, "GET nosuch"); got != "MISSING" {
		t.Fatalf("GET nosuch -> %q", got)
	}
	// MGET answers one line per key from one snapshot.
	fmt.Fprintln(r.conn, "MGET rk0 nosuch rk7")
	for i, want := range []string{"VALUE rv0", "MISSING", "VALUE rv7"} {
		line, err := r.r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if got := strings.TrimRight(line, "\n"); got != want {
			t.Fatalf("MGET line %d -> %q, want %q", i, got, want)
		}
	}
	if got := r.cmd(t, "COUNT"); got != "COUNT 8" {
		t.Fatalf("COUNT -> %q", got)
	}
	if got := r.cmd(t, "STATS"); !strings.HasPrefix(got, "STATS ") {
		t.Fatalf("STATS -> %q", got)
	}

	if d := uint64(telemetry.Default.Snapshot()["mtm_thread_leases_total"]) - leases0; d != 0 {
		t.Errorf("read-only session performed %d thread leases, want 0", d)
	}
	if d := pm.Device().Snapshot().Fences - fences0; d != 0 {
		t.Errorf("read-only session issued %d fences, want 0", d)
	}
	if d := uint64(telemetry.Default.Snapshot()["mtm_readtx_started_total"]) - readtx0; d == 0 {
		t.Error("no snapshot read transactions recorded; reads did not take the View path")
	}
}

// TestCloseUnblocksFullPool is the regression test for shutdown hanging
// behind thread leasing: with every slot held and the lease timeout far
// in the future, a writer queued on the full pool must be unblocked by
// Close cancelling the server's lifecycle context.
func TestCloseUnblocksFullPool(t *testing.T) {
	srv, _, addr := startServer(t, core.Config{
		Dir:          t.TempDir(),
		DeviceSize:   64 << 20,
		Threads:      1,
		LeaseTimeout: 10 * time.Minute,
	})

	// holder takes the only slot with its first write and keeps it for
	// the connection's life.
	holder := dial(t, addr)
	if got := holder.cmd(t, "SET held 1"); got != "OK" {
		t.Fatalf("SET -> %q", got)
	}

	// blocked queues on the full pool; without the lifecycle context its
	// lease would wait out the 10-minute timeout.
	blocked := dial(t, addr)
	if _, err := fmt.Fprintln(blocked.conn, "SET queued 2"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // let the session reach Lease

	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung behind a session queued on the full thread pool")
	}
	holder.conn.Close()
	blocked.conn.Close()
}
