package kvserve

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/scm"
	"repro/internal/telemetry"
)

// sendBatch writes all lines in one network write (a pipelining client)
// and reads exactly want replies, in order.
func sendBatch(t *testing.T, c *client, lines []string, want int) []string {
	t.Helper()
	if _, err := c.conn.Write([]byte(strings.Join(lines, "\n") + "\n")); err != nil {
		t.Fatal(err)
	}
	replies := make([]string, 0, want)
	for i := 0; i < want; i++ {
		reply, err := c.r.ReadString('\n')
		if err != nil {
			t.Fatalf("reply %d of %d: %v (got %q so far)", i, want, err, replies)
		}
		replies = append(replies, strings.TrimSuffix(reply, "\n"))
	}
	return replies
}

func TestMSetMDel(t *testing.T) {
	_, _, addr := startServer(t, core.Config{Dir: t.TempDir(), DeviceSize: 64 << 20})
	c := dial(t, addr)
	if got := c.cmd(t, "MSET a 1 b 2 c 3"); got != "OK" {
		t.Fatalf("MSET -> %q", got)
	}
	for _, kv := range [][2]string{{"a", "1"}, {"b", "2"}, {"c", "3"}} {
		if got := c.cmd(t, "GET "+kv[0]); got != "VALUE "+kv[1] {
			t.Fatalf("GET %s -> %q", kv[0], got)
		}
	}
	if got := c.cmd(t, "COUNT"); got != "COUNT 3" {
		t.Fatalf("COUNT -> %q", got)
	}
	// MDEL reports how many named keys were present; missing keys are
	// skipped, not errors.
	if got := c.cmd(t, "MDEL a b nosuch"); got != "DELETED 2" {
		t.Fatalf("MDEL -> %q", got)
	}
	if got := c.cmd(t, "GET a"); got != "MISSING" {
		t.Fatalf("GET deleted -> %q", got)
	}
	if got := c.cmd(t, "GET c"); got != "VALUE 3" {
		t.Fatalf("GET survivor -> %q", got)
	}
	// Usage errors.
	if got := c.cmd(t, "MSET a"); !strings.HasPrefix(got, "ERROR") {
		t.Fatalf("odd MSET -> %q", got)
	}
	if got := c.cmd(t, "MDEL"); !strings.HasPrefix(got, "ERROR") {
		t.Fatalf("empty MDEL -> %q", got)
	}
	// MSET is one transaction: an oversized value rejects the whole set
	// before anything commits.
	long := strings.Repeat("x", MaxValueLen+1)
	if got := c.cmd(t, "MSET d 4 e "+long); !strings.HasPrefix(got, "ERROR") {
		t.Fatalf("oversized MSET -> %q", got)
	}
	if got := c.cmd(t, "GET d"); got != "MISSING" {
		t.Fatalf("partial MSET leaked: GET d -> %q", got)
	}
}

// TestPipelinedReplies sends many commands in single network writes and
// checks the replies come back complete, in request order, with per-key
// command order preserved across the concurrent batch dispatch.
func TestPipelinedReplies(t *testing.T) {
	_, _, addr := startServer(t, core.Config{
		Dir: t.TempDir(), DeviceSize: 64 << 20, GroupCommit: true,
	})
	c := dial(t, addr)

	// Same-key sequences must serialize in order even when the batch is
	// spread across worker threads: SET k v1, GET k, SET k v2, GET k.
	var lines, want []string
	const keys = 6
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("pk%d", k)
		lines = append(lines,
			"SET "+key+" first",
			"GET "+key,
			"SET "+key+" second",
			"GET "+key,
		)
		want = append(want, "OK", "VALUE first", "OK", "VALUE second")
	}
	// A barrier command mid-batch still answers in position.
	lines = append(lines, "COUNT", "PING")
	want = append(want, fmt.Sprintf("COUNT %d", keys), "PONG")
	got := sendBatch(t, c, lines, len(want))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reply %d (%q) = %q, want %q", i, lines[i], got[i], want[i])
		}
	}

	// Lines pipelined after QUIT are dropped unanswered and the
	// connection closes after BYE.
	c2 := dial(t, addr)
	replies := sendBatch(t, c2, []string{"SET q 1", "QUIT", "SET never 2"}, 2)
	if replies[0] != "OK" || replies[1] != "BYE" {
		t.Fatalf("QUIT batch replies = %q", replies)
	}
	if _, err := c2.r.ReadString('\n'); err == nil {
		t.Fatal("connection stayed open after pipelined QUIT")
	}
	c3 := dial(t, addr)
	if got := c3.cmd(t, "GET never"); got != "MISSING" {
		t.Fatalf("command after QUIT executed: %q", got)
	}
	if got := c3.cmd(t, "GET q"); got != "VALUE 1" {
		t.Fatalf("command before QUIT lost: %q", got)
	}
}

// TestSoakPipelinedMixedCrash mixes pipelined and request-per-reply
// clients against one server with group commit enabled, crashes the
// device mid-test under a random keep/drop policy, reincarnates the
// stack, and verifies every acknowledged write survived. Run with -race
// this shakes the batch dispatcher's worker threads, the epoch
// coordinator, and the session shutdown paths together.
func TestSoakPipelinedMixedCrash(t *testing.T) {
	waves, clients, ops := 3, 4, 48
	if testing.Short() {
		waves, ops = 2, 16
	}
	cfg := core.Config{
		Dir:             t.TempDir(),
		DeviceSize:      64 << 20,
		Threads:         4 * clients, // sessions plus their batch workers
		AsyncTruncation: true,
		GroupCommit:     true,
	}
	pm, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dev := pm.Device()

	serve := func() (*Server, string) {
		t.Helper()
		srv, err := New(pm)
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(l)
		return srv, l.Addr().String()
	}

	expect := map[string]string{}
	srv, addr := serve()
	for wave := 0; wave < waves; wave++ {
		models := make([]map[string]string, clients)
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		for ci := 0; ci < clients; ci++ {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				model := map[string]string{}
				models[ci] = model
				c := dial(t, addr)
				defer c.conn.Close()
				rng := rand.New(rand.NewSource(int64(wave*100 + ci)))
				pipelined := ci%2 == 0
				if pipelined {
					// Batches of SET/DEL lines in one write, replies
					// checked as a block; every OK is an acknowledged
					// durable write.
					for done := 0; done < ops; {
						n := 4 + rng.Intn(12)
						if n > ops-done {
							n = ops - done
						}
						var lines []string
						var keys []string
						for j := 0; j < n; j++ {
							key := fmt.Sprintf("w%dc%dk%d", wave, ci, rng.Intn(10))
							if rng.Intn(4) == 0 {
								lines = append(lines, "DEL "+key)
								keys = append(keys, "-"+key)
							} else {
								val := fmt.Sprintf("v%d.%d.%d", wave, ci, done+j)
								lines = append(lines, "SET "+key+" "+val)
								keys = append(keys, key+"="+val)
							}
						}
						if _, err := c.conn.Write([]byte(strings.Join(lines, "\n") + "\n")); err != nil {
							errs <- err
							return
						}
						for j := 0; j < n; j++ {
							reply, err := c.r.ReadString('\n')
							if err != nil {
								errs <- err
								return
							}
							reply = strings.TrimSuffix(reply, "\n")
							if del, key := strings.HasPrefix(keys[j], "-"), keys[j]; del {
								if reply != "OK" && reply != "MISSING" {
									errs <- fmt.Errorf("client %d: %q -> %q", ci, lines[j], reply)
									return
								}
								delete(model, key[1:])
							} else {
								if reply != "OK" {
									errs <- fmt.Errorf("client %d: %q -> %q", ci, lines[j], reply)
									return
								}
								k, v, _ := strings.Cut(key, "=")
								model[k] = v
							}
						}
						done += n
					}
				} else {
					// Request-per-reply client on the same server, with
					// occasional multi-key transactions.
					for j := 0; j < ops; j++ {
						key := fmt.Sprintf("w%dc%dk%d", wave, ci, rng.Intn(10))
						switch rng.Intn(5) {
						case 0:
							reply := c.cmd(t, "DEL "+key)
							if reply != "OK" && reply != "MISSING" {
								errs <- fmt.Errorf("DEL %s: %s", key, reply)
								return
							}
							delete(model, key)
						case 1:
							k2 := fmt.Sprintf("w%dc%dk%d", wave, ci, rng.Intn(10))
							v := fmt.Sprintf("m%d.%d.%d", wave, ci, j)
							if k2 == key {
								k2 = key + "x"
							}
							if reply := c.cmd(t, "MSET "+key+" "+v+" "+k2+" "+v); reply != "OK" {
								errs <- fmt.Errorf("MSET: %s", reply)
								return
							}
							model[key], model[k2] = v, v
						default:
							val := fmt.Sprintf("v%d.%d.%d", wave, ci, j)
							if reply := c.cmd(t, "SET "+key+" "+val); reply != "OK" {
								errs <- fmt.Errorf("SET %s: %s", key, reply)
								return
							}
							model[key] = val
						}
					}
				}
			}(ci)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		// Per-(wave,client) key spaces are disjoint, so each model is
		// authoritative for its own keys.
		for ci, model := range models {
			prefix := fmt.Sprintf("w%dc%d", wave, ci)
			for k := range expect {
				if strings.HasPrefix(k, prefix) {
					delete(expect, k)
				}
			}
			for k, v := range model {
				expect[k] = v
			}
		}

		// Power failure mid-test, then reincarnate the whole stack.
		srv.Close()
		pm.TM().StopTruncation()
		dev.Crash(scm.NewRandomPolicy(int64(7000 + wave)))
		pm, err = core.Attach(dev, cfg)
		if err != nil {
			t.Fatalf("reattach after crash %d: %v", wave, err)
		}
		srv, addr = serve()

		c := dial(t, addr)
		for k, v := range expect {
			if got := c.cmd(t, "GET "+k); got != "VALUE "+v {
				t.Fatalf("after crash %d: GET %s = %q, want %q", wave, k, got, "VALUE "+v)
			}
		}
		if got := c.cmd(t, "COUNT"); got != fmt.Sprintf("COUNT %d", len(expect)) {
			t.Fatalf("after crash %d: %s, want %d acked keys", wave, got, len(expect))
		}
		c.conn.Close()
	}
	srv.Close()
	if got := pm.TM().LiveThreads(); got != 0 {
		t.Fatalf("live threads after all sessions closed = %d, want 0 (leaked batch workers?)", got)
	}
}

// BenchmarkKVPipelined compares 8 request-per-reply clients against 8
// pipelining clients on the same server with group commit enabled. The
// pipelined mode must beat serial by >=2x ops/sec with fences/commit
// below 1.0 (the issue's acceptance bar); fences/commit is reported from
// the device counters.
func BenchmarkKVPipelined(b *testing.B) {
	const clients = 8
	const window = 32 // pipelined requests in flight per client
	for _, mode := range []string{"serial", "pipelined"} {
		b.Run(mode, func(b *testing.B) {
			pm, err := core.Open(core.Config{
				Dir:             b.TempDir(),
				DeviceSize:      256 << 20,
				Threads:         6 * clients,
				EmulateLatency:  true,
				AsyncTruncation: true,
				GroupCommit:     true,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer pm.Close()
			srv, err := New(pm)
			if err != nil {
				b.Fatal(err)
			}
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go srv.Serve(l)
			defer srv.Close()

			conns := make([]net.Conn, clients)
			readers := make([]*bufio.Reader, clients)
			for i := range conns {
				conn, err := net.Dial("tcp", l.Addr().String())
				if err != nil {
					b.Fatal(err)
				}
				defer conn.Close()
				conns[i] = conn
				readers[i] = bufio.NewReader(conn)
			}

			startReg := telemetry.Default.Snapshot()
			startFences := pm.Device().Snapshot().Fences
			startCommits := pm.TM().Snapshot().Commits
			b.ResetTimer()
			var wg sync.WaitGroup
			fail := make(chan error, clients)
			for ci := 0; ci < clients; ci++ {
				share := b.N / clients
				if ci < b.N%clients {
					share++
				}
				if share == 0 {
					continue
				}
				wg.Add(1)
				go func(ci, share int) {
					defer wg.Done()
					conn, r := conns[ci], readers[ci]
					if mode == "serial" {
						for j := 0; j < share; j++ {
							fmt.Fprintf(conn, "SET b%dk%d v%d\n", ci, j%64, j)
							if reply, err := r.ReadString('\n'); err != nil || reply != "OK\n" {
								fail <- fmt.Errorf("client %d: %q %v", ci, reply, err)
								return
							}
						}
						return
					}
					var sb strings.Builder
					for done := 0; done < share; {
						n := window
						if n > share-done {
							n = share - done
						}
						sb.Reset()
						for j := 0; j < n; j++ {
							fmt.Fprintf(&sb, "SET b%dk%d v%d\n", ci, (done+j)%64, done+j)
						}
						if _, err := conn.Write([]byte(sb.String())); err != nil {
							fail <- err
							return
						}
						for j := 0; j < n; j++ {
							if reply, err := r.ReadString('\n'); err != nil || reply != "OK\n" {
								fail <- fmt.Errorf("client %d: %q %v", ci, reply, err)
								return
							}
						}
						done += n
					}
				}(ci, share)
			}
			wg.Wait()
			b.StopTimer()
			select {
			case err := <-fail:
				b.Fatal(err)
			default:
			}
			pm.TM().Drain()
			reg := telemetry.Default.Snapshot()
			fences := pm.Device().Snapshot().Fences - startFences
			commits := pm.TM().Snapshot().Commits - startCommits
			epochs := reg["mtm_group_commit_epochs_total"] - startReg["mtm_group_commit_epochs_total"]
			leaderFences := reg["mtm_group_commit_fences_total"] - startReg["mtm_group_commit_fences_total"]
			if commits > 0 {
				// Commit-path durability fences per transaction — the
				// amortization group commit buys. Device fences also count
				// the heap allocator's internal metadata fences inside each
				// B+tree Put, which no commit protocol can share; they are
				// reported separately as devfences/commit.
				b.ReportMetric(float64(leaderFences+2*epochs)/float64(commits), "fences/commit")
				b.ReportMetric(float64(fences)/float64(commits), "devfences/commit")
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/sec")
		})
	}
}
