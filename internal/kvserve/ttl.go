package kvserve

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/mtm"
	"repro/internal/pds"
	"repro/internal/pmem"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

var telExpired = telemetry.NewCounter("kvserve_expired_total",
	"Records physically reclaimed after their TTL deadline (sweeps and lazy reaps).")

// errNoTTL answers expiry-carrying commands on a backend without a timer
// wheel (the MOD shadow-update store): the deadline and the record must
// commit in one transaction, which a self-committing backend cannot do.
const errNoTTL = "expiry not supported on the mod backend (no transactional timer wheel); use the mtm backend for TTLs"

// Persistent timer wheel. Each node owns one wheel, allocated lazily in
// the first expiry-carrying transaction and rooted at the "kvserve.ttl"
// static, so deadlines survive crashes and recovery resumes sweeping.
//
// Layout, at the wheel's block:
//
//	[0]  magic
//	[8]  reserved
//	[16] 32 slot heads, one per wheelTick ring position
//
// An entry is [next][keyhash][deadline], 24 bytes, prepended to the slot
// chain of its deadline's ring position. Entries are ADVISORY: the
// record's own Expire field is the authoritative deadline (checked on
// every read and before every sweep deletion), so a stale entry — left
// behind by PERSIST, DEL, or an overwriting SET — can never expire a
// record whose own deadline says otherwise; it is simply unlinked when
// the sweeper reaches it. The wheel entry and the record's deadline are
// written in the SAME transaction, which is what makes the crash oracle
// hold: either both exist (key expires, sweeper finds it) or neither
// does (key lives, nothing ever reaps it).
const (
	wheelMagic  = 0x4c454548574c5454 // "TTLWHEEL" little-endian-ish tag
	wheelSlots  = 32
	wheelTick   = int64(time.Second)
	wheelHdr    = 16
	wheelBytes  = wheelHdr + 8*wheelSlots
	entryBytes  = 24
	sweepBudget = 256 // max entries retired per sweep transaction
)

func wheelSlot(deadline int64) int64 {
	return (deadline / wheelTick) % wheelSlots
}

// wheelEnsure returns the node's wheel, allocating it inside tx on first
// use (pmalloc-inside-atomic, Figure 3 of the paper: an abort undoes
// both the allocation and the root-cell write).
func wheelEnsure(n *node, tx *mtm.Tx) (pmem.Addr, error) {
	base := pmem.Addr(tx.LoadU64(n.ttlRoot))
	if base != pmem.Nil {
		return base, nil
	}
	base, err := tx.PMalloc(wheelBytes, n.ttlRoot)
	if err != nil {
		return pmem.Nil, err
	}
	tx.StoreU64(base, wheelMagic)
	tx.StoreU64(base.Add(8), 0)
	for i := int64(0); i < wheelSlots; i++ {
		tx.StoreU64(base.Add(wheelHdr+8*i), 0)
	}
	return base, nil
}

// wheelAdd records keyhash's deadline in the wheel, inside the same
// transaction that writes the record's Expire field. An existing entry
// for the key in the target slot is updated in place; otherwise a new
// entry is prepended.
func (s *Server) wheelAdd(n *node, tx *mtm.Tx, keyhash uint64, deadline int64) error {
	base, err := wheelEnsure(n, tx)
	if err != nil {
		return err
	}
	slotAddr := base.Add(wheelHdr + 8*wheelSlot(deadline))
	for e := pmem.Addr(tx.LoadU64(slotAddr)); e != pmem.Nil; e = pmem.Addr(tx.LoadU64(e)) {
		if tx.LoadU64(e.Add(8)) == keyhash {
			tx.StoreU64(e.Add(16), uint64(deadline))
			n.ttlLive.Store(true)
			return nil
		}
	}
	e, err := tx.Alloc(entryBytes)
	if err != nil {
		return err
	}
	tx.StoreU64(e, tx.LoadU64(slotAddr)) // next = old head
	tx.StoreU64(e.Add(8), keyhash)
	tx.StoreU64(e.Add(16), uint64(deadline))
	tx.StoreU64(slotAddr, uint64(e))
	n.ttlLive.Store(true)
	return nil
}

// wheelHasDue reports whether any wheel entry's deadline has passed —
// the sweeper's snapshot pre-check, so an idle server (or one with only
// future deadlines) never starts a write transaction and never leases a
// thread just to discover there is nothing to do.
func wheelHasDue(n *node, r mtm.Reader, now int64) bool {
	base := pmem.Addr(r.LoadU64(n.ttlRoot))
	if base == pmem.Nil {
		return false
	}
	for slot := int64(0); slot < wheelSlots; slot++ {
		for e := pmem.Addr(r.LoadU64(base.Add(wheelHdr + 8*slot))); e != pmem.Nil; e = pmem.Addr(r.LoadU64(e)) {
			if int64(r.LoadU64(e.Add(16))) <= now {
				return true
			}
		}
	}
	return false
}

// sweepShard retires due wheel entries on shard k: each due entry is
// unlinked and freed, and its record is deleted ONLY if the record's own
// deadline has also passed — a stale entry for a key whose TTL was since
// removed or pushed out just vanishes. Returns how many records were
// reclaimed. The whole sweep is one durable transaction (bounded by
// sweepBudget), so a crash mid-sweep either keeps or retires each entry
// atomically with its record.
func (s *Server) sweepShard(k int, now int64) (int, error) {
	st := s.store
	n := st.Node(k)
	if !n.ttlLive.Load() {
		return 0, nil
	}
	due := false
	if err := st.View(0, k, func(n *node, r mtm.Reader) error {
		due = wheelHasDue(n, r, now)
		return nil
	}); err != nil {
		return 0, err
	}
	if !due {
		return 0, nil
	}
	var th *mtm.Thread
	if st.NeedsThread() {
		var err error
		th, err = s.pool.Lease(s.ctx)
		if err != nil {
			return 0, err
		}
		defer th.Close()
	}
	reaped := 0
	err := st.Update(th, 0, k, func(n *node, tx *mtm.Tx) error {
		reaped = 0 // conflict retries rerun the closure
		base := pmem.Addr(tx.LoadU64(n.ttlRoot))
		if base == pmem.Nil {
			return nil
		}
		budget := sweepBudget
		for slot := int64(0); slot < wheelSlots && budget > 0; slot++ {
			prev := base.Add(wheelHdr + 8*slot)
			e := pmem.Addr(tx.LoadU64(prev))
			for e != pmem.Nil && budget > 0 {
				next := pmem.Addr(tx.LoadU64(e))
				if int64(tx.LoadU64(e.Add(16))) > now {
					prev = e
					e = next
					continue
				}
				keyhash := tx.LoadU64(e.Add(8))
				tx.StoreU64(prev, uint64(next))
				if err := tx.FreeBlock(e); err != nil {
					return err
				}
				budget--
				raw, err := n.tree.Get(tx, keyhash)
				if err == nil {
					rec, derr := shard.DecodeRecord(raw)
					if derr != nil {
						return derr
					}
					if rec.Expired(now) {
						if err := n.tree.Delete(tx, keyhash); err != nil {
							return err
						}
						reaped++
					}
				} else if err != pds.ErrNotFound {
					return err
				}
				e = next
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	if reaped > 0 {
		telExpired.Add(uint64(reaped))
	}
	return reaped, nil
}

// sweepAll sweeps every shard at the given instant, returning the total
// records reclaimed. Tests drive it synchronously with a fake clock; the
// background sweeper calls it on a ticker.
func (s *Server) sweepAll(now int64) (int, error) {
	total := 0
	for k := 0; k < s.store.NShards(); k++ {
		n, err := s.sweepShard(k, now)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// reapItem queues a lazily-discovered expired record (a read saw a
// deadline in the past) for physical deletion off the read path.
type reapItem struct {
	k int
	h uint64
}

// reapLater enqueues without blocking; a full queue just drops the hint
// — the record stays masked on every read and the next sweep retires it.
func (s *Server) reapLater(k int, h uint64) {
	select {
	case s.reapCh <- reapItem{k: k, h: h}:
	default:
	}
}

// reapOne deletes the record at h on shard k if — and only if — its own
// deadline has passed; the record may have been overwritten with a fresh
// value since the hint was queued.
func (s *Server) reapOne(it reapItem) {
	st := s.store
	var th *mtm.Thread
	if st.NeedsThread() {
		var err error
		th, err = s.pool.Lease(s.ctx)
		if err != nil {
			return
		}
		defer th.Close()
	}
	reaped := false
	err := st.Update(th, 0, it.k, func(n *node, tx *mtm.Tx) error {
		reaped = false
		raw, err := n.tree.Get(tx, it.h)
		if err == pds.ErrNotFound {
			return nil
		}
		if err != nil {
			return err
		}
		rec, err := shard.DecodeRecord(raw)
		if err != nil {
			return err
		}
		if !rec.Expired(s.now()) {
			return nil
		}
		if err := n.tree.Delete(tx, it.h); err != nil {
			return err
		}
		reaped = true
		return nil
	})
	if err == nil && reaped {
		telExpired.Inc()
	}
}

// sweeper is the background expiry goroutine: it drains lazy-reap hints
// and ticks the wheel sweep. Started on the first Serve/ServeRESP, it
// exits with the server's lifecycle context.
func (s *Server) sweeper() {
	defer s.wg.Done()
	t := time.NewTicker(100 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case it := <-s.reapCh:
			s.reapOne(it)
		case <-t.C:
			// Sweep errors are transient (crash harness detached the
			// device, pool drained at shutdown); the next tick retries.
			s.sweepAll(s.now())
		}
	}
}

// --- TTL command handlers ---

func parseTTLArg(a []byte) (int64, error) {
	d, err := strconv.ParseInt(string(a), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid expire time %q", string(a))
	}
	return d, nil
}

// cmdExpire serves EXPIRE and PEXPIRE: stamp an absolute deadline into
// the record and register it on the wheel, both in one durable
// transaction. A non-positive ttl deletes the key immediately (redis
// semantics). Answers 1 when a deadline was set (or the key deleted),
// 0 when the key does not exist.
func cmdExpire(c *call) Reply {
	if !c.s.store.SupportsTTL() {
		return errReply(errNoTTL)
	}
	key := c.str(1)
	d, err := parseTTLArg(c.args[2])
	if err != nil {
		return errfReply(err)
	}
	unit := int64(time.Second)
	if c.str(0)[0] == 'P' || c.str(0)[0] == 'p' {
		unit = int64(time.Millisecond)
	}
	applied := int64(0)
	uerr := c.update(key, func(n *node, tx *mtm.Tx) error {
		applied = 0 // conflict retries rerun the closure
		rec, ok, err := c.record(n, tx, key)
		if err != nil || !ok {
			return err
		}
		if d <= 0 {
			if err := n.tree.Delete(tx, c.s.hash(key)); err != nil {
				return err
			}
			applied = 1
			return nil
		}
		rec.Expire = c.s.now() + d*unit
		enc, err := shard.EncodeRecord(rec)
		if err != nil {
			return err
		}
		if err := c.s.putRecord(n, tx, key, enc); err != nil {
			return err
		}
		if err := c.s.wheelAdd(n, tx, c.s.hash(key), rec.Expire); err != nil {
			return err
		}
		applied = 1
		return nil
	})
	if uerr != nil {
		return errfReply(uerr)
	}
	return intReply(applied)
}

// cmdTTL serves TTL and PTTL: -2 for a missing (or expired) key, -1 for
// a key with no deadline, else the remaining time rounded up.
func cmdTTL(c *call) Reply {
	key := c.str(1)
	unit := int64(time.Second)
	if c.str(0)[0] == 'P' || c.str(0)[0] == 'p' {
		unit = int64(time.Millisecond)
	}
	out := int64(-2)
	err := c.view(key, func(n *node, r mtm.Reader) error {
		rec, ok, err := c.record(n, r, key)
		if err != nil || !ok {
			return err
		}
		if rec.Expire == 0 {
			out = -1
			return nil
		}
		rem := rec.Expire - c.s.now()
		out = (rem + unit - 1) / unit
		if out < 1 {
			out = 1 // not yet expired, round the sliver up
		}
		return nil
	})
	if err != nil {
		return errfReply(err)
	}
	return intReply(out)
}

// cmdPersist clears a key's deadline: 1 when a deadline was removed,
// 0 when the key is missing or had none. The wheel entry is left behind
// as a stale advisory — the sweeper unlinks it without touching the
// record, whose own Expire field now says "never".
func cmdPersist(c *call) Reply {
	key := c.str(1)
	cleared := int64(0)
	err := c.update(key, func(n *node, tx *mtm.Tx) error {
		cleared = 0 // conflict retries rerun the closure
		rec, ok, err := c.record(n, tx, key)
		if err != nil || !ok {
			return err
		}
		if rec.Expire == 0 {
			return nil
		}
		rec.Expire = 0
		enc, err := shard.EncodeRecord(rec)
		if err != nil {
			return err
		}
		if err := c.s.putRecord(n, tx, key, enc); err != nil {
			return err
		}
		cleared = 1
		return nil
	})
	if err != nil {
		return errfReply(err)
	}
	return intReply(cleared)
}
