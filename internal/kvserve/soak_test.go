package kvserve

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/scm"
)

// TestSoakCrashRecover drives waves of concurrent network clients against
// the server, then crashes the device under a reproducible random
// keep/drop policy mid-run and reincarnates the stack — repeatedly. Every
// write a client saw acknowledged must survive every crash: each client
// owns a private key space, so the expected store is the exact union of
// the per-client acknowledged models. Run with -race, this also shakes
// concurrent sessions, async truncation and the shutdown paths.
func TestSoakCrashRecover(t *testing.T) {
	waves, clients, ops := 3, 4, 60
	if testing.Short() {
		waves, ops = 2, 20
	}
	cfg := core.Config{
		Dir:             t.TempDir(),
		DeviceSize:      64 << 20,
		Threads:         clients + 1,
		AsyncTruncation: true,
	}
	pm, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dev := pm.Device()

	serve := func() (*Server, string) {
		t.Helper()
		srv, err := New(pm)
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(l)
		return srv, l.Addr().String()
	}

	expect := map[string]string{} // acknowledged store image
	srv, addr := serve()
	for wave := 0; wave < waves; wave++ {
		models := make([]map[string]string, clients)
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		for ci := 0; ci < clients; ci++ {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				model := map[string]string{}
				models[ci] = model
				c := dial(t, addr)
				defer c.conn.Close()
				rng := rand.New(rand.NewSource(int64(wave*100 + ci)))
				for j := 0; j < ops; j++ {
					key := fmt.Sprintf("w%dc%dk%d", wave, ci, rng.Intn(10))
					if rng.Intn(4) == 0 {
						reply := c.cmd(t, "DEL "+key)
						if reply != "OK" && reply != "MISSING" {
							errs <- fmt.Errorf("DEL %s: %s", key, reply)
							return
						}
						delete(model, key)
					} else {
						val := fmt.Sprintf("v%d.%d.%d", wave, ci, j)
						if reply := c.cmd(t, "SET "+key+" "+val); reply != "OK" {
							errs <- fmt.Errorf("SET %s: %s", key, reply)
							return
						}
						model[key] = val
					}
				}
			}(ci)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		// Key spaces are disjoint per (wave, client), so each client's
		// model is authoritative for its own keys: present means the
		// acked value, absent means acked-deleted.
		for ci, model := range models {
			for n := 0; n < 10; n++ {
				k := fmt.Sprintf("w%dc%dk%d", wave, ci, n)
				if v, ok := model[k]; ok {
					expect[k] = v
				} else {
					delete(expect, k)
				}
			}
		}

		// Power failure: stop cleanly above the device (sessions drained,
		// background truncation halted), then lose a random subset of all
		// unpersisted state and reincarnate everything.
		srv.Close()
		pm.TM().StopTruncation()
		dev.Crash(scm.NewRandomPolicy(int64(1000 + wave)))
		pm, err = core.Attach(dev, cfg)
		if err != nil {
			t.Fatalf("reattach after crash %d: %v", wave, err)
		}
		srv, addr = serve()

		c := dial(t, addr)
		for k, v := range expect {
			if got := c.cmd(t, "GET "+k); got != "VALUE "+v {
				t.Fatalf("after crash %d: GET %s = %q, want %q", wave, k, got, "VALUE "+v)
			}
		}
		if got := c.cmd(t, "COUNT"); got != fmt.Sprintf("COUNT %d", len(expect)) {
			t.Fatalf("after crash %d: %s, want %d acked keys", wave, got, len(expect))
		}
		c.conn.Close()
	}
	srv.Close()
}

// TestSoakConnectionChurn hammers the thread-leasing path: more workers
// than transaction threads, each repeatedly connecting, writing, and
// disconnecting, so slots are leased, queued for, and recycled
// concurrently — with a device crash and reattach between the two churn
// phases. Every acknowledged write from either phase must survive, and
// no connection may ever be refused for lack of a slot. Run with -race
// this doubles as the leasing layer's data-race check.
func TestSoakConnectionChurn(t *testing.T) {
	workers, rounds, ops := 8, 6, 5
	if testing.Short() {
		rounds = 3
	}
	cfg := core.Config{
		Dir:             t.TempDir(),
		DeviceSize:      64 << 20,
		Threads:         4, // deliberately half the worker count
		AsyncTruncation: true,
		LeaseTimeout:    30 * time.Second,
	}
	pm, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dev := pm.Device()

	serve := func() (*Server, string) {
		t.Helper()
		srv, err := New(pm)
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(l)
		return srv, l.Addr().String()
	}

	expect := map[string]string{}
	srv, addr := serve()
	for phase := 0; phase < 2; phase++ {
		models := make([]map[string]string, workers)
		var wg sync.WaitGroup
		errs := make(chan error, workers)
		for wi := 0; wi < workers; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				model := map[string]string{}
				models[wi] = model
				for r := 0; r < rounds; r++ {
					// Fresh connection every round: this is the churn —
					// each iteration leases a slot some other worker just
					// released.
					c := dial(t, addr)
					for j := 0; j < ops; j++ {
						key := fmt.Sprintf("p%dw%dr%dk%d", phase, wi, r, j)
						val := fmt.Sprintf("v%d", j)
						if reply := c.cmd(t, "SET "+key+" "+val); reply != "OK" {
							errs <- fmt.Errorf("worker %d round %d: SET %s: %s", wi, r, key, reply)
							c.conn.Close()
							return
						}
						model[key] = val
					}
					// Delete one key from this round so recycled slots see
					// delete records too.
					del := fmt.Sprintf("p%dw%dr%dk0", phase, wi, r)
					if reply := c.cmd(t, "DEL "+del); reply != "OK" {
						errs <- fmt.Errorf("worker %d round %d: DEL %s: %s", wi, r, del, reply)
						c.conn.Close()
						return
					}
					delete(model, del)
					if reply := c.cmd(t, "QUIT"); reply != "BYE" {
						errs <- fmt.Errorf("worker %d round %d: QUIT: %s", wi, r, reply)
						c.conn.Close()
						return
					}
					c.conn.Close()
				}
			}(wi)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		for _, model := range models {
			for k, v := range model {
				expect[k] = v
			}
		}

		if phase == 0 {
			// Power failure between the churn phases, then reincarnate:
			// recovery now runs over logs that many logical threads wrote
			// into the same physical slots.
			srv.Close()
			pm.TM().StopTruncation()
			dev.Crash(scm.NewRandomPolicy(4242))
			pm, err = core.Attach(dev, cfg)
			if err != nil {
				t.Fatalf("reattach after crash: %v", err)
			}
			srv, addr = serve()
		}
	}

	c := dial(t, addr)
	for k, v := range expect {
		if got := c.cmd(t, "GET "+k); got != "VALUE "+v {
			t.Fatalf("GET %s = %q, want %q", k, got, "VALUE "+v)
		}
	}
	if got := c.cmd(t, "COUNT"); got != fmt.Sprintf("COUNT %d", len(expect)) {
		t.Fatalf("%s, want %d acked keys", got, len(expect))
	}
	c.conn.Close()
	srv.Close()
	if got := pm.TM().LiveThreads(); got != 0 {
		t.Fatalf("live threads after all sessions closed = %d, want 0", got)
	}
}
