package kvserve

import (
	"bytes"

	"repro/internal/mtm"
	"repro/internal/shard"
)

// Hash commands (HSET/HGET/HDEL/HLEN/HGETALL) store a field→value map
// in a single RecHash tree record: small hashes in one slot, updated by
// read-modify-write inside the key's durable transaction. An expired
// hash behaves exactly like an absent key — writes start a fresh hash
// with no TTL, reads answer empty — and a live hash keeps its expiry
// deadline across field updates (redis semantics: only SET clears a
// TTL, other write commands preserve it).

// loadHash reads key's hash fields inside a transaction or view.
// ok=false means logically absent (missing, collision, or expired);
// a live record of the wrong type fails with ErrWrongType.
func (c *call) loadHash(n *node, r mtm.Reader, key string) (rec shard.Record, fields []shard.HashField, ok bool, err error) {
	rec, ok, err = c.record(n, r, key)
	if err != nil || !ok {
		return shard.Record{}, nil, false, err
	}
	if rec.Type != shard.RecHash {
		return shard.Record{}, nil, false, shard.ErrWrongType
	}
	fields, err = shard.DecodeHashFields(rec.Value)
	if err != nil {
		return shard.Record{}, nil, false, err
	}
	return rec, fields, true, nil
}

func cmdHSet(c *call) Reply {
	if (len(c.args)-2)%2 != 0 {
		return errReply("usage: " + registry["HSET"].usage)
	}
	key := c.str(1)
	if err := checkKeySize(key); err != nil {
		return errfReply(err)
	}
	added := int64(0)
	err := c.update(key, func(n *node, tx *mtm.Tx) error {
		added = 0 // conflict retries rerun the closure
		rec, fields, ok, err := c.loadHash(n, tx, key)
		if err != nil {
			return err
		}
		if !ok {
			rec = shard.Record{Key: key, Type: shard.RecHash}
			fields = nil
		}
		for i := 2; i < len(c.args); i += 2 {
			name, value := c.args[i], c.args[i+1]
			found := false
			for j := range fields {
				if bytes.Equal(fields[j].Name, name) {
					fields[j].Value = value
					found = true
					break
				}
			}
			if !found {
				fields = append(fields, shard.HashField{Name: name, Value: value})
				added++
			}
		}
		payload := shard.EncodeHashFields(fields)
		if err := checkValueSize(len(payload)); err != nil {
			return err
		}
		rec.Value = payload
		enc, err := shard.EncodeRecord(rec)
		if err != nil {
			return err
		}
		return c.s.putRecord(n, tx, key, enc)
	})
	if err != nil {
		return errfReply(err)
	}
	return intReply(added)
}

func cmdHGet(c *call) Reply {
	key := c.str(1)
	var out Reply
	err := c.view(key, func(n *node, r mtm.Reader) error {
		_, fields, ok, err := c.loadHash(n, r, key)
		if err != nil {
			return err
		}
		out = nilReply()
		if !ok {
			return nil
		}
		for _, f := range fields {
			if bytes.Equal(f.Name, c.args[2]) {
				out = bulkReply(append([]byte(nil), f.Value...))
				return nil
			}
		}
		return nil
	})
	if err != nil {
		return errfReply(err)
	}
	return out
}

// cmdHDel removes named fields, deleting the record outright when the
// last field goes — an empty hash does not exist, so HLEN after a full
// HDEL answers 0 and the tree slot is reclaimed.
func cmdHDel(c *call) Reply {
	key := c.str(1)
	removed := int64(0)
	err := c.update(key, func(n *node, tx *mtm.Tx) error {
		removed = 0 // conflict retries rerun the closure
		rec, fields, ok, err := c.loadHash(n, tx, key)
		if err != nil || !ok {
			return err
		}
		kept := fields[:0]
		for _, f := range fields {
			del := false
			for _, name := range c.args[2:] {
				if bytes.Equal(f.Name, name) {
					del = true
					break
				}
			}
			if del {
				removed++
			} else {
				kept = append(kept, f)
			}
		}
		if removed == 0 {
			return nil
		}
		if len(kept) == 0 {
			return n.tree.Delete(tx, c.s.hash(key))
		}
		rec.Value = shard.EncodeHashFields(kept)
		enc, err := shard.EncodeRecord(rec)
		if err != nil {
			return err
		}
		return c.s.putRecord(n, tx, key, enc)
	})
	if err != nil {
		return errfReply(err)
	}
	return intReply(removed)
}

func cmdHLen(c *call) Reply {
	key := c.str(1)
	count := int64(0)
	err := c.view(key, func(n *node, r mtm.Reader) error {
		_, fields, ok, err := c.loadHash(n, r, key)
		if err != nil {
			return err
		}
		if ok {
			count = int64(len(fields))
		}
		return nil
	})
	if err != nil {
		return errfReply(err)
	}
	return intReply(count)
}

func cmdHGetAll(c *call) Reply {
	key := c.str(1)
	var elems []Reply
	err := c.view(key, func(n *node, r mtm.Reader) error {
		_, fields, ok, err := c.loadHash(n, r, key)
		if err != nil || !ok {
			return err
		}
		elems = make([]Reply, 0, 2*len(fields))
		for _, f := range fields {
			elems = append(elems,
				bulkReply(append([]byte(nil), f.Name...)),
				bulkReply(append([]byte(nil), f.Value...)))
		}
		return nil
	})
	if err != nil {
		return errfReply(err)
	}
	return arrayReply(elems)
}
