package kvserve

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
)

// BenchmarkTTLSweep measures the timer wheel's reclamation rate: each
// iteration stamps a batch of keys with near deadlines on the scripted
// clock, advances past them, and times only the sweep that physically
// reclaims records and wheel entries. keys/s is the reclaim throughput.
func BenchmarkTTLSweep(b *testing.B) {
	const keys = 512
	pm, err := core.Open(core.Config{Dir: b.TempDir(), DeviceSize: 256 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer pm.Close()
	s, err := New(pm)
	if err != nil {
		b.Fatal(err)
	}
	now := ttlBase
	s.now = func() int64 { return now }
	th, err := pm.NewThread()
	if err != nil {
		b.Fatal(err)
	}
	sess := &session{s: s, th: th}

	var reclaimed int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for k := 0; k < keys; k++ {
			key := fmt.Sprintf("sweep%d", k)
			if rep := run(s, sess, th, "SET", key, "v", "EX", "1"); rep != "OK" {
				b.Fatalf("SET %s: %s", key, rep)
			}
		}
		now += int64(10 * time.Second)
		b.StartTimer()
		// Each sweep transaction is bounded by sweepBudget; sweep until
		// the wheel runs dry, as the background sweeper's ticker would.
		total := 0
		for {
			n, err := s.sweepAll(now)
			if err != nil {
				b.Fatal(err)
			}
			if n == 0 {
				break
			}
			total += n
		}
		if total != keys {
			b.Fatalf("sweeps reclaimed %d of %d due keys", total, keys)
		}
		reclaimed += int64(total)
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(reclaimed)/secs, "keys/s")
	}
}
