package kvserve

import (
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/scm"
	"repro/internal/shard"
)

// groupSum is the wrapping (mod 2^64) sum every cross-shard MSET group
// must always total: each MSET picks random values for all but the last
// group key and sets the last to whatever makes the sum come out.
const groupSum = uint64(0xD1CEB00C0FFEE)

// groupKeys picks one key per shard for client c (probing the routing
// hash), so the client's MSET group always spans every shard.
func groupKeys(c, nShards int) []string {
	keys := make([]string, nShards)
	for sh := 0; sh < nShards; sh++ {
		for i := 0; ; i++ {
			k := fmt.Sprintf("m%dg%d", c, 100*sh+i)
			if int(shard.HashKey(k)%uint64(nShards)) == sh {
				keys[sh] = k
				break
			}
		}
	}
	return keys
}

// TestSoakShardedMixedCrash drives concurrent pipelined clients against
// the sharded server — single-key SET/GET plus cross-shard MSET/MGET —
// across a mid-test crash of every shard device (each under its own
// reproducible random keep/drop policy) and reattach. Each client owns a
// private keyspace, with its MSET group keys disjoint from its single
// keys (a torn cross-shard MSET linearizes at recovery, so its keys must
// not double as single-key targets). Invariants, in-run and after
// recovery: every single key carries exactly its acked version
// (per-key versions only move forward), and every MSET group's values
// wrap-sum to the same constant — the cross-shard atomicity witness.
// Run with -race this also shakes the per-shard thread pools, the
// cross-shard intent protocol, and concurrent per-shard views.
func TestSoakShardedMixedCrash(t *testing.T) {
	const nShards = 3
	clients, batches, perBatch := 4, 6, 8
	if testing.Short() {
		batches, perBatch = 3, 5
	}
	cfg := shard.Config{
		Config: core.Config{
			Dir:             t.TempDir(),
			DeviceSize:      32 << 20,
			Threads:         clients + 2,
			AsyncTruncation: true,
		},
		Shards: nShards,
	}
	st, err := shard.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	devs := st.Devices()

	serve := func() (*Server, string) {
		t.Helper()
		srv, err := NewSharded(st)
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(l)
		return srv, l.Addr().String()
	}

	// Acked state, owned by each client goroutine during a wave and read
	// by the main goroutine only after wg.Wait.
	const singles = 6
	vers := make([]map[string]int, clients) // single key -> acked version
	groups := make([][]string, clients)     // group key names
	groupVals := make([][]uint64, clients)  // last acked group values (nil: none)
	for c := 0; c < clients; c++ {
		vers[c] = map[string]int{}
		groups[c] = groupKeys(c, nShards)
	}

	srv, addr := serve()
	for wave := 0; wave < 2; wave++ {
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				conn := dial(t, addr)
				defer conn.conn.Close()
				rng := rand.New(rand.NewSource(int64(1000*wave + c)))
				g := groups[c]
				for b := 0; b < batches; b++ {
					// Build one pipelined batch: interleaved single-key
					// SET/GET and cross-shard MSET/MGET, with the expected
					// reply for every line.
					var lines, want []string
					for j := 0; j < perBatch; j++ {
						if rng.Intn(3) == 0 {
							// Cross-shard MSET then MGET of the group.
							vals := make([]uint64, len(g))
							var sum uint64
							mset := "MSET"
							for i := range g {
								if i < len(g)-1 {
									vals[i] = rng.Uint64()
								} else {
									vals[i] = groupSum - sum
								}
								sum += vals[i]
								mset += " " + g[i] + " " + strconv.FormatUint(vals[i], 10)
							}
							lines = append(lines, mset)
							want = append(want, "OK")
							lines = append(lines, "MGET "+g[0]+" "+g[1]+" "+g[2])
							for _, v := range vals {
								want = append(want, "VALUE "+strconv.FormatUint(v, 10))
							}
							groupVals[c] = vals
						} else {
							key := fmt.Sprintf("s%dk%d", c, rng.Intn(singles))
							ver := vers[c][key] + 1
							vers[c][key] = ver
							val := fmt.Sprintf("v%d", ver)
							lines = append(lines, "SET "+key+" "+val, "GET "+key)
							want = append(want, "OK", "VALUE "+val)
						}
					}
					replies := sendBatch(t, conn, lines, len(want))
					for i := range want {
						if replies[i] != want[i] {
							errs <- fmt.Errorf("client %d wave %d batch %d: reply %d: got %q, want %q",
								c, wave, b, i, replies[i], want[i])
							return
						}
					}
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}

		if wave == 0 {
			// Mid-test power failure: drain sessions, then every shard
			// device loses its own random subset of unpersisted state, and
			// the whole store reincarnates (concurrent per-shard recovery).
			srv.Close()
			st.StopTruncation()
			for k, d := range devs {
				d.Crash(scm.NewRandomPolicy(int64(7700 + k)))
			}
			if st, err = shard.Attach(devs, cfg); err != nil {
				t.Fatalf("reattach after crash: %v", err)
			}
			srv, addr = serve()
		}

		// Between waves and at the end: every acked single-key version and
		// every group's acked values (wrap-summing to the constant) must be
		// intact — on a fresh connection, against the recovered image.
		conn := dial(t, addr)
		for c := 0; c < clients; c++ {
			for key, ver := range vers[c] {
				wantV := fmt.Sprintf("VALUE v%d", ver)
				if got := conn.cmd(t, "GET "+key); got != wantV {
					t.Fatalf("wave %d: GET %s = %q, want %q (version regressed or write lost)",
						wave, key, got, wantV)
				}
			}
			if vals := groupVals[c]; vals != nil {
				g := groups[c]
				replies := sendBatch(t, conn, []string{"MGET " + g[0] + " " + g[1] + " " + g[2]}, len(g))
				var sum uint64
				for i, rep := range replies {
					wantV := "VALUE " + strconv.FormatUint(vals[i], 10)
					if rep != wantV {
						t.Fatalf("wave %d: group key %s = %q, want %q", wave, g[i], rep, wantV)
					}
					sum += vals[i]
				}
				if sum != groupSum {
					t.Fatalf("wave %d: client %d group wrap-sum = %#x, want %#x", wave, c, sum, groupSum)
				}
			}
		}
		conn.conn.Close()
	}
	srv.Close()
	st.Close()
}
