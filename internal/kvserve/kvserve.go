// Package kvserve is a network key-value server over Mnemosyne's durable
// transactions — the kind of small service the paper's introduction
// motivates (low-latency storage of moderate amounts of data, logs,
// configuration) built directly on persistent memory with no database
// underneath.
//
// The wire protocol is line-oriented:
//
//	SET <key> <value>         -> OK
//	GET <key>                 -> VALUE <value> | MISSING
//	MGET <key> [<key> ...]    -> VALUE <v> | MISSING per key (one snapshot)
//	DEL <key>                 -> OK | MISSING
//	MSET <k> <v> [<k> <v>...] -> OK (one transaction; values without spaces)
//	MDEL <key> [<key> ...]    -> DELETED <n> (one transaction)
//	COUNT                     -> COUNT <n>
//	STATS                     -> STATS key=value ... (telemetry snapshot)
//	PING                      -> PONG
//	QUIT                      -> BYE (closes the connection)
//
// Every acknowledged SET/DEL is durable before the reply is written:
// the B+ tree update commits in a durable memory transaction. Reads
// (GET/MGET/COUNT) are served on slot-free snapshot read transactions:
// no thread lease, no log record, no fence, so a read-only connection
// consumes no transaction slot and unbounded readers run in parallel
// with writers.
//
// Clients that pipeline (send several request lines without waiting for
// replies) are served transparently in batches: buffered lines are
// dispatched concurrently across a small set of partitions — keyed by
// hash, so commands on the same key keep their order — and the replies
// are written back in request order. Write-carrying batches spread over
// transaction threads; read-only batches need none. With group commit
// enabled the whole batch shares durability fences.
package kvserve

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mtm"
	"repro/internal/pds"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

var (
	telReqLat = telemetry.NewHistogram("kvserve_request_latency_ns", "Latency of kvserve protocol commands, in nanoseconds.")
	telReqs   = telemetry.NewCounter("kvserve_requests_total", "Protocol commands dispatched by kvserve.")
	telErrs   = telemetry.NewCounter("kvserve_errors_total", "Protocol commands answered with ERROR.")
)

// Server serves the protocol over a listener.
type Server struct {
	pm   *core.PM
	tree *pds.BPTree
	hash func(string) uint64 // hashKey, overridable by collision tests
	pool *core.ThreadPool

	// store, when non-nil, replaces pm/tree/pool: commands route across
	// the sharded store's independent PM instances (NewSharded). Sharded
	// sessions lease no threads of their own — every write leases inside
	// its destination shard — so pipelined batches partition by key hash
	// with no thread materialization.
	store *shard.Store

	// ctx is the server's lifecycle context: every thread lease a session
	// takes is bounded by it, so Close unblocks sessions queued on a full
	// slot pool instead of hanging shutdown behind them.
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	closed   bool
	wg       sync.WaitGroup
}

// New builds a server over an open persistent-memory instance; state
// lives under the "kvserve.root" static, so a restarted server finds its
// data again.
func New(pm *core.PM) (*Server, error) {
	root, _, err := pm.Static("kvserve.root", 8)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		pm:     pm,
		tree:   pds.NewBPTree(root),
		hash:   hashKey,
		pool:   pm.ThreadPool(),
		ctx:    ctx,
		cancel: cancel,
		conns:  make(map[net.Conn]bool),
	}, nil
}

// NewSharded builds a server over a sharded store: the same wire
// protocol, with single-key commands routed to their key's shard and
// MGET/MSET/MDEL scatter-gathered — cross-shard MSET atomically (see
// internal/shard). Each shard keeps its state under its own
// "kvserve.root" static, so a one-shard store serves a classic kvserve
// image unchanged.
func NewSharded(store *shard.Store) (*Server, error) {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		store:  store,
		hash:   hashKey,
		ctx:    ctx,
		cancel: cancel,
		conns:  make(map[net.Conn]bool),
	}, nil
}

// hashKey maps a string key into the tree's key space (FNV-1a). The full
// key is stored with the value to detect collisions. It is the same
// function the shard front end routes with (shard.HashKey), so batch
// partitions and shard routing agree.
func hashKey(s string) uint64 {
	return shard.HashKey(s)
}

// Record and protocol size limits. The key length must fit the record
// header's two bytes; handle rejects oversized keys and values before
// encodeKV runs, so encoding can never corrupt a header.
const (
	// MaxKeyLen bounds SET/GET/DEL keys (bytes).
	MaxKeyLen = 4 << 10
	// MaxValueLen bounds SET values (bytes).
	MaxValueLen = 56 << 10
)

// Protocol size-limit sentinels, matchable with errors.Is; the root
// mnemosyne package re-exports them.
var (
	ErrKeyTooLong   = errors.New("kvserve: key too long")
	ErrValueTooLong = errors.New("kvserve: value too long")
)

func encodeKV(key, value string) ([]byte, error) {
	if len(key) > MaxKeyLen {
		return nil, fmt.Errorf("%w: %d bytes exceeds %d", ErrKeyTooLong, len(key), MaxKeyLen)
	}
	if len(value) > MaxValueLen {
		return nil, fmt.Errorf("%w: %d bytes exceeds %d", ErrValueTooLong, len(value), MaxValueLen)
	}
	out := make([]byte, 2+len(key)+len(value))
	out[0] = byte(len(key))
	out[1] = byte(len(key) >> 8)
	copy(out[2:], key)
	copy(out[2+len(key):], value)
	return out, nil
}

func decodeKV(b []byte) (key, value string, err error) {
	if len(b) < 2 {
		return "", "", errors.New("kvserve: short record")
	}
	n := int(b[0]) | int(b[1])<<8
	if len(b) < 2+n {
		return "", "", errors.New("kvserve: truncated record")
	}
	return string(b[2 : 2+n]), string(b[2+n:]), nil
}

// Serve accepts connections until Close. Sessions lease transaction
// threads lazily — on the first write command, not at connect — so
// read-only connections take no thread at all and the Threads bound caps
// concurrently-writing connections only. A burst of writers beyond the
// bound queues for slots (up to the lease timeout or server shutdown)
// instead of erroring.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.session(conn)
		}()
	}
}

// Close stops accepting, disconnects active sessions, and waits for them
// to finish their in-flight command (every acknowledged update is durable
// before its reply, so a shutdown never loses acknowledged data).
// Cancelling the lifecycle context unblocks any session still queued on
// a full thread pool, so shutdown cannot hang behind leasing sessions.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	l := s.listener
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.cancel()
	var err error
	if l != nil {
		err = l.Close()
	}
	s.wg.Wait()
	return err
}

// Batch-dispatch tuning: how many pipelined lines one round serves, and
// how many transaction threads (session thread included) a session may
// spread a batch across.
const (
	maxBatch        = 128
	batchPartitions = 4
)

// errLineTooLong marks a request line over the 64 KB cap — a client
// protocol error, not a silent disconnect.
var errLineTooLong = errors.New("kvserve: line too long")

// session is one connection's execution state. All threads are lazy: the
// protocol thread is leased on the session's first write command (a
// read-only session — GET/MGET/COUNT/STATS — never leases at all, since
// snapshot Views need no thread), and batch workers are created on the
// first large batch containing writes. Leased threads are kept for the
// life of the connection and released on disconnect.
type session struct {
	s       *Server
	th      *mtm.Thread // write thread, nil until the first write command
	workers []*mtm.Thread
	threads []*mtm.Thread // cached [th, workers...]
}

// writer returns the session's transaction thread, leasing it on first
// use. The lease is bounded by the server's lifecycle context, so server
// shutdown unblocks a writer queued on a full pool. Only the session
// goroutine calls writer; batch partition goroutines receive their
// threads explicitly.
func (sess *session) writer() (*mtm.Thread, error) {
	if sess.th == nil {
		th, err := sess.s.pool.Lease(sess.s.ctx)
		if err != nil {
			return nil, err
		}
		sess.th = th
	}
	return sess.th, nil
}

func (s *Server) session(conn net.Conn) {
	sess := &session{s: s}
	defer sess.closeThreads()
	r := bufio.NewReaderSize(conn, 64<<10)
	w := bufio.NewWriter(conn)
	defer w.Flush()
	batch := make([]string, 0, maxBatch)
	for {
		// One blocking read, then drain whatever a pipelining client
		// already has buffered: a request-per-reply client always sees a
		// batch of one.
		line, err := readLine(r)
		if err == errLineTooLong {
			s.lineTooLong(conn, w)
			return
		}
		if err != nil {
			return
		}
		batch = append(batch[:0], line)
		for len(batch) < maxBatch && bufferedLine(r) {
			more, err := readLine(r)
			if err != nil {
				break
			}
			batch = append(batch, more)
		}
		replies, quit := s.dispatchBatch(sess, batch)
		for _, reply := range replies {
			fmt.Fprintln(w, reply)
		}
		w.Flush()
		if quit {
			return
		}
	}
}

// readLine reads one protocol line: up to the reader's buffer size,
// newline-terminated, with a final unterminated line at EOF still
// delivered (Scanner semantics, kept across the pipelining rewrite).
func readLine(r *bufio.Reader) (string, error) {
	s, err := r.ReadSlice('\n')
	switch {
	case err == bufio.ErrBufferFull:
		return "", errLineTooLong
	case err != nil && len(s) == 0:
		return "", err
	}
	line := strings.TrimSuffix(string(s), "\n")
	return strings.TrimSuffix(line, "\r"), nil
}

// bufferedLine reports whether a complete line is already buffered, so
// reading it cannot block.
func bufferedLine(r *bufio.Reader) bool {
	if r.Buffered() == 0 {
		return false
	}
	b, _ := r.Peek(r.Buffered())
	return bytes.IndexByte(b, '\n') >= 0
}

// lineTooLong answers an oversized request line and ends the session;
// the reader cannot resynchronize mid-line.
func (s *Server) lineTooLong(conn net.Conn, w *bufio.Writer) {
	telErrs.Inc()
	fmt.Fprintln(w, "ERROR line too long")
	w.Flush()
	// Drain the rest of the oversized line: closing with unread bytes
	// queued sends an RST that can destroy the error reply before the
	// client reads it.
	conn.SetReadDeadline(time.Now().Add(time.Second))
	io.Copy(io.Discard, conn)
}

// dispatchBatch serves one batch of pipelined lines, returning replies
// in request order. Keyed single-key commands spread across partition
// goroutines by key hash — same key, same partition, so per-key order is
// preserved. Keyed reads (GET) run on snapshot Views and need no thread;
// a batch containing keyed writes (SET/DEL) materializes per-partition
// transaction threads first. Everything else (COUNT, STATS, MSET, QUIT,
// parse errors) is a barrier: queued keyed work completes first, then
// the command runs alone on the session goroutine.
func (s *Server) dispatchBatch(sess *session, lines []string) ([]string, bool) {
	replies := make([]string, len(lines))
	if len(lines) == 1 {
		replies[0] = s.dispatch(sess, nil, lines[0])
		return replies, replies[0] == "BYE"
	}

	// A batch with keyed writes partitions across real transaction
	// threads; a read-only batch partitions across thread-less Views.
	// Sharded stores lease inside each destination shard instead, so
	// their batches never materialize session threads.
	hasWrite := false
	for _, line := range lines {
		if _, kind := batchKey(line); kind == lineWrite {
			hasWrite = true
			break
		}
	}
	var threads []*mtm.Thread
	nparts := 1
	if len(lines) >= 8 {
		nparts = batchPartitions
	}
	if hasWrite && s.store == nil {
		threads = sess.batchThreads(len(lines))
		nparts = len(threads)
		if nparts == 0 {
			nparts = 1 // pool exhausted: serial on the session goroutine
		}
	}
	thOf := func(p int) *mtm.Thread {
		if p < len(threads) {
			return threads[p]
		}
		return nil
	}

	pending := make([][]int, nparts)
	flush := func() {
		total := 0
		for _, idxs := range pending {
			total += len(idxs)
		}
		if total == 0 {
			return
		}
		if total <= 2 || nparts == 1 {
			// Not worth goroutine coordination.
			for _, idxs := range pending {
				for _, i := range idxs {
					replies[i] = s.dispatch(sess, thOf(0), lines[i])
				}
			}
		} else {
			var wg sync.WaitGroup
			for p := 1; p < nparts; p++ {
				if len(pending[p]) == 0 {
					continue
				}
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for _, i := range pending[p] {
						replies[i] = s.dispatch(sess, thOf(p), lines[i])
					}
				}(p)
			}
			for _, i := range pending[0] {
				replies[i] = s.dispatch(sess, thOf(0), lines[i])
			}
			wg.Wait()
		}
		for p := range pending {
			pending[p] = pending[p][:0]
		}
	}
	for i, line := range lines {
		if key, kind := batchKey(line); kind != lineBarrier && nparts > 1 {
			p := int(s.hash(key) % uint64(nparts))
			pending[p] = append(pending[p], i)
			continue
		}
		flush()
		replies[i] = s.dispatch(sess, nil, line)
		if replies[i] == "BYE" {
			// Lines pipelined after QUIT are dropped unanswered.
			return replies[:i+1], true
		}
	}
	flush()
	return replies, false
}

// Line classes for batch partitioning.
const (
	lineBarrier = iota // runs alone on the session goroutine
	lineRead           // keyed single-key read: partitioned, no thread
	lineWrite          // keyed single-key write: partitioned, needs a thread
)

// batchKey classifies a line for batch partitioning: single-key commands
// can run concurrently keyed by hash, anything else is a barrier.
func batchKey(line string) (key string, kind int) {
	fields := strings.SplitN(strings.TrimSpace(line), " ", 3)
	switch strings.ToUpper(fields[0]) {
	case "SET":
		if len(fields) == 3 {
			return fields[1], lineWrite
		}
	case "DEL":
		if len(fields) == 2 {
			return fields[1], lineWrite
		}
	case "GET":
		if len(fields) == 2 {
			return fields[1], lineRead
		}
	}
	return "", lineBarrier
}

// batchThreads returns the thread set for a write-carrying batch: the
// session's write thread plus up to batchPartitions-1 workers, created
// on first large batch and reused for the connection's life. Small
// batches are not worth the coordination; an exhausted thread pool
// degrades the session to whatever threads it already holds (possibly
// none) rather than failing.
func (sess *session) batchThreads(batchLen int) []*mtm.Thread {
	if _, err := sess.writer(); err != nil {
		return nil
	}
	if batchLen < 8 {
		sess.threads = append(sess.threads[:0], sess.th)
		return sess.threads[:1]
	}
	for len(sess.workers) < batchPartitions-1 {
		th, err := sess.s.pm.TM().NewThread()
		if err != nil {
			break
		}
		sess.workers = append(sess.workers, th)
	}
	sess.threads = append(sess.threads[:0], sess.th)
	sess.threads = append(sess.threads, sess.workers...)
	return sess.threads
}

// closeThreads releases the session's write thread and batch workers on
// disconnect. A failed Close quarantines that slot; nothing to do about
// it here.
func (sess *session) closeThreads() {
	if sess.th != nil {
		sess.th.Close()
		sess.th = nil
	}
	for _, th := range sess.workers {
		th.Close()
	}
	sess.workers = nil
}

// dispatch times and traces one protocol command around handle. th is
// the transaction thread a batch partition assigned, or nil — handle
// serves reads through thread-less Views and leases the session's write
// thread on demand for writes.
func (s *Server) dispatch(sess *session, th *mtm.Thread, line string) string {
	var tid uint64
	if th != nil {
		tid = th.ID()
	}
	// The request span is a root (parent 0): when it outlasts the flight
	// recorder's threshold, the whole tree under it — parse, exec, txn and
	// its commit phases — is captured as one slow entry.
	req := telemetry.SpanBegin(telemetry.PhaseRequest, tid, 0)
	start := time.Now()
	reply := s.handle(sess, th, line, req.ID)
	lat := time.Since(start).Nanoseconds()
	req.End()
	telReqs.Inc()
	telReqLat.Observe(lat)
	if strings.HasPrefix(reply, "ERROR") {
		telErrs.Inc()
	}
	if telemetry.TraceEnabled() {
		telemetry.Emit(telemetry.EvRequest, tid, uint64(lat), uint64(len(line)))
	}
	return reply
}

// atomicSpanned runs a durable transaction with its span parented under
// the request's exec span, so commit-phase attribution hangs off the
// request tree. The parent is cleared afterwards: the thread outlives the
// request, and a later unattributed transaction must not inherit it.
func atomicSpanned(th *mtm.Thread, parent uint64, fn func(tx *mtm.Tx) error) error {
	th.SetSpanParent(parent)
	err := th.Atomic(fn)
	th.SetSpanParent(0)
	return err
}

// writeThread resolves the transaction thread for a write command: the
// batch-assigned thread when the partition has one, else the session's
// lazily-leased write thread. Only the session goroutine reaches the
// nil-thread path (single lines and barriers), so writer stays race-free.
func (sess *session) writeThread(th *mtm.Thread) (*mtm.Thread, error) {
	if th != nil {
		return th, nil
	}
	return sess.writer()
}

// errHashCollision reports a SET whose key hashes onto a slot already
// holding a different key's record; the put is refused instead of
// silently destroying the colliding key's data.
var errHashCollision = errors.New("hash collision with a different stored key")

// checkedPut stores rec at key's tree slot after comparing the stored
// full key: overwriting the same key is the normal update, overwriting
// a colliding key would destroy its record.
func (s *Server) checkedPut(tx *mtm.Tx, key string, rec []byte) error {
	h := s.hash(key)
	raw, err := s.tree.Get(tx, h)
	if err == nil {
		k, _, derr := decodeKV(raw)
		if derr != nil {
			return derr
		}
		if k != key {
			return fmt.Errorf("%w: %q vs stored %q", errHashCollision, key, k)
		}
	} else if err != pds.ErrNotFound {
		return err
	}
	return s.tree.Put(tx, h, rec)
}

// lookup reads one key through any Reader — a snapshot ReadTx or a
// writing Tx — resolving hash collisions against the stored full key.
func (s *Server) lookup(r mtm.Reader, key string) (string, error) {
	raw, err := s.tree.Get(r, s.hash(key))
	if err != nil {
		return "", err
	}
	k, v, err := decodeKV(raw)
	if err != nil {
		return "", err
	}
	if k != key {
		return "", pds.ErrNotFound // hash collision with another key
	}
	return v, nil
}

func (s *Server) handle(sess *session, th *mtm.Thread, line string, req uint64) string {
	if s.store != nil {
		return s.handleSharded(line, req)
	}
	parse := telemetry.SpanBegin(telemetry.PhaseParse, 0, req)
	fields := strings.SplitN(strings.TrimSpace(line), " ", 3)
	cmd := strings.ToUpper(fields[0])
	parse.End()
	exec := telemetry.SpanBegin(telemetry.PhaseExec, 0, req)
	defer exec.End()
	switch cmd {
	case "PING":
		return "PONG"
	case "QUIT":
		return "BYE"
	case "SET":
		if len(fields) != 3 {
			return "ERROR usage: SET <key> <value>"
		}
		key, value := fields[1], fields[2]
		if len(key) > MaxKeyLen {
			return fmt.Sprintf("ERROR key too long (max %d bytes)", MaxKeyLen)
		}
		if len(value) > MaxValueLen {
			return fmt.Sprintf("ERROR value too long (max %d bytes)", MaxValueLen)
		}
		rec, err := encodeKV(key, value)
		if err != nil {
			return "ERROR " + err.Error()
		}
		th, err := sess.writeThread(th)
		if err != nil {
			return "ERROR " + err.Error()
		}
		err = atomicSpanned(th, exec.ID, func(tx *mtm.Tx) error {
			return s.checkedPut(tx, key, rec)
		})
		if err != nil {
			return "ERROR " + err.Error()
		}
		return "OK"
	case "GET":
		if len(fields) != 2 {
			return "ERROR usage: GET <key>"
		}
		var value string
		err := s.pm.ViewSpanned(exec.ID, func(r *mtm.ReadTx) error {
			v, err := s.lookup(r, fields[1])
			if err != nil {
				return err
			}
			value = v
			return nil
		})
		if err == pds.ErrNotFound {
			return "MISSING"
		}
		if err != nil {
			return "ERROR " + err.Error()
		}
		return "VALUE " + value
	case "MGET":
		return s.handleMGet(line, exec.ID)
	case "DEL":
		if len(fields) != 2 {
			return "ERROR usage: DEL <key>"
		}
		th, err := sess.writeThread(th)
		if err != nil {
			return "ERROR " + err.Error()
		}
		err = atomicSpanned(th, exec.ID, func(tx *mtm.Tx) error {
			// Load and compare the stored key before deleting: the
			// tree is keyed by hash, and deleting on a collision
			// would destroy a different key's record.
			raw, err := s.tree.Get(tx, s.hash(fields[1]))
			if err != nil {
				return err
			}
			k, _, err := decodeKV(raw)
			if err != nil {
				return err
			}
			if k != fields[1] {
				return pds.ErrNotFound // hash collision with another key
			}
			return s.tree.Delete(tx, s.hash(fields[1]))
		})
		if err == pds.ErrNotFound {
			return "MISSING"
		}
		if err != nil {
			return "ERROR " + err.Error()
		}
		return "OK"
	case "MSET":
		return s.handleMSet(sess, th, line, exec.ID)
	case "MDEL":
		return s.handleMDel(sess, th, line, exec.ID)
	case "COUNT":
		n := 0
		err := s.pm.ViewSpanned(exec.ID, func(r *mtm.ReadTx) error {
			n = s.tree.Len(r)
			return nil
		})
		if err != nil {
			return "ERROR " + err.Error()
		}
		return fmt.Sprintf("COUNT %d", n)
	case "STATS":
		return s.stats()
	default:
		return "ERROR unknown command"
	}
}

// handleMGet answers every key from one snapshot: all the VALUE/MISSING
// lines reflect the same committed state, with no thread lease and no
// fence. One reply line per key, in request order.
func (s *Server) handleMGet(line string, parent uint64) string {
	keys := strings.Fields(line)[1:]
	if len(keys) == 0 {
		return "ERROR usage: MGET <key> [<key> ...]"
	}
	outs := make([]string, len(keys))
	err := s.pm.ViewSpanned(parent, func(r *mtm.ReadTx) error {
		for i, key := range keys {
			v, err := s.lookup(r, key)
			if err == pds.ErrNotFound {
				outs[i] = "MISSING"
				continue
			}
			if err != nil {
				return err
			}
			outs[i] = "VALUE " + v
		}
		return nil
	})
	if err != nil {
		return "ERROR " + err.Error()
	}
	return strings.Join(outs, "\n")
}

// handleMSet stores every pair in one durable transaction: one log
// append and one fence (or one group-commit epoch membership) for the
// whole set, and either all pairs commit or none do. Keys and values are
// whitespace-delimited, so MSET values cannot contain spaces.
func (s *Server) handleMSet(sess *session, th *mtm.Thread, line string, parent uint64) string {
	args := strings.Fields(line)[1:]
	if len(args) == 0 || len(args)%2 != 0 {
		return "ERROR usage: MSET <key> <value> [<key> <value> ...]"
	}
	recs := make([][]byte, 0, len(args)/2)
	for i := 0; i < len(args); i += 2 {
		rec, err := encodeKV(args[i], args[i+1])
		if err != nil {
			return "ERROR " + err.Error()
		}
		recs = append(recs, rec)
	}
	th, err := sess.writeThread(th)
	if err != nil {
		return "ERROR " + err.Error()
	}
	err = atomicSpanned(th, parent, func(tx *mtm.Tx) error {
		for i, rec := range recs {
			if err := s.checkedPut(tx, args[2*i], rec); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return "ERROR " + err.Error()
	}
	return "OK"
}

// handleMDel deletes every named key in one durable transaction,
// reporting how many were present. Missing keys (and hash collisions
// holding a different key's record) are skipped, not errors.
func (s *Server) handleMDel(sess *session, th *mtm.Thread, line string, parent uint64) string {
	keys := strings.Fields(line)[1:]
	if len(keys) == 0 {
		return "ERROR usage: MDEL <key> [<key> ...]"
	}
	th, err := sess.writeThread(th)
	if err != nil {
		return "ERROR " + err.Error()
	}
	deleted := 0
	err = atomicSpanned(th, parent, func(tx *mtm.Tx) error {
		deleted = 0 // conflict retries rerun the closure
		for _, key := range keys {
			raw, err := s.tree.Get(tx, s.hash(key))
			if err == pds.ErrNotFound {
				continue
			}
			if err != nil {
				return err
			}
			k, _, err := decodeKV(raw)
			if err != nil {
				return err
			}
			if k != key {
				continue // hash collision with another key
			}
			if err := s.tree.Delete(tx, s.hash(key)); err != nil {
				return err
			}
			deleted++
		}
		return nil
	})
	if err != nil {
		return "ERROR " + err.Error()
	}
	return fmt.Sprintf("DELETED %d", deleted)
}

// handleSharded serves one command against the sharded store. The store
// leases transaction threads per write inside the destination shard, so
// the session contributes none; reads run on per-shard snapshot Views.
func (s *Server) handleSharded(line string, req uint64) string {
	parse := telemetry.SpanBegin(telemetry.PhaseParse, 0, req)
	fields := strings.SplitN(strings.TrimSpace(line), " ", 3)
	cmd := strings.ToUpper(fields[0])
	parse.End()
	exec := telemetry.SpanBegin(telemetry.PhaseExec, 0, req)
	defer exec.End()
	switch cmd {
	case "PING":
		return "PONG"
	case "QUIT":
		return "BYE"
	case "SET":
		if len(fields) != 3 {
			return "ERROR usage: SET <key> <value>"
		}
		if err := s.store.Set(fields[1], fields[2]); err != nil {
			return "ERROR " + err.Error()
		}
		return "OK"
	case "GET":
		if len(fields) != 2 {
			return "ERROR usage: GET <key>"
		}
		v, err := s.store.Get(fields[1])
		if err == shard.ErrNotFound {
			return "MISSING"
		}
		if err != nil {
			return "ERROR " + err.Error()
		}
		return "VALUE " + v
	case "MGET":
		keys := strings.Fields(line)[1:]
		if len(keys) == 0 {
			return "ERROR usage: MGET <key> [<key> ...]"
		}
		values, present, err := s.store.MGet(keys)
		if err != nil {
			return "ERROR " + err.Error()
		}
		outs := make([]string, len(keys))
		for i := range keys {
			if present[i] {
				outs[i] = "VALUE " + values[i]
			} else {
				outs[i] = "MISSING"
			}
		}
		return strings.Join(outs, "\n")
	case "DEL":
		if len(fields) != 2 {
			return "ERROR usage: DEL <key>"
		}
		err := s.store.Del(fields[1])
		if err == shard.ErrNotFound {
			return "MISSING"
		}
		if err != nil {
			return "ERROR " + err.Error()
		}
		return "OK"
	case "MSET":
		args := strings.Fields(line)[1:]
		if len(args) == 0 || len(args)%2 != 0 {
			return "ERROR usage: MSET <key> <value> [<key> <value> ...]"
		}
		keys := make([]string, 0, len(args)/2)
		values := make([]string, 0, len(args)/2)
		for i := 0; i < len(args); i += 2 {
			keys = append(keys, args[i])
			values = append(values, args[i+1])
		}
		if err := s.store.MSet(keys, values); err != nil {
			return "ERROR " + err.Error()
		}
		return "OK"
	case "MDEL":
		keys := strings.Fields(line)[1:]
		if len(keys) == 0 {
			return "ERROR usage: MDEL <key> [<key> ...]"
		}
		n, err := s.store.MDel(keys)
		if err != nil {
			return "ERROR " + err.Error()
		}
		return fmt.Sprintf("DELETED %d", n)
	case "COUNT":
		n, err := s.store.Count()
		if err != nil {
			return "ERROR " + err.Error()
		}
		return fmt.Sprintf("COUNT %d", n)
	case "STATS":
		return s.statsSharded()
	default:
		return "ERROR unknown command"
	}
}

// statsSharded renders the STATS line for a sharded store: the classic
// aggregate fields summed across shards, the shard count, then per-shard
// commit/fence/recovery dimensions (shard<k>_commits,
// shard<k>_fences_per_commit, shard<k>_recovery_us).
func (s *Server) statsSharded() string {
	agg := s.store.Stats()
	var b strings.Builder
	b.WriteString("STATS")
	add := func(k string, v uint64) { fmt.Fprintf(&b, " %s=%d", k, v) }
	add("shards", uint64(s.store.NShards()))
	add("commits", agg.Commits)
	add("aborts", agg.Aborts)
	add("stores", agg.Stores)
	add("flushes", agg.Flushes)
	add("fences", agg.Fences)
	add("views", agg.Views)
	fpc := 0.0
	if agg.Commits > 0 {
		fpc = float64(agg.Fences) / float64(agg.Commits)
	}
	fmt.Fprintf(&b, " fences_per_commit=%.2f", fpc)
	rc, ra := s.store.RecoveredIntents()
	add("recovered_xmset_commits", uint64(rc))
	add("recovered_xmset_aborts", uint64(ra))
	for k := 0; k < s.store.NShards(); k++ {
		sh := s.store.Shard(k)
		tm := sh.PM.TM().Snapshot()
		dev := sh.PM.Device().Snapshot()
		add(fmt.Sprintf("shard%d_commits", k), tm.Commits)
		sfpc := 0.0
		if tm.Commits > 0 {
			sfpc = float64(dev.Fences) / float64(tm.Commits)
		}
		fmt.Fprintf(&b, " shard%d_fences_per_commit=%.2f", k, sfpc)
		fmt.Fprintf(&b, " shard%d_recovery_us=%d", k, sh.RecoveryTime.Microseconds())
	}
	add("requests", telReqLat.Count())
	fmt.Fprintf(&b, " req_p50_us=%.1f req_p99_us=%.1f",
		telReqLat.Quantile(0.50)/1e3, telReqLat.Quantile(0.99)/1e3)
	return b.String()
}

// stats renders one line of key=value pairs from the live stack: the
// transaction system's commit/abort counts, the SCM device's primitive
// counts, log-append totals from the telemetry registry, and the request
// latency distribution served so far.
func (s *Server) stats() string {
	tm := s.pm.TM().Snapshot()
	dev := s.pm.Device().Snapshot()
	reg := telemetry.Default.Snapshot()
	var b strings.Builder
	b.WriteString("STATS")
	add := func(k string, v uint64) { fmt.Fprintf(&b, " %s=%d", k, v) }
	add("commits", tm.Commits)
	add("aborts", tm.Aborts)
	add("readonly", tm.ReadOnly)
	add("stores", dev.Stores)
	add("wtstores", dev.WTStores)
	add("flushes", dev.Flushes)
	add("fences", dev.Fences)
	add("log_appends", uint64(reg["rawl_appends_total"]))
	add("log_bytes", uint64(reg["rawl_append_payload_bytes_total"]))
	add("gc_epochs", uint64(reg["mtm_group_commit_epochs_total"]))
	add("gc_members", uint64(reg["mtm_group_commit_members_total"]))
	add("views", tm.Views)
	add("readtx_started", uint64(reg["mtm_readtx_started_total"]))
	add("readtx_retries", uint64(reg["mtm_readtx_retries_total"]))
	add("readtx_extends", uint64(reg["mtm_readtx_extends_total"]))
	add("thread_leases", uint64(reg["mtm_thread_leases_total"]))
	add("latency_sample_rate", uint64(s.pm.TM().LatencySampleRate()))
	add("slow_captures", uint64(reg["telemetry_slow_captures_total"]))
	fpc := 0.0
	if tm.Commits > 0 {
		fpc = float64(dev.Fences) / float64(tm.Commits)
	}
	fmt.Fprintf(&b, " fences_per_commit=%.2f", fpc)
	add("requests", telReqLat.Count())
	fmt.Fprintf(&b, " req_p50_us=%.1f req_p99_us=%.1f",
		telReqLat.Quantile(0.50)/1e3, telReqLat.Quantile(0.99)/1e3)
	return b.String()
}
