// Package kvserve is a network key-value server over Mnemosyne's durable
// transactions — the kind of small service the paper's introduction
// motivates (low-latency storage of moderate amounts of data, logs,
// configuration) built directly on persistent memory with no database
// underneath.
//
// The wire protocol is line-oriented:
//
//	SET <key> <value>   -> OK
//	GET <key>           -> VALUE <value> | MISSING
//	DEL <key>           -> OK | MISSING
//	COUNT               -> COUNT <n>
//	STATS               -> STATS key=value ... (telemetry snapshot)
//	PING                -> PONG
//	QUIT                -> BYE (closes the connection)
//
// Every acknowledged SET/DEL is durable before the reply is written:
// the B+ tree update commits in a durable memory transaction.
package kvserve

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mtm"
	"repro/internal/pds"
	"repro/internal/telemetry"
)

var (
	telReqLat = telemetry.NewHistogram("kvserve_request_latency_ns", "Latency of kvserve protocol commands, in nanoseconds.")
	telReqs   = telemetry.NewCounter("kvserve_requests_total", "Protocol commands dispatched by kvserve.")
	telErrs   = telemetry.NewCounter("kvserve_errors_total", "Protocol commands answered with ERROR.")
)

// Server serves the protocol over a listener.
type Server struct {
	pm   *core.PM
	tree *pds.BPTree
	hash func(string) uint64 // hashKey, overridable by collision tests

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	closed   bool
	wg       sync.WaitGroup
}

// New builds a server over an open persistent-memory instance; state
// lives under the "kvserve.root" static, so a restarted server finds its
// data again.
func New(pm *core.PM) (*Server, error) {
	root, _, err := pm.Static("kvserve.root", 8)
	if err != nil {
		return nil, err
	}
	return &Server{pm: pm, tree: pds.NewBPTree(root), hash: hashKey, conns: make(map[net.Conn]bool)}, nil
}

// hashKey maps a string key into the tree's key space (FNV-1a). The full
// key is stored with the value to detect collisions.
func hashKey(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Record and protocol size limits. The key length must fit the record
// header's two bytes; handle rejects oversized keys and values before
// encodeKV runs, so encoding can never corrupt a header.
const (
	// MaxKeyLen bounds SET/GET/DEL keys (bytes).
	MaxKeyLen = 4 << 10
	// MaxValueLen bounds SET values (bytes).
	MaxValueLen = 56 << 10
)

func encodeKV(key, value string) ([]byte, error) {
	if len(key) > MaxKeyLen {
		return nil, fmt.Errorf("kvserve: key of %d bytes exceeds %d", len(key), MaxKeyLen)
	}
	if len(value) > MaxValueLen {
		return nil, fmt.Errorf("kvserve: value of %d bytes exceeds %d", len(value), MaxValueLen)
	}
	out := make([]byte, 2+len(key)+len(value))
	out[0] = byte(len(key))
	out[1] = byte(len(key) >> 8)
	copy(out[2:], key)
	copy(out[2+len(key):], value)
	return out, nil
}

func decodeKV(b []byte) (key, value string, err error) {
	if len(b) < 2 {
		return "", "", errors.New("kvserve: short record")
	}
	n := int(b[0]) | int(b[1])<<8
	if len(b) < 2+n {
		return "", "", errors.New("kvserve: truncated record")
	}
	return string(b[2 : 2+n]), string(b[2+n:]), nil
}

// Serve accepts connections until Close. Each connection leases a
// transaction thread from the instance's pool for the life of the
// session and releases it on disconnect, so the Threads bound caps
// concurrent connections only — cumulative connections are unlimited,
// and a burst beyond the bound queues (up to the lease timeout) instead
// of erroring.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	pool := s.pm.ThreadPool()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		// The lease happens on the session goroutine: a full pool must
		// not stall the accept loop, and concurrent arrivals then queue
		// for slots concurrently.
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			th, err := pool.Lease()
			if err != nil {
				telErrs.Inc()
				fmt.Fprintf(conn, "ERROR %v\n", err)
				return
			}
			defer pool.Release(th)
			s.session(conn, th)
		}()
	}
}

// Close stops accepting, disconnects active sessions, and waits for them
// to finish their in-flight command (every acknowledged update is durable
// before its reply, so a shutdown never loses acknowledged data).
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	l := s.listener
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) session(conn net.Conn, th *mtm.Thread) {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	w := bufio.NewWriter(conn)
	defer w.Flush()
	for sc.Scan() {
		line := sc.Text()
		reply := s.dispatch(th, line)
		fmt.Fprintln(w, reply)
		w.Flush()
		if reply == "BYE" {
			return
		}
	}
	// A line over the scanner cap is a client protocol error, not a
	// silent disconnect: answer it and count it. The scanner cannot
	// resynchronize mid-line, so the connection still ends here.
	if errors.Is(sc.Err(), bufio.ErrTooLong) {
		telErrs.Inc()
		fmt.Fprintln(w, "ERROR line too long")
		w.Flush()
		// Drain the rest of the oversized line: closing with unread
		// bytes queued sends an RST that can destroy the error reply
		// before the client reads it.
		conn.SetReadDeadline(time.Now().Add(time.Second))
		io.Copy(io.Discard, conn)
	}
}

// dispatch times and traces one protocol command around handle.
func (s *Server) dispatch(th *mtm.Thread, line string) string {
	start := time.Now()
	reply := s.handle(th, line)
	lat := time.Since(start).Nanoseconds()
	telReqs.Inc()
	telReqLat.Observe(lat)
	if strings.HasPrefix(reply, "ERROR") {
		telErrs.Inc()
	}
	if telemetry.TraceEnabled() {
		telemetry.Emit(telemetry.EvRequest, th.ID(), uint64(lat), uint64(len(line)))
	}
	return reply
}

func (s *Server) handle(th *mtm.Thread, line string) string {
	fields := strings.SplitN(strings.TrimSpace(line), " ", 3)
	switch strings.ToUpper(fields[0]) {
	case "PING":
		return "PONG"
	case "QUIT":
		return "BYE"
	case "SET":
		if len(fields) != 3 {
			return "ERROR usage: SET <key> <value>"
		}
		key, value := fields[1], fields[2]
		if len(key) > MaxKeyLen {
			return fmt.Sprintf("ERROR key too long (max %d bytes)", MaxKeyLen)
		}
		if len(value) > MaxValueLen {
			return fmt.Sprintf("ERROR value too long (max %d bytes)", MaxValueLen)
		}
		rec, err := encodeKV(key, value)
		if err != nil {
			return "ERROR " + err.Error()
		}
		err = th.Atomic(func(tx *mtm.Tx) error {
			return s.tree.Put(tx, s.hash(key), rec)
		})
		if err != nil {
			return "ERROR " + err.Error()
		}
		return "OK"
	case "GET":
		if len(fields) != 2 {
			return "ERROR usage: GET <key>"
		}
		var value string
		err := th.Atomic(func(tx *mtm.Tx) error {
			raw, err := s.tree.Get(tx, s.hash(fields[1]))
			if err != nil {
				return err
			}
			k, v, err := decodeKV(raw)
			if err != nil {
				return err
			}
			if k != fields[1] {
				return pds.ErrNotFound // hash collision with another key
			}
			value = v
			return nil
		})
		if err == pds.ErrNotFound {
			return "MISSING"
		}
		if err != nil {
			return "ERROR " + err.Error()
		}
		return "VALUE " + value
	case "DEL":
		if len(fields) != 2 {
			return "ERROR usage: DEL <key>"
		}
		err := th.Atomic(func(tx *mtm.Tx) error {
			// Load and compare the stored key before deleting: the
			// tree is keyed by hash, and deleting on a collision
			// would destroy a different key's record.
			raw, err := s.tree.Get(tx, s.hash(fields[1]))
			if err != nil {
				return err
			}
			k, _, err := decodeKV(raw)
			if err != nil {
				return err
			}
			if k != fields[1] {
				return pds.ErrNotFound // hash collision with another key
			}
			return s.tree.Delete(tx, s.hash(fields[1]))
		})
		if err == pds.ErrNotFound {
			return "MISSING"
		}
		if err != nil {
			return "ERROR " + err.Error()
		}
		return "OK"
	case "COUNT":
		n := 0
		err := th.Atomic(func(tx *mtm.Tx) error {
			n = s.tree.Len(tx)
			return nil
		})
		if err != nil {
			return "ERROR " + err.Error()
		}
		return fmt.Sprintf("COUNT %d", n)
	case "STATS":
		return s.stats()
	default:
		return "ERROR unknown command"
	}
}

// stats renders one line of key=value pairs from the live stack: the
// transaction system's commit/abort counts, the SCM device's primitive
// counts, log-append totals from the telemetry registry, and the request
// latency distribution served so far.
func (s *Server) stats() string {
	tm := s.pm.TM().Snapshot()
	dev := s.pm.Device().Snapshot()
	reg := telemetry.Default.Snapshot()
	var b strings.Builder
	b.WriteString("STATS")
	add := func(k string, v uint64) { fmt.Fprintf(&b, " %s=%d", k, v) }
	add("commits", tm.Commits)
	add("aborts", tm.Aborts)
	add("readonly", tm.ReadOnly)
	add("stores", dev.Stores)
	add("wtstores", dev.WTStores)
	add("flushes", dev.Flushes)
	add("fences", dev.Fences)
	add("log_appends", uint64(reg["rawl_appends_total"]))
	add("log_bytes", uint64(reg["rawl_append_payload_bytes_total"]))
	add("requests", telReqLat.Count())
	fmt.Fprintf(&b, " req_p50_us=%.1f req_p99_us=%.1f",
		telReqLat.Quantile(0.50)/1e3, telReqLat.Quantile(0.99)/1e3)
	return b.String()
}
