// Package kvserve is a network key-value server over Mnemosyne's durable
// transactions — the kind of small service the paper's introduction
// motivates (low-latency storage of moderate amounts of data, logs,
// configuration) built directly on persistent memory with no database
// underneath.
//
// The server is a transport-agnostic command engine: a registry maps
// verbs to handlers (with arity contracts and read/write classification
// for the pipeline partitioner), and two wire front ends dispatch into
// it — the original line protocol, and RESP2 (ServeRESP) for stock redis
// clients. Values are typed records: plain strings, hashes
// (HSET/HGET/HDEL/HLEN/HGETALL), and either may carry a crash-safe
// expiry deadline (SET ... EX, EXPIRE/TTL/PERSIST) registered on a
// persistent timer wheel and committed in the same durable transaction
// as the value.
//
// The line protocol is unchanged:
//
//	SET <key> <value>         -> OK
//	GET <key>                 -> VALUE <value> | MISSING
//	MGET <key> [<key> ...]    -> VALUE <v> | MISSING per key (one snapshot)
//	DEL <key>                 -> OK | MISSING
//	MSET <k> <v> [<k> <v>...] -> OK (one transaction; values without spaces —
//	                             the odd-argument error says so; RESP bulk
//	                             strings carry arbitrary bytes)
//	MDEL <key> [<key> ...]    -> DELETED <n> (one transaction)
//	COUNT                     -> COUNT <n>
//	STATS                     -> STATS key=value ... (telemetry snapshot)
//	PING                      -> PONG
//	QUIT                      -> BYE (closes the connection)
//
// Every acknowledged write is durable before the reply is written: the
// B+ tree update commits in a durable memory transaction. Reads are
// served on slot-free snapshot read transactions: no thread lease, no
// log record, no fence, so a read-only connection consumes no
// transaction slot and unbounded readers run in parallel with writers.
//
// Clients that pipeline (send several requests without waiting for
// replies) are served transparently in batches on either transport:
// buffered commands are dispatched concurrently across a small set of
// partitions — keyed by hash, so commands on the same key keep their
// order — and the replies are written back in request order. Write-
// carrying batches spread over transaction threads; read-only batches
// need none. With group commit enabled the whole batch shares
// durability fences.
package kvserve

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mtm"
	"repro/internal/pds"
	"repro/internal/pds/mod"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

var (
	telReqLat = telemetry.NewHistogram("kvserve_request_latency_ns", "Latency of kvserve protocol commands, in nanoseconds.")
	telReqs   = telemetry.NewCounter("kvserve_requests_total", "Protocol commands dispatched by kvserve.")
	telErrs   = telemetry.NewCounter("kvserve_errors_total", "Protocol commands answered with ERROR.")
)

// Server serves the command engine over one or more listeners (line
// protocol via Serve, RESP2 via ServeRESP).
type Server struct {
	pm   *core.PM            // unsharded PM; nil when sharded
	tree *pds.BPTree         // unsharded MTM tree (crash harnesses reach in); nil when sharded or MOD
	mod  *mod.Map            // unsharded MOD map; nil on the mtm backend
	hash func(string) uint64 // hashKey, overridable by collision tests
	pool *core.ThreadPool    // unsharded thread pool; nil when sharded or MOD

	// store is the engine's storage backend: one node unsharded, N nodes
	// over independent PM instances sharded. Handlers never fork on the
	// distinction.
	store store

	// now is the expiry clock (UNIX nanoseconds); TTL crash tests replace
	// it with a scripted clock for deterministic deadline exploration.
	now func() int64

	// reapCh carries lazy-reap hints (reads that saw an expired record)
	// to the sweeper goroutine.
	reapCh    chan reapItem
	sweepOnce sync.Once

	// ctx is the server's lifecycle context: every thread lease a session
	// takes is bounded by it, so Close unblocks sessions queued on a full
	// slot pool instead of hanging shutdown behind them.
	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	listeners []net.Listener
	conns     map[net.Conn]bool
	closed    bool
	wg        sync.WaitGroup
}

// New builds a server over an open persistent-memory instance; state
// lives under the "kvserve.root" static (and TTL deadlines under
// "kvserve.ttl"), so a restarted server finds its data again. The store
// runs on the transactional mtm backend; NewBackend selects others.
func New(pm *core.PM) (*Server, error) {
	return NewBackend(pm, pds.BackendMTM)
}

// NewBackend builds an unsharded server over pm with the chosen pds
// backend.
//
// BackendMTM is the classic store: B+ tree updates inside durable mtm
// transactions, every acknowledged write durable before its reply.
//
// BackendMOD serves the same commands from a shadow-update map
// (internal/pds/mod): every mutation copies its path, flushes the copy,
// and commits with a single fence and a root-pointer swap — no log
// record, no transaction slot, no thread lease. Durability is buffered:
// the root swap an acknowledgment rides on becomes durable at the NEXT
// mutation's fence (or Close's sync), so a crash can lose at most the
// single most recent acknowledged write, never tear anything. TTL
// commands are refused — the timer wheel needs the record and the
// deadline in one transaction, which the self-committing backend cannot
// express.
func NewBackend(pm *core.PM, backend pds.Backend) (*Server, error) {
	root, _, err := pm.Static("kvserve.root", 8)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		pm:     pm,
		hash:   hashKey,
		now:    func() int64 { return time.Now().UnixNano() },
		reapCh: make(chan reapItem, 1024),
		ctx:    ctx,
		cancel: cancel,
		conns:  make(map[net.Conn]bool),
	}
	switch backend {
	case pds.BackendMTM:
		tree, err := pds.NewOrderedMap(pds.BackendMTM, pds.Env{TM: pm.TM()}, root)
		if err != nil {
			cancel()
			return nil, err
		}
		s.tree = pds.NewBPTree(root)
		s.pool = pm.ThreadPool()
		ls := &localStore{srv: s, n: node{pm: pm, tree: tree}}
		if err := initTTLNode(&ls.n); err != nil {
			cancel()
			return nil, err
		}
		s.store = ls
	case pds.BackendMOD:
		tree, err := pds.NewOrderedMap(pds.BackendMOD,
			pds.Env{RT: pm.Runtime(), Heap: pm.Heap()}, root)
		if err != nil {
			cancel()
			return nil, err
		}
		s.mod = tree.(interface{ Mod() *mod.Map }).Mod()
		pm.RegisterMod(s.mod)
		// No initTTLNode: ttlRoot stays Nil and ttlLive false, so the
		// sweeper never walks a wheel this backend cannot maintain (an
		// mtm-era wheel in the image is simply dormant until the store is
		// reopened on the mtm backend).
		s.store = &modStore{srv: s, n: node{pm: pm, tree: tree}}
	default:
		cancel()
		return nil, fmt.Errorf("kvserve: unknown backend %v", backend)
	}
	return s, nil
}

// NewSharded builds a server over a sharded store: the same engine and
// both wire protocols, with single-key commands routed to their key's
// shard and MGET/MSET/MDEL scatter-gathered — cross-shard MSET
// atomically (see internal/shard). Each shard keeps its state under its
// own "kvserve.root" static, so a one-shard store serves a classic
// kvserve image unchanged.
func NewSharded(st *shard.Store) (*Server, error) {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		hash:   hashKey,
		now:    func() int64 { return time.Now().UnixNano() },
		reapCh: make(chan reapItem, 1024),
		ctx:    ctx,
		cancel: cancel,
		conns:  make(map[net.Conn]bool),
	}
	ss := &shardStore{srv: s, st: st, nodes: make([]node, st.NShards())}
	for k := 0; k < st.NShards(); k++ {
		sh := st.Shard(k)
		root, _, err := sh.PM.Static("kvserve.root", 8)
		if err != nil {
			cancel()
			return nil, err
		}
		tree, err := pds.NewOrderedMap(pds.BackendMTM, pds.Env{TM: sh.PM.TM()}, root)
		if err != nil {
			cancel()
			return nil, err
		}
		ss.nodes[k] = node{pm: sh.PM, tree: tree}
		if err := initTTLNode(&ss.nodes[k]); err != nil {
			cancel()
			return nil, err
		}
	}
	s.store = ss
	return s, nil
}

// hashKey maps a string key into the tree's key space (FNV-1a). The full
// key is stored with the value to detect collisions. It is the same
// function the shard front end routes with (shard.HashKey), so batch
// partitions and shard routing agree.
func hashKey(s string) uint64 {
	return shard.HashKey(s)
}

// Record and protocol size limits, aliases of the shared record codec's
// (internal/shard): the key length must fit the record header's two
// bytes; handlers reject oversized keys and values before encoding runs,
// so encoding can never corrupt a header.
const (
	// MaxKeyLen bounds keys (bytes).
	MaxKeyLen = shard.MaxKeyLen
	// MaxValueLen bounds values (bytes; a hash's whole encoded field set).
	MaxValueLen = shard.MaxValueLen
)

// Protocol size-limit sentinels, matchable with errors.Is; the root
// mnemosyne package re-exports them.
var (
	ErrKeyTooLong   = errors.New("kvserve: key too long")
	ErrValueTooLong = errors.New("kvserve: value too long")
)

// Serve accepts line-protocol connections until Close. Sessions lease
// transaction threads lazily — on the first write command, not at
// connect — so read-only connections take no thread at all and the
// Threads bound caps concurrently-writing connections only. A burst of
// writers beyond the bound queues for slots (up to the lease timeout or
// server shutdown) instead of erroring.
func (s *Server) Serve(l net.Listener) error {
	return s.serveLoop(l, s.session)
}

// serveLoop is the accept loop both transports share. The first listener
// also starts the TTL sweeper goroutine.
func (s *Server) serveLoop(l net.Listener, serve func(net.Conn)) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return nil
	}
	s.listeners = append(s.listeners, l)
	s.sweepOnce.Do(func() {
		s.wg.Add(1)
		go s.sweeper()
	})
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			serve(conn)
		}()
	}
}

// Close stops accepting, disconnects active sessions, and waits for them
// to finish their in-flight command (every acknowledged update is durable
// before its reply, so a shutdown never loses acknowledged data).
// Cancelling the lifecycle context unblocks any session still queued on
// a full thread pool, so shutdown cannot hang behind leasing sessions.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	listeners := s.listeners
	s.listeners = nil
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.cancel()
	var err error
	for _, l := range listeners {
		if cerr := l.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	s.wg.Wait()
	// MOD durability is buffered behind the next fence; a clean shutdown
	// makes the last acknowledged root swap durable before returning.
	if s.mod != nil {
		s.mod.Sync()
	}
	return err
}

// Batch-dispatch tuning: how many pipelined commands one round serves,
// and how many transaction threads (session thread included) a session
// may spread a batch across.
const (
	maxBatch        = 128
	batchPartitions = 4
)

// errLineTooLong marks a request line over the 64 KB cap — a client
// protocol error, not a silent disconnect.
var errLineTooLong = errors.New("kvserve: line too long")

// session is one connection's execution state. All threads are lazy: the
// protocol thread is leased on the session's first write command (a
// read-only session never leases at all, since snapshot Views need no
// thread), and batch workers are created on the first large batch
// containing writes. Leased threads are kept for the life of the
// connection and released on disconnect.
type session struct {
	s       *Server
	th      *mtm.Thread // write thread, nil until the first write command
	workers []*mtm.Thread
	threads []*mtm.Thread // cached [th, workers...]
}

// writer returns the session's transaction thread, leasing it on first
// use. The lease is bounded by the server's lifecycle context, so server
// shutdown unblocks a writer queued on a full pool. Only the session
// goroutine calls writer; batch partition goroutines receive their
// threads explicitly.
func (sess *session) writer() (*mtm.Thread, error) {
	if sess.th == nil {
		th, err := sess.s.pool.Lease(sess.s.ctx)
		if err != nil {
			return nil, err
		}
		sess.th = th
	}
	return sess.th, nil
}

func (s *Server) session(conn net.Conn) {
	sess := &session{s: s}
	defer sess.closeThreads()
	r := bufio.NewReaderSize(conn, 64<<10)
	w := bufio.NewWriter(conn)
	defer w.Flush()
	batch := make([]string, 0, maxBatch)
	for {
		// One blocking read, then drain whatever a pipelining client
		// already has buffered: a request-per-reply client always sees a
		// batch of one.
		line, err := readLine(r)
		if err == errLineTooLong {
			s.lineTooLong(conn, w)
			return
		}
		if err != nil {
			return
		}
		batch = append(batch[:0], line)
		for len(batch) < maxBatch && bufferedLine(r) {
			more, err := readLine(r)
			if err != nil {
				break
			}
			batch = append(batch, more)
		}
		replies, quit := s.dispatchBatch(sess, batch)
		for _, reply := range replies {
			fmt.Fprintln(w, reply)
		}
		w.Flush()
		if quit {
			return
		}
	}
}

// readLine reads one protocol line: up to the reader's buffer size,
// newline-terminated, with a final unterminated line at EOF still
// delivered (Scanner semantics, kept across the pipelining rewrite).
func readLine(r *bufio.Reader) (string, error) {
	s, err := r.ReadSlice('\n')
	switch {
	case err == bufio.ErrBufferFull:
		return "", errLineTooLong
	case err != nil && len(s) == 0:
		return "", err
	}
	line := strings.TrimSuffix(string(s), "\n")
	return strings.TrimSuffix(line, "\r"), nil
}

// bufferedLine reports whether a complete line is already buffered, so
// reading it cannot block.
func bufferedLine(r *bufio.Reader) bool {
	if r.Buffered() == 0 {
		return false
	}
	b, _ := r.Peek(r.Buffered())
	return bytes.IndexByte(b, '\n') >= 0
}

// lineTooLong answers an oversized request line and ends the session;
// the reader cannot resynchronize mid-line.
func (s *Server) lineTooLong(conn net.Conn, w *bufio.Writer) {
	telErrs.Inc()
	fmt.Fprintln(w, "ERROR line too long")
	w.Flush()
	// Drain the rest of the oversized line: closing with unread bytes
	// queued sends an RST that can destroy the error reply before the
	// client reads it.
	conn.SetReadDeadline(time.Now().Add(time.Second))
	io.Copy(io.Discard, conn)
}

// batchThreads returns the thread set for a write-carrying batch: the
// session's write thread plus up to batchPartitions-1 workers, created
// on first large batch and reused for the connection's life. Small
// batches are not worth the coordination; an exhausted thread pool
// degrades the session to whatever threads it already holds (possibly
// none) rather than failing.
func (sess *session) batchThreads(batchLen int) []*mtm.Thread {
	if _, err := sess.writer(); err != nil {
		return nil
	}
	if batchLen < 8 {
		sess.threads = append(sess.threads[:0], sess.th)
		return sess.threads[:1]
	}
	for len(sess.workers) < batchPartitions-1 {
		th, err := sess.s.pm.TM().NewThread()
		if err != nil {
			break
		}
		sess.workers = append(sess.workers, th)
	}
	sess.threads = append(sess.threads[:0], sess.th)
	sess.threads = append(sess.threads, sess.workers...)
	return sess.threads
}

// closeThreads releases the session's write thread and batch workers on
// disconnect. A failed Close quarantines that slot; nothing to do about
// it here.
func (sess *session) closeThreads() {
	if sess.th != nil {
		sess.th.Close()
		sess.th = nil
	}
	for _, th := range sess.workers {
		th.Close()
	}
	sess.workers = nil
}

// atomicSpanned runs a durable transaction with its span parented under
// the request's exec span, so commit-phase attribution hangs off the
// request tree. The parent is cleared afterwards: the thread outlives the
// request, and a later unattributed transaction must not inherit it.
func atomicSpanned(th *mtm.Thread, parent uint64, fn func(tx *mtm.Tx) error) error {
	th.SetSpanParent(parent)
	err := th.Atomic(fn)
	th.SetSpanParent(0)
	return err
}

// writeThread resolves the transaction thread for a write command: the
// batch-assigned thread when the partition has one, else the session's
// lazily-leased write thread. Only the session goroutine reaches the
// nil-thread path (single commands and barriers), so writer stays
// race-free.
func (sess *session) writeThread(th *mtm.Thread) (*mtm.Thread, error) {
	if th != nil {
		return th, nil
	}
	return sess.writer()
}
