package kvserve

import (
	"fmt"
	"strings"

	"repro/internal/mtm"
	"repro/internal/telemetry"
)

// modStore is the MOD shadow-update backend: one PM, one copy-on-write
// map, no transaction threads anywhere. Updates run the handler closure
// with a nil tx — each tree mutation inside it self-commits with a
// single fence — and Views pin one snapshot (an old root kept live by
// the reader) for the callback's duration.
//
// The relaxations versus localStore, all inherent to MOD's single-fence
// protocol and surfaced here rather than papered over:
//
//   - Durability is buffered: an acknowledged write's root swap becomes
//     durable at the next mutation's fence (or the server's Close), so a
//     crash can lose the single most recent acknowledgment — never more,
//     and never a torn state.
//   - Multi-key writes are per-key atomic only. MSET applies its pairs as
//     individual committed puts; a crash between them keeps a prefix.
//   - Handler closures are not transactions. The read-modify-write
//     commands (hash field updates, DEL's presence check) are safe
//     because every command on a key runs on one goroutine per session
//     and the pipeline partitioner keeps same-key commands ordered, but
//     there is no cross-command isolation to lean on.
type modStore struct {
	srv *Server
	n   node
}

func (ms *modStore) NShards() int       { return 1 }
func (ms *modStore) ShardOf(string) int { return 0 }
func (ms *modStore) Node(int) *node     { return &ms.n }
func (ms *modStore) NeedsThread() bool  { return false }
func (ms *modStore) SupportsTTL() bool  { return false }

func (ms *modStore) Update(_ *mtm.Thread, _ uint64, _ int, fn func(n *node, tx *mtm.Tx) error) error {
	return fn(&ms.n, nil)
}

func (ms *modStore) View(_ uint64, _ int, fn func(n *node, r mtm.Reader) error) error {
	return ms.n.tree.View(func(r mtm.Reader) error { return fn(&ms.n, r) })
}

func (ms *modStore) MPut(_ *mtm.Thread, _ uint64, keys []string, recs [][]byte) error {
	for i := range keys {
		if err := ms.srv.putRecord(&ms.n, nil, keys[i], recs[i]); err != nil {
			return err
		}
	}
	return nil
}

// StatsLine renders the STATS body for the MOD backend: device primitive
// counts, the shadow-update counters, and the headline fences-per-op
// ratio (1.00 when every mutation committed with exactly one fence).
func (ms *modStore) StatsLine() string {
	s := ms.srv
	dev := s.pm.Device().Snapshot()
	reg := telemetry.Default.Snapshot()
	var b strings.Builder
	b.WriteString("STATS backend=mod")
	add := func(k string, v uint64) { fmt.Fprintf(&b, " %s=%d", k, v) }
	add("stores", dev.Stores)
	add("wtstores", dev.WTStores)
	add("flushes", dev.Flushes)
	add("fences", dev.Fences)
	commits := uint64(reg["mod_commits_total"])
	add("mod_commits", commits)
	add("mod_commit_fences", uint64(reg["mod_commit_fences_total"]))
	add("mod_sync_fences", uint64(reg["mod_sync_fences_total"]))
	add("mod_shadow_bytes", uint64(reg["mod_shadow_bytes_total"]))
	add("mod_snapshots", uint64(reg["mod_snapshots_total"]))
	add("mod_reclaimed_blocks", uint64(reg["mod_reclaimed_blocks_total"]))
	fpo := 0.0
	if commits > 0 {
		fpo = reg["mod_commit_fences_total"] / float64(commits)
	}
	fmt.Fprintf(&b, " fences_per_op=%.2f", fpo)
	add("expired", uint64(telExpired.Value()))
	add("requests", telReqLat.Count())
	fmt.Fprintf(&b, " req_p50_us=%.1f req_p99_us=%.1f",
		telReqLat.Quantile(0.50)/1e3, telReqLat.Quantile(0.99)/1e3)
	return b.String()
}
