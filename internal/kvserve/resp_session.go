package kvserve

import (
	"net"
	"strings"

	"repro/internal/resp"
)

// ServeRESP accepts RESP2 connections until Close: the same command
// engine, registry, batch partitioner, and durability contract as the
// line protocol, behind redis framing — so redis-cli and redis-benchmark
// speak to the store directly, and values are binary-safe end to end.
// Both Serve and ServeRESP may run concurrently on one Server, serving
// one keyspace through two transports.
func (s *Server) ServeRESP(l net.Listener) error {
	return s.serveLoop(l, s.respSession)
}

func (s *Server) respSession(conn net.Conn) {
	sess := &session{s: s}
	defer sess.closeThreads()
	r := resp.NewReader(conn)
	w := resp.NewWriter(conn)
	defer w.Flush()
	cmds := make([][][]byte, 0, maxBatch)
	for {
		// One blocking read, then drain whatever a pipelining client
		// already has buffered, mirroring the line-protocol session.
		args, err := r.ReadCommand()
		if err != nil {
			s.respFatal(w, err)
			return
		}
		cmds = append(cmds[:0], args)
		var perr error
		for len(cmds) < maxBatch && r.CommandAvailable() {
			more, err := r.ReadCommand()
			if err != nil {
				perr = err
				break
			}
			cmds = append(cmds, more)
		}
		replies, quit := s.dispatchBatchRESP(sess, cmds)
		for i := range replies {
			writeRESP(w, replies[i])
		}
		w.Flush()
		if quit {
			return
		}
		if perr != nil {
			s.respFatal(w, perr)
			return
		}
	}
}

// respFatal answers a protocol error before closing; the reader cannot
// resynchronize inside a malformed frame, so the session ends. I/O
// errors (client went away) close silently.
func (s *Server) respFatal(w *resp.Writer, err error) {
	if resp.IsProtocol(err) {
		telErrs.Inc()
		w.WriteError("ERR protocol error: " + err.Error())
		w.Flush()
	}
}

// writeRESP renders one Reply as a RESP2 frame. Bare engine errors gain
// redis's ERR prefix; typed errors (WRONGTYPE) pass through so clients
// can match on the error class.
func writeRESP(w *resp.Writer, r Reply) {
	switch r.kind {
	case replySimple:
		w.WriteSimple(r.str)
	case replyBye:
		w.WriteSimple("OK")
	case replyError:
		msg := r.str
		if !strings.HasPrefix(msg, "WRONGTYPE") {
			msg = "ERR " + msg
		}
		w.WriteError(msg)
	case replyInt:
		w.WriteInt(r.n)
	case replyBulk:
		w.WriteBulk(r.bulk)
	case replyNil:
		w.WriteNull()
	case replyArray:
		w.WriteArrayHeader(len(r.arr))
		for i := range r.arr {
			writeRESP(w, r.arr[i])
		}
	}
}
