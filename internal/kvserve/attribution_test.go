package kvserve

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// TestRequestAttribution checks the acceptance bar for phase attribution:
// a SET request's span tree, captured by the flight recorder, decomposes
// the request into parse + exec covering at least 90% of the request's
// wall time, and the transaction under exec carries its commit phases.
func TestRequestAttribution(t *testing.T) {
	telemetry.EnableAttribution()
	t.Cleanup(func() {
		telemetry.DisableAttribution()
		telemetry.DefaultRecorder.Configure(0, 0, 0)
	})

	srv, pm, _ := startServer(t, core.Config{Dir: t.TempDir(), DeviceSize: 64 << 20})
	th, err := pm.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	sess := &session{s: srv, th: th}

	// Calibrate the capture threshold from a warm-up request: well below a
	// request's wall time so SETs reliably capture, but far above the
	// sub-microsecond fence/alloc root spans — a 1ns threshold would turn
	// every such span into a full ring scan and slow the test 100x.
	start := time.Now()
	if reply := srv.dispatch(sess, nil, "SET warmup value"); reply != "OK" {
		t.Fatalf("SET -> %q", reply)
	}
	threshold := time.Since(start) / 4
	if threshold < 2*time.Microsecond {
		threshold = 2 * time.Microsecond
	}
	telemetry.DefaultRecorder.Configure(threshold, 256, time.Minute)

	for i := 0; i < 50; i++ {
		if reply := srv.dispatch(sess, nil, fmt.Sprintf("SET key%d value%d", i, i)); reply != "OK" {
			t.Fatalf("SET -> %q", reply)
		}
	}
	if reply := srv.dispatch(sess, nil, "GET key7"); reply != "VALUE value7" {
		t.Fatalf("GET -> %q", reply)
	}

	entries := telemetry.DefaultRecorder.Entries()
	if len(entries) == 0 {
		t.Fatal("flight recorder captured nothing at a 1ns threshold")
	}
	covered := false
	sawCommitTree := false
	for _, e := range entries {
		if e.Phase != "request" || e.DurNs <= 0 {
			continue
		}
		spans := map[uint64]telemetry.SpanView{}
		children := map[uint64][]telemetry.SpanView{}
		for _, sp := range e.Spans {
			spans[sp.ID] = sp
			children[sp.Parent] = append(children[sp.Parent], sp)
		}
		var direct int64
		var execID uint64
		for _, sp := range children[e.Root] {
			switch sp.Phase {
			case "parse", "exec":
				direct += sp.DurNs
			}
			if sp.Phase == "exec" {
				execID = sp.ID
			}
		}
		if float64(direct) >= 0.9*float64(e.DurNs) {
			covered = true
		}
		for _, sp := range children[execID] {
			if sp.Phase != "txn" {
				continue
			}
			got := map[string]bool{}
			for _, c := range children[sp.ID] {
				got[c.Phase] = true
			}
			if got["txn_body"] && got["log_append"] && got["log_fence"] &&
				got["write_back"] && got["truncate"] {
				sawCommitTree = true
			}
		}
	}
	if !covered {
		t.Error("no captured request had parse+exec covering >= 90% of its wall time")
	}
	if !sawCommitTree {
		t.Error("no captured SET decomposed into txn_body/log_append/log_fence/write_back/truncate")
	}

	stats := srv.dispatch(sess, nil, "STATS")
	for _, key := range []string{"latency_sample_rate", "readtx_started", "slow_captures"} {
		if !strings.Contains(stats, key) {
			t.Errorf("STATS reply missing %q:\n%s", key, stats)
		}
	}
}
