package kvserve

import (
	"strconv"
	"strings"

	"repro/internal/telemetry"
)

// replyKind enumerates the transport-independent reply shapes. The
// engine's handlers return a Reply; each transport renders it — the line
// protocol with its legacy VALUE/MISSING/DELETED vocabulary, RESP with
// simple strings, integers, bulk strings, nulls, and arrays.
type replyKind int

const (
	replySimple replyKind = iota // +OK style status
	replyError                   // -ERR style error (str carries the bare message)
	replyInt                     // :N
	replyBulk                    // $len binary-safe payload
	replyNil                     // $-1 absent value
	replyArray                   // *N of nested replies
	replyBye                     // QUIT: acknowledge, then close the session
)

// Reply is one command's transport-independent result.
type Reply struct {
	kind replyKind
	str  string
	n    int64
	bulk []byte
	arr  []Reply
}

func simpleReply(s string) Reply     { return Reply{kind: replySimple, str: s} }
func errReply(msg string) Reply      { return Reply{kind: replyError, str: msg} }
func errfReply(err error) Reply      { return Reply{kind: replyError, str: err.Error()} }
func intReply(n int64) Reply         { return Reply{kind: replyInt, n: n} }
func bulkReply(b []byte) Reply       { return Reply{kind: replyBulk, bulk: b} }
func bulkString(s string) Reply      { return Reply{kind: replyBulk, bulk: []byte(s)} }
func nilReply() Reply                { return Reply{kind: replyNil} }
func arrayReply(elems []Reply) Reply { return Reply{kind: replyArray, arr: elems} }
func byeReply() Reply                { return Reply{kind: replyBye} }

// cmdDef is one registry entry: the verb's arity contract, its
// read/write classification for the pipeline partitioner, how the line
// protocol tokenizes it, and its handler.
type cmdDef struct {
	name string
	// arity is redis-style, counting the verb: positive = exact argument
	// count, negative = at least -arity arguments.
	arity int
	// write marks commands that mutate state; a pipelined batch carrying
	// one materializes transaction threads (on backends that need them).
	write bool
	// keyed marks single-key commands the batch partitioner may run
	// concurrently, hashed by args[1]; keyedMax (when non-zero) bounds the
	// argument count that still counts as single-key (DEL is keyed at 2
	// args, variadic DEL is a barrier). Non-keyed commands are barriers.
	keyed    bool
	keyedMax int
	// lineSplit, when non-zero, makes the line protocol tokenize with
	// SplitN(line, " ", lineSplit) instead of Fields, so the final
	// argument keeps its spaces (SET's value). RESP framing is unaffected.
	lineSplit int
	usage     string
	handler   func(c *call) Reply
	// legacy renders a non-error Reply for the line protocol; nil uses
	// the default rendering (errors always render as "ERROR <msg>").
	legacy func(args [][]byte, r Reply) string
	calls  *telemetry.Counter
}

// registry maps upper-cased verbs to their definitions. Both transports
// dispatch through it; there is no per-transport command switch.
var registry = map[string]*cmdDef{}

func register(d *cmdDef) *cmdDef {
	d.calls = telemetry.NewCounter(
		"kvserve_cmd_"+strings.ToLower(d.name)+"_total",
		"Invocations of the "+d.name+" command across all transports.")
	registry[d.name] = d
	return d
}

// arityOK checks argc (verb included) against the definition's contract.
func (d *cmdDef) arityOK(argc int) bool {
	if d.arity > 0 {
		return argc == d.arity
	}
	return argc >= -d.arity
}

func init() {
	register(&cmdDef{
		name: "PING", arity: -1, usage: "PING [<message>]",
		handler: func(c *call) Reply {
			if len(c.args) >= 2 {
				return bulkReply(append([]byte(nil), c.args[1]...))
			}
			return simpleReply("PONG")
		},
	})
	register(&cmdDef{
		name: "QUIT", arity: -1, usage: "QUIT",
		handler: func(c *call) Reply { return byeReply() },
	})
	register(&cmdDef{
		name: "ECHO", arity: 2, usage: "ECHO <message>",
		handler: func(c *call) Reply {
			return bulkReply(append([]byte(nil), c.args[1]...))
		},
	})
	// SELECT/COMMAND/CONFIG are compatibility no-ops so stock redis
	// clients (redis-cli, redis-benchmark) can open a session.
	register(&cmdDef{
		name: "SELECT", arity: 2, usage: "SELECT <db>",
		handler: func(c *call) Reply { return simpleReply("OK") },
	})
	register(&cmdDef{
		name: "COMMAND", arity: -1, usage: "COMMAND [<subcommand>]",
		handler: func(c *call) Reply { return arrayReply(nil) },
		legacy:  func(args [][]byte, r Reply) string { return "OK" },
	})
	register(&cmdDef{
		name: "CONFIG", arity: -2, usage: "CONFIG <subcommand> [...]",
		handler: func(c *call) Reply { return arrayReply(nil) },
		legacy:  func(args [][]byte, r Reply) string { return "OK" },
	})

	register(&cmdDef{
		name: "SET", arity: -3, write: true, keyed: true, lineSplit: 3,
		usage:   "SET <key> <value> [EX <seconds> | PX <milliseconds>]",
		handler: cmdSet,
	})
	register(&cmdDef{
		name: "GET", arity: 2, keyed: true, usage: "GET <key>",
		handler: cmdGet,
		legacy: func(args [][]byte, r Reply) string {
			if r.kind == replyNil {
				return "MISSING"
			}
			return "VALUE " + string(r.bulk)
		},
	})
	register(&cmdDef{
		name: "DEL", arity: -2, write: true, keyed: true, keyedMax: 2,
		usage:   "DEL <key> [<key> ...]",
		handler: cmdDel,
		legacy: func(args [][]byte, r Reply) string {
			if len(args) == 2 {
				if r.n > 0 {
					return "OK"
				}
				return "MISSING"
			}
			return "DELETED " + strconv.FormatInt(r.n, 10)
		},
	})
	register(&cmdDef{
		name: "MGET", arity: -2, usage: "MGET <key> [<key> ...]",
		handler: cmdMGet,
		legacy: func(args [][]byte, r Reply) string {
			outs := make([]string, len(r.arr))
			for i, e := range r.arr {
				if e.kind == replyNil {
					outs[i] = "MISSING"
				} else {
					outs[i] = "VALUE " + string(e.bulk)
				}
			}
			return strings.Join(outs, "\n")
		},
	})
	register(&cmdDef{
		name: "MSET", arity: -3, write: true,
		usage:   "MSET <key> <value> [<key> <value> ...]",
		handler: cmdMSet,
	})
	register(&cmdDef{
		name: "MDEL", arity: -2, write: true,
		usage:   "MDEL <key> [<key> ...]",
		handler: cmdMDel,
		legacy: func(args [][]byte, r Reply) string {
			return "DELETED " + strconv.FormatInt(r.n, 10)
		},
	})
	countLegacy := func(args [][]byte, r Reply) string {
		return "COUNT " + strconv.FormatInt(r.n, 10)
	}
	register(&cmdDef{
		name: "COUNT", arity: 1, usage: "COUNT",
		handler: cmdCount, legacy: countLegacy,
	})
	register(&cmdDef{
		name: "DBSIZE", arity: 1, usage: "DBSIZE",
		handler: cmdCount, legacy: countLegacy,
	})
	register(&cmdDef{
		name: "STATS", arity: 1, usage: "STATS",
		handler: func(c *call) Reply { return bulkString(c.s.store.StatsLine()) },
	})

	register(&cmdDef{
		name: "HSET", arity: -4, write: true, keyed: true,
		usage:   "HSET <key> <field> <value> [<field> <value> ...]",
		handler: cmdHSet,
	})
	register(&cmdDef{
		name: "HGET", arity: 3, keyed: true, usage: "HGET <key> <field>",
		handler: cmdHGet,
		legacy: func(args [][]byte, r Reply) string {
			if r.kind == replyNil {
				return "MISSING"
			}
			return "VALUE " + string(r.bulk)
		},
	})
	register(&cmdDef{
		name: "HDEL", arity: -3, write: true, keyed: true,
		usage:   "HDEL <key> <field> [<field> ...]",
		handler: cmdHDel,
	})
	register(&cmdDef{
		name: "HLEN", arity: 2, keyed: true, usage: "HLEN <key>",
		handler: cmdHLen,
	})
	register(&cmdDef{
		name: "HGETALL", arity: 2, keyed: true, usage: "HGETALL <key>",
		handler: cmdHGetAll,
		legacy: func(args [][]byte, r Reply) string {
			var b strings.Builder
			b.WriteString("FIELDS")
			for _, e := range r.arr {
				b.WriteByte(' ')
				b.Write(e.bulk)
			}
			return b.String()
		},
	})

	register(&cmdDef{
		name: "EXPIRE", arity: 3, write: true, keyed: true,
		usage:   "EXPIRE <key> <seconds>",
		handler: cmdExpire,
	})
	register(&cmdDef{
		name: "PEXPIRE", arity: 3, write: true, keyed: true,
		usage:   "PEXPIRE <key> <milliseconds>",
		handler: cmdExpire,
	})
	register(&cmdDef{
		name: "TTL", arity: 2, keyed: true, usage: "TTL <key>",
		handler: cmdTTL,
	})
	register(&cmdDef{
		name: "PTTL", arity: 2, keyed: true, usage: "PTTL <key>",
		handler: cmdTTL,
	})
	register(&cmdDef{
		name: "PERSIST", arity: 2, write: true, keyed: true,
		usage:   "PERSIST <key>",
		handler: cmdPersist,
	})
}
