package kvserve

import (
	"bufio"
	"fmt"
	"net"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
)

type client struct {
	conn net.Conn
	r    *bufio.Reader
}

func dial(t *testing.T, addr string) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return &client{conn: conn, r: bufio.NewReader(conn)}
}

func (c *client) cmd(t *testing.T, line string) string {
	t.Helper()
	if _, err := fmt.Fprintln(c.conn, line); err != nil {
		t.Fatal(err)
	}
	reply, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return reply[:len(reply)-1]
}

func startServer(t *testing.T, cfg core.Config) (*Server, *core.PM, string) {
	t.Helper()
	pm, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(pm)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return srv, pm, l.Addr().String()
}

func TestProtocolRoundTrip(t *testing.T) {
	_, _, addr := startServer(t, core.Config{Dir: t.TempDir(), DeviceSize: 64 << 20})
	c := dial(t, addr)
	if got := c.cmd(t, "PING"); got != "PONG" {
		t.Fatalf("PING -> %q", got)
	}
	if got := c.cmd(t, "SET lang go"); got != "OK" {
		t.Fatalf("SET -> %q", got)
	}
	if got := c.cmd(t, "GET lang"); got != "VALUE go" {
		t.Fatalf("GET -> %q", got)
	}
	if got := c.cmd(t, "SET lang golang 1.22"); got != "OK" {
		t.Fatalf("SET spaces -> %q", got)
	}
	if got := c.cmd(t, "GET lang"); got != "VALUE golang 1.22" {
		t.Fatalf("GET replaced -> %q", got)
	}
	if got := c.cmd(t, "COUNT"); got != "COUNT 1" {
		t.Fatalf("COUNT -> %q", got)
	}
	if got := c.cmd(t, "DEL lang"); got != "OK" {
		t.Fatalf("DEL -> %q", got)
	}
	if got := c.cmd(t, "GET lang"); got != "MISSING" {
		t.Fatalf("GET deleted -> %q", got)
	}
	if got := c.cmd(t, "DEL lang"); got != "MISSING" {
		t.Fatalf("double DEL -> %q", got)
	}
	if got := c.cmd(t, "NONSENSE"); got != "ERROR unknown command" {
		t.Fatalf("garbage -> %q", got)
	}
	if got := c.cmd(t, "QUIT"); got != "BYE" {
		t.Fatalf("QUIT -> %q", got)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, _, addr := startServer(t, core.Config{Dir: t.TempDir(), DeviceSize: 128 << 20})
	const clients = 4
	done := make(chan error, clients)
	for w := 0; w < clients; w++ {
		go func(w int) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				done <- err
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			for i := 0; i < 100; i++ {
				fmt.Fprintf(conn, "SET c%d-k%d v%d\n", w, i, i)
				if reply, _ := r.ReadString('\n'); reply != "OK\n" {
					done <- fmt.Errorf("client %d: %q", w, reply)
					return
				}
			}
			for i := 0; i < 100; i++ {
				fmt.Fprintf(conn, "GET c%d-k%d\n", w, i)
				want := fmt.Sprintf("VALUE v%d\n", i)
				if reply, _ := r.ReadString('\n'); reply != want {
					done <- fmt.Errorf("client %d get %d: %q", w, i, reply)
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < clients; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestDataSurvivesServerRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := core.Config{
		DevicePath: filepath.Join(dir, "scm.img"),
		Dir:        dir,
		DeviceSize: 64 << 20,
	}
	srv, pm, addr := startServer(t, cfg)
	c := dial(t, addr)
	for i := 0; i < 50; i++ {
		if got := c.cmd(t, fmt.Sprintf("SET key%d value%d", i, i)); got != "OK" {
			t.Fatalf("SET %d -> %q", i, got)
		}
	}
	c.conn.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pm.Close(); err != nil {
		t.Fatal(err)
	}

	// Full process-style restart over the device image.
	_, _, addr2 := startServer(t, cfg)
	c2 := dial(t, addr2)
	if got := c2.cmd(t, "COUNT"); got != "COUNT 50" {
		t.Fatalf("COUNT after restart -> %q", got)
	}
	for i := 0; i < 50; i++ {
		want := fmt.Sprintf("VALUE value%d", i)
		if got := c2.cmd(t, fmt.Sprintf("GET key%d", i)); got != want {
			t.Fatalf("GET key%d -> %q", i, got)
		}
	}
}

func TestStatsCommand(t *testing.T) {
	_, _, addr := startServer(t, core.Config{Dir: t.TempDir(), DeviceSize: 64 << 20})
	c := dial(t, addr)
	for i := 0; i < 20; i++ {
		if got := c.cmd(t, fmt.Sprintf("SET sk%d sv%d", i, i)); got != "OK" {
			t.Fatalf("SET %d -> %q", i, got)
		}
	}
	if got := c.cmd(t, "GET sk0"); got != "VALUE sv0" {
		t.Fatalf("GET -> %q", got)
	}
	reply := c.cmd(t, "STATS")
	fields := strings.Fields(reply)
	if len(fields) < 2 || fields[0] != "STATS" {
		t.Fatalf("STATS reply %q", reply)
	}
	kv := make(map[string]string)
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			t.Fatalf("malformed field %q in %q", f, reply)
		}
		kv[k] = v
	}
	num := func(k string) float64 {
		t.Helper()
		s, ok := kv[k]
		if !ok {
			t.Fatalf("STATS missing %q: %q", k, reply)
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("STATS %s=%q: %v", k, s, err)
		}
		return v
	}
	// 20 durable SETs committed before their replies, so the counters
	// must already reflect them when STATS is answered.
	if got := num("commits"); got < 20 {
		t.Errorf("commits = %v, want >= 20", got)
	}
	if got := num("fences"); got == 0 {
		t.Error("fences = 0, want > 0")
	}
	if got := num("log_appends"); got == 0 {
		t.Error("log_appends = 0, want > 0")
	}
	// 21 commands preceded STATS on this connection.
	if got := num("requests"); got < 21 {
		t.Errorf("requests = %v, want >= 21", got)
	}
	if p50, p99 := num("req_p50_us"), num("req_p99_us"); p50 <= 0 || p99 < p50 {
		t.Errorf("latency quantiles p50=%v p99=%v", p50, p99)
	}
	for _, k := range []string{"aborts", "readonly", "stores", "wtstores", "flushes", "log_bytes"} {
		num(k) // presence check
	}
}
