package kvserve

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/crashpoint"
	"repro/internal/mtm"
	"repro/internal/scm"
)

// kvScript is the deterministic command sequence of the crash workload.
// Every command is acknowledged (OK or MISSING) before the next is issued,
// so the durability contract covers a strict prefix plus at most the one
// command in flight at the crash.
var kvScript = []string{
	"SET alpha 1",
	"SET beta two",
	"SET gamma 333",
	"DEL beta",
	"SET alpha rewritten",
	"SET delta dddddddddddddddddddddddddddddddd",
	"DEL nosuch",
	"SET epsilon 5",
}

// kvStateAfter folds the first m script commands into the expected map.
func kvStateAfter(m int) map[string]string {
	st := map[string]string{}
	for i := 0; i < m && i < len(kvScript); i++ {
		f := strings.SplitN(kvScript[i], " ", 3)
		switch f[0] {
		case "SET":
			st[f[1]] = f[2]
		case "DEL":
			delete(st, f[1])
		}
	}
	return st
}

// kvKeys is every key the script touches, in script order.
func kvKeys() []string {
	var keys []string
	seen := map[string]bool{}
	for _, cmd := range kvScript {
		k := strings.SplitN(cmd, " ", 3)[1]
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

// TestCrashPointsKVServe explores crash points of the full stack under the
// key-value server: SCM, regions, heap, transactions and the persistent
// B+ tree all reincarnate, every acknowledged SET/DEL is present, the one
// in-flight command is atomically all-or-nothing, and the tree's
// invariants hold.
func TestCrashPointsKVServe(t *testing.T) {
	workload := func() (*crashpoint.Run, error) {
		cfg := core.Config{DeviceSize: 8 << 20, HeapSize: 256 << 10, Threads: 2}
		dev, err := scm.Open(scm.Config{Size: cfg.DeviceSize, Mode: scm.DelayOff})
		if err != nil {
			return nil, err
		}
		// Each run owns its region-file directory: Body and Check reattach
		// over the same files, but runs must not see a predecessor's.
		if cfg.Dir, err = os.MkdirTemp("", "kvserve-crash-*"); err != nil {
			return nil, err
		}
		done := 0
		return &crashpoint.Run{
			Dev: dev,
			Body: func() error {
				pm, err := core.Attach(dev, cfg)
				if err != nil {
					return err
				}
				s, err := New(pm)
				if err != nil {
					return err
				}
				th, err := pm.NewThread()
				if err != nil {
					return err
				}
				sess := &session{s: s, th: th}
				for i, cmd := range kvScript {
					if reply := s.handle(sess, th, cmd, 0); strings.HasPrefix(reply, "ERROR") {
						return fmt.Errorf("%q: %s", cmd, reply)
					}
					done = i + 1
				}
				return nil
			},
			Check: func() error {
				defer os.RemoveAll(cfg.Dir)
				pm, err := core.Attach(dev, cfg)
				if err != nil {
					return fmt.Errorf("stack not reopenable after %d acked commands: %w", done, err)
				}
				s, err := New(pm)
				if err != nil {
					return err
				}
				th, err := pm.NewThread()
				if err != nil {
					return err
				}
				sess := &session{s: s, th: th}
				if err := th.Atomic(func(tx *mtm.Tx) error {
					return s.tree.CheckInvariants(tx)
				}); err != nil {
					return fmt.Errorf("B+ tree invariants after %d acked commands: %w", done, err)
				}
				// The store must equal the script's effect after done or
				// done+1 commands.
				var lastDiff string
				for _, m := range []int{done, done + 1} {
					if m > len(kvScript) {
						continue
					}
					want := kvStateAfter(m)
					diff := ""
					for _, k := range kvKeys() {
						reply := s.handle(sess, th, "GET "+k, 0)
						wantReply := "MISSING"
						if v, ok := want[k]; ok {
							wantReply = "VALUE " + v
						}
						if reply != wantReply {
							diff = fmt.Sprintf("key %q: got %q, want %q at %d applied commands", k, reply, wantReply, m)
							break
						}
					}
					if diff == "" {
						if reply := s.handle(sess, th, "COUNT", 0); reply != fmt.Sprintf("COUNT %d", len(want)) {
							return fmt.Errorf("%s, want %d live keys", reply, len(want))
						}
						return nil
					}
					lastDiff = diff
				}
				return fmt.Errorf("store matches neither %d nor %d applied commands: %s", done, done+1, lastDiff)
			},
		}, nil
	}

	rep, err := crashpoint.Explore(workload, crashpoint.Options{
		Schedule: crashpoint.TestSchedule(testing.Short(), 24),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		for _, f := range rep.Failures {
			t.Errorf("%v", f)
		}
		t.Fatalf("kvserve durability oracle failed at %d of %d crash points (%s)",
			len(rep.Failures), rep.Points, rep)
	}
	t.Logf("kvserve: %s", rep)
}
