package kvserve

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mtm"
	"repro/internal/pds"
)

// ttlClock is a scripted expiry clock: tests advance it explicitly, so
// deadline comparisons are exact instead of racing the wall clock.
type ttlClock struct{ ns atomic.Int64 }

func (c *ttlClock) now() int64              { return c.ns.Load() }
func (c *ttlClock) advance(d time.Duration) { c.ns.Add(int64(d)) }

// ttlBase is an arbitrary positive epoch; all fake-clock deadlines are
// relative to it.
const ttlBase = int64(1) << 40

// newTTLServer builds an unsharded server on a fake clock WITHOUT
// starting the network loops, so no background sweeper runs: every reap
// and sweep in these tests is explicit and deterministic.
func newTTLServer(t *testing.T, cfg core.Config) (*Server, *core.PM, *session, *mtm.Thread, *ttlClock) {
	t.Helper()
	pm, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(pm)
	if err != nil {
		t.Fatal(err)
	}
	clk := &ttlClock{}
	clk.ns.Store(ttlBase)
	s.now = clk.now
	th, err := pm.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	sess := &session{s: s, th: th}
	return s, pm, sess, th, clk
}

// run drives one command through the engine as RESP-framed argv (so SET
// EX/PX options are reachable) and renders the line-protocol reply text
// for compact assertions.
func run(s *Server, sess *session, th *mtm.Thread, args ...string) string {
	argv := make([][]byte, len(args))
	for i, a := range args {
		argv[i] = []byte(a)
	}
	pr := s.parseCommand(argv)
	rep := s.exec(sess, th, pr, 0)
	return renderLegacy(pr, rep)
}

func expectReply(t *testing.T, s *Server, sess *session, th *mtm.Thread, want string, args ...string) {
	t.Helper()
	if got := run(s, sess, th, args...); got != want {
		t.Fatalf("%v -> %q, want %q", args, got, want)
	}
}

// TestTTLSemantics covers the command surface against a scripted clock:
// EXPIRE/PEXPIRE stamp deadlines, TTL/PTTL round up, PERSIST clears,
// SET overwrites clear, EXPIRE with a non-positive ttl deletes.
func TestTTLSemantics(t *testing.T) {
	s, _, sess, th, clk := newTTLServer(t, core.Config{Dir: t.TempDir(), DeviceSize: 64 << 20})

	expectReply(t, s, sess, th, "OK", "SET", "k", "v")
	expectReply(t, s, sess, th, "-1", "TTL", "k") // no deadline
	expectReply(t, s, sess, th, "1", "EXPIRE", "k", "100")
	expectReply(t, s, sess, th, "100", "TTL", "k")
	expectReply(t, s, sess, th, "100000", "PTTL", "k")

	clk.advance(40 * time.Second)
	expectReply(t, s, sess, th, "60", "TTL", "k")
	// 500ms into a second: TTL rounds the sliver up, never down to 0.
	clk.advance(59*time.Second + 500*time.Millisecond)
	expectReply(t, s, sess, th, "1", "TTL", "k")
	expectReply(t, s, sess, th, "500", "PTTL", "k")
	expectReply(t, s, sess, th, "VALUE v", "GET", "k")

	// PERSIST rescues the key right before its deadline.
	expectReply(t, s, sess, th, "1", "PERSIST", "k")
	expectReply(t, s, sess, th, "0", "PERSIST", "k") // already persistent
	clk.advance(time.Hour)
	expectReply(t, s, sess, th, "VALUE v", "GET", "k")
	expectReply(t, s, sess, th, "-1", "TTL", "k")

	// PEXPIRE uses milliseconds.
	expectReply(t, s, sess, th, "1", "PEXPIRE", "k", "2500")
	expectReply(t, s, sess, th, "3", "TTL", "k") // 2.5s rounds up
	expectReply(t, s, sess, th, "2500", "PTTL", "k")

	// SET overwrites to a fresh record without a deadline.
	expectReply(t, s, sess, th, "OK", "SET", "k", "v2")
	expectReply(t, s, sess, th, "-1", "TTL", "k")

	// SET EX / PX stamp deadlines at write time.
	expectReply(t, s, sess, th, "OK", "SET", "ke", "v", "EX", "10")
	expectReply(t, s, sess, th, "10", "TTL", "ke")
	expectReply(t, s, sess, th, "OK", "SET", "kp", "v", "PX", "1500")
	expectReply(t, s, sess, th, "1500", "PTTL", "kp")
	expectReply(t, s, sess, th, "2", "TTL", "kp")

	// Missing keys: EXPIRE/PERSIST answer 0, TTL answers -2.
	expectReply(t, s, sess, th, "0", "EXPIRE", "nosuch", "5")
	expectReply(t, s, sess, th, "0", "PERSIST", "nosuch")
	expectReply(t, s, sess, th, "-2", "TTL", "nosuch")

	// Non-positive ttl deletes immediately (redis semantics).
	expectReply(t, s, sess, th, "1", "EXPIRE", "k", "0")
	expectReply(t, s, sess, th, "MISSING", "GET", "k")
	expectReply(t, s, sess, th, "-2", "TTL", "k")

	// Bad arguments.
	if got := run(s, sess, th, "EXPIRE", "ke", "soon"); got != `ERROR invalid expire time "soon"` {
		t.Fatalf("EXPIRE soon -> %q", got)
	}
	if got := run(s, sess, th, "SET", "ke", "v", "EX", "-3"); got != `ERROR invalid expire time "-3"` {
		t.Fatalf("SET EX -3 -> %q", got)
	}
	if got := run(s, sess, th, "SET", "ke", "v", "ZZ", "3"); got != `ERROR unknown SET option "ZZ"` {
		t.Fatalf("SET ZZ -> %q", got)
	}
}

// TestTTLExpiredMasking drives a deadline past and checks every read
// path treats the unswept record as absent: GET, MGET, TTL, COUNT, and
// DEL's return value — and that the lazy-reap hint a read queues
// physically reclaims the slot.
func TestTTLExpiredMasking(t *testing.T) {
	s, pm, sess, th, clk := newTTLServer(t, core.Config{Dir: t.TempDir(), DeviceSize: 64 << 20})

	expectReply(t, s, sess, th, "OK", "SET", "dies", "soon", "EX", "5")
	expectReply(t, s, sess, th, "OK", "SET", "lives", "on")
	expectReply(t, s, sess, th, "COUNT 2", "COUNT")

	clk.advance(6 * time.Second)
	expectReply(t, s, sess, th, "MISSING", "GET", "dies")
	expectReply(t, s, sess, th, "-2", "TTL", "dies")
	expectReply(t, s, sess, th, "COUNT 1", "COUNT")
	expectReply(t, s, sess, th, "VALUE on\nMISSING", "MGET", "lives", "dies")

	// The GET queued a lazy-reap hint; running it must physically delete
	// the record (tree slot empty), not just mask it.
	select {
	case it := <-s.reapCh:
		s.reapOne(it)
	default:
		t.Fatal("expired read queued no reap hint")
	}
	if err := pm.View(func(r *mtm.ReadTx) error {
		if _, err := s.tree.Get(r, s.hash("dies")); err != pds.ErrNotFound {
			return fmt.Errorf("tree slot for expired key: %v, want ErrNotFound", err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// DEL of an expired-but-unswept record counts it as absent ("MISSING"
	// is the legacy rendering of DEL's 0).
	expectReply(t, s, sess, th, "OK", "SET", "dies2", "v", "PX", "100")
	clk.advance(time.Second)
	expectReply(t, s, sess, th, "MISSING", "DEL", "dies2")
	expectReply(t, s, sess, th, "MISSING", "GET", "dies2")
}

// TestTTLSweep exercises the wheel sweeper: due entries retire their
// records in one transaction, future deadlines and persistent keys are
// untouched, and stale advisory entries (PERSIST, overwrite) never
// delete a live record.
func TestTTLSweep(t *testing.T) {
	s, pm, sess, th, clk := newTTLServer(t, core.Config{Dir: t.TempDir(), DeviceSize: 64 << 20})

	const dying = 10
	for i := 0; i < dying; i++ {
		expectReply(t, s, sess, th, "OK", "SET", fmt.Sprintf("d%d", i), "v", "EX", "5")
	}
	expectReply(t, s, sess, th, "OK", "SET", "future", "v", "EX", "1000")
	expectReply(t, s, sess, th, "OK", "SET", "forever", "v")

	// Stale-entry scenarios: both got wheel entries at +5s, then their
	// records' own deadlines were cleared. The sweep must unlink the
	// entries without touching the records.
	expectReply(t, s, sess, th, "OK", "SET", "rescued", "v", "EX", "5")
	expectReply(t, s, sess, th, "1", "PERSIST", "rescued")
	expectReply(t, s, sess, th, "OK", "SET", "rewritten", "v", "EX", "5")
	expectReply(t, s, sess, th, "OK", "SET", "rewritten", "v2")

	// Nothing due yet: the sweep is a no-op.
	if n, err := s.sweepAll(clk.now()); err != nil || n != 0 {
		t.Fatalf("premature sweep reclaimed %d, err %v", n, err)
	}

	clk.advance(6 * time.Second)
	n, err := s.sweepAll(clk.now())
	if err != nil {
		t.Fatal(err)
	}
	if n != dying {
		t.Fatalf("sweep reclaimed %d records, want %d", n, dying)
	}
	// Records physically gone, survivors intact.
	if err := pm.View(func(r *mtm.ReadTx) error {
		for i := 0; i < dying; i++ {
			if _, err := s.tree.Get(r, s.hash(fmt.Sprintf("d%d", i))); err != pds.ErrNotFound {
				return fmt.Errorf("swept key d%d still in tree: %v", i, err)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	expectReply(t, s, sess, th, "VALUE v", "GET", "future")
	expectReply(t, s, sess, th, "VALUE v", "GET", "forever")
	expectReply(t, s, sess, th, "VALUE v", "GET", "rescued")
	expectReply(t, s, sess, th, "VALUE v2", "GET", "rewritten")
	expectReply(t, s, sess, th, "COUNT 4", "COUNT")

	// A second sweep finds nothing: the due entries were freed, the stale
	// ones unlinked.
	if n, err := s.sweepAll(clk.now()); err != nil || n != 0 {
		t.Fatalf("second sweep reclaimed %d, err %v", n, err)
	}

	// The tree stays structurally sound through sweep deletions.
	if err := th.Atomic(func(tx *mtm.Tx) error { return s.tree.CheckInvariants(tx) }); err != nil {
		t.Fatal(err)
	}
}

// TestTTLSurvivesRestart closes the stack and reincarnates it: deadlines
// are persistent state, so a live TTL keeps counting down against the
// same absolute clock, an elapsed one masks the key, and the recovered
// wheel still feeds the sweeper (ttlLive is rebuilt from the root cell).
func TestTTLSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := core.Config{
		DevicePath: filepath.Join(dir, "scm.img"),
		Dir:        dir,
		DeviceSize: 64 << 20,
	}
	s, pm, sess, th, clk := newTTLServer(t, cfg)
	expectReply(t, s, sess, th, "OK", "SET", "longttl", "v", "EX", "1000")
	expectReply(t, s, sess, th, "OK", "SET", "shortttl", "v", "EX", "5")
	th.Close()
	if err := pm.Close(); err != nil {
		t.Fatal(err)
	}

	s2, pm2, sess2, th2, clk2 := newTTLServer(t, cfg)
	defer pm2.Close()
	if !s2.store.Node(0).ttlLive.Load() {
		t.Fatal("recovered node not marked TTL-live despite a persisted wheel")
	}
	// Same epoch, 10 recovered seconds later: shortttl's deadline has
	// passed, longttl keeps its remaining time.
	clk2.ns.Store(clk.now() + 10*int64(time.Second))
	expectReply(t, s2, sess2, th2, "990", "TTL", "longttl")
	expectReply(t, s2, sess2, th2, "VALUE v", "GET", "longttl")
	expectReply(t, s2, sess2, th2, "MISSING", "GET", "shortttl")
	// The recovered wheel drives the sweep without any new write.
	if n, err := s2.sweepAll(clk2.now()); err != nil || n != 1 {
		t.Fatalf("post-recovery sweep reclaimed %d, err %v", n, err)
	}
	expectReply(t, s2, sess2, th2, "COUNT 1", "COUNT")
}

// TestTTLHashInteraction pins the TTL rules for hash records: HSET on a
// live key preserves its deadline, expiry applies to the whole hash, and
// an HSET landing on an expired hash starts a fresh one without a TTL.
func TestTTLHashInteraction(t *testing.T) {
	s, _, sess, th, clk := newTTLServer(t, core.Config{Dir: t.TempDir(), DeviceSize: 64 << 20})

	expectReply(t, s, sess, th, "2", "HSET", "h", "f1", "v1", "f2", "v2")
	expectReply(t, s, sess, th, "1", "EXPIRE", "h", "100")
	expectReply(t, s, sess, th, "100", "TTL", "h")
	// Updating a field must not clear the hash's deadline.
	expectReply(t, s, sess, th, "1", "HSET", "h", "f3", "v3")
	expectReply(t, s, sess, th, "100", "TTL", "h")

	clk.advance(101 * time.Second)
	expectReply(t, s, sess, th, "MISSING", "HGET", "h", "f1")
	expectReply(t, s, sess, th, "0", "HLEN", "h")
	expectReply(t, s, sess, th, "COUNT 0", "COUNT")

	// Writing into the expired slot starts a fresh, persistent hash: the
	// dead fields must not resurrect alongside the new one.
	expectReply(t, s, sess, th, "1", "HSET", "h", "f9", "v9")
	expectReply(t, s, sess, th, "-1", "TTL", "h")
	expectReply(t, s, sess, th, "1", "HLEN", "h")
	expectReply(t, s, sess, th, "MISSING", "HGET", "h", "f1")
	expectReply(t, s, sess, th, "VALUE v9", "HGET", "h", "f9")
}
