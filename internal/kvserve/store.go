package kvserve

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/mtm"
	"repro/internal/pds"
	"repro/internal/pmem"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

// node is one keyspace shard's persistent handles: the PM instance it
// lives in, its key-value map behind the backend-agnostic pds interface
// (a transactional B+ tree, or a MOD shadow-update treap), and the root
// cell of its TTL timer wheel. An unsharded server is a store of exactly
// one node.
type node struct {
	pm      *core.PM
	tree    pds.OrderedMap
	ttlRoot pmem.Addr   // 8-byte static cell -> timer wheel block (0 until first TTL)
	ttlLive atomic.Bool // volatile: the wheel exists, sweeping may find work
}

// store is the engine's storage surface: command handlers run against
// it and never ask whether the server is sharded. Both transports (line
// protocol and RESP) dispatch into the same registry, and the registry's
// handlers see only this interface — the old per-command
// handle/handleSharded fork is gone.
type store interface {
	// NShards and ShardOf route keys; an unsharded store answers 1 / 0.
	NShards() int
	ShardOf(key string) int
	// Node exposes shard k's persistent handles (for sweeping and scans).
	Node(k int) *node
	// NeedsThread reports whether Update requires a caller-supplied
	// transaction thread. The unsharded store runs on the session's leased
	// thread; the sharded store leases inside each destination shard; the
	// MOD store's mutations self-commit and never touch a thread.
	NeedsThread() bool
	// SupportsTTL reports whether the backend can register expiry
	// deadlines: the timer wheel commits in the same mtm transaction as
	// the record, which the self-committing MOD backend has none of, so
	// TTL-carrying commands are refused there.
	SupportsTTL() bool
	// Update runs fn as one durable transaction on shard k, attributed
	// under the parent span when the backend supports attribution.
	Update(th *mtm.Thread, parent uint64, k int, fn func(n *node, tx *mtm.Tx) error) error
	// View runs fn on a slot-free snapshot of shard k.
	View(parent uint64, k int, fn func(n *node, r mtm.Reader) error) error
	// MPut stores every keys[i]=recs[i] atomically: one transaction
	// unsharded or single-shard, the cross-shard intent protocol otherwise.
	MPut(th *mtm.Thread, parent uint64, keys []string, recs [][]byte) error
	// StatsLine renders the STATS reply body.
	StatsLine() string
}

// localStore is the unsharded backend: one PM, one tree, transactions on
// the session's leased thread so commit phases attribute under the
// request span.
type localStore struct {
	srv *Server
	n   node
}

func (ls *localStore) NShards() int       { return 1 }
func (ls *localStore) ShardOf(string) int { return 0 }
func (ls *localStore) Node(int) *node     { return &ls.n }
func (ls *localStore) NeedsThread() bool  { return true }
func (ls *localStore) SupportsTTL() bool  { return true }

func (ls *localStore) Update(th *mtm.Thread, parent uint64, _ int, fn func(n *node, tx *mtm.Tx) error) error {
	return atomicSpanned(th, parent, func(tx *mtm.Tx) error { return fn(&ls.n, tx) })
}

func (ls *localStore) View(parent uint64, _ int, fn func(n *node, r mtm.Reader) error) error {
	return ls.srv.pm.ViewSpanned(parent, func(r *mtm.ReadTx) error { return fn(&ls.n, r) })
}

func (ls *localStore) MPut(th *mtm.Thread, parent uint64, keys []string, recs [][]byte) error {
	return atomicSpanned(th, parent, func(tx *mtm.Tx) error {
		for i := range keys {
			if err := ls.srv.putRecord(&ls.n, tx, keys[i], recs[i]); err != nil {
				return err
			}
		}
		return nil
	})
}

// StatsLine renders one line of key=value pairs from the live stack: the
// transaction system's commit/abort counts, the SCM device's primitive
// counts, log-append totals from the telemetry registry, and the request
// latency distribution served so far.
func (ls *localStore) StatsLine() string {
	s := ls.srv
	tm := s.pm.TM().Snapshot()
	dev := s.pm.Device().Snapshot()
	reg := telemetry.Default.Snapshot()
	var b strings.Builder
	b.WriteString("STATS")
	add := func(k string, v uint64) { fmt.Fprintf(&b, " %s=%d", k, v) }
	add("commits", tm.Commits)
	add("aborts", tm.Aborts)
	add("readonly", tm.ReadOnly)
	add("stores", dev.Stores)
	add("wtstores", dev.WTStores)
	add("flushes", dev.Flushes)
	add("fences", dev.Fences)
	add("log_appends", uint64(reg["rawl_appends_total"]))
	add("log_bytes", uint64(reg["rawl_append_payload_bytes_total"]))
	add("gc_epochs", uint64(reg["mtm_group_commit_epochs_total"]))
	add("gc_members", uint64(reg["mtm_group_commit_members_total"]))
	add("views", tm.Views)
	add("readtx_started", uint64(reg["mtm_readtx_started_total"]))
	add("readtx_retries", uint64(reg["mtm_readtx_retries_total"]))
	add("readtx_extends", uint64(reg["mtm_readtx_extends_total"]))
	add("thread_leases", uint64(reg["mtm_thread_leases_total"]))
	add("latency_sample_rate", uint64(s.pm.TM().LatencySampleRate()))
	add("slow_captures", uint64(reg["telemetry_slow_captures_total"]))
	fpc := 0.0
	if tm.Commits > 0 {
		fpc = float64(dev.Fences) / float64(tm.Commits)
	}
	fmt.Fprintf(&b, " fences_per_commit=%.2f", fpc)
	add("expired", uint64(telExpired.Value()))
	add("requests", telReqLat.Count())
	fmt.Fprintf(&b, " req_p50_us=%.1f req_p99_us=%.1f",
		telReqLat.Quantile(0.50)/1e3, telReqLat.Quantile(0.99)/1e3)
	return b.String()
}

// shardStore is the sharded backend: every shard has its own PM, writes
// lease transaction threads inside the destination shard, and cross-shard
// MPut runs the persistent intent protocol (internal/shard).
type shardStore struct {
	srv   *Server
	st    *shard.Store
	nodes []node
}

func (ss *shardStore) NShards() int           { return ss.st.NShards() }
func (ss *shardStore) ShardOf(key string) int { return ss.st.ShardOf(key) }
func (ss *shardStore) Node(k int) *node       { return &ss.nodes[k] }
func (ss *shardStore) NeedsThread() bool      { return false }
func (ss *shardStore) SupportsTTL() bool      { return true }

func (ss *shardStore) Update(_ *mtm.Thread, _ uint64, k int, fn func(n *node, tx *mtm.Tx) error) error {
	n := &ss.nodes[k]
	return n.pm.Atomic(func(tx *mtm.Tx) error { return fn(n, tx) })
}

func (ss *shardStore) View(_ uint64, k int, fn func(n *node, r mtm.Reader) error) error {
	n := &ss.nodes[k]
	return n.pm.View(func(r *mtm.ReadTx) error { return fn(n, r) })
}

func (ss *shardStore) MPut(_ *mtm.Thread, _ uint64, keys []string, recs [][]byte) error {
	return ss.st.MSetRecs(keys, recs)
}

// StatsLine renders the STATS body for a sharded store: the classic
// aggregate fields summed across shards, the shard count, then per-shard
// commit/fence/recovery dimensions.
func (ss *shardStore) StatsLine() string {
	agg := ss.st.Stats()
	var b strings.Builder
	b.WriteString("STATS")
	add := func(k string, v uint64) { fmt.Fprintf(&b, " %s=%d", k, v) }
	add("shards", uint64(ss.st.NShards()))
	add("commits", agg.Commits)
	add("aborts", agg.Aborts)
	add("stores", agg.Stores)
	add("flushes", agg.Flushes)
	add("fences", agg.Fences)
	add("views", agg.Views)
	fpc := 0.0
	if agg.Commits > 0 {
		fpc = float64(agg.Fences) / float64(agg.Commits)
	}
	fmt.Fprintf(&b, " fences_per_commit=%.2f", fpc)
	rc, ra := ss.st.RecoveredIntents()
	add("recovered_xmset_commits", uint64(rc))
	add("recovered_xmset_aborts", uint64(ra))
	for k := 0; k < ss.st.NShards(); k++ {
		sh := ss.st.Shard(k)
		tm := sh.PM.TM().Snapshot()
		dev := sh.PM.Device().Snapshot()
		add(fmt.Sprintf("shard%d_commits", k), tm.Commits)
		sfpc := 0.0
		if tm.Commits > 0 {
			sfpc = float64(dev.Fences) / float64(tm.Commits)
		}
		fmt.Fprintf(&b, " shard%d_fences_per_commit=%.2f", k, sfpc)
		fmt.Fprintf(&b, " shard%d_recovery_us=%d", k, sh.RecoveryTime.Microseconds())
	}
	add("expired", uint64(telExpired.Value()))
	add("requests", telReqLat.Count())
	fmt.Fprintf(&b, " req_p50_us=%.1f req_p99_us=%.1f",
		telReqLat.Quantile(0.50)/1e3, telReqLat.Quantile(0.99)/1e3)
	return b.String()
}

// initTTLNode wires a node's timer-wheel root cell and marks the node
// TTL-live when a previous incarnation already allocated a wheel, so
// recovery resumes sweeping deadlines that survived the crash.
func initTTLNode(n *node) error {
	addr, _, err := n.pm.Static("kvserve.ttl", 8)
	if err != nil {
		return err
	}
	n.ttlRoot = addr
	return n.pm.View(func(r *mtm.ReadTx) error {
		if r.LoadU64(n.ttlRoot) != 0 {
			n.ttlLive.Store(true)
		}
		return nil
	})
}
