package kvserve

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/resp"
	"repro/internal/shard"
)

// respClient is a test-side RESP2 connection.
type respClient struct {
	conn net.Conn
	r    *resp.Reader
	w    *resp.Writer
}

func respDial(t *testing.T, addr string) *respClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return &respClient{conn: conn, r: resp.NewReader(conn), w: resp.NewWriter(conn)}
}

// do sends one command and reads one reply.
func (c *respClient) do(t *testing.T, args ...string) resp.Value {
	t.Helper()
	if err := c.w.WriteCommandStrings(args...); err != nil {
		t.Fatal(err)
	}
	if err := c.w.Flush(); err != nil {
		t.Fatal(err)
	}
	v, err := c.r.ReadValue()
	if err != nil {
		t.Fatalf("%v: %v", args, err)
	}
	return v
}

func (c *respClient) status(t *testing.T, args ...string) string {
	t.Helper()
	v := c.do(t, args...)
	if v.Type != '+' {
		t.Fatalf("%v: got %+v, want simple string", args, v)
	}
	return v.Str
}

func (c *respClient) integer(t *testing.T, args ...string) int64 {
	t.Helper()
	v := c.do(t, args...)
	if v.Type != ':' {
		t.Fatalf("%v: got %+v, want integer", args, v)
	}
	return v.Int
}

// bulk returns the payload and false for a null bulk.
func (c *respClient) bulk(t *testing.T, args ...string) ([]byte, bool) {
	t.Helper()
	v := c.do(t, args...)
	if v.Type != '$' {
		t.Fatalf("%v: got %+v, want bulk", args, v)
	}
	return v.Bulk, !v.Null
}

func (c *respClient) respErr(t *testing.T, args ...string) string {
	t.Helper()
	v := c.do(t, args...)
	if v.Type != '-' {
		t.Fatalf("%v: got %+v, want error", args, v)
	}
	return v.Str
}

// startRESPServer serves both transports of one unsharded server.
func startRESPServer(t *testing.T, cfg core.Config) (*Server, string, string) {
	t.Helper()
	srv, _, lineAddr := startServer(t, cfg)
	rl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeRESP(rl)
	return srv, rl.Addr().String(), lineAddr
}

// testRESPSemantics drives the redis-compatible surface over one RESP
// connection: strings (binary-safe), multi-key commands, hashes, TTLs,
// type errors. Shared by the unsharded and sharded wire tests.
func testRESPSemantics(t *testing.T, c *respClient) {
	if got := c.status(t, "PING"); got != "PONG" {
		t.Fatalf("PING -> %q", got)
	}
	if v := c.do(t, "PING", "hello"); string(v.Bulk) != "hello" {
		t.Fatalf("PING hello -> %+v", v)
	}

	// Binary-safe strings: spaces, CRLF, NUL all round-trip.
	bin := "spaces and\r\nCRLF and \x00 NUL \xff bytes"
	if got := c.status(t, "SET", "rk", bin); got != "OK" {
		t.Fatalf("SET -> %q", got)
	}
	if got, ok := c.bulk(t, "GET", "rk"); !ok || string(got) != bin {
		t.Fatalf("GET rk = %q (present=%v), want the binary payload back", got, ok)
	}
	if _, ok := c.bulk(t, "GET", "rmissing"); ok {
		t.Fatal("GET of a missing key must answer null bulk")
	}
	if n := c.integer(t, "DEL", "rk"); n != 1 {
		t.Fatalf("DEL -> %d", n)
	}
	if n := c.integer(t, "DEL", "rk"); n != 0 {
		t.Fatalf("second DEL -> %d", n)
	}

	// MSET/MGET: values with spaces, null for holes.
	if got := c.status(t, "MSET", "ra", "value one", "rb", "value two"); got != "OK" {
		t.Fatalf("MSET -> %q", got)
	}
	v := c.do(t, "MGET", "ra", "rhole", "rb")
	if v.Type != '*' || len(v.Array) != 3 {
		t.Fatalf("MGET -> %+v", v)
	}
	if string(v.Array[0].Bulk) != "value one" || !v.Array[1].Null || string(v.Array[2].Bulk) != "value two" {
		t.Fatalf("MGET elements = %+v", v.Array)
	}
	if n := c.integer(t, "MDEL", "ra", "rb", "rhole"); n != 2 {
		t.Fatalf("MDEL -> %d", n)
	}

	// Hashes.
	if n := c.integer(t, "HSET", "rh", "f1", "v1", "f2", "v 2"); n != 2 {
		t.Fatalf("HSET -> %d", n)
	}
	if n := c.integer(t, "HSET", "rh", "f1", "v1b", "f3", "v3"); n != 1 {
		t.Fatalf("HSET update+add -> %d, want 1 new field", n)
	}
	if got, ok := c.bulk(t, "HGET", "rh", "f1"); !ok || string(got) != "v1b" {
		t.Fatalf("HGET f1 = %q (present=%v)", got, ok)
	}
	if _, ok := c.bulk(t, "HGET", "rh", "fmissing"); ok {
		t.Fatal("HGET of a missing field must answer null")
	}
	if n := c.integer(t, "HLEN", "rh"); n != 3 {
		t.Fatalf("HLEN -> %d", n)
	}
	all := c.do(t, "HGETALL", "rh")
	if all.Type != '*' || len(all.Array) != 6 {
		t.Fatalf("HGETALL -> %+v", all)
	}
	fields := map[string]string{}
	for i := 0; i < len(all.Array); i += 2 {
		fields[string(all.Array[i].Bulk)] = string(all.Array[i+1].Bulk)
	}
	if fields["f1"] != "v1b" || fields["f2"] != "v 2" || fields["f3"] != "v3" {
		t.Fatalf("HGETALL fields = %v", fields)
	}
	if n := c.integer(t, "HDEL", "rh", "f1", "fmissing"); n != 1 {
		t.Fatalf("HDEL -> %d", n)
	}
	if n := c.integer(t, "HLEN", "rh"); n != 2 {
		t.Fatalf("HLEN after HDEL -> %d", n)
	}

	// Cross-type access answers WRONGTYPE, like redis.
	if msg := c.respErr(t, "GET", "rh"); !strings.HasPrefix(msg, "WRONGTYPE") {
		t.Fatalf("GET of a hash -> %q, want WRONGTYPE", msg)
	}
	if got := c.status(t, "SET", "rs", "plain"); got != "OK" {
		t.Fatalf("SET -> %q", got)
	}
	if msg := c.respErr(t, "HGET", "rs", "f"); !strings.HasPrefix(msg, "WRONGTYPE") {
		t.Fatalf("HGET of a string -> %q, want WRONGTYPE", msg)
	}

	// TTLs over the wire (coarse bounds only; precise semantics are
	// covered by the fake-clock tests).
	if got := c.status(t, "SET", "rt", "v", "EX", "100"); got != "OK" {
		t.Fatalf("SET EX -> %q", got)
	}
	if n := c.integer(t, "TTL", "rt"); n <= 0 || n > 100 {
		t.Fatalf("TTL -> %d", n)
	}
	if n := c.integer(t, "PTTL", "rt"); n <= 0 || n > 100_000 {
		t.Fatalf("PTTL -> %d", n)
	}
	if n := c.integer(t, "PERSIST", "rt"); n != 1 {
		t.Fatalf("PERSIST -> %d", n)
	}
	if n := c.integer(t, "TTL", "rt"); n != -1 {
		t.Fatalf("TTL after PERSIST -> %d", n)
	}
	if n := c.integer(t, "TTL", "rnothere"); n != -2 {
		t.Fatalf("TTL of missing key -> %d", n)
	}
	if n := c.integer(t, "EXPIRE", "rt", "0"); n != 1 {
		t.Fatalf("EXPIRE 0 -> %d", n)
	}
	if _, ok := c.bulk(t, "GET", "rt"); ok {
		t.Fatal("key must be gone after EXPIRE 0")
	}

	// Errors: unknown commands and arity violations.
	if msg := c.respErr(t, "NONSENSE"); !strings.Contains(msg, "unknown command") {
		t.Fatalf("unknown command -> %q", msg)
	}
	if msg := c.respErr(t, "GET"); !strings.Contains(msg, "usage:") {
		t.Fatalf("GET arity error -> %q", msg)
	}
}

func TestRESPWire(t *testing.T) {
	_, addr, lineAddr := startRESPServer(t, core.Config{Dir: t.TempDir(), DeviceSize: 64 << 20})
	c := respDial(t, addr)
	defer c.conn.Close()
	testRESPSemantics(t, c)

	// A value written over RESP with spaces reads back over the line
	// protocol too (one store, two transports).
	if got := c.status(t, "SET", "xts", "cross transport"); got != "OK" {
		t.Fatalf("SET -> %q", got)
	}
	lc := dial(t, lineAddr)
	defer lc.conn.Close()
	if got := lc.cmd(t, "GET xts"); got != "VALUE cross transport" {
		t.Fatalf("line GET of RESP-written key -> %q", got)
	}

	// QUIT acknowledges then closes.
	if got := c.status(t, "QUIT"); got != "OK" {
		t.Fatalf("QUIT -> %q", got)
	}
	if _, err := c.r.ReadValue(); err != io.EOF {
		t.Fatalf("read after QUIT: %v, want EOF", err)
	}
}

func TestRESPWireSharded(t *testing.T) {
	st, err := shard.Open(shard.Config{
		Config: core.Config{Dir: t.TempDir(), DeviceSize: 32 << 20},
		Shards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv, err := NewSharded(st)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeRESP(rl)
	defer srv.Close()

	c := respDial(t, rl.Addr().String())
	defer c.conn.Close()
	testRESPSemantics(t, c)

	// A cross-shard MSET straddling all three shards, read back key by key.
	keys := make([]string, 3)
	for sh := 0; sh < 3; sh++ {
		for i := 0; ; i++ {
			k := fmt.Sprintf("xs%d-%d", sh, i)
			if st.ShardOf(k) == sh {
				keys[sh] = k
				break
			}
		}
	}
	args := []string{"MSET"}
	for i, k := range keys {
		args = append(args, k, fmt.Sprintf("cross value %d", i))
	}
	if got := c.status(t, args...); got != "OK" {
		t.Fatalf("cross-shard MSET -> %q", got)
	}
	for i, k := range keys {
		want := fmt.Sprintf("cross value %d", i)
		if got, ok := c.bulk(t, "GET", k); !ok || string(got) != want {
			t.Fatalf("GET %s = %q (present=%v), want %q", k, got, ok, want)
		}
	}
}

// TestRESPPipelining sends a whole batch of commands before reading any
// reply: replies must come back complete and in request order, and
// commands pipelined after QUIT are dropped unanswered.
func TestRESPPipelining(t *testing.T) {
	_, addr, _ := startRESPServer(t, core.Config{Dir: t.TempDir(), DeviceSize: 64 << 20})
	c := respDial(t, addr)
	defer c.conn.Close()

	const n = 40
	for i := 0; i < n; i++ {
		if err := c.w.WriteCommandStrings("SET", fmt.Sprintf("pk%d", i), fmt.Sprintf("pv %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if err := c.w.WriteCommandStrings("GET", fmt.Sprintf("pk%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.w.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, err := c.r.ReadValue()
		if err != nil || v.Type != '+' || v.Str != "OK" {
			t.Fatalf("pipelined SET %d -> %+v, %v", i, v, err)
		}
	}
	for i := 0; i < n; i++ {
		v, err := c.r.ReadValue()
		want := fmt.Sprintf("pv %d", i)
		if err != nil || v.Type != '$' || string(v.Bulk) != want {
			t.Fatalf("pipelined GET %d -> %+v, %v (want %q)", i, v, err, want)
		}
	}

	// QUIT mid-batch: the tail is dropped, the connection closes.
	for _, cmd := range [][]string{{"PING"}, {"QUIT"}, {"SET", "dropped", "x"}, {"PING"}} {
		if err := c.w.WriteCommandStrings(cmd...); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.w.Flush(); err != nil {
		t.Fatal(err)
	}
	if v, err := c.r.ReadValue(); err != nil || v.Str != "PONG" {
		t.Fatalf("PING before QUIT -> %+v, %v", v, err)
	}
	if v, err := c.r.ReadValue(); err != nil || v.Str != "OK" {
		t.Fatalf("QUIT -> %+v, %v", v, err)
	}
	if _, err := c.r.ReadValue(); err != io.EOF {
		t.Fatalf("read after pipelined QUIT: %v, want EOF", err)
	}

	// The command after QUIT must not have executed.
	c2 := respDial(t, addr)
	defer c2.conn.Close()
	if _, ok := c2.bulk(t, "GET", "dropped"); ok {
		t.Fatal("command pipelined after QUIT was executed")
	}
}

// TestRESPProtocolError sends malformed framing: the server answers a
// protocol error and closes the connection (redis behavior), without
// disturbing other sessions.
func TestRESPProtocolError(t *testing.T) {
	_, addr, _ := startRESPServer(t, core.Config{Dir: t.TempDir(), DeviceSize: 64 << 20})
	for _, raw := range []string{"*notanumber\r\n", "*1\r\n$-5\r\n", "*1\r\n:99\r\n"} {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write([]byte(raw)); err != nil {
			t.Fatal(err)
		}
		reply, _ := io.ReadAll(conn)
		conn.Close()
		if !bytes.HasPrefix(reply, []byte("-ERR protocol error")) {
			t.Fatalf("raw %q -> %q, want a protocol error then close", raw, reply)
		}
	}

	// A fresh session still works afterwards.
	c := respDial(t, addr)
	defer c.conn.Close()
	if got := c.status(t, "PING"); got != "PONG" {
		t.Fatalf("PING after protocol errors -> %q", got)
	}
}

// TestLineMSETSpaces pins the line protocol's documented limitation:
// values with spaces mis-tokenize into an odd argument count, and the
// error now names the limitation and the escape hatch instead of a bare
// usage line.
func TestLineMSETSpaces(t *testing.T) {
	_, _, addr := startServer(t, core.Config{Dir: t.TempDir(), DeviceSize: 64 << 20})
	c := dial(t, addr)
	defer c.conn.Close()
	got := c.cmd(t, "MSET k1 value with spaces inside")
	if !strings.HasPrefix(got, "ERROR") || !strings.Contains(got, "cannot contain spaces") || !strings.Contains(got, "RESP") {
		t.Fatalf("MSET with spaces -> %q, want an error naming the limitation and the RESP port", got)
	}
	// Even-argument MSET still works, and SET (lineSplit) keeps spaces.
	if got := c.cmd(t, "MSET k1 v1 k2 v2"); got != "OK" {
		t.Fatalf("MSET -> %q", got)
	}
	if got := c.cmd(t, "SET k3 spaced value here"); got != "OK" {
		t.Fatalf("SET -> %q", got)
	}
	if got := c.cmd(t, "GET k3"); got != "VALUE spaced value here" {
		t.Fatalf("GET -> %q", got)
	}
}
