package kvserve

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestConnectionChurn is the regression for the slot-exhaustion bug: a
// server with Threads:8 must serve 4x that many sequential connections
// without ever answering ErrTooManyThreads, because each disconnect
// returns its leased log slot to the pool.
func TestConnectionChurn(t *testing.T) {
	_, pm, addr := startServer(t, core.Config{
		Dir: t.TempDir(), DeviceSize: 128 << 20, Threads: 8,
	})
	const conns = 4 * 8
	for i := 0; i < conns; i++ {
		c := dial(t, addr)
		if got := c.cmd(t, fmt.Sprintf("SET churn%d v%d", i, i)); got != "OK" {
			t.Fatalf("conn %d SET -> %q", i, got)
		}
		if got := c.cmd(t, fmt.Sprintf("GET churn%d", i)); got != "VALUE v"+fmt.Sprint(i) {
			t.Fatalf("conn %d GET -> %q", i, got)
		}
		if got := c.cmd(t, "QUIT"); got != "BYE" {
			t.Fatalf("conn %d QUIT -> %q", i, got)
		}
		c.conn.Close()
	}
	// One more connection proves the pool is still healthy, and reads
	// back a value written by an early, long-closed session.
	c := dial(t, addr)
	if got := c.cmd(t, "GET churn0"); got != "VALUE v0" {
		t.Fatalf("GET churn0 after churn -> %q", got)
	}
	c.conn.Close()
	_ = pm
}

// TestDelCollision pins the DEL collision fix: with a hash that maps
// every key to one tree slot, DEL of a never-stored key must answer
// MISSING and leave the stored record intact, because the server now
// compares the stored key before deleting.
func TestDelCollision(t *testing.T) {
	srv, _, addr := startServer(t, core.Config{Dir: t.TempDir(), DeviceSize: 64 << 20})
	srv.hash = func(string) uint64 { return 42 }
	c := dial(t, addr)
	if got := c.cmd(t, "SET alpha one"); got != "OK" {
		t.Fatalf("SET -> %q", got)
	}
	// "beta" hashes to alpha's slot. The old hash-only DEL destroyed
	// alpha's record and answered OK here.
	if got := c.cmd(t, "DEL beta"); got != "MISSING" {
		t.Fatalf("DEL of colliding absent key -> %q, want MISSING", got)
	}
	if got := c.cmd(t, "GET alpha"); got != "VALUE one" {
		t.Fatalf("GET alpha after colliding DEL -> %q", got)
	}
	// GET through the collision also answers MISSING, not alpha's value.
	if got := c.cmd(t, "GET beta"); got != "MISSING" {
		t.Fatalf("GET of colliding absent key -> %q", got)
	}
	// Deleting the real key still works.
	if got := c.cmd(t, "DEL alpha"); got != "OK" {
		t.Fatalf("DEL alpha -> %q", got)
	}
}

// TestSetCollision pins the SET clobber fix: with a hash that maps
// every key to one tree slot, SET of a second key must answer ERROR and
// leave the first key's record intact — the old hash-only put silently
// destroyed it and answered OK. Overwriting the same key still works.
func TestSetCollision(t *testing.T) {
	srv, _, addr := startServer(t, core.Config{Dir: t.TempDir(), DeviceSize: 64 << 20})
	srv.hash = func(string) uint64 { return 42 }
	c := dial(t, addr)
	if got := c.cmd(t, "SET alpha one"); got != "OK" {
		t.Fatalf("SET alpha -> %q", got)
	}
	if got := c.cmd(t, "SET beta two"); !strings.HasPrefix(got, "ERROR hash collision") {
		t.Fatalf("SET of colliding key -> %q, want ERROR hash collision", got)
	}
	if got := c.cmd(t, "GET alpha"); got != "VALUE one" {
		t.Fatalf("GET alpha after colliding SET -> %q", got)
	}
	if got := c.cmd(t, "MSET beta x"); !strings.HasPrefix(got, "ERROR hash collision") {
		t.Fatalf("MSET of colliding key -> %q, want ERROR hash collision", got)
	}
	if got := c.cmd(t, "GET alpha"); got != "VALUE one" {
		t.Fatalf("GET alpha after colliding MSET -> %q", got)
	}
	if got := c.cmd(t, "SET alpha updated"); got != "OK" {
		t.Fatalf("same-key SET update -> %q", got)
	}
	if got := c.cmd(t, "GET alpha"); got != "VALUE updated" {
		t.Fatalf("GET alpha after update -> %q", got)
	}
}

// TestLineTooLong sends a command line beyond the scanner cap and
// expects an explicit protocol error, not a silent disconnect.
func TestLineTooLong(t *testing.T) {
	_, _, addr := startServer(t, core.Config{Dir: t.TempDir(), DeviceSize: 64 << 20})
	errsBefore := telErrs.Value()
	c := dial(t, addr)
	huge := strings.Repeat("x", 70<<10)
	if _, err := fmt.Fprintf(c.conn, "SET big %s\n", huge); err != nil {
		t.Fatal(err)
	}
	reply, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatalf("read reply: %v", err)
	}
	if reply != "ERROR line too long\n" {
		t.Fatalf("oversized line -> %q", reply)
	}
	// The scanner cannot resync mid-line, so the server ends the session.
	if _, err := c.r.ReadString('\n'); err == nil {
		t.Fatal("connection stayed open after unrecoverable protocol error")
	}
	if got := telErrs.Value(); got <= errsBefore {
		t.Fatalf("kvserve_errors_total did not count the overlong line (%d -> %d)", errsBefore, got)
	}
}

// TestOversizedKeyAndValueRejected covers the encodeKV bound fix: keys
// beyond the record header's reach and values beyond the value cap are
// rejected with ERROR instead of corrupting the record encoding.
func TestOversizedKeyAndValueRejected(t *testing.T) {
	_, _, addr := startServer(t, core.Config{Dir: t.TempDir(), DeviceSize: 64 << 20})
	c := dial(t, addr)
	longKey := strings.Repeat("k", MaxKeyLen+1)
	if got := c.cmd(t, "SET "+longKey+" v"); !strings.HasPrefix(got, "ERROR key too long") {
		t.Fatalf("oversized key -> %q", got)
	}
	longVal := strings.Repeat("v", MaxValueLen+1)
	if got := c.cmd(t, "SET k "+longVal); !strings.HasPrefix(got, "ERROR value too long") {
		t.Fatalf("oversized value -> %q", got)
	}
	// A maximal legal key still round-trips.
	okKey := strings.Repeat("k", MaxKeyLen)
	if got := c.cmd(t, "SET "+okKey+" edge"); got != "OK" {
		t.Fatalf("max-size key SET -> %q", got)
	}
	if got := c.cmd(t, "GET "+okKey); got != "VALUE edge" {
		t.Fatalf("max-size key GET -> %q", got)
	}
}
