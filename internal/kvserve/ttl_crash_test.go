package kvserve

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/crashpoint"
	"repro/internal/mtm"
	"repro/internal/scm"
)

// ttlCrashBase is the scripted clock's epoch for the crash exploration.
const ttlCrashBase = int64(1) << 40

// ttlStep is one step of the TTL crash workload: a command (RESP-shaped
// argv, so SET EX is reachable) or a wheel sweep, then a scripted clock
// advance. The advance happens after the command is acknowledged, so
// every replay sees the identical deadline arithmetic.
type ttlStep struct {
	args []string      // nil: run a sweep instead of a command
	adv  time.Duration // clock advance after the step is acknowledged
}

// ttlCrashScript exercises every deadline transition under crash points:
// stamping (SET EX, EXPIRE), clearing (PERSIST, overwrite), passing
// (clock advance), and physical reclamation (sweep).
var ttlCrashScript = []ttlStep{
	{args: []string{"SET", "a", "va"}},
	{args: []string{"SET", "b", "vb", "EX", "5"}},
	{args: []string{"SET", "c", "vc", "EX", "1000"}},
	{args: []string{"EXPIRE", "a", "8"}, adv: 10 * time.Second}, // a and b are now past due
	{args: nil}, // sweep reclaims a and b
	{args: []string{"SET", "d", "vd"}},
	{args: []string{"PERSIST", "c"}},
	{args: []string{"SET", "b", "vb2"}}, // fresh b, no deadline
}

// ttlCrashKeys is every key the script touches.
var ttlCrashKeys = []string{"a", "b", "c", "d"}

type ttlModelRec struct {
	val string
	exp int64
}

// ttlClockAfter returns the scripted clock's value once m steps have
// been acknowledged (the advance of the m-th step not yet applied when a
// crash lands inside it — but crash points only fire inside commands, so
// the clock at step m is exactly base plus the first m advances... of the
// acknowledged steps).
func ttlClockAfter(m int) int64 {
	now := ttlCrashBase
	for i := 0; i < m && i < len(ttlCrashScript); i++ {
		now += int64(ttlCrashScript[i].adv)
	}
	return now
}

// ttlModelAfter folds the first m steps into the expected record map,
// mirroring the engine's visibility rules: EXPIRE and PERSIST only touch
// keys that are live at the step's clock, SET always overwrites, and a
// sweep changes nothing visible.
func ttlModelAfter(m int) map[string]ttlModelRec {
	st := map[string]ttlModelRec{}
	now := ttlCrashBase
	live := func(k string) (ttlModelRec, bool) {
		r, ok := st[k]
		if !ok || (r.exp != 0 && r.exp <= now) {
			return ttlModelRec{}, false
		}
		return r, true
	}
	for i := 0; i < m && i < len(ttlCrashScript); i++ {
		stp := ttlCrashScript[i]
		if stp.args != nil {
			switch stp.args[0] {
			case "SET":
				exp := int64(0)
				if len(stp.args) == 5 {
					n, _ := strconv.ParseInt(stp.args[4], 10, 64)
					exp = now + n*int64(time.Second)
				}
				st[stp.args[1]] = ttlModelRec{val: stp.args[2], exp: exp}
			case "EXPIRE":
				if r, ok := live(stp.args[1]); ok {
					n, _ := strconv.ParseInt(stp.args[2], 10, 64)
					r.exp = now + n*int64(time.Second)
					st[stp.args[1]] = r
				}
			case "PERSIST":
				if r, ok := live(stp.args[1]); ok {
					r.exp = 0
					st[stp.args[1]] = r
				}
			}
		}
		now += int64(stp.adv)
	}
	return st
}

// ttlWantReply is the expected GET reply for key k under model state st
// at instant now.
func ttlWantReply(st map[string]ttlModelRec, k string, now int64) string {
	if r, ok := st[k]; ok && (r.exp == 0 || r.exp > now) {
		return "VALUE " + r.val
	}
	return "MISSING"
}

// TestCrashPointsTTL explores crash points of the TTL machinery: record
// deadline and wheel entry are written in one transaction, sweeps retire
// entries atomically with their records, and recovery re-arms the
// sweeper. The oracle, checked after every crash against the scripted
// clock: an expired key never resurrects, an unexpired key never
// vanishes — the store matches the model after done or done+1 steps,
// before AND after a full post-recovery sweep.
func TestCrashPointsTTL(t *testing.T) {
	workload := func() (*crashpoint.Run, error) {
		cfg := core.Config{DeviceSize: 8 << 20, HeapSize: 256 << 10, Threads: 2}
		dev, err := scm.Open(scm.Config{Size: cfg.DeviceSize, Mode: scm.DelayOff})
		if err != nil {
			return nil, err
		}
		if cfg.Dir, err = os.MkdirTemp("", "kvserve-ttlcrash-*"); err != nil {
			return nil, err
		}
		done := 0
		return &crashpoint.Run{
			Dev: dev,
			Body: func() error {
				pm, err := core.Attach(dev, cfg)
				if err != nil {
					return err
				}
				s, err := New(pm)
				if err != nil {
					return err
				}
				now := ttlCrashBase
				s.now = func() int64 { return now }
				th, err := pm.NewThread()
				if err != nil {
					return err
				}
				sess := &session{s: s, th: th}
				for i, stp := range ttlCrashScript {
					if stp.args == nil {
						if _, err := s.sweepAll(now); err != nil {
							return fmt.Errorf("sweep at step %d: %w", i, err)
						}
					} else if reply := run(s, sess, th, stp.args...); strings.HasPrefix(reply, "ERROR") {
						return fmt.Errorf("%v: %s", stp.args, reply)
					}
					done = i + 1
					now += int64(stp.adv)
				}
				return nil
			},
			Check: func() error {
				defer os.RemoveAll(cfg.Dir)
				pm, err := core.Attach(dev, cfg)
				if err != nil {
					return fmt.Errorf("stack not reopenable after %d acked steps: %w", done, err)
				}
				s, err := New(pm)
				if err != nil {
					return err
				}
				checkNow := ttlClockAfter(done)
				s.now = func() int64 { return checkNow }
				th, err := pm.NewThread()
				if err != nil {
					return err
				}
				sess := &session{s: s, th: th}
				if err := th.Atomic(func(tx *mtm.Tx) error {
					return s.tree.CheckInvariants(tx)
				}); err != nil {
					return fmt.Errorf("B+ tree invariants after %d acked steps: %w", done, err)
				}
				// The visible store must equal the model after done or done+1
				// steps, judged at the recovered clock.
				match := func(m int) string {
					want := ttlModelAfter(m)
					for _, k := range ttlCrashKeys {
						wantReply := ttlWantReply(want, k, checkNow)
						if got := run(s, sess, th, "GET", k); got != wantReply {
							return fmt.Sprintf("key %q: got %q, want %q at %d applied steps", k, got, wantReply, m)
						}
					}
					return ""
				}
				var lastDiff string
				matched := -1
				for _, m := range []int{done, done + 1} {
					if m > len(ttlCrashScript) {
						continue
					}
					if diff := match(m); diff == "" {
						matched = m
						break
					} else {
						lastDiff = diff
					}
				}
				if matched < 0 {
					return fmt.Errorf("store matches neither %d nor %d applied steps: %s", done, done+1, lastDiff)
				}
				// Recovery must leave the wheel sweepable, and sweeping must
				// not change what is visible: it only reclaims what the
				// deadlines already hide.
				if _, err := s.sweepAll(checkNow); err != nil {
					return fmt.Errorf("post-recovery sweep: %w", err)
				}
				if diff := match(matched); diff != "" {
					return fmt.Errorf("post-recovery sweep changed visible state: %s", diff)
				}
				if err := th.Atomic(func(tx *mtm.Tx) error {
					return s.tree.CheckInvariants(tx)
				}); err != nil {
					return fmt.Errorf("B+ tree invariants after post-recovery sweep: %w", err)
				}
				return nil
			},
		}, nil
	}

	rep, err := crashpoint.Explore(workload, crashpoint.Options{
		Schedule: crashpoint.TestSchedule(testing.Short(), 24),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		for _, f := range rep.Failures {
			t.Errorf("%v", f)
		}
		t.Fatalf("TTL expiry oracle failed at %d of %d crash points (%s)",
			len(rep.Failures), rep.Points, rep)
	}
	t.Logf("kvserve ttl: %s", rep)
}
