package kvserve

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/pds"
	"repro/internal/scm"
)

// modTestServer attaches a MOD-backed server over dev (reused across
// simulated crashes).
func modTestServer(t *testing.T, dev *scm.Device, dir string) (*core.PM, *Server) {
	t.Helper()
	pm, err := core.Attach(dev, core.Config{DeviceSize: 16 << 20, HeapSize: 1 << 20, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewBackend(pm, pds.BackendMOD)
	if err != nil {
		t.Fatal(err)
	}
	return pm, s
}

// TestModBackendServer drives the command engine on the MOD shadow-update
// backend: the full string/hash surface works thread-free, TTL commands
// are refused with a clear error, STATS reports the single-fence ratio,
// synced state survives a crash, and an instance-wide ModSweep reclaims
// superseded shadow blocks without disturbing live data.
func TestModBackendServer(t *testing.T) {
	dev, err := scm.Open(scm.Config{Size: 16 << 20, Mode: scm.DelayOff})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	pm, s := modTestServer(t, dev, dir)
	sess := &session{s: s}

	expect := func(line, want string) {
		t.Helper()
		if got := s.dispatch(sess, nil, line); got != want {
			t.Fatalf("%q: got %q, want %q", line, got, want)
		}
	}
	expect("SET alpha one", "OK")
	expect("SET beta two words here", "OK")
	expect("GET alpha", "VALUE one")
	expect("GET beta", "VALUE two words here")
	expect("MSET k1 v1 k2 v2 k3 v3", "OK")
	expect("MGET k1 nosuch k3", "VALUE v1\nMISSING\nVALUE v3")
	expect("DEL k2", "OK")
	expect("DEL k2", "MISSING")
	expect("COUNT", "COUNT 4")
	expect("SET alpha rewritten", "OK")
	expect("GET alpha", "VALUE rewritten")

	// Hash records ride the same putRecord path.
	if got := s.dispatch(sess, nil, "HSET h f1 x"); got != "1" {
		t.Fatalf("HSET: %q", got)
	}
	if got := s.dispatch(sess, nil, "HGET h f1"); got != "VALUE x" {
		t.Fatalf("HGET: %q", got)
	}

	// TTL-carrying commands are refused on this backend; plain TTL reads
	// still answer (no deadline: -1).
	for _, line := range []string{"EXPIRE alpha 100", "PEXPIRE alpha 100"} {
		if got := s.dispatch(sess, nil, line); !strings.HasPrefix(got, "ERROR") ||
			!strings.Contains(got, "mod backend") {
			t.Fatalf("%q: got %q, want mod-backend refusal", line, got)
		}
	}
	expect("TTL alpha", "-1")

	stats := s.dispatch(sess, nil, "STATS")
	if !strings.Contains(stats, "backend=mod") || !strings.Contains(stats, "fences_per_op=1.00") {
		t.Fatalf("STATS missing mod fields: %s", stats)
	}

	// Deferred reclamation: superseded shadow paths are garbage until the
	// sweep, live data survives it, and a second sweep finds nothing.
	for i := 0; i < 40; i++ {
		expect(fmt.Sprintf("SET churn value%d", i), "OK")
	}
	rep, err := pm.ModSweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Freed == 0 {
		t.Fatal("sweep after 40 overwrites freed nothing")
	}
	expect("GET churn", "VALUE value39")
	expect("GET alpha", "VALUE rewritten")
	rep2, err := pm.ModSweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Freed != 0 {
		t.Fatalf("second sweep freed %d blocks; first was incomplete", rep2.Freed)
	}

	// Clean shutdown syncs the last root swap; a crash then loses nothing.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	dev.Crash(scm.DropAll{})
	_, s2 := modTestServer(t, dev, dir)
	sess2 := &session{s: s2}
	for line, want := range map[string]string{
		"GET alpha": "VALUE rewritten",
		"GET beta":  "VALUE two words here",
		"GET churn": "VALUE value39",
		"GET k2":    "MISSING",
		"COUNT":     "COUNT 6",
	} {
		if got := s2.dispatch(sess2, nil, line); got != want {
			t.Fatalf("after crash, %q: got %q, want %q", line, got, want)
		}
	}
}
