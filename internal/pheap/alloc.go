package pheap

import (
	"errors"
	"fmt"
	"math/bits"
	"sync/atomic"

	"repro/internal/pmem"
	"repro/internal/rawl"
	"repro/internal/telemetry"
)

// Heap activity metrics, aggregated over every heap in the process.
var (
	telAllocs = telemetry.NewCounter("pheap_allocs_total",
		"persistent allocations (pmalloc)")
	telAllocBytes = telemetry.NewCounter("pheap_alloc_bytes_total",
		"bytes requested from the persistent heap")
	telFrees = telemetry.NewCounter("pheap_frees_total",
		"persistent frees (pfree)")
)

// Redo record opcodes. Each record starts with the global sequence number,
// then the opcode, then operands; replay applies records across all lane
// logs in sequence order.
const (
	opSmallAlloc = 1 // sb, bit, ptrAddr, blockAddr
	opSmallFree  = 2 // sb, bit, ptrAddr
	opLargeAlloc = 3 // chunkOff, oldSize, takenSize, ptrAddr
	opLargeFree  = 4 // chunkOff, ptrAddr
)

// ErrOutOfMemory reports that the heap cannot satisfy an allocation.
var ErrOutOfMemory = errors.New("pheap: out of persistent memory")

// ErrDoubleFree reports a pfree of memory that is not allocated.
var ErrDoubleFree = errors.New("pheap: double free")

var allocLaneCounter atomic.Uint64

// Allocator is a per-goroutine handle to the heap. Each allocator is bound
// to a lane (its redo log plus its active superblocks); allocators on
// different lanes allocate mostly without contending.
type Allocator struct {
	h    *Heap
	lane *lane
	idx  int8
}

// NewAllocator returns an allocator handle bound to the next lane,
// round-robin. Handles are cheap; create one per worker goroutine.
func (h *Heap) NewAllocator() *Allocator {
	i := int(allocLaneCounter.Add(1)-1) % h.numLanes
	return &Allocator{h: h, lane: h.lanes[i], idx: int8(i)}
}

// PMalloc allocates size bytes of persistent memory and durably stores the
// block's address through ptr, a persistent pointer — the paper's
// leak-avoidance contract: "the pmalloc call takes a persistent pointer as
// an argument to ensure that memory is not leaked if the system fails just
// after an allocation." Returns the block address.
func (a *Allocator) PMalloc(size int64, ptr pmem.Addr) (pmem.Addr, error) {
	if size <= 0 {
		return pmem.Nil, fmt.Errorf("pheap: pmalloc of %d bytes", size)
	}
	if !ptr.IsPersistent() {
		return pmem.Nil, fmt.Errorf("pheap: pmalloc destination %v is not persistent", ptr)
	}
	sp := telemetry.SpanBegin(telemetry.PhaseAlloc, uint64(a.idx), 0)
	defer sp.End()
	block, err := a.smallOrLargeAlloc(size, ptr)
	if err == nil {
		telAllocs.Inc()
		telAllocBytes.Add(uint64(size))
		if telemetry.TraceEnabled() {
			telemetry.Emit(telemetry.EvAlloc, uint64(a.idx), uint64(block), uint64(size))
		}
	}
	return block, err
}

func (a *Allocator) smallOrLargeAlloc(size int64, ptr pmem.Addr) (pmem.Addr, error) {
	if size > MaxSmall {
		return a.largeAlloc(size, ptr)
	}
	return a.smallAlloc(size, ptr)
}

// PFree deallocates the block pointed to by the persistent pointer at ptr
// and durably nullifies the pointer, "to ensure that the persistent
// pointer does not continue to point to the deallocated chunk of memory if
// the system fails just after a deallocation" (§4.3).
func (a *Allocator) PFree(ptr pmem.Addr) error {
	if !ptr.IsPersistent() {
		return fmt.Errorf("pheap: pfree of non-persistent pointer %v", ptr)
	}
	sp := telemetry.SpanBegin(telemetry.PhaseFree, uint64(a.idx), 0)
	defer sp.End()
	a.lane.mu.Lock()
	defer a.lane.mu.Unlock()
	block := pmem.Addr(a.lane.mem.LoadU64(ptr))
	if block == pmem.Nil {
		return errors.New("pheap: pfree of nil pointer")
	}
	h := a.h
	sbEnd := h.sbData.Add(h.sbCount * SuperblockSize)
	var err error
	switch {
	case block >= h.sbData && block < sbEnd:
		err = a.smallFree(block, ptr)
	case block >= h.largeAt.Add(chunkHdr) && block < h.largeAt.Add(h.largeSz):
		err = a.largeFree(block, ptr)
	default:
		return fmt.Errorf("pheap: pfree of foreign address %v", block)
	}
	if err == nil {
		telFrees.Inc()
		if telemetry.TraceEnabled() {
			telemetry.Emit(telemetry.EvFree, uint64(a.idx), uint64(block), 0)
		}
	}
	return err
}

// UsableSize reports the capacity of the block at addr (which must be a
// live allocation).
func (h *Heap) UsableSize(addr pmem.Addr) (int64, error) {
	sbEnd := h.sbData.Add(h.sbCount * SuperblockSize)
	if addr >= h.sbData && addr < sbEnd {
		sb := int32(addr.Sub(h.sbData) / SuperblockSize)
		st := &h.sbState[sb]
		st.mu.Lock()
		defer st.mu.Unlock()
		if st.class < 0 {
			return 0, errors.New("pheap: address in unassigned superblock")
		}
		return classSize(int(st.class)), nil
	}
	if addr >= h.largeAt.Add(chunkHdr) && addr < h.largeAt.Add(h.largeSz) {
		h.largeMu.Lock()
		defer h.largeMu.Unlock()
		hdr := h.largeMem.LoadU64(addr.Add(-chunkHdr))
		size, inUse := unpackChunk(hdr)
		if !inUse {
			return 0, errors.New("pheap: address not allocated")
		}
		return size - chunkHdr, nil
	}
	return 0, fmt.Errorf("pheap: foreign address %v", addr)
}

func (a *Allocator) smallAlloc(size int64, ptr pmem.Addr) (pmem.Addr, error) {
	h := a.h
	c := classFor(size)
	a.lane.mu.Lock()
	defer a.lane.mu.Unlock()

	// Find a superblock with a free block: the lane's active one, else
	// adopt a partial or free superblock. Returns with st.mu held.
	var sb int32
	var st *sbState
	for {
		sb = a.lane.active[c]
		if sb >= 0 {
			st = &h.sbState[sb]
			st.mu.Lock()
			if st.free > 0 {
				break
			}
			// Exhausted: drop ownership and find another.
			st.owner = -1
			st.mu.Unlock()
			a.lane.active[c] = -1
			continue
		}
		var ok bool
		sb, ok = h.adoptSB(c, a.idx)
		if !ok {
			return pmem.Nil, ErrOutOfMemory
		}
		a.lane.active[c] = sb
	}
	defer st.mu.Unlock()

	bs := classSize(c)
	blocks := int(SuperblockSize / bs)
	bit := -1
	for w := 0; w*64 < blocks; w++ {
		v := st.bitmap[w]
		if v != ^uint64(0) {
			b := bits.TrailingZeros64(^v)
			if w*64+b < blocks {
				bit = w*64 + b
				break
			}
		}
	}
	if bit < 0 {
		// free count said otherwise; corrupted volatile state.
		panic("pheap: free count and bitmap disagree")
	}
	block := h.sbDataAddr(sb).Add(int64(bit) * bs)

	// Log the redo record, make it durable, then apply: one SCM write to
	// set the bitmap bit, one to store the destination pointer.
	seq := h.seq.Add(1)
	a.appendLog([]uint64{seq, opSmallAlloc, uint64(sb), uint64(bit), uint64(ptr), uint64(block)})
	w, mask := bit/64, uint64(1)<<(bit%64)
	a.lane.mem.WTStoreU64(h.sbMetaAddr(sb).Add(16+int64(w)*8), st.bitmap[w]|mask)
	a.lane.mem.WTStoreU64(ptr, uint64(block))
	a.lane.mem.Fence()
	// Retire the record now that its effect is durable, before the block
	// is published. A record left in an idle lane's log would be replayed
	// at the next Open over state that other lanes have since advanced
	// (and truncated), un-doing their applied operations.
	a.lane.log.TruncateAll()

	st.bitmap[w] |= mask
	st.free--
	return block, nil
}

func (a *Allocator) smallFree(block, ptr pmem.Addr) error {
	h := a.h
	sb := int32(block.Sub(h.sbData) / SuperblockSize)
	st := &h.sbState[sb]
	st.mu.Lock()
	if st.class < 0 {
		st.mu.Unlock()
		return fmt.Errorf("pheap: pfree of %v in unassigned superblock", block)
	}
	bs := classSize(int(st.class))
	off := block.Sub(h.sbDataAddr(sb))
	if off%bs != 0 {
		st.mu.Unlock()
		return fmt.Errorf("pheap: pfree of misaligned address %v", block)
	}
	bit := int(off / bs)
	w, mask := bit/64, uint64(1)<<(bit%64)
	if st.bitmap[w]&mask == 0 {
		st.mu.Unlock()
		return ErrDoubleFree
	}

	seq := h.seq.Add(1)
	a.appendLog([]uint64{seq, opSmallFree, uint64(sb), uint64(bit), uint64(ptr)})
	a.lane.mem.WTStoreU64(h.sbMetaAddr(sb).Add(16+int64(w)*8), st.bitmap[w]&^mask)
	a.lane.mem.WTStoreU64(ptr, 0)
	a.lane.mem.Fence()
	// Retire before the bit is published as free (see smallAlloc).
	a.lane.log.TruncateAll()

	st.bitmap[w] &^= mask
	st.free++
	wasFull := st.free == 1
	becameEmpty := int64(st.free) == SuperblockSize/bs && st.owner == -1
	class := int(st.class)
	st.mu.Unlock()

	// Publish availability outside st.mu (lock order: sbMu before st.mu).
	if becameEmpty || wasFull {
		h.sbMu.Lock()
		if becameEmpty {
			h.freeSBs = append(h.freeSBs, sb)
		} else {
			h.partial[class] = append(h.partial[class], sb)
		}
		h.sbMu.Unlock()
	}
	return nil
}

// adoptSB finds a superblock for class c and lane: a partially-used one of
// the same class, else a fully-free one (assigning its class durably).
func (h *Heap) adoptSB(c int, laneIdx int8) (int32, bool) {
	h.sbMu.Lock()
	defer h.sbMu.Unlock()

	lst := h.partial[c]
	for len(lst) > 0 {
		sb := lst[len(lst)-1]
		lst = lst[:len(lst)-1]
		st := &h.sbState[sb]
		st.mu.Lock()
		if st.owner == -1 && int(st.class) == c && st.free > 0 {
			st.owner = laneIdx
			st.mu.Unlock()
			h.partial[c] = lst
			return sb, true
		}
		st.mu.Unlock() // stale entry: skip
	}
	h.partial[c] = lst

	for len(h.freeSBs) > 0 {
		sb := h.freeSBs[len(h.freeSBs)-1]
		h.freeSBs = h.freeSBs[:len(h.freeSBs)-1]
		st := &h.sbState[sb]
		st.mu.Lock()
		empty := st.class < 0 || int64(st.free) == SuperblockSize/classSize(int(st.class))
		if st.owner == -1 && empty {
			bs := classSize(c)
			// Durably assign the class. The persistent bitmap is zeroed
			// first: a torn shadow adoption (shadow.go) can leave stray
			// bits in a superblock whose class word never became durable,
			// and those bits must not survive into the new class.
			meta := h.sbMetaAddr(sb)
			for w := 0; w < bitmapWords; w++ {
				h.mem.WTStoreU64(meta.Add(16+int64(w)*8), 0)
			}
			h.mem.WTStoreU64(meta, uint64(bs))
			h.mem.Fence()
			st.class = int8(c)
			st.free = int32(SuperblockSize / bs)
			st.owner = laneIdx
			for i := range st.bitmap {
				st.bitmap[i] = 0
			}
			st.mu.Unlock()
			return sb, true
		}
		st.mu.Unlock()
	}
	return 0, false
}

// appendLog appends a redo record to the lane log, truncating first if the
// log is full (every record already applied is safe to drop), and makes
// it durable with the tornbit log's single fence.
func (a *Allocator) appendLog(rec []uint64) {
	if _, err := a.lane.log.Append(rec); err != nil {
		if err != rawl.ErrLogFull {
			panic(fmt.Sprintf("pheap: log append: %v", err))
		}
		a.lane.log.TruncateAll()
		if _, err := a.lane.log.Append(rec); err != nil {
			panic(fmt.Sprintf("pheap: log append after truncate: %v", err))
		}
	}
	a.lane.log.Flush()
}

// replay applies one redo record during Open. Each lane log holds at most
// the one record whose application may have been cut short by a crash
// (records are retired as soon as their effect is fenced), so replay
// re-applies in-flight operations only; re-applying an operation whose
// effect already reached SCM is idempotent.
func (h *Heap) replay(rec []uint64) error {
	if len(rec) < 2 {
		return errors.New("pheap: short redo record")
	}
	switch rec[1] {
	case opSmallAlloc:
		if len(rec) != 6 {
			return errors.New("pheap: bad smallAlloc record")
		}
		sb, bit, ptr, block := int32(rec[2]), int(rec[3]), pmem.Addr(rec[4]), rec[5]
		if sb < 0 || int64(sb) >= h.sbCount || bit < 0 || bit >= maxBlocksPer {
			return errors.New("pheap: smallAlloc record out of range")
		}
		w, mask := bit/64, uint64(1)<<(bit%64)
		addr := h.sbMetaAddr(sb).Add(16 + int64(w)*8)
		h.mem.WTStoreU64(addr, h.mem.LoadU64(addr)|mask)
		h.mem.WTStoreU64(ptr, block)
		h.mem.Fence()
	case opSmallFree:
		if len(rec) != 5 {
			return errors.New("pheap: bad smallFree record")
		}
		sb, bit, ptr := int32(rec[2]), int(rec[3]), pmem.Addr(rec[4])
		if sb < 0 || int64(sb) >= h.sbCount || bit < 0 || bit >= maxBlocksPer {
			return errors.New("pheap: smallFree record out of range")
		}
		w, mask := bit/64, uint64(1)<<(bit%64)
		addr := h.sbMetaAddr(sb).Add(16 + int64(w)*8)
		h.mem.WTStoreU64(addr, h.mem.LoadU64(addr)&^mask)
		h.mem.WTStoreU64(ptr, 0)
		h.mem.Fence()
	case opLargeAlloc:
		if len(rec) != 6 {
			return errors.New("pheap: bad largeAlloc record")
		}
		off, oldSize, taken, ptr := int64(rec[2]), int64(rec[3]), int64(rec[4]), pmem.Addr(rec[5])
		if off < 0 || off+oldSize > h.largeSz || taken > oldSize {
			return errors.New("pheap: largeAlloc record out of range")
		}
		if taken < oldSize {
			h.mem.WTStoreU64(h.largeAt.Add(off+taken), packChunk(oldSize-taken, false))
		}
		h.mem.WTStoreU64(h.largeAt.Add(off), packChunk(taken, true))
		h.mem.WTStoreU64(ptr, uint64(h.largeAt.Add(off+chunkHdr)))
		h.mem.Fence()
	case opLargeFree:
		if len(rec) != 4 {
			return errors.New("pheap: bad largeFree record")
		}
		off, ptr := int64(rec[2]), pmem.Addr(rec[3])
		if off < 0 || off >= h.largeSz {
			return errors.New("pheap: largeFree record out of range")
		}
		size, _ := unpackChunk(h.mem.LoadU64(h.largeAt.Add(off)))
		h.mem.WTStoreU64(h.largeAt.Add(off), packChunk(size, false))
		h.mem.WTStoreU64(ptr, 0)
		h.mem.Fence()
	default:
		return fmt.Errorf("pheap: unknown redo opcode %d", rec[1])
	}
	return nil
}
