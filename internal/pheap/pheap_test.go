package pheap

import (
	"math/rand"
	"testing"

	"repro/internal/pmem"
	"repro/internal/region"
	"repro/internal/scm"
)

type env struct {
	dev  *scm.Device
	rt   *region.Runtime
	mem  *region.Mem
	heap *Heap
	// ptrs is a small array of persistent pointer slots for tests.
	ptrs pmem.Addr
}

func newEnv(t *testing.T, heapSize int64, cfg Config) *env {
	t.Helper()
	dev, err := scm.Open(scm.Config{Size: heapSize + 4<<20, Mode: scm.DelayOff})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := region.Open(dev, region.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	base, err := rt.PMap(heapSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Format(rt, base, heapSize, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ptrs, _, err := rt.Static("testptrs", 8*256)
	if err != nil {
		t.Fatal(err)
	}
	return &env{dev: dev, rt: rt, mem: rt.NewMemory(), heap: h, ptrs: ptrs}
}

func (e *env) ptr(i int) pmem.Addr { return e.ptrs.Add(int64(i) * 8) }

// reopenHeap simulates a restart: crash the device, rebuild the runtime,
// and Open the heap (replaying logs and scavenging).
func (e *env) reopenHeap(t *testing.T, policy scm.CrashPolicy) {
	t.Helper()
	e.dev.Crash(policy)
	h, err := Open(e.rt, e.heap.base)
	if err != nil {
		t.Fatal(err)
	}
	e.heap = h
}

func TestFormatTooSmallRejected(t *testing.T) {
	dev, err := scm.Open(scm.Config{Size: 8 << 20, Mode: scm.DelayOff})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := region.Open(dev, region.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	base, err := rt.PMap(1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Format(rt, base, 1024, Config{}); err == nil {
		t.Fatal("expected error for tiny heap")
	}
}

func TestPMallocRequiresPersistentPtr(t *testing.T) {
	e := newEnv(t, 2<<20, Config{Lanes: 1})
	a := e.heap.NewAllocator()
	if _, err := a.PMalloc(64, pmem.Addr(12345)); err == nil {
		t.Fatal("expected error for volatile destination")
	}
	if _, err := a.PMalloc(0, e.ptr(0)); err == nil {
		t.Fatal("expected error for zero size")
	}
}

func TestPMallocStoresPointerDurably(t *testing.T) {
	e := newEnv(t, 2<<20, Config{Lanes: 1})
	a := e.heap.NewAllocator()
	block, err := a.PMalloc(64, e.ptr(0))
	if err != nil {
		t.Fatal(err)
	}
	if block == pmem.Nil {
		t.Fatal("nil block")
	}
	if got := pmem.Addr(e.mem.LoadU64(e.ptr(0))); got != block {
		t.Fatalf("ptr = %v, want %v", got, block)
	}
	// The pointer write must survive an immediate crash.
	e.dev.Crash(scm.DropAll{})
	if got := pmem.Addr(e.mem.LoadU64(e.ptr(0))); got != block {
		t.Fatalf("ptr after crash = %v, want %v", got, block)
	}
}

func TestDistinctAllocationsDoNotOverlap(t *testing.T) {
	e := newEnv(t, 4<<20, Config{Lanes: 2})
	a := e.heap.NewAllocator()
	type alloc struct {
		addr pmem.Addr
		size int64
	}
	var allocs []alloc
	sizes := []int64{16, 24, 64, 100, 128, 500, 1024, 4096, 5000, 9000}
	for i := 0; i < 100; i++ {
		sz := sizes[i%len(sizes)]
		addr, err := a.PMalloc(sz, e.ptr(i%256))
		if err != nil {
			t.Fatalf("alloc %d (%d bytes): %v", i, sz, err)
		}
		us, err := e.heap.UsableSize(addr)
		if err != nil {
			t.Fatalf("UsableSize: %v", err)
		}
		if us < sz {
			t.Fatalf("usable %d < requested %d", us, sz)
		}
		allocs = append(allocs, alloc{addr, us})
	}
	for i := range allocs {
		for j := i + 1; j < len(allocs); j++ {
			a, b := allocs[i], allocs[j]
			if a.addr < b.addr.Add(b.size) && b.addr < a.addr.Add(a.size) {
				t.Fatalf("allocations %d and %d overlap: %v+%d vs %v+%d",
					i, j, a.addr, a.size, b.addr, b.size)
			}
		}
	}
}

func TestPFreeNullifiesPointer(t *testing.T) {
	e := newEnv(t, 2<<20, Config{Lanes: 1})
	a := e.heap.NewAllocator()
	if _, err := a.PMalloc(64, e.ptr(0)); err != nil {
		t.Fatal(err)
	}
	if err := a.PFree(e.ptr(0)); err != nil {
		t.Fatal(err)
	}
	if got := e.mem.LoadU64(e.ptr(0)); got != 0 {
		t.Fatalf("ptr after pfree = %#x", got)
	}
	if err := a.PFree(e.ptr(0)); err == nil {
		t.Fatal("pfree of nil pointer should fail")
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	e := newEnv(t, 2<<20, Config{Lanes: 1})
	a := e.heap.NewAllocator()
	block, err := a.PMalloc(64, e.ptr(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.PFree(e.ptr(0)); err != nil {
		t.Fatal(err)
	}
	// Re-point the slot at the freed block and free again.
	pmem.StoreDurable(e.mem, e.ptr(0), uint64(block))
	if err := a.PFree(e.ptr(0)); err != ErrDoubleFree {
		t.Fatalf("double free: %v", err)
	}
}

func TestBlockReuseAfterFree(t *testing.T) {
	e := newEnv(t, 2<<20, Config{Lanes: 1})
	a := e.heap.NewAllocator()
	first, err := a.PMalloc(64, e.ptr(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.PFree(e.ptr(0)); err != nil {
		t.Fatal(err)
	}
	second, err := a.PMalloc(64, e.ptr(1))
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Fatalf("freed block not reused: %v then %v", first, second)
	}
}

func TestAllocationsPersistAcrossReopen(t *testing.T) {
	e := newEnv(t, 4<<20, Config{Lanes: 2})
	a := e.heap.NewAllocator()
	want := map[int]pmem.Addr{}
	for i := 0; i < 50; i++ {
		addr, err := a.PMalloc(int64(16+i*8), e.ptr(i))
		if err != nil {
			t.Fatal(err)
		}
		pmem.StoreDurable(e.mem, addr, uint64(i)*31+7) // payload
		want[i] = addr
	}
	e.reopenHeap(t, scm.DropAll{})
	a2 := e.heap.NewAllocator()
	for i, addr := range want {
		if got := pmem.Addr(e.mem.LoadU64(e.ptr(i))); got != addr {
			t.Fatalf("ptr %d = %v, want %v", i, got, addr)
		}
		if got := e.mem.LoadU64(addr); got != uint64(i)*31+7 {
			t.Fatalf("payload %d = %d", i, got)
		}
	}
	// The reopened heap must not hand out memory overlapping live
	// allocations.
	for i := 50; i < 80; i++ {
		addr, err := a2.PMalloc(64, e.ptr(i))
		if err != nil {
			t.Fatal(err)
		}
		for j, old := range want {
			us, _ := e.heap.UsableSize(old)
			if addr < old.Add(us) && old < addr.Add(64) {
				t.Fatalf("new alloc %v overlaps surviving alloc %d at %v", addr, j, old)
			}
		}
	}
}

func TestLargeAllocSplitAndCoalesce(t *testing.T) {
	e := newEnv(t, 4<<20, Config{Lanes: 1})
	a := e.heap.NewAllocator()
	before := e.heap.Stats().LargeFreeBytes
	if _, err := a.PMalloc(100<<10, e.ptr(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.PMalloc(50<<10, e.ptr(1)); err != nil {
		t.Fatal(err)
	}
	if err := a.PFree(e.ptr(0)); err != nil {
		t.Fatal(err)
	}
	if err := a.PFree(e.ptr(1)); err != nil {
		t.Fatal(err)
	}
	after := e.heap.Stats().LargeFreeBytes
	if after != before {
		t.Fatalf("large free bytes %d -> %d: coalescing leaked", before, after)
	}
	// The whole area must be allocatable again as one block.
	if _, err := a.PMalloc(before-chunkHdr, e.ptr(2)); err != nil {
		t.Fatalf("cannot re-allocate coalesced area: %v", err)
	}
}

func TestLargeOOMReported(t *testing.T) {
	e := newEnv(t, 2<<20, Config{Lanes: 1})
	a := e.heap.NewAllocator()
	if _, err := a.PMalloc(1<<30, e.ptr(0)); err != ErrOutOfMemory {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
}

func TestSmallOOMWhenHeapExhausted(t *testing.T) {
	e := newEnv(t, MinSize(Config{Lanes: 1})+SuperblockSize, Config{Lanes: 1, LargeFraction: 0.01})
	a := e.heap.NewAllocator()
	var err error
	for i := 0; i < 100000; i++ {
		if _, err = a.PMalloc(4096, e.ptr(0)); err != nil {
			break
		}
	}
	if err != ErrOutOfMemory {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
}

func TestCrashAfterLogBeforeApplyReplays(t *testing.T) {
	// The redo discipline: once the log record is durable, the
	// allocation happens even if the bitmap/pointer writes were lost in
	// the crash. We simulate by crashing with KeepAll for the log (all
	// writes fenced anyway) — instead, test the general random-crash
	// invariant: after any crash, ptr and bitmap agree.
	for seed := int64(0); seed < 30; seed++ {
		e := newEnv(t, 2<<20, Config{Lanes: 1})
		a := e.heap.NewAllocator()
		// A few completed allocations.
		for i := 0; i < 5; i++ {
			if _, err := a.PMalloc(64, e.ptr(i)); err != nil {
				t.Fatal(err)
			}
		}
		e.reopenHeap(t, scm.NewRandomPolicy(seed))
		a2 := e.heap.NewAllocator()
		// Invariant: every non-nil pointer refers to an allocated
		// block (PFree succeeds exactly once).
		for i := 0; i < 5; i++ {
			if pmem.Addr(e.mem.LoadU64(e.ptr(i))) == pmem.Nil {
				continue
			}
			if err := a2.PFree(e.ptr(i)); err != nil {
				t.Fatalf("seed %d: pfree slot %d: %v", seed, i, err)
			}
		}
	}
}

func TestScavengeRebuildsCounts(t *testing.T) {
	e := newEnv(t, 4<<20, Config{Lanes: 1})
	a := e.heap.NewAllocator()
	for i := 0; i < 200; i++ {
		if _, err := a.PMalloc(32, e.ptr(i%256)); err != nil {
			t.Fatal(err)
		}
	}
	used := int64(0)
	for i := range e.heap.sbState {
		st := &e.heap.sbState[i]
		if st.class == int8(classFor(32)) {
			used += SuperblockSize/32 - int64(st.free)
		}
	}
	if used != 200 {
		t.Fatalf("used before reopen = %d", used)
	}
	e.reopenHeap(t, scm.DropAll{})
	used = 0
	for i := range e.heap.sbState {
		st := &e.heap.sbState[i]
		if st.class == int8(classFor(32)) {
			used += SuperblockSize/32 - int64(st.free)
		}
	}
	if used != 200 {
		t.Fatalf("used after scavenge = %d, want 200", used)
	}
	if e.heap.ScavengeTime() <= 0 {
		t.Fatal("scavenge time not recorded")
	}
}

func TestConcurrentAllocatorsStress(t *testing.T) {
	e := newEnv(t, 16<<20, Config{Lanes: 8})
	const workers = 8
	done := make(chan error, workers)
	slots, _, err := e.rt.Static("stress", 8*workers*64)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		go func(w int) {
			a := e.heap.NewAllocator()
			rng := rand.New(rand.NewSource(int64(w)))
			mySlots := slots.Add(int64(w) * 64 * 8)
			live := 0
			for i := 0; i < 2000; i++ {
				if live < 64 && (live == 0 || rng.Intn(2) == 0) {
					sz := int64(16 + rng.Intn(6000))
					if _, err := a.PMalloc(sz, mySlots.Add(int64(live)*8)); err != nil {
						done <- err
						return
					}
					live++
				} else {
					live--
					if err := a.PFree(mySlots.Add(int64(live) * 8)); err != nil {
						done <- err
						return
					}
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestQuickAllocFreeInvariant(t *testing.T) {
	// Property: after an arbitrary interleaving of allocs and frees, the
	// set of live blocks is exactly the set of non-nil pointers, and a
	// reopen preserves it.
	e := newEnv(t, 8<<20, Config{Lanes: 2})
	a := e.heap.NewAllocator()
	rng := rand.New(rand.NewSource(99))
	live := map[int]pmem.Addr{}
	for step := 0; step < 3000; step++ {
		i := rng.Intn(128)
		if _, ok := live[i]; ok {
			if err := a.PFree(e.ptr(i)); err != nil {
				t.Fatalf("step %d: pfree: %v", step, err)
			}
			delete(live, i)
		} else {
			sz := int64(16 + rng.Intn(8000))
			addr, err := a.PMalloc(sz, e.ptr(i))
			if err != nil {
				t.Fatalf("step %d: pmalloc(%d): %v", step, sz, err)
			}
			live[i] = addr
		}
	}
	e.reopenHeap(t, scm.DropAll{})
	for i, addr := range live {
		if got := pmem.Addr(e.mem.LoadU64(e.ptr(i))); got != addr {
			t.Fatalf("slot %d = %v, want %v", i, got, addr)
		}
	}
	// All live blocks freeable exactly once after reopen.
	a2 := e.heap.NewAllocator()
	for i := range live {
		if err := a2.PFree(e.ptr(i)); err != nil {
			t.Fatalf("pfree slot %d after reopen: %v", i, err)
		}
	}
}

// TestStaleLaneRecordNotReplayed is a regression test for a redo-log
// retirement bug: lane logs used to be truncated only when full, so an
// already-applied record (say a free) could sit in an idle lane's log
// while another lane reallocated the same block and then truncated its
// own log. Open's replay would re-apply the stale free over the newer
// state, marking a live block free — later surfacing as value aliasing
// or "pheap: double free". Records must be retired as soon as their
// effect is fenced, so a quiesced reopen replays nothing.
func TestStaleLaneRecordNotReplayed(t *testing.T) {
	e := newEnv(t, 8<<20, Config{Lanes: 2})
	a0 := &Allocator{h: e.heap, lane: e.heap.lanes[0], idx: 0}
	a1 := &Allocator{h: e.heap, lane: e.heap.lanes[1], idx: 1}

	// Lane 0 allocates a block; lane 1 frees it (frees go to the block's
	// home superblock from whichever lane issues them), putting the free's
	// redo record in lane 1's log. Lane 1 then goes idle.
	x, err := a0.PMalloc(64, e.ptr(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := a1.PFree(e.ptr(0)); err != nil {
		t.Fatal(err)
	}

	// Lane 0 reallocates the same block (lowest free bit of its active
	// superblock): the precondition for the stale free to bite.
	y, err := a0.PMalloc(64, e.ptr(1))
	if err != nil {
		t.Fatal(err)
	}
	if y != x {
		t.Skipf("allocator did not reuse block (%v vs %v); scenario not reproduced", y, x)
	}

	// Churn lane 0 enough that, under the old protocol, its log would
	// have filled and truncated away the realloc record for x — leaving
	// lane 1's stale free as the only record mentioning the block.
	for i := 0; i < 400; i++ {
		if _, err := a0.PMalloc(64, e.ptr(2)); err != nil {
			t.Fatal(err)
		}
		if err := a0.PFree(e.ptr(2)); err != nil {
			t.Fatal(err)
		}
	}

	// Quiesced restart that loses nothing in flight: replay must not
	// resurrect any already-applied operation.
	e.reopenHeap(t, scm.KeepAll{})

	alive := false
	e.heap.ForEachAllocated(func(addr pmem.Addr, size int64) bool {
		if addr == x {
			alive = true
			return false
		}
		return true
	})
	if !alive {
		t.Fatalf("block %v vanished across a lossless reopen: stale lane record replayed", x)
	}

	// And the block must not be handed out a second time.
	a := e.heap.NewAllocator()
	z, err := a.PMalloc(64, e.ptr(3))
	if err != nil {
		t.Fatal(err)
	}
	if z == x {
		t.Fatalf("block %v double-allocated after reopen", x)
	}
}
