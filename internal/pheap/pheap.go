// Package pheap implements Mnemosyne's persistent heap (§4.3 of the
// paper): dynamic allocation of persistent memory with pmalloc/pfree,
// where allocations and their sizes persist across program invocations.
//
// The design follows the paper's modified Hoard allocator for small
// requests and a dlmalloc-like allocator for large ones:
//
//   - The heap is split into 8 KB superblocks, each holding fixed-size
//     blocks of one size class. A persistent bitmap per superblock tracks
//     allocated blocks, so allocating requires only one SCM write to set a
//     bit. Bitmaps live in a metadata area physically separate from the
//     allocated data, reducing the risk of corruption by stray writes.
//     Indexes that speed allocation (free counts, per-class superblock
//     lists) are volatile and regenerated when the heap is opened — the
//     "scavenge" cost measured in §6.3.2.
//
//   - Requests larger than the largest size class fall back to a
//     boundary-tag allocator over a dedicated large-object area. Chunk
//     headers hold only a size-and-in-use word, so every mutation is a
//     single atomic durable write; coalescing of adjacent free chunks is
//     a single idempotent size rewrite performed lazily.
//
// Atomicity: pmalloc takes the address of a persistent pointer to receive
// the block, so memory cannot leak if the system fails just after an
// allocation; pfree nullifies the pointer for the symmetric reason. Each
// operation is made atomic by logging a redo record (bitmap bit plus
// destination pointer) to a per-lane tornbit RAWL before applying it;
// recovery replays the logs in global sequence order (§4.3).
package pheap

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pmem"
	"repro/internal/rawl"

	"repro/internal/region"
)

// ErrNoHeap reports that the memory at base holds no formatted heap:
// either it never was one, or a crash interrupted Format before its magic
// committed. A caller that created the region expressly for this heap
// (e.g. via PMapAt on a dedicated static pointer) may safely re-Format on
// this error — no allocation can exist before Format's commit point.
var ErrNoHeap = errors.New("pheap: no heap")

const (
	heapMagic = 0x4d4e484541503031 // "MNHEAP01"

	// SuperblockSize matches the paper's 8 KB Hoard superblocks.
	SuperblockSize = 8192
	// MaxSmall is the largest request served from superblocks; larger
	// requests fall back to the large-object allocator.
	MaxSmall = 4096
	// MinBlock is the smallest block size class.
	MinBlock = 16

	numClasses = 9 // 16, 32, 64, ..., 4096

	// Per-superblock persistent metadata: a block-size word, a reserved
	// word, and a 64-word bitmap (512 bits, enough for 8192/16 blocks).
	sbMetaSize   = 576
	bitmapWords  = 64
	maxBlocksPer = SuperblockSize / MinBlock

	// Lane logs: each allocator lane owns a tornbit RAWL for redo
	// records. 1016 words of buffer fit a lane log slot of 8 KB.
	laneLogSlot  = 8192
	laneLogWords = (laneLogSlot - 64) / 8

	// Large-object area chunk header: one cache line holding a single
	// size-and-in-use word, so header updates are atomic 64-bit writes.
	chunkHdr = 64

	hdrSize = 4096 // heap header page
)

// Header word offsets (from the heap base).
const (
	offMagic   = 0
	offVersion = 8
	offSize    = 16
	offSBCount = 24
	offLargeAt = 32
	offLargeSz = 40
	offLanes   = 48
)

func classFor(size int64) int {
	c := 0
	for bs := int64(MinBlock); bs < size; bs <<= 1 {
		c++
	}
	return c
}

func classSize(c int) int64 { return MinBlock << c }

// Config tunes heap creation.
type Config struct {
	// Lanes is the number of independent allocator lanes, each with its
	// own redo log and active superblocks. More lanes mean less
	// contention between concurrently allocating goroutines. Zero
	// selects 8; the maximum is 64.
	Lanes int
	// LargeFraction is the fraction of the payload reserved for the
	// large-object area (default 1/4).
	LargeFraction float64
}

func (c *Config) fill() error {
	if c.Lanes == 0 {
		c.Lanes = 8
	}
	if c.Lanes < 1 || c.Lanes > 64 {
		return fmt.Errorf("pheap: lanes %d out of range [1,64]", c.Lanes)
	}
	if c.LargeFraction == 0 {
		c.LargeFraction = 0.25
	}
	if c.LargeFraction < 0 || c.LargeFraction > 0.9 {
		return fmt.Errorf("pheap: large fraction %v out of range", c.LargeFraction)
	}
	return nil
}

// Heap is a persistent heap over one persistent region.
type Heap struct {
	rt   *region.Runtime
	mem  pmem.Memory // heap-internal memory view (guarded by locks below)
	base pmem.Addr
	size int64

	sbCount  int64
	sbMeta   pmem.Addr // metadata array base
	sbData   pmem.Addr // superblock array base
	largeAt  pmem.Addr
	largeSz  int64
	numLanes int

	seq atomic.Uint64 // global operation sequence (volatile; logs are
	// empty after open, so restarting from 0 is safe)

	lanes []*lane

	// Volatile superblock index, rebuilt by scavenging at open.
	sbMu    sync.Mutex
	sbState []sbState
	partial [numClasses][]int32 // superblocks with free blocks, by class
	freeSBs []int32             // fully free, unassigned superblocks

	// Out-of-band shadow allocator (shadow.go): active superblocks for
	// the single-fence MOD allocation path, disjoint from every lane's.
	shadow shadowState

	// Volatile large-object free index.
	largeMu   sync.Mutex
	largeMem  pmem.Memory
	largeFree []chunk // sorted by offset

	scavenge time.Duration
}

type sbState struct {
	mu     sync.Mutex
	class  int8
	owner  int8 // lane owning it as active, or -1
	free   int32
	bitmap [bitmapWords]uint64 // volatile copy of the persistent bitmap
}

type lane struct {
	mu     sync.Mutex
	mem    pmem.Memory
	log    *rawl.Log
	active [numClasses]int32 // active superblock per class, or -1
}

type chunk struct {
	off  int64 // offset of the chunk header from largeAt
	size int64 // total chunk size including header
}

// Size computation helpers.
func (h *Heap) laneLogAddr(i int) pmem.Addr {
	return h.base.Add(hdrSize + int64(i)*laneLogSlot)
}

func (h *Heap) sbMetaAddr(sb int32) pmem.Addr {
	return h.sbMeta.Add(int64(sb) * sbMetaSize)
}

func (h *Heap) sbDataAddr(sb int32) pmem.Addr {
	return h.sbData.Add(int64(sb) * SuperblockSize)
}

// MinSize returns the smallest region size that yields at least one
// superblock with the given config.
func MinSize(cfg Config) int64 {
	if err := cfg.fill(); err != nil {
		return 1 << 20
	}
	return hdrSize + int64(cfg.Lanes)*laneLogSlot + sbMetaSize + SuperblockSize + chunkHdr*4
}

// Format initializes a persistent heap over [base, base+size), which must
// lie inside an existing persistent region.
func Format(rt *region.Runtime, base pmem.Addr, size int64, cfg Config) (*Heap, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if size < MinSize(cfg) {
		return nil, fmt.Errorf("pheap: size %d below minimum %d", size, MinSize(cfg))
	}
	h := &Heap{rt: rt, mem: rt.NewMemory(), base: base, size: size, numLanes: cfg.Lanes}

	// Carve the region: header, lane logs, then split the remainder
	// between superblocks (metadata + data) and the large area.
	payloadOff := int64(hdrSize) + int64(cfg.Lanes)*laneLogSlot
	payload := size - payloadOff
	largeSz := int64(float64(payload) * cfg.LargeFraction)
	sbBudget := payload - largeSz
	h.sbCount = sbBudget / (sbMetaSize + SuperblockSize)
	if h.sbCount < 1 {
		return nil, errors.New("pheap: no room for superblocks")
	}
	if h.sbCount > 1<<20 {
		h.sbCount = 1 << 20
	}
	h.sbMeta = base.Add(payloadOff)
	metaBytes := h.sbCount * sbMetaSize
	// Align superblock data to the superblock size for cheap
	// block-to-superblock math.
	dataOff := (payloadOff + metaBytes + SuperblockSize - 1) &^ (SuperblockSize - 1)
	h.sbData = base.Add(dataOff)
	largeOff := dataOff + h.sbCount*SuperblockSize
	h.largeAt = base.Add(largeOff)
	h.largeSz = (size - largeOff) &^ 63

	// Zero superblock metadata (blockSize 0 = unassigned) and format
	// the large area as one free chunk.
	zero := make([]byte, sbMetaSize)
	for sb := int32(0); sb < int32(h.sbCount); sb++ {
		h.mem.WTStore(h.sbMetaAddr(sb), zero)
		h.mem.Fence()
	}
	if h.largeSz >= 2*chunkHdr {
		h.mem.WTStoreU64(h.largeAt, packChunk(h.largeSz, false))
		h.mem.Fence()
	} else {
		h.largeSz = 0
	}

	for i := 0; i < cfg.Lanes; i++ {
		lmem := rt.NewMemory()
		log, err := rawl.Create(lmem, h.laneLogAddr(i), laneLogWords)
		if err != nil {
			return nil, err
		}
		h.lanes = append(h.lanes, &lane{mem: lmem, log: log})
	}

	// Header last: its magic is the commit point of formatting.
	h.mem.WTStoreU64(base.Add(offVersion), 1)
	h.mem.WTStoreU64(base.Add(offSize), uint64(size))
	h.mem.WTStoreU64(base.Add(offSBCount), uint64(h.sbCount))
	h.mem.WTStoreU64(base.Add(offLargeAt), uint64(largeOff))
	h.mem.WTStoreU64(base.Add(offLargeSz), uint64(h.largeSz))
	h.mem.WTStoreU64(base.Add(offLanes), uint64(cfg.Lanes))
	h.mem.Fence()
	h.mem.WTStoreU64(base.Add(offMagic), heapMagic)
	h.mem.Fence()

	h.initVolatile()
	h.buildIndexes()
	return h, nil
}

// Open attaches to an existing heap: it replays the allocator logs and
// scavenges the persistent bitmaps to regenerate the volatile indexes.
func Open(rt *region.Runtime, base pmem.Addr) (*Heap, error) {
	h := &Heap{rt: rt, mem: rt.NewMemory(), base: base}
	if h.mem.LoadU64(base.Add(offMagic)) != heapMagic {
		return nil, fmt.Errorf("%w at %v", ErrNoHeap, base)
	}
	h.size = int64(h.mem.LoadU64(base.Add(offSize)))
	h.sbCount = int64(h.mem.LoadU64(base.Add(offSBCount)))
	largeOff := int64(h.mem.LoadU64(base.Add(offLargeAt)))
	h.largeSz = int64(h.mem.LoadU64(base.Add(offLargeSz)))
	h.numLanes = int(h.mem.LoadU64(base.Add(offLanes)))
	payloadOff := int64(hdrSize) + int64(h.numLanes)*laneLogSlot
	h.sbMeta = base.Add(payloadOff)
	dataOff := (payloadOff + h.sbCount*sbMetaSize + SuperblockSize - 1) &^ (SuperblockSize - 1)
	h.sbData = base.Add(dataOff)
	h.largeAt = base.Add(largeOff)

	start := time.Now()
	// Replay redo records from all lane logs in global sequence order,
	// then truncate.
	type seqRec struct {
		seq uint64
		rec []uint64
	}
	var all []seqRec
	for i := 0; i < h.numLanes; i++ {
		lmem := rt.NewMemory()
		log, recs, err := rawl.Open(lmem, h.laneLogAddr(i))
		if err != nil {
			return nil, fmt.Errorf("pheap: lane %d: %w", i, err)
		}
		for _, r := range recs {
			if len(r) < 2 {
				continue
			}
			all = append(all, seqRec{seq: r[0], rec: r})
		}
		h.lanes = append(h.lanes, &lane{mem: lmem, log: log})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	for _, sr := range all {
		if err := h.replay(sr.rec); err != nil {
			return nil, err
		}
	}
	for _, l := range h.lanes {
		l.log.TruncateAll()
	}

	h.initVolatile()
	h.buildIndexes()
	h.scavenge = time.Since(start)
	return h, nil
}

// ScavengeTime reports how long log replay plus index reconstruction took
// at Open — the per-process reincarnation cost of §6.3.2.
func (h *Heap) ScavengeTime() time.Duration { return h.scavenge }

// Base returns the heap's base address.
func (h *Heap) Base() pmem.Addr { return h.base }

func (h *Heap) initVolatile() {
	h.largeMem = h.rt.NewMemory()
	h.sbState = make([]sbState, h.sbCount)
	for i := range h.lanes {
		for c := range h.lanes[i].active {
			h.lanes[i].active[c] = -1
		}
	}
	h.shadow.mem = h.rt.NewMemory()
	for c := range h.shadow.active {
		h.shadow.active[c] = -1
	}
}

// buildIndexes scavenges the persistent superblock bitmaps and walks the
// large area to regenerate the volatile indexes.
func (h *Heap) buildIndexes() {
	for sb := int32(0); sb < int32(h.sbCount); sb++ {
		meta := h.sbMetaAddr(sb)
		bs := int64(h.mem.LoadU64(meta))
		st := &h.sbState[sb]
		st.owner = -1
		if bs == 0 {
			st.class = -1
			h.freeSBs = append(h.freeSBs, sb)
			continue
		}
		c := classFor(bs)
		st.class = int8(c)
		blocks := int32(SuperblockSize / bs)
		used := int32(0)
		for w := 0; w < bitmapWords; w++ {
			v := h.mem.LoadU64(meta.Add(16 + int64(w)*8))
			st.bitmap[w] = v
			for ; v != 0; v &= v - 1 {
				used++
			}
		}
		st.free = blocks - used
		if used == 0 {
			// Fully free: make it reassignable to any class.
			h.freeSBs = append(h.freeSBs, sb)
			st.class = -1
		} else if st.free > 0 {
			h.partial[c] = append(h.partial[c], sb)
		}
	}
	h.rebuildLargeIndex()
}

// Stats reports heap occupancy, for tests and tooling.
type Stats struct {
	Superblocks     int64
	FreeSuperblocks int
	LargeBytes      int64
	LargeFreeBytes  int64
}

// ForEachAllocated calls fn for every live allocation (address and usable
// size), in no particular order. The heap must be quiesced: no concurrent
// allocation or free. Garbage collection (internal/pgc) and tooling use
// this to enumerate the block population.
func (h *Heap) ForEachAllocated(fn func(addr pmem.Addr, size int64) bool) {
	for sb := int32(0); sb < int32(h.sbCount); sb++ {
		st := &h.sbState[sb]
		st.mu.Lock()
		class := st.class
		bitmap := st.bitmap
		st.mu.Unlock()
		if class < 0 {
			continue
		}
		bs := classSize(int(class))
		blocks := int(SuperblockSize / bs)
		for bit := 0; bit < blocks; bit++ {
			if bitmap[bit/64]&(1<<(bit%64)) == 0 {
				continue
			}
			if !fn(h.sbDataAddr(sb).Add(int64(bit)*bs), bs) {
				return
			}
		}
	}
	h.largeMu.Lock()
	defer h.largeMu.Unlock()
	off := int64(0)
	for off < h.largeSz {
		size, inUse := unpackChunk(h.largeMem.LoadU64(h.largeAt.Add(off)))
		if size < chunkHdr || off+size > h.largeSz {
			return
		}
		if inUse {
			if !fn(h.largeAt.Add(off+chunkHdr), size-chunkHdr) {
				return
			}
		}
		off += size
	}
}

// FreeAddr releases the block at addr directly, without a user pointer
// slot: it routes through PFree via an internal scratch pointer. The
// garbage collector uses this to reclaim unreachable blocks. The scratch
// static must be provided by the caller (a persistent 8-byte slot).
func (a *Allocator) FreeAddr(block, scratch pmem.Addr) error {
	a.lane.mem.WTStoreU64(scratch, uint64(block))
	a.lane.mem.Fence()
	return a.PFree(scratch)
}

// Stats returns current occupancy counters.
func (h *Heap) Stats() Stats {
	h.sbMu.Lock()
	fs := len(h.freeSBs)
	h.sbMu.Unlock()
	h.largeMu.Lock()
	var lf int64
	for _, c := range h.largeFree {
		lf += c.size - chunkHdr
	}
	h.largeMu.Unlock()
	return Stats{
		Superblocks:     h.sbCount,
		FreeSuperblocks: fs,
		LargeBytes:      h.largeSz,
		LargeFreeBytes:  lf,
	}
}
