package pheap

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/pmem"
	"repro/internal/telemetry"
)

// Shadow allocation: the out-of-band allocation path behind the MOD
// (minimally-ordered durable structures) backend in internal/pds/mod.
//
// A normal PMalloc is individually crash-atomic: it logs a redo record,
// write-through-stores the bitmap bit and the destination pointer, and
// fences — at least two ordering points per allocation. Shadow-updated
// structures do not need any of that, because a freshly allocated shadow
// block is unreachable from persistent state until its structure's root
// pointer swings over it. If the system dies first, the worst outcome is
// a leaked block, and leaks are exactly what the deferred-reclamation
// sweep (internal/pgc driven by the MOD runtime) reclaims.
//
// PMallocShadow therefore skips the log, the fence and the destination
// pointer entirely. It sets the superblock bitmap bit with a plain
// cacheable store and records the bitmap word (and, when a fresh
// superblock is adopted, its class word) in the caller's FlushBatch; the
// caller flushes the batch and issues ONE fence for its whole mutation at
// commit time. Durability ordering is the caller's: nothing here is
// ordered, which is the point.
//
// Crash matrix for a shadow allocation whose commit fence never ran:
//
//   - bit durable, structure root not swung: the block is leaked and the
//     sweep frees it (the bit is real, the block unreachable);
//   - bit not durable: the allocation never happened;
//   - fresh superblock's class word durable but bits not (or vice versa):
//     scavenging either sees an empty classed superblock or an unassigned
//     one with stray bits. The stray-bit case is repaired at the next
//     adoption: both adoption paths persistently zero the bitmap before
//     (re)assigning the class, so stale bits can never masquerade as live
//     blocks of the new class.

var telShadowAllocs = telemetry.NewCounter("pheap_shadow_allocs_total",
	"out-of-band shadow allocations (no log record, no fence)")

// shadowOwner marks a superblock as owned by the heap-wide shadow
// allocator, keeping it out of every lane's adoption path while shadow
// stores to its metadata may still be unfenced.
const shadowOwner int8 = 127

// FlushBatch accumulates the address ranges a shadow mutation has written
// with cacheable stores — new nodes, bitmap words, class words — so they
// can all be flushed back-to-back before the mutation's single commit
// fence.
type FlushBatch struct {
	spans []flushSpan
	bytes int64
}

type flushSpan struct {
	addr pmem.Addr
	n    int64
}

// Add records [addr, addr+n) for flushing.
func (b *FlushBatch) Add(addr pmem.Addr, n int64) {
	if n <= 0 {
		return
	}
	b.spans = append(b.spans, flushSpan{addr: addr, n: n})
	b.bytes += n
}

// Bytes reports the total span bytes added since the last Reset — the
// shadow write volume of one mutation.
func (b *FlushBatch) Bytes() int64 { return b.bytes }

// Flush writes every recorded span back to SCM. It issues no fence.
func (b *FlushBatch) Flush(mem pmem.Memory) {
	for _, s := range b.spans {
		mem.FlushRange(s.addr, s.n)
	}
}

// Reset clears the batch for reuse, keeping its backing storage.
func (b *FlushBatch) Reset() {
	b.spans = b.spans[:0]
	b.bytes = 0
}

// shadowState is the heap-wide shadow allocator: one active superblock
// per class, guarded by its own lock (shadow allocations serialize
// against each other, never against lane allocations).
type shadowState struct {
	mu     sync.Mutex
	mem    pmem.Memory
	active [numClasses]int32
}

// PMallocShadow allocates size bytes (size classes up to MaxSmall only)
// without a redo record, fence, or destination pointer. The new block's
// bitmap bit is set with a cacheable store, and every metadata word
// written is recorded in batch for the caller's pre-fence flush. The
// block must be made reachable by the caller's own single-fence commit
// protocol, or it is leaked until the next reclamation sweep.
func (h *Heap) PMallocShadow(size int64, batch *FlushBatch) (pmem.Addr, error) {
	if size <= 0 {
		return pmem.Nil, fmt.Errorf("pheap: shadow alloc of %d bytes", size)
	}
	if size > MaxSmall {
		return pmem.Nil, fmt.Errorf("pheap: shadow alloc of %d bytes exceeds MaxSmall (%d)", size, MaxSmall)
	}
	c := classFor(size)
	s := &h.shadow
	s.mu.Lock()
	defer s.mu.Unlock()

	// Find a superblock with a free block, mirroring smallAlloc's loop.
	// Returns with st.mu held.
	var sb int32
	var st *sbState
	for {
		sb = s.active[c]
		if sb >= 0 {
			st = &h.sbState[sb]
			st.mu.Lock()
			if st.free > 0 {
				break
			}
			st.owner = -1
			st.mu.Unlock()
			s.active[c] = -1
			continue
		}
		var ok bool
		sb, ok = h.adoptShadow(c, batch)
		if !ok {
			return pmem.Nil, ErrOutOfMemory
		}
		s.active[c] = sb
	}
	defer st.mu.Unlock()

	bs := classSize(c)
	blocks := int(SuperblockSize / bs)
	bit := -1
	for w := 0; w*64 < blocks; w++ {
		v := st.bitmap[w]
		if v != ^uint64(0) {
			b := bits.TrailingZeros64(^v)
			if w*64+b < blocks {
				bit = w*64 + b
				break
			}
		}
	}
	if bit < 0 {
		panic("pheap: free count and bitmap disagree")
	}
	block := h.sbDataAddr(sb).Add(int64(bit) * bs)

	// The one persistent effect: set the bitmap bit, cacheable, and queue
	// its word for the commit-time flush. No log, no fence, no pointer.
	w, mask := bit/64, uint64(1)<<(bit%64)
	wordAddr := h.sbMetaAddr(sb).Add(16 + int64(w)*8)
	s.mem.StoreU64(wordAddr, st.bitmap[w]|mask)
	batch.Add(wordAddr, 8)

	st.bitmap[w] |= mask
	st.free--
	telShadowAllocs.Inc()
	telAllocBytes.Add(uint64(size))
	return block, nil
}

// adoptShadow finds a superblock for the shadow allocator: a partial one
// of the same class (its class word is already durable), else a fully
// free one. Assigning a fresh superblock's class uses cacheable stores
// recorded in batch — durability rides the caller's commit fence — and
// persistently zeroes the bitmap first, clearing any stray bits a torn
// earlier shadow adoption may have left behind.
func (h *Heap) adoptShadow(c int, batch *FlushBatch) (int32, bool) {
	h.sbMu.Lock()
	defer h.sbMu.Unlock()

	lst := h.partial[c]
	for len(lst) > 0 {
		sb := lst[len(lst)-1]
		lst = lst[:len(lst)-1]
		st := &h.sbState[sb]
		st.mu.Lock()
		if st.owner == -1 && int(st.class) == c && st.free > 0 {
			st.owner = shadowOwner
			st.mu.Unlock()
			h.partial[c] = lst
			return sb, true
		}
		st.mu.Unlock()
	}
	h.partial[c] = lst

	for len(h.freeSBs) > 0 {
		sb := h.freeSBs[len(h.freeSBs)-1]
		h.freeSBs = h.freeSBs[:len(h.freeSBs)-1]
		st := &h.sbState[sb]
		st.mu.Lock()
		empty := st.class < 0 || int64(st.free) == SuperblockSize/classSize(int(st.class))
		if st.owner == -1 && empty {
			bs := classSize(c)
			meta := h.sbMetaAddr(sb)
			for w := 0; w < bitmapWords; w++ {
				h.shadow.mem.StoreU64(meta.Add(16+int64(w)*8), 0)
			}
			h.shadow.mem.StoreU64(meta, uint64(bs))
			batch.Add(meta, 16+bitmapWords*8)
			st.class = int8(c)
			st.free = int32(SuperblockSize / bs)
			st.owner = shadowOwner
			for i := range st.bitmap {
				st.bitmap[i] = 0
			}
			st.mu.Unlock()
			return sb, true
		}
		st.mu.Unlock()
	}
	return 0, false
}
