package pheap

import "fmt"

// Check verifies the structural consistency of the heap's persistent
// metadata, without touching the volatile indexes:
//
//   - every superblock's class word is either zero (unassigned) or a valid
//     power-of-two size class, and its bitmap sets no bit beyond the
//     block count that class yields (an unassigned superblock's bitmap
//     must be empty — a class assignment is fenced before any allocation
//     in it can log or apply);
//   - the large-object area parses as a chain of sane, line-aligned
//     chunks tiling it exactly.
//
// The crash-point recovery oracles call it after reopening a crashed
// image; any error means recovery reconstructed (or accepted) corrupt
// allocator metadata. The heap must be quiesced.
func (h *Heap) Check() error {
	for sb := int32(0); sb < int32(h.sbCount); sb++ {
		meta := h.sbMetaAddr(sb)
		bs := int64(h.mem.LoadU64(meta))
		blocks := int64(0)
		if bs != 0 {
			if bs < MinBlock || bs > MaxSmall || bs&(bs-1) != 0 {
				return fmt.Errorf("pheap: superblock %d has invalid block size %d", sb, bs)
			}
			blocks = SuperblockSize / bs
		}
		for w := int64(0); w < bitmapWords; w++ {
			word := h.mem.LoadU64(meta.Add(16 + w*8))
			lo := w * 64
			if lo+64 <= blocks {
				continue
			}
			valid := uint64(0)
			if blocks > lo {
				valid = (uint64(1) << uint(blocks-lo)) - 1
			}
			if word&^valid != 0 {
				return fmt.Errorf("pheap: superblock %d (block size %d) sets bitmap bits beyond its %d blocks", sb, bs, blocks)
			}
		}
	}

	off := int64(0)
	for off < h.largeSz {
		size, _ := unpackChunk(h.mem.LoadU64(h.largeAt.Add(off)))
		if size < chunkHdr || size&63 != 0 || off+size > h.largeSz {
			return fmt.Errorf("pheap: corrupt large chunk at +%d (size %d of %d)", off, size, h.largeSz)
		}
		off += size
	}
	if off != h.largeSz {
		return fmt.Errorf("pheap: large chunk chain covers %d of %d bytes", off, h.largeSz)
	}
	return nil
}
