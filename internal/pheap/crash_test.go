package pheap

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/crashpoint"
	"repro/internal/pmem"
	"repro/internal/region"
	"repro/internal/scm"
)

// pheapOp is one step of the deterministic allocator workload: an
// allocation of Size bytes into pointer slot Slot, or (Size == 0) a free
// of slot Slot.
type pheapOp struct {
	Slot int
	Size int64
}

var pheapOps = []pheapOp{
	{Slot: 0, Size: 24},
	{Slot: 1, Size: 100},
	{Slot: 2, Size: 6000}, // large-object path
	{Slot: 0},             // free
	{Slot: 3, Size: 16},
	{Slot: 2}, // large free
	{Slot: 4, Size: 4096},
	{Slot: 1}, // free
}

// liveAfter returns which slots hold an allocation after the first m ops.
func liveAfter(m int) [8]bool {
	var live [8]bool
	for i := 0; i < m; i++ {
		live[pheapOps[i].Slot] = pheapOps[i].Size > 0
	}
	return live
}

const pheapCrashHeapSize = 128 << 10

// pheapCrashWorkload drives the allocator ops over a small freshly
// formatted heap. With tamper set, the body finishes by re-appending an
// already-applied-and-retired redo record to the lane log — simulating the
// pre-retirement stale-replay bug PR 1 fixed — which the recovery oracle
// must catch.
func pheapCrashWorkload(t *testing.T, tamper bool) crashpoint.Workload {
	return func() (*crashpoint.Run, error) {
		dev, err := scm.Open(scm.Config{Size: 2 << 20, Mode: scm.DelayOff})
		if err != nil {
			return nil, err
		}
		dir := t.TempDir()
		done := 0

		openRegion := func() (*region.Runtime, pmem.Addr, pmem.Addr, error) {
			rt, err := region.Open(dev, region.Config{Dir: dir, StaticSize: 64 << 10})
			if err != nil {
				return nil, pmem.Nil, pmem.Nil, err
			}
			heapPtr, _, err := rt.Static("pheap.crash.heap", 8)
			if err != nil {
				rt.Close()
				return nil, pmem.Nil, pmem.Nil, err
			}
			slots, _, err := rt.Static("pheap.crash.slots", 64)
			if err != nil {
				rt.Close()
				return nil, pmem.Nil, pmem.Nil, err
			}
			return rt, heapPtr, slots, nil
		}

		return &crashpoint.Run{
			Dev: dev,
			Body: func() error {
				rt, heapPtr, slots, err := openRegion()
				if err != nil {
					return err
				}
				base, err := rt.PMapAt(heapPtr, pheapCrashHeapSize, 0)
				if err != nil {
					return err
				}
				h, err := Format(rt, base, pheapCrashHeapSize, Config{Lanes: 2})
				if err != nil {
					return err
				}
				a := h.NewAllocator()
				mem := rt.NewMemory()
				var first pmem.Addr // ops[0]'s block, for the tamper record
				for i, op := range pheapOps {
					slotAddr := slots.Add(int64(op.Slot) * 8)
					if op.Size > 0 {
						blk, err := a.PMalloc(op.Size, slotAddr)
						if err != nil {
							return err
						}
						if i == 0 {
							first = blk
						}
					} else if err := a.PFree(slotAddr); err != nil {
						return err
					}
					done = i + 1
				}
				if tamper {
					// Re-append ops[0]'s redo record as if it had never
					// been retired: stale state over a block that was
					// since freed.
					sb := first.Sub(h.sbData) / SuperblockSize
					bs := int64(mem.LoadU64(h.sbMetaAddr(int32(sb))))
					bit := (first.Sub(h.sbDataAddr(int32(sb)))) / bs
					rec := []uint64{1, opSmallAlloc, uint64(sb), uint64(bit),
						uint64(slots), uint64(first)}
					if _, err := a.lane.log.Append(rec); err != nil {
						return err
					}
					a.lane.log.Flush()
				}
				return nil
			},
			Check: func() error {
				rt, heapPtr, slots, err := openRegion()
				if err != nil {
					return fmt.Errorf("region tables not remappable: %w", err)
				}
				defer rt.Close()
				mem := rt.NewMemory()
				base := pmem.Addr(mem.LoadU64(heapPtr))
				if base == pmem.Nil {
					if done > 0 {
						return fmt.Errorf("heap region lost after %d acked ops", done)
					}
					return nil
				}
				h, err := Open(rt, base)
				if errors.Is(err, ErrNoHeap) {
					// Format's magic never committed; legal only before
					// any operation was acknowledged.
					if done > 0 {
						return fmt.Errorf("heap unopenable after %d acked ops: %w", done, err)
					}
					return nil
				}
				if err != nil {
					return err
				}
				if err := h.Check(); err != nil {
					return err
				}

				allocated := map[pmem.Addr]int64{}
				h.ForEachAllocated(func(addr pmem.Addr, size int64) bool {
					allocated[addr] = size
					return true
				})

				// Every non-nil slot must name a distinct live block of
				// adequate size; every live block must be named by a slot
				// (no leaks — pmalloc's pointer-coupling guarantee).
				var pattern [8]bool
				named := map[pmem.Addr]int{}
				for s := 0; s < 8; s++ {
					v := pmem.Addr(mem.LoadU64(slots.Add(int64(s) * 8)))
					if v == pmem.Nil {
						continue
					}
					pattern[s] = true
					size, ok := allocated[v]
					if !ok {
						return fmt.Errorf("slot %d points at %v, which is not allocated (dangling)", s, v)
					}
					if prev, dup := named[v]; dup {
						return fmt.Errorf("slots %d and %d alias block %v", prev, s, v)
					}
					named[v] = s
					// Find the op that filled this slot to check the size.
					for i := len(pheapOps) - 1; i >= 0; i-- {
						if pheapOps[i].Slot == s && pheapOps[i].Size > 0 {
							if size < pheapOps[i].Size {
								return fmt.Errorf("slot %d block %v has %d usable bytes, want >= %d", s, v, size, pheapOps[i].Size)
							}
							break
						}
					}
				}
				for addr := range allocated {
					if _, ok := named[addr]; !ok {
						return fmt.Errorf("block %v (%d bytes) allocated but referenced by no slot (leak)", addr, allocated[addr])
					}
				}

				// The slot pattern must equal the shadow model after done
				// or done+1 ops (the in-flight op either happened or not).
				for _, m := range []int{done, done + 1} {
					if m > len(pheapOps) {
						continue
					}
					if pattern == liveAfter(m) {
						return nil
					}
				}
				return fmt.Errorf("slot pattern %v matches neither %d nor %d applied ops", pattern, done, done+1)
			},
		}, nil
	}
}

// TestCrashPointsPheap explores every crash point of the allocator
// workload: allocator metadata must stay consistent and the heap must
// neither leak nor double-expose a block at any of them.
func TestCrashPointsPheap(t *testing.T) {
	rep, err := crashpoint.Explore(pheapCrashWorkload(t, false), crashpoint.Options{
		Schedule: crashpoint.TestSchedule(testing.Short(), 32),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		for _, f := range rep.Failures {
			t.Errorf("%v", f)
		}
		t.Fatalf("pheap recovery oracle failed at %d of %d crash points (%s)",
			len(rep.Failures), rep.Points, rep)
	}
	t.Logf("pheap: %s", rep)
}

// TestStaleLaneRecordCaughtByOracle reverts, in effect, PR 1's lane-record
// retirement: a redo record that was already applied and truncated is
// planted back in the lane log. Recovery replays it over newer state; the
// oracle must flag the resurrected allocation.
func TestStaleLaneRecordCaughtByOracle(t *testing.T) {
	run, err := pheapCrashWorkload(t, true)()
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Body(); err != nil {
		t.Fatal(err)
	}
	run.Dev.Crash(scm.KeepAll{})
	err = run.Check()
	if err == nil {
		t.Fatal("oracle accepted a heap recovered over a stale lane-log record")
	}
	t.Logf("caught: %v", err)
}
