package pheap

import (
	"fmt"
	"sort"

	"repro/internal/pmem"
)

// The large-object allocator covers requests above MaxSmall with a
// simplified dlmalloc design, per §4.3: "If the requested block is larger,
// Mnemosyne falls back to dlmalloc... Since we expect dlmalloc to be
// infrequently used, we have not modified it except to add logging to
// ensure allocations are atomic."
//
// Each chunk starts with one cache line whose first word packs
// size<<1|inUse, so every metadata mutation is a single atomic durable
// write. The free list is volatile, rebuilt by walking the chunk chain;
// adjacent free chunks coalesce lazily with a single idempotent header
// rewrite.

func packChunk(size int64, inUse bool) uint64 {
	v := uint64(size) << 1
	if inUse {
		v |= 1
	}
	return v
}

func unpackChunk(v uint64) (size int64, inUse bool) {
	return int64(v >> 1), v&1 != 0
}

func (a *Allocator) largeAlloc(size int64, ptr pmem.Addr) (pmem.Addr, error) {
	h := a.h
	need := (size + chunkHdr + 63) &^ 63
	// The lane lock serializes appends to the lane log against small
	// operations on the same lane; it nests outside largeMu, matching
	// PFree -> largeFree.
	a.lane.mu.Lock()
	defer a.lane.mu.Unlock()
	h.largeMu.Lock()
	defer h.largeMu.Unlock()

	ci := h.findLargeFit(need)
	if ci < 0 {
		// Coalesce and retry once.
		h.rebuildLargeIndex()
		if ci = h.findLargeFit(need); ci < 0 {
			return pmem.Nil, ErrOutOfMemory
		}
	}
	c := h.largeFree[ci]
	taken := need
	if c.size-need < 2*chunkHdr {
		taken = c.size // too small to split; take the whole chunk
	}

	seq := h.seq.Add(1)
	a.appendLog([]uint64{seq, opLargeAlloc, uint64(c.off), uint64(c.size), uint64(taken), uint64(ptr)})
	// Remainder header first, then the allocated header, then the
	// destination pointer; the chunk chain stays walkable at every
	// crash point, and the log makes the pointer update replayable.
	if taken < c.size {
		h.largeMem.WTStoreU64(h.largeAt.Add(c.off+taken), packChunk(c.size-taken, false))
	}
	h.largeMem.WTStoreU64(h.largeAt.Add(c.off), packChunk(taken, true))
	block := h.largeAt.Add(c.off + chunkHdr)
	h.largeMem.WTStoreU64(ptr, uint64(block))
	h.largeMem.Fence()
	// Retire the record now that its effect is durable, before the chunk
	// leaves the free index (see smallAlloc).
	a.lane.log.TruncateAll()

	if taken < c.size {
		h.largeFree[ci] = chunk{off: c.off + taken, size: c.size - taken}
	} else {
		h.largeFree = append(h.largeFree[:ci], h.largeFree[ci+1:]...)
	}
	return block, nil
}

// largeFree is called with the lane lock held (from PFree).
func (a *Allocator) largeFree(block, ptr pmem.Addr) error {
	h := a.h
	off := block.Sub(h.largeAt) - chunkHdr
	h.largeMu.Lock()
	defer h.largeMu.Unlock()

	size, inUse := unpackChunk(h.largeMem.LoadU64(h.largeAt.Add(off)))
	if !inUse {
		return ErrDoubleFree
	}
	if size <= 0 || off+size > h.largeSz {
		return fmt.Errorf("pheap: corrupt large chunk at %v", block)
	}

	seq := h.seq.Add(1)
	a.appendLog([]uint64{seq, opLargeFree, uint64(off), uint64(ptr)})
	h.largeMem.WTStoreU64(h.largeAt.Add(off), packChunk(size, false))
	h.largeMem.WTStoreU64(ptr, 0)
	h.largeMem.Fence()
	// Retire before the chunk is published as free (see smallAlloc).
	a.lane.log.TruncateAll()

	// Insert into the sorted free list and coalesce with neighbors.
	// Durable merges are single idempotent size rewrites.
	i := sort.Search(len(h.largeFree), func(i int) bool { return h.largeFree[i].off >= off })
	h.largeFree = append(h.largeFree, chunk{})
	copy(h.largeFree[i+1:], h.largeFree[i:])
	h.largeFree[i] = chunk{off: off, size: size}

	if i+1 < len(h.largeFree) && h.largeFree[i].off+h.largeFree[i].size == h.largeFree[i+1].off {
		merged := h.largeFree[i].size + h.largeFree[i+1].size
		h.largeMem.WTStoreU64(h.largeAt.Add(h.largeFree[i].off), packChunk(merged, false))
		h.largeFree[i].size = merged
		h.largeFree = append(h.largeFree[:i+1], h.largeFree[i+2:]...)
	}
	if i > 0 && h.largeFree[i-1].off+h.largeFree[i-1].size == h.largeFree[i].off {
		merged := h.largeFree[i-1].size + h.largeFree[i].size
		h.largeMem.WTStoreU64(h.largeAt.Add(h.largeFree[i-1].off), packChunk(merged, false))
		h.largeFree[i-1].size = merged
		h.largeFree = append(h.largeFree[:i], h.largeFree[i+1:]...)
	}
	h.largeMem.Fence()
	return nil
}

// findLargeFit returns the index of the first free chunk of at least need
// bytes, or -1.
func (h *Heap) findLargeFit(need int64) int {
	for i, c := range h.largeFree {
		if c.size >= need {
			return i
		}
	}
	return -1
}

// rebuildLargeIndex walks the chunk chain, rebuilding the volatile free
// list and durably coalescing adjacent free chunks (idempotent single-word
// rewrites, safe at any crash point).
func (h *Heap) rebuildLargeIndex() {
	h.largeFree = h.largeFree[:0]
	if h.largeSz == 0 {
		return
	}
	off := int64(0)
	for off < h.largeSz {
		size, inUse := unpackChunk(h.largeMem.LoadU64(h.largeAt.Add(off)))
		if size < chunkHdr || off+size > h.largeSz {
			panic(fmt.Sprintf("pheap: corrupt large chunk chain at +%d (size %d)", off, size))
		}
		if inUse {
			off += size
			continue
		}
		// Absorb any directly following free chunks.
		end := off + size
		for end < h.largeSz {
			nsize, nInUse := unpackChunk(h.largeMem.LoadU64(h.largeAt.Add(end)))
			if nInUse || nsize < chunkHdr || end+nsize > h.largeSz {
				break
			}
			end += nsize
		}
		if end-off != size {
			h.largeMem.WTStoreU64(h.largeAt.Add(off), packChunk(end-off, false))
			h.largeMem.Fence()
		}
		h.largeFree = append(h.largeFree, chunk{off: off, size: end - off})
		off = end
	}
}
