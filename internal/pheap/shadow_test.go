package pheap

import (
	"testing"

	"repro/internal/pmem"
	"repro/internal/scm"
)

// TestShadowAllocBasics: shadow allocations hand out distinct in-heap
// blocks with zero fences, and once the caller flushes its batch and
// fences, a reopened heap sees them as allocated.
func TestShadowAllocBasics(t *testing.T) {
	e := newEnv(t, 1<<20, Config{})
	var batch FlushBatch

	before := e.dev.Snapshot().Fences
	seen := map[pmem.Addr]bool{}
	sizes := []int64{16, 24, 100, 4096, 4000, 16, 512}
	for i, sz := range sizes {
		blk, err := e.heap.PMallocShadow(sz, &batch)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if seen[blk] {
			t.Fatalf("alloc %d: block %v handed out twice", i, blk)
		}
		seen[blk] = true
	}
	if d := e.dev.Snapshot().Fences - before; d != 0 {
		t.Fatalf("shadow allocation issued %d fences, want 0", d)
	}
	if batch.Bytes() == 0 {
		t.Fatal("batch recorded no metadata spans")
	}

	// Commit-style publication, then a simulated restart.
	batch.Flush(e.mem)
	e.mem.Fence()
	e.reopenHeap(t, scm.KeepAll{})
	got := map[pmem.Addr]bool{}
	e.heap.ForEachAllocated(func(addr pmem.Addr, size int64) bool {
		got[addr] = true
		return true
	})
	for blk := range seen {
		if !got[blk] {
			t.Fatalf("block %v lost across reopen", blk)
		}
	}
}

// TestShadowAllocUnflushedIsLost: without the commit flush+fence, a crash
// forgets the allocations — the no-leak-or-live dichotomy the MOD sweep
// relies on (here: never happened).
func TestShadowAllocUnflushedIsLost(t *testing.T) {
	e := newEnv(t, 1<<20, Config{})
	var batch FlushBatch
	if _, err := e.heap.PMallocShadow(64, &batch); err != nil {
		t.Fatal(err)
	}
	e.reopenHeap(t, scm.DropAll{})
	n := 0
	e.heap.ForEachAllocated(func(addr pmem.Addr, size int64) bool {
		n++
		return true
	})
	if n != 0 {
		t.Fatalf("%d blocks survived a crash that dropped the unflushed bitmap", n)
	}
}

// TestShadowAllocRejectsLarge: the shadow path serves small classes only.
func TestShadowAllocRejectsLarge(t *testing.T) {
	e := newEnv(t, 1<<20, Config{})
	var batch FlushBatch
	if _, err := e.heap.PMallocShadow(MaxSmall+1, &batch); err == nil {
		t.Fatal("oversized shadow alloc accepted")
	}
	if _, err := e.heap.PMallocShadow(0, &batch); err == nil {
		t.Fatal("zero-size shadow alloc accepted")
	}
}

// TestShadowAndLaneAllocCoexist: shadow superblocks stay out of the lane
// adoption path and vice versa; both allocators keep consistent metadata.
func TestShadowAndLaneAllocCoexist(t *testing.T) {
	e := newEnv(t, 1<<20, Config{Lanes: 2})
	a := e.heap.NewAllocator()
	var batch FlushBatch
	blocks := map[pmem.Addr]bool{}
	for i := 0; i < 200; i++ {
		blk, err := e.heap.PMallocShadow(32, &batch)
		if err != nil {
			t.Fatal(err)
		}
		if blocks[blk] {
			t.Fatalf("shadow block %v reused", blk)
		}
		blocks[blk] = true
		lblk, err := a.PMalloc(32, e.ptr(i%256))
		if err != nil {
			t.Fatal(err)
		}
		if blocks[lblk] {
			t.Fatalf("lane alloc returned live shadow block %v", lblk)
		}
		blocks[lblk] = true
	}
	batch.Flush(e.mem)
	e.mem.Fence()
	if err := e.heap.Check(); err != nil {
		t.Fatal(err)
	}
}
