// Package pcmdisk emulates the paper's PCM-disk (§6.1): a block device
// backed by phase-change memory, modeled after Linux's brd RAM disk with
// write delays. "We model block writes using sequential write-through
// operations": a flush of n dirty blocks costs one write latency per
// discontiguous extent plus the transferred bytes at the configured write
// bandwidth. Reads are free, like the SCM emulator's loads.
//
// The disk has page-cache semantics: WriteAt is buffered and fast; Sync
// pays the PCM write cost for all dirty blocks and makes them durable.
// Crash drops a policy-chosen subset of unsynced block writes, modeling
// the torn-write exposure the paper notes for msync-based persistence.
//
// A minimal file layer (fixed-size extents carved sequentially) stands in
// for the paper's ext2 mount; each file sync also writes one metadata
// block, approximating inode updates.
package pcmdisk

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// BlockSize is the device block size.
const BlockSize = 4096

// Config describes a PCM disk.
type Config struct {
	// Size is the device capacity in bytes (rounded up to a block).
	Size int64
	// WriteLatency is the per-extent PCM write latency (default 150ns).
	WriteLatency time.Duration
	// WriteBandwidth limits transfer, bytes/second (default 4 GB/s).
	WriteBandwidth float64
	// Spin selects real busy-wait delays (benchmarks); false disables
	// delays (tests).
	Spin bool
}

func (c *Config) fill() {
	if c.WriteLatency == 0 {
		c.WriteLatency = 150 * time.Nanosecond
	}
	if c.WriteBandwidth == 0 {
		c.WriteBandwidth = 4 << 30
	}
	if c.Size <= 0 {
		c.Size = 64 << 20
	}
	c.Size = (c.Size + BlockSize - 1) &^ (BlockSize - 1)
}

// Disk is an emulated PCM block device with a volatile page cache.
type Disk struct {
	cfg Config

	mu    sync.Mutex
	data  []byte           // durable contents
	dirty map[int64][]byte // block -> pre-image (volatile until Sync)
	files map[string]*File
	next  int64 // next free offset for file allocation

	stats Stats
}

// Stats counts disk activity.
type Stats struct {
	Writes, Syncs, BlocksFlushed, BytesWritten int64
}

// Open creates a PCM disk.
func Open(cfg Config) *Disk {
	cfg.fill()
	return &Disk{
		cfg:   cfg,
		data:  make([]byte, cfg.Size),
		dirty: make(map[int64][]byte),
		files: make(map[string]*File),
	}
}

// Size returns the capacity in bytes.
func (d *Disk) Size() int64 { return d.cfg.Size }

// Stats returns activity counters.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ReadAt copies into p from the device. Reads are free and see buffered
// writes.
func (d *Disk) ReadAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > d.cfg.Size {
		return fmt.Errorf("pcmdisk: read [%d,+%d) out of range", off, len(p))
	}
	d.mu.Lock()
	copy(p, d.data[off:])
	d.mu.Unlock()
	return nil
}

// WriteAt buffers p at off (page-cache write: fast, volatile until Sync).
func (d *Disk) WriteAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > d.cfg.Size {
		return fmt.Errorf("pcmdisk: write [%d,+%d) out of range", off, len(p))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	// Save pre-images of the touched blocks the first time they're
	// dirtied, for crash semantics.
	first := off &^ (BlockSize - 1)
	last := (off + int64(len(p)) - 1) &^ (BlockSize - 1)
	for b := first; b <= last; b += BlockSize {
		if _, ok := d.dirty[b]; !ok {
			old := make([]byte, BlockSize)
			copy(old, d.data[b:])
			d.dirty[b] = old
		}
	}
	copy(d.data[off:], p)
	d.stats.Writes++
	d.stats.BytesWritten += int64(len(p))
	return nil
}

// Sync makes every buffered write durable, paying the PCM cost: one write
// latency per contiguous dirty extent plus bytes/bandwidth.
func (d *Disk) Sync() {
	d.mu.Lock()
	blocks := make([]int64, 0, len(d.dirty))
	for b := range d.dirty {
		blocks = append(blocks, b)
	}
	d.dirty = make(map[int64][]byte)
	d.stats.Syncs++
	d.stats.BlocksFlushed += int64(len(blocks))
	d.mu.Unlock()

	if len(blocks) == 0 {
		d.delay(d.cfg.WriteLatency) // fsync barrier still waits
		return
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	extents := 1
	for i := 1; i < len(blocks); i++ {
		if blocks[i] != blocks[i-1]+BlockSize {
			extents++
		}
	}
	bytes := int64(len(blocks)) * BlockSize
	total := time.Duration(extents)*d.cfg.WriteLatency +
		time.Duration(float64(bytes)/d.cfg.WriteBandwidth*1e9)
	d.delay(total)
}

// SyncRange is like Sync but only flushes dirty blocks overlapping
// [off, off+n) — the msync path used by the Tokyo Cabinet conversion.
func (d *Disk) SyncRange(off, n int64) {
	d.mu.Lock()
	first := off &^ (BlockSize - 1)
	last := (off + n - 1) &^ (BlockSize - 1)
	var blocks []int64
	for b := first; b <= last; b += BlockSize {
		if _, ok := d.dirty[b]; ok {
			blocks = append(blocks, b)
			delete(d.dirty, b)
		}
	}
	d.stats.Syncs++
	d.stats.BlocksFlushed += int64(len(blocks))
	d.mu.Unlock()

	extents := 0
	for i := range blocks {
		if i == 0 || blocks[i] != blocks[i-1]+BlockSize {
			extents++
		}
	}
	total := time.Duration(extents)*d.cfg.WriteLatency +
		time.Duration(float64(int64(len(blocks))*BlockSize)/d.cfg.WriteBandwidth*1e9)
	if extents == 0 {
		total = d.cfg.WriteLatency
	}
	d.delay(total)
}

// Crash drops unsynced writes: each dirty block independently keeps its
// new contents with probability 1/2 under the seeded policy, or loses all
// of them with seed < 0 (drop-all).
func (d *Disk) Crash(seed int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var rng *rand.Rand
	if seed >= 0 {
		rng = rand.New(rand.NewSource(seed))
	}
	for b, old := range d.dirty {
		if rng == nil || rng.Intn(2) == 0 {
			copy(d.data[b:b+BlockSize], old)
		}
	}
	d.dirty = make(map[int64][]byte)
}

// DirtyBlocks reports how many blocks are buffered but not durable.
func (d *Disk) DirtyBlocks() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.dirty)
}

func (d *Disk) delay(t time.Duration) {
	if !d.cfg.Spin || t <= 0 {
		return
	}
	deadline := time.Now().Add(t)
	for time.Now().Before(deadline) {
	}
}

// File is a fixed-capacity extent on the disk, standing in for an ext2
// file. Syncing a file also writes one metadata block (its "inode").
type File struct {
	d        *Disk
	name     string
	meta     int64 // metadata block offset
	base     int64
	capacity int64

	mu   sync.Mutex
	size int64
}

// CreateFile carves a file of the given capacity (plus one metadata
// block). Returns the existing file when the name is taken.
func (d *Disk) CreateFile(name string, capacity int64) (*File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if f, ok := d.files[name]; ok {
		return f, nil
	}
	capacity = (capacity + BlockSize - 1) &^ (BlockSize - 1)
	need := capacity + BlockSize
	if d.next+need > d.cfg.Size {
		return nil, errors.New("pcmdisk: disk full")
	}
	f := &File{d: d, name: name, meta: d.next, base: d.next + BlockSize, capacity: capacity}
	d.next += need
	d.files[name] = f
	return f, nil
}

// WriteAt writes into the file (buffered).
func (f *File) WriteAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > f.capacity {
		return fmt.Errorf("pcmdisk: file %s write [%d,+%d) out of capacity %d",
			f.name, off, len(p), f.capacity)
	}
	if err := f.d.WriteAt(p, f.base+off); err != nil {
		return err
	}
	f.mu.Lock()
	if off+int64(len(p)) > f.size {
		f.size = off + int64(len(p))
	}
	f.mu.Unlock()
	return nil
}

// ReadAt reads from the file.
func (f *File) ReadAt(p []byte, off int64) error {
	return f.d.ReadAt(p, f.base+off)
}

// Size returns the written extent of the file.
func (f *File) Size() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

// Sync makes the file's writes durable: its data blocks plus one metadata
// block write.
func (f *File) Sync() {
	var meta [8]byte
	f.mu.Lock()
	sz := f.size
	f.mu.Unlock()
	for i := 0; i < 8; i++ {
		meta[i] = byte(sz >> (8 * i))
	}
	_ = f.d.WriteAt(meta[:], f.meta)
	f.d.Sync()
}
