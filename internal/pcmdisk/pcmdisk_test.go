package pcmdisk

import (
	"bytes"
	"testing"
)

func TestReadWriteRoundTrip(t *testing.T) {
	d := Open(Config{Size: 1 << 20})
	msg := []byte("block device payload")
	if err := d.WriteAt(msg, 777); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := d.ReadAt(got, 777); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	d := Open(Config{Size: 1 << 20})
	if err := d.WriteAt(make([]byte, 10), d.Size()-5); err == nil {
		t.Fatal("expected range error")
	}
	if err := d.ReadAt(make([]byte, 10), -1); err == nil {
		t.Fatal("expected range error")
	}
}

func TestCrashDropsUnsyncedWrites(t *testing.T) {
	d := Open(Config{Size: 1 << 20})
	if err := d.WriteAt([]byte{1, 2, 3}, 0); err != nil {
		t.Fatal(err)
	}
	d.Sync()
	if err := d.WriteAt([]byte{9, 9, 9}, 0); err != nil {
		t.Fatal(err)
	}
	d.Crash(-1) // drop all
	got := make([]byte, 3)
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("after crash = %v", got)
	}
	if d.DirtyBlocks() != 0 {
		t.Fatal("dirty blocks survive crash")
	}
}

func TestCrashBlockGranularity(t *testing.T) {
	// Writes to distinct blocks live or die independently under a
	// random crash; within one block they live or die together.
	d := Open(Config{Size: 1 << 20})
	for b := int64(0); b < 64; b++ {
		if err := d.WriteAt([]byte{byte(b + 1)}, b*BlockSize); err != nil {
			t.Fatal(err)
		}
	}
	d.Crash(12345)
	kept, lost := 0, 0
	got := make([]byte, 1)
	for b := int64(0); b < 64; b++ {
		if err := d.ReadAt(got, b*BlockSize); err != nil {
			t.Fatal(err)
		}
		if got[0] == byte(b+1) {
			kept++
		} else {
			lost++
		}
	}
	if kept == 0 || lost == 0 {
		t.Fatalf("crash not block-granular: kept=%d lost=%d", kept, lost)
	}
}

func TestSyncRangeFlushesOnlyRange(t *testing.T) {
	d := Open(Config{Size: 1 << 20})
	if err := d.WriteAt([]byte{1}, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt([]byte{2}, 16*BlockSize); err != nil {
		t.Fatal(err)
	}
	d.SyncRange(0, 1)
	if d.DirtyBlocks() != 1 {
		t.Fatalf("dirty = %d, want 1", d.DirtyBlocks())
	}
	d.Crash(-1)
	got := make([]byte, 1)
	_ = d.ReadAt(got, 0)
	if got[0] != 1 {
		t.Fatal("synced block lost")
	}
	_ = d.ReadAt(got, 16*BlockSize)
	if got[0] != 0 {
		t.Fatal("unsynced block survived")
	}
}

func TestFileCarvingAndSync(t *testing.T) {
	d := Open(Config{Size: 1 << 20})
	f1, err := d.CreateFile("a", 8192)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := d.CreateFile("b", 8192)
	if err != nil {
		t.Fatal(err)
	}
	if err := f1.WriteAt([]byte("file-a"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f2.WriteAt([]byte("file-b"), 0); err != nil {
		t.Fatal(err)
	}
	f1.Sync()
	f2.Sync()
	got := make([]byte, 6)
	if err := f1.ReadAt(got, 0); err != nil || string(got) != "file-a" {
		t.Fatalf("f1 = %q %v", got, err)
	}
	if err := f2.ReadAt(got, 0); err != nil || string(got) != "file-b" {
		t.Fatalf("f2 = %q %v", got, err)
	}
	if f1.Size() != 6 {
		t.Fatalf("f1 size = %d", f1.Size())
	}
	// Same name returns the same file.
	f1b, err := d.CreateFile("a", 1)
	if err != nil || f1b != f1 {
		t.Fatal("CreateFile not idempotent by name")
	}
	// Capacity enforced.
	if err := f1.WriteAt(make([]byte, 1), 8192); err == nil {
		t.Fatal("expected capacity error")
	}
}

func TestDiskFull(t *testing.T) {
	d := Open(Config{Size: 64 << 10})
	if _, err := d.CreateFile("big", 1<<20); err == nil {
		t.Fatal("expected disk full")
	}
}

func TestStatsCount(t *testing.T) {
	d := Open(Config{Size: 1 << 20})
	_ = d.WriteAt(make([]byte, 100), 0)
	d.Sync()
	s := d.Stats()
	if s.Writes != 1 || s.Syncs != 1 || s.BlocksFlushed != 1 {
		t.Fatalf("stats = %+v", s)
	}
}
