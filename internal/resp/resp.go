// Package resp implements the RESP2 wire protocol (the Redis
// serialization protocol): commands arrive as arrays of bulk strings or
// as whitespace-separated inline lines, replies leave as simple strings,
// errors, integers, bulk strings, or arrays.
//
// The package is transport-only: it frames commands and replies over a
// byte stream and knows nothing about what the commands mean. kvserve
// mounts a Reader/Writer pair per connection on its RESP listener; the
// same pair drives the in-repo client (cmd/respsmoke) and the mnbench
// resp kernel, so CI needs no external redis-cli.
//
// Bulk strings carry arbitrary bytes — including spaces, newlines, and
// NULs — which is what lifts the legacy line protocol's "values without
// spaces" restriction end to end.
package resp

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Protocol limits. A frame that declares more is a protocol error, not
// an allocation: the reader validates declared sizes before making room
// for them, so a hostile "$9999999999" costs nothing.
const (
	// MaxBulkLen bounds one bulk string (a key, a value, one argument).
	// It leaves headroom over kvserve's 56 KiB value cap so an oversized
	// value reaches the command layer and earns a clean command error
	// rather than a connection-killing protocol error.
	MaxBulkLen = 64 << 10
	// MaxArrayLen bounds the elements of one command array (and of one
	// reply array when parsing replies).
	MaxArrayLen = 1 << 16
	// MaxInlineLen bounds one inline command line.
	MaxInlineLen = 64 << 10
)

// maxValueDepth bounds reply nesting when parsing replies client-side.
const maxValueDepth = 32

// ProtoError is a RESP framing violation: bad type byte, malformed
// length, missing CRLF, or a declared size beyond the limits. After a
// ProtoError the stream cannot be resynchronized; the server answers a
// final error and closes the connection, like Redis does.
type ProtoError struct{ msg string }

func (e *ProtoError) Error() string { return "resp: " + e.msg }

func protoErrf(format string, args ...any) error {
	return &ProtoError{msg: fmt.Sprintf(format, args...)}
}

// IsProtocol reports whether err is a framing violation (as opposed to
// an I/O error such as a closed connection).
func IsProtocol(err error) bool {
	var pe *ProtoError
	return errors.As(err, &pe)
}

// Reader decodes RESP frames from a stream.
type Reader struct {
	br *bufio.Reader
}

// NewReader wraps r with a buffered RESP decoder.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 64<<10)}
}

// ReadCommand reads one client command: either a RESP array of bulk
// strings ("*2\r\n$3\r\nGET\r\n$1\r\nk\r\n") or an inline command
// ("GET k\r\n"). Empty inline lines and empty arrays are skipped, as in
// Redis. The returned argument slices are freshly allocated and safe to
// retain. I/O errors (including a torn frame at EOF) come back as-is;
// framing violations come back as ProtoError.
func (r *Reader) ReadCommand() ([][]byte, error) {
	for {
		b, err := r.br.ReadByte()
		if err != nil {
			return nil, err
		}
		if b != '*' {
			if err := r.br.UnreadByte(); err != nil {
				return nil, err
			}
			args, err := r.readInline()
			if err != nil {
				return nil, err
			}
			if len(args) == 0 {
				continue // empty line: skip, as Redis does
			}
			return args, nil
		}
		n, err := r.readIntLine()
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			continue // *0 or *-1: no command here, read on
		}
		if n > MaxArrayLen {
			return nil, protoErrf("multibulk length %d exceeds %d", n, MaxArrayLen)
		}
		// Cap the initial allocation: the declared count is attacker
		// controlled, the actually-delivered elements are not.
		args := make([][]byte, 0, min(int(n), 64))
		for i := int64(0); i < n; i++ {
			arg, err := r.readBulk()
			if err != nil {
				return nil, err
			}
			args = append(args, arg)
		}
		return args, nil
	}
}

// readBulk reads one "$<len>\r\n<bytes>\r\n" frame. Null bulks inside a
// command are a protocol error (a command argument cannot be null).
func (r *Reader) readBulk() ([]byte, error) {
	b, err := r.br.ReadByte()
	if err != nil {
		return nil, err
	}
	if b != '$' {
		return nil, protoErrf("expected bulk string ('$'), got %q", b)
	}
	l, err := r.readIntLine()
	if err != nil {
		return nil, err
	}
	if l < 0 {
		return nil, protoErrf("negative bulk length in command")
	}
	if l > MaxBulkLen {
		return nil, protoErrf("bulk length %d exceeds %d", l, MaxBulkLen)
	}
	buf := make([]byte, l)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return nil, err
	}
	if err := r.readCRLF(); err != nil {
		return nil, err
	}
	return buf, nil
}

// readInline reads one inline command line and splits it on whitespace.
func (r *Reader) readInline() ([][]byte, error) {
	line, err := r.readLine(MaxInlineLen)
	if err != nil {
		return nil, err
	}
	fields := bytes.Fields(line)
	args := make([][]byte, len(fields))
	for i, f := range fields {
		// bytes.Fields returns views into line's backing array; copy so
		// arguments stay valid independent of the reader.
		args[i] = append([]byte(nil), f...)
	}
	return args, nil
}

// readLine reads up to '\n' (at most max bytes), trimming the trailing
// CRLF or LF.
func (r *Reader) readLine(max int) ([]byte, error) {
	var line []byte
	for {
		frag, err := r.br.ReadSlice('\n')
		line = append(line, frag...)
		if err == bufio.ErrBufferFull {
			if len(line) > max {
				return nil, protoErrf("line exceeds %d bytes", max)
			}
			continue
		}
		if err != nil {
			return nil, err
		}
		break
	}
	if len(line) > max+1 {
		return nil, protoErrf("line exceeds %d bytes", max)
	}
	line = bytes.TrimSuffix(line, []byte("\n"))
	return bytes.TrimSuffix(line, []byte("\r")), nil
}

// readIntLine parses the "<int>\r\n" remainder of a length header.
func (r *Reader) readIntLine() (int64, error) {
	var (
		n      int64
		neg    bool
		digits int
		first  = true
	)
	for {
		b, err := r.br.ReadByte()
		if err != nil {
			return 0, err
		}
		switch {
		case b == '\r':
			b2, err := r.br.ReadByte()
			if err != nil {
				return 0, err
			}
			if b2 != '\n' {
				return 0, protoErrf("length header not CRLF-terminated")
			}
			if digits == 0 {
				return 0, protoErrf("empty length header")
			}
			if neg {
				n = -n
			}
			return n, nil
		case b == '-' && first:
			neg = true
		case b >= '0' && b <= '9':
			digits++
			if digits > 18 {
				return 0, protoErrf("length header overflows")
			}
			n = n*10 + int64(b-'0')
		default:
			return 0, protoErrf("bad byte %q in length header", b)
		}
		first = false
	}
}

// readCRLF consumes a frame-terminating CRLF.
func (r *Reader) readCRLF() error {
	b1, err := r.br.ReadByte()
	if err != nil {
		return err
	}
	b2, err := r.br.ReadByte()
	if err != nil {
		return err
	}
	if b1 != '\r' || b2 != '\n' {
		return protoErrf("bulk string not CRLF-terminated")
	}
	return nil
}

// CommandAvailable reports whether at least one complete command is
// already buffered, so ReadCommand cannot block. A malformed prefix
// counts as available: reading it fails fast with a ProtoError instead
// of blocking. This is how the server drains a pipelined burst — keep
// reading while complete commands are provably present, then execute
// the batch.
func (r *Reader) CommandAvailable() bool {
	n := r.br.Buffered()
	if n == 0 {
		return false
	}
	b, err := r.br.Peek(n)
	if err != nil {
		return false
	}
	return commandScan(b) != 0
}

// commandScan scans one command at the start of b without consuming it:
// >0 is the byte length of a complete leading command (or skippable
// unit), 0 means incomplete, -1 means malformed (reading it will error
// promptly, so it counts as available).
func commandScan(b []byte) int {
	if len(b) == 0 {
		return 0
	}
	if b[0] != '*' {
		i := bytes.IndexByte(b, '\n')
		if i < 0 {
			if len(b) > MaxInlineLen {
				return -1
			}
			return 0
		}
		return i + 1
	}
	n, pos := scanIntLine(b, 1)
	if pos < 0 {
		return -1
	}
	if pos == 0 {
		return 0
	}
	if n <= 0 {
		return pos // *0 / *-1: a complete skippable unit
	}
	if n > MaxArrayLen {
		return -1
	}
	for e := int64(0); e < n; e++ {
		if pos >= len(b) {
			return 0
		}
		if b[pos] != '$' {
			return -1
		}
		l, next := scanIntLine(b, pos+1)
		if next < 0 || l < 0 || l > MaxBulkLen {
			return -1
		}
		if next == 0 {
			return 0
		}
		pos = next + int(l) + 2
		if pos > len(b) {
			return 0
		}
	}
	return pos
}

// scanIntLine parses "<int>\r\n" at b[from:], returning the value and
// the offset just past the terminator; next==0 means incomplete,
// next==-1 means malformed.
func scanIntLine(b []byte, from int) (v int64, next int) {
	i := from
	neg := false
	if i < len(b) && b[i] == '-' {
		neg = true
		i++
	}
	digits := 0
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		digits++
		if digits > 18 {
			return 0, -1
		}
		v = v*10 + int64(b[i]-'0')
		i++
	}
	if i >= len(b) {
		return 0, 0
	}
	if digits == 0 || b[i] != '\r' {
		return 0, -1
	}
	if i+1 >= len(b) {
		return 0, 0
	}
	if b[i+1] != '\n' {
		return 0, -1
	}
	if neg {
		v = -v
	}
	return v, i + 2
}

// Value is one parsed RESP reply, for the client side of the protocol
// (tests, cmd/respsmoke, the bench kernel).
type Value struct {
	Type  byte // '+', '-', ':', '$', '*'
	Str   string
	Int   int64
	Bulk  []byte
	Null  bool
	Array []Value
}

// ReadValue parses one reply of any RESP2 type, recursively for arrays.
func (r *Reader) ReadValue() (Value, error) {
	return r.readValue(0)
}

func (r *Reader) readValue(depth int) (Value, error) {
	if depth > maxValueDepth {
		return Value{}, protoErrf("reply nesting exceeds %d", maxValueDepth)
	}
	t, err := r.br.ReadByte()
	if err != nil {
		return Value{}, err
	}
	switch t {
	case '+', '-':
		line, err := r.readLine(MaxInlineLen)
		if err != nil {
			return Value{}, err
		}
		return Value{Type: t, Str: string(line)}, nil
	case ':':
		n, err := r.readIntLine()
		if err != nil {
			return Value{}, err
		}
		return Value{Type: t, Int: n}, nil
	case '$':
		l, err := r.readIntLine()
		if err != nil {
			return Value{}, err
		}
		if l == -1 {
			return Value{Type: t, Null: true}, nil
		}
		if l < 0 || l > MaxBulkLen {
			return Value{}, protoErrf("bulk length %d out of range", l)
		}
		buf := make([]byte, l)
		if _, err := io.ReadFull(r.br, buf); err != nil {
			return Value{}, err
		}
		if err := r.readCRLF(); err != nil {
			return Value{}, err
		}
		return Value{Type: t, Bulk: buf}, nil
	case '*':
		n, err := r.readIntLine()
		if err != nil {
			return Value{}, err
		}
		if n == -1 {
			return Value{Type: t, Null: true}, nil
		}
		if n < 0 || n > MaxArrayLen {
			return Value{}, protoErrf("array length %d out of range", n)
		}
		elems := make([]Value, 0, min(int(n), 64))
		for i := int64(0); i < n; i++ {
			e, err := r.readValue(depth + 1)
			if err != nil {
				return Value{}, err
			}
			elems = append(elems, e)
		}
		return Value{Type: t, Array: elems}, nil
	default:
		return Value{}, protoErrf("bad reply type byte %q", t)
	}
}

// Writer encodes RESP frames onto a stream. Nothing is sent until
// Flush; the server flushes once per pipelined batch.
type Writer struct {
	bw *bufio.Writer
}

// NewWriter wraps w with a buffered RESP encoder.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 16<<10)}
}

// WriteSimple writes "+s\r\n". s must not contain CR or LF.
func (w *Writer) WriteSimple(s string) error {
	w.bw.WriteByte('+')
	w.bw.WriteString(s)
	_, err := w.bw.WriteString("\r\n")
	return err
}

// WriteError writes "-msg\r\n", sanitizing embedded line breaks.
func (w *Writer) WriteError(msg string) error {
	w.bw.WriteByte('-')
	for i := 0; i < len(msg); i++ {
		c := msg[i]
		if c == '\r' || c == '\n' {
			c = ' '
		}
		w.bw.WriteByte(c)
	}
	_, err := w.bw.WriteString("\r\n")
	return err
}

// WriteInt writes ":n\r\n".
func (w *Writer) WriteInt(n int64) error {
	w.bw.WriteByte(':')
	w.bw.WriteString(strconv.FormatInt(n, 10))
	_, err := w.bw.WriteString("\r\n")
	return err
}

// WriteBulk writes "$len\r\nb\r\n". A nil slice is written as an empty
// bulk, not a null — use WriteNull for null.
func (w *Writer) WriteBulk(b []byte) error {
	w.bw.WriteByte('$')
	w.bw.WriteString(strconv.Itoa(len(b)))
	w.bw.WriteString("\r\n")
	w.bw.Write(b)
	_, err := w.bw.WriteString("\r\n")
	return err
}

// WriteBulkString writes s as a bulk string.
func (w *Writer) WriteBulkString(s string) error {
	w.bw.WriteByte('$')
	w.bw.WriteString(strconv.Itoa(len(s)))
	w.bw.WriteString("\r\n")
	w.bw.WriteString(s)
	_, err := w.bw.WriteString("\r\n")
	return err
}

// WriteNull writes the null bulk "$-1\r\n".
func (w *Writer) WriteNull() error {
	_, err := w.bw.WriteString("$-1\r\n")
	return err
}

// WriteArrayHeader writes "*n\r\n"; the caller then writes n elements.
func (w *Writer) WriteArrayHeader(n int) error {
	w.bw.WriteByte('*')
	w.bw.WriteString(strconv.Itoa(n))
	_, err := w.bw.WriteString("\r\n")
	return err
}

// WriteCommand writes one command as an array of bulk strings — the
// client side of ReadCommand.
func (w *Writer) WriteCommand(args ...[]byte) error {
	if err := w.WriteArrayHeader(len(args)); err != nil {
		return err
	}
	for _, a := range args {
		if err := w.WriteBulk(a); err != nil {
			return err
		}
	}
	return nil
}

// WriteCommandStrings writes one command from string arguments.
func (w *Writer) WriteCommandStrings(args ...string) error {
	if err := w.WriteArrayHeader(len(args)); err != nil {
		return err
	}
	for _, a := range args {
		if err := w.WriteBulkString(a); err != nil {
			return err
		}
	}
	return nil
}

// Flush sends everything buffered.
func (w *Writer) Flush() error { return w.bw.Flush() }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
