package resp

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

// FuzzRESPParse throws arbitrary byte streams at the command reader.
// Invariants, for any input:
//
//   - the reader never panics and never allocates beyond the declared
//     limits (argument counts and sizes stay within MaxArrayLen and
//     MaxBulkLen);
//   - the completeness scanner agrees with the reader: when commandScan
//     says a complete command is buffered, reading it returns either a
//     command or a ProtoError — never a blocked/torn-frame I/O error;
//   - every parsed command survives a write/reparse round trip bit for
//     bit, so the client and server sides of the codec agree.
//
// The checked-in corpus (testdata/fuzz/FuzzRESPParse) pins torn frames,
// oversized bulk lengths, and nested arrays.
func FuzzRESPParse(f *testing.F) {
	f.Add([]byte("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n"))
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$1\r\nk\r\n"))
	f.Add([]byte("PING\r\nGET key\r\n"))
	f.Add([]byte("*1\r\n$3\r\nAB"))              // torn bulk body
	f.Add([]byte("*2\r\n$3\r\nGET\r\n"))         // torn array
	f.Add([]byte("*1\r\n$99999999999\r\nx"))     // oversized bulk length
	f.Add([]byte("*1\r\n*1\r\n$1\r\na\r\n"))     // nested array
	f.Add([]byte("*-1\r\n*0\r\n$4\r\nPING\r\n")) // null/empty arrays then junk
	f.Add([]byte("$5\r\nhello\r\n"))             // reply-typed frame as a command
	f.Add([]byte("*1\r\n$-7\r\n"))               // negative bulk length
	f.Add([]byte("\r\n\r\n\r\n"))
	f.Add([]byte{0x00, 0xff, '*', '1'})

	f.Fuzz(func(t *testing.T, data []byte) {
		if n := commandScan(data); n < -1 || n > len(data) {
			t.Fatalf("commandScan(%q) = %d, outside [-1, len]", data, n)
		}
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			args, err := r.ReadCommand()
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF && !IsProtocol(err) {
					t.Fatalf("unexpected error class %v on %q", err, data)
				}
				return
			}
			if len(args) == 0 || len(args) > MaxArrayLen {
				t.Fatalf("argument count %d out of range on %q", len(args), data)
			}
			for _, a := range args {
				if len(a) > MaxBulkLen {
					t.Fatalf("argument of %d bytes exceeds MaxBulkLen on %q", len(a), data)
				}
			}
			// Round trip: re-encode as a canonical array command and
			// reparse; the result must be identical.
			var buf bytes.Buffer
			w := NewWriter(&buf)
			if err := w.WriteCommand(args...); err != nil {
				t.Fatal(err)
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			again, err := NewReader(&buf).ReadCommand()
			if err != nil {
				t.Fatalf("reparse of %q: %v", args, err)
			}
			if !reflect.DeepEqual(args, again) {
				t.Fatalf("round trip changed %q into %q", args, again)
			}
		}
	})
}
