package resp

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
)

func readAll(t *testing.T, input string) [][][]byte {
	t.Helper()
	r := NewReader(strings.NewReader(input))
	var cmds [][][]byte
	for {
		args, err := r.ReadCommand()
		if err == io.EOF {
			return cmds
		}
		if err != nil {
			t.Fatalf("ReadCommand(%q): %v", input, err)
		}
		cmds = append(cmds, args)
	}
}

func TestReadCommandArray(t *testing.T) {
	cmds := readAll(t, "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nv a\nb\r\n")
	if len(cmds) != 1 {
		t.Fatalf("got %d commands", len(cmds))
	}
	want := [][]byte{[]byte("SET"), []byte("k"), []byte("v a\nb")}
	if !reflect.DeepEqual(cmds[0], want) {
		t.Fatalf("args = %q, want %q", cmds[0], want)
	}
}

func TestReadCommandInline(t *testing.T) {
	cmds := readAll(t, "PING\r\n\r\nGET  key1\n")
	if len(cmds) != 2 {
		t.Fatalf("got %d commands: %q", len(cmds), cmds)
	}
	if string(cmds[0][0]) != "PING" {
		t.Fatalf("first = %q", cmds[0])
	}
	if len(cmds[1]) != 2 || string(cmds[1][1]) != "key1" {
		t.Fatalf("second = %q", cmds[1])
	}
}

func TestReadCommandSkipsEmptyArrays(t *testing.T) {
	cmds := readAll(t, "*0\r\n*-1\r\n*1\r\n$4\r\nPING\r\n")
	if len(cmds) != 1 || string(cmds[0][0]) != "PING" {
		t.Fatalf("cmds = %q", cmds)
	}
}

func TestReadCommandErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
		proto bool // ProtoError wanted; else an I/O error
	}{
		{"torn array header", "*2\r\n$3\r\nGE", false},
		{"torn bulk body", "*1\r\n$10\r\nabc", false},
		{"oversized bulk", "*1\r\n$999999999\r\n", true},
		{"negative bulk", "*1\r\n$-1\r\n", true},
		{"nested array", "*1\r\n*1\r\n$1\r\na\r\n", true},
		{"bad length", "*x\r\n", true},
		{"missing crlf", "*1\r\n$1\r\na!!", true},
		{"huge multibulk", "*9999999\r\n", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewReader(strings.NewReader(tc.input))
			_, err := r.ReadCommand()
			if err == nil {
				t.Fatalf("%q parsed without error", tc.input)
			}
			if got := IsProtocol(err); got != tc.proto {
				t.Fatalf("%q: IsProtocol = %v (err %v), want %v", tc.input, got, err, tc.proto)
			}
		})
	}
}

func TestCommandAvailable(t *testing.T) {
	empty := NewReader(strings.NewReader(""))
	if empty.CommandAvailable() {
		t.Fatal("available on empty buffer")
	}
	// Half a command: not available.
	torn := NewReader(strings.NewReader("*2\r\n$3\r\nGET\r\n"))
	torn.br.Peek(13) // force a fill without consuming
	if torn.CommandAvailable() {
		t.Fatal("available with a torn frame buffered")
	}
	full := "*2\r\n$3\r\nGET\r\n$1\r\nk\r\n*1\r\n$4\r\nPING\r\n"
	r := NewReader(strings.NewReader(full))
	r.br.Peek(len(full))
	if !r.CommandAvailable() {
		t.Fatal("not available with two complete commands buffered")
	}
	if args, err := r.ReadCommand(); err != nil || string(args[0]) != "GET" {
		t.Fatalf("first command: %q, %v", args, err)
	}
	if !r.CommandAvailable() {
		t.Fatal("second command not available")
	}
	if args, err := r.ReadCommand(); err != nil || string(args[0]) != "PING" {
		t.Fatalf("second command: %q, %v", args, err)
	}
	if r.CommandAvailable() {
		t.Fatal("available after the buffer drained")
	}
}

func TestWriterValueRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteSimple("OK")
	w.WriteError("ERR boom")
	w.WriteInt(-42)
	w.WriteBulk([]byte("a\x00b"))
	w.WriteNull()
	w.WriteArrayHeader(2)
	w.WriteBulkString("x")
	w.WriteInt(7)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	checks := []func(v Value){
		func(v Value) {
			if v.Type != '+' || v.Str != "OK" {
				t.Fatalf("simple: %+v", v)
			}
		},
		func(v Value) {
			if v.Type != '-' || v.Str != "ERR boom" {
				t.Fatalf("error: %+v", v)
			}
		},
		func(v Value) {
			if v.Type != ':' || v.Int != -42 {
				t.Fatalf("int: %+v", v)
			}
		},
		func(v Value) {
			if v.Type != '$' || string(v.Bulk) != "a\x00b" {
				t.Fatalf("bulk: %+v", v)
			}
		},
		func(v Value) {
			if v.Type != '$' || !v.Null {
				t.Fatalf("null: %+v", v)
			}
		},
		func(v Value) {
			if v.Type != '*' || len(v.Array) != 2 || string(v.Array[0].Bulk) != "x" || v.Array[1].Int != 7 {
				t.Fatalf("array: %+v", v)
			}
		},
	}
	for i, check := range checks {
		v, err := r.ReadValue()
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		check(v)
	}
}

func TestWriteCommandRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	args := [][]byte{[]byte("SET"), []byte("bin"), {0, 1, 2, '\r', '\n', ' ', 0xff}}
	if err := w.WriteCommand(args...); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, args) {
		t.Fatalf("round trip: %q != %q", got, args)
	}
}
