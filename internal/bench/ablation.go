package bench

import (
	"fmt"
	"time"
)

// Ablations over the transaction system's design choices (DESIGN.md §5):
// redo vs undo logging, store+flush vs write-through write-back, and
// synchronous vs asynchronous truncation, all on the same hashtable
// workload.

// AblationRow is one variant's result.
type AblationRow struct {
	Variant       string
	ValueSize     int
	WriteLatency  time.Duration
	UpdatesPerSec float64
}

func (r AblationRow) String() string {
	return fmt.Sprintf("%-14s %5dB: write latency %s, %.0f updates/s",
		r.Variant, r.ValueSize, fmtDur(r.WriteLatency), r.UpdatesPerSec)
}

// AblationVariants lists the supported variants.
var AblationVariants = []string{"redo", "undo", "wt-writeback", "async"}

// RunAblation measures one variant at one value size.
func RunAblation(variant string, valueSize int, base Options) (AblationRow, error) {
	o := HashOpts{Options: base, ValueSize: valueSize, Threads: 1}
	switch variant {
	case "redo":
		// The default configuration.
	case "undo":
		o.Options.UndoLogging = true
	case "wt-writeback":
		o.Options.WriteThroughWriteback = true
	case "async":
		o.Options.AsyncTruncation = true
	default:
		return AblationRow{}, fmt.Errorf("bench: unknown ablation %q", variant)
	}
	row, err := RunHashtableMTM(o)
	if err != nil {
		return AblationRow{}, fmt.Errorf("ablation %s: %w", variant, err)
	}
	return AblationRow{
		Variant:       variant,
		ValueSize:     valueSize,
		WriteLatency:  row.WriteLatency,
		UpdatesPerSec: row.UpdatesPerSec,
	}, nil
}
