package bench

import (
	"testing"
	"time"
)

// Kernel sanity tests run every experiment with delays off and tiny
// workloads so CI stays fast; the real numbers come from cmd/mnbench and
// the repository benchmarks.

func quick() Options { return Options{Spin: false, DeviceSize: 256 << 20, HeapSize: 64 << 20} }

func TestHashtableKernels(t *testing.T) {
	for _, threads := range []int{1, 2} {
		m, err := RunHashtableMTM(HashOpts{
			Options: quick(), ValueSize: 64, Threads: threads, OpsPerThread: 200,
		})
		if err != nil {
			t.Fatal(err)
		}
		if m.UpdatesPerSec <= 0 || m.WriteLatency <= 0 {
			t.Fatalf("MTM row: %+v", m)
		}
		b, err := RunHashtableBDB(HashOpts{
			Options: quick(), ValueSize: 64, Threads: threads, OpsPerThread: 200,
		})
		if err != nil {
			t.Fatal(err)
		}
		if b.UpdatesPerSec <= 0 {
			t.Fatalf("BDB row: %+v", b)
		}
	}
}

func TestLDAPKernelAllBackends(t *testing.T) {
	for _, backend := range []string{"bdb", "ldbm", "mnemosyne"} {
		row, err := RunLDAP(LDAPOpts{Options: quick(), Backend: backend, Threads: 4, Entries: 300})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if row.UpdatesPS <= 0 {
			t.Fatalf("%s: %+v", backend, row)
		}
	}
}

func TestTCKernelBothModes(t *testing.T) {
	for _, mode := range []string{"msync", "mnemosyne"} {
		row, err := RunTC(TCOpts{Options: quick(), Mode: mode, ValueSize: 64, Ops: 300})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if row.UpdatesPS <= 0 {
			t.Fatalf("%s: %+v", mode, row)
		}
	}
}

func TestTable5Kernel(t *testing.T) {
	row, err := RunTable5(Table5Opts{Options: quick(), TreeSize: 512, MeasuredInserts: 100})
	if err != nil {
		t.Fatal(err)
	}
	if row.InsertLatency <= 0 || row.SerializeLatency <= 0 {
		t.Fatalf("row: %+v", row)
	}
	if row.InsertsPerSerialization <= 1 {
		t.Fatalf("serialization should cost more than one insert: %+v", row)
	}
}

func TestTable6Kernel(t *testing.T) {
	row, err := RunTable6(Table6Opts{Options: quick(), RecordBytes: 64, Appends: 500})
	if err != nil {
		t.Fatal(err)
	}
	if row.BaseMBps <= 0 || row.TornbitMBps <= 0 {
		t.Fatalf("row: %+v", row)
	}
}

func TestFigure6Kernel(t *testing.T) {
	row, err := RunFigure6Cell(50, 64, quick())
	if err != nil {
		t.Fatal(err)
	}
	if row.SyncLat <= 0 || row.AsyncLat <= 0 {
		t.Fatalf("row: %+v", row)
	}
}

func TestFigure7Kernel(t *testing.T) {
	row, err := RunFigure7Cell(time.Microsecond, 64, quick())
	if err != nil {
		t.Fatal(err)
	}
	if row.MTM <= 0 || row.BDB <= 0 {
		t.Fatalf("row: %+v", row)
	}
}

func TestReincarnationKernel(t *testing.T) {
	res, err := RunReincarnation(ReincarnationOpts{
		Options: quick(), LiveAllocs: 500, PendingTx: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The log manager may have truncated some commits before the halt;
	// the rest must replay (RunReincarnation itself verifies the data).
	if res.TxReplayed < 1 || res.TxReplayed > 16 {
		t.Fatalf("replayed %d, want 1..16", res.TxReplayed)
	}
	if res.ManagerBoot <= 0 || res.HeapScavenge <= 0 {
		t.Fatalf("result: %+v", res)
	}
}

func TestReadMostlyKernel(t *testing.T) {
	rows, err := RunReadMostly(ReadMostlyOpts{
		Options: quick(), GoroutineSweep: []int{1, 4}, OpsPerG: 100, Keys: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.OpsPerSec <= 0 {
			t.Fatalf("row: %+v", r)
		}
		switch r.Mode {
		case "atomic":
			if r.LeasesPerOp < 0.9 {
				t.Fatalf("atomic baseline should lease per op: %+v", r)
			}
		case "view":
			// ~5% of ops are writes; only those lease.
			if r.LeasesPerOp > 0.5 {
				t.Fatalf("view mode should barely lease: %+v", r)
			}
		}
	}
}

func TestHybridKernel(t *testing.T) {
	rows, err := RunHybrid(HybridOpts{
		Options: quick(), GoroutineSweep: []int{1}, TxPerG: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	byMode := map[string]HybridRow{}
	for _, r := range rows {
		if r.OpsPerSec <= 0 || r.FencesPerCommit <= 0 {
			t.Fatalf("row: %+v", r)
		}
		byMode[r.Mode] = r
	}
	// The acceptance head-to-head: at one goroutine the undo path issues
	// fewer device fences per commit than sync redo, and hybrid (whose
	// 4-word write sets fall under the threshold) rides the undo path.
	if byMode["undo"].FencesPerCommit >= byMode["redo"].FencesPerCommit {
		t.Fatalf("undo %.2f fences/commit not below redo %.2f",
			byMode["undo"].FencesPerCommit, byMode["redo"].FencesPerCommit)
	}
	if byMode["hybrid"].UndoShare < 0.9 {
		t.Fatalf("hybrid undo share = %.2f, want ~1 for 4-word txs", byMode["hybrid"].UndoShare)
	}
	if byMode["redo"].UndoShare != 0 {
		t.Fatalf("redo mode took the undo path: %+v", byMode["redo"])
	}
}

func TestReadCacheKernel(t *testing.T) {
	rows, err := RunReadCache(ReadCacheOpts{
		Options: quick(), GoroutineSweep: []int{1, 4}, OpsPerG: 100, Keys: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.OpsPerSec <= 0 {
			t.Fatalf("row: %+v", r)
		}
		switch r.Cache {
		case "off":
			if r.HitRate != 0 {
				t.Fatalf("cache off but hit rate %.2f: %+v", r.HitRate, r)
			}
		case "on":
			// 64 hot keys over a 2000-op warm run: the tree's upper
			// levels alone must hit well over half the time.
			if r.HitRate < 0.3 {
				t.Fatalf("cache on but hit rate only %.2f: %+v", r.HitRate, r)
			}
		}
	}
}

func TestAblationKernels(t *testing.T) {
	for _, v := range AblationVariants {
		row, err := RunAblation(v, 64, quick())
		if err != nil {
			t.Fatal(err)
		}
		if row.UpdatesPerSec <= 0 {
			t.Fatalf("%s: %+v", v, row)
		}
	}
}

func TestShardedKernel(t *testing.T) {
	rows, err := RunSharded(ShardedOpts{
		Options: quick(), ShardSweep: []int{1, 2}, Goroutines: 4, OpsPerG: 50, Keys: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.OpsPerSec <= 0 || r.WallOpsPerSec <= 0 || r.FencesPerCommit <= 0 {
			t.Fatalf("row: %+v", r)
		}
		if len(r.ShardCommits) != r.Shards {
			t.Fatalf("row has %d shard commit cells for %d shards", len(r.ShardCommits), r.Shards)
		}
		for k, c := range r.ShardCommits {
			if c == 0 {
				t.Fatalf("%d shards: shard %d committed nothing", r.Shards, k)
			}
		}
	}
	// Splitting the same device-bound work over two shards must help the
	// modeled (busiest-device) throughput.
	if rows[1].OpsPerSec <= rows[0].OpsPerSec {
		t.Fatalf("2 shards (%.0f modeled ops/s) not faster than 1 (%.0f)",
			rows[1].OpsPerSec, rows[0].OpsPerSec)
	}
}

func TestShardedRecoveryKernel(t *testing.T) {
	rows, err := RunShardedRecovery(ShardedRecoveryOpts{
		Options: quick(), Shards: 2, HeapSweepMB: []int64{4}, KeysPerMB: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Recovery <= 0 || r.ShardMax <= 0 || r.ShardMax > r.Recovery {
			t.Fatalf("row: %+v", r)
		}
	}
	if rows[0].Workers != 1 || rows[1].Workers != 2 {
		t.Fatalf("worker modes: %+v", rows)
	}
}

func TestRESPKernel(t *testing.T) {
	row, err := RunRESP(RESPOpts{
		Options: quick(), Clients: 2, Window: 8, OpsPerClient: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if row.OpsPerSec <= 0 {
		t.Fatalf("RESP row: %+v", row)
	}
	if row.FencesPerCommit <= 0 {
		t.Fatalf("no commits observed: %+v", row)
	}
}
