package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/mtm"
	"repro/internal/pmem"
)

// Group-commit experiment: K goroutines committing small independent
// transactions, with and without the epoch coordinator, plus a batched
// variant that folds several updates into one transaction via
// Thread.AtomicBatch. The figure of merit is device fences per committed
// transaction — the ordering overhead group commit amortizes — next to
// the throughput it buys.

// GroupCommitOpts configures the experiment.
type GroupCommitOpts struct {
	Options
	// Goroutines is the number of concurrent committers (default 8).
	Goroutines int
	// TxPerG is updates per goroutine (default 400).
	TxPerG int
	// BatchSize is updates per AtomicBatch call in the batched phase
	// (default 8).
	BatchSize int
}

// GroupCommitRow is one mode's measurement.
type GroupCommitRow struct {
	Mode            string
	Goroutines      int
	OpsPerSec       float64
	FencesPerCommit float64
}

func (r GroupCommitRow) String() string {
	return fmt.Sprintf("%-12s %2d goroutines: %9.0f ops/s, %5.2f fences/commit",
		r.Mode, r.Goroutines, r.OpsPerSec, r.FencesPerCommit)
}

// RunGroupCommit measures solo commits, group commits and batched group
// commits over identical workloads.
func RunGroupCommit(o GroupCommitOpts) ([]GroupCommitRow, error) {
	if o.Goroutines == 0 {
		o.Goroutines = 8
	}
	if o.TxPerG == 0 {
		o.TxPerG = 400
	}
	if o.BatchSize == 0 {
		o.BatchSize = 8
	}
	var rows []GroupCommitRow
	for _, phase := range []struct {
		mode           string
		group, batched bool
	}{
		{"solo", false, false},
		{"group", true, false},
		{"group+batch", true, true},
	} {
		row, err := runGroupCommitPhase(phase.mode, o, phase.group, phase.batched)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runGroupCommitPhase(mode string, o GroupCommitOpts, group, batched bool) (GroupCommitRow, error) {
	opts := o.Options
	opts.GroupCommit = group
	env, err := NewEnv(opts)
	if err != nil {
		return GroupCommitRow{}, err
	}
	defer env.Close()

	// One private counter word per goroutine: the workload measures fence
	// coalescing across independent transactions, not lock conflicts.
	roots := make([]pmem.Addr, o.Goroutines)
	for g := range roots {
		a, _, err := env.RT.Static(fmt.Sprintf("gcbench.%d", g), 8)
		if err != nil {
			return GroupCommitRow{}, err
		}
		roots[g] = a
	}

	startFences := env.Dev.Snapshot().Fences
	start := time.Now()
	var wg sync.WaitGroup
	errc := make(chan error, o.Goroutines)
	for g := 0; g < o.Goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th, err := env.TM.NewThread()
			if err != nil {
				errc <- err
				return
			}
			defer th.Close()
			addr := roots[g]
			bump := func(tx *mtm.Tx) error {
				tx.StoreU64(addr, tx.LoadU64(addr)+1)
				return nil
			}
			if batched {
				fns := make([]func(tx *mtm.Tx) error, o.BatchSize)
				for i := range fns {
					fns[i] = bump
				}
				for n := 0; n < o.TxPerG; n += o.BatchSize {
					if err := th.AtomicBatch(fns); err != nil {
						errc <- err
						return
					}
				}
			} else {
				for n := 0; n < o.TxPerG; n++ {
					if err := th.Atomic(bump); err != nil {
						errc <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errc:
		return GroupCommitRow{}, err
	default:
	}

	env.TM.Drain()
	commits := env.TM.Snapshot().Commits
	fences := env.Dev.Snapshot().Fences - startFences
	fpc := 0.0
	if commits > 0 {
		fpc = float64(fences) / float64(commits)
	}
	return GroupCommitRow{
		Mode:            mode,
		Goroutines:      o.Goroutines,
		OpsPerSec:       float64(o.Goroutines*o.TxPerG) / elapsed.Seconds(),
		FencesPerCommit: fpc,
	}, nil
}
