package bench

import (
	"fmt"
	"time"

	"repro/internal/ldapdir"
	"repro/internal/pcmdisk"
	"repro/internal/tcabinet"
)

// Table 4: update throughput for OpenLDAP (three backends, SLAMD-like add
// workload, 16 threads) and Tokyo Cabinet (msync vs Mnemosyne, 64 B and
// 1024 B insert/delete queries, single thread).

// LDAPRow is one OpenLDAP row of Table 4.
type LDAPRow struct {
	Backend   string
	Threads   int
	Entries   int
	UpdatesPS float64
}

func (r LDAPRow) String() string {
	return fmt.Sprintf("OpenLDAP %-16s SLAMD x%d: %8.0f updates/s",
		r.Backend, r.Threads, r.UpdatesPS)
}

// LDAPOpts parameterizes the LDAP workload.
type LDAPOpts struct {
	Options
	// Backend is "bdb", "ldbm" or "mnemosyne".
	Backend string
	Threads int
	Entries int
}

func (o *LDAPOpts) fill() {
	o.Options.fill()
	if o.Threads == 0 {
		o.Threads = 16 // "16 threads (4 threads per core) as advised"
	}
	if o.Entries == 0 {
		o.Entries = 10000
	}
}

// RunLDAP measures one OpenLDAP backend row of Table 4.
func RunLDAP(o LDAPOpts) (LDAPRow, error) {
	o.fill()
	var backend ldapdir.Backend
	switch o.Backend {
	case "bdb":
		disk := pcmdisk.Open(pcmdisk.Config{
			Size: 1 << 30, WriteLatency: o.WriteLatency, Spin: o.Spin,
		})
		b, err := ldapdir.OpenBDBBackend(disk)
		if err != nil {
			return LDAPRow{}, err
		}
		backend = b
	case "ldbm":
		disk := pcmdisk.Open(pcmdisk.Config{
			Size: 1 << 30, WriteLatency: o.WriteLatency, Spin: o.Spin,
		})
		b, err := ldapdir.OpenLDBMBackend(disk, 1024)
		if err != nil {
			return LDAPRow{}, err
		}
		backend = b
	case "mnemosyne":
		env, err := NewEnv(o.Options)
		if err != nil {
			return LDAPRow{}, err
		}
		defer env.Close()
		b, err := ldapdir.OpenMnemosyneBackend(env.RT, env.TM, 1)
		if err != nil {
			return LDAPRow{}, err
		}
		backend = b
	default:
		return LDAPRow{}, fmt.Errorf("bench: unknown LDAP backend %q", o.Backend)
	}

	srv := ldapdir.NewServer(backend)
	if o.Spin {
		// Model slapd's frontend request processing (see
		// Server.RequestOverhead); storage is a fraction of each
		// operation, as the paper observes.
		srv.RequestOverhead = 150 * time.Microsecond
	}
	res, err := srv.RunAddWorkload(o.Threads, 0, o.Entries)
	if err != nil {
		return LDAPRow{}, err
	}
	if res.Errors > 0 {
		return LDAPRow{}, fmt.Errorf("bench: %d workload errors", res.Errors)
	}
	if err := backend.Close(); err != nil {
		return LDAPRow{}, err
	}
	return LDAPRow{
		Backend:   backend.Name(),
		Threads:   o.Threads,
		Entries:   o.Entries,
		UpdatesPS: res.UpdatesPS,
	}, nil
}

// TCRow is one Tokyo Cabinet row of Table 4.
type TCRow struct {
	Mode      string
	ValueSize int
	Threads   int
	UpdatesPS float64
}

func (r TCRow) String() string {
	return fmt.Sprintf("TokyoCabinet %-24s %4dB x%d: %8.0f updates/s",
		r.Mode, r.ValueSize, r.Threads, r.UpdatesPS)
}

// TCOpts parameterizes the Tokyo Cabinet workload.
type TCOpts struct {
	Options
	// Mode is "msync" or "mnemosyne".
	Mode      string
	ValueSize int
	Threads   int
	// Ops is insert+delete pairs (default 3000).
	Ops int
}

func (o *TCOpts) fill() {
	o.Options.fill()
	if o.ValueSize == 0 {
		o.ValueSize = 64
	}
	if o.Threads == 0 {
		o.Threads = 1
	}
	if o.Ops == 0 {
		o.Ops = 3000
	}
}

// RunTC measures one Tokyo Cabinet row of Table 4: insert/delete queries
// at the given value size.
func RunTC(o TCOpts) (TCRow, error) {
	o.fill()
	var store tcabinet.Store
	var env *Env
	switch o.Mode {
	case "msync":
		disk := pcmdisk.Open(pcmdisk.Config{
			Size: 1 << 30, WriteLatency: o.WriteLatency, Spin: o.Spin,
		})
		s, err := tcabinet.OpenMsync(disk, tcabinet.MsyncConfig{
			NodePages:       1 << 15,
			HeapBytes:       512 << 20,
			SyncEveryUpdate: true,
		})
		if err != nil {
			return TCRow{}, err
		}
		store = s
	case "mnemosyne":
		var err error
		env, err = NewEnv(o.Options)
		if err != nil {
			return TCRow{}, err
		}
		defer env.Close()
		s, err := tcabinet.OpenMnemosyne(env.RT, env.TM)
		if err != nil {
			return TCRow{}, err
		}
		store = s
	default:
		return TCRow{}, fmt.Errorf("bench: unknown TC mode %q", o.Mode)
	}

	val := make([]byte, o.ValueSize)
	for i := range val {
		val[i] = byte(i * 7)
	}

	type result struct {
		ops int
		err error
	}
	results := make(chan result, o.Threads)
	start := time.Now()
	for w := 0; w < o.Threads; w++ {
		go func(w int) {
			sess, err := store.Session()
			if err != nil {
				results <- result{err: err}
				return
			}
			base := uint64(w) << 40
			ops := 0
			for i := 0; i < o.Ops; i++ {
				if err := sess.Put(base|uint64(i), val); err != nil {
					results <- result{err: err}
					return
				}
				ops++
				if i >= 64 {
					if err := sess.Delete(base | uint64(i-64)); err != nil {
						results <- result{err: err}
						return
					}
					ops++
				}
			}
			results <- result{ops: ops}
		}(w)
	}
	total := 0
	for w := 0; w < o.Threads; w++ {
		r := <-results
		if r.err != nil {
			return TCRow{}, r.err
		}
		total += r.ops
	}
	dur := time.Since(start)
	return TCRow{
		Mode:      store.Name(),
		ValueSize: o.ValueSize,
		Threads:   o.Threads,
		UpdatesPS: float64(total) / dur.Seconds(),
	}, nil
}
