package bench

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/mtm"
	"repro/internal/pds"
	"repro/internal/telemetry"
)

// Read-cache experiment: the read-mostly View workload (95/5 GET/SET
// over a persistent B+ tree) with and without the volatile read-through
// cache in front of the emulated SCM. Loads are charged the configured
// read latency, so a cache hit — validated purely against the versioned
// transaction locks — skips both the device load and the lock recheck.
// The figures of merit are ops/s next to the hit rate the working set
// achieves.

// ReadCacheOpts configures the experiment.
type ReadCacheOpts struct {
	Options
	// GoroutineSweep is the concurrency ladder (default 1, 8).
	GoroutineSweep []int
	// OpsPerG is operations per goroutine (default 2000).
	OpsPerG int
	// Keys is the working set (default 512, pre-seeded).
	Keys int
	// ReadPct is the GET percentage (default 95).
	ReadPct int
	// ValueSize is the stored value length (default 32).
	ValueSize int
	// CacheWords sizes the cache in the "on" phase (default 1<<16).
	CacheWords int
	// ReadLatencyNs is the charged PCM read latency (default 100ns; the
	// paper's model reads free, so the experiment names its assumption).
	ReadLatencyNs int
}

func (o *ReadCacheOpts) fill() {
	if len(o.GoroutineSweep) == 0 {
		o.GoroutineSweep = []int{1, 8}
	}
	if o.OpsPerG == 0 {
		o.OpsPerG = 2000
	}
	if o.Keys == 0 {
		o.Keys = 512
	}
	if o.ReadPct == 0 {
		o.ReadPct = 95
	}
	if o.ValueSize == 0 {
		o.ValueSize = 32
	}
	if o.CacheWords == 0 {
		o.CacheWords = 1 << 16
	}
	if o.ReadLatencyNs == 0 {
		o.ReadLatencyNs = 100
	}
}

// ReadCacheRow is one (cache, goroutines) measurement.
type ReadCacheRow struct {
	Cache      string // "off" or "on"
	Goroutines int
	OpsPerSec  float64
	// HitRate is cache hits over cache lookups — 0 with the cache off.
	HitRate float64
}

func (r ReadCacheRow) String() string {
	return fmt.Sprintf("cache %-3s %3d goroutines: %9.0f ops/s, %5.1f%% hits",
		r.Cache, r.Goroutines, r.OpsPerSec, r.HitRate*100)
}

// RunReadCache sweeps cache off/on over the goroutine ladder.
func RunReadCache(o ReadCacheOpts) ([]ReadCacheRow, error) {
	o.fill()
	var rows []ReadCacheRow
	for _, cache := range []string{"off", "on"} {
		for _, g := range o.GoroutineSweep {
			row, err := RunReadCacheCell(o, cache, g)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RunReadCacheCell measures one (cache, goroutines) cell on a fresh stack.
func RunReadCacheCell(o ReadCacheOpts, cache string, goroutines int) (ReadCacheRow, error) {
	o.fill()
	opts := o.Options
	opts.ReadLatency = time.Duration(o.ReadLatencyNs) * time.Nanosecond
	if cache == "on" {
		opts.ReadCacheWords = o.CacheWords
	}
	env, err := NewEnv(opts)
	if err != nil {
		return ReadCacheRow{}, err
	}
	defer env.Close()

	root, err := env.Root("readcache.root")
	if err != nil {
		return ReadCacheRow{}, err
	}
	tree := pds.NewBPTree(root)
	value := bytes.Repeat([]byte{'v'}, o.ValueSize)

	seeder, err := env.TM.NewThread()
	if err != nil {
		return ReadCacheRow{}, err
	}
	for k := 0; k < o.Keys; {
		end := k + 64
		if end > o.Keys {
			end = o.Keys
		}
		start := k
		err := seeder.Atomic(func(tx *mtm.Tx) error {
			for i := start; i < end; i++ {
				if err := tree.Put(tx, uint64(i), value); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return ReadCacheRow{}, err
		}
		k = end
	}
	seeder.Close()

	hitCounter := telemetry.Default.Counter("region_readcache_hits_total", "")
	missCounter := telemetry.Default.Counter("region_readcache_misses_total", "")
	startHits, startMisses := hitCounter.Value(), missCounter.Value()
	leaseWait := 30 * time.Second

	start := time.Now()
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)*7919 + 1))
			for n := 0; n < o.OpsPerG; n++ {
				key := uint64(rng.Intn(o.Keys))
				var err error
				if rng.Intn(100) < o.ReadPct {
					err = env.TM.View(func(r *mtm.ReadTx) error {
						_, err := tree.Get(r, key)
						return err
					})
				} else {
					var th *mtm.Thread
					if th, err = env.TM.LeaseThread(leaseWait); err == nil {
						err = th.Atomic(func(tx *mtm.Tx) error {
							return tree.Put(tx, key, value)
						})
						th.Close()
					}
				}
				if err != nil {
					errc <- fmt.Errorf("goroutine %d op %d: %w", g, n, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errc:
		return ReadCacheRow{}, err
	default:
	}

	env.TM.Drain()
	hits := hitCounter.Value() - startHits
	misses := missCounter.Value() - startMisses
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	return ReadCacheRow{
		Cache:      cache,
		Goroutines: goroutines,
		OpsPerSec:  float64(goroutines*o.OpsPerG) / elapsed.Seconds(),
		HitRate:    rate,
	}, nil
}
