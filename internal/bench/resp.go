package bench

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/kvserve"
	"repro/internal/resp"
)

// RESP experiment: the redis-protocol serving surface end to end —
// framing, the command registry, batch partitioning, and durable
// commits — under pipelined concurrent clients. Each client keeps a
// window of commands in flight over one TCP connection: a mix of
// binary-valued SETs (some carrying EX deadlines, so the timer wheel is
// on the write path), GETs (served from snapshot Views), and hash
// writes. The row reports end-to-end operation throughput and the
// durability cost per committed transaction.

// RESPOpts configures the RESP serving benchmark.
type RESPOpts struct {
	Options
	// Clients is the number of concurrent connections (default 8).
	Clients int
	// Window is the pipelined commands in flight per client (default 32).
	Window int
	// OpsPerClient is operations per connection (default 2000).
	OpsPerClient int
	// Keys is each client's private working set (default 256).
	Keys int
	// ValueSize is the stored value length (default 64).
	ValueSize int
	// WritePct is the SET percentage of the mix (default 50; of those,
	// one in four carries a far-future EX deadline and one in eight is an
	// HSET instead).
	WritePct int
}

func (o *RESPOpts) fill() {
	if o.Clients == 0 {
		o.Clients = 8
	}
	if o.Window == 0 {
		o.Window = 32
	}
	if o.OpsPerClient == 0 {
		o.OpsPerClient = 2000
	}
	if o.Keys == 0 {
		o.Keys = 256
	}
	if o.ValueSize == 0 {
		o.ValueSize = 64
	}
	if o.WritePct == 0 {
		o.WritePct = 50
	}
}

// RESPRow is one benchmark measurement.
type RESPRow struct {
	Clients         int
	Window          int
	OpsPerSec       float64
	FencesPerCommit float64
}

func (r RESPRow) String() string {
	return fmt.Sprintf("%2d clients, window %2d: %9.0f ops/s, %5.2f fences/commit",
		r.Clients, r.Window, r.OpsPerSec, r.FencesPerCommit)
}

// RunRESP measures the RESP front end over a fresh unsharded stack.
func RunRESP(o RESPOpts) (RESPRow, error) {
	o.fill()
	o.Options.fill()
	dir, err := os.MkdirTemp("", "mnbench-resp-*")
	if err != nil {
		return RESPRow{}, err
	}
	defer os.RemoveAll(dir)
	pm, err := core.Open(core.Config{
		Dir:             dir,
		DeviceSize:      o.DeviceSize,
		EmulateLatency:  o.Spin,
		Threads:         o.Clients + 2,
		AsyncTruncation: true,
		GroupCommit:     o.GroupCommit,
	})
	if err != nil {
		return RESPRow{}, err
	}
	defer pm.Close()
	srv, err := kvserve.New(pm)
	if err != nil {
		return RESPRow{}, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return RESPRow{}, err
	}
	go srv.ServeRESP(l)
	defer srv.Close()

	value := make([]byte, o.ValueSize)
	for i := range value {
		value[i] = byte(i) // arbitrary binary payload, NULs included
	}

	startFences := pm.Device().Snapshot().Fences
	startCommits := pm.TM().Snapshot().Commits
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, o.Clients)
	for ci := 0; ci < o.Clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			r, w := resp.NewReader(conn), resp.NewWriter(conn)
			rng := rand.New(rand.NewSource(int64(ci)))
			for done := 0; done < o.OpsPerClient; {
				n := o.Window
				if n > o.OpsPerClient-done {
					n = o.OpsPerClient - done
				}
				for j := 0; j < n; j++ {
					key := fmt.Sprintf("c%dk%d", ci, rng.Intn(o.Keys))
					var werr error
					switch r := rng.Intn(100); {
					case r >= o.WritePct: // read
						werr = w.WriteCommandStrings("GET", key)
					case r%8 == 0: // hash write
						werr = w.WriteCommand([]byte("HSET"), []byte(key+"h"),
							[]byte("field"), value)
					case r%4 == 0: // expiring write (far deadline)
						werr = w.WriteCommand([]byte("SET"), []byte(key), value,
							[]byte("EX"), []byte("100000"))
					default:
						werr = w.WriteCommand([]byte("SET"), []byte(key), value)
					}
					if werr != nil {
						errs <- werr
						return
					}
				}
				if err := w.Flush(); err != nil {
					errs <- err
					return
				}
				for j := 0; j < n; j++ {
					v, err := r.ReadValue()
					if err != nil {
						errs <- err
						return
					}
					if v.Type == '-' {
						errs <- fmt.Errorf("resp bench: server error %q", v.Str)
						return
					}
				}
				done += n
			}
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return RESPRow{}, err
	}

	commits := pm.TM().Snapshot().Commits - startCommits
	fences := pm.Device().Snapshot().Fences - startFences
	row := RESPRow{
		Clients:   o.Clients,
		Window:    o.Window,
		OpsPerSec: float64(o.Clients*o.OpsPerClient) / elapsed.Seconds(),
	}
	if commits > 0 {
		row.FencesPerCommit = float64(fences) / float64(commits)
	}
	return row, nil
}
