package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/mtm"
	"repro/internal/pmem"
)

// Commit-mode experiment: identical small-write workloads committed
// through the redo protocol (log, fence, write back, fence, truncate,
// fence), the batched undo protocol (undo record, fence, in-place
// stores, marker, fence) and the hybrid split. The figure of merit is
// device fences per committed transaction — the ordering points each
// protocol pays — next to the throughput they buy. At one goroutine the
// undo path must come in below redo: that single-writer fence saving is
// the reason the mode exists.

// HybridOpts configures the experiment.
type HybridOpts struct {
	Options
	// Modes are the commit modes to sweep (default redo, undo, hybrid).
	Modes []string
	// GoroutineSweep is the concurrency ladder (default 1, 8).
	GoroutineSweep []int
	// TxPerG is transactions per goroutine (default 400).
	TxPerG int
	// WritesPerTx is word stores per transaction (default 4 — under the
	// default hybrid threshold, so hybrid takes the undo path here).
	WritesPerTx int
}

func (o *HybridOpts) fill() {
	if len(o.Modes) == 0 {
		o.Modes = []string{"redo", "undo", "hybrid"}
	}
	if len(o.GoroutineSweep) == 0 {
		o.GoroutineSweep = []int{1, 8}
	}
	if o.TxPerG == 0 {
		o.TxPerG = 400
	}
	if o.WritesPerTx == 0 {
		o.WritesPerTx = 4
	}
}

// HybridRow is one (mode, goroutines) measurement.
type HybridRow struct {
	Mode            string
	Goroutines      int
	OpsPerSec       float64
	FencesPerCommit float64
	// UndoShare is the fraction of commits that took the undo path —
	// 1.0 in undo mode, 0.0 in redo, the threshold split in hybrid.
	UndoShare float64
}

func (r HybridRow) String() string {
	return fmt.Sprintf("%-8s %2d goroutines: %9.0f ops/s, %5.2f fences/commit, %4.0f%% undo",
		r.Mode, r.Goroutines, r.OpsPerSec, r.FencesPerCommit, r.UndoShare*100)
}

// RunHybrid sweeps the commit modes over the goroutine ladder.
func RunHybrid(o HybridOpts) ([]HybridRow, error) {
	o.fill()
	var rows []HybridRow
	for _, mode := range o.Modes {
		for _, g := range o.GoroutineSweep {
			row, err := RunHybridCell(o, mode, g)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RunHybridCell measures one (mode, goroutines) cell on a fresh stack.
func RunHybridCell(o HybridOpts, mode string, goroutines int) (HybridRow, error) {
	o.fill()
	opts := o.Options
	opts.CommitMode = mode
	env, err := NewEnv(opts)
	if err != nil {
		return HybridRow{}, err
	}
	defer env.Close()

	// One private word span per goroutine: the experiment measures the
	// commit protocols' fence counts, not lock conflicts.
	span := int64(o.WritesPerTx)
	base := make([]pmem.Addr, goroutines)
	for g := range base {
		ptr, _, err := env.RT.Static(fmt.Sprintf("hybrid.%d", g), 8)
		if err != nil {
			return HybridRow{}, err
		}
		a, err := env.RT.PMapAt(ptr, span*8, 0)
		if err != nil {
			return HybridRow{}, err
		}
		base[g] = a
	}

	startFences := env.Dev.Snapshot().Fences
	startCommits := env.TM.Snapshot().Commits
	startUndo := mtm.UndoCommits()
	start := time.Now()
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th, err := env.TM.NewThread()
			if err != nil {
				errc <- err
				return
			}
			defer th.Close()
			addr := base[g]
			for n := 0; n < o.TxPerG; n++ {
				err := th.Atomic(func(tx *mtm.Tx) error {
					for w := int64(0); w < span; w++ {
						tx.StoreU64(addr.Add(w*8), uint64(n)+uint64(w))
					}
					return nil
				})
				if err != nil {
					errc <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errc:
		return HybridRow{}, err
	default:
	}

	env.TM.Drain()
	commits := env.TM.Snapshot().Commits - startCommits
	fences := env.Dev.Snapshot().Fences - startFences
	undo := mtm.UndoCommits() - startUndo
	fpc, share := 0.0, 0.0
	if commits > 0 {
		fpc = float64(fences) / float64(commits)
		share = float64(undo) / float64(commits)
	}
	return HybridRow{
		Mode:            mode,
		Goroutines:      goroutines,
		OpsPerSec:       float64(goroutines*o.TxPerG) / elapsed.Seconds(),
		FencesPerCommit: fpc,
		UndoShare:       share,
	}, nil
}
