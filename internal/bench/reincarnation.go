package bench

import (
	"fmt"
	"time"

	"repro/internal/mtm"
	"repro/internal/pheap"
	"repro/internal/pmem"
	"repro/internal/region"
	"repro/internal/scm"
)

// §6.3.2 reincarnation costs: (i) reconstructing persistent regions when
// the OS boots (the paper measures ~734 ms per GB of SCM, worst case of
// one region per frame); (ii) per-process costs — remapping regions
// (~1.1 ms), scavenging the persistent heap (~89 ms), and replaying
// committed-but-unflushed transactions (3–76 µs each).

// ReincarnationResult reports every component.
type ReincarnationResult struct {
	DeviceBytes  int64
	MappedFrames int
	ManagerBoot  time.Duration
	BootPerGB    time.Duration

	Remap         time.Duration
	RegionsMapped int

	LiveAllocs   int
	HeapScavenge time.Duration

	TxReplayed  int
	ReplayTotal time.Duration
	ReplayPerTx time.Duration
}

func (r ReincarnationResult) String() string {
	return fmt.Sprintf(
		"boot: %v for %d frames (%v/GB); remap: %v (%d regions); "+
			"heap scavenge: %v (%d live allocs); replay: %d tx in %v (%v/tx)",
		r.ManagerBoot, r.MappedFrames, r.BootPerGB,
		r.Remap, r.RegionsMapped,
		r.HeapScavenge, r.LiveAllocs,
		r.TxReplayed, r.ReplayTotal, r.ReplayPerTx)
}

// ReincarnationOpts parameterizes the measurement.
type ReincarnationOpts struct {
	Options
	// LiveAllocs is the number of live heap allocations to scavenge
	// (default 5000).
	LiveAllocs int
	// PendingTx is the number of committed-but-unflushed transactions
	// to replay (default 64).
	PendingTx int
}

// RunReincarnation builds a populated stack, crashes it, and measures
// every reincarnation cost on the way back up.
func RunReincarnation(o ReincarnationOpts) (ReincarnationResult, error) {
	o.Options.fill()
	if o.LiveAllocs == 0 {
		o.LiveAllocs = 5000
	}
	if o.PendingTx == 0 {
		o.PendingTx = 64
	}
	o.Options.AsyncTruncation = true

	env, err := NewEnv(o.Options)
	if err != nil {
		return ReincarnationResult{}, err
	}
	dir := env.RT.Manager().Dir()

	// Populate the heap.
	ptrRegion, err := env.RT.PMap(int64(o.LiveAllocs+1)*8, 0)
	if err != nil {
		return ReincarnationResult{}, err
	}
	alloc := env.Heap.NewAllocator()
	for i := 0; i < o.LiveAllocs; i++ {
		size := int64(16 + (i%16)*64)
		if _, err := alloc.PMalloc(size, ptrRegion.Add(int64(i)*8)); err != nil {
			return ReincarnationResult{}, err
		}
	}

	// Commit transactions whose writeback never gets flushed.
	dataRegion, err := env.RT.PMap(1<<20, 0)
	if err != nil {
		return ReincarnationResult{}, err
	}
	th, err := env.TM.NewThread()
	if err != nil {
		return ReincarnationResult{}, err
	}
	for i := 0; i < o.PendingTx; i++ {
		i := i
		if i == o.PendingTx-1 {
			// Halt truncation before the last commit: the manager
			// coalesces queued jobs, so on a fast run it may otherwise
			// have truncated every earlier commit by the time we halt,
			// leaving nothing to replay. This guarantees at least one
			// pending transaction survives in the logs.
			env.TM.StopTruncation()
		}
		if err := th.Atomic(func(tx *mtm.Tx) error {
			for w := int64(0); w < 8; w++ {
				tx.StoreU64(dataRegion.Add(int64(i)*64+w*8), uint64(i*100)+uint64(w))
			}
			return nil
		}); err != nil {
			return ReincarnationResult{}, err
		}
	}
	env.TM.StopTruncation()

	heapBase := env.Heap.Base()
	dev := env.Dev
	// Crash: unflushed write-backs are lost; the logs hold the redo
	// records.
	dev.Crash(scm.DropAll{})
	if err := env.RT.Close(); err != nil {
		return ReincarnationResult{}, err
	}

	// Reincarnate, timing each layer.
	rt2, err := region.Open(dev, region.Config{Dir: dir})
	if err != nil {
		return ReincarnationResult{}, err
	}
	res := ReincarnationResult{
		DeviceBytes:   dev.Size(),
		MappedFrames:  rt2.Manager().Frames() - rt2.Manager().FreeFrames(),
		ManagerBoot:   rt2.Stats().ManagerBoot,
		Remap:         rt2.Stats().Remap,
		RegionsMapped: rt2.Stats().RegionsMapped,
		LiveAllocs:    o.LiveAllocs,
	}
	res.BootPerGB = time.Duration(float64(res.ManagerBoot) * float64(1<<30) / float64(dev.Size()))

	heap2, err := pheap.Open(rt2, heapBase)
	if err != nil {
		return ReincarnationResult{}, err
	}
	res.HeapScavenge = heap2.ScavengeTime()

	tm2, err := mtm.Open(rt2, "bench", mtm.Config{
		Heap:            heap2,
		Slots:           o.Slots,
		AsyncTruncation: true,
	})
	if err != nil {
		return ReincarnationResult{}, err
	}
	rec := tm2.Recovery()
	res.TxReplayed = rec.Replayed
	res.ReplayTotal = rec.Duration
	if rec.Replayed > 0 {
		res.ReplayPerTx = rec.Duration / time.Duration(rec.Replayed)
	}

	// Verify the replay actually restored the data.
	mem := rt2.NewMemory()
	for i := 0; i < o.PendingTx; i++ {
		if got := mem.LoadU64(pmem.Addr(dataRegion).Add(int64(i) * 64)); got != uint64(i*100) {
			return res, fmt.Errorf("bench: replay verification failed at tx %d (got %d)", i, got)
		}
	}
	tm2.Close()
	_ = rt2.Close()
	return res, nil
}
