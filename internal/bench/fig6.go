package bench

import (
	"fmt"
	"time"
)

// Figure 6: write-latency change from asynchronous log truncation,
// relative to synchronous truncation, as a function of thread idle time.
// With 50–90% idle time the truncation thread keeps up and commit latency
// drops; at 10% idle the program thread stalls on a full log and latency
// can rise.

// Figure6Row is one (idle, value size) cell.
type Figure6Row struct {
	IdlePct   int
	ValueSize int
	SyncLat   time.Duration
	AsyncLat  time.Duration
	// DecreasePct is the y-axis of Figure 6: positive means async is
	// faster.
	DecreasePct float64
}

func (r Figure6Row) String() string {
	return fmt.Sprintf("%3d%% idle %5dB: sync %s, async %s (%+.0f%% latency decrease)",
		r.IdlePct, r.ValueSize, fmtDur(r.SyncLat), fmtDur(r.AsyncLat), r.DecreasePct)
}

// RunFigure6Cell measures one cell: the same hashtable workload with
// synchronous and asynchronous truncation at the given duty cycle.
func RunFigure6Cell(idlePct, valueSize int, base Options) (Figure6Row, error) {
	idleFrac := float64(idlePct) / 100

	syncOpts := HashOpts{Options: base, ValueSize: valueSize, Threads: 1, IdleFraction: idleFrac}
	syncOpts.Options.AsyncTruncation = false
	s, err := RunHashtableMTM(syncOpts)
	if err != nil {
		return Figure6Row{}, err
	}

	asyncOpts := syncOpts
	asyncOpts.Options.AsyncTruncation = true
	a, err := RunHashtableMTM(asyncOpts)
	if err != nil {
		return Figure6Row{}, err
	}

	return Figure6Row{
		IdlePct:     idlePct,
		ValueSize:   valueSize,
		SyncLat:     s.WriteLatency,
		AsyncLat:    a.WriteLatency,
		DecreasePct: (1 - float64(a.WriteLatency)/float64(s.WriteLatency)) * 100,
	}, nil
}
