package bench

import (
	"fmt"
	"time"

	"repro/internal/mtm"
	"repro/internal/pcmdisk"
	"repro/internal/pds"
	"repro/internal/serial"
)

// Table 5: the cost of keeping a red-black tree with 128-byte nodes in
// persistent memory (per-update durable transactions) against keeping it
// in DRAM and periodically serializing it to a file (Boost-style).

// Table5Row is one tree-size row.
type Table5Row struct {
	TreeSize int
	// InsertLatency is the mean durable-transaction insert cost.
	InsertLatency time.Duration
	// SerializeLatency is the cost of one whole-tree serialize + save.
	SerializeLatency time.Duration
	// InsertsPerSerialization = SerializeLatency / InsertLatency: how
	// many Mnemosyne updates fit in one Boost snapshot.
	InsertsPerSerialization float64
}

func (r Table5Row) String() string {
	return fmt.Sprintf("%7d nodes: insert %s, serialize %s, %.0f inserts/serialization",
		r.TreeSize, fmtDur(r.InsertLatency), fmtDur(r.SerializeLatency), r.InsertsPerSerialization)
}

// Table5Opts parameterizes the comparison.
type Table5Opts struct {
	Options
	TreeSize int
	// MeasuredInserts is how many extra inserts are timed once the tree
	// is at size (default 500).
	MeasuredInserts int
}

// RunTable5 builds a persistent RB tree of the given size, measures
// further insert latency, then measures serializing the same tree to the
// PCM-disk.
func RunTable5(o Table5Opts) (Table5Row, error) {
	o.Options.fill()
	if o.TreeSize == 0 {
		o.TreeSize = 1024
	}
	if o.MeasuredInserts == 0 {
		o.MeasuredInserts = 500
	}
	// Size the environment to the tree: 128-byte nodes plus heap
	// overheads.
	need := int64(o.TreeSize+o.MeasuredInserts) * 256
	if need < 64<<20 {
		need = 64 << 20
	}
	env, err := NewEnv(Options{
		WriteLatency: o.WriteLatency,
		Spin:         o.Spin,
		DeviceSize:   need * 2,
		HeapSize:     need,
	})
	if err != nil {
		return Table5Row{}, err
	}
	defer env.Close()

	root, err := env.Root("bench.rb")
	if err != nil {
		return Table5Row{}, err
	}
	th, err := env.TM.NewThread()
	if err != nil {
		return Table5Row{}, err
	}
	tree := pds.NewRBTree(root)
	payload := make([]byte, pds.RBPayload)
	for i := range payload {
		payload[i] = byte(i)
	}
	// Keys spread with a Weyl sequence so the build is balanced work.
	key := func(i int) uint64 { return uint64(i) * 0x9E3779B97F4A7C15 }

	for i := 0; i < o.TreeSize; i++ {
		if err := th.Atomic(func(tx *mtm.Tx) error {
			return tree.Insert(tx, key(i), payload)
		}); err != nil {
			return Table5Row{}, err
		}
	}

	// Measure steady-state insert latency.
	t0 := time.Now()
	for i := 0; i < o.MeasuredInserts; i++ {
		if err := th.Atomic(func(tx *mtm.Tx) error {
			return tree.Insert(tx, key(o.TreeSize+i), payload)
		}); err != nil {
			return Table5Row{}, err
		}
	}
	insertLat := time.Since(t0) / time.Duration(o.MeasuredInserts)

	// Measure serialize + save of the whole tree.
	disk := pcmdisk.Open(pcmdisk.Config{
		Size:         2 * need * 2,
		WriteLatency: o.WriteLatency,
		Spin:         o.Spin,
	})
	snap, err := serial.NewSnapshotter(disk, "tree.snap", need)
	if err != nil {
		return Table5Row{}, err
	}
	var serLat time.Duration
	const rounds = 3
	for r := 0; r < rounds; r++ {
		t1 := time.Now()
		var buf []byte
		if err := th.Atomic(func(tx *mtm.Tx) error {
			buf = serial.SerializeRBTree(tx, tree)
			return nil
		}); err != nil {
			return Table5Row{}, err
		}
		if err := snap.Save(buf); err != nil {
			return Table5Row{}, err
		}
		serLat += time.Since(t1)
	}
	serLat /= rounds

	return Table5Row{
		TreeSize:                o.TreeSize + o.MeasuredInserts,
		InsertLatency:           insertLat,
		SerializeLatency:        serLat,
		InsertsPerSerialization: float64(serLat) / float64(insertLat),
	}, nil
}
