// Package bench contains the experiment kernels that regenerate every
// table and figure of the paper's evaluation (§6). cmd/mnbench prints them
// as paper-style tables; the repository's benchmark files wrap them as
// testing.B benchmarks.
//
// Each kernel builds a fresh Mnemosyne stack (SCM device, region runtime,
// persistent heap, transaction system) and/or a PCM-disk baseline with the
// emulation parameters of §6.1: 150 ns extra write latency and 4 GB/s
// write bandwidth, spin-realized for real measurements.
package bench

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/mtm"
	"repro/internal/pheap"
	"repro/internal/pmem"
	"repro/internal/region"
	"repro/internal/scm"
)

// Options control an experiment environment.
type Options struct {
	// WriteLatency is the SCM extra write latency (default 150ns).
	WriteLatency time.Duration
	// Spin selects real delays; false runs without delays (unit tests).
	Spin bool
	// DeviceSize is the emulated SCM capacity (default 512 MB).
	DeviceSize int64
	// HeapSize is the persistent heap (default 256 MB).
	HeapSize int64
	// AsyncTruncation configures the TM.
	AsyncTruncation bool
	// UndoLogging selects the undo ablation.
	UndoLogging bool
	// WriteThroughWriteback selects the WT-writeback ablation.
	WriteThroughWriteback bool
	// Slots bounds TM threads (default 32).
	Slots int
	// GroupCommit routes commits through the group-commit coordinator.
	GroupCommit bool
	// GroupCommitWait is the epoch leader's gathering window.
	GroupCommitWait time.Duration
	// GroupCommitBatch caps members per commit epoch.
	GroupCommitBatch int
	// LatencySampleRate samples latency observations 1-in-N (default 16;
	// 1 records every transaction, for phase attribution runs).
	LatencySampleRate int
	// CommitMode selects the durable-commit protocol: "redo" (default),
	// "undo", or "hybrid" (see mtm.Config.CommitMode).
	CommitMode string
	// HybridUndoMax is hybrid mode's write-set threshold (default 16).
	HybridUndoMax int
	// ReadCacheWords sizes the volatile read-through cache per memory
	// view (0 disables).
	ReadCacheWords int
	// ReadLatency is the emulated extra PCM read latency per word load
	// (default 0: reads free, the paper's model).
	ReadLatency time.Duration
}

func (o *Options) fill() {
	if o.WriteLatency == 0 {
		o.WriteLatency = scm.DefaultWriteLatency
	}
	if o.DeviceSize == 0 {
		o.DeviceSize = 512 << 20
	}
	if o.HeapSize == 0 {
		o.HeapSize = 256 << 20
	}
	if o.Slots == 0 {
		o.Slots = 32
	}
}

func (o *Options) mode() scm.DelayMode {
	if o.Spin {
		return scm.DelaySpin
	}
	return scm.DelayOff
}

// Env is a complete Mnemosyne stack for one experiment run.
type Env struct {
	Dev  *scm.Device
	RT   *region.Runtime
	Heap *pheap.Heap
	TM   *mtm.TM
	dir  string
}

// NewEnv builds a fresh stack in a temporary backing directory.
func NewEnv(o Options) (*Env, error) {
	o.fill()
	dir, err := os.MkdirTemp("", "mnbench-*")
	if err != nil {
		return nil, err
	}
	dev, err := scm.Open(scm.Config{
		Size:         o.DeviceSize,
		WriteLatency: o.WriteLatency,
		ReadLatency:  o.ReadLatency,
		Mode:         o.mode(),
	})
	if err != nil {
		return nil, err
	}
	rt, err := region.Open(dev, region.Config{Dir: dir})
	if err != nil {
		return nil, err
	}
	heapPtr, _, err := rt.Static("bench.heap", 8)
	if err != nil {
		return nil, err
	}
	base, err := rt.PMapAt(heapPtr, o.HeapSize, 0)
	if err != nil {
		return nil, err
	}
	heap, err := pheap.Format(rt, base, o.HeapSize, pheap.Config{Lanes: 16})
	if err != nil {
		return nil, err
	}
	tm, err := mtm.Open(rt, "bench", mtm.Config{
		Heap:                  heap,
		Slots:                 o.Slots,
		AsyncTruncation:       o.AsyncTruncation,
		UndoLogging:           o.UndoLogging,
		WriteThroughWriteback: o.WriteThroughWriteback,
		GroupCommit:           o.GroupCommit,
		GroupCommitWait:       o.GroupCommitWait,
		GroupCommitBatch:      o.GroupCommitBatch,
		LatencySampleRate:     o.LatencySampleRate,
		CommitMode:            o.CommitMode,
		HybridUndoMax:         o.HybridUndoMax,
		ReadCacheWords:        o.ReadCacheWords,
	})
	if err != nil {
		return nil, err
	}
	return &Env{Dev: dev, RT: rt, Heap: heap, TM: tm, dir: dir}, nil
}

// Root returns a named persistent root pointer.
func (e *Env) Root(name string) (pmem.Addr, error) {
	a, _, err := e.RT.Static(name, 8)
	return a, err
}

// Close tears the stack down and removes the backing directory. It ends
// with a forced GC so the env's device and heap (hundreds of MB) are
// reclaimed at the cell boundary: left to the pacer, they die mid-way
// through the NEXT cell's measured window, and on a 1-CPU host that GC —
// plus the cold pages every allocation faults in until then — shows up
// as multi-× noise in whichever cell it lands on.
func (e *Env) Close() {
	e.TM.Close()
	_ = e.RT.Close()
	_ = os.RemoveAll(e.dir)
	runtime.GC()
}

// fmtDur prints a duration in microseconds with two decimals.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.2f us", float64(d.Nanoseconds())/1000)
}
