package bench

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/mtm"
	"repro/internal/pds"
	"repro/internal/telemetry"
)

// Read-mostly experiment: the slot-free snapshot-read path (TM.View)
// against the leased-Atomic baseline on a 95/5 GET/SET mix over a
// persistent B+ tree. The baseline pays a thread lease for every
// operation, so at high concurrency readers queue on the Slots bound;
// View readers take no lease and no fence, so only the 5% writes touch
// the slot pool.

// ReadMostlyOpts configures the experiment.
type ReadMostlyOpts struct {
	Options
	// Mode is "atomic" (every op on a leased thread) or "view" (reads on
	// snapshot Views, writes on leased threads). RunReadMostly sweeps
	// both; RunReadMostlyCell runs one.
	Mode string
	// Goroutines is the number of concurrent clients (one cell).
	Goroutines int
	// GoroutineSweep is the concurrency ladder (default 1, 8, 32, 128).
	GoroutineSweep []int
	// OpsPerG is operations per goroutine (default 2000).
	OpsPerG int
	// Keys is the working set (default 512, pre-seeded).
	Keys int
	// ReadPct is the GET percentage (default 95).
	ReadPct int
	// ValueSize is the stored value length (default 32).
	ValueSize int
}

func (o *ReadMostlyOpts) fill() {
	if len(o.GoroutineSweep) == 0 {
		o.GoroutineSweep = []int{1, 8, 32, 128}
	}
	if o.OpsPerG == 0 {
		o.OpsPerG = 2000
	}
	if o.Keys == 0 {
		o.Keys = 512
	}
	if o.ReadPct == 0 {
		o.ReadPct = 95
	}
	if o.ValueSize == 0 {
		o.ValueSize = 32
	}
}

// ReadMostlyRow is one (mode, goroutines) measurement.
type ReadMostlyRow struct {
	Mode       string
	Goroutines int
	OpsPerSec  float64
	// FencesPerOp is durability fences per operation: the baseline fences
	// on every read's (empty) commit infrastructure only when it writes,
	// but still serializes on leases; View reads contribute zero.
	FencesPerOp float64
	// LeasesPerOp is thread leases per operation — 1.0 for the baseline,
	// ~0.05 for the view mode.
	LeasesPerOp float64
}

func (r ReadMostlyRow) String() string {
	return fmt.Sprintf("%-8s %3d goroutines: %9.0f ops/s, %5.2f fences/op, %5.2f leases/op",
		r.Mode, r.Goroutines, r.OpsPerSec, r.FencesPerOp, r.LeasesPerOp)
}

// RunReadMostly sweeps both modes over the goroutine ladder.
func RunReadMostly(o ReadMostlyOpts) ([]ReadMostlyRow, error) {
	o.fill()
	var rows []ReadMostlyRow
	for _, mode := range []string{"atomic", "view"} {
		for _, g := range o.GoroutineSweep {
			cell := o
			cell.Mode = mode
			cell.Goroutines = g
			row, err := RunReadMostlyCell(cell)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RunReadMostlyCell measures one (mode, goroutines) cell on a fresh stack.
func RunReadMostlyCell(o ReadMostlyOpts) (ReadMostlyRow, error) {
	o.fill()
	if o.Goroutines == 0 {
		o.Goroutines = 8
	}
	switch o.Mode {
	case "atomic", "view":
	default:
		return ReadMostlyRow{}, fmt.Errorf("readmostly: unknown mode %q", o.Mode)
	}
	env, err := NewEnv(o.Options)
	if err != nil {
		return ReadMostlyRow{}, err
	}
	defer env.Close()

	root, err := env.Root("readmostly.root")
	if err != nil {
		return ReadMostlyRow{}, err
	}
	tree := pds.NewBPTree(root)
	value := bytes.Repeat([]byte{'v'}, o.ValueSize)

	// Pre-seed the working set so every GET hits.
	seeder, err := env.TM.NewThread()
	if err != nil {
		return ReadMostlyRow{}, err
	}
	for k := 0; k < o.Keys; {
		end := k + 64
		if end > o.Keys {
			end = o.Keys
		}
		start := k
		err := seeder.Atomic(func(tx *mtm.Tx) error {
			for i := start; i < end; i++ {
				if err := tree.Put(tx, uint64(i), value); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return ReadMostlyRow{}, err
		}
		k = end
	}
	seeder.Close()

	leaseCounter := telemetry.Default.Counter("mtm_thread_leases_total", "")
	startFences := env.Dev.Snapshot().Fences
	startLeases := leaseCounter.Value()
	leaseWait := 30 * time.Second

	start := time.Now()
	var wg sync.WaitGroup
	errc := make(chan error, o.Goroutines)
	for g := 0; g < o.Goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)*7919 + 1))
			for n := 0; n < o.OpsPerG; n++ {
				key := uint64(rng.Intn(o.Keys))
				isRead := rng.Intn(100) < o.ReadPct
				var err error
				if isRead && o.Mode == "view" {
					err = env.TM.View(func(r *mtm.ReadTx) error {
						_, err := tree.Get(r, key)
						return err
					})
				} else {
					var th *mtm.Thread
					if th, err = env.TM.LeaseThread(leaseWait); err == nil {
						if isRead {
							err = th.Atomic(func(tx *mtm.Tx) error {
								_, err := tree.Get(tx, key)
								return err
							})
						} else {
							err = th.Atomic(func(tx *mtm.Tx) error {
								return tree.Put(tx, key, value)
							})
						}
						th.Close()
					}
				}
				if err != nil {
					errc <- fmt.Errorf("goroutine %d op %d: %w", g, n, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errc:
		return ReadMostlyRow{}, err
	default:
	}

	env.TM.Drain()
	ops := float64(o.Goroutines * o.OpsPerG)
	return ReadMostlyRow{
		Mode:        o.Mode,
		Goroutines:  o.Goroutines,
		OpsPerSec:   ops / elapsed.Seconds(),
		FencesPerOp: float64(env.Dev.Snapshot().Fences-startFences) / ops,
		LeasesPerOp: float64(leaseCounter.Value()-startLeases) / ops,
	}, nil
}
