package bench

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/scm"
	"repro/internal/shard"
)

// Sharded experiment: write throughput of the sharded key-value front
// end versus shard count at fixed concurrency, and recovery time versus
// heap size with serial and parallel shard recovery. Each shard is a
// full independent Mnemosyne stack (device, heap, transaction system),
// so both the durability fences and the recovery work parallelize
// across shards — the throughput sweep shows fences/commit staying flat
// while aggregate ops/sec scales, and the recovery sweep shows how far
// the bounded worker pool compresses reattach toward the slowest-shard
// lower bound (all the way on hosts with a core per shard; see
// ShardedRecoveryRow on what the sweep reports where cores are scarce).
//
// The throughput sweep runs the devices in accounted-delay mode
// (scm.DelayAccount): every emulated PCM write and write-combining
// drain charges its latency to a virtual per-device clock instead of
// spinning a core. The headline number is the device-bound modeled
// throughput — operations divided by the BUSIEST shard device's accrued
// virtual time — which is what sharding actually scales: one shard
// funnels every commit's fences through one device, N shards split them
// N ways. Spin-realized wall throughput is reported alongside but only
// meaningful on hosts with at least as many cores as shards (see the
// spin() note in internal/scm); accounted mode keeps the sweep exact on
// any host.

// ShardedOpts configures the throughput sweep.
type ShardedOpts struct {
	Options
	// ShardSweep is the shard-count ladder (default 1, 2, 4).
	ShardSweep []int
	// Goroutines is the number of concurrent writers (default 32).
	Goroutines int
	// OpsPerG is SET operations per goroutine (default 400).
	OpsPerG int
	// Keys is the shared working set (default 1024).
	Keys int
	// ValueSize is the stored value length (default 64).
	ValueSize int
	// MSetEvery makes every Nth operation a cross-shard MSET of two keys
	// (default 16; negative disables).
	MSetEvery int
}

func (o *ShardedOpts) fill() {
	if len(o.ShardSweep) == 0 {
		o.ShardSweep = []int{1, 2, 4}
	}
	if o.Goroutines == 0 {
		o.Goroutines = 32
	}
	if o.OpsPerG == 0 {
		o.OpsPerG = 400
	}
	if o.Keys == 0 {
		o.Keys = 1024
	}
	if o.ValueSize == 0 {
		o.ValueSize = 64
	}
	if o.MSetEvery == 0 {
		o.MSetEvery = 16
	}
}

// ShardedRow is one shard-count measurement.
type ShardedRow struct {
	Shards     int
	Goroutines int
	// OpsPerSec is the device-bound modeled throughput: operations over
	// the busiest shard device's accrued virtual write/drain time.
	OpsPerSec float64
	// WallOpsPerSec is host wall-clock throughput (CPU-bound on small
	// hosts; the modeled number is the architecture signal).
	WallOpsPerSec   float64
	FencesPerCommit float64
	// ShardCommits is the per-shard commit distribution, a routing-skew
	// check as much as a scaling one.
	ShardCommits []uint64
}

func (r ShardedRow) String() string {
	parts := make([]string, len(r.ShardCommits))
	for i, c := range r.ShardCommits {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return fmt.Sprintf("%d shards, %d goroutines: %9.0f modeled ops/s, %9.0f wall ops/s, %5.2f fences/commit, commits per shard [%s]",
		r.Shards, r.Goroutines, r.OpsPerSec, r.WallOpsPerSec, r.FencesPerCommit, strings.Join(parts, " "))
}

// shardedConfig builds the per-run store configuration.
func shardedConfig(o Options, shards int) (shard.Config, error) {
	dir, err := os.MkdirTemp("", "mnbench-shard-*")
	if err != nil {
		return shard.Config{}, err
	}
	return shard.Config{
		Config: core.Config{
			Dir:             dir,
			DeviceSize:      64 << 20,
			WriteLatency:    o.WriteLatency,
			EmulateLatency:  o.Spin,
			AsyncTruncation: o.AsyncTruncation,
		},
		Shards: shards,
	}, nil
}

// RunSharded sweeps write throughput over the shard ladder.
func RunSharded(o ShardedOpts) ([]ShardedRow, error) {
	o.fill()
	var rows []ShardedRow
	for _, n := range o.ShardSweep {
		row, err := RunShardedCell(o, n)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunShardedCell measures one shard count on a fresh store whose
// devices run in accounted-delay mode.
func RunShardedCell(o ShardedOpts, shards int) (ShardedRow, error) {
	o.fill()
	cfg, err := shardedConfig(o.Options, shards)
	if err != nil {
		return ShardedRow{}, err
	}
	cfg.EmulateLatency = false // delays are accounted, not spun
	defer os.RemoveAll(cfg.Dir)
	devs := make([]*scm.Device, shards)
	for k := range devs {
		if devs[k], err = scm.Open(scm.Config{
			Size:         cfg.DeviceSize,
			WriteLatency: o.WriteLatency,
			Mode:         scm.DelayAccount,
		}); err != nil {
			return ShardedRow{}, err
		}
	}
	st, err := shard.Attach(devs, cfg)
	if err != nil {
		return ShardedRow{}, err
	}
	defer st.Close()

	value := strings.Repeat("v", o.ValueSize)
	keys := make([]string, o.Keys)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench%d", i)
	}

	before := st.Stats()
	beforeNs := make([]int64, len(devs))
	for k, d := range devs {
		beforeNs[k] = d.Snapshot().AccountedNs
	}
	start := time.Now()
	var wg sync.WaitGroup
	errc := make(chan error, o.Goroutines)
	for g := 0; g < o.Goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)*6151 + 17))
			for n := 0; n < o.OpsPerG; n++ {
				var err error
				if o.MSetEvery > 0 && n%o.MSetEvery == 0 {
					a, b := rng.Intn(o.Keys), rng.Intn(o.Keys)
					if a == b {
						b = (b + 1) % o.Keys
					}
					err = st.MSet([]string{keys[a], keys[b]}, []string{value, value})
				} else {
					err = st.Set(keys[rng.Intn(o.Keys)], value)
				}
				if err != nil {
					errc <- fmt.Errorf("goroutine %d op %d: %w", g, n, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errc:
		return ShardedRow{}, err
	default:
	}

	after := st.Stats()
	totalOps := float64(o.Goroutines * o.OpsPerG)
	commits := after.Commits - before.Commits
	fences := after.Fences - before.Fences
	var busiestNs int64
	for k, d := range devs {
		if ns := d.Snapshot().AccountedNs - beforeNs[k]; ns > busiestNs {
			busiestNs = ns
		}
	}
	row := ShardedRow{
		Shards:        shards,
		Goroutines:    o.Goroutines,
		WallOpsPerSec: totalOps / elapsed.Seconds(),
		ShardCommits:  make([]uint64, st.NShards()),
	}
	if busiestNs > 0 {
		row.OpsPerSec = totalOps / (float64(busiestNs) / 1e9)
	}
	if commits > 0 {
		row.FencesPerCommit = float64(fences) / float64(commits)
	}
	for k := 0; k < st.NShards(); k++ {
		row.ShardCommits[k] = st.Shard(k).PM.TM().Snapshot().Commits
	}
	return row, nil
}

// ShardedRecoveryOpts configures the recovery sweep.
type ShardedRecoveryOpts struct {
	Options
	// Shards is the shard count under recovery (default 4).
	Shards int
	// HeapSweepMB is the per-shard heap ladder in MB (default 4, 8, 16).
	// Reattach work (remap, heap scavenge, log replay) is CPU-bound, so
	// hosts with fewer cores than shards cannot realize a wall-clock
	// parallel win — the same single-core ceiling the spin() note in
	// internal/scm documents for throughput; the per-shard sum/max
	// bounds in the row carry the host-independent signal.
	HeapSweepMB []int64
	// KeysPerMB scales the populated working set with the heap
	// (default 64 keys per heap MB).
	KeysPerMB int
	// ValueSize is the stored value length (default 256).
	ValueSize int
}

func (o *ShardedRecoveryOpts) fill() {
	if o.Shards == 0 {
		o.Shards = 4
	}
	if len(o.HeapSweepMB) == 0 {
		o.HeapSweepMB = []int64{4, 8, 16}
	}
	if o.KeysPerMB == 0 {
		o.KeysPerMB = 64
	}
	if o.ValueSize == 0 {
		o.ValueSize = 256
	}
}

// ShardedRecoveryRow is one (heap size, worker mode) measurement.
type ShardedRecoveryRow struct {
	HeapMB  int64
	Shards  int
	Workers int
	// Recovery is the wall time of the whole reattach. ShardSum is the
	// sum of the per-shard attach times (what a strictly serial recovery
	// must pay — the serial lower bound) and ShardMax the slowest single
	// shard (the parallel lower bound, reached with one core per shard).
	// On hosts with fewer cores than shards the recovery work is
	// CPU-bound and parallel wall time converges to ShardSum, not
	// ShardMax; the ShardSum/ShardMax ratio is the host-independent
	// statement of what parallel recovery buys.
	Recovery time.Duration
	ShardSum time.Duration
	ShardMax time.Duration
}

func (r ShardedRecoveryRow) String() string {
	return fmt.Sprintf("%3d MB heap, %d shards, %d workers: %10v reattach (per-shard sum %v, slowest %v)",
		r.HeapMB, r.Shards, r.Workers, r.Recovery, r.ShardSum, r.ShardMax)
}

// RunShardedRecovery measures crash-recovery wall time versus per-shard
// heap size, reattaching the same populated, crashed image serially
// (one recovery worker) and fully in parallel.
func RunShardedRecovery(o ShardedRecoveryOpts) ([]ShardedRecoveryRow, error) {
	o.fill()
	var rows []ShardedRecoveryRow
	for _, heapMB := range o.HeapSweepMB {
		cfg, err := shardedConfig(o.Options, o.Shards)
		if err != nil {
			return nil, err
		}
		cfg.HeapSize = heapMB << 20
		// Synchronous truncation: with the async worker, how much log is
		// left to replay depends on how far the worker happened to get
		// before the crash, which makes the recovery work itself
		// nondeterministic run to run.
		cfg.AsyncTruncation = false
		st, err := shard.Open(cfg)
		if err != nil {
			os.RemoveAll(cfg.Dir)
			return nil, err
		}

		value := strings.Repeat("r", o.ValueSize)
		keys := int(heapMB) * o.KeysPerMB
		for i := 0; i < keys; i++ {
			if err := st.Set(fmt.Sprintf("rec%d", i), value); err != nil {
				st.Close()
				os.RemoveAll(cfg.Dir)
				return nil, err
			}
		}
		devs := st.Devices()

		// One untimed warmup cycle: the very first reattach also pays
		// one-time process costs (lazy allocations, page faults, runtime
		// growth) that would otherwise be billed to whichever worker mode
		// happens to run first.
		st.StopTruncation()
		for _, d := range devs {
			d.Crash(scm.KeepAll{})
		}
		if st, err = shard.Attach(devs, cfg); err != nil {
			os.RemoveAll(cfg.Dir)
			return nil, err
		}

		// Crash and reattach the same image per worker mode; every write
		// is already durable, so both recoveries see identical work. Each
		// mode takes the best of three cycles: a GC pause or scheduler
		// hiccup landing inside one millisecond-scale reattach would
		// otherwise dominate the comparison.
		for _, workers := range []int{1, o.Shards} {
			row := ShardedRecoveryRow{HeapMB: heapMB, Shards: o.Shards, Workers: workers}
			for try := 0; try < 3; try++ {
				st.StopTruncation()
				for _, d := range devs {
					d.Crash(scm.KeepAll{})
				}
				cfg.RecoveryWorkers = workers
				// Collect before timing: the sweep runs after heavy
				// allocation (population, earlier cells), and a collection
				// landing inside a millisecond-scale reattach would be
				// billed to whichever worker mode was running.
				runtime.GC()
				start := time.Now()
				st, err = shard.Attach(devs, cfg)
				if err != nil {
					os.RemoveAll(cfg.Dir)
					return nil, err
				}
				elapsed := time.Since(start)
				if try == 0 || elapsed < row.Recovery {
					row.Recovery = elapsed
					row.ShardSum, row.ShardMax = 0, 0
					for k := 0; k < st.NShards(); k++ {
						rt := st.Shard(k).RecoveryTime
						row.ShardSum += rt
						if rt > row.ShardMax {
							row.ShardMax = rt
						}
					}
				}
			}
			rows = append(rows, row)
		}
		st.Close()
		os.RemoveAll(cfg.Dir)
	}
	return rows, nil
}
