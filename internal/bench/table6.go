package bench

import (
	"fmt"
	"time"

	"repro/internal/rawl"
)

// Table 6: throughput of the base (commit-record, two fences) RAWL
// against the tornbit (one fence) RAWL across record sizes. "For log
// records smaller than 2048 bytes, the torn-bit log performs up to 100
// percent better. Above 2048 bytes, the torn bit log performs worse than
// a separate commit record": the fence cost is fixed while the bit
// manipulation scales with the data.

// Table6Row is one record-size column.
type Table6Row struct {
	RecordBytes   int
	BaseMBps      float64
	TornbitMBps   float64
	TornbitGainPc float64
}

func (r Table6Row) String() string {
	return fmt.Sprintf("%5dB records: base %7.1f MB/s, tornbit %7.1f MB/s (%+.0f%%)",
		r.RecordBytes, r.BaseMBps, r.TornbitMBps, r.TornbitGainPc)
}

// Table6Opts parameterizes the log benchmark.
type Table6Opts struct {
	Options
	RecordBytes int
	// Appends is the number of timed appends (default 2000).
	Appends int
}

// RunTable6 measures both log variants at one record size.
func RunTable6(o Table6Opts) (Table6Row, error) {
	o.Options.fill()
	if o.RecordBytes == 0 {
		o.RecordBytes = 64
	}
	if o.Appends == 0 {
		o.Appends = 2000
	}
	env, err := NewEnv(o.Options)
	if err != nil {
		return Table6Row{}, err
	}
	defer env.Close()

	words := int64(1 << 16) // 512 KB buffers
	mem := env.RT.NewMemory()
	tornbitAt, err := env.RT.PMap(rawl.Size(words), 0)
	if err != nil {
		return Table6Row{}, err
	}
	baseAt, err := env.RT.PMap(rawl.Size(words), 0)
	if err != nil {
		return Table6Row{}, err
	}

	rec := make([]uint64, o.RecordBytes/8)
	for i := range rec {
		rec[i] = uint64(i) * 0x123456789
	}
	bytesMoved := float64(o.Appends * o.RecordBytes)

	// Tornbit: append + single-fence flush, truncating when full.
	tlog, err := rawl.Create(mem, tornbitAt, words)
	if err != nil {
		return Table6Row{}, err
	}
	t0 := time.Now()
	for i := 0; i < o.Appends; i++ {
		if _, err := tlog.Append(rec); err == rawl.ErrLogFull {
			tlog.TruncateAll()
			if _, err := tlog.Append(rec); err != nil {
				return Table6Row{}, err
			}
		} else if err != nil {
			return Table6Row{}, err
		}
		tlog.Flush()
	}
	tornbit := time.Since(t0)

	// Base: commit-record protocol, two fences inside Append.
	blog, err := rawl.CreateBase(mem, baseAt, words)
	if err != nil {
		return Table6Row{}, err
	}
	t1 := time.Now()
	for i := 0; i < o.Appends; i++ {
		if err := blog.Append(rec); err == rawl.ErrLogFull {
			blog.TruncateAll()
			if err := blog.Append(rec); err != nil {
				return Table6Row{}, err
			}
		} else if err != nil {
			return Table6Row{}, err
		}
	}
	base := time.Since(t1)

	row := Table6Row{
		RecordBytes: o.RecordBytes,
		BaseMBps:    bytesMoved / base.Seconds() / (1 << 20),
		TornbitMBps: bytesMoved / tornbit.Seconds() / (1 << 20),
	}
	row.TornbitGainPc = (row.TornbitMBps/row.BaseMBps - 1) * 100
	return row, nil
}
