package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/bdb"
	"repro/internal/mtm"
	"repro/internal/pcmdisk"
	"repro/internal/pds"
)

// The Figure 4/5/7 microbenchmark: a hash table updated with durable
// transactions, against Berkeley DB's hash table on a PCM-disk. "Deletes
// are introduced at the same rate as writes to ensure steady progress.
// Update throughput is aggregate throughput of writes and deletes."
// (§6.3.)

// HashRow is one cell of Figures 4/5/7.
type HashRow struct {
	System    string // "MTM" or "BDB"
	ValueSize int
	Threads   int
	// WriteLatency is the mean latency of an insert (Figure 4).
	WriteLatency time.Duration
	// UpdatesPerSec aggregates inserts and deletes (Figure 5).
	UpdatesPerSec float64
}

func (r HashRow) String() string {
	return fmt.Sprintf("%s-%dT %5dB: write latency %s, %.0f updates/s",
		r.System, r.Threads, r.ValueSize, fmtDur(r.WriteLatency), r.UpdatesPerSec)
}

// HashOpts parameterizes the microbenchmark.
type HashOpts struct {
	Options
	ValueSize int
	Threads   int
	// OpsPerThread is the number of insert+delete pairs each thread
	// performs (default 2000).
	OpsPerThread int
	// IdleFraction, when non-zero, idles each thread between updates so
	// the duty cycle matches (Figure 6's 90/50/10% idle runs).
	IdleFraction float64
}

func (o *HashOpts) fill() {
	o.Options.fill()
	if o.ValueSize == 0 {
		o.ValueSize = 64
	}
	if o.Threads == 0 {
		o.Threads = 1
	}
	if o.OpsPerThread == 0 {
		o.OpsPerThread = 2000
	}
}

// RunHashtableMTM measures the Mnemosyne side of Figures 4/5/7.
func RunHashtableMTM(o HashOpts) (HashRow, error) {
	o.fill()
	env, err := NewEnv(o.Options)
	if err != nil {
		return HashRow{}, err
	}
	defer env.Close()

	root, err := env.Root("bench.ht")
	if err != nil {
		return HashRow{}, err
	}
	setup, err := env.TM.NewThread()
	if err != nil {
		return HashRow{}, err
	}
	table, err := pds.CreateHashTable(setup, root, 10007)
	if err != nil {
		return HashRow{}, err
	}

	val := make([]byte, o.ValueSize)
	for i := range val {
		val[i] = byte(i)
	}

	var wg sync.WaitGroup
	writeNs := make([]int64, o.Threads)
	errs := make([]error, o.Threads)
	start := time.Now()
	for w := 0; w < o.Threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th, err := env.TM.NewThread()
			if err != nil {
				errs[w] = err
				return
			}
			keyBase := uint64(w) << 32
			var spent int64
			for i := 0; i < o.OpsPerThread; i++ {
				key := keyBase | uint64(i)
				t0 := time.Now()
				err := th.Atomic(func(tx *mtm.Tx) error {
					return table.Put(tx, key, val)
				})
				spent += time.Since(t0).Nanoseconds()
				if err != nil {
					errs[w] = err
					return
				}
				idle(t0, o.IdleFraction)
				// Delete at the same rate, trailing by a window.
				if i >= 16 {
					t1 := time.Now()
					if err := th.Atomic(func(tx *mtm.Tx) error {
						return table.Delete(tx, keyBase|uint64(i-16))
					}); err != nil {
						errs[w] = err
						return
					}
					idle(t1, o.IdleFraction)
				}
			}
			writeNs[w] = spent
		}(w)
	}
	wg.Wait()
	dur := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return HashRow{}, err
		}
	}
	env.TM.Drain()

	var total int64
	for _, ns := range writeNs {
		total += ns
	}
	ops := o.Threads * (2*o.OpsPerThread - 16)
	return HashRow{
		System:        "MTM",
		ValueSize:     o.ValueSize,
		Threads:       o.Threads,
		WriteLatency:  time.Duration(total / int64(o.Threads*o.OpsPerThread)),
		UpdatesPerSec: float64(ops) / dur.Seconds(),
	}, nil
}

// idle spins between updates so the thread's duty cycle matches Figure
// 6's idle percentages.
func idle(opStart time.Time, idleFraction float64) {
	if idleFraction <= 0 {
		return
	}
	opTime := time.Since(opStart)
	wait := time.Duration(float64(opTime) * idleFraction / (1 - idleFraction))
	deadline := time.Now().Add(wait)
	for time.Now().Before(deadline) {
	}
}

// RunHashtableBDB measures the Berkeley DB side: the same workload
// against the transactional store on a PCM-disk with matching latency.
func RunHashtableBDB(o HashOpts) (HashRow, error) {
	o.fill()
	disk := pcmdisk.Open(pcmdisk.Config{
		Size:         512 << 20,
		WriteLatency: o.WriteLatency,
		Spin:         o.Spin,
	})
	db, err := bdb.Open(disk, bdb.Config{SyncCommit: true})
	if err != nil {
		return HashRow{}, err
	}

	val := make([]byte, o.ValueSize)
	for i := range val {
		val[i] = byte(i)
	}

	var wg sync.WaitGroup
	writeNs := make([]int64, o.Threads)
	errs := make([]error, o.Threads)
	start := time.Now()
	for w := 0; w < o.Threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			keyBase := uint64(w) << 32
			var spent int64
			for i := 0; i < o.OpsPerThread; i++ {
				key := keyBase | uint64(i)
				t0 := time.Now()
				err := db.Put(key, val)
				spent += time.Since(t0).Nanoseconds()
				if err != nil {
					errs[w] = err
					return
				}
				if i >= 16 {
					if err := db.Delete(keyBase | uint64(i-16)); err != nil {
						errs[w] = err
						return
					}
				}
			}
			writeNs[w] = spent
		}(w)
	}
	wg.Wait()
	dur := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return HashRow{}, err
		}
	}

	ops := o.Threads * (2*o.OpsPerThread - 16)
	return HashRow{
		System:        "BDB",
		ValueSize:     o.ValueSize,
		Threads:       o.Threads,
		WriteLatency:  time.Duration(total64(writeNs) / int64(o.Threads*o.OpsPerThread)),
		UpdatesPerSec: float64(ops) / dur.Seconds(),
	}, nil
}

func total64(xs []int64) int64 {
	var t int64
	for _, x := range xs {
		t += x
	}
	return t
}

// Figure7Row compares the systems at one SCM latency.
type Figure7Row struct {
	Latency   time.Duration
	ValueSize int
	// BetterPct is Mnemosyne's write-latency advantage over BDB in
	// percent ((bdb/mtm − 1) × 100), the y-axis of Figure 7.
	BetterPct float64
	MTM, BDB  time.Duration
}

// RunFigure7Cell measures one (latency, value size) point of Figure 7.
func RunFigure7Cell(lat time.Duration, valueSize int, base Options) (Figure7Row, error) {
	o := HashOpts{Options: base, ValueSize: valueSize, Threads: 1}
	o.Options.WriteLatency = lat
	m, err := RunHashtableMTM(o)
	if err != nil {
		return Figure7Row{}, err
	}
	b, err := RunHashtableBDB(o)
	if err != nil {
		return Figure7Row{}, err
	}
	return Figure7Row{
		Latency:   lat,
		ValueSize: valueSize,
		BetterPct: (float64(b.WriteLatency)/float64(m.WriteLatency) - 1) * 100,
		MTM:       m.WriteLatency,
		BDB:       b.WriteLatency,
	}, nil
}
