package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/mtm"
	"repro/internal/pds"
	"repro/internal/telemetry"
)

// MOD head-to-head: the same single-writer update stream driven through
// the backend-agnostic pds.Map interface against each persistence
// strategy — the MOD shadow-update treap (copy the path, flush, one
// fence, swap the root) and the transactional hash table under the redo
// and undo commit protocols. The figure of merit is device fences per
// committed mutation: MOD's contract is exactly 1.00 (the perf gate
// asserts it), bought at the cost of shadow-copying the path, which the
// shadow-bytes column prices.

// ModOpts configures the experiment.
type ModOpts struct {
	Options
	// Backends are the cells to run (default mod, mtm-redo, mtm-undo).
	Backends []string
	// Ops is the number of committed mutations (default 2000).
	Ops int
	// KeySpace is how many distinct keys the stream touches (default 256).
	KeySpace int
	// ValueBytes sizes the values (default 64).
	ValueBytes int
}

func (o *ModOpts) fill() {
	if len(o.Backends) == 0 {
		o.Backends = []string{"mod", "mtm-redo", "mtm-undo"}
	}
	if o.Ops == 0 {
		o.Ops = 2000
	}
	if o.KeySpace == 0 {
		o.KeySpace = 256
	}
	if o.ValueBytes == 0 {
		o.ValueBytes = 64
	}
}

// ModRow is one backend's measurement.
type ModRow struct {
	Backend   string
	OpsPerSec float64
	// FencesPerOp is device fences per committed mutation — exactly 1.0
	// for the MOD backend, the commit protocol's cost for the mtm cells.
	FencesPerOp float64
	// ShadowBytesPerOp is the freshly allocated shadow-block bytes each
	// mutation copied (0 for the in-place mtm backends).
	ShadowBytesPerOp float64
}

func (r ModRow) String() string {
	return fmt.Sprintf("%-10s %9.0f ops/s, %5.2f fences/op, %6.0f shadow B/op",
		r.Backend, r.OpsPerSec, r.FencesPerOp, r.ShadowBytesPerOp)
}

// RunMod sweeps the backends.
func RunMod(o ModOpts) ([]ModRow, error) {
	o.fill()
	var rows []ModRow
	for _, backend := range o.Backends {
		row, err := RunModCell(o, backend)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunModCell measures one backend on a fresh stack. The op stream is
// deterministic (seeded), single-writer, 3:1 puts to deletes, and every
// op is a real committed mutation — deletes target keys known live, so
// fence accounting divides by exactly Ops.
func RunModCell(o ModOpts, backend string) (ModRow, error) {
	o.fill()
	opts := o.Options
	switch backend {
	case "mtm-redo":
		opts.CommitMode = "redo"
	case "mtm-undo":
		opts.CommitMode = "undo"
	}
	env, err := NewEnv(opts)
	if err != nil {
		return ModRow{}, err
	}
	defer env.Close()
	root, err := env.Root("bench.mod")
	if err != nil {
		return ModRow{}, err
	}

	var m pds.Map
	switch backend {
	case "mod":
		m, err = pds.NewMap(pds.BackendMOD, pds.Env{RT: env.RT, Heap: env.Heap}, root, 0)
	case "mtm-redo", "mtm-undo":
		th, terr := env.TM.NewThread()
		if terr != nil {
			return ModRow{}, terr
		}
		defer th.Close()
		m, err = pds.NewMap(pds.BackendMTM, pds.Env{TM: env.TM, Thread: th}, root, o.KeySpace)
	default:
		return ModRow{}, fmt.Errorf("unknown mod-bench backend %q (want mod, mtm-redo, mtm-undo)", backend)
	}
	if err != nil {
		return ModRow{}, err
	}

	rng := rand.New(rand.NewSource(11))
	val := make([]byte, o.ValueBytes)
	rng.Read(val)
	var live []uint64
	liveSet := make(map[uint64]bool)

	startFences := env.Dev.Snapshot().Fences
	startShadow := telemetry.Default.Snapshot()["mod_shadow_bytes_total"]
	start := time.Now()
	for i := 0; i < o.Ops; i++ {
		if i%4 == 3 && len(live) > 0 {
			j := rng.Intn(len(live))
			key := live[j]
			if err := m.Do(func(tx *mtm.Tx) error { return m.Delete(tx, key) }); err != nil {
				return ModRow{}, fmt.Errorf("%s: delete %d: %w", backend, key, err)
			}
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			delete(liveSet, key)
			continue
		}
		key := uint64(rng.Intn(o.KeySpace))
		if err := m.Do(func(tx *mtm.Tx) error { return m.Put(tx, key, val) }); err != nil {
			return ModRow{}, fmt.Errorf("%s: put %d: %w", backend, key, err)
		}
		if !liveSet[key] {
			liveSet[key] = true
			live = append(live, key)
		}
	}
	elapsed := time.Since(start)
	env.TM.Drain()
	fences := env.Dev.Snapshot().Fences - startFences
	shadow := telemetry.Default.Snapshot()["mod_shadow_bytes_total"] - startShadow
	return ModRow{
		Backend:          backend,
		OpsPerSec:        float64(o.Ops) / elapsed.Seconds(),
		FencesPerOp:      float64(fences) / float64(o.Ops),
		ShadowBytesPerOp: shadow / float64(o.Ops),
	}, nil
}
