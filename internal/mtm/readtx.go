package mtm

import (
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/pmem"
	"repro/internal/region"
	"repro/internal/telemetry"
)

// Snapshot-read metrics. A started View is one call (not one attempt); a
// retry is an attempt abandoned because a concurrent commit moved a word
// under the reader; an extend is a successful snapshot raise that let an
// attempt continue instead of restarting.
var (
	telReadTxStarted = telemetry.NewCounter("mtm_readtx_started_total",
		"snapshot read transactions started (View calls)")
	telReadTxRetries = telemetry.NewCounter("mtm_readtx_retries_total",
		"snapshot read attempts restarted on a concurrent commit")
	telReadTxExtends = telemetry.NewCounter("mtm_readtx_extends_total",
		"snapshot timestamp extensions that revalidated a reader in place")
)

// Reader is the transactional read interface, implemented by both the
// writing transaction (*Tx, inside Thread.Atomic) and the slot-free
// snapshot transaction (*ReadTx, inside TM.View). Read-side code —
// lookups, scans, invariant checks — written against Reader runs
// identically inside either transaction kind.
type Reader interface {
	// LoadU64 transactionally reads the word at a.
	LoadU64(a pmem.Addr) uint64
	// Load transactionally reads len(buf) bytes at a.
	Load(buf []byte, a pmem.Addr)
}

// Writer is the full transactional interface: Reader plus transactional
// stores. Only *Tx implements it — snapshot readers cannot write.
type Writer interface {
	Reader
	// StoreU64 transactionally writes the word at a.
	StoreU64(a pmem.Addr, v uint64)
	// Store transactionally writes buf at a.
	Store(a pmem.Addr, buf []byte)
}

var (
	_ Writer = (*Tx)(nil)
	_ Reader = (*ReadTx)(nil)
)

// ReadTx is a slot-free snapshot read transaction. It samples the global
// commit clock and reads persistent words optimistically against the
// versioned lock words: a word whose covering lock moved (or is held by a
// committing writer) aborts the attempt, and a word committed after the
// snapshot raises it via TinySTM-style timestamp extension when the read
// set still validates.
//
// A ReadTx takes no thread lease, appends no log record, and issues no
// flush or fence — readers pay none of the write path's durability
// infrastructure, so any number of them run in parallel, unbounded by
// Config.Slots. Readers never block writers: they own no locks and back
// off on conflict.
//
// A ReadTx is only valid inside the function passed to TM.View and must
// not escape it.
type ReadTx struct {
	tm  *TM
	mem *region.Mem
	rv  uint64 // read snapshot timestamp

	reads []readEntry
	rng   *rand.Rand
}

// readTxSeed derandomizes backoff seeds across pooled readers.
var readTxSeed atomic.Int64

// View runs fn as a snapshot read transaction — the read-only counterpart
// of Thread.Atomic. Every load inside fn observes one consistent committed
// snapshot: the effects of a whole prefix of the global commit order,
// never a partially committed (or partially recovered) transaction or
// group-commit epoch. Conflicts with concurrent commits retry fn
// automatically with randomized backoff; fn must therefore be safe to run
// more than once and must not write persistent memory. Returning an error
// stops the View and returns that error.
//
// View needs no transaction thread: it works when every log slot is
// leased, and GET-style read paths built on it perform zero leases and
// zero fences.
func (tm *TM) View(fn func(r *ReadTx) error) error {
	return tm.ViewSpanned(0, fn)
}

// ViewSpanned is View with an explicit parent span: the snapshot read is
// attributed (PhaseView) as a child of parent when span tracing is on.
// Request handlers pass their request span so GET latency decomposes in
// the flight recorder; parent 0 is equivalent to View.
func (tm *TM) ViewSpanned(parent uint64, fn func(r *ReadTx) error) error {
	sp := telemetry.SpanBegin(telemetry.PhaseView, 0, parent)
	defer sp.End()
	r := tm.readers.Get().(*ReadTx)
	if tm.cfg.ReadCacheWords > 0 {
		r.mem.EnableReadCache(tm.cfg.ReadCacheWords)
	}
	defer tm.putReader(r)
	telReadTxStarted.Inc()
	backoff := time.Microsecond
	for {
		err := r.attempt(fn)
		if err == nil {
			tm.stats.Views.Add(1)
			return nil
		}
		if _, isConflict := err.(conflictErr); !isConflict {
			return err
		}
		telReadTxRetries.Inc()
		// Randomized exponential backoff, as in Atomic: the conflicting
		// writer finishes its commit in the meantime.
		spinFor(time.Duration(r.rng.Int63n(int64(backoff) + 1)))
		if backoff < 128*time.Microsecond {
			backoff *= 2
		}
	}
}

// maxPooledReadCap bounds the read-set capacity a pooled ReadTx may
// retain. A single large scan would otherwise pin its grown reads slice
// in the sync.Pool for the pool entry's lifetime — memory that nothing
// ever shrinks. Oversized read sets are dropped on put; the next View
// through that entry simply regrows from empty.
const maxPooledReadCap = 4096

// putReader returns a reader to the pool, capping what it retains. The
// read-cache slab goes back to the runtime free list rather than riding
// along: a pooled ReadTx can be discarded at any GC (and randomly under
// the race detector), and a slab lost with it takes its accumulated
// warmth — the very thing the cache trades memory for. In the free list
// the slab survives the reader and the next View resumes on it warm.
func (tm *TM) putReader(r *ReadTx) {
	if cap(r.reads) > maxPooledReadCap {
		r.reads = nil
	}
	r.mem.FlushCacheStats()
	r.mem.ReleaseReadCache()
	tm.readers.Put(r)
}

// attempt runs fn once over a fresh snapshot, translating conflict panics
// into conflictErr for View's retry loop.
func (r *ReadTx) attempt(fn func(r *ReadTx) error) (err error) {
	r.rv = r.tm.clock.Load()
	r.reads = r.reads[:0]
	defer func() {
		if rec := recover(); rec != nil {
			if _, ok := rec.(conflict); ok {
				err = conflictErr{}
				return
			}
			panic(rec)
		}
	}()
	return fn(r)
}

// read implements the optimistic load of one word: sample the covering
// lock, load the value, confirm the lock did not move, and raise the
// snapshot when the word's version postdates it. A held lock aborts
// immediately — the writer is mid-commit and the reader must not wait on
// it (waiting under a reader-held resource could stall the writer; there
// is none, but backoff keeps the reader from spinning on the lock word).
func (r *ReadTx) read(a pmem.Addr) uint64 {
	li := r.tm.lockIdx(a)
	l := r.tm.lockAt(li)
	w := l.Load()
	if w&lockedBit != 0 {
		panic(conflict{})
	}
	// Read-through cache: a tag match against the version just sampled
	// proves the cached value is what the device load would return, so
	// both the load and the lock recheck are skipped.
	v, hit := r.mem.CacheLoadU64(a, w)
	if !hit {
		v = r.mem.LoadU64(a)
		if l.Load() != w {
			panic(conflict{})
		}
		r.mem.CacheFill(a, w, v)
	}
	if w > r.rv {
		r.extend()
	}
	r.reads = append(r.reads, readEntry{idx: li, seen: w})
	return v
}

// extend revalidates the read set against the current clock and raises
// the snapshot (TinySTM timestamp extension); a moved read aborts the
// attempt. Readers own no locks, so unlike Tx.validate there is no
// locked-by-us escape.
func (r *ReadTx) extend() {
	now := r.tm.clock.Load()
	for _, e := range r.reads {
		if r.tm.lockAt(e.idx).Load() != e.seen {
			panic(conflict{})
		}
	}
	r.rv = now
	telReadTxExtends.Inc()
}

// LoadU64 transactionally reads the word at a.
func (r *ReadTx) LoadU64(a pmem.Addr) uint64 { return r.read(a) }

// Load transactionally reads len(buf) bytes at a.
func (r *ReadTx) Load(buf []byte, a pmem.Addr) {
	n := int64(len(buf))
	i := int64(0)
	for i < n {
		w := r.read((a.Add(i)) &^ 7)
		shift := uint(uint64(a.Add(i)) & 7)
		for ; shift < 8 && i < n; shift++ {
			buf[i] = byte(w >> (shift * 8))
			i++
		}
	}
}

// Snapshot returns the attempt's read snapshot timestamp: the commit
// clock value the reads are consistent with (tests and assertions).
func (r *ReadTx) Snapshot() uint64 { return r.rv }
