// Package mtm implements Mnemosyne's durable memory transactions (§5 of
// the paper): in-place updates of arbitrary persistent data structures
// with atomicity, durability and isolation.
//
// The design follows the paper's TinySTM-derived word-based software
// transactional memory:
//
//   - Lazy version management with write-ahead redo logging: values
//     written inside a transaction are buffered volatile-side and, at
//     commit, streamed with their addresses into the thread's persistent
//     tornbit RAWL. One log flush — a single fence — makes the whole
//     transaction durable. Memory itself is only updated after the log is
//     durable, so "the only requirement is that the log is written
//     completely before any data values are updated."
//
//   - Eager conflict detection with encounter-time locking over a global
//     array of volatile locks, each covering a slice of the persistent
//     address space. Writers acquire covering locks at first touch and
//     abort when the lock is taken; readers validate lock versions
//     against their snapshot, extending the snapshot when possible.
//
//   - A global timestamp counter incremented at every transaction
//     completion captures a total order over transactions. The commit
//     timestamp is stored in each log record, and recovery replays
//     committed transactions from all per-thread logs in counter order.
//
// Log truncation is synchronous by default (modified lines are flushed and
// the log truncated inside commit); asynchronous truncation moves that
// work to a log-manager goroutine, shortening commit latency at the cost
// of possible stalls when the log fills (§5, Figure 6).
//
// As an ablation the package also implements undo logging
// (Config.UndoLogging), which the paper rejects because it "would require
// ordering a log write before every memory update" — running it shows the
// cost of that extra ordering.
package mtm

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pheap"
	"repro/internal/pmem"
	"repro/internal/rawl"
	"repro/internal/region"
	"repro/internal/scm"
	"repro/internal/telemetry"
)

// Recovery metrics: counts aggregate over every Open in the process; the
// gauge holds the most recent replay's cost.
var (
	telRecoveryReplayed = telemetry.NewCounter("mtm_recovery_replayed_total",
		"committed transactions re-applied from per-thread logs at open")
	telRecoveryUndone = telemetry.NewCounter("mtm_recovery_undone_total",
		"uncommitted undo-mode transactions rolled back at open")
	telRecoveryNs = telemetry.NewGauge("mtm_recovery_ns",
		"duration of the most recent log replay at open, ns")
)

// telLatencySampleRate publishes the latency-histogram sampling rate so
// the exposition layer is no longer opaque about it: a consumer dividing
// histogram counts by commit counts can correct for the sampling. The
// most recently opened TM wins, matching the Sampled-gauge convention.
var telLatencySampleRate = telemetry.NewGauge("mtm_latency_sample_rate",
	"1-in-N sampling rate of the mtm latency histograms (commit/abort/group-commit wait)")

// sampleLatency reports whether the seq'th transaction on a thread should
// feed the latency histograms. Rate 1 (mask 0) times everything.
func (tm *TM) sampleLatency(seq uint64) bool {
	return tm.latMask == 0 || seq&tm.latMask == 1
}

// LatencySampleRate returns the configured 1-in-N histogram sampling rate.
func (tm *TM) LatencySampleRate() int { return tm.cfg.LatencySampleRate }

const (
	tmMagic = 0x4d4e4d544d303031 // "MNMTM001"

	// Log record tags.
	tagRedo       = 1 // ts, n, then n (addr,val) pairs
	tagUndoWrite  = 2 // addr, oldVal
	tagUndoCommit = 3 // ts
	tagRedoGroup  = 4 // ts, epoch, members, n, then n (addr,val) pairs
	tagUndoBatch  = 5 // n, then n (addr,oldVal) pairs — one whole write set

	// Lock table: 2^20 entries of one word each (8 MB volatile).
	lockBits  = 20
	lockCount = 1 << lockBits

	hdrSlotsOff    = 8
	hdrLogWordsOff = 16
)

// lock word encoding: bit63 = locked; when locked, low bits hold the owner
// thread id; when free, the word is the version (commit timestamp).
const lockedBit = uint64(1) << 63

// Config tunes the transaction system.
type Config struct {
	// Slots is the number of per-thread logs (max concurrent threads).
	// Zero selects 32.
	Slots int
	// LogWords is each thread log's buffer capacity in words. Zero
	// selects 16384 (128 KB).
	LogWords int64
	// AsyncTruncation moves data flushing and log truncation off the
	// commit path onto a log-manager goroutine.
	AsyncTruncation bool
	// UndoLogging selects the undo-logging ablation: old values are
	// logged and fenced before each in-place write.
	UndoLogging bool
	// CommitMode selects how writing transactions reach durability:
	//
	//	"" or "redo" — the paper's write-ahead redo logging (default).
	//	"undo"       — every transaction commits through a batched undo
	//	               record: the whole old-value set is logged and
	//	               fenced once (the single ordering point), the new
	//	               values are stored in place, and a commit marker
	//	               fenced behind them. Two fences instead of redo's
	//	               three, at the cost of in-place stores on the
	//	               critical path.
	//	"hybrid"     — small write sets (at most HybridUndoMax words)
	//	               take the undo path; larger ones keep redo logging
	//	               and, when configured, group commit.
	//
	// Unlike the UndoLogging ablation there is no per-write fence: the
	// batched record preserves redo's one-ordering-point structure.
	// Undo and hybrid modes require synchronous truncation (a committed
	// redo record must never outlive its locks, or replay could clobber
	// a later in-place undo commit).
	CommitMode string
	// HybridUndoMax is the largest write set (in words) that commits
	// through the undo path in hybrid mode. Zero selects 16.
	HybridUndoMax int
	// ReadCacheWords sizes the per-thread (and per-pooled-reader)
	// volatile read-through cache of persistent words, validated against
	// the versioned lock words. Zero disables the cache.
	ReadCacheWords int
	// WriteThroughWriteback is an ablation: write values back with
	// streaming writes at commit instead of store+flush per line.
	WriteThroughWriteback bool
	// GroupCommit coalesces the durability fences of concurrent
	// transactions: committing transactions enqueue on a commit epoch
	// and the first member (the leader) issues one fence covering the
	// whole epoch. Requires redo logging (the default).
	GroupCommit bool
	// GroupCommitWait bounds how long an epoch leader waits for more
	// members while other writers are active; an idle system never
	// waits. Zero selects 50µs; negative disables the wait entirely.
	GroupCommitWait time.Duration
	// GroupCommitBatch caps members per epoch (a full epoch flushes
	// immediately). Zero selects 64.
	GroupCommitBatch int
	// Heap optionally attaches a persistent heap so transactions can
	// allocate with Tx.PMalloc / free with Tx.PFree.
	Heap *pheap.Heap
	// LatencySampleRate samples the commit/abort/group-wait latency
	// histograms 1-in-N (rounded up to a power of two). Zero selects 16,
	// the historical default; 1 times every transaction, which
	// attribution runs use. Counters are always exact regardless.
	LatencySampleRate int
}

// commitMode is Config.CommitMode parsed to a branch-friendly enum.
type commitMode int

const (
	modeRedo commitMode = iota
	modeUndo
	modeHybrid
)

func parseCommitMode(s string) (commitMode, error) {
	switch s {
	case "", "redo":
		return modeRedo, nil
	case "undo":
		return modeUndo, nil
	case "hybrid":
		return modeHybrid, nil
	}
	return modeRedo, fmt.Errorf("mtm: unknown commit mode %q (want redo, undo or hybrid)", s)
}

func (c *Config) fill() error {
	if c.Slots == 0 {
		c.Slots = 32
	}
	if c.Slots < 1 || c.Slots > 512 {
		return fmt.Errorf("mtm: slots %d out of range", c.Slots)
	}
	if c.LogWords == 0 {
		c.LogWords = 16384
	}
	if c.LogWords < 256 {
		return fmt.Errorf("mtm: log words %d too small", c.LogWords)
	}
	if c.UndoLogging && c.AsyncTruncation {
		return errors.New("mtm: undo logging does not support async truncation")
	}
	if c.UndoLogging && c.GroupCommit {
		return errors.New("mtm: group commit requires redo logging")
	}
	mode, err := parseCommitMode(c.CommitMode)
	if err != nil {
		return err
	}
	if mode != modeRedo {
		if c.AsyncTruncation {
			// The undo path's safety argument depends on every committed
			// redo record being durably truncated before its locks
			// release; asynchronous truncation breaks exactly that.
			return errors.New("mtm: undo commit modes require synchronous truncation")
		}
		if c.UndoLogging {
			return errors.New("mtm: commit mode conflicts with the UndoLogging ablation")
		}
	}
	if mode == modeUndo && c.GroupCommit {
		return errors.New(`mtm: group commit requires redo records; use CommitMode "hybrid"`)
	}
	if c.HybridUndoMax == 0 {
		c.HybridUndoMax = 16
	}
	if c.HybridUndoMax < 1 || c.HybridUndoMax > 1<<16 {
		return fmt.Errorf("mtm: hybrid undo threshold %d out of range", c.HybridUndoMax)
	}
	if c.ReadCacheWords < 0 || c.ReadCacheWords > 1<<24 {
		return fmt.Errorf("mtm: read cache size %d words out of range", c.ReadCacheWords)
	}
	if c.GroupCommitWait == 0 {
		c.GroupCommitWait = 50 * time.Microsecond
	}
	if c.GroupCommitBatch == 0 {
		c.GroupCommitBatch = 64
	}
	if c.GroupCommitBatch < 1 || c.GroupCommitBatch > 4096 {
		return fmt.Errorf("mtm: group-commit batch %d out of range", c.GroupCommitBatch)
	}
	if c.LatencySampleRate == 0 {
		c.LatencySampleRate = 16
	}
	if c.LatencySampleRate < 1 || c.LatencySampleRate > 1<<20 {
		return fmt.Errorf("mtm: latency sample rate %d out of range", c.LatencySampleRate)
	}
	// Round up to a power of two so sampling is a mask test.
	r := 1
	for r < c.LatencySampleRate {
		r <<= 1
	}
	c.LatencySampleRate = r
	return nil
}

// RecoveryStats reports what Open replayed (§6.3.2 measures this cost).
type RecoveryStats struct {
	// Replayed counts committed-but-not-written-back transactions
	// whose effects were reapplied.
	Replayed int
	// Undone counts uncommitted transactions rolled back (undo mode).
	Undone int
	// EpochsRolledBack counts group-commit member records dropped
	// because their epoch was incomplete at the crash.
	EpochsRolledBack int
	// Duration is the total replay time.
	Duration time.Duration
}

// scratchSlots is the number of persistent pointer slots in each thread's
// scratch page, used as pmalloc/pfree destinations inside transactions.
const scratchSlots = scm.PageSize / 8

// TM is a durable transaction system over a region runtime.
type TM struct {
	rt   *region.Runtime
	cfg  Config
	mode commitMode // parsed Config.CommitMode

	base     pmem.Addr // TM region: header page + per-thread slots
	logBytes int64     // log portion of a slot
	slotSize int64     // log portion + scratch page

	clock atomic.Uint64
	locks []atomic.Uint64

	// latMask drives latency-histogram sampling: a transaction is timed
	// when latSeq&latMask == latMask. Rate 1 gives mask 0 (every
	// transaction); the default rate 16 gives mask 15.
	latMask uint64

	// Thread-slot leasing state. Slots are leased to live threads and
	// recycled through freeSlots when a thread closes; threads is the
	// live set. slotAvail is closed and replaced on every release, so
	// bounded-wait leasing can block on it (broadcast wakeup).
	slotMu    sync.Mutex
	freeSlots []int
	nextSlot  int
	threads   map[int]*Thread
	slotAvail chan struct{}

	mgr *logManager
	gc  *groupCommitter

	// readers pools ReadTx contexts for View. Pooling matters beyond
	// allocation cost: each ReadTx owns a region.Mem whose device context
	// registers with the emulator for the device's lifetime, so minting
	// one per View would grow the context table without bound.
	readers sync.Pool

	// activeWriters counts transactions in flight — begun and not yet
	// enqueued on an epoch, rolled back, or finished read-only; epoch
	// leaders consult it to decide whether waiting for more members is
	// worthwhile. Zero means an idle system, where waiting buys nothing.
	activeWriters atomic.Int64

	stats Stats

	recovery RecoveryStats
}

// Stats counts transaction outcomes.
type Stats struct {
	Commits  atomic.Uint64
	Aborts   atomic.Uint64
	ReadOnly atomic.Uint64
	Views    atomic.Uint64
}

// StatsSnapshot is a plain-value copy of Stats.
type StatsSnapshot struct {
	Commits, Aborts, ReadOnly, Views uint64
}

// Open creates or reopens a transaction system named name. The name keys a
// static pointer to the TM's log region, so the same name reaches the same
// logs across restarts; recovery replays any transactions that committed
// but whose data was not yet written back.
func Open(rt *region.Runtime, name string, cfg Config) (*TM, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	// Opening (and recovering) a transaction system restarts its commit
	// clock and may replay words outside the lock protocol, so any pooled
	// read-cache slab from before this point must not serve hits.
	rt.InvalidateReadCaches()
	tm := &TM{rt: rt, cfg: cfg}
	tm.mode, _ = parseCommitMode(cfg.CommitMode) // validated by fill
	tm.latMask = uint64(cfg.LatencySampleRate - 1)
	telLatencySampleRate.Set(int64(cfg.LatencySampleRate))
	tm.locks = make([]atomic.Uint64, lockCount)
	tm.threads = make(map[int]*Thread)
	tm.slotAvail = make(chan struct{})
	tm.readers.New = func() any {
		// No read cache here: View attaches a slab from the runtime free
		// list per snapshot and releases it on return, so cache warmth
		// lives in the free list rather than dying with pool entries
		// (sync.Pool empties on GC, and drops puts outright under -race).
		mem := rt.NewMemory()
		return &ReadTx{
			tm:  tm,
			mem: mem,
			rng: rand.New(rand.NewSource(readTxSeed.Add(1))),
		}
	}
	tm.logBytes = (rawl.Size(cfg.LogWords) + scm.PageSize - 1) &^ (scm.PageSize - 1)
	tm.slotSize = tm.logBytes + scm.PageSize

	root, _, err := rt.Static("mtm."+name, 8)
	if err != nil {
		return nil, err
	}
	mem := rt.NewMemory()
	base := pmem.Addr(mem.LoadU64(root))
	if base == pmem.Nil {
		// First run: create the log region.
		size := int64(scm.PageSize) + int64(cfg.Slots)*tm.slotSize
		base, err = rt.PMapAt(root, size, 0)
		if err != nil {
			return nil, err
		}
		tm.base = base
		if err := tm.create(mem); err != nil {
			return nil, err
		}
	} else {
		tm.base = base
		if mem.LoadU64(base) != tmMagic {
			// The root was durably linked to the region but the header
			// magic never committed: a crash interrupted creation. No
			// transaction can have run before the magic fence, so
			// re-running creation over the same region is safe.
			if err := tm.create(mem); err != nil {
				return nil, err
			}
			if cfg.AsyncTruncation {
				tm.mgr = newLogManager(tm)
			}
			if cfg.GroupCommit {
				tm.gc = newGroupCommitter(tm)
			}
			return tm, nil
		}
		slots := int(mem.LoadU64(base.Add(hdrSlotsOff)))
		logWords := int64(mem.LoadU64(base.Add(hdrLogWordsOff)))
		if slots != cfg.Slots || logWords != cfg.LogWords {
			return nil, fmt.Errorf("mtm: %q was created with slots=%d logWords=%d", name, slots, logWords)
		}
		if err := tm.recover(mem); err != nil {
			return nil, err
		}
	}

	if cfg.AsyncTruncation {
		tm.mgr = newLogManager(tm)
	}
	if cfg.GroupCommit {
		tm.gc = newGroupCommitter(tm)
	}
	return tm, nil
}

// create lays out the per-slot logs and commits the header; the magic
// written behind its fence is the creation's durability point.
func (tm *TM) create(mem pmem.Memory) error {
	for i := 0; i < tm.cfg.Slots; i++ {
		if _, err := rawl.Create(mem, tm.slotAddr(i), tm.cfg.LogWords); err != nil {
			return err
		}
	}
	mem.WTStoreU64(tm.base.Add(hdrSlotsOff), uint64(tm.cfg.Slots))
	mem.WTStoreU64(tm.base.Add(hdrLogWordsOff), uint64(tm.cfg.LogWords))
	mem.Fence()
	mem.WTStoreU64(tm.base, tmMagic)
	mem.Fence()
	return nil
}

// Recovery returns what Open replayed.
func (tm *TM) Recovery() RecoveryStats { return tm.recovery }

// Snapshot returns transaction outcome counters.
func (tm *TM) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Commits:  tm.stats.Commits.Load(),
		Aborts:   tm.stats.Aborts.Load(),
		ReadOnly: tm.stats.ReadOnly.Load(),
		Views:    tm.stats.Views.Load(),
	}
}

// Close stops the log manager, if any. Persistent state is untouched; all
// committed transactions are already durable.
func (tm *TM) Close() {
	if tm.mgr != nil {
		tm.mgr.stop()
	}
}

// Drain blocks until asynchronous truncation has caught up with all
// commits so far.
func (tm *TM) Drain() {
	if tm.mgr != nil {
		tm.mgr.drain()
	}
}

// StopTruncation halts the asynchronous log manager without draining it,
// leaving committed-but-not-written-back transactions in the persistent
// logs. Crash-recovery tests and the reincarnation benchmark (§6.3.2) use
// this to create recoverable state deterministically. No-op without
// asynchronous truncation.
func (tm *TM) StopTruncation() {
	if tm.mgr != nil {
		tm.mgr.halt()
	}
}

// Heap returns the attached persistent heap, or nil.
func (tm *TM) Heap() *pheap.Heap { return tm.cfg.Heap }

// LiveThreads reports how many threads are currently bound to log slots.
func (tm *TM) LiveThreads() int {
	tm.slotMu.Lock()
	defer tm.slotMu.Unlock()
	return len(tm.threads)
}

// FreeSlots reports how many log slots a NewThread call could draw from
// right now (recycled plus never-used).
func (tm *TM) FreeSlots() int {
	tm.slotMu.Lock()
	defer tm.slotMu.Unlock()
	return len(tm.freeSlots) + (tm.cfg.Slots - tm.nextSlot)
}

// RegionBase returns the base address of the TM's log region. Garbage
// collectors skip it when scanning for roots: truncated logs still
// physically contain stale address words that would otherwise retain
// garbage conservatively.
func (tm *TM) RegionBase() pmem.Addr { return tm.base }

func (tm *TM) slotAddr(i int) pmem.Addr {
	return tm.base.Add(scm.PageSize + int64(i)*tm.slotSize)
}

func (tm *TM) scratchAddr(i int) pmem.Addr {
	return tm.slotAddr(i).Add(tm.logBytes)
}

// lockIdx maps an address to its covering lock's index. The word index is
// scrambled so neighboring words map to different locks ("each lock
// covering a portion of the address space").
func (tm *TM) lockIdx(a pmem.Addr) uint32 {
	h := uint64(a) >> 3 * 0x9E3779B97F4A7C15
	return uint32(h >> (64 - lockBits))
}

func (tm *TM) lockAt(i uint32) *atomic.Uint64 { return &tm.locks[i] }

// recover replays the per-thread logs. Redo records of committed
// transactions are replayed in global timestamp order; undo records of
// uncommitted transactions (undo mode) are rolled back in reverse order.
// Group-commit records carry their epoch id and member count, and are
// replayed only when every record of the epoch survived: a crash before
// the epoch's covering fence loses at least one member's record (per the
// tornbit protocol, a torn record does not count as present), which rolls
// the entire epoch back — no member of an unfenced epoch can have reached
// in-place memory, since write-back strictly follows the fence.
func (tm *TM) recover(mem pmem.Memory) error {
	start := time.Now()
	type committed struct {
		ts    uint64
		pairs []uint64 // n (addr,val) pairs, flattened
	}
	var redo []committed
	type groupRec struct {
		ts, epoch, members uint64
		pairs              []uint64
	}
	var groups []groupRec
	epochCount := make(map[uint64]uint64)
	var maxTs uint64

	for i := 0; i < tm.cfg.Slots; i++ {
		log, recs, err := rawl.Open(mem, tm.slotAddr(i))
		if err != nil {
			return fmt.Errorf("mtm: slot %d: %w", i, err)
		}
		// In the undo modes, identify the suffix of old-value records
		// with no commit record and roll them back in reverse. The
		// per-write ablation leaves tagUndoWrite records; the batched
		// commit mode leaves at most one tagUndoBatch record (a thread
		// runs one transaction at a time, and every committed batch is
		// terminated by a tagUndoCommit marker).
		var pendingUndo [][]uint64
		var pendingBatch [][]uint64
		for _, r := range recs {
			if len(r) < 1 {
				continue
			}
			switch r[0] {
			case tagRedo:
				// [tag, ts, n, addr1, val1, ..., addrN, valN]
				if len(r) < 3 {
					continue
				}
				ts, n := r[1], r[2]
				if uint64(len(r)) < 3+2*n {
					continue
				}
				redo = append(redo, committed{ts: ts, pairs: r[3 : 3+2*n]})
				if ts > maxTs {
					maxTs = ts
				}
			case tagRedoGroup:
				// [tag, ts, epoch, members, n, addr1, val1, ...]
				if len(r) < 5 {
					continue
				}
				ts, ep, members, n := r[1], r[2], r[3], r[4]
				if members == 0 || uint64(len(r)) < 5+2*n {
					continue
				}
				groups = append(groups, groupRec{ts: ts, epoch: ep, members: members, pairs: r[5 : 5+2*n]})
				epochCount[ep]++
				// Advance the clock past every observed timestamp, even a
				// rolled-back epoch's: its members' timestamps must not
				// be minted again.
				if ts > maxTs {
					maxTs = ts
				}
			case tagUndoWrite: // [tag, addr, oldVal]
				if len(r) == 3 {
					pendingUndo = append(pendingUndo, r)
				}
			case tagUndoBatch: // [tag, n, addr1, old1, ..., addrN, oldN]
				if len(r) < 2 {
					continue
				}
				if n := r[1]; uint64(len(r)) >= 2+2*n {
					pendingBatch = append(pendingBatch, r[:2+2*n])
				}
			case tagUndoCommit: // [tag, ts] — terminates both undo flavors
				pendingUndo = pendingUndo[:0]
				pendingBatch = pendingBatch[:0]
				if len(r) == 2 && r[1] > maxTs {
					maxTs = r[1]
				}
			}
		}
		// A thread runs one transaction at a time, so an unterminated
		// suffix of undo records is exactly one uncommitted
		// transaction: roll its writes back in reverse order.
		for j := len(pendingUndo) - 1; j >= 0; j-- {
			r := pendingUndo[j]
			mem.WTStoreU64(pmem.Addr(r[1]), r[2])
		}
		// A torn undo apply — the batch record fenced, the in-place
		// stores interrupted — rolls back exactly: every address reverts
		// to its logged old value, in reverse write order.
		for j := len(pendingBatch) - 1; j >= 0; j-- {
			r := pendingBatch[j]
			n := r[1]
			for k := int64(n) - 1; k >= 0; k-- {
				mem.WTStoreU64(pmem.Addr(r[2+2*k]), r[3+2*k])
			}
		}
		if len(pendingUndo) > 0 || len(pendingBatch) > 0 {
			tm.recovery.Undone += len(pendingBatch)
			if len(pendingUndo) > 0 {
				tm.recovery.Undone++
			}
			mem.Fence()
		}
		log.TruncateAll()
		_ = log
	}

	// Admit only complete epochs; incomplete ones are the crash's
	// rollback and their records are simply dropped (the logs were
	// truncated above).
	for _, g := range groups {
		if epochCount[g.epoch] == g.members {
			redo = append(redo, committed{ts: g.ts, pairs: g.pairs})
		} else {
			tm.recovery.EpochsRolledBack++
		}
	}

	sort.Slice(redo, func(i, j int) bool { return redo[i].ts < redo[j].ts })
	for _, c := range redo {
		n := uint64(len(c.pairs) / 2)
		for k := uint64(0); k < n; k++ {
			mem.WTStoreU64(pmem.Addr(c.pairs[2*k]), c.pairs[2*k+1])
		}
		tm.recovery.Replayed++
		if telemetry.TraceEnabled() {
			telemetry.Emit(telemetry.EvRecoveryReplay, 0, c.ts, n)
		}
	}
	if len(redo) > 0 {
		mem.Fence()
	}
	tm.clock.Store(maxTs)
	tm.recovery.Duration = time.Since(start)
	telRecoveryReplayed.Add(uint64(tm.recovery.Replayed))
	telRecoveryUndone.Add(uint64(tm.recovery.Undone))
	telRecoveryNs.Set(tm.recovery.Duration.Nanoseconds())
	return nil
}
