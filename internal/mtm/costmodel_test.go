package mtm

import (
	"testing"
	"time"

	"repro/internal/pheap"
	"repro/internal/pmem"
	"repro/internal/region"
	"repro/internal/scm"
)

// The accounting delay mode makes the emulator's cost model deterministic,
// so the per-commit SCM costs of §5/§6.3 can be asserted exactly:
//
//	redo commit = 1 fence for the log flush (latency + logged bytes/bw)
//	            + 1 flush per distinct modified cache line (latency each)
//	            + 1 fence before truncation
//	            + 1 fence for the head update (truncate)
//
// These tests pin the transaction system to that model; any regression
// that adds fences or flushes to the commit path fails them.

func costEnv(t *testing.T) (*TM, *Thread, pmem.Addr, *scm.Device) {
	t.Helper()
	dev, err := scm.Open(scm.Config{
		Size:           64 << 20,
		Mode:           scm.DelayAccount,
		WriteLatency:   100 * time.Nanosecond,
		WriteBandwidth: 8 << 30, // 8 GiB/s: 1 byte costs exactly 2^-33 s
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := region.Open(dev, region.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	heapBase, err := rt.PMap(16<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := pheap.Format(rt, heapBase, 16<<20, pheap.Config{Lanes: 1})
	if err != nil {
		t.Fatal(err)
	}
	tm, err := Open(rt, "cost", Config{Heap: heap, Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	th, err := tm.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	data, err := rt.PMap(1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tm, th, data, dev
}

func TestCommitCostModel(t *testing.T) {
	const lat = 100 * time.Nanosecond
	cases := []struct {
		name  string
		words int
		lines int64 // distinct cache lines written
	}{
		{"1word", 1, 1},
		{"8words-1line", 8, 1},
		{"64words-8lines", 64, 8},
		{"512words-64lines", 512, 64},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, th, data, _ := costEnv(t)
			// Warm up allocator/table state outside the measured tx.
			if err := th.Atomic(func(tx *Tx) error {
				tx.StoreU64(data.Add(1<<19), 1)
				return nil
			}); err != nil {
				t.Fatal(err)
			}

			ctx := th.Memory().Context()
			ctx.ResetAccounting()
			if err := th.Atomic(func(tx *Tx) error {
				for w := 0; w < c.words; w++ {
					tx.StoreU64(data.Add(int64(w)*8), uint64(w))
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			got := ctx.AccountedTime()

			// Model: log flush fence (latency + bytes/bw) + per-line
			// flushes + post-writeback fence + truncate fence.
			logBytes := logStreamBytes(3 + 2*c.words)
			bwNs := float64(logBytes) / float64(8<<30) * 1e9
			truncNs := 8.0 / float64(8<<30) * 1e9
			want := lat + time.Duration(bwNs) + // log flush fence
				time.Duration(c.lines)*lat + // per-line flushes
				lat + // fence after write-back
				lat + time.Duration(truncNs) // truncate: 8-byte head + fence
			if got < want-10*time.Nanosecond || got > want+10*time.Nanosecond {
				t.Fatalf("accounted %v, model %v (words=%d lines=%d)", got, want, c.words, c.lines)
			}
		})
	}
}

// logStreamBytes returns the bytes streamed into the tornbit log for a
// record of k payload words: header + payload packed 63 bits per word,
// padded to whole log words.
func logStreamBytes(k int) int64 {
	bits := int64(1+k) * 64
	return (bits + 62) / 63 * 8
}

func TestReadOnlyTxCostsNothing(t *testing.T) {
	_, th, data, _ := costEnv(t)
	if err := th.Atomic(func(tx *Tx) error {
		tx.StoreU64(data, 7)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	ctx := th.Memory().Context()
	ctx.ResetAccounting()
	if err := th.Atomic(func(tx *Tx) error {
		for i := int64(0); i < 64; i++ {
			_ = tx.LoadU64(data.Add(i * 8))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := ctx.AccountedTime(); got != 0 {
		t.Fatalf("read-only transaction accounted %v SCM time", got)
	}
}

func TestUndoCostsOneFencePerWrite(t *testing.T) {
	// The §5 argument quantified: undo logging pays a log-flush fence
	// before every in-place update, so an n-word transaction costs at
	// least n fences more than redo.
	const lat = 100 * time.Nanosecond
	dev, err := scm.Open(scm.Config{
		Size:           64 << 20,
		Mode:           scm.DelayAccount,
		WriteLatency:   lat,
		WriteBandwidth: 8 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := region.Open(dev, region.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	tm, err := Open(rt, "undocost", Config{Slots: 2, UndoLogging: true})
	if err != nil {
		t.Fatal(err)
	}
	th, err := tm.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	data, err := rt.PMap(1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	const words = 32
	ctx := th.Memory().Context()
	ctx.ResetAccounting()
	if err := th.Atomic(func(tx *Tx) error {
		for w := int64(0); w < words; w++ {
			tx.StoreU64(data.Add(w*8), uint64(w))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	got := ctx.AccountedTime()
	// At minimum: one fence per undo-logged write plus the commit-side
	// flushes and two fences.
	min := time.Duration(words) * lat
	if got < min {
		t.Fatalf("undo tx accounted %v, expected at least %v (one fence per write)", got, min)
	}
}
