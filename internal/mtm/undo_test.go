package mtm

import (
	"testing"

	"repro/internal/scm"
	"repro/internal/telemetry"
)

func TestUndoCommitDurable(t *testing.T) {
	e := newEnv(t, Config{CommitMode: "undo"})
	th, err := e.tm.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Atomic(func(tx *Tx) error {
		tx.StoreU64(e.data, 42)
		tx.StoreU64(e.data.Add(8), 43)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Committed in-place data survives the worst crash: the lines were
	// flushed before the commit marker's fence.
	e.dev.Crash(scm.DropAll{})
	if got := e.mem.LoadU64(e.data); got != 42 {
		t.Fatalf("word0 = %d", got)
	}
	if got := e.mem.LoadU64(e.data.Add(8)); got != 43 {
		t.Fatalf("word1 = %d", got)
	}
}

// TestUndoCommitRecovery reopens the stack after a crash and checks that
// committed undo transactions stay applied: their markers render the
// batch records inert at replay.
func TestUndoCommitRecovery(t *testing.T) {
	cfg := Config{CommitMode: "undo"}
	e := newEnv(t, cfg)
	th, _ := e.tm.NewThread()
	for i := uint64(1); i <= 5; i++ {
		if err := th.Atomic(func(tx *Tx) error {
			tx.StoreU64(e.data, i)
			tx.StoreU64(e.data.Add(8*int64(i)), i*100)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	e.reopen(t, scm.DropAll{}, cfg)
	if got := e.mem.LoadU64(e.data); got != 5 {
		t.Fatalf("after recovery word0 = %d, want 5", got)
	}
	for i := int64(1); i <= 5; i++ {
		if got := e.mem.LoadU64(e.data.Add(8 * i)); got != uint64(i)*100 {
			t.Fatalf("after recovery word%d = %d", i, got)
		}
	}
	if undone := e.tm.Recovery().Undone; undone != 0 {
		t.Fatalf("recovery rolled back %d committed transactions", undone)
	}
}

// TestUndoAbortRollsBack checks that a user abort in undo mode leaves no
// trace: writes are still buffered until commit, so nothing reaches
// memory.
func TestUndoAbortRollsBack(t *testing.T) {
	e := newEnv(t, Config{CommitMode: "undo"})
	th, _ := e.tm.NewThread()
	boom := thErr{}
	err := th.Atomic(func(tx *Tx) error {
		tx.StoreU64(e.data, 99)
		return boom
	})
	if err != boom {
		t.Fatalf("err = %v", err)
	}
	if got := e.mem.LoadU64(e.data); got != 0 {
		t.Fatalf("aborted write visible: %d", got)
	}
}

type thErr struct{}

func (thErr) Error() string { return "boom" }

// TestHybridModeSplitsPaths checks the hybrid threshold: a write set at or
// under HybridUndoMax commits through the undo path, a larger one through
// redo.
func TestHybridModeSplitsPaths(t *testing.T) {
	e := newEnv(t, Config{CommitMode: "hybrid", HybridUndoMax: 4})
	th, _ := e.tm.NewThread()

	undoBefore, redoBefore := telUndoCommits.Value(), telRedoCommits.Value()
	if err := th.Atomic(func(tx *Tx) error {
		for i := int64(0); i < 3; i++ {
			tx.StoreU64(e.data.Add(8*i), uint64(i+1))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := telUndoCommits.Value() - undoBefore; got != 1 {
		t.Fatalf("small tx took undo path %d times, want 1", got)
	}

	if err := th.Atomic(func(tx *Tx) error {
		for i := int64(0); i < 20; i++ {
			tx.StoreU64(e.data.Add(8*i), uint64(100+i))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := telRedoCommits.Value() - redoBefore; got != 1 {
		t.Fatalf("large tx took redo path %d times, want 1", got)
	}
	for i := int64(0); i < 20; i++ {
		if got := e.mem.LoadU64(e.data.Add(8 * i)); got != uint64(100+i) {
			t.Fatalf("word%d = %d", i, got)
		}
	}
}

// TestAtomicUndoForcesPath checks AtomicUndo on a default (redo) TM, and
// that it is refused when asynchronous truncation is on.
func TestAtomicUndoForcesPath(t *testing.T) {
	e := newEnv(t, Config{})
	th, _ := e.tm.NewThread()
	before := telUndoCommits.Value()
	if err := th.AtomicUndo(func(tx *Tx) error {
		tx.StoreU64(e.data, 7)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := telUndoCommits.Value() - before; got != 1 {
		t.Fatalf("AtomicUndo took undo path %d times, want 1", got)
	}
	if got := e.mem.LoadU64(e.data); got != 7 {
		t.Fatalf("word = %d", got)
	}
	if err := th.Close(); err != nil {
		t.Fatal(err)
	}

	async := newEnv(t, Config{AsyncTruncation: true})
	tha, _ := async.tm.NewThread()
	if err := tha.AtomicUndo(func(tx *Tx) error { return nil }); err == nil {
		t.Fatal("AtomicUndo accepted async truncation")
	}
}

// TestUndoFewerFencesThanRedo is the head-to-head the mode exists for: a
// single-word commit through the undo path issues fewer device fences
// than through sync redo.
func TestUndoFencesBeatRedo(t *testing.T) {
	fences := func(cfg Config) uint64 {
		e := newEnv(t, cfg)
		th, _ := e.tm.NewThread()
		// Warm up allocator/log paths, then measure one commit.
		if err := th.Atomic(func(tx *Tx) error { tx.StoreU64(e.data, 1); return nil }); err != nil {
			t.Fatal(err)
		}
		before := e.dev.Snapshot().Fences
		if err := th.Atomic(func(tx *Tx) error { tx.StoreU64(e.data, 2); return nil }); err != nil {
			t.Fatal(err)
		}
		return e.dev.Snapshot().Fences - before
	}
	redo := fences(Config{})
	undo := fences(Config{CommitMode: "undo"})
	if undo >= redo {
		t.Fatalf("undo commit used %d fences, redo %d — undo must use fewer", undo, redo)
	}
}

// TestConfigRejectsUnsafeUndoCombos pins the fill-time validation that
// protects the undo path's recovery argument.
func TestConfigRejectsUnsafeUndoCombos(t *testing.T) {
	bad := []Config{
		{CommitMode: "undo", AsyncTruncation: true},
		{CommitMode: "hybrid", AsyncTruncation: true},
		{CommitMode: "undo", UndoLogging: true},
		{CommitMode: "undo", GroupCommit: true},
		{CommitMode: "nonsense"},
	}
	for i, cfg := range bad {
		if err := cfg.fill(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	good := Config{CommitMode: "hybrid", GroupCommit: true}
	if err := good.fill(); err != nil {
		t.Errorf("hybrid+group rejected: %v", err)
	}
}

// TestReadCacheCoherent checks the read-through cache against the lock
// versions: a View sees a cached value, a commit moves the word, and the
// next View must see the new value (the version tag invalidates the
// entry).
func TestReadCacheCoherent(t *testing.T) {
	e := newEnv(t, Config{ReadCacheWords: 1024})
	th, _ := e.tm.NewThread()
	if err := th.Atomic(func(tx *Tx) error { tx.StoreU64(e.data, 10); return nil }); err != nil {
		t.Fatal(err)
	}
	readWord := func() (v uint64) {
		if err := e.tm.View(func(r *ReadTx) error { v = r.LoadU64(e.data); return nil }); err != nil {
			t.Fatal(err)
		}
		return v
	}
	// Two reads: the second is a cache hit when the pool reuses the
	// reader, and must still be correct.
	if got := readWord(); got != 10 {
		t.Fatalf("read = %d", got)
	}
	if got := readWord(); got != 10 {
		t.Fatalf("cached read = %d", got)
	}
	if err := th.Atomic(func(tx *Tx) error { tx.StoreU64(e.data, 11); return nil }); err != nil {
		t.Fatal(err)
	}
	if got := readWord(); got != 11 {
		t.Fatalf("read after commit = %d, cache served a stale value", got)
	}

	// The writer's own transactional reads go through the cache too.
	var seen uint64
	if err := th.Atomic(func(tx *Tx) error { seen = tx.LoadU64(e.data); return nil }); err != nil {
		t.Fatal(err)
	}
	if seen != 11 {
		t.Fatalf("tx read = %d", seen)
	}
}

// TestReadTxPoolCapsRetainedReads pins the pool-retention cap: a reader
// whose read set grew past maxPooledReadCap is stripped on put, so one
// large scan cannot pin megabytes in the pool forever.
func TestReadTxPoolCapsRetainedReads(t *testing.T) {
	e := newEnv(t, Config{})
	small := &ReadTx{tm: e.tm, mem: e.tm.rt.NewMemory(),
		reads: make([]readEntry, 0, maxPooledReadCap)}
	e.tm.putReader(small)
	if small.reads == nil {
		t.Fatal("put dropped a read set within the cap")
	}
	big := &ReadTx{tm: e.tm, mem: e.tm.rt.NewMemory(),
		reads: make([]readEntry, 0, maxPooledReadCap+1)}
	e.tm.putReader(big)
	if big.reads != nil {
		t.Fatalf("put retained %d words of read-set capacity, cap is %d",
			cap(big.reads), maxPooledReadCap)
	}
}

// TestUndoPhaseFencesAttributed checks the per-mode fence attribution:
// undo commits count their two fences under undo_log/undo_apply, leaving
// the redo phases untouched.
func TestUndoPhaseFencesAttributed(t *testing.T) {
	e := newEnv(t, Config{CommitMode: "undo"})
	th, _ := e.tm.NewThread()
	logBefore := telemetry.PhaseFences(telemetry.PhaseUndoLog)
	applyBefore := telemetry.PhaseFences(telemetry.PhaseUndoApply)
	redoBefore := telemetry.PhaseFences(telemetry.PhaseLogFence)
	if err := th.Atomic(func(tx *Tx) error { tx.StoreU64(e.data, 1); return nil }); err != nil {
		t.Fatal(err)
	}
	if got := telemetry.PhaseFences(telemetry.PhaseUndoLog) - logBefore; got != 1 {
		t.Fatalf("undo_log fences = %d, want 1", got)
	}
	if got := telemetry.PhaseFences(telemetry.PhaseUndoApply) - applyBefore; got != 1 {
		t.Fatalf("undo_apply fences = %d, want 1", got)
	}
	if got := telemetry.PhaseFences(telemetry.PhaseLogFence) - redoBefore; got != 0 {
		t.Fatalf("log_fence fences = %d, want 0 in undo mode", got)
	}
}
