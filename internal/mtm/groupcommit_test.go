package mtm

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/scm"
)

// TestGroupCommitDurable is the basic contract under the epoch
// coordinator: committed transactions survive the worst crash, exactly
// like solo commits.
func TestGroupCommitDurable(t *testing.T) {
	e := newEnv(t, Config{GroupCommit: true})
	th, err := e.tm.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := th.Atomic(func(tx *Tx) error {
			tx.StoreU64(e.data.Add(int64(i)*8), uint64(i+1)*111)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	e.dev.Crash(scm.DropAll{})
	for i := 0; i < 10; i++ {
		if got := e.mem.LoadU64(e.data.Add(int64(i) * 8)); got != uint64(i+1)*111 {
			t.Fatalf("word %d = %d, want %d", i, got, uint64(i+1)*111)
		}
	}
}

// TestGroupCommitReplaysAfterCrash crashes between the epoch fence and
// write-back (simulated by dropping the cache) and verifies reopening
// replays the group records.
func TestGroupCommitReplaysAfterCrash(t *testing.T) {
	cfg := Config{GroupCommit: true}
	e := newEnv(t, cfg)
	th, err := e.tm.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th, err := e.tm.NewThread()
			if err != nil {
				t.Error(err)
				return
			}
			_ = th.Atomic(func(tx *Tx) error {
				tx.StoreU64(e.data.Add(int64(100+g)*8), uint64(g+1))
				return nil
			})
		}(g)
	}
	if err := th.Atomic(func(tx *Tx) error {
		tx.StoreU64(e.data, 7)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	e.reopen(t, scm.DropAll{}, cfg)
	if got := e.mem.LoadU64(e.data); got != 7 {
		t.Fatalf("word 0 = %d, want 7", got)
	}
	for g := 0; g < 4; g++ {
		if got := e.mem.LoadU64(e.data.Add(int64(100+g) * 8)); got != uint64(g+1) {
			t.Fatalf("word %d = %d, want %d", 100+g, got, g+1)
		}
	}
}

// TestGroupCommitFenceCoalescing is the issue's acceptance check: K
// goroutines committing simultaneously are covered by at most
// ceil(K/batch-cap)+1 leader fences. The leader-fence count is read from
// the coordinator's own telemetry (one covering FenceGroup per epoch on
// the commit path under asynchronous truncation); the device fence
// counter additionally shows the per-commit amortization against the
// 3-fences-per-commit solo baseline. Scheduling decides how commits land
// on epochs, so the round retries a few times before declaring failure.
func TestGroupCommitFenceCoalescing(t *testing.T) {
	const K, cap = 8, 4
	wantMax := uint64((K+cap-1)/cap + 1) // ceil(K/cap)+1
	for attempt := 0; attempt < 3; attempt++ {
		e := newEnv(t, Config{
			GroupCommit:      true,
			GroupCommitBatch: cap,
			AsyncTruncation:  true,
		})
		threads := make([]*Thread, K)
		for g := range threads {
			th, err := e.tm.NewThread()
			if err != nil {
				t.Fatal(err)
			}
			threads[g] = th
		}
		startFences := telGCFences.Value()
		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < K; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				if err := threads[g].Atomic(func(tx *Tx) error {
					tx.StoreU64(e.data.Add(int64(g)*8), uint64(g+1))
					return nil
				}); err != nil {
					t.Error(err)
				}
			}(g)
		}
		close(start)
		wg.Wait()
		leaderFences := telGCFences.Value() - startFences
		e.tm.Drain()
		e.tm.Close()
		if leaderFences <= wantMax {
			t.Logf("%d commits covered by %d leader fences (cap %d)", K, leaderFences, cap)
			return
		}
		t.Logf("attempt %d: %d leader fences for %d commits, want <= %d; retrying",
			attempt, leaderFences, K, wantMax)
	}
	t.Fatalf("%d concurrent commits never coalesced into <= %d epochs", K, wantMax)
}

// TestGroupCommitIdleSingleCommit verifies the no-stall property: a
// solitary committer forms a singleton epoch and pays the solo fence
// budget (3 in synchronous mode) without waiting for members that will
// never come.
func TestGroupCommitIdleSingleCommit(t *testing.T) {
	e := newEnv(t, Config{GroupCommit: true})
	th, err := e.tm.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	startEpochs := telGCEpochs.Value()
	startFences := e.dev.Snapshot().Fences
	for i := 0; i < n; i++ {
		if err := th.Atomic(func(tx *Tx) error {
			tx.StoreU64(e.data, uint64(i))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := telGCEpochs.Value() - startEpochs; got != n {
		t.Fatalf("epochs = %d, want %d singleton epochs", got, n)
	}
	if got := e.dev.Snapshot().Fences - startFences; got != 3*n {
		t.Fatalf("device fences = %d, want %d (3 per idle commit)", got, 3*n)
	}
}

// TestGroupCommitRollsBackIncompleteEpoch fabricates the on-device state
// of a crash between two members' log appends — one record claiming a
// two-member epoch — and verifies recovery drops it: the epoch is
// incomplete, so no member may be replayed.
func TestGroupCommitRollsBackIncompleteEpoch(t *testing.T) {
	cfg := Config{GroupCommit: true}
	e := newEnv(t, cfg)
	th, err := e.tm.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	// One record of a claimed 2-member epoch, durable in the log; the
	// second member's record was "lost in the crash".
	ts := e.tm.clock.Add(1)
	th.appendGroupRecord([]uint64{tagRedoGroup, ts, 9, 2, 1, uint64(e.data), 777})
	th.log.Flush()
	e.reopen(t, scm.DropAll{}, cfg)
	if got := e.tm.Recovery().EpochsRolledBack; got != 1 {
		t.Fatalf("EpochsRolledBack = %d, want 1", got)
	}
	if got := e.tm.Recovery().Replayed; got != 0 {
		t.Fatalf("Replayed = %d, want 0", got)
	}
	if got := e.mem.LoadU64(e.data); got != 0 {
		t.Fatalf("rolled-back epoch leaked value %d into the data region", got)
	}
	// A complete epoch with the same shape replays fine after the rollback.
	th2, err := e.tm.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	if err := th2.Atomic(func(tx *Tx) error {
		tx.StoreU64(e.data, 778)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := e.mem.LoadU64(e.data); got != 778 {
		t.Fatalf("post-recovery commit = %d, want 778", got)
	}
}

// TestGroupCommitOversizedMember submits a transaction whose redo record
// cannot fit the thread log: it must fail cleanly (rolled back, error
// returned) without poisoning the epoch for other members.
func TestGroupCommitOversizedMember(t *testing.T) {
	e := newEnv(t, Config{GroupCommit: true, LogWords: 256})
	th, err := e.tm.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	err = th.Atomic(func(tx *Tx) error {
		for i := int64(0); i < 200; i++ {
			tx.StoreU64(e.data.Add(i*8), uint64(i))
		}
		return nil
	})
	if err == nil {
		t.Fatal("oversized transaction committed")
	}
	for i := int64(0); i < 200; i++ {
		if got := e.mem.LoadU64(e.data.Add(i * 8)); got != 0 {
			t.Fatalf("word %d = %d after failed commit, want 0", i, got)
		}
	}
	// The thread survives the failure.
	if err := th.Atomic(func(tx *Tx) error {
		tx.StoreU64(e.data, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := th.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAtomicBatch verifies the batched entry point: every fn commits in
// one transaction (one epoch membership, one log record), and an error
// from any fn aborts them all.
func TestAtomicBatch(t *testing.T) {
	e := newEnv(t, Config{GroupCommit: true})
	th, err := e.tm.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	fns := make([]func(tx *Tx) error, 8)
	for i := range fns {
		i := i
		fns[i] = func(tx *Tx) error {
			tx.StoreU64(e.data.Add(int64(i)*8), uint64(i+1))
			return nil
		}
	}
	before := e.tm.Snapshot().Commits
	if err := th.AtomicBatch(fns); err != nil {
		t.Fatal(err)
	}
	if got := e.tm.Snapshot().Commits - before; got != 1 {
		t.Fatalf("batch of 8 fns cost %d commits, want 1", got)
	}
	for i := int64(0); i < 8; i++ {
		if got := e.mem.LoadU64(e.data.Add(i * 8)); got != uint64(i+1) {
			t.Fatalf("word %d = %d, want %d", i, got, i+1)
		}
	}
	// A failing fn aborts the whole batch.
	sentinel := errors.New("fn 5 failed")
	fns[5] = func(tx *Tx) error {
		tx.StoreU64(e.data.Add(5*8), 999)
		return sentinel
	}
	fns[0] = func(tx *Tx) error {
		tx.StoreU64(e.data, 998)
		return nil
	}
	if err := th.AtomicBatch(fns); !errors.Is(err, sentinel) {
		t.Fatalf("batch with failing fn: %v, want the fn's error", err)
	}
	if got := e.mem.LoadU64(e.data); got != 1 {
		t.Fatalf("aborted batch leaked word 0 = %d, want 1", got)
	}
	if got := e.mem.LoadU64(e.data.Add(5 * 8)); got != 6 {
		t.Fatalf("aborted batch leaked word 5 = %d, want 6", got)
	}
}

// TestLeaseContextCancel verifies Lease unblocks on context cancellation
// and the error matches both the package sentinel and the context cause
// under errors.Is.
func TestLeaseContextCancel(t *testing.T) {
	e := newEnv(t, Config{Slots: 1})
	th, err := e.tm.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.tm.Lease(ctx)
		done <- err
	}()
	cancel()
	err = <-done
	if !errors.Is(err, ErrLeaseTimeout) {
		t.Fatalf("cancelled lease: %v, want ErrLeaseTimeout under errors.Is", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled lease: %v, want context.Canceled under errors.Is", err)
	}
	// A lease that can bind immediately does so without consulting the
	// (already cancelled) context, matching NewThread's fast path.
	if err := th.Close(); err != nil {
		t.Fatal(err)
	}
	th2, err := e.tm.Lease(ctx)
	if err != nil {
		t.Fatalf("lease with free slot and cancelled ctx: %v", err)
	}
	if err := th2.Close(); err != nil {
		t.Fatal(err)
	}
}
