package mtm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntTableBasic(t *testing.T) {
	var tab intTable
	tab.reset()
	if _, ok := tab.get(42); ok {
		t.Fatal("ghost entry")
	}
	tab.put(42, 7)
	if v, ok := tab.get(42); !ok || v != 7 {
		t.Fatalf("get = %d,%v", v, ok)
	}
	tab.put(42, 8)
	if v, _ := tab.get(42); v != 8 {
		t.Fatalf("update = %d", v)
	}
	tab.reset()
	if _, ok := tab.get(42); ok {
		t.Fatal("entry survived reset")
	}
}

func TestIntTableGrowth(t *testing.T) {
	var tab intTable
	tab.reset()
	for i := uint64(1); i <= 10000; i++ {
		tab.put(i, int32(i%1000))
	}
	for i := uint64(1); i <= 10000; i++ {
		if v, ok := tab.get(i); !ok || v != int32(i%1000) {
			t.Fatalf("key %d = %d,%v", i, v, ok)
		}
	}
	if _, ok := tab.get(10001); ok {
		t.Fatal("ghost after growth")
	}
}

func TestQuickIntTableMatchesMap(t *testing.T) {
	// Property: an arbitrary sequence of puts/gets/resets behaves like a
	// Go map.
	f := func(seed int64, ops []uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		var tab intTable
		tab.reset()
		model := map[uint64]int32{}
		for _, op := range ops {
			k := uint64(op%512) + 1 // non-zero keys
			switch rng.Intn(4) {
			case 0, 1:
				v := int32(rng.Intn(1 << 20))
				tab.put(k, v)
				model[k] = v
			case 2:
				got, ok := tab.get(k)
				want, wok := model[k]
				if ok != wok || (ok && got != want) {
					return false
				}
			case 3:
				if rng.Intn(16) == 0 {
					tab.reset()
					model = map[uint64]int32{}
				}
			}
		}
		for k, want := range model {
			if got, ok := tab.get(k); !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
