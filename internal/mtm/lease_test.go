package mtm

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/pheap"
)

// TestThreadCloseRecyclesSlot exercises the leasing layer's core promise:
// closed threads return their slots, so cumulative thread count is
// unbounded even with a tiny Slots budget, and data written by earlier
// incarnations of a slot stays intact.
func TestThreadCloseRecyclesSlot(t *testing.T) {
	e := newEnv(t, Config{Slots: 2, LogWords: 256})
	for i := 0; i < 50; i++ {
		th, err := e.tm.NewThread()
		if err != nil {
			t.Fatalf("thread %d: %v", i, err)
		}
		if err := th.Atomic(func(tx *Tx) error {
			tx.StoreU64(e.data.Add(int64(i%64)*8), uint64(i+1))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := th.Close(); err != nil {
			t.Fatalf("close %d: %v", i, err)
		}
	}
	// The last 50 writes cycled through 64 words; spot-check the tail.
	if got := e.mem.LoadU64(e.data.Add(49 * 8)); got != 50 {
		t.Fatalf("word 49 = %d, want 50", got)
	}
	if got := e.tm.LiveThreads(); got != 0 {
		t.Fatalf("live threads = %d, want 0", got)
	}
	if got := e.tm.FreeSlots(); got != 2 {
		t.Fatalf("free slots = %d, want 2", got)
	}
}

// TestCloseReusePrefersRecycledSlots checks that NewThread draws from the
// free list before minting never-used slots: with a large Slots budget,
// sequential create/close churn stays on one physical slot.
func TestCloseReusePrefersRecycledSlots(t *testing.T) {
	e := newEnv(t, Config{Slots: 8})
	th, err := e.tm.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	first := th.ID()
	if err := th.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		th, err := e.tm.NewThread()
		if err != nil {
			t.Fatal(err)
		}
		if th.ID() != first {
			t.Fatalf("churn %d bound slot id %d, want recycled %d", i, th.ID(), first)
		}
		if err := th.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCloseDoubleCloseIsNoop documents the idempotence contract.
func TestCloseDoubleCloseIsNoop(t *testing.T) {
	e := newEnv(t, Config{Slots: 1})
	th, err := e.tm.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Close(); err != nil {
		t.Fatal(err)
	}
	if err := th.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if got := e.tm.FreeSlots(); got != 1 {
		t.Fatalf("free slots after double close = %d, want 1", got)
	}
}

// TestLeaseThreadWaitsForRelease leases the only slot, then verifies a
// bounded-wait lease blocks until Close frees it — the queue-not-error
// behavior servers rely on for connection bursts.
func TestLeaseThreadWaitsForRelease(t *testing.T) {
	e := newEnv(t, Config{Slots: 1})
	th, err := e.tm.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var leaseErr error
	go func() {
		defer wg.Done()
		th2, err := e.tm.LeaseThread(5 * time.Second)
		if err != nil {
			leaseErr = err
			return
		}
		leaseErr = th2.Close()
	}()
	time.Sleep(10 * time.Millisecond)
	if err := th.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if leaseErr != nil {
		t.Fatalf("waiting lease: %v", leaseErr)
	}
}

// TestLeaseThreadTimesOut verifies the bounded wait actually bounds.
func TestLeaseThreadTimesOut(t *testing.T) {
	e := newEnv(t, Config{Slots: 1})
	th, err := e.tm.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()
	if _, err := e.tm.LeaseThread(20 * time.Millisecond); !errors.Is(err, ErrLeaseTimeout) {
		t.Fatalf("lease on full TM: %v, want ErrLeaseTimeout", err)
	}
	// Non-positive timeout degenerates to NewThread's immediate error.
	if _, err := e.tm.LeaseThread(0); err != ErrTooManyThreads {
		t.Fatalf("zero-timeout lease: %v, want ErrTooManyThreads", err)
	}
}

// TestCloseQuarantinesSlotOnHeldLock plants this thread's id in a lock
// word (white box: simulates a lock leak) and verifies Close refuses to
// recycle the slot — the assertion the issue's handoff contract demands.
func TestCloseQuarantinesSlotOnHeldLock(t *testing.T) {
	e := newEnv(t, Config{Slots: 1})
	th, err := e.tm.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	e.tm.locks[123].Store(lockedBit | th.id)
	if err := th.Close(); err == nil {
		t.Fatal("close with a held lock word must fail")
	}
	if got := e.tm.FreeSlots(); got != 0 {
		t.Fatalf("quarantined slot was recycled (free slots = %d)", got)
	}
	// Releasing the lock makes the thread closable again.
	e.tm.locks[123].Store(0)
	if err := th.Close(); err != nil {
		t.Fatalf("close after lock release: %v", err)
	}
	if got := e.tm.FreeSlots(); got != 1 {
		t.Fatalf("free slots = %d, want 1", got)
	}
}

// TestCloseDrainsAsyncTruncation commits under asynchronous truncation
// and closes immediately: Close must wait for the slot's pending
// truncation jobs so the handoff sees an empty log, and the recycled
// slot must bind cleanly.
func TestCloseDrainsAsyncTruncation(t *testing.T) {
	e := newEnv(t, Config{Slots: 1, AsyncTruncation: true})
	defer e.tm.Close()
	for i := 0; i < 10; i++ {
		th, err := e.tm.NewThread()
		if err != nil {
			t.Fatalf("lease %d: %v", i, err)
		}
		if err := th.Atomic(func(tx *Tx) error {
			for j := int64(0); j < 8; j++ {
				tx.StoreU64(e.data.Add(j*8), uint64(i*100)+uint64(j))
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := th.Close(); err != nil {
			t.Fatalf("close %d: %v", i, err)
		}
	}
	for j := int64(0); j < 8; j++ {
		if got := e.mem.LoadU64(e.data.Add(j * 8)); got != uint64(900)+uint64(j) {
			t.Fatalf("word %d = %d", j, got)
		}
	}
}

// TestPostCommitCleanupErrorDoesNotFailCommit arranges a deferred free
// that must fail (a foreign address outside the heap) and verifies the
// transaction still reports success: the redo record was durable before
// the free ran, so surfacing the cleanup error would tell the caller a
// durable write failed. The failure is counted instead.
func TestPostCommitCleanupErrorDoesNotFailCommit(t *testing.T) {
	e := newEnv(t, Config{})
	heapBase, err := e.rt.PMap(8<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := pheap.Format(e.rt, heapBase, 8<<20, pheap.Config{Lanes: 2})
	if err != nil {
		t.Fatal(err)
	}
	e.tm.cfg.Heap = heap
	th, err := e.tm.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	before := telPostCommitErr.Value()
	if err := th.Atomic(func(tx *Tx) error {
		tx.StoreU64(e.data, 42)
		// e.data is a valid persistent address but not a heap block, so
		// the commit-deferred PFree must fail.
		return tx.FreeBlock(e.data.Add(64))
	}); err != nil {
		t.Fatalf("Atomic with failing deferred free: %v (transaction is durable; must not error)", err)
	}
	if got := e.mem.LoadU64(e.data); got != 42 {
		t.Fatalf("committed word = %d, want 42", got)
	}
	if got := telPostCommitErr.Value(); got != before+1 {
		t.Fatalf("postcommit cleanup errors = %d, want %d", got, before+1)
	}
	// The thread stays usable for further transactions.
	if err := th.Atomic(func(tx *Tx) error {
		tx.StoreU64(e.data, 43)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := th.Close(); err != nil {
		t.Fatal(err)
	}
}
