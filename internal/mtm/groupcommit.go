package mtm

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/pmem"
	"repro/internal/rawl"
	"repro/internal/scm"
	"repro/internal/telemetry"
)

// Group-commit metrics: epochs, their population, and the fences their
// leaders issue on behalf of whole epochs. fences/members is the fence
// amortization the coordinator exists to buy.
var (
	telGCEpochs = telemetry.NewCounter("mtm_group_commit_epochs_total",
		"group-commit epochs flushed")
	telGCMembers = telemetry.NewCounter("mtm_group_commit_members_total",
		"transactions made durable through group-commit epochs")
	telGCFences = telemetry.NewCounter("mtm_group_commit_fences_total",
		"device fences issued by epoch leaders covering all members")
	telGCSize = telemetry.NewHistogram("mtm_group_commit_epoch_size",
		"members per flushed group-commit epoch")
	telGCWait = telemetry.NewHistogram("mtm_group_commit_wait_ns",
		"member latency from epoch enqueue to completion, ns (sampled 1-in-mtm_latency_sample_rate)")
)

// pendingCommit is one validated transaction enqueued on a commit epoch.
// It is embedded in Thread so enqueueing allocates nothing.
type pendingCommit struct {
	tx  *Tx
	ts  uint64 // commit timestamp, assigned in enqueue order
	err error  // set by the leader when the member could not be logged
}

// epoch is one group of transactions made durable by a single covering
// fence. Epochs form a chain through prev/done, so they flush strictly in
// order; the chain wait doubles as natural batching under load.
type epoch struct {
	id      uint64
	members []*pendingCommit
	sealed  bool          // no further members may join
	full    chan struct{} // closed when the batch cap seals the epoch
	done    chan struct{} // closed when every member is durable
	prev    chan struct{} // previous epoch's done channel (nil for the first)
}

// groupCommitter coalesces the durability fences of concurrent
// transactions. A committing transaction publishes its write set, takes a
// commit timestamp, and enqueues on the current epoch; the first member
// becomes the leader and, after the previous epoch finishes and an
// optional gathering window passes, streams every member's redo record
// into that member's own thread log and issues one FenceGroup covering
// them all. Members park on the epoch's done channel, which transfers
// ownership of their memory views to the leader for the flush.
type groupCommitter struct {
	tm *TM

	mu       sync.Mutex
	cur      *epoch
	nextID   uint64
	lastDone chan struct{}

	// flushEpoch scratch, reused across epochs. Epochs flush strictly
	// serially (each leader waits for the previous epoch's done), so a
	// single set is safe.
	live  []*pendingCommit
	peers []*scm.Context
}

func newGroupCommitter(tm *TM) *groupCommitter {
	return &groupCommitter{tm: tm}
}

// commit makes tx durable through a group-commit epoch. Called with the
// transaction validated and its locks held; on return the transaction is
// durable (or pc.err-failed and rolled back by the caller via finish).
func (gc *groupCommitter) commit(tx *Tx) error {
	t := tx.t
	// This transaction has arrived: stop counting it toward the leader's
	// "more members are coming" heuristic.
	tx.endWriting()
	timed := t.tm.sampleLatency(t.latSeq)
	var start time.Time
	if timed {
		start = time.Now()
	}
	// The enqueue span covers everything from joining the epoch to the
	// done broadcast: for a member that is the wait, for the leader it
	// encloses the lead span.
	enq := telemetry.SpanBegin(telemetry.PhaseGCEnqueue, t.id, t.txnSpan)

	gc.mu.Lock()
	e := gc.cur
	if e == nil {
		gc.nextID++
		e = &epoch{
			id:   gc.nextID,
			full: make(chan struct{}),
			done: make(chan struct{}),
			prev: gc.lastDone,
		}
		gc.lastDone = e.done
		gc.cur = e
	}
	pc := &t.pending
	pc.tx = tx
	// The commit timestamp is taken in enqueue order under gc.mu.
	// Conflicting transactions serialize through lock release (which
	// happens only after an epoch's fence), so timestamp order agrees
	// with the serialization order recovery must replay.
	pc.ts = gc.tm.clock.Add(1)
	pc.err = nil
	e.members = append(e.members, pc)
	leader := len(e.members) == 1
	if len(e.members) >= gc.tm.cfg.GroupCommitBatch && !e.sealed {
		e.sealed = true
		gc.cur = nil
		close(e.full)
	}
	gc.mu.Unlock()

	if leader {
		lead := telemetry.SpanBegin(telemetry.PhaseGCLead, t.id, t.txnSpan)
		gc.lead(e)
		lead.End()
	} else {
		<-e.done
	}
	enq.End()
	if timed {
		telGCWait.Observe(time.Since(start).Nanoseconds())
	}
	return gc.finish(pc)
}

// lead runs the epoch leader protocol: wait for the previous epoch, let
// an optional gathering window pass while other writers are still
// producing, seal the epoch, flush it, and wake the members.
func (gc *groupCommitter) lead(e *epoch) {
	if e.prev != nil {
		<-e.prev
	}
	if w := gc.tm.cfg.GroupCommitWait; w > 0 {
		// Yield once before sealing: on a saturated scheduler the run
		// queue holds the other committers, and letting them run walks
		// them straight onto this epoch (a joining member parks, handing
		// the processor back). An idle system has an empty run queue and
		// pays essentially nothing, keeping solitary commits at
		// single-operation latency.
		runtime.Gosched()
		// Gathering window: worth a timed wait only when transactions
		// are still in flight and might yet arrive.
		if gc.tm.activeWriters.Load() > 0 {
			timer := time.NewTimer(w)
			select {
			case <-e.full:
			case <-timer.C:
			}
			timer.Stop()
		}
	}
	gc.mu.Lock()
	if gc.cur == e {
		gc.cur = nil
	}
	if !e.sealed {
		e.sealed = true
		close(e.full)
	}
	members := e.members
	gc.mu.Unlock()

	gc.flushEpoch(e.id, members)
	close(e.done)
}

// flushEpoch makes every member durable under one covering fence and
// releases their locks. Crash atomicity: every record carries the epoch
// id and the member count, and recovery replays an epoch only when all
// its records are present — so a crash before the fence rolls back every
// member, and the fence makes all of them durable at once.
func (gc *groupCommitter) flushEpoch(id uint64, members []*pendingCommit) {
	tm := gc.tm

	// Exclude oversized members up front: once any record streams with
	// the epoch's member count, a later append failure would poison the
	// whole epoch at recovery.
	live := gc.live[:0]
	for _, pc := range members {
		if need := int64(5 + 2*len(pc.tx.writes)); need > pc.tx.t.log.MaxRecordWords() {
			pc.err = fmt.Errorf("mtm: transaction of %d writes overflows the thread log (%d payload words, max %d)",
				len(pc.tx.writes), need, pc.tx.t.log.MaxRecordWords())
			continue
		}
		live = append(live, pc)
	}
	gc.live = live
	if len(live) == 0 {
		return
	}
	n := uint64(len(live))
	flushSp := telemetry.SpanBegin(telemetry.PhaseGCFlush, live[0].tx.t.id, live[0].tx.t.txnSpan)
	defer flushSp.End()

	// Stream each member's redo record into its own thread log. Members
	// are parked on the epoch's done channel, so the leader temporarily
	// owns their memory views; the enqueue under gc.mu and the done
	// broadcast order the handoff both ways.
	for _, pc := range live {
		tx := pc.tx
		rec := tx.recBuf[:0]
		rec = append(rec, tagRedoGroup, pc.ts, id, n, uint64(len(tx.writes)))
		for _, w := range tx.writes {
			rec = append(rec, uint64(w.addr), w.val)
		}
		tx.recBuf = rec
		tx.t.appendGroupRecord(rec)
	}

	// One fence covers every member's appended records: the epoch's
	// durability point.
	leaderMem := live[0].tx.t.mem
	peers := gc.peers[:0]
	for _, pc := range live[1:] {
		peers = append(peers, pc.tx.t.mem.Context())
	}
	gc.peers = peers
	leaderMem.Context().FenceGroup(peers...)
	telGCFences.Inc()
	telemetry.CountPhaseFence(telemetry.PhaseLogFence)

	// Write the new values back in place — strictly after the fence, so
	// a crash can never persist in-place data whose log record is lost.
	for _, pc := range live {
		pc.tx.writeBack()
	}

	if tm.mgr != nil {
		// Asynchronous truncation: the epoch's jobs travel as one batch
		// that the manager flushes under one fence and truncates
		// together, so a crash cannot observe part of an epoch truncated
		// while another member's in-place data is still volatile.
		batch := make([]truncJob, 0, len(live))
		for _, pc := range live {
			t := pc.tx.t
			lines := append([]pmem.Addr(nil), pc.tx.distinctLines(pc.tx.writes)...)
			batch = append(batch, truncJob{t: t, pos: t.logPos, lines: lines})
		}
		tm.mgr.submitBatch(batch)
	} else {
		// Synchronous truncation: flush every member's written lines,
		// fence once for the whole epoch, then truncate every member log
		// with deferred head updates under one trailing fence (freed log
		// space must not be reused before the new heads are durable).
		if !tm.cfg.WriteThroughWriteback {
			for _, pc := range live {
				for _, line := range pc.tx.distinctLines(pc.tx.writes) {
					pc.tx.t.mem.Flush(line)
				}
			}
		}
		leaderMem.Context().FenceGroup(peers...)
		telGCFences.Inc()
		telemetry.CountPhaseFence(telemetry.PhaseTruncate)
		for _, pc := range live {
			pc.tx.t.log.TruncateAllDeferred()
		}
		leaderMem.Context().FenceGroup(peers...)
		telGCFences.Inc()
		telemetry.CountPhaseFence(telemetry.PhaseTruncate)
	}

	// Release every member's locks with its commit timestamp. From here
	// conflicting transactions can proceed; their timestamps will be
	// higher than every member's.
	for _, pc := range live {
		for _, le := range pc.tx.locks {
			tm.lockAt(le.idx).Store(pc.ts)
		}
	}

	telGCEpochs.Inc()
	telGCMembers.Add(n)
	telGCSize.Observe(int64(n))
}

// finish completes a member's commit on its own goroutine after the
// epoch's done broadcast: post-commit cleanup on success, full rollback
// when the leader could not log it.
func (gc *groupCommitter) finish(pc *pendingCommit) error {
	tx := pc.tx
	if pc.err != nil {
		tx.rollback()
		return pc.err
	}
	tx.runDeferredFrees()
	tx.clearScratch()
	gc.tm.stats.Commits.Add(1)
	telCommits.Inc()
	telRedoCommits.Inc()
	return nil
}

// appendGroupRecord appends a size-prechecked epoch record, riding out
// transient fullness (asynchronous truncation lag). Unlike appendRecord
// it cannot fail: capacity overflow was excluded by flushEpoch's
// pre-check, so the record always fits once the consumer catches up.
func (t *Thread) appendGroupRecord(rec []uint64) {
	for {
		pos, err := t.log.Append(rec)
		if err == nil {
			t.logPos = pos
			return
		}
		if err != rawl.ErrLogFull {
			panic(fmt.Sprintf("mtm: group append: %v", err))
		}
		if t.tm.mgr == nil {
			// Synchronous group mode truncates every log per epoch, so
			// the log is empty here and a prechecked record fits; this
			// branch is defensive.
			t.log.Flush()
			t.log.TruncateAll()
			continue
		}
		runtime.Gosched()
	}
}
