package mtm

// intTable is a small open-addressed hash table mapping uint64 keys to
// int32 values, reused across transactions. It replaces Go maps on the
// per-word transactional fast path: map lookups and per-transaction map
// churn dominated write instrumentation cost (the paper's equivalent
// figure is ~190 ns per logged word; see §6.3).
type intTable struct {
	keys []uint64
	vals []int32
	mask uint64
	n    int
}

const intTableMinSize = 64

func (t *intTable) init(size int) {
	t.keys = make([]uint64, size)
	t.vals = make([]int32, size)
	t.mask = uint64(size - 1)
	t.n = 0
}

// reset clears the table, keeping capacity. Key 0 is reserved/absent, so
// clearing is a memclr of the key array.
func (t *intTable) reset() {
	if t.keys == nil {
		t.init(intTableMinSize)
		return
	}
	clear(t.keys)
	t.n = 0
}

func mixKey(k uint64) uint64 { return k * 0x9E3779B97F4A7C15 }

// get returns the value for k and whether it is present. k must be
// non-zero.
func (t *intTable) get(k uint64) (int32, bool) {
	i := mixKey(k) & t.mask
	for {
		switch t.keys[i] {
		case k:
			return t.vals[i], true
		case 0:
			return 0, false
		}
		i = (i + 1) & t.mask
	}
}

// put inserts or updates k. k must be non-zero.
func (t *intTable) put(k uint64, v int32) {
	if t.n*2 >= len(t.keys) {
		t.grow()
	}
	i := mixKey(k) & t.mask
	for {
		switch t.keys[i] {
		case k:
			t.vals[i] = v
			return
		case 0:
			t.keys[i] = k
			t.vals[i] = v
			t.n++
			return
		}
		i = (i + 1) & t.mask
	}
}

func (t *intTable) grow() {
	oldK, oldV := t.keys, t.vals
	t.init(len(oldK) * 2)
	for i, k := range oldK {
		if k != 0 {
			t.put(k, oldV[i])
		}
	}
}
