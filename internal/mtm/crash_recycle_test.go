package mtm

import (
	"fmt"
	"testing"

	"repro/internal/crashpoint"
	"repro/internal/pmem"
	"repro/internal/region"
	"repro/internal/scm"
)

// TestCrashPointsSlotRecycling explores every crash point of a workload
// in which one physical log slot is written by many successive logical
// threads: each transaction runs on a freshly leased thread that is
// closed (and its slot recycled) before the next. The §5 visibility
// contract must hold across handoffs — a crash inside Close's truncate
// or inside the next lease's bind must never replay a previous lease's
// records or lose an acknowledged commit.
func TestCrashPointsSlotRecycling(t *testing.T) {
	const txs = 8
	workload := func() (*crashpoint.Run, error) {
		dev, err := scm.Open(scm.Config{Size: 4 << 20, Mode: scm.DelayOff})
		if err != nil {
			return nil, err
		}
		dir := t.TempDir()
		acked := 0

		openAll := func() (*region.Runtime, *TM, pmem.Addr, error) {
			rt, err := region.Open(dev, region.Config{Dir: dir, StaticSize: 64 << 10})
			if err != nil {
				return nil, nil, pmem.Nil, err
			}
			tm, err := Open(rt, "recycle", Config{Slots: 1, LogWords: 256})
			if err != nil {
				rt.Close()
				return nil, nil, pmem.Nil, err
			}
			ptr, _, err := rt.Static("mtm.recycle.data", 8)
			if err != nil {
				rt.Close()
				return nil, nil, pmem.Nil, err
			}
			mem := rt.NewMemory()
			base := pmem.Addr(mem.LoadU64(ptr))
			if base == pmem.Nil {
				base, err = rt.PMapAt(ptr, scm.PageSize, 0)
				if err != nil {
					rt.Close()
					return nil, nil, pmem.Nil, err
				}
			}
			return rt, tm, base, nil
		}

		return &crashpoint.Run{
			Dev: dev,
			Body: func() error {
				_, tm, base, err := openAll()
				if err != nil {
					return err
				}
				for i := 0; i < txs; i++ {
					// A fresh logical thread per transaction: with Slots:1
					// every iteration reuses the same physical slot, so the
					// log head crosses a lease boundary between every pair
					// of transactions.
					th, err := tm.NewThread()
					if err != nil {
						return err
					}
					writes := txWrites(i)
					idxs := make([]int64, 0, len(writes))
					for idx := range writes {
						idxs = append(idxs, idx)
					}
					for a := 1; a < len(idxs); a++ {
						for b := a; b > 0 && idxs[b] < idxs[b-1]; b-- {
							idxs[b], idxs[b-1] = idxs[b-1], idxs[b]
						}
					}
					err = th.Atomic(func(tx *Tx) error {
						for _, idx := range idxs {
							tx.StoreU64(base.Add(idx*8), writes[idx])
						}
						return nil
					})
					if err != nil {
						return err
					}
					acked = i + 1
					if err := th.Close(); err != nil {
						return err
					}
				}
				return nil
			},
			Check: func() error {
				rt, tm, base, err := openAll()
				if err != nil {
					return fmt.Errorf("stack not reopenable after %d acked txs: %w", acked, err)
				}
				defer rt.Close()
				defer tm.Close()
				// Recovery must leave the recycled slot leasable: a slot
				// poisoned by a crash mid-handoff would strand the server
				// with zero usable threads.
				th, err := tm.NewThread()
				if err != nil {
					return fmt.Errorf("slot not leasable after recovery (%d acked txs): %w", acked, err)
				}
				if err := th.Close(); err != nil {
					return fmt.Errorf("recycled slot not closable after recovery: %w", err)
				}
				if base == pmem.Nil {
					if acked > 0 {
						return fmt.Errorf("data region lost after %d acked txs", acked)
					}
					return nil
				}
				mem := rt.NewMemory()
				var img [64]uint64
				for i := int64(0); i < 64; i++ {
					img[i] = mem.LoadU64(base.Add(i * 8))
				}
				for _, m := range []int{acked, acked + 1} {
					if m > txs {
						continue
					}
					if img == applyTxs(m) {
						return nil
					}
				}
				return fmt.Errorf("post-recovery image matches neither %d nor %d applied txs", acked, acked+1)
			},
		}, nil
	}

	rep, err := crashpoint.Explore(workload, crashpoint.Options{
		Schedule: crashpoint.TestSchedule(testing.Short(), 32),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		for _, f := range rep.Failures {
			t.Errorf("%v", f)
		}
		t.Fatalf("slot-recycling oracle failed at %d of %d crash points (%s)",
			len(rep.Failures), rep.Points, rep)
	}
	t.Logf("slot recycling: %s", rep)
}
