package mtm

import (
	"testing"

	"repro/internal/pmem"
	"repro/internal/region"
	"repro/internal/scm"
	"repro/internal/telemetry"
)

// cutAt is an scm probe that freezes the device at the n-th persistence
// event and unwinds with PowerFailure, like a crashpoint trigger but
// usable mid-test without the full explorer.
type cutAt struct {
	dev *scm.Device
	n   int
}

func (p *cutAt) Event(kind scm.ProbeKind, ctx uint64, off int64, n int) {
	if p.n == 0 {
		p.dev.PowerCut()
		panic(scm.PowerFailure{})
	}
	p.n--
}

// TestSpanPairingAcrossPowerCut cuts power in the middle of a commit and
// checks the span contract the flight recorder depends on: a crash may
// leave dangling span *begins* (the transaction never finished), but
// never a dangling *end* — every span_end event in the trace ring must
// pair with a begin of the same phase, including across the reattach.
func TestSpanPairingAcrossPowerCut(t *testing.T) {
	telemetry.EnableAttribution()
	telemetry.DefaultTracer.Enable()
	t.Cleanup(func() {
		telemetry.DisableAttribution()
		telemetry.DefaultTracer.Disable()
	})
	mark := telemetry.SpanBegin(telemetry.PhaseTxn, 0, 0)
	floor := mark.ID
	mark.End()

	dev, err := scm.Open(scm.Config{Size: 4 << 20, Mode: scm.DelayOff})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	openAll := func() (*region.Runtime, *TM, pmem.Addr) {
		rt, err := region.Open(dev, region.Config{Dir: dir, StaticSize: 64 << 10})
		if err != nil {
			t.Fatal(err)
		}
		tm, err := Open(rt, "spancrash", Config{Slots: 2, LogWords: 256})
		if err != nil {
			t.Fatal(err)
		}
		ptr, _, err := rt.Static("mtm.spancrash.data", 8)
		if err != nil {
			t.Fatal(err)
		}
		mem := rt.NewMemory()
		base := pmem.Addr(mem.LoadU64(ptr))
		if base == pmem.Nil {
			if base, err = rt.PMapAt(ptr, scm.PageSize, 0); err != nil {
				t.Fatal(err)
			}
		}
		return rt, tm, base
	}

	runTxs := func(tm *TM, base pmem.Addr, seed uint64, n int) {
		th, err := tm.NewThread()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			err := th.Atomic(func(tx *Tx) error {
				for j := int64(0); j < 4; j++ {
					tx.StoreU64(base.Add(j*8), seed+uint64(i))
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}

	_, tm, base := openAll()
	runTxs(tm, base, 100, 4)

	// Cut power a few persistence events into the next commit. The
	// PowerFailure panic unwinds through the commit's span scopes while
	// every durable mutation traps, so End() calls that run during the
	// unwind may emit, and span scopes the panic skipped may not.
	dev.SetProbe(&cutAt{dev: dev, n: 2})
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(scm.PowerFailure); !ok {
					panic(r)
				}
			}
		}()
		th, err := tm.NewThread()
		if err != nil {
			t.Fatal(err)
		}
		_ = th.Atomic(func(tx *Tx) error {
			for j := int64(0); j < 4; j++ {
				tx.StoreU64(base.Add(j*8), 999)
			}
			return nil
		})
		t.Fatal("power cut did not interrupt the commit")
	}()
	dev.SetProbe(nil)
	dev.CrashMidOp(scm.KeepAll{})

	// Reattach over the crashed image and commit again: recovery and the
	// new transactions must keep emitting well-formed spans.
	_, tm2, base2 := openAll()
	runTxs(tm2, base2, 200, 4)

	begins := map[uint64]telemetry.Phase{}
	type end struct {
		id uint64
		ph telemetry.Phase
	}
	var ends []end
	for _, e := range telemetry.DefaultTracer.Events() {
		id := e.A >> 8
		if id <= floor {
			continue // spans from earlier tests in this process
		}
		switch e.Kind {
		case telemetry.EvSpanBegin:
			begins[id] = telemetry.Phase(e.A & 0xff)
		case telemetry.EvSpanEnd:
			ends = append(ends, end{id, telemetry.Phase(e.A & 0xff)})
		}
	}
	if len(ends) == 0 {
		t.Fatal("no span ends recorded at all")
	}
	for _, e := range ends {
		ph, ok := begins[e.id]
		if !ok {
			t.Fatalf("span %d (%v) ended without a begin: a power cut left a dangling end", e.id, e.ph)
		}
		if ph != e.ph {
			t.Fatalf("span %d began as %v but ended as %v", e.id, ph, e.ph)
		}
	}
}
