package mtm

import (
	"fmt"
	"testing"

	"repro/internal/crashpoint"
	"repro/internal/pmem"
	"repro/internal/region"
	"repro/internal/scm"
)

// Group-commit crash exploration. The epoch protocol's gathering runs on
// goroutine scheduling, which a crash-point replay cannot reproduce, so
// the workload drives the coordinator's flush path directly from one
// goroutine: each epoch enqueues several manually-built transactions and
// hands them to flushEpoch — the identical durability code path a leader
// runs — keeping every replay's persistence-event sequence bitwise
// identical.

const (
	gcCrashEpochs  = 5 // epochs committed by the workload
	gcCrashMembers = 3 // transactions per epoch
	gcCrashWords   = 4 // words written per member
	gcCrashStride  = 8 // member stripes: member k owns words [k*stride, k*stride+words)
)

// gcVal is the value member k writes to its j-th word during epoch e.
// Every epoch rewrites the same stripes, so a stale or partial replay is
// visible as a mixed image no epoch prefix can produce.
func gcVal(e, k, j int) uint64 {
	return uint64(e)*1_000_000 + uint64(k)*1_000 + uint64(j) + 1
}

// gcApplyEpochs is the expected image after exactly m whole epochs.
func gcApplyEpochs(m int) [gcCrashMembers * gcCrashStride]uint64 {
	var img [gcCrashMembers * gcCrashStride]uint64
	if m == 0 {
		return img
	}
	for k := 0; k < gcCrashMembers; k++ {
		for j := 0; j < gcCrashWords; j++ {
			img[k*gcCrashStride+j] = gcVal(m, k, j)
		}
	}
	return img
}

// TestCrashPointsGroupCommit explores every crash point of a group-commit
// workload and checks epoch atomicity: after recovery the data region
// equals the result of applying exactly the first m whole epochs, where m
// is the acknowledged epoch count or one more (the epoch whose covering
// fence the crash straddled). A partial epoch — one member's writes
// applied without its peers' — matches no whole-epoch image and fails,
// as does a lost acknowledged epoch or a surviving unacknowledged one.
func TestCrashPointsGroupCommit(t *testing.T) {
	workload := func() (*crashpoint.Run, error) {
		dev, err := scm.Open(scm.Config{Size: 4 << 20, Mode: scm.DelayOff})
		if err != nil {
			return nil, err
		}
		dir := t.TempDir()
		acked := 0
		cfg := Config{Slots: gcCrashMembers, LogWords: 256, GroupCommit: true}

		openAll := func() (*region.Runtime, *TM, pmem.Addr, error) {
			rt, err := region.Open(dev, region.Config{Dir: dir, StaticSize: 64 << 10})
			if err != nil {
				return nil, nil, pmem.Nil, err
			}
			tm, err := Open(rt, "gccrash", cfg)
			if err != nil {
				rt.Close()
				return nil, nil, pmem.Nil, err
			}
			ptr, _, err := rt.Static("mtm.gccrash.data", 8)
			if err != nil {
				rt.Close()
				return nil, nil, pmem.Nil, err
			}
			mem := rt.NewMemory()
			base := pmem.Addr(mem.LoadU64(ptr))
			if base == pmem.Nil {
				base, err = rt.PMapAt(ptr, scm.PageSize, 0)
				if err != nil {
					rt.Close()
					return nil, nil, pmem.Nil, err
				}
			}
			return rt, tm, base, nil
		}

		return &crashpoint.Run{
			Dev: dev,
			Body: func() error {
				_, tm, base, err := openAll()
				if err != nil {
					return err
				}
				threads := make([]*Thread, gcCrashMembers)
				for k := range threads {
					if threads[k], err = tm.NewThread(); err != nil {
						return err
					}
				}
				members := make([]*pendingCommit, 0, gcCrashMembers)
				for e := 1; e <= gcCrashEpochs; e++ {
					members = members[:0]
					for k, th := range threads {
						tx := &th.tx
						tx.begin()
						for j := 0; j < gcCrashWords; j++ {
							tx.write(base.Add(int64(k*gcCrashStride+j)*8), gcVal(e, k, j))
						}
						if !tx.validate() {
							return fmt.Errorf("epoch %d member %d failed validation", e, k)
						}
						tx.endWriting()
						pc := &th.pending
						pc.tx, pc.ts, pc.err = tx, tm.clock.Add(1), nil
						members = append(members, pc)
					}
					tm.gc.flushEpoch(uint64(e), members)
					for k, pc := range members {
						if err := tm.gc.finish(pc); err != nil {
							return fmt.Errorf("epoch %d member %d: %w", e, k, err)
						}
					}
					acked = e
				}
				return nil
			},
			Check: func() error {
				rt, tm, base, err := openAll()
				if err != nil {
					return fmt.Errorf("stack not reopenable after %d acked epochs: %w", acked, err)
				}
				defer rt.Close()
				defer tm.Close()
				if base == pmem.Nil {
					if acked > 0 {
						return fmt.Errorf("data region lost after %d acked epochs", acked)
					}
					return nil
				}
				mem := rt.NewMemory()
				var img [gcCrashMembers * gcCrashStride]uint64
				for i := range img {
					img[i] = mem.LoadU64(base.Add(int64(i) * 8))
				}
				for _, m := range []int{acked, acked + 1} {
					if m > gcCrashEpochs {
						continue
					}
					if img == gcApplyEpochs(m) {
						return nil
					}
				}
				return fmt.Errorf("post-recovery image matches neither %d nor %d whole epochs (partial epoch?)", acked, acked+1)
			},
		}, nil
	}

	rep, err := crashpoint.Explore(workload, crashpoint.Options{
		Schedule: crashpoint.TestSchedule(testing.Short(), 32),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		for _, f := range rep.Failures {
			t.Errorf("%v", f)
		}
		t.Fatalf("group-commit epoch atomicity failed at %d of %d crash points (%s)",
			len(rep.Failures), rep.Points, rep)
	}
	t.Logf("group commit: %s", rep)
}
