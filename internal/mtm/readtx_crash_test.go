package mtm

import (
	"fmt"
	"testing"

	"repro/internal/crashpoint"
	"repro/internal/pmem"
	"repro/internal/region"
	"repro/internal/scm"
)

// TestCrashPointsSnapshotReads explores every crash point of a
// group-commit workload and checks the reader's isolation contract on
// both sides of the crash: a View taken after each acknowledged epoch
// observes exactly that whole epoch's image, and a View taken over the
// recovered state observes a whole-epoch image too — never a partially
// committed or partially recovered epoch. The workload reuses the
// group-commit crash driver (gcVal stripes) so any mixed image is
// distinguishable from every whole-epoch prefix.
func TestCrashPointsSnapshotReads(t *testing.T) {
	workload := func() (*crashpoint.Run, error) {
		dev, err := scm.Open(scm.Config{Size: 4 << 20, Mode: scm.DelayOff})
		if err != nil {
			return nil, err
		}
		dir := t.TempDir()
		acked := 0
		cfg := Config{Slots: gcCrashMembers, LogWords: 256, GroupCommit: true}

		openAll := func() (*region.Runtime, *TM, pmem.Addr, error) {
			rt, err := region.Open(dev, region.Config{Dir: dir, StaticSize: 64 << 10})
			if err != nil {
				return nil, nil, pmem.Nil, err
			}
			tm, err := Open(rt, "snapread", cfg)
			if err != nil {
				rt.Close()
				return nil, nil, pmem.Nil, err
			}
			ptr, _, err := rt.Static("mtm.snapread.data", 8)
			if err != nil {
				rt.Close()
				return nil, nil, pmem.Nil, err
			}
			mem := rt.NewMemory()
			base := pmem.Addr(mem.LoadU64(ptr))
			if base == pmem.Nil {
				base, err = rt.PMapAt(ptr, scm.PageSize, 0)
				if err != nil {
					rt.Close()
					return nil, nil, pmem.Nil, err
				}
			}
			return rt, tm, base, nil
		}

		// viewImage snapshots the whole data stripe in one View.
		viewImage := func(tm *TM, base pmem.Addr) ([gcCrashMembers * gcCrashStride]uint64, error) {
			var img [gcCrashMembers * gcCrashStride]uint64
			err := tm.View(func(r *ReadTx) error {
				for i := range img {
					img[i] = r.LoadU64(base.Add(int64(i) * 8))
				}
				return nil
			})
			return img, err
		}

		return &crashpoint.Run{
			Dev: dev,
			Body: func() error {
				_, tm, base, err := openAll()
				if err != nil {
					return err
				}
				threads := make([]*Thread, gcCrashMembers)
				for k := range threads {
					if threads[k], err = tm.NewThread(); err != nil {
						return err
					}
				}
				members := make([]*pendingCommit, 0, gcCrashMembers)
				for e := 1; e <= gcCrashEpochs; e++ {
					members = members[:0]
					for k, th := range threads {
						tx := &th.tx
						tx.begin()
						for j := 0; j < gcCrashWords; j++ {
							tx.write(base.Add(int64(k*gcCrashStride+j)*8), gcVal(e, k, j))
						}
						if !tx.validate() {
							return fmt.Errorf("epoch %d member %d failed validation", e, k)
						}
						tx.endWriting()
						pc := &th.pending
						pc.tx, pc.ts, pc.err = tx, tm.clock.Add(1), nil
						members = append(members, pc)
					}
					tm.gc.flushEpoch(uint64(e), members)
					for k, pc := range members {
						if err := tm.gc.finish(pc); err != nil {
							return fmt.Errorf("epoch %d member %d: %w", e, k, err)
						}
					}
					acked = e
					// Isolation oracle, pre-crash: a snapshot taken now sees
					// exactly the e whole epochs acknowledged so far.
					img, err := viewImage(tm, base)
					if err != nil {
						return fmt.Errorf("epoch %d view: %w", e, err)
					}
					if img != gcApplyEpochs(e) {
						return fmt.Errorf("view after epoch %d observed a non-whole-epoch image", e)
					}
				}
				return nil
			},
			Check: func() error {
				rt, tm, base, err := openAll()
				if err != nil {
					return fmt.Errorf("stack not reopenable after %d acked epochs: %w", acked, err)
				}
				defer rt.Close()
				defer tm.Close()
				if base == pmem.Nil {
					if acked > 0 {
						return fmt.Errorf("data region lost after %d acked epochs", acked)
					}
					return nil
				}
				// Isolation oracle, post-recovery: the first snapshot over
				// recovered state is a whole-epoch image — recovery never
				// exposes a half-replayed epoch to readers.
				img, err := viewImage(tm, base)
				if err != nil {
					return fmt.Errorf("post-recovery view after %d acked epochs: %w", acked, err)
				}
				for _, m := range []int{acked, acked + 1} {
					if m > gcCrashEpochs {
						continue
					}
					if img == gcApplyEpochs(m) {
						return nil
					}
				}
				return fmt.Errorf("post-recovery snapshot matches neither %d nor %d whole epochs (partial epoch visible to readers?)", acked, acked+1)
			},
		}, nil
	}

	rep, err := crashpoint.Explore(workload, crashpoint.Options{
		Schedule: crashpoint.TestSchedule(testing.Short(), 32),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		for _, f := range rep.Failures {
			t.Errorf("%v", f)
		}
		t.Fatalf("snapshot-read isolation failed at %d of %d crash points (%s)",
			len(rep.Failures), rep.Points, rep)
	}
	t.Logf("snapshot reads: %s", rep)
}
