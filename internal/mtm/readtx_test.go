package mtm

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/pmem"
	"repro/internal/scm"
)

func TestViewReadsCommitted(t *testing.T) {
	e := newEnv(t, Config{})
	th, err := e.tm.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Atomic(func(tx *Tx) error {
		tx.StoreU64(e.data, 42)
		tx.Store(e.data.Add(8), []byte("snapshot"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	views0 := e.tm.Snapshot().Views
	var got uint64
	buf := make([]byte, 8)
	if err := e.tm.View(func(r *ReadTx) error {
		got = r.LoadU64(e.data)
		r.Load(buf, e.data.Add(8))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("LoadU64 = %d, want 42", got)
	}
	if string(buf) != "snapshot" {
		t.Fatalf("Load = %q, want %q", buf, "snapshot")
	}
	if d := e.tm.Snapshot().Views - views0; d != 1 {
		t.Fatalf("Views stat advanced by %d, want 1", d)
	}
}

func TestViewReturnsUserError(t *testing.T) {
	e := newEnv(t, Config{})
	want := fmt.Errorf("user error")
	if err := e.tm.View(func(r *ReadTx) error { return want }); err != want {
		t.Fatalf("View returned %v, want %v", err, want)
	}
}

// TestViewRetriesOnLockedWord pins the covering lock word in the held
// state — exactly what a reader races against mid-commit — and checks the
// View neither blocks the (simulated) writer nor returns early: it backs
// off and completes once the lock is released.
func TestViewRetriesOnLockedWord(t *testing.T) {
	e := newEnv(t, Config{})
	th, err := e.tm.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Atomic(func(tx *Tx) error {
		tx.StoreU64(e.data, 7)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	l := e.tm.lockAt(e.tm.lockIdx(e.data))
	free := l.Load()
	l.Store(lockedBit | 1) // a committing writer owns the word

	retries0 := telReadTxRetries.Value()
	done := make(chan uint64, 1)
	go func() {
		var v uint64
		if err := e.tm.View(func(r *ReadTx) error {
			v = r.LoadU64(e.data)
			return nil
		}); err != nil {
			done <- 0
			return
		}
		done <- v
	}()

	select {
	case v := <-done:
		t.Fatalf("View completed (=%d) while the covering lock was held", v)
	case <-time.After(20 * time.Millisecond):
	}
	l.Store(free) // writer releases

	select {
	case v := <-done:
		if v != 7 {
			t.Fatalf("View read %d after release, want 7", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("View still spinning after the lock was released")
	}
	if telReadTxRetries.Value() == retries0 {
		t.Error("no readtx retries recorded across a held-lock race")
	}
}

// TestViewExtendsSnapshot forces the TinySTM extension path: the reader
// samples its snapshot, a writer commits to an unread word (moving the
// clock past the snapshot), and the reader then loads that word. The
// attempt must extend — revalidating the earlier read in place — rather
// than restart, and both loads must remain mutually consistent.
func TestViewExtendsSnapshot(t *testing.T) {
	e := newEnv(t, Config{})
	th, err := e.tm.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	a := e.data
	b := e.data.Add(8)
	for off := int64(8); e.tm.lockIdx(a) == e.tm.lockIdx(b); off += 8 {
		b = e.data.Add(off)
	}
	if err := th.Atomic(func(tx *Tx) error {
		tx.StoreU64(a, 1)
		tx.StoreU64(b, 2)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	extends0 := telReadTxExtends.Value()
	first := true
	var gotA, gotB uint64
	if err := e.tm.View(func(r *ReadTx) error {
		gotA = r.LoadU64(a)
		if first {
			first = false
			// Commit past the reader's snapshot before it touches b.
			if err := th.Atomic(func(tx *Tx) error {
				tx.StoreU64(b, 20)
				return nil
			}); err != nil {
				return err
			}
		}
		gotB = r.LoadU64(b)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if gotA != 1 || gotB != 20 {
		t.Fatalf("read (a=%d, b=%d), want (1, 20)", gotA, gotB)
	}
	if telReadTxExtends.Value() == extends0 {
		t.Error("no snapshot extension recorded; reader restarted instead")
	}
}

// TestUnboundedReadersOneSlot is the slot-freedom proof: with a single
// log slot — leased, so no writing transaction could even start — dozens
// of concurrent Views run to completion, and the whole reader burst
// issues zero durability fences.
func TestUnboundedReadersOneSlot(t *testing.T) {
	e := newEnv(t, Config{Slots: 1})
	th, err := e.tm.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Atomic(func(tx *Tx) error {
		tx.StoreU64(e.data, 99)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// The one slot stays leased for the whole burst.
	if _, err := e.tm.NewThread(); err == nil {
		t.Fatal("second NewThread succeeded with Slots=1 leased")
	}

	fences0 := e.dev.Snapshot().Fences
	leases0 := telLeases.Value()
	const readers = 32
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				err := e.tm.View(func(r *ReadTx) error {
					if v := r.LoadU64(e.data); v != 99 {
						return fmt.Errorf("read %d, want 99", v)
					}
					return nil
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if d := e.dev.Snapshot().Fences - fences0; d != 0 {
		t.Errorf("reader burst issued %d fences, want 0", d)
	}
	if d := telLeases.Value() - leases0; d != 0 {
		t.Errorf("reader burst leased %d threads, want 0", d)
	}
}

// soakSum is the soak invariant: writers move value between slots inside
// one transaction, so the wrapping sum over all slots is always zero in
// every committed state.
func soakSum(r *ReadTx, base pmem.Addr, slots int) uint64 {
	var sum uint64
	for i := 0; i < slots; i++ {
		sum += r.LoadU64(base.Add(int64(i) * 8))
	}
	return sum
}

// TestViewWriterSoak races View readers against Atomic writers — with a
// crash and reattach in the middle — and asserts every snapshot is whole:
// a reader that ever observed a half-applied transfer would see a nonzero
// sum. Run under -race this also proves the reader path is data-race
// free against commits and write-backs.
func TestViewWriterSoak(t *testing.T) {
	const (
		slots   = 16
		writers = 4
		readers = 4
		iters   = 300
	)
	cfg := Config{Slots: writers}
	e := newEnv(t, cfg)

	phase := func() {
		commits0 := e.tm.Snapshot().Commits
		var wg sync.WaitGroup
		errs := make(chan error, writers+readers)
		stop := make(chan struct{})
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				th, err := e.tm.NewThread()
				if err != nil {
					errs <- err
					return
				}
				defer th.Close()
				rng := rand.New(rand.NewSource(int64(w + 1)))
				for n := 0; n < iters; n++ {
					i, j := rng.Intn(slots), rng.Intn(slots)
					v := uint64(rng.Int63n(1000) + 1)
					err := th.Atomic(func(tx *Tx) error {
						ai, aj := e.data.Add(int64(i)*8), e.data.Add(int64(j)*8)
						tx.StoreU64(ai, tx.LoadU64(ai)-v)
						tx.StoreU64(aj, tx.LoadU64(aj)+v)
						return nil
					})
					if err != nil {
						errs <- err
						return
					}
				}
			}(w)
		}
		for g := 0; g < readers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					err := e.tm.View(func(r *ReadTx) error {
						if sum := soakSum(r, e.data, slots); sum != 0 {
							return fmt.Errorf("torn snapshot: sum %d", sum)
						}
						return nil
					})
					if err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		// Writers finish; then release the readers.
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		for {
			select {
			case err := <-errs:
				close(stop)
				<-done
				t.Fatal(err)
			case <-time.After(10 * time.Millisecond):
			}
			if e.tm.Snapshot().Commits >= commits0+uint64(writers*iters) {
				break
			}
		}
		close(stop)
		<-done
		select {
		case err := <-errs:
			t.Fatal(err)
		default:
		}
	}

	phase()
	// Power failure mid-test: every acknowledged commit must survive, and
	// recovered state must still satisfy the invariant for fresh readers.
	e.reopen(t, scm.DropAll{}, cfg)
	if err := e.tm.View(func(r *ReadTx) error {
		if sum := soakSum(r, e.data, slots); sum != 0 {
			return fmt.Errorf("torn snapshot after recovery: sum %d", sum)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	phase()
}
