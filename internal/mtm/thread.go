package mtm

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/pheap"
	"repro/internal/pmem"
	"repro/internal/rawl"
	"repro/internal/region"
	"repro/internal/scm"
	"repro/internal/telemetry"
)

// Stack-wide transaction metrics (internal/telemetry). Per-TM counts stay
// in TM.Snapshot; these aggregate over every TM in the process and feed
// the live exposition endpoint.
var (
	telCommits = telemetry.NewCounter("mtm_commits_total",
		"durable transactions committed (writing transactions)")
	telAborts = telemetry.NewCounter("mtm_aborts_total",
		"transaction attempts aborted on conflict")
	telReadOnly = telemetry.NewCounter("mtm_readonly_total",
		"transactions that committed without writes")
	telCommitLat = telemetry.NewHistogram("mtm_commit_latency_ns",
		"end-to-end Atomic() latency to durable commit, including retries, ns (sampled 1-in-mtm_latency_sample_rate)")
	telAbortLat = telemetry.NewHistogram("mtm_abort_latency_ns",
		"latency of attempts that ended in a conflict abort, ns (sampled 1-in-mtm_latency_sample_rate)")
)

// Thread-lifecycle metrics. A lease is any successful slot binding
// (NewThread or LeaseThread); a release is a successful Close.
var (
	telLeases = telemetry.NewCounter("mtm_thread_leases_total",
		"transaction threads bound to a log slot")
	telReleases = telemetry.NewCounter("mtm_thread_releases_total",
		"transaction threads closed, their slot recycled")
	telLeaseWaits = telemetry.NewCounter("mtm_lease_waits_total",
		"LeaseThread calls that had to wait for a slot")
	telLeaseTimeouts = telemetry.NewCounter("mtm_lease_timeouts_total",
		"LeaseThread calls that timed out waiting for a slot")
	telReleaseFailures = telemetry.NewCounter("mtm_thread_release_failures_total",
		"Thread.Close calls that failed; the slot is quarantined, not recycled")
	telLiveThreads = telemetry.NewGauge("mtm_live_threads",
		"transaction threads currently bound to log slots")
	telPostCommitErr = telemetry.NewCounter("mtm_postcommit_cleanup_errors_total",
		"deferred frees that failed after the transaction was already durable")
)

// Commit-mode attribution: how many durable commits took the batched undo
// path versus redo logging. Together with the per-phase fence counters
// (undo_log/undo_apply vs log_fence/truncate) this publishes the
// undo-vs-redo head-to-head the hybrid mode is built on.
var (
	telUndoCommits = telemetry.NewCounter("mtm_undo_commits_total",
		"transactions committed through the batched undo path")
	telRedoCommits = telemetry.NewCounter("mtm_redo_commits_total",
		"transactions committed through redo logging (solo or group commit)")
)

// UndoCommits returns the process-wide count of transactions committed
// through the undo path; RedoCommits its redo counterpart. Benchmarks
// diff them around a run to report the hybrid split.
func UndoCommits() uint64 { return telUndoCommits.Value() }

// RedoCommits returns the process-wide count of transactions committed
// through redo logging (solo or group commit).
func RedoCommits() uint64 { return telRedoCommits.Value() }

// ErrTooManyThreads reports that every per-thread log slot is taken.
var ErrTooManyThreads = errors.New("mtm: out of log slots")

// ErrLeaseTimeout reports that LeaseThread gave up waiting for a slot.
var ErrLeaseTimeout = errors.New("mtm: timed out waiting for a log slot")

// conflict is the panic value used to unwind a transaction on a conflict
// abort; Atomic recovers it and retries.
type conflict struct{}

// txFailure carries a non-conflict fatal error out of transactional code.
type txFailure struct{ err error }

// Thread is a per-goroutine transaction context bound to one persistent
// log slot. Threads must not be shared between goroutines. Close returns
// the slot for reuse; a slot may serve many successive logical threads
// over the process's lifetime.
type Thread struct {
	tm     *TM
	id     uint64 // slot+1; stored in lock words while held
	slot   int    // 0-based log-slot index
	mem    *region.Mem
	log    *rawl.Log
	logPos rawl.Pos
	alloc  *pheap.Allocator

	scratch    pmem.Addr // per-thread persistent pointer slots
	scratchIdx int64

	// pendingTrunc counts this slot's truncation jobs still queued at the
	// asynchronous log manager; Close drains it to zero before the slot
	// may be recycled (a late TruncateTo from a previous lease would
	// clobber the next lease's log head).
	pendingTrunc atomic.Int64

	// pending is this thread's group-commit enqueue slot, embedded so
	// joining an epoch allocates nothing. Valid only between the
	// coordinator's enqueue and the epoch's done broadcast.
	pending pendingCommit

	tx     Tx
	rng    *rand.Rand
	latSeq uint64 // transaction count for latency-histogram sampling

	// forceUndo routes the next commits through the batched undo path
	// regardless of the hybrid size threshold; set for the duration of an
	// AtomicUndo call.
	forceUndo bool
	// undoDirty records that committed undo batch/marker records are
	// still in the log (truncation is amortized); Close truncates them
	// before the empty-log handoff check.
	undoDirty bool

	// spanParent is the caller-supplied parent span id for the next
	// Atomic's root span (a request span in kvserve); txnSpan is the live
	// Atomic root span id, the parent of every commit-phase span.
	spanParent uint64
	txnSpan    uint64
}

// SetSpanParent links the thread's next transactions under an enclosing
// telemetry span (a server request, say), so a slow-commit capture shows
// the transaction inside the request that issued it. Zero unlinks. The
// value persists until replaced; callers set it per request.
func (t *Thread) SetSpanParent(id uint64) { t.spanParent = id }

// takeSlotLocked pops a recycled slot if one is available, preferring
// reuse over minting a never-used slot. Caller holds slotMu.
func (tm *TM) takeSlotLocked() (int, bool) {
	if n := len(tm.freeSlots); n > 0 {
		slot := tm.freeSlots[n-1]
		tm.freeSlots = tm.freeSlots[:n-1]
		return slot, true
	}
	if tm.nextSlot < tm.cfg.Slots {
		slot := tm.nextSlot
		tm.nextSlot++
		return slot, true
	}
	return -1, false
}

// releaseSlot returns a slot to the free list and wakes every waiting
// LeaseThread (broadcast: the channel is closed and replaced).
func (tm *TM) releaseSlot(slot int) {
	tm.slotMu.Lock()
	tm.freeSlots = append(tm.freeSlots, slot)
	close(tm.slotAvail)
	tm.slotAvail = make(chan struct{})
	tm.slotMu.Unlock()
}

// bindSlot attaches a fresh Thread to a leased slot. The slot's log must
// be empty — the durability contract of slot handoff — so a bind that
// finds live records quarantines the slot (it is not recycled) and
// reports the bug instead of replaying another thread's state.
func (tm *TM) bindSlot(slot int) (*Thread, error) {
	mem := tm.rt.NewMemory()
	if tm.cfg.ReadCacheWords > 0 {
		mem.EnableReadCache(tm.cfg.ReadCacheWords)
	}
	log, recs, err := rawl.Open(mem, tm.slotAddr(slot))
	if err != nil {
		return nil, err
	}
	if len(recs) != 0 {
		// Open truncated all logs after recovery and Close verifies
		// truncation before recycling, so live records can only mean a
		// bug.
		return nil, fmt.Errorf("mtm: slot %d has live records", slot)
	}
	t := &Thread{
		tm:      tm,
		id:      uint64(slot + 1),
		slot:    slot,
		mem:     mem,
		log:     log,
		scratch: tm.scratchAddr(slot),
		rng:     rand.New(rand.NewSource(int64(slot + 1))),
	}
	if tm.cfg.Heap != nil {
		t.alloc = tm.cfg.Heap.NewAllocator()
	}
	t.tx.t = t
	tm.slotMu.Lock()
	tm.threads[slot] = t
	tm.slotMu.Unlock()
	telLeases.Inc()
	telLiveThreads.Add(1)
	return t, nil
}

// NewThread binds a new transaction thread to a free log slot, drawing
// recycled slots before minting new ones. It fails immediately with
// ErrTooManyThreads when every slot is leased; LeaseThread waits instead.
func (tm *TM) NewThread() (*Thread, error) {
	tm.slotMu.Lock()
	slot, ok := tm.takeSlotLocked()
	tm.slotMu.Unlock()
	if !ok {
		return nil, ErrTooManyThreads
	}
	return tm.bindSlot(slot)
}

// Lease is NewThread with a context-bounded wait: when every slot is
// leased it blocks until a Thread.Close frees one or ctx is cancelled.
// On cancellation the error matches both ErrLeaseTimeout and ctx.Err()
// under errors.Is.
func (tm *TM) Lease(ctx context.Context) (*Thread, error) {
	tm.slotMu.Lock()
	if slot, ok := tm.takeSlotLocked(); ok {
		tm.slotMu.Unlock()
		return tm.bindSlot(slot)
	}
	telLeaseWaits.Inc()
	wait := telemetry.SpanBegin(telemetry.PhaseLeaseWait, 0, 0)
	defer wait.End()
	for {
		ch := tm.slotAvail
		tm.slotMu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			telLeaseTimeouts.Inc()
			return nil, fmt.Errorf("%w: %w", ErrLeaseTimeout, ctx.Err())
		}
		tm.slotMu.Lock()
		if slot, ok := tm.takeSlotLocked(); ok {
			tm.slotMu.Unlock()
			return tm.bindSlot(slot)
		}
	}
}

// LeaseThread is NewThread with a bounded wait, expressed as a bare
// timeout. A non-positive timeout degenerates to NewThread.
//
// Deprecated: use Lease with a context carrying the deadline.
func (tm *TM) LeaseThread(timeout time.Duration) (*Thread, error) {
	if timeout <= 0 {
		return tm.NewThread()
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return tm.Lease(ctx)
}

// Close retires the thread and returns its log slot for reuse. The
// handoff contract is an empty, durably truncated log: Close drains any
// truncation jobs still queued for the slot, verifies the RAWL holds no
// live words, durably clears the scratch page, and asserts no lock word
// still carries the thread's id. On any violation the slot is quarantined
// (never recycled) and the error describes the invariant that broke.
// Close must not be called concurrently with Atomic on the same thread;
// closing an already-closed thread is a no-op.
func (t *Thread) Close() error {
	tm := t.tm
	if tm == nil {
		return nil
	}
	if err := t.closeCheck(); err != nil {
		telReleaseFailures.Inc()
		return err
	}
	t.tm = nil
	t.mem.FlushCacheStats()
	t.mem.ReleaseReadCache()
	tm.slotMu.Lock()
	delete(tm.threads, t.slot)
	tm.slotMu.Unlock()
	tm.releaseSlot(t.slot)
	telReleases.Inc()
	telLiveThreads.Add(-1)
	return nil
}

// closeCheck establishes the empty-log handoff invariants.
func (t *Thread) closeCheck() error {
	tm := t.tm
	if t.undoDirty {
		// Batched undo commits truncate lazily; everything still in the
		// log is committed (each batch is terminated by its marker), so
		// the handoff truncation drops only inert records.
		t.log.TruncateAll()
		telemetry.CountPhaseFence(telemetry.PhaseTruncate)
		t.undoDirty = false
	}
	if tm.mgr != nil {
		for t.pendingTrunc.Load() > 0 && !tm.mgr.isHalted() {
			runtime.Gosched()
		}
		if n := t.pendingTrunc.Load(); n > 0 {
			return fmt.Errorf("mtm: thread %d closed with %d truncation jobs pending and the log manager halted", t.id, n)
		}
	}
	if used := t.log.UsedWords(); used != 0 {
		return fmt.Errorf("mtm: thread %d closed with %d live log words", t.id, used)
	}
	// Clear the scratch page durably so the next lease of this slot
	// starts from deterministic state and stale block addresses cannot
	// conservatively retain garbage during a GC scan.
	for i := int64(0); i < scratchSlots; i++ {
		t.mem.WTStoreU64(t.scratch.Add(i*8), 0)
	}
	t.mem.Fence()
	owner := lockedBit | t.id
	for i := range tm.locks {
		if tm.locks[i].Load() == owner {
			return fmt.Errorf("mtm: thread %d closed while still owning lock %d", t.id, i)
		}
	}
	return nil
}

// Memory returns the thread's memory view, for non-transactional
// persistence-primitive work between transactions.
func (t *Thread) Memory() *region.Mem { return t.mem }

// ID returns the thread's 1-based log-slot id, stable for the thread's
// lifetime. Telemetry uses it as the trace thread id.
func (t *Thread) ID() uint64 { return t.id }

// nextScratch rotates through the thread's persistent scratch pointer
// slots, used as pmalloc/pfree destinations for transaction-internal
// allocation bookkeeping.
func (t *Thread) nextScratch() pmem.Addr {
	slot := t.scratch.Add((t.scratchIdx % scratchSlots) * 8)
	t.scratchIdx++
	return slot
}

// scratchAlloc allocates via the heap with a scratch slot as the
// leak-avoidance destination pointer.
func (t *Thread) scratchAlloc(size int64) (pmem.Addr, error) {
	return t.alloc.PMalloc(size, t.nextScratch())
}

// scratchFor durably stores block into a scratch slot and returns the
// slot, so the heap's pointer-based PFree can be applied to it.
func (t *Thread) scratchFor(block pmem.Addr) pmem.Addr {
	slot := t.nextScratch()
	pmem.StoreDurable(t.mem, slot, uint64(block))
	return slot
}

func (t *Thread) freeBlock(block pmem.Addr) {
	if err := t.alloc.PFree(t.scratchFor(block)); err != nil {
		panic(fmt.Sprintf("mtm: rollback free: %v", err))
	}
}

// writeEntry is one buffered transactional write.
type writeEntry struct {
	addr pmem.Addr
	val  uint64
}

// lockEntry remembers an acquired lock and its pre-acquisition version so
// aborts can restore it.
type lockEntry struct {
	idx  uint32
	prev uint64
}

// readEntry remembers a lock word observed at read time for commit-time
// validation.
type readEntry struct {
	idx  uint32
	seen uint64
}

// Tx is an executing transaction. A Tx is only valid inside the function
// passed to Atomic.
type Tx struct {
	t  *Thread
	rv uint64 // read snapshot timestamp

	writes  []writeEntry
	windex  intTable // addr -> writes position
	reads   []readEntry
	locks   []lockEntry
	owned   intTable    // lock index+1 -> locks position
	lines   intTable    // scratch: distinct cache lines at commit
	lineBuf []pmem.Addr // scratch: distinct-line output
	recBuf  []uint64    // scratch: redo record assembly

	undoWrites []writeEntry // undo mode: old values, in write order
	allocs     []pmem.Addr  // blocks allocated this tx, freed on abort
	frees      []pmem.Addr  // scratch slots to free at commit

	// writing is set (group-commit mode only) while this transaction is
	// counted in TM.activeWriters — from begin until it enqueues on an
	// epoch, rolls back, or commits read-only. Epoch leaders use the
	// count to decide whether a gathering wait can pay off.
	writing bool

	scratchStart int64 // thread scratch cursor at begin, for clearing
}

// Atomic runs fn as a durable memory transaction — the library equivalent
// of the paper's `atomic { ... }` block. The transaction commits when fn
// returns nil: all its writes become durable atomically. Returning an
// error aborts and rolls back. Conflicts with concurrent transactions
// retry automatically with randomized backoff.
func (t *Thread) Atomic(fn func(tx *Tx) error) error {
	// The latency histograms sample one transaction in N (default 16,
	// Config.LatencySampleRate): two clock reads cost as much as the rest
	// of a read-only commit, and the distribution doesn't need every data
	// point. Counters stay exact. Tracing forces timing so every trace
	// event carries a real latency.
	t.latSeq++
	timed := t.tm.sampleLatency(t.latSeq) || telemetry.TraceEnabled()
	root := telemetry.SpanBegin(telemetry.PhaseTxn, t.id, t.spanParent)
	t.txnSpan = root.ID
	var start time.Time
	if timed {
		start = time.Now()
		if telemetry.TraceEnabled() {
			telemetry.Emit(telemetry.EvTxnBegin, t.id, 0, 0)
		}
	}
	backoff := time.Microsecond
	attemptStart := start
	for {
		err := t.attempt(fn)
		if err == nil {
			if timed {
				lat := time.Since(start).Nanoseconds()
				telCommitLat.Observe(lat)
				if telemetry.TraceEnabled() {
					telemetry.Emit(telemetry.EvTxnCommit, t.id, uint64(lat), uint64(len(t.tx.writes)))
				}
			}
			t.txnSpan = 0
			root.End()
			return nil
		}
		if _, isConflict := err.(conflictErr); !isConflict {
			t.txnSpan = 0
			root.End()
			return err
		}
		t.tm.stats.Aborts.Add(1)
		telAborts.Inc()
		if timed {
			abortLat := time.Since(attemptStart).Nanoseconds()
			telAbortLat.Observe(abortLat)
			if telemetry.TraceEnabled() {
				telemetry.Emit(telemetry.EvTxnAbort, t.id, uint64(abortLat), 0)
			}
		}
		// Randomized exponential backoff to break livelock.
		spinFor(time.Duration(t.rng.Int63n(int64(backoff) + 1)))
		if backoff < 128*time.Microsecond {
			backoff *= 2
		}
		if timed {
			attemptStart = time.Now()
		}
	}
}

// AtomicUndo is Atomic with the commit forced through the batched undo
// path, regardless of Config.CommitMode and the hybrid size threshold:
// the old-value set is logged behind one ordering fence, the new values
// stored in place, and a commit marker fenced behind them. Callers use it
// for transactions they know are small and latency-critical.
//
// The undo path's crash-safety argument requires synchronous truncation
// (a committed redo record must never outlive its locks), so AtomicUndo
// fails on a TM opened with AsyncTruncation; it also conflicts with the
// per-write UndoLogging ablation.
func (t *Thread) AtomicUndo(fn func(tx *Tx) error) error {
	if t.tm.cfg.UndoLogging {
		return errors.New("mtm: AtomicUndo conflicts with the UndoLogging ablation")
	}
	if t.tm.mgr != nil {
		return errors.New("mtm: AtomicUndo requires synchronous truncation")
	}
	t.forceUndo = true
	defer func() { t.forceUndo = false }()
	return t.Atomic(fn)
}

// AtomicBatch runs every fn inside one transaction on this thread: one
// log append, one durability fence (or one group-commit epoch) for the
// whole batch. The batch is atomic as a unit — all fns commit together,
// and an error from any fn aborts them all.
func (t *Thread) AtomicBatch(fns []func(tx *Tx) error) error {
	return t.Atomic(func(tx *Tx) error {
		for _, fn := range fns {
			if err := fn(tx); err != nil {
				return err
			}
		}
		return nil
	})
}

type conflictErr struct{}

func (conflictErr) Error() string { return "mtm: transaction conflict" }

func spinFor(d time.Duration) {
	if d <= 0 {
		runtime.Gosched()
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// attempt runs fn once, translating conflict panics into conflictErr and
// txFailure panics into returned errors.
func (t *Thread) attempt(fn func(tx *Tx) error) (err error) {
	tx := &t.tx
	tx.begin()
	// The body span covers the user closure: read/write-set tracking and
	// encounter-time lock acquisition happen inside it. End is
	// idempotent, so the deferred close only fires on a panic unwind.
	body := telemetry.SpanBegin(telemetry.PhaseBody, t.id, t.txnSpan)
	defer func() {
		body.End()
		if r := recover(); r != nil {
			tx.rollback()
			switch v := r.(type) {
			case conflict:
				err = conflictErr{}
			case txFailure:
				err = v.err
			default:
				panic(r)
			}
		}
	}()
	if err := fn(tx); err != nil {
		tx.rollback()
		return err
	}
	body.End()
	return tx.commit()
}

// endWriting removes the transaction from the active-writer count. Safe
// to call more than once; a no-op outside group-commit mode.
func (tx *Tx) endWriting() {
	if tx.writing {
		tx.writing = false
		tx.t.tm.activeWriters.Add(-1)
	}
}

func (tx *Tx) begin() {
	tx.endWriting() // defensive: a leaked count would stall epoch leaders
	if tx.t.tm.gc != nil {
		// Count this transaction in flight for the whole attempt: epoch
		// leaders gather only while other transactions might still
		// arrive, and a transaction anywhere between begin and its
		// commit enqueue is exactly such an arrival — including during
		// its read phase, which is where a preempted goroutine usually
		// sits on a loaded machine.
		tx.writing = true
		tx.t.tm.activeWriters.Add(1)
	}
	tx.rv = tx.t.tm.clock.Load()
	tx.writes = tx.writes[:0]
	tx.reads = tx.reads[:0]
	tx.locks = tx.locks[:0]
	tx.undoWrites = tx.undoWrites[:0]
	tx.allocs = tx.allocs[:0]
	tx.frees = tx.frees[:0]
	tx.windex.reset()
	tx.owned.reset()
	tx.scratchStart = tx.t.scratchIdx
}

func (tx *Tx) abort() {
	panic(conflict{})
}

// rollback undoes the attempt: in undo mode the in-place writes are
// reverted (before locks release, so no other transaction can observe
// them), allocations made inside the transaction are freed, and locks are
// restored to their pre-acquisition versions.
func (tx *Tx) rollback() {
	t := tx.t
	tx.endWriting()
	if t.tm.cfg.UndoLogging && len(tx.undoWrites) > 0 {
		for i := len(tx.undoWrites) - 1; i >= 0; i-- {
			u := tx.undoWrites[i]
			t.mem.StoreU64(u.addr, u.val)
			t.mem.Flush(u.addr)
		}
		t.mem.Fence()
		t.log.TruncateAll()
	}
	for i := len(tx.locks) - 1; i >= 0; i-- {
		t.tm.lockAt(tx.locks[i].idx).Store(tx.locks[i].prev)
	}
	for _, block := range tx.allocs {
		t.freeBlock(block)
	}
	tx.clearScratch()
}

// clearScratch zeroes the scratch pointer slots this transaction used, so
// stale block addresses do not conservatively retain garbage during a GC
// scan. The stores are unfenced: losing them in a crash merely makes a
// later collection conservative, never unsafe.
func (tx *Tx) clearScratch() {
	t := tx.t
	used := t.scratchIdx - tx.scratchStart
	if used > scratchSlots {
		used = scratchSlots
	}
	for i := int64(0); i < used; i++ {
		slot := t.scratch.Add(((tx.scratchStart + i) % scratchSlots) * 8)
		t.mem.WTStoreU64(slot, 0)
	}
}

// read implements transactional load of one word.
func (tx *Tx) read(a pmem.Addr) uint64 {
	if i, ok := tx.windex.get(uint64(a)); ok {
		return tx.writes[i].val
	}
	li := tx.t.tm.lockIdx(a)
	l := tx.t.tm.lockAt(li)
	w := l.Load()
	if w&lockedBit != 0 {
		if _, mine := tx.owned.get(uint64(li) + 1); mine {
			return tx.t.mem.LoadU64(a)
		}
		tx.abort()
	}
	// Read-through cache: an entry tagged with the version just sampled
	// is provably current (no commit moved the covering lock since the
	// fill), so the device load and the lock recheck are both skipped.
	v, hit := tx.t.mem.CacheLoadU64(a, w)
	if !hit {
		v = tx.t.mem.LoadU64(a)
		if l.Load() != w {
			tx.abort()
		}
		tx.t.mem.CacheFill(a, w, v)
	}
	if w > tx.rv {
		tx.extend()
	}
	tx.reads = append(tx.reads, readEntry{idx: li, seen: w})
	return v
}

// extend revalidates the read set against the current clock, raising the
// snapshot (TinySTM timestamp extension); aborts when a read is stale.
func (tx *Tx) extend() {
	now := tx.t.tm.clock.Load()
	if !tx.validate() {
		tx.abort()
	}
	tx.rv = now
}

func (tx *Tx) validate() bool {
	for _, r := range tx.reads {
		cur := tx.t.tm.lockAt(r.idx).Load()
		if cur == r.seen {
			continue
		}
		if cur&lockedBit != 0 {
			// Locked by us after we read it: valid iff the version
			// we saw is the one we locked over.
			if pos, mine := tx.owned.get(uint64(r.idx) + 1); mine && tx.locks[pos].prev == r.seen {
				continue
			}
		}
		return false
	}
	return true
}

// write implements transactional store of one word: encounter-time lock
// acquisition plus redo buffering (or an immediate undo-logged in-place
// update in the ablation mode).
func (tx *Tx) write(a pmem.Addr, v uint64) {
	if !a.IsPersistent() {
		panic(txFailure{fmt.Errorf("mtm: transactional write to non-persistent address %v", a)})
	}
	li := tx.t.tm.lockIdx(a)
	if _, mine := tx.owned.get(uint64(li) + 1); !mine {
		l := tx.t.tm.lockAt(li)
		w := l.Load()
		if w&lockedBit != 0 {
			tx.abort() // encounter-time conflict
		}
		if w > tx.rv {
			tx.extend()
		}
		if !l.CompareAndSwap(w, lockedBit|tx.t.id) {
			tx.abort()
		}
		tx.owned.put(uint64(li)+1, int32(len(tx.locks)))
		tx.locks = append(tx.locks, lockEntry{idx: li, prev: w})
	}

	if tx.t.tm.cfg.UndoLogging {
		tx.undoStore(a, v)
		return
	}
	if i, ok := tx.windex.get(uint64(a)); ok {
		tx.writes[i].val = v
		return
	}
	tx.windex.put(uint64(a), int32(len(tx.writes)))
	tx.writes = append(tx.writes, writeEntry{addr: a, val: v})
}

// undoStore logs the old value and fences before updating memory in
// place — the per-write ordering constraint that makes undo logging
// slower than redo (§5 Discussion).
func (tx *Tx) undoStore(a pmem.Addr, v uint64) {
	t := tx.t
	old := t.mem.LoadU64(a)
	if err := t.appendRecord([]uint64{tagUndoWrite, uint64(a), old}); err != nil {
		panic(txFailure{err})
	}
	t.log.Flush() // the extra fence, per write
	telemetry.CountPhaseFence(telemetry.PhaseLogFence)
	t.mem.StoreU64(a, v)
	tx.undoWrites = append(tx.undoWrites, writeEntry{addr: a, val: old})
}

// commit makes the transaction durable. Redo mode: validate, take a commit
// timestamp, stream the write set and timestamp into the thread log with
// one flush (a single fence), then write the data back and release locks.
func (tx *Tx) commit() error {
	t := tx.t
	tm := t.tm
	if tm.cfg.UndoLogging {
		return tx.commitUndo()
	}
	if len(tx.writes) == 0 {
		tx.endWriting()
		tm.stats.ReadOnly.Add(1)
		telReadOnly.Inc()
		tx.releaseLocksNoCommit()
		return nil
	}
	validate := telemetry.SpanBegin(telemetry.PhaseValidate, t.id, t.txnSpan)
	ok := tx.validate()
	validate.End()
	if !ok {
		tx.rollback()
		return conflictErr{}
	}

	// Undo commit path: forced by AtomicUndo, selected by CommitMode
	// "undo", or chosen in hybrid mode for write sets small enough that
	// in-place stores beat streaming a redo record — as long as the
	// whole batch plus its marker fits the log at all.
	if tx.useUndoPath() {
		return tx.commitHybrid()
	}

	// Group-commit mode: hand the validated transaction to the epoch
	// coordinator, which logs it, covers it with a shared fence, and
	// releases its locks.
	if tm.gc != nil {
		return tm.gc.commit(tx)
	}

	// The global timestamp counter, "incremented at every transaction
	// completion", captures the total order replayed at recovery.
	ts := tm.clock.Add(1)

	// Write-ahead redo log: [tag, ts, n, (addr,val)...], one record,
	// one flush. This fence is where durability happens.
	appendSp := telemetry.SpanBegin(telemetry.PhaseLogAppend, t.id, t.txnSpan)
	rec := tx.recBuf[:0]
	rec = append(rec, tagRedo, ts, uint64(len(tx.writes)))
	for _, w := range tx.writes {
		rec = append(rec, uint64(w.addr), w.val)
	}
	tx.recBuf = rec
	if err := t.appendRecord(rec); err != nil {
		appendSp.End()
		tx.rollback()
		return err
	}
	pos := t.logPos
	appendSp.End()
	fenceSp := telemetry.SpanBegin(telemetry.PhaseLogFence, t.id, t.txnSpan)
	t.log.Flush()
	telemetry.CountPhaseFence(telemetry.PhaseLogFence)
	fenceSp.End()

	// Write the new values back in place.
	wbSp := telemetry.SpanBegin(telemetry.PhaseWriteBack, t.id, t.txnSpan)
	tx.writeBack()
	wbSp.End()

	truncSp := telemetry.SpanBegin(telemetry.PhaseTruncate, t.id, t.txnSpan)
	if tm.mgr != nil {
		// Asynchronous truncation: the log manager flushes the
		// modified lines and truncates later; commit latency excludes
		// that work. The line list escapes to the manager, so it is
		// built fresh rather than from the scratch buffer.
		lines := append([]pmem.Addr(nil), tx.distinctLines(tx.writes)...)
		tm.mgr.submit(truncJob{t: t, pos: pos, lines: lines})
	} else {
		// Synchronous truncation: flush every distinct cache line
		// written, fence, truncate the whole log.
		if !tm.cfg.WriteThroughWriteback {
			for _, line := range tx.distinctLines(tx.writes) {
				t.mem.Flush(line)
			}
		}
		t.mem.Fence()
		telemetry.CountPhaseFence(telemetry.PhaseTruncate)
		t.log.TruncateAll()
	}
	truncSp.End()

	// Release locks with the commit timestamp as the new version.
	for _, le := range tx.locks {
		t.tm.lockAt(le.idx).Store(ts)
	}

	tx.runDeferredFrees()
	tx.clearScratch()
	tm.stats.Commits.Add(1)
	telCommits.Inc()
	telRedoCommits.Inc()
	return nil
}

// useUndoPath reports whether this validated writing transaction commits
// through the batched undo path: forced by AtomicUndo, selected by
// CommitMode "undo", or chosen in hybrid mode for small write sets. A
// write set whose batch record plus commit marker cannot fit even an
// empty log always falls back to redo (which splits across truncations).
func (tx *Tx) useUndoPath() bool {
	t := tx.t
	tm := t.tm
	switch {
	case tm.cfg.UndoLogging || tm.mgr != nil:
		return false
	case t.forceUndo:
	case tm.mode == modeUndo:
	case tm.mode == modeHybrid && len(tx.writes) <= tm.cfg.HybridUndoMax:
	default:
		return false
	}
	return tx.undoNeedWords() <= t.log.Capacity()-1
}

// undoNeedWords is the log space one batched undo commit consumes: the
// [tag, n, (addr,old)...] batch record plus the [tag, ts] marker.
func (tx *Tx) undoNeedWords() int64 {
	return rawl.RecordWords(int64(2+2*len(tx.writes))) + rawl.RecordWords(2)
}

// commitHybrid commits a validated transaction through the batched undo
// path. Unlike the per-write UndoLogging ablation it keeps redo's
// one-ordering-point structure: the whole old-value set is streamed as a
// single record and fenced once before any in-place store, then the new
// values are stored in place (each line flushed, synchronously durable),
// and a commit marker is fenced behind them — the commit point. Two
// fences against sync redo's three (log fence, write-back fence,
// truncation fence).
//
// Truncation is amortized: committed batches are inert at recovery (the
// marker terminates them), so the log truncates only when the next commit
// would not fit, spreading the truncation fence over many commits.
func (tx *Tx) commitHybrid() error {
	t := tx.t
	tm := t.tm
	tx.endWriting() // this commit does not join an epoch

	need := tx.undoNeedWords()
	if need > t.log.FreeWords() {
		// Everything still in the log is a committed batch or marker;
		// dropping them loses nothing.
		truncSp := telemetry.SpanBegin(telemetry.PhaseTruncate, t.id, t.txnSpan)
		t.log.TruncateAll()
		telemetry.CountPhaseFence(telemetry.PhaseTruncate)
		truncSp.End()
	}

	// Old-value batch: one record, one flush — the single ordering point
	// that must precede every in-place store.
	undoSp := telemetry.SpanBegin(telemetry.PhaseUndoLog, t.id, t.txnSpan)
	rec := tx.recBuf[:0]
	rec = append(rec, tagUndoBatch, uint64(len(tx.writes)))
	for _, w := range tx.writes {
		rec = append(rec, uint64(w.addr), t.mem.LoadU64(w.addr))
	}
	tx.recBuf = rec
	if _, err := t.log.Append(rec); err != nil {
		undoSp.End()
		tx.rollback()
		return fmt.Errorf("mtm: undo batch append: %w", err)
	}
	t.log.Flush()
	telemetry.CountPhaseFence(telemetry.PhaseUndoLog)
	undoSp.End()

	// In-place stores with their line flushes, then the commit marker
	// behind the second fence: the commit point. No abort is possible
	// past the ordering fence — a crash anywhere in here rolls back
	// exactly, by applying the batch record in reverse.
	applySp := telemetry.SpanBegin(telemetry.PhaseUndoApply, t.id, t.txnSpan)
	tx.writeBack()
	if !tm.cfg.WriteThroughWriteback {
		for _, line := range tx.distinctLines(tx.writes) {
			t.mem.Flush(line)
		}
	}
	ts := tm.clock.Add(1)
	if _, err := t.log.Append([]uint64{tagUndoCommit, ts}); err != nil {
		// The precheck reserved space for the marker; failing here would
		// strand an unterminated batch over already-stored data.
		panic(fmt.Sprintf("mtm: undo commit marker append: %v", err))
	}
	t.log.Flush()
	telemetry.CountPhaseFence(telemetry.PhaseUndoApply)
	applySp.End()
	t.undoDirty = true

	// Release locks with the commit timestamp as the new version.
	for _, le := range tx.locks {
		tm.lockAt(le.idx).Store(ts)
	}

	tx.runDeferredFrees()
	tx.clearScratch()
	tm.stats.Commits.Add(1)
	telCommits.Inc()
	telUndoCommits.Inc()
	return nil
}

// writeBack stores the redo write set in place. Must run strictly after
// the fence that made the log record durable: a crash before write-back
// replays the record; a crash during it leaves only values the record
// reproduces.
func (tx *Tx) writeBack() {
	t := tx.t
	if t.tm.cfg.WriteThroughWriteback {
		for _, w := range tx.writes {
			t.mem.WTStoreU64(w.addr, w.val)
		}
		return
	}
	// Write back with one dirty-line registration per line: writes are
	// in program order, so runs over one cache line are common (bulk
	// value bytes).
	var lastLine pmem.Addr = ^pmem.Addr(0)
	for _, w := range tx.writes {
		if line := w.addr &^ (scm.LineSize - 1); line == lastLine {
			t.mem.StoreU64InDirtyLine(w.addr, w.val)
		} else {
			t.mem.StoreU64(w.addr, w.val)
			lastLine = line
		}
	}
}

// runDeferredFrees executes the frees deferred to commit. The transaction
// is already durable at this point — its redo (or commit) record survived
// a fence and its locks carry the commit timestamp — so a failing free
// must not surface as a transaction error: callers would report failure
// for a write that actually committed. The block stays allocated (a leak
// the conservative GC can reclaim) and the failure is counted.
func (tx *Tx) runDeferredFrees() {
	for _, slot := range tx.frees {
		if err := tx.t.alloc.PFree(slot); err != nil {
			telPostCommitErr.Inc()
		}
	}
}

// commitUndo completes an undo-logged transaction: flush the in-place
// data, fence, then a commit record and a second fence.
func (tx *Tx) commitUndo() error {
	t := tx.t
	tm := t.tm
	if len(tx.undoWrites) == 0 {
		tm.stats.ReadOnly.Add(1)
		telReadOnly.Inc()
		tx.releaseLocksNoCommit()
		return nil
	}
	if !tx.validate() {
		tx.rollback()
		return conflictErr{}
	}
	for _, line := range tx.distinctLines(tx.undoWrites) {
		t.mem.Flush(line)
	}
	t.mem.Fence()
	telemetry.CountPhaseFence(telemetry.PhaseWriteBack)
	ts := tm.clock.Add(1)
	if err := t.appendRecord([]uint64{tagUndoCommit, ts}); err != nil {
		tx.rollback()
		return err
	}
	t.log.Flush()
	telemetry.CountPhaseFence(telemetry.PhaseLogFence)
	t.log.TruncateAll()
	for _, le := range tx.locks {
		t.tm.lockAt(le.idx).Store(ts)
	}
	tx.runDeferredFrees()
	tx.clearScratch()
	tm.stats.Commits.Add(1)
	telCommits.Inc()
	telUndoCommits.Inc()
	return nil
}

// releaseLocksNoCommit releases locks acquired by a transaction that ends
// up writing nothing (restoring the old versions).
func (tx *Tx) releaseLocksNoCommit() {
	for i := len(tx.locks) - 1; i >= 0; i-- {
		tx.t.tm.lockAt(tx.locks[i].idx).Store(tx.locks[i].prev)
	}
}

// appendRecord appends to the thread log, handling a full log: in sync
// mode everything logged is already applied, so truncate and retry; in
// async mode wait for the log manager — the stall the paper describes
// when "the log manager thread is unable to execute".
func (t *Thread) appendRecord(rec []uint64) error {
	for {
		pos, err := t.log.Append(rec)
		if err == nil {
			t.logPos = pos
			return nil
		}
		if err != rawl.ErrLogFull {
			return fmt.Errorf("mtm: log append: %w", err)
		}
		if t.tm.cfg.UndoLogging {
			// Mid-transaction undo records cannot be dropped; the
			// transaction is too large for the log.
			return fmt.Errorf("mtm: transaction overflows undo log (%d words free)", t.log.FreeWords())
		}
		if t.tm.mgr == nil {
			t.log.Flush()
			telemetry.CountPhaseFence(telemetry.PhaseTruncate)
			t.log.TruncateAll()
			continue
		}
		runtime.Gosched()
	}
}

// distinctLines deduplicates the cache lines touched by the write set
// into the transaction's scratch buffer (valid until the next call).
func (tx *Tx) distinctLines(writes []writeEntry) []pmem.Addr {
	tx.lines.reset()
	lines := tx.lineBuf[:0]
	for _, w := range writes {
		line := w.addr &^ (scm.LineSize - 1)
		if _, ok := tx.lines.get(uint64(line)); !ok {
			tx.lines.put(uint64(line), 0)
			lines = append(lines, line)
		}
	}
	tx.lineBuf = lines
	return lines
}

// Public transactional accessors.

// LoadU64 transactionally reads the word at a.
func (tx *Tx) LoadU64(a pmem.Addr) uint64 { return tx.read(a) }

// StoreU64 transactionally writes the word at a.
func (tx *Tx) StoreU64(a pmem.Addr, v uint64) { tx.write(a, v) }

// Load transactionally reads len(buf) bytes at a.
func (tx *Tx) Load(buf []byte, a pmem.Addr) {
	n := int64(len(buf))
	i := int64(0)
	for i < n {
		w := tx.read((a.Add(i)) &^ 7)
		shift := uint(uint64(a.Add(i)) & 7)
		for ; shift < 8 && i < n; shift++ {
			buf[i] = byte(w >> (shift * 8))
			i++
		}
	}
}

// Store transactionally writes buf at a.
func (tx *Tx) Store(a pmem.Addr, buf []byte) {
	n := int64(len(buf))
	i := int64(0)
	for i < n {
		wordAddr := (a.Add(i)) &^ 7
		shift := uint(uint64(a.Add(i)) & 7)
		if shift == 0 && n-i >= 8 {
			v := uint64(buf[i]) | uint64(buf[i+1])<<8 | uint64(buf[i+2])<<16 |
				uint64(buf[i+3])<<24 | uint64(buf[i+4])<<32 | uint64(buf[i+5])<<40 |
				uint64(buf[i+6])<<48 | uint64(buf[i+7])<<56
			tx.write(wordAddr, v)
			i += 8
			continue
		}
		w := tx.read(wordAddr)
		for ; shift < 8 && i < n; shift++ {
			w &^= 0xff << (shift * 8)
			w |= uint64(buf[i]) << (shift * 8)
			i++
		}
		tx.write(wordAddr, w)
	}
}

// PMalloc allocates persistent memory inside the transaction (Figure 3 of
// the paper shows pmalloc inside an atomic block). The write of the block
// address through ptr is transactional; the allocation itself is undone if
// the transaction aborts.
func (tx *Tx) PMalloc(size int64, ptr pmem.Addr) (pmem.Addr, error) {
	t := tx.t
	if t.alloc == nil {
		return pmem.Nil, errors.New("mtm: no heap attached")
	}
	block, err := t.scratchAlloc(size)
	if err != nil {
		return pmem.Nil, err
	}
	tx.allocs = append(tx.allocs, block)
	tx.write(ptr, uint64(block))
	return block, nil
}

// Alloc allocates persistent memory inside the transaction without
// writing any user pointer; the caller links the block into its data
// structure with transactional stores. Leak avoidance is preserved
// internally: the heap's destination pointer is a per-thread persistent
// scratch slot. The allocation is undone if the transaction aborts.
func (tx *Tx) Alloc(size int64) (pmem.Addr, error) {
	t := tx.t
	if t.alloc == nil {
		return pmem.Nil, errors.New("mtm: no heap attached")
	}
	block, err := t.scratchAlloc(size)
	if err != nil {
		return pmem.Nil, err
	}
	tx.allocs = append(tx.allocs, block)
	return block, nil
}

// FreeBlock frees the block at addr when the transaction commits; an
// abort leaves the block intact. The caller is responsible for
// transactionally unlinking every pointer to it.
func (tx *Tx) FreeBlock(addr pmem.Addr) error {
	t := tx.t
	if t.alloc == nil {
		return errors.New("mtm: no heap attached")
	}
	if addr == pmem.Nil {
		return errors.New("mtm: free of nil block")
	}
	tx.frees = append(tx.frees, t.scratchFor(addr))
	return nil
}

// PFree transactionally frees the block pointed to by the persistent
// pointer at ptr. The pointer is nullified transactionally; the block
// itself is released only after the transaction commits, so an abort
// leaves it intact.
func (tx *Tx) PFree(ptr pmem.Addr) error {
	t := tx.t
	if t.alloc == nil {
		return errors.New("mtm: no heap attached")
	}
	block := pmem.Addr(tx.read(ptr))
	if block == pmem.Nil {
		return errors.New("mtm: pfree of nil pointer")
	}
	tx.write(ptr, 0)
	tx.frees = append(tx.frees, t.scratchFor(block))
	return nil
}
