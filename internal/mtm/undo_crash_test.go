package mtm

import (
	"fmt"
	"testing"

	"repro/internal/crashpoint"
	"repro/internal/pmem"
	"repro/internal/region"
	"repro/internal/scm"
)

// TestCrashPointsUndo explores every crash point of a hybrid-mode
// workload where small transactions commit through the batched undo path
// and larger ones through redo, interleaved on one thread. The oracle is
// the same acked-prefix contract as TestCrashPointsMTM, which for the
// undo path pins both directions of its atomicity:
//
//   - torn undo apply: a crash between the batch record's ordering fence
//     and the commit marker's fence leaves some in-place stores durable;
//     recovery must roll every one of them back to the logged old values
//     (image == acked txs, exactly);
//   - committed undo survives: once the marker fenced, recovery must not
//     roll the batch back, and no redo replay may clobber the in-place
//     data (image == acked+1 txs when the crash straddled the marker).
//
// The hybrid split (threshold 4 against write sets of 3–5 words) makes
// the exploration alternate undo and redo commits in one log, covering
// the mixed-log recovery scan and the amortized-truncation states.
func TestCrashPointsUndo(t *testing.T) {
	const txs = 8
	workload := func() (*crashpoint.Run, error) {
		dev, err := scm.Open(scm.Config{Size: 4 << 20, Mode: scm.DelayOff})
		if err != nil {
			return nil, err
		}
		dir := t.TempDir()
		acked := 0
		cfg := Config{Slots: 2, LogWords: 256, CommitMode: "hybrid", HybridUndoMax: 4}

		openAll := func() (*region.Runtime, *TM, pmem.Addr, error) {
			rt, err := region.Open(dev, region.Config{Dir: dir, StaticSize: 64 << 10})
			if err != nil {
				return nil, nil, pmem.Nil, err
			}
			tm, err := Open(rt, "undocrash", cfg)
			if err != nil {
				rt.Close()
				return nil, nil, pmem.Nil, err
			}
			ptr, _, err := rt.Static("mtm.undocrash.data", 8)
			if err != nil {
				rt.Close()
				return nil, nil, pmem.Nil, err
			}
			mem := rt.NewMemory()
			base := pmem.Addr(mem.LoadU64(ptr))
			if base == pmem.Nil {
				base, err = rt.PMapAt(ptr, scm.PageSize, 0)
				if err != nil {
					rt.Close()
					return nil, nil, pmem.Nil, err
				}
			}
			return rt, tm, base, nil
		}

		return &crashpoint.Run{
			Dev: dev,
			Body: func() error {
				_, tm, base, err := openAll()
				if err != nil {
					return err
				}
				th, err := tm.NewThread()
				if err != nil {
					return err
				}
				for i := 0; i < txs; i++ {
					writes := txWrites(i)
					idxs := make([]int64, 0, len(writes))
					for idx := range writes {
						idxs = append(idxs, idx)
					}
					for a := 1; a < len(idxs); a++ {
						for b := a; b > 0 && idxs[b] < idxs[b-1]; b-- {
							idxs[b], idxs[b-1] = idxs[b-1], idxs[b]
						}
					}
					err := th.Atomic(func(tx *Tx) error {
						for _, idx := range idxs {
							tx.StoreU64(base.Add(idx*8), writes[idx])
						}
						return nil
					})
					if err != nil {
						return err
					}
					acked = i + 1
				}
				return nil
			},
			Check: func() error {
				rt, tm, base, err := openAll()
				if err != nil {
					return fmt.Errorf("stack not reopenable after %d acked txs: %w", acked, err)
				}
				defer rt.Close()
				defer tm.Close()
				if base == pmem.Nil {
					if acked > 0 {
						return fmt.Errorf("data region lost after %d acked txs", acked)
					}
					return nil
				}
				mem := rt.NewMemory()
				var img [64]uint64
				for i := int64(0); i < 64; i++ {
					img[i] = mem.LoadU64(base.Add(i * 8))
				}
				for _, m := range []int{acked, acked + 1} {
					if m > txs {
						continue
					}
					if img == applyTxs(m) {
						return nil
					}
				}
				return fmt.Errorf("post-recovery image matches neither %d nor %d applied txs (torn undo apply not rolled back exactly?)", acked, acked+1)
			},
		}, nil
	}

	rep, err := crashpoint.Explore(workload, crashpoint.Options{
		Schedule: crashpoint.TestSchedule(testing.Short(), 32),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		for _, f := range rep.Failures {
			t.Errorf("%v", f)
		}
		t.Fatalf("undo-path visibility oracle failed at %d of %d crash points (%s)",
			len(rep.Failures), rep.Points, rep)
	}
	t.Logf("undo: %s", rep)
}
