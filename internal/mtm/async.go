package mtm

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/pmem"
	"repro/internal/rawl"
	"repro/internal/telemetry"
)

// truncJob asks the log manager to make one committed transaction's
// in-place data durable and then truncate its log through pos.
type truncJob struct {
	t     *Thread
	pos   rawl.Pos
	lines []pmem.Addr
}

// logManager is the separate thread of §5: "A separate log manager thread
// consumes the log and forces values out to memory before truncating the
// log." Moving the flushes and the truncation fence off the commit path is
// the asynchronous-truncation optimization measured in Figure 6.
type logManager struct {
	tm      *TM
	jobs    chan []truncJob
	quit    chan struct{}
	halted  atomic.Bool
	pending atomic.Int64
	wg      sync.WaitGroup
}

func newLogManager(tm *TM) *logManager {
	m := &logManager{tm: tm, jobs: make(chan []truncJob, 4096), quit: make(chan struct{})}
	m.wg.Add(1)
	go m.run()
	return m
}

func (m *logManager) run() {
	defer m.wg.Done()
	mem := m.tm.rt.NewMemory()
	for {
		select {
		case <-m.quit:
			return
		case batch, ok := <-m.jobs:
			if !ok {
				return
			}
			// Opportunistic coalescing: fold whatever else is already
			// queued into this round, amortizing the two fences below.
			// Batches are appended whole, never split — a group-commit
			// epoch's jobs must truncate under one fence pair, or a
			// crash could observe part of an epoch truncated while
			// another member's in-place data is still volatile.
			for len(batch) < 256 {
				select {
				case more, ok := <-m.jobs:
					if !ok {
						m.process(mem, batch)
						return
					}
					batch = append(batch, more...)
					continue
				default:
				}
				break
			}
			m.process(mem, batch)
		}
	}
}

// process makes every job's in-place data durable under one fence, then
// truncates all their logs with deferred head updates covered by a
// single trailing fence (freed log space must not be reused before the
// new heads are durable).
func (m *logManager) process(mem pmem.Memory, batch []truncJob) {
	sp := telemetry.SpanBegin(telemetry.PhaseAsyncTrunc, 0, 0)
	defer sp.End()
	for _, job := range batch {
		for _, line := range job.lines {
			mem.Flush(line)
		}
	}
	mem.Fence()
	telemetry.CountPhaseFence(telemetry.PhaseAsyncTrunc)
	// The data is durable; the redo records up to each pos are no
	// longer needed.
	for _, job := range batch {
		job.t.log.TruncateToDeferred(mem, job.pos)
	}
	mem.Fence()
	telemetry.CountPhaseFence(telemetry.PhaseAsyncTrunc)
	for _, job := range batch {
		job.t.pendingTrunc.Add(-1)
		m.pending.Add(-1)
	}
}

// halt stops the manager goroutine without draining queued jobs, leaving
// committed-but-unflushed transactions in the logs.
func (m *logManager) halt() {
	if !m.halted.CompareAndSwap(false, true) {
		return
	}
	close(m.quit)
	m.wg.Wait()
}

// isHalted reports whether halt stopped the manager; Thread.Close uses it
// to stop waiting for truncation jobs that will never run.
func (m *logManager) isHalted() bool { return m.halted.Load() }

// submit enqueues a job; it blocks when the manager is far behind, which
// is the backpressure the paper notes: "program threads may stall until
// there is free log space."
func (m *logManager) submit(job truncJob) {
	m.submitBatch([]truncJob{job})
}

// submitBatch enqueues a group of jobs that must truncate together under
// one fence pair (a group-commit epoch). The batch travels as a single
// channel element, so the manager can never split it.
func (m *logManager) submitBatch(batch []truncJob) {
	for _, job := range batch {
		job.t.pendingTrunc.Add(1)
	}
	m.pending.Add(int64(len(batch)))
	m.jobs <- batch
}

// drain waits until every submitted job has completed.
func (m *logManager) drain() {
	for !m.halted.Load() && m.pending.Load() > 0 {
		runtime.Gosched()
	}
}

func (m *logManager) stop() {
	if m.halted.Load() {
		return
	}
	m.drain()
	close(m.jobs)
	m.wg.Wait()
}
