package mtm

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pheap"
	"repro/internal/pmem"
	"repro/internal/region"
	"repro/internal/scm"
)

type env struct {
	dev  *scm.Device
	rt   *region.Runtime
	dir  string
	tm   *TM
	mem  *region.Mem
	data pmem.Addr // a 1 MB data region for test payloads
}

func newEnv(t *testing.T, cfg Config) *env {
	t.Helper()
	dev, err := scm.Open(scm.Config{Size: 64 << 20, Mode: scm.DelayOff})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	rt, err := region.Open(dev, region.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	dataPtr, _, err := rt.Static("mtmtest.data", 8)
	if err != nil {
		t.Fatal(err)
	}
	data, err := rt.PMapAt(dataPtr, 1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := Open(rt, "test", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &env{dev: dev, rt: rt, dir: dir, tm: tm, mem: rt.NewMemory(), data: data}
}

// reopen simulates a restart after a crash: the runtime and TM are rebuilt
// over the crashed device, running recovery.
func (e *env) reopen(t *testing.T, policy scm.CrashPolicy, cfg Config) {
	t.Helper()
	e.tm.Close()
	e.dev.Crash(policy)
	if err := e.rt.Close(); err != nil {
		t.Fatal(err)
	}
	rt, err := region.Open(e.dev, region.Config{Dir: e.dir})
	if err != nil {
		t.Fatal(err)
	}
	e.rt = rt
	e.mem = rt.NewMemory()
	dataPtr, _, err := rt.Static("mtmtest.data", 8)
	if err != nil {
		t.Fatal(err)
	}
	e.data = pmem.Addr(e.mem.LoadU64(dataPtr))
	tm, err := Open(rt, "test", cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.tm = tm
}

func TestAtomicCommitDurable(t *testing.T) {
	e := newEnv(t, Config{})
	th, err := e.tm.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	err = th.Atomic(func(tx *Tx) error {
		tx.StoreU64(e.data, 42)
		tx.StoreU64(e.data.Add(8), 43)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Committed data survives the worst crash: sync truncation flushed
	// it before commit returned.
	e.dev.Crash(scm.DropAll{})
	if got := e.mem.LoadU64(e.data); got != 42 {
		t.Fatalf("word0 = %d", got)
	}
	if got := e.mem.LoadU64(e.data.Add(8)); got != 43 {
		t.Fatalf("word1 = %d", got)
	}
}

func TestUserErrorAborts(t *testing.T) {
	e := newEnv(t, Config{})
	th, _ := e.tm.NewThread()
	boom := errors.New("boom")
	err := th.Atomic(func(tx *Tx) error {
		tx.StoreU64(e.data, 99)
		return boom
	})
	if err != boom {
		t.Fatalf("err = %v", err)
	}
	if got := e.mem.LoadU64(e.data); got != 0 {
		t.Fatalf("aborted write visible: %d", got)
	}
	// Locks must be released: a following transaction succeeds.
	if err := th.Atomic(func(tx *Tx) error {
		tx.StoreU64(e.data, 7)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := e.mem.LoadU64(e.data); got != 7 {
		t.Fatalf("post-abort commit = %d", got)
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	e := newEnv(t, Config{})
	th, _ := e.tm.NewThread()
	err := th.Atomic(func(tx *Tx) error {
		tx.StoreU64(e.data, 5)
		if got := tx.LoadU64(e.data); got != 5 {
			return fmt.Errorf("read own write = %d", got)
		}
		tx.StoreU64(e.data, 6)
		if got := tx.LoadU64(e.data); got != 6 {
			return fmt.Errorf("read second write = %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestByteGranularAccess(t *testing.T) {
	e := newEnv(t, Config{})
	th, _ := e.tm.NewThread()
	msg := []byte("durable transactional byte payload!")
	if err := th.Atomic(func(tx *Tx) error {
		tx.Store(e.data.Add(3), msg)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	e.dev.Crash(scm.DropAll{})
	got := make([]byte, len(msg))
	e.mem.Load(got, e.data.Add(3))
	if string(got) != string(msg) {
		t.Fatalf("payload = %q", got)
	}
	// Transactional read sees it too.
	if err := th.Atomic(func(tx *Tx) error {
		buf := make([]byte, len(msg))
		tx.Load(buf, e.data.Add(3))
		if string(buf) != string(msg) {
			return fmt.Errorf("tx read %q", buf)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestUncommittedInvisibleAfterCrash(t *testing.T) {
	// Drive a transaction manually (white box) and crash before commit:
	// nothing may survive, even with a KeepAll policy, because the redo
	// log was never flushed and memory never written.
	e := newEnv(t, Config{})
	th, _ := e.tm.NewThread()
	tx := &th.tx
	tx.begin()
	tx.write(e.data, 1234)
	e.dev.Crash(scm.KeepAll{})
	e.reopen(t, scm.KeepAll{}, Config{})
	if got := e.mem.LoadU64(e.data); got != 0 {
		t.Fatalf("uncommitted write visible after crash: %d", got)
	}
}

func TestAsyncRecoveryReplaysCommitted(t *testing.T) {
	// Async truncation: commit returns before data lines are flushed.
	// Crash with DropAll before the manager drains: the data writes are
	// lost, but the flushed redo log replays them at recovery.
	e := newEnv(t, Config{AsyncTruncation: true})
	// Stall the manager so jobs stay pending.
	e.tm.mgr.stop()
	e.tm.mgr = newBlockedManager(e.tm)

	th, _ := e.tm.NewThread()
	for i := int64(0); i < 10; i++ {
		if err := th.Atomic(func(tx *Tx) error {
			tx.StoreU64(e.data.Add(i*8), uint64(i)+100)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	e.tm.mgr = nil // prevent Close from draining the blocked manager
	e.reopen(t, scm.DropAll{}, Config{AsyncTruncation: true})
	if e.tm.Recovery().Replayed != 10 {
		t.Fatalf("replayed %d transactions, want 10", e.tm.Recovery().Replayed)
	}
	for i := int64(0); i < 10; i++ {
		if got := e.mem.LoadU64(e.data.Add(i * 8)); got != uint64(i)+100 {
			t.Fatalf("word %d = %d after replay", i, got)
		}
	}
}

// newBlockedManager returns a manager whose goroutine never processes
// jobs, keeping logs full of committed records.
func newBlockedManager(tm *TM) *logManager {
	m := &logManager{tm: tm, jobs: make(chan []truncJob, 4096)}
	// no goroutine: jobs pile up
	return m
}

func TestAsyncDrainTruncates(t *testing.T) {
	e := newEnv(t, Config{AsyncTruncation: true})
	th, _ := e.tm.NewThread()
	for i := int64(0); i < 50; i++ {
		if err := th.Atomic(func(tx *Tx) error {
			tx.StoreU64(e.data.Add(i*8), uint64(i)^0xbeef)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	e.tm.Drain()
	e.reopen(t, scm.DropAll{}, Config{AsyncTruncation: true})
	if e.tm.Recovery().Replayed != 0 {
		t.Fatalf("replayed %d after drain, want 0", e.tm.Recovery().Replayed)
	}
	for i := int64(0); i < 50; i++ {
		if got := e.mem.LoadU64(e.data.Add(i * 8)); got != uint64(i)^0xbeef {
			t.Fatalf("word %d = %d", i, got)
		}
	}
}

func TestConcurrentCounterIncrements(t *testing.T) {
	e := newEnv(t, Config{})
	const workers = 4
	const perWorker = 500
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th, err := e.tm.NewThread()
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < perWorker; i++ {
				if err := th.Atomic(func(tx *Tx) error {
					tx.StoreU64(e.data, tx.LoadU64(e.data)+1)
					return nil
				}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := e.mem.LoadU64(e.data); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	s := e.tm.Snapshot()
	if s.Commits != workers*perWorker {
		t.Fatalf("commits = %d", s.Commits)
	}
}

func TestIsolationPreservesInvariant(t *testing.T) {
	// Bank transfer: concurrent random transfers between 8 accounts
	// must preserve the total.
	e := newEnv(t, Config{})
	const accounts = 8
	const total = 8000
	mem := e.rt.NewMemory()
	for i := int64(0); i < accounts; i++ {
		pmem.StoreDurable(mem, e.data.Add(i*8), total/accounts)
	}
	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th, err := e.tm.NewThread()
			if err != nil {
				errs <- err
				return
			}
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 400; i++ {
				from := int64(rng.Intn(accounts))
				to := int64(rng.Intn(accounts))
				amt := uint64(rng.Intn(10))
				err := th.Atomic(func(tx *Tx) error {
					f := tx.LoadU64(e.data.Add(from * 8))
					if f < amt {
						return nil // commit read-only
					}
					tx.StoreU64(e.data.Add(from*8), f-amt)
					tx.StoreU64(e.data.Add(to*8), tx.LoadU64(e.data.Add(to*8))+amt)
					return nil
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	var sum uint64
	for i := int64(0); i < accounts; i++ {
		sum += e.mem.LoadU64(e.data.Add(i * 8))
	}
	if sum != total {
		t.Fatalf("sum = %d, want %d", sum, total)
	}
}

func TestCrashStressRandomUpdates(t *testing.T) {
	// §6.2: "we wrote a crash stress program, which uses transactions to
	// perform random updates to memory using a known seed. We verified
	// that after a crash, memory contains the correct random values."
	for seed := int64(1); seed <= 10; seed++ {
		e := newEnv(t, Config{})
		th, _ := e.tm.NewThread()
		rng := rand.New(rand.NewSource(seed))
		expect := map[int64]uint64{}
		for i := 0; i < 100; i++ {
			n := 1 + rng.Intn(8)
			writes := make(map[int64]uint64, n)
			for j := 0; j < n; j++ {
				off := int64(rng.Intn(1024)) * 8
				writes[off] = rng.Uint64()
			}
			if err := th.Atomic(func(tx *Tx) error {
				for off, v := range writes {
					tx.StoreU64(e.data.Add(off), v)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			for off, v := range writes {
				expect[off] = v
			}
		}
		e.reopen(t, scm.NewRandomPolicy(seed), Config{})
		for off, v := range expect {
			if got := e.mem.LoadU64(e.data.Add(off)); got != v {
				t.Fatalf("seed %d: word at %d = %#x, want %#x", seed, off, got, v)
			}
		}
	}
}

func TestLargeTransactionSpansLogWraps(t *testing.T) {
	// A transaction larger than remaining log space triggers the
	// full-log handling; repeated large transactions wrap the log.
	e := newEnv(t, Config{LogWords: 1024})
	th, _ := e.tm.NewThread()
	for round := 0; round < 20; round++ {
		if err := th.Atomic(func(tx *Tx) error {
			for i := int64(0); i < 100; i++ {
				tx.StoreU64(e.data.Add(i*8), uint64(round*1000)+uint64(i))
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 100; i++ {
		if got := e.mem.LoadU64(e.data.Add(i * 8)); got != uint64(19*1000)+uint64(i) {
			t.Fatalf("word %d = %d", i, got)
		}
	}
}

func TestTooManyThreads(t *testing.T) {
	e := newEnv(t, Config{Slots: 2})
	if _, err := e.tm.NewThread(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.tm.NewThread(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.tm.NewThread(); err != ErrTooManyThreads {
		t.Fatalf("third thread: %v", err)
	}
}

func TestPMallocCommitAndAbort(t *testing.T) {
	e := newEnv(t, Config{})
	heapBase, err := e.rt.PMap(8<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := pheap.Format(e.rt, heapBase, 8<<20, pheap.Config{Lanes: 2})
	if err != nil {
		t.Fatal(err)
	}
	e.tm.cfg.Heap = heap

	th, err := e.tm.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	ptr := e.data // use a data word as the persistent pointer

	// Abort: allocation must be freed and pointer unset.
	boom := errors.New("boom")
	if err := th.Atomic(func(tx *Tx) error {
		if _, err := tx.PMalloc(64, ptr); err != nil {
			return err
		}
		return boom
	}); err != boom {
		t.Fatal(err)
	}
	if got := e.mem.LoadU64(ptr); got != 0 {
		t.Fatalf("aborted alloc pointer = %#x", got)
	}
	free0 := heap.Stats().FreeSuperblocks

	// Commit: block usable and durable.
	var block pmem.Addr
	if err := th.Atomic(func(tx *Tx) error {
		b, err := tx.PMalloc(64, ptr)
		if err != nil {
			return err
		}
		block = b
		tx.StoreU64(b, 777)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := pmem.Addr(e.mem.LoadU64(ptr)); got != block {
		t.Fatalf("ptr = %v, want %v", got, block)
	}
	if got := e.mem.LoadU64(block); got != 777 {
		t.Fatalf("block payload = %d", got)
	}

	// Transactional free: pointer nullified, block released.
	if err := th.Atomic(func(tx *Tx) error { return tx.PFree(ptr) }); err != nil {
		t.Fatal(err)
	}
	if got := e.mem.LoadU64(ptr); got != 0 {
		t.Fatalf("freed pointer = %#x", got)
	}
	_ = free0
	// Aborted PFree leaves the block allocated.
	if err := th.Atomic(func(tx *Tx) error {
		if _, err := tx.PMalloc(64, ptr); err != nil {
			return err
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := th.Atomic(func(tx *Tx) error {
		if err := tx.PFree(ptr); err != nil {
			return err
		}
		return boom
	}); err != boom {
		t.Fatal(err)
	}
	if got := e.mem.LoadU64(ptr); got == 0 {
		t.Fatal("aborted pfree nullified the pointer")
	}
}

func TestUndoLoggingBasic(t *testing.T) {
	e := newEnv(t, Config{UndoLogging: true})
	th, _ := e.tm.NewThread()
	if err := th.Atomic(func(tx *Tx) error {
		tx.StoreU64(e.data, 11)
		if got := tx.LoadU64(e.data); got != 11 {
			return fmt.Errorf("read own undo write = %d", got)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	e.dev.Crash(scm.DropAll{})
	if got := e.mem.LoadU64(e.data); got != 11 {
		t.Fatalf("committed undo tx lost: %d", got)
	}
}

func TestUndoLoggingAbortRestores(t *testing.T) {
	e := newEnv(t, Config{UndoLogging: true})
	th, _ := e.tm.NewThread()
	if err := th.Atomic(func(tx *Tx) error {
		tx.StoreU64(e.data, 50)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if err := th.Atomic(func(tx *Tx) error {
		tx.StoreU64(e.data, 60)
		return boom
	}); err != boom {
		t.Fatal(err)
	}
	if got := e.mem.LoadU64(e.data); got != 50 {
		t.Fatalf("abort did not restore: %d", got)
	}
}

func TestUndoLoggingCrashRollsBack(t *testing.T) {
	// Drive an undo transaction half-way, then crash with KeepAll: the
	// in-place (uncommitted) writes are persistent, and recovery must
	// roll them back from the undo log.
	e := newEnv(t, Config{UndoLogging: true})
	th, _ := e.tm.NewThread()
	if err := th.Atomic(func(tx *Tx) error {
		tx.StoreU64(e.data, 50)
		tx.StoreU64(e.data.Add(8), 51)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	tx := &th.tx
	tx.begin()
	tx.write(e.data, 99)
	tx.write(e.data.Add(8), 98)
	// Flush the in-place writes so they are durable, then crash.
	e.mem.Flush(e.data)
	e.mem.Fence()
	e.reopen(t, scm.KeepAll{}, Config{UndoLogging: true})
	if e.tm.Recovery().Undone != 1 {
		t.Fatalf("undone = %d, want 1", e.tm.Recovery().Undone)
	}
	if got := e.mem.LoadU64(e.data); got != 50 {
		t.Fatalf("word0 = %d after undo, want 50", got)
	}
	if got := e.mem.LoadU64(e.data.Add(8)); got != 51 {
		t.Fatalf("word1 = %d after undo, want 51", got)
	}
}

func TestWriteThroughWritebackMode(t *testing.T) {
	e := newEnv(t, Config{WriteThroughWriteback: true})
	th, _ := e.tm.NewThread()
	if err := th.Atomic(func(tx *Tx) error {
		tx.StoreU64(e.data, 314)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	e.dev.Crash(scm.DropAll{})
	if got := e.mem.LoadU64(e.data); got != 314 {
		t.Fatalf("WT writeback lost: %d", got)
	}
}

func TestRecoveryReplayOrderAcrossThreads(t *testing.T) {
	// Two threads write the same word in locked (conflict) order; with a
	// blocked manager nothing truncates, so both records survive the
	// crash and replay must apply them in timestamp order.
	e := newEnv(t, Config{AsyncTruncation: true})
	e.tm.mgr.stop()
	e.tm.mgr = newBlockedManager(e.tm)
	t1, _ := e.tm.NewThread()
	t2, _ := e.tm.NewThread()
	if err := t1.Atomic(func(tx *Tx) error { tx.StoreU64(e.data, 1); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := t2.Atomic(func(tx *Tx) error { tx.StoreU64(e.data, 2); return nil }); err != nil {
		t.Fatal(err)
	}
	e.tm.mgr = nil
	e.reopen(t, scm.DropAll{}, Config{AsyncTruncation: true})
	if e.tm.Recovery().Replayed != 2 {
		t.Fatalf("replayed = %d", e.tm.Recovery().Replayed)
	}
	if got := e.mem.LoadU64(e.data); got != 2 {
		t.Fatalf("final value = %d, want 2 (last committed)", got)
	}
}

func TestConfigValidation(t *testing.T) {
	e := newEnv(t, Config{})
	_ = e
	dev, _ := scm.Open(scm.Config{Size: 16 << 20, Mode: scm.DelayOff})
	rt, err := region.Open(dev, region.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(rt, "bad", Config{UndoLogging: true, AsyncTruncation: true}); err == nil {
		t.Fatal("undo+async should be rejected")
	}
	if _, err := Open(rt, "bad2", Config{Slots: 100000}); err == nil {
		t.Fatal("huge slots should be rejected")
	}
}

func TestReopenRejectsMismatchedGeometry(t *testing.T) {
	e := newEnv(t, Config{Slots: 4, LogWords: 1024})
	e.tm.Close()
	if err := e.rt.Close(); err != nil {
		t.Fatal(err)
	}
	rt, err := region.Open(e.dev, region.Config{Dir: e.dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(rt, "test", Config{Slots: 8, LogWords: 1024}); err == nil {
		t.Fatal("expected geometry mismatch error")
	}
}
