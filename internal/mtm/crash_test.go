package mtm

import (
	"fmt"
	"testing"

	"repro/internal/crashpoint"
	"repro/internal/pmem"
	"repro/internal/region"
	"repro/internal/scm"
)

// txWrites returns the deterministic word updates of transaction i over a
// 64-word array: a handful of (index, value) pairs, deliberately
// overlapping between transactions so stale write-back is visible.
func txWrites(i int) map[int64]uint64 {
	w := map[int64]uint64{}
	for j := 0; j < 3+i%3; j++ {
		idx := int64((i*7 + j*13) % 64)
		w[idx] = uint64(i+1)*1_000_000 + uint64(j)
	}
	return w
}

// applyTxs folds the first m transactions into the expected array image.
func applyTxs(m int) [64]uint64 {
	var img [64]uint64
	for i := 0; i < m; i++ {
		for idx, v := range txWrites(i) {
			img[idx] = v
		}
	}
	return img
}

// TestCrashPointsMTM explores every crash point of a transactional
// workload and checks the paper's §5 contract: after recovery the data
// region equals the result of applying exactly the first m transactions,
// where m is the acknowledged commit count or one more (the commit whose
// durability point the crash straddled). Anything else — a torn
// transaction, stale redo replay, a lost acknowledged commit — fails.
func TestCrashPointsMTM(t *testing.T) {
	const txs = 8
	workload := func() (*crashpoint.Run, error) {
		dev, err := scm.Open(scm.Config{Size: 4 << 20, Mode: scm.DelayOff})
		if err != nil {
			return nil, err
		}
		dir := t.TempDir()
		acked := 0

		openAll := func() (*region.Runtime, *TM, pmem.Addr, error) {
			rt, err := region.Open(dev, region.Config{Dir: dir, StaticSize: 64 << 10})
			if err != nil {
				return nil, nil, pmem.Nil, err
			}
			tm, err := Open(rt, "crash", Config{Slots: 2, LogWords: 256})
			if err != nil {
				rt.Close()
				return nil, nil, pmem.Nil, err
			}
			ptr, _, err := rt.Static("mtm.crash.data", 8)
			if err != nil {
				rt.Close()
				return nil, nil, pmem.Nil, err
			}
			mem := rt.NewMemory()
			base := pmem.Addr(mem.LoadU64(ptr))
			if base == pmem.Nil {
				base, err = rt.PMapAt(ptr, scm.PageSize, 0)
				if err != nil {
					rt.Close()
					return nil, nil, pmem.Nil, err
				}
			}
			return rt, tm, base, nil
		}

		return &crashpoint.Run{
			Dev: dev,
			Body: func() error {
				_, tm, base, err := openAll()
				if err != nil {
					return err
				}
				th, err := tm.NewThread()
				if err != nil {
					return err
				}
				for i := 0; i < txs; i++ {
					writes := txWrites(i)
					// Map iteration order is random; apply in sorted
					// index order to keep the event sequence identical
					// across replays.
					idxs := make([]int64, 0, len(writes))
					for idx := range writes {
						idxs = append(idxs, idx)
					}
					for a := 1; a < len(idxs); a++ {
						for b := a; b > 0 && idxs[b] < idxs[b-1]; b-- {
							idxs[b], idxs[b-1] = idxs[b-1], idxs[b]
						}
					}
					err := th.Atomic(func(tx *Tx) error {
						for _, idx := range idxs {
							tx.StoreU64(base.Add(idx*8), writes[idx])
						}
						return nil
					})
					if err != nil {
						return err
					}
					acked = i + 1
				}
				return nil
			},
			Check: func() error {
				rt, tm, base, err := openAll()
				if err != nil {
					return fmt.Errorf("stack not reopenable after %d acked txs: %w", acked, err)
				}
				defer rt.Close()
				defer tm.Close()
				if base == pmem.Nil {
					if acked > 0 {
						return fmt.Errorf("data region lost after %d acked txs", acked)
					}
					return nil
				}
				mem := rt.NewMemory()
				var img [64]uint64
				for i := int64(0); i < 64; i++ {
					img[i] = mem.LoadU64(base.Add(i * 8))
				}
				for _, m := range []int{acked, acked + 1} {
					if m > txs {
						continue
					}
					if img == applyTxs(m) {
						return nil
					}
				}
				return fmt.Errorf("post-recovery image matches neither %d nor %d applied txs", acked, acked+1)
			},
		}, nil
	}

	rep, err := crashpoint.Explore(workload, crashpoint.Options{
		Schedule: crashpoint.TestSchedule(testing.Short(), 32),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		for _, f := range rep.Failures {
			t.Errorf("%v", f)
		}
		t.Fatalf("mtm visibility oracle failed at %d of %d crash points (%s)",
			len(rep.Failures), rep.Points, rep)
	}
	t.Logf("mtm: %s", rep)
}
