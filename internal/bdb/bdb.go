// Package bdb implements a Berkeley-DB-like transactional storage manager
// over a PCM-disk: the baseline the paper's microbenchmarks compare
// Mnemosyne against (Figures 4, 5, 7 and the OpenLDAP rows of Table 4).
//
// The implementation reproduces the architectural properties that shape
// the paper's results, rather than BDB's code:
//
//   - A page-based hash table (8 KB pages, overflow chaining) cached in a
//     volatile buffer pool; dirty pages reach the disk only at
//     checkpoints, amortizing large sequential writes.
//
//   - A centralized write-ahead log buffer with group commit. Every
//     committing thread funnels through the log mutex and the single
//     flusher, which is why "Berkeley DB does not scale beyond 2 threads
//     ... due to contention on the centralized log buffer, which becomes
//     the serialization bottleneck as I/O latency becomes shorter", and
//     why 2-thread throughput gains come "at the cost of increasing write
//     latency, possibly due to group commit."
//
//   - fsync-per-commit durability in transactional mode (back-bdb), or
//     no per-operation durability with explicit periodic flushes
//     (back-ldbm style, Config.SyncCommit=false).
//
// Recovery scans the log from the last checkpoint and reapplies logical
// records; records are checksummed, so torn block writes at a crash
// truncate the log cleanly.
package bdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"repro/internal/pcmdisk"
)

// PageSize is the storage page size (BDB's default).
const PageSize = 8192

const (
	opPut    = 1
	opDelete = 2

	logHdrSize  = pcmdisk.BlockSize // checkpoint header block
	recHdrSize  = 4 + 4 + 1 + 8 + 4 // len, cksum, op, key, vlen
	pageHdrSize = 8                 // next(4) nent(4)
)

// ErrNotFound reports a missing key.
var ErrNotFound = errors.New("bdb: key not found")

// Config tunes the store.
type Config struct {
	// Buckets is the hash directory size (default 1024).
	Buckets int
	// LogLimit triggers a checkpoint when the log grows past it
	// (default 4 MB).
	LogLimit int64
	// SyncCommit selects transactional durability: every update
	// flushes the log before returning (back-bdb). False gives
	// back-ldbm behaviour: updates are volatile until Flush.
	SyncCommit bool
	// DataCapacity / LogCapacity size the on-disk files.
	DataCapacity int64
	LogCapacity  int64
}

func (c *Config) fill() {
	if c.Buckets == 0 {
		c.Buckets = 1024
	}
	if c.LogLimit == 0 {
		c.LogLimit = 4 << 20
	}
	if c.DataCapacity == 0 {
		c.DataCapacity = 64 << 20
	}
	if c.LogCapacity == 0 {
		c.LogCapacity = c.LogLimit + (8 << 20)
	}
}

type entry struct {
	key uint64
	val []byte
}

type page struct {
	next uint32 // overflow page number, 0 = none
	ents []entry
}

func (p *page) bytesUsed() int {
	n := pageHdrSize
	for _, e := range p.ents {
		n += 12 + len(e.val)
	}
	return n
}

// DB is the storage manager.
type DB struct {
	cfg  Config
	disk *pcmdisk.Disk
	data *pcmdisk.File
	wlog *pcmdisk.File

	// stw stops operations during checkpoints.
	stw      sync.RWMutex
	bucketMu [64]sync.Mutex

	cacheMu  sync.Mutex
	pages    map[uint32]*page
	dirty    map[uint32]bool
	nextPage uint32

	wal walState

	ckptGen uint64
}

type walState struct {
	mu       sync.Mutex
	cond     *sync.Cond
	buf      []byte // unflushed records
	nextLSN  int64  // bytes appended since checkpoint
	flushed  int64  // bytes flushed since checkpoint
	flushing bool
	groupers int64 // commits served by others' flushes (stats)
}

// Stats reports internals for tests and benchmarks.
type Stats struct {
	Checkpoints  uint64
	LogBytes     int64
	GroupCommits int64
}

// Open creates or recovers a database on the disk.
func Open(disk *pcmdisk.Disk, cfg Config) (*DB, error) {
	cfg.fill()
	db := &DB{
		cfg:   cfg,
		disk:  disk,
		pages: make(map[uint32]*page),
		dirty: make(map[uint32]bool),
	}
	db.wal.cond = sync.NewCond(&db.wal.mu)
	var err error
	db.data, err = disk.CreateFile("bdb.data", cfg.DataCapacity)
	if err != nil {
		return nil, err
	}
	db.wlog, err = disk.CreateFile("bdb.log", cfg.LogCapacity)
	if err != nil {
		return nil, err
	}
	if err := db.recover(); err != nil {
		return nil, err
	}
	return db, nil
}

// recover reads the checkpoint header and replays the log's logical
// records through the normal (unlogged) update path.
func (db *DB) recover() error {
	hdr := make([]byte, 24)
	if err := db.wlog.ReadAt(hdr, 0); err != nil {
		return err
	}
	magic := binary.LittleEndian.Uint64(hdr)
	if magic != 0x4d4e424442303031 { // "MNBDB001": fresh database
		db.nextPage = uint32(db.cfg.Buckets) + 1
		return db.checkpoint()
	}
	db.ckptGen = binary.LittleEndian.Uint64(hdr[8:])
	db.nextPage = uint32(binary.LittleEndian.Uint64(hdr[16:]))

	// Scan log records after the header until a bad checksum.
	off := int64(logHdrSize)
	recHdr := make([]byte, 8)
	replayed := 0
	for off+8 <= db.cfg.LogCapacity {
		if err := db.wlog.ReadAt(recHdr, off); err != nil {
			break
		}
		n := int64(binary.LittleEndian.Uint32(recHdr))
		want := binary.LittleEndian.Uint32(recHdr[4:])
		if n < recHdrSize || off+n > db.cfg.LogCapacity {
			break
		}
		body := make([]byte, n-8)
		if err := db.wlog.ReadAt(body, off+8); err != nil {
			break
		}
		if crc32.ChecksumIEEE(body) != want {
			break
		}
		op := body[0]
		key := binary.LittleEndian.Uint64(body[1:])
		vlen := binary.LittleEndian.Uint32(body[9:])
		switch op {
		case opPut:
			if int(vlen) != len(body)-13 {
				return fmt.Errorf("bdb: corrupt put record at %d", off)
			}
			val := make([]byte, vlen)
			copy(val, body[13:])
			db.applyPut(key, val)
		case opDelete:
			db.applyDelete(key)
		default:
			return fmt.Errorf("bdb: unknown op %d at %d", op, off)
		}
		replayed++
		off += n
	}
	// Reset to a clean checkpoint so the log restarts.
	return db.checkpoint()
}

// headPage maps a key's bucket to its head page. Page 0 is reserved
// (page number 0 doubles as the nil overflow link), so bucket b lives at
// page b+1.
func (db *DB) headPage(key uint64) uint32 { return db.bucketFor(key) + 1 }

func (db *DB) bucketFor(key uint64) uint32 {
	h := key
	h += 0x9E3779B97F4A7C15
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	h ^= h >> 31
	return uint32(h % uint64(db.cfg.Buckets))
}

// getPage loads a page into the buffer pool.
func (db *DB) getPage(no uint32) (*page, error) {
	db.cacheMu.Lock()
	if p, ok := db.pages[no]; ok {
		db.cacheMu.Unlock()
		return p, nil
	}
	db.cacheMu.Unlock()

	buf := make([]byte, PageSize)
	if err := db.data.ReadAt(buf, int64(no)*PageSize); err != nil {
		return nil, err
	}
	p := &page{next: binary.LittleEndian.Uint32(buf)}
	nent := binary.LittleEndian.Uint32(buf[4:])
	off := pageHdrSize
	for i := uint32(0); i < nent && off+12 <= PageSize; i++ {
		key := binary.LittleEndian.Uint64(buf[off:])
		vlen := int(binary.LittleEndian.Uint32(buf[off+8:]))
		if off+12+vlen > PageSize {
			return nil, fmt.Errorf("bdb: corrupt page %d", no)
		}
		val := make([]byte, vlen)
		copy(val, buf[off+12:])
		p.ents = append(p.ents, entry{key: key, val: val})
		off += 12 + vlen
	}
	db.cacheMu.Lock()
	if q, ok := db.pages[no]; ok {
		db.cacheMu.Unlock()
		return q, nil
	}
	db.pages[no] = p
	db.cacheMu.Unlock()
	return p, nil
}

func (db *DB) markDirty(no uint32) {
	db.cacheMu.Lock()
	db.dirty[no] = true
	db.cacheMu.Unlock()
}

// applyPut updates the page chain for key's bucket (no logging; caller
// holds the bucket latch or is single-threaded recovery).
func (db *DB) applyPut(key uint64, val []byte) {
	if pageHdrSize+12+len(val) > PageSize {
		panic(fmt.Sprintf("bdb: value of %d bytes exceeds page capacity", len(val)))
	}
	no := db.headPage(key)
	for {
		p, err := db.getPage(no)
		if err != nil {
			panic(err)
		}
		for i := range p.ents {
			if p.ents[i].key == key {
				if p.bytesUsed()-len(p.ents[i].val)+len(val) <= PageSize {
					p.ents[i].val = val
					db.markDirty(no)
					return
				}
				// The replacement does not fit this page: remove
				// and reinsert down the chain.
				p.ents = append(p.ents[:i], p.ents[i+1:]...)
				db.markDirty(no)
				db.applyPut(key, val)
				return
			}
		}
		if p.next != 0 {
			no = p.next
			continue
		}
		// Tail page: insert here or grow an overflow page.
		if p.bytesUsed()+12+len(val) <= PageSize {
			p.ents = append(p.ents, entry{key: key, val: val})
			db.markDirty(no)
			return
		}
		db.cacheMu.Lock()
		newNo := db.nextPage
		db.nextPage++
		db.pages[newNo] = &page{}
		db.dirty[newNo] = true
		db.cacheMu.Unlock()
		p.next = newNo
		db.markDirty(no)
		no = newNo
	}
}

// applyDelete removes key from its bucket chain; reports whether found.
func (db *DB) applyDelete(key uint64) bool {
	no := db.headPage(key)
	for no != 0 {
		p, err := db.getPage(no)
		if err != nil {
			panic(err)
		}
		for i := range p.ents {
			if p.ents[i].key == key {
				p.ents = append(p.ents[:i], p.ents[i+1:]...)
				db.markDirty(no)
				return true
			}
		}
		no = p.next
	}
	return false
}

// record builds a WAL record for an operation.
func record(op byte, key uint64, val []byte) []byte {
	body := make([]byte, 13+len(val))
	body[0] = op
	binary.LittleEndian.PutUint64(body[1:], key)
	binary.LittleEndian.PutUint32(body[9:], uint32(len(val)))
	copy(body[13:], val)
	rec := make([]byte, 8+len(body))
	binary.LittleEndian.PutUint32(rec, uint32(len(rec)))
	binary.LittleEndian.PutUint32(rec[4:], crc32.ChecksumIEEE(body))
	copy(rec[8:], body)
	return rec
}

// logAppend adds a record to the central log buffer and returns its end
// LSN.
func (db *DB) logAppend(rec []byte) int64 {
	db.wal.mu.Lock()
	db.wal.buf = append(db.wal.buf, rec...)
	db.wal.nextLSN += int64(len(rec))
	lsn := db.wal.nextLSN
	db.wal.mu.Unlock()
	return lsn
}

// logWait implements group commit: block until lsn is durable, flushing
// (as leader) when nobody else is.
func (db *DB) logWait(lsn int64) {
	db.wal.mu.Lock()
	for db.wal.flushed < lsn {
		if db.wal.flushing {
			db.wal.groupers++
			db.wal.cond.Wait()
			continue
		}
		db.wal.flushing = true
		buf := db.wal.buf
		db.wal.buf = nil
		target := db.wal.nextLSN
		start := db.wal.flushed
		db.wal.mu.Unlock()

		if err := db.wlog.WriteAt(buf, logHdrSize+start); err != nil {
			panic(err)
		}
		db.wlog.Sync()

		db.wal.mu.Lock()
		db.wal.flushed = target
		db.wal.flushing = false
		db.wal.cond.Broadcast()
	}
	db.wal.mu.Unlock()
}

// Put stores val under key, durably when SyncCommit is set.
func (db *DB) Put(key uint64, val []byte) error {
	db.maybeCheckpoint()
	db.stw.RLock()
	mu := &db.bucketMu[db.bucketFor(key)%64]
	mu.Lock()
	v := make([]byte, len(val))
	copy(v, val)
	db.applyPut(key, v)
	var lsn int64
	if db.cfg.SyncCommit {
		lsn = db.logAppend(record(opPut, key, val))
	}
	mu.Unlock()
	if db.cfg.SyncCommit {
		db.logWait(lsn)
	}
	db.stw.RUnlock()
	return nil
}

// Delete removes key, durably when SyncCommit is set.
func (db *DB) Delete(key uint64) error {
	db.maybeCheckpoint()
	db.stw.RLock()
	mu := &db.bucketMu[db.bucketFor(key)%64]
	mu.Lock()
	found := db.applyDelete(key)
	var lsn int64
	if found && db.cfg.SyncCommit {
		lsn = db.logAppend(record(opDelete, key, nil))
	}
	mu.Unlock()
	if found && db.cfg.SyncCommit {
		db.logWait(lsn)
	}
	db.stw.RUnlock()
	if !found {
		return ErrNotFound
	}
	return nil
}

// Get returns a copy of key's value.
func (db *DB) Get(key uint64) ([]byte, error) {
	db.stw.RLock()
	defer db.stw.RUnlock()
	mu := &db.bucketMu[db.bucketFor(key)%64]
	mu.Lock()
	defer mu.Unlock()
	no := db.headPage(key)
	for no != 0 {
		p, err := db.getPage(no)
		if err != nil {
			return nil, err
		}
		for i := range p.ents {
			if p.ents[i].key == key {
				out := make([]byte, len(p.ents[i].val))
				copy(out, p.ents[i].val)
				return out, nil
			}
		}
		no = p.next
	}
	return nil, ErrNotFound
}

// maybeCheckpoint checkpoints when the log has grown past the limit.
func (db *DB) maybeCheckpoint() {
	db.wal.mu.Lock()
	full := db.wal.nextLSN > db.cfg.LogLimit
	db.wal.mu.Unlock()
	if !full {
		return
	}
	db.stw.Lock()
	defer db.stw.Unlock()
	db.wal.mu.Lock()
	full = db.wal.nextLSN > db.cfg.LogLimit
	db.wal.mu.Unlock()
	if full {
		if err := db.checkpoint(); err != nil {
			panic(err)
		}
	}
}

// checkpoint writes all dirty pages, then resets the log. Callers must
// exclude concurrent operations (stw or single-threaded).
func (db *DB) checkpoint() error {
	db.cacheMu.Lock()
	dirty := make([]uint32, 0, len(db.dirty))
	for no := range db.dirty {
		dirty = append(dirty, no)
	}
	db.dirty = make(map[uint32]bool)
	nextPage := db.nextPage
	db.cacheMu.Unlock()

	buf := make([]byte, PageSize)
	for _, no := range dirty {
		p := db.pages[no]
		for i := range buf {
			buf[i] = 0
		}
		binary.LittleEndian.PutUint32(buf, p.next)
		binary.LittleEndian.PutUint32(buf[4:], uint32(len(p.ents)))
		off := pageHdrSize
		for _, e := range p.ents {
			binary.LittleEndian.PutUint64(buf[off:], e.key)
			binary.LittleEndian.PutUint32(buf[off+8:], uint32(len(e.val)))
			copy(buf[off+12:], e.val)
			off += 12 + len(e.val)
		}
		if err := db.data.WriteAt(buf, int64(no)*PageSize); err != nil {
			return err
		}
	}
	db.data.Sync()

	db.ckptGen++
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint64(hdr, 0x4d4e424442303031)
	binary.LittleEndian.PutUint64(hdr[8:], db.ckptGen)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(nextPage))
	if err := db.wlog.WriteAt(hdr, 0); err != nil {
		return err
	}
	// Poison the first stale record header so old records cannot replay.
	var zero [8]byte
	if err := db.wlog.WriteAt(zero[:], logHdrSize); err != nil {
		return err
	}
	db.wlog.Sync()

	db.wal.mu.Lock()
	db.wal.buf = nil
	db.wal.nextLSN = 0
	db.wal.flushed = 0
	db.wal.mu.Unlock()
	return nil
}

// Flush makes all buffered updates durable (back-ldbm's periodic flush).
func (db *DB) Flush() error {
	db.stw.Lock()
	defer db.stw.Unlock()
	return db.checkpoint()
}

// Snapshot reports internals.
func (db *DB) Snapshot() Stats {
	db.wal.mu.Lock()
	defer db.wal.mu.Unlock()
	return Stats{Checkpoints: db.ckptGen, LogBytes: db.wal.nextLSN, GroupCommits: db.wal.groupers}
}
