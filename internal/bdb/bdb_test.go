package bdb

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pcmdisk"
)

func newDB(t *testing.T, cfg Config) (*pcmdisk.Disk, *DB) {
	t.Helper()
	disk := pcmdisk.Open(pcmdisk.Config{Size: 128 << 20})
	db, err := Open(disk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return disk, db
}

func TestPutGetDelete(t *testing.T) {
	_, db := newDB(t, Config{SyncCommit: true})
	if err := db.Put(1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := db.Put(2, []byte("two")); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get(1)
	if err != nil || string(v) != "one" {
		t.Fatalf("get = %q, %v", v, err)
	}
	if err := db.Delete(1); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get(1); err != ErrNotFound {
		t.Fatalf("get deleted = %v", err)
	}
	if err := db.Delete(1); err != ErrNotFound {
		t.Fatalf("double delete = %v", err)
	}
}

func TestReplaceValueSizes(t *testing.T) {
	_, db := newDB(t, Config{SyncCommit: true})
	if err := db.Put(5, []byte("small")); err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("B"), 4000)
	if err := db.Put(5, big); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get(5)
	if err != nil || !bytes.Equal(v, big) {
		t.Fatalf("replaced value wrong (%d bytes, %v)", len(v), err)
	}
}

func TestOverflowPages(t *testing.T) {
	// Few buckets + many large values forces overflow chains.
	_, db := newDB(t, Config{Buckets: 2, SyncCommit: false})
	val := bytes.Repeat([]byte("x"), 2000)
	for i := uint64(0); i < 100; i++ {
		if err := db.Put(i, val); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 100; i++ {
		v, err := db.Get(i)
		if err != nil || len(v) != 2000 {
			t.Fatalf("key %d: %d bytes, %v", i, len(v), err)
		}
	}
}

func TestSyncCommitSurvivesCrash(t *testing.T) {
	disk, db := newDB(t, Config{SyncCommit: true})
	for i := uint64(0); i < 200; i++ {
		if err := db.Put(i, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	disk.Crash(-1) // drop every unsynced block

	db2, err := Open(disk, Config{SyncCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 200; i++ {
		v, err := db2.Get(i)
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %d after crash: %q, %v", i, v, err)
		}
	}
}

func TestNoSyncLosesUnflushed(t *testing.T) {
	disk, db := newDB(t, Config{SyncCommit: false})
	if err := db.Put(1, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Put(2, []byte("volatile")); err != nil {
		t.Fatal(err)
	}
	disk.Crash(-1)
	db2, err := Open(disk, Config{SyncCommit: false})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := db2.Get(1); err != nil || string(v) != "durable" {
		t.Fatalf("flushed key lost: %q, %v", v, err)
	}
	if _, err := db2.Get(2); err != ErrNotFound {
		t.Fatalf("unflushed key survived: %v", err)
	}
}

func TestCheckpointTriggersAndRecovers(t *testing.T) {
	disk, db := newDB(t, Config{SyncCommit: true, LogLimit: 64 << 10})
	val := bytes.Repeat([]byte("c"), 1000)
	for i := uint64(0); i < 300; i++ { // ~300 KB of log: several checkpoints
		if err := db.Put(i%50, val); err != nil {
			t.Fatal(err)
		}
	}
	if db.Snapshot().Checkpoints < 2 {
		t.Fatalf("checkpoints = %d", db.Snapshot().Checkpoints)
	}
	disk.Crash(7)
	db2, err := Open(disk, Config{SyncCommit: true, LogLimit: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50; i++ {
		v, err := db2.Get(i)
		if err != nil || !bytes.Equal(v, val) {
			t.Fatalf("key %d after checkpointed crash: %v", i, err)
		}
	}
}

func TestConcurrentPutsScaleAndStayCorrect(t *testing.T) {
	_, db := newDB(t, Config{SyncCommit: true})
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 300; i++ {
				k := uint64(w)<<32 | uint64(i)
				v := make([]byte, 16+rng.Intn(100))
				if err := db.Put(k, v); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		for i := 0; i < 300; i++ {
			if _, err := db.Get(uint64(w)<<32 | uint64(i)); err != nil {
				t.Fatalf("worker %d key %d: %v", w, i, err)
			}
		}
	}
	if db.Snapshot().GroupCommits == 0 {
		t.Log("note: no group commits observed (low contention)")
	}
}

func TestModelCheck(t *testing.T) {
	_, db := newDB(t, Config{Buckets: 8, SyncCommit: true, LogLimit: 32 << 10})
	model := map[uint64][]byte{}
	rng := rand.New(rand.NewSource(77))
	for step := 0; step < 2000; step++ {
		k := uint64(rng.Intn(64))
		if rng.Intn(3) == 0 {
			err := db.Delete(k)
			if _, ok := model[k]; ok {
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				delete(model, k)
			} else if err != ErrNotFound {
				t.Fatalf("step %d: %v", step, err)
			}
		} else {
			v := make([]byte, rng.Intn(500))
			rng.Read(v)
			if err := db.Put(k, v); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			model[k] = v
		}
	}
	for k, v := range model {
		got, err := db.Get(k)
		if err != nil || !bytes.Equal(got, v) {
			t.Fatalf("key %d mismatch: %v", k, err)
		}
	}
}
