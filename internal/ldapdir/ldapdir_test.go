package ldapdir

import (
	"fmt"
	"testing"

	"repro/internal/mtm"
	"repro/internal/pcmdisk"
	"repro/internal/pheap"
	"repro/internal/pmem"
	"repro/internal/region"
	"repro/internal/scm"
)

func TestEntryEncodeDecode(t *testing.T) {
	e := TemplateEntry(42)
	e.Gen = 7
	buf := e.Encode()
	got, err := DecodeEntry(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.DN != e.DN || got.Gen != 7 {
		t.Fatalf("dn=%q gen=%d", got.DN, got.Gen)
	}
	if len(got.Attrs) != len(e.Attrs) {
		t.Fatalf("attrs = %d", len(got.Attrs))
	}
	if got.Get("uid")[0] != "user.42" {
		t.Fatalf("uid = %v", got.Get("uid"))
	}
	if got.Get("nonexistent") != nil {
		t.Fatal("ghost attribute")
	}
}

func TestDecodeGarbageRejected(t *testing.T) {
	for _, b := range [][]byte{nil, {1, 2}, make([]byte, 12)} {
		if _, err := DecodeEntry(b); err == nil && b != nil && len(b) < 10 {
			t.Fatalf("garbage %v accepted", b)
		}
	}
}

func TestTemplateEntriesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		dn := TemplateEntry(i).DN
		if seen[dn] {
			t.Fatalf("duplicate DN %q", dn)
		}
		seen[dn] = true
	}
}

func newMnemosyneBackend(t *testing.T, gen uint64) (*scm.Device, *region.Runtime, *MnemosyneBackend) {
	t.Helper()
	dev, err := scm.Open(scm.Config{Size: 256 << 20, Mode: scm.DelayOff})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := region.Open(dev, region.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := bootMnemosyne(rt, gen)
	if err != nil {
		t.Fatal(err)
	}
	return dev, rt, b
}

// bootMnemosyne builds heap+TM+backend over an open runtime, creating the
// heap region on first boot and reopening it afterwards.
func bootMnemosyne(rt *region.Runtime, gen uint64) (*MnemosyneBackend, error) {
	heapPtr, _, err := rt.Static("ldap.heap", 8)
	if err != nil {
		return nil, err
	}
	mem := rt.NewMemory()
	var heap *pheap.Heap
	if base := pmem.Addr(mem.LoadU64(heapPtr)); base == pmem.Nil {
		base, err := rt.PMapAt(heapPtr, 128<<20, 0)
		if err != nil {
			return nil, err
		}
		heap, err = pheap.Format(rt, base, 128<<20, pheap.Config{Lanes: 8})
		if err != nil {
			return nil, err
		}
	} else {
		heap, err = pheap.Open(rt, base)
		if err != nil {
			return nil, err
		}
	}
	tm, err := mtm.Open(rt, "ldap", mtm.Config{Heap: heap})
	if err != nil {
		return nil, err
	}
	return OpenMnemosyneBackend(rt, tm, gen)
}

func backends(t *testing.T) map[string]Backend {
	t.Helper()
	out := map[string]Backend{}
	bdbBack, err := OpenBDBBackend(pcmdisk.Open(pcmdisk.Config{Size: 256 << 20}))
	if err != nil {
		t.Fatal(err)
	}
	out["back-bdb"] = bdbBack
	ldbmBack, err := OpenLDBMBackend(pcmdisk.Open(pcmdisk.Config{Size: 256 << 20}), 64)
	if err != nil {
		t.Fatal(err)
	}
	out["back-ldbm"] = ldbmBack
	_, _, mn := newMnemosyneBackend(t, 1)
	out["back-mnemosyne"] = mn
	return out
}

func TestAllBackendsAddSearchDelete(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			sess, err := b.Session()
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 50; i++ {
				if err := sess.Add(TemplateEntry(i)); err != nil {
					t.Fatalf("add %d: %v", i, err)
				}
			}
			e, err := sess.Search(TemplateEntry(7).DN)
			if err != nil {
				t.Fatal(err)
			}
			if e.Get("uid")[0] != "user.7" {
				t.Fatalf("uid = %v", e.Get("uid"))
			}
			if _, err := sess.Search("uid=ghost,dc=example,dc=com"); err != ErrNoSuchEntry {
				t.Fatalf("ghost search: %v", err)
			}
			if err := sess.Delete(TemplateEntry(7).DN); err != nil {
				t.Fatal(err)
			}
			if _, err := sess.Search(TemplateEntry(7).DN); err != ErrNoSuchEntry {
				t.Fatalf("search deleted: %v", err)
			}
			if err := sess.Delete(TemplateEntry(7).DN); err != ErrNoSuchEntry {
				t.Fatalf("double delete: %v", err)
			}
		})
	}
}

func TestAddWorkloadAllBackends(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			srv := NewServer(b)
			res, err := srv.RunAddWorkload(4, 0, 400)
			if err != nil {
				t.Fatal(err)
			}
			if res.Errors != 0 {
				t.Fatalf("%d errors", res.Errors)
			}
			if res.UpdatesPS <= 0 {
				t.Fatal("no throughput")
			}
			// Verify all entries landed.
			sess, _ := b.Session()
			for i := 0; i < 400; i++ {
				if _, err := sess.Search(TemplateEntry(i).DN); err != nil {
					t.Fatalf("entry %d missing: %v", i, err)
				}
			}
		})
	}
}

func TestMnemosyneBackendSurvivesCrash(t *testing.T) {
	dev, rt, b := newMnemosyneBackend(t, 1)
	sess, err := b.Session()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := sess.Add(TemplateEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash and reincarnate with a new boot generation.
	dev.Crash(scm.NewRandomPolicy(5))
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	rt2, err := region.Open(dev, region.Config{Dir: rt.Manager().Dir()})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := bootMnemosyne(rt2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sess2, err := b2.Session()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		e, err := sess2.Search(TemplateEntry(i).DN)
		if err != nil {
			t.Fatalf("entry %d lost in crash: %v", i, err)
		}
		if e.Get("uid")[0] != fmt.Sprintf("user.%d", i) {
			t.Fatalf("entry %d corrupted", i)
		}
	}
	// Old-generation entries forced description re-resolution.
	if b2.Descs().Resolves == 0 {
		t.Fatal("no stale-description resolutions after restart")
	}
}

func TestLDBMLosesUnflushedOnCrash(t *testing.T) {
	disk := pcmdisk.Open(pcmdisk.Config{Size: 256 << 20})
	b, err := OpenLDBMBackend(disk, 50)
	if err != nil {
		t.Fatal(err)
	}
	sess, _ := b.Session()
	for i := 0; i < 75; i++ { // one flush at 50 ops, 25 ops exposed
		if err := sess.Add(TemplateEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	disk.Crash(-1)
	b2, err := OpenLDBMBackend(disk, 50)
	if err != nil {
		t.Fatal(err)
	}
	sess2, _ := b2.Session()
	// Flushed prefix present.
	for i := 0; i < 50; i++ {
		if _, err := sess2.Search(TemplateEntry(i).DN); err != nil {
			t.Fatalf("flushed entry %d lost: %v", i, err)
		}
	}
	// Some unflushed suffix lost (the window of vulnerability).
	lost := 0
	for i := 50; i < 75; i++ {
		if _, err := sess2.Search(TemplateEntry(i).DN); err == ErrNoSuchEntry {
			lost++
		}
	}
	if lost == 0 {
		t.Fatal("expected unflushed entries to be lost")
	}
}

func TestBDBBackendSurvivesCrash(t *testing.T) {
	disk := pcmdisk.Open(pcmdisk.Config{Size: 256 << 20})
	b, err := OpenBDBBackend(disk)
	if err != nil {
		t.Fatal(err)
	}
	sess, _ := b.Session()
	for i := 0; i < 60; i++ {
		if err := sess.Add(TemplateEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	disk.Crash(-1)
	b2, err := OpenBDBBackend(disk)
	if err != nil {
		t.Fatal(err)
	}
	sess2, _ := b2.Session()
	for i := 0; i < 60; i++ {
		if _, err := sess2.Search(TemplateEntry(i).DN); err != nil {
			t.Fatalf("transactional entry %d lost: %v", i, err)
		}
	}
}

func TestMixedWorkload(t *testing.T) {
	_, _, b := newMnemosyneBackend(t, 1)
	srv := NewServer(b)
	res, err := srv.RunMixedWorkload(2, 0, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	if res.Ops != 400 {
		t.Fatalf("ops = %d", res.Ops)
	}
}
