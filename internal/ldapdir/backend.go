package ldapdir

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/bdb"
	"repro/internal/pcmdisk"
)

// ErrNoSuchEntry reports a search for an absent DN.
var ErrNoSuchEntry = errors.New("ldapdir: no such entry")

// Backend is a directory storage backend. Session returns a per-worker
// handle; sessions of the same backend may be used concurrently.
type Backend interface {
	Name() string
	Session() (Session, error)
	Close() error
}

// Session is a per-worker view of a backend. Close releases whatever the
// session holds (back-mnemosyne leases a transaction thread per session);
// a session must not be used after Close.
type Session interface {
	Add(e *Entry) error
	Search(dn string) (*Entry, error)
	Delete(dn string) error
	Close() error
}

// dnKey hashes a DN to the 64-bit key space of the stores.
func dnKey(dn string) uint64 {
	// FNV-1a.
	h := uint64(14695981039346656037)
	for i := 0; i < len(dn); i++ {
		h ^= uint64(dn[i])
		h *= 1099511628211
	}
	return h
}

// entryCache is the volatile read-mostly cache each OpenLDAP backend
// maintains outside Berkeley DB ("To improve query performance, each
// backend maintains its own cache of data outside Berkeley DB", §6.2).
type entryCache struct {
	mu sync.RWMutex
	m  map[string]*Entry
}

func newEntryCache() *entryCache { return &entryCache{m: make(map[string]*Entry)} }

func (c *entryCache) put(e *Entry) {
	c.mu.Lock()
	c.m[e.DN] = e
	c.mu.Unlock()
}

func (c *entryCache) get(dn string) (*Entry, bool) {
	c.mu.RLock()
	e, ok := c.m[dn]
	c.mu.RUnlock()
	return e, ok
}

func (c *entryCache) del(dn string) {
	c.mu.Lock()
	delete(c.m, dn)
	c.mu.Unlock()
}

// BDBBackend is back-bdb: transactional Berkeley-DB-like storage on a
// PCM-disk plus the volatile cache.
type BDBBackend struct {
	db    *bdb.DB
	cache *entryCache
}

// OpenBDBBackend opens back-bdb on the disk.
func OpenBDBBackend(disk *pcmdisk.Disk) (*BDBBackend, error) {
	db, err := bdb.Open(disk, bdb.Config{SyncCommit: true})
	if err != nil {
		return nil, err
	}
	return &BDBBackend{db: db, cache: newEntryCache()}, nil
}

// Name implements Backend.
func (b *BDBBackend) Name() string { return "back-bdb" }

// Session implements Backend.
func (b *BDBBackend) Session() (Session, error) { return (*bdbSession)(b), nil }

// Close implements Backend.
func (b *BDBBackend) Close() error { return nil }

type bdbSession BDBBackend

// Close implements Session; back-bdb sessions hold no per-session state.
func (s *bdbSession) Close() error { return nil }

func (s *bdbSession) Add(e *Entry) error {
	if err := s.db.Put(dnKey(e.DN), e.Encode()); err != nil {
		return err
	}
	s.cache.put(e)
	return nil
}

func (s *bdbSession) Search(dn string) (*Entry, error) {
	if e, ok := s.cache.get(dn); ok {
		return e, nil
	}
	buf, err := s.db.Get(dnKey(dn))
	if err == bdb.ErrNotFound {
		return nil, ErrNoSuchEntry
	}
	if err != nil {
		return nil, err
	}
	e, err := DecodeEntry(buf)
	if err != nil {
		return nil, err
	}
	s.cache.put(e)
	return e, nil
}

func (s *bdbSession) Delete(dn string) error {
	err := s.db.Delete(dnKey(dn))
	if err == bdb.ErrNotFound {
		return ErrNoSuchEntry
	}
	if err != nil {
		return err
	}
	s.cache.del(dn)
	return nil
}

// LDBMBackend is back-ldbm: the same store without per-operation
// durability; it "periodically asks Berkeley DB to flush dirty data to
// disk to minimize the window of vulnerability" (§6.2).
type LDBMBackend struct {
	db         *bdb.DB
	cache      *entryCache
	flushEvery uint64
	ops        atomic.Uint64
	flushMu    sync.Mutex
}

// OpenLDBMBackend opens back-ldbm; flushEvery is the periodic-flush
// interval in update operations (0 selects 1024).
func OpenLDBMBackend(disk *pcmdisk.Disk, flushEvery uint64) (*LDBMBackend, error) {
	db, err := bdb.Open(disk, bdb.Config{SyncCommit: false})
	if err != nil {
		return nil, err
	}
	if flushEvery == 0 {
		flushEvery = 1024
	}
	return &LDBMBackend{db: db, cache: newEntryCache(), flushEvery: flushEvery}, nil
}

// Name implements Backend.
func (b *LDBMBackend) Name() string { return "back-ldbm" }

// Session implements Backend.
func (b *LDBMBackend) Session() (Session, error) { return (*ldbmSession)(b), nil }

// Close flushes outstanding updates.
func (b *LDBMBackend) Close() error { return b.db.Flush() }

// Flush forces dirty data to the PCM-disk.
func (b *LDBMBackend) Flush() error {
	b.flushMu.Lock()
	defer b.flushMu.Unlock()
	return b.db.Flush()
}

type ldbmSession LDBMBackend

// Close implements Session; back-ldbm sessions hold no per-session state.
func (s *ldbmSession) Close() error { return nil }

func (s *ldbmSession) bump() error {
	if s.ops.Add(1)%s.flushEvery == 0 {
		return (*LDBMBackend)(s).Flush()
	}
	return nil
}

func (s *ldbmSession) Add(e *Entry) error {
	if err := s.db.Put(dnKey(e.DN), e.Encode()); err != nil {
		return err
	}
	s.cache.put(e)
	return s.bump()
}

func (s *ldbmSession) Search(dn string) (*Entry, error) {
	return (*bdbSession)((*BDBBackend)(nil)).searchVia(s.db, s.cache, dn)
}

func (s *ldbmSession) Delete(dn string) error {
	err := s.db.Delete(dnKey(dn))
	if err == bdb.ErrNotFound {
		return ErrNoSuchEntry
	}
	if err != nil {
		return err
	}
	s.cache.del(dn)
	return s.bump()
}

// searchVia shares the cache-then-store lookup between the two BDB-based
// backends.
func (*bdbSession) searchVia(db *bdb.DB, cache *entryCache, dn string) (*Entry, error) {
	if e, ok := cache.get(dn); ok {
		return e, nil
	}
	buf, err := db.Get(dnKey(dn))
	if err == bdb.ErrNotFound {
		return nil, ErrNoSuchEntry
	}
	if err != nil {
		return nil, err
	}
	e, err := DecodeEntry(buf)
	if err != nil {
		return nil, err
	}
	cache.put(e)
	return e, nil
}
