package ldapdir

import (
	"context"
	"sync"
	"time"

	"repro/internal/mtm"
	"repro/internal/pds"
	"repro/internal/region"
)

// MnemosyneBackend is back-mnemosyne, the paper's conversion of back-ldbm:
// "we modified the back-ldbm backend to remove Berkeley DB and to make the
// cache persistent with durable transactions. The cache is organized using
// an AVL tree, which we make persistent by allocating nodes with pmalloc
// and placing atomic blocks around updates" (§6.2). There is no backing
// store at all — the persistent cache is the database.
//
// The paper also keeps pointers from persistent cache entries to volatile
// attribute descriptions, guarded by a version number: "Because the
// volatile descriptions become stale after a restart, we augmented each
// cache entry with a version number that is used to determine whether the
// persistent pointer is up-to-date." DescTable reproduces that: each
// process boot gets a new generation; entries encoded under an old
// generation re-resolve their attribute descriptions by name on first use.
type MnemosyneBackend struct {
	tm    *mtm.TM
	tree  *pds.AVL
	descs *DescTable

	// LeaseTimeout bounds how long Session waits for a transaction
	// thread when every log slot is leased. Zero means don't wait.
	LeaseTimeout time.Duration
}

// DescTable is the volatile attribute-description table kept by the front
// end. Gen changes on every process start.
type DescTable struct {
	Gen uint64

	mu    sync.Mutex
	byIdx []string
	index map[string]uint32
	// Resolves counts slow-path re-resolutions after a restart.
	Resolves uint64
}

// NewDescTable builds the table for this process generation.
func NewDescTable(gen uint64) *DescTable {
	return &DescTable{Gen: gen, index: make(map[string]uint32)}
}

// Resolve interns an attribute name, returning its volatile description
// index for this generation.
func (d *DescTable) Resolve(name string) uint32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if i, ok := d.index[name]; ok {
		return i
	}
	i := uint32(len(d.byIdx))
	d.byIdx = append(d.byIdx, name)
	d.index[name] = i
	return i
}

// Lookup validates a (gen, idx) persistent reference; a stale generation
// forces a by-name re-resolution, the slow path the paper describes.
func (d *DescTable) Lookup(gen uint64, idx uint32, name string) string {
	if gen == d.Gen {
		d.mu.Lock()
		defer d.mu.Unlock()
		if int(idx) < len(d.byIdx) {
			return d.byIdx[idx]
		}
		return name
	}
	d.mu.Lock()
	d.Resolves++
	d.mu.Unlock()
	d.Resolve(name)
	return name
}

// OpenMnemosyneBackend opens back-mnemosyne over a region runtime. The TM
// must have a heap attached. bootGen should differ on every process start
// (e.g. a timestamp or boot counter).
func OpenMnemosyneBackend(rt *region.Runtime, tm *mtm.TM, bootGen uint64) (*MnemosyneBackend, error) {
	root, _, err := rt.Static("ldap.cache", 8)
	if err != nil {
		return nil, err
	}
	return &MnemosyneBackend{
		tm:           tm,
		tree:         pds.NewAVL(root),
		descs:        NewDescTable(bootGen),
		LeaseTimeout: 5 * time.Second,
	}, nil
}

// Name implements Backend.
func (b *MnemosyneBackend) Name() string { return "back-mnemosyne" }

// Descs exposes the description table (tests).
func (b *MnemosyneBackend) Descs() *DescTable { return b.descs }

// Session implements Backend: each worker leases its own transaction
// thread for the session's lifetime and returns it at Session.Close, so
// session churn does not consume log slots cumulatively.
func (b *MnemosyneBackend) Session() (Session, error) {
	var th *mtm.Thread
	var err error
	if b.LeaseTimeout <= 0 {
		th, err = b.tm.NewThread() // no wait: fail fast when full
	} else {
		ctx, cancel := context.WithTimeout(context.Background(), b.LeaseTimeout)
		th, err = b.tm.Lease(ctx)
		cancel()
	}
	if err != nil {
		return nil, err
	}
	return &mnemosyneSession{b: b, th: th}, nil
}

// Close implements Backend.
func (b *MnemosyneBackend) Close() error { return nil }

type mnemosyneSession struct {
	b  *MnemosyneBackend
	th *mtm.Thread
}

// Close releases the session's transaction thread back to the slot pool.
func (s *mnemosyneSession) Close() error { return s.th.Close() }

// Add updates the persistent AVL cache in one durable transaction — the
// paper's four atomic blocks collapse to one here because Go's API wraps
// the whole update.
func (s *mnemosyneSession) Add(e *Entry) error {
	e.Gen = s.b.descs.Gen
	for _, a := range e.Attrs {
		s.b.descs.Resolve(a.Name)
	}
	enc := e.Encode()
	return s.th.Atomic(func(tx *mtm.Tx) error {
		return s.b.tree.Put(tx, []byte(e.DN), enc)
	})
}

func (s *mnemosyneSession) Search(dn string) (*Entry, error) {
	var buf []byte
	err := s.th.Atomic(func(tx *mtm.Tx) error {
		v, err := s.b.tree.Get(tx, []byte(dn))
		if err != nil {
			return err
		}
		buf = v
		return nil
	})
	if err == pds.ErrNotFound {
		return nil, ErrNoSuchEntry
	}
	if err != nil {
		return nil, err
	}
	e, err := DecodeEntry(buf)
	if err != nil {
		return nil, err
	}
	// Validate the volatile description pointers: a stale generation
	// (pre-restart entry) re-resolves by name.
	for i, a := range e.Attrs {
		e.Attrs[i].Name = s.b.descs.Lookup(e.Gen, uint32(i), a.Name)
	}
	return e, nil
}

func (s *mnemosyneSession) Delete(dn string) error {
	err := s.th.Atomic(func(tx *mtm.Tx) error {
		return s.b.tree.Delete(tx, []byte(dn))
	})
	if err == pds.ErrNotFound {
		return ErrNoSuchEntry
	}
	return err
}
