package ldapdir

import (
	"context"
	"sync"
	"time"

	"repro/internal/mtm"
	"repro/internal/pds"
	"repro/internal/region"
)

// MnemosyneBackend is back-mnemosyne, the paper's conversion of back-ldbm:
// "we modified the back-ldbm backend to remove Berkeley DB and to make the
// cache persistent with durable transactions. The cache is organized using
// an AVL tree, which we make persistent by allocating nodes with pmalloc
// and placing atomic blocks around updates" (§6.2). There is no backing
// store at all — the persistent cache is the database.
//
// The paper also keeps pointers from persistent cache entries to volatile
// attribute descriptions, guarded by a version number: "Because the
// volatile descriptions become stale after a restart, we augmented each
// cache entry with a version number that is used to determine whether the
// persistent pointer is up-to-date." DescTable reproduces that: each
// process boot gets a new generation; entries encoded under an old
// generation re-resolve their attribute descriptions by name on first use.
type MnemosyneBackend struct {
	tm    *mtm.TM
	tree  *pds.AVL
	descs *DescTable

	// LeaseTimeout bounds how long a session's first update waits for a
	// transaction thread when every log slot is leased. Zero means don't
	// wait. Searches never lease, so it only gates writers.
	LeaseTimeout time.Duration
}

// DescTable is the volatile attribute-description table kept by the front
// end. Gen changes on every process start.
type DescTable struct {
	Gen uint64

	mu    sync.Mutex
	byIdx []string
	index map[string]uint32
	// Resolves counts slow-path re-resolutions after a restart.
	Resolves uint64
}

// NewDescTable builds the table for this process generation.
func NewDescTable(gen uint64) *DescTable {
	return &DescTable{Gen: gen, index: make(map[string]uint32)}
}

// Resolve interns an attribute name, returning its volatile description
// index for this generation.
func (d *DescTable) Resolve(name string) uint32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if i, ok := d.index[name]; ok {
		return i
	}
	i := uint32(len(d.byIdx))
	d.byIdx = append(d.byIdx, name)
	d.index[name] = i
	return i
}

// Lookup validates a (gen, idx) persistent reference; a stale generation
// forces a by-name re-resolution, the slow path the paper describes.
func (d *DescTable) Lookup(gen uint64, idx uint32, name string) string {
	if gen == d.Gen {
		d.mu.Lock()
		defer d.mu.Unlock()
		if int(idx) < len(d.byIdx) {
			return d.byIdx[idx]
		}
		return name
	}
	d.mu.Lock()
	d.Resolves++
	d.mu.Unlock()
	d.Resolve(name)
	return name
}

// OpenMnemosyneBackend opens back-mnemosyne over a region runtime. The TM
// must have a heap attached. bootGen should differ on every process start
// (e.g. a timestamp or boot counter).
func OpenMnemosyneBackend(rt *region.Runtime, tm *mtm.TM, bootGen uint64) (*MnemosyneBackend, error) {
	root, _, err := rt.Static("ldap.cache", 8)
	if err != nil {
		return nil, err
	}
	return &MnemosyneBackend{
		tm:           tm,
		tree:         pds.NewAVL(root),
		descs:        NewDescTable(bootGen),
		LeaseTimeout: 5 * time.Second,
	}, nil
}

// Name implements Backend.
func (b *MnemosyneBackend) Name() string { return "back-mnemosyne" }

// Descs exposes the description table (tests).
func (b *MnemosyneBackend) Descs() *DescTable { return b.descs }

// Session implements Backend. The transaction thread is lazy: it is
// leased on the session's first update (Add/Delete) and returned at
// Session.Close, so a search-only session — served entirely on slot-free
// snapshot reads — never takes a log slot at all, and session churn does
// not consume slots cumulatively.
func (b *MnemosyneBackend) Session() (Session, error) {
	return &mnemosyneSession{b: b}, nil
}

// Close implements Backend.
func (b *MnemosyneBackend) Close() error { return nil }

type mnemosyneSession struct {
	b  *MnemosyneBackend
	th *mtm.Thread // write thread, nil until the first update
}

// writer returns the session's transaction thread, leasing it on first
// use under the backend's LeaseTimeout (zero or negative: fail fast when
// every slot is taken).
func (s *mnemosyneSession) writer() (*mtm.Thread, error) {
	if s.th != nil {
		return s.th, nil
	}
	var th *mtm.Thread
	var err error
	if s.b.LeaseTimeout <= 0 {
		th, err = s.b.tm.NewThread() // no wait: fail fast when full
	} else {
		ctx, cancel := context.WithTimeout(context.Background(), s.b.LeaseTimeout)
		th, err = s.b.tm.Lease(ctx)
		cancel()
	}
	if err != nil {
		return nil, err
	}
	s.th = th
	return th, nil
}

// Close releases the session's transaction thread, if one was ever
// leased, back to the slot pool.
func (s *mnemosyneSession) Close() error {
	if s.th == nil {
		return nil
	}
	th := s.th
	s.th = nil
	return th.Close()
}

// Add updates the persistent AVL cache in one durable transaction — the
// paper's four atomic blocks collapse to one here because Go's API wraps
// the whole update.
func (s *mnemosyneSession) Add(e *Entry) error {
	e.Gen = s.b.descs.Gen
	for _, a := range e.Attrs {
		s.b.descs.Resolve(a.Name)
	}
	enc := e.Encode()
	th, err := s.writer()
	if err != nil {
		return err
	}
	return th.Atomic(func(tx *mtm.Tx) error {
		return s.b.tree.Put(tx, []byte(e.DN), enc)
	})
}

// Search reads the cache on a slot-free snapshot: no thread lease, no
// log record, no fence, so unbounded concurrent searches run in parallel
// with directory updates.
func (s *mnemosyneSession) Search(dn string) (*Entry, error) {
	var buf []byte
	err := s.b.tm.View(func(r *mtm.ReadTx) error {
		v, err := s.b.tree.Get(r, []byte(dn))
		if err != nil {
			return err
		}
		buf = v
		return nil
	})
	if err == pds.ErrNotFound {
		return nil, ErrNoSuchEntry
	}
	if err != nil {
		return nil, err
	}
	e, err := DecodeEntry(buf)
	if err != nil {
		return nil, err
	}
	// Validate the volatile description pointers: a stale generation
	// (pre-restart entry) re-resolves by name.
	for i, a := range e.Attrs {
		e.Attrs[i].Name = s.b.descs.Lookup(e.Gen, uint32(i), a.Name)
	}
	return e, nil
}

func (s *mnemosyneSession) Delete(dn string) error {
	th, err := s.writer()
	if err != nil {
		return err
	}
	err = th.Atomic(func(tx *mtm.Tx) error {
		return s.b.tree.Delete(tx, []byte(dn))
	})
	if err == pds.ErrNotFound {
		return ErrNoSuchEntry
	}
	return err
}
