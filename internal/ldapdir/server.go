package ldapdir

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/telemetry"
)

var (
	telAddLat    = telemetry.NewHistogram("ldapdir_add_latency_ns", "Latency of directory add operations, in nanoseconds.")
	telSearchLat = telemetry.NewHistogram("ldapdir_search_latency_ns", "Latency of directory search operations, in nanoseconds.")
	telErrors    = telemetry.NewCounter("ldapdir_errors_total", "Directory operations that returned an error.")
)

// Server runs directory operations against a backend with a pool of
// worker threads, the way slapd dispatches operations. The paper's
// evaluation runs 16 threads (4 per core) "as advised by its tuning
// manual".
type Server struct {
	backend Backend

	// RequestOverhead models the frontend cost of one LDAP operation —
	// protocol decode, schema and ACL checks, index maintenance — that
	// this core does not implement. The paper observes that with PCM
	// "the time to write updates is a small fraction of the total time
	// to service a request", which is why its three backends score
	// within ~35%% of each other; without a frontend cost the storage
	// paths dominate and the comparison loses that property. Zero
	// disables the model (unit tests); the Table 4 benchmark uses a
	// realistic slapd-scale value.
	RequestOverhead time.Duration
}

// NewServer wraps a backend.
func NewServer(b Backend) *Server { return &Server{backend: b} }

// frontend burns the configured per-operation request-processing cost.
func (s *Server) frontend() {
	if s.RequestOverhead <= 0 {
		return
	}
	deadline := time.Now().Add(s.RequestOverhead)
	for time.Now().Before(deadline) {
	}
}

// closeSessions releases every session a workload opened, so repeated
// workloads do not consume transaction-thread slots cumulatively.
func closeSessions(sessions []Session) {
	for _, sess := range sessions {
		if sess != nil {
			if err := sess.Close(); err != nil {
				telErrors.Inc()
			}
		}
	}
}

// WorkloadResult reports a load-generation run.
type WorkloadResult struct {
	Backend   string
	Ops       int
	Duration  time.Duration
	UpdatesPS float64
	Errors    int
}

// RunAddWorkload is the SLAMD-like add-entry workload of Table 4: workers
// concurrently add template entries [start, start+n).
func (s *Server) RunAddWorkload(workers, start, n int) (WorkloadResult, error) {
	sessions := make([]Session, workers)
	defer closeSessions(sessions)
	for i := range sessions {
		sess, err := s.backend.Session()
		if err != nil {
			return WorkloadResult{}, fmt.Errorf("session %d: %w", i, err)
		}
		sessions[i] = sess
	}
	var wg sync.WaitGroup
	errCount := make([]int, workers)
	begin := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := start + w; i < start+n; i += workers {
				s.frontend()
				opBegin := time.Now()
				if err := sessions[w].Add(TemplateEntry(i)); err != nil {
					errCount[w]++
					telErrors.Inc()
				}
				telAddLat.ObserveSince(opBegin)
			}
		}(w)
	}
	wg.Wait()
	dur := time.Since(begin)
	res := WorkloadResult{
		Backend:   s.backend.Name(),
		Ops:       n,
		Duration:  dur,
		UpdatesPS: float64(n) / dur.Seconds(),
	}
	for _, e := range errCount {
		res.Errors += e
	}
	return res, nil
}

// RunMixedWorkload issues adds and searches in the given ratio (searches
// per add), modeling a read-mostly directory.
func (s *Server) RunMixedWorkload(workers, start, adds, searchesPerAdd int) (WorkloadResult, error) {
	sessions := make([]Session, workers)
	defer closeSessions(sessions)
	for i := range sessions {
		sess, err := s.backend.Session()
		if err != nil {
			return WorkloadResult{}, err
		}
		sessions[i] = sess
	}
	var wg sync.WaitGroup
	errCount := make([]int, workers)
	begin := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := start + w; i < start+adds; i += workers {
				e := TemplateEntry(i)
				s.frontend()
				opBegin := time.Now()
				err := sessions[w].Add(e)
				telAddLat.ObserveSince(opBegin)
				if err != nil {
					errCount[w]++
					telErrors.Inc()
					continue
				}
				for j := 0; j < searchesPerAdd; j++ {
					s.frontend()
					opBegin = time.Now()
					_, err := sessions[w].Search(e.DN)
					telSearchLat.ObserveSince(opBegin)
					if err != nil {
						errCount[w]++
						telErrors.Inc()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	dur := time.Since(begin)
	total := adds * (1 + searchesPerAdd)
	res := WorkloadResult{
		Backend:   s.backend.Name(),
		Ops:       total,
		Duration:  dur,
		UpdatesPS: float64(total) / dur.Seconds(),
	}
	for _, e := range errCount {
		res.Errors += e
	}
	return res, nil
}
