// Package ldapdir is an OpenLDAP-like directory server core with the
// three storage backends compared in Table 4 of the paper:
//
//   - back-bdb: the default transactional backend, storing entries in a
//     Berkeley-DB-like store on a PCM-disk with a volatile entry cache.
//   - back-ldbm: the same store without transactions; dirty data is
//     flushed periodically, trading reliability for speed.
//   - back-mnemosyne: the paper's conversion — the backing store is
//     removed entirely, leaving only a persistent AVL-tree cache updated
//     with durable memory transactions.
//
// A SLAMD-like load generator produces inetOrgPerson add operations from a
// deterministic template, and the server runs them over a configurable
// number of worker threads.
package ldapdir

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Attr is one named attribute with its values, in LDIF order.
type Attr struct {
	Name   string
	Values []string
}

// Entry is a directory entry.
type Entry struct {
	DN string
	// Gen tags the entry with the attribute-description table
	// generation it was encoded under; see DescTable.
	Gen   uint64
	Attrs []Attr
}

// Encode serializes the entry.
func (e *Entry) Encode() []byte {
	buf := make([]byte, 0, 256)
	buf = binary.LittleEndian.AppendUint64(buf, e.Gen)
	buf = appendString(buf, e.DN)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(e.Attrs)))
	for _, a := range e.Attrs {
		buf = appendString(buf, a.Name)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(a.Values)))
		for _, v := range a.Values {
			buf = appendString(buf, v)
		}
	}
	return buf
}

// DecodeEntry parses a serialized entry.
func DecodeEntry(buf []byte) (*Entry, error) {
	e := &Entry{}
	if len(buf) < 8 {
		return nil, errors.New("ldapdir: short entry")
	}
	e.Gen = binary.LittleEndian.Uint64(buf)
	buf = buf[8:]
	var err error
	if e.DN, buf, err = readString(buf); err != nil {
		return nil, err
	}
	if len(buf) < 2 {
		return nil, errors.New("ldapdir: truncated attr count")
	}
	n := binary.LittleEndian.Uint16(buf)
	buf = buf[2:]
	for i := 0; i < int(n); i++ {
		var a Attr
		if a.Name, buf, err = readString(buf); err != nil {
			return nil, err
		}
		if len(buf) < 2 {
			return nil, errors.New("ldapdir: truncated value count")
		}
		nv := binary.LittleEndian.Uint16(buf)
		buf = buf[2:]
		for j := 0; j < int(nv); j++ {
			var v string
			if v, buf, err = readString(buf); err != nil {
				return nil, err
			}
			a.Values = append(a.Values, v)
		}
		e.Attrs = append(e.Attrs, a)
	}
	return e, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func readString(buf []byte) (string, []byte, error) {
	if len(buf) < 2 {
		return "", nil, errors.New("ldapdir: truncated string")
	}
	n := int(binary.LittleEndian.Uint16(buf))
	if len(buf) < 2+n {
		return "", nil, errors.New("ldapdir: truncated string body")
	}
	return string(buf[2 : 2+n]), buf[2+n:], nil
}

// Get returns the attribute's values.
func (e *Entry) Get(name string) []string {
	for _, a := range e.Attrs {
		if a.Name == name {
			return a.Values
		}
	}
	return nil
}

// TemplateEntry generates the i-th entry of the SLAMD-like inetOrgPerson
// workload template (§6.2 uses "a LDIF template to generate a workload of
// 100,000 directory entries").
func TemplateEntry(i int) *Entry {
	uid := fmt.Sprintf("user.%d", i)
	first := firstNames[i%len(firstNames)]
	last := lastNames[(i/len(firstNames))%len(lastNames)]
	return &Entry{
		DN: fmt.Sprintf("uid=%s,ou=People,dc=example,dc=com", uid),
		Attrs: []Attr{
			{Name: "objectClass", Values: []string{"top", "person", "organizationalPerson", "inetOrgPerson"}},
			{Name: "uid", Values: []string{uid}},
			{Name: "givenName", Values: []string{first}},
			{Name: "sn", Values: []string{last}},
			{Name: "cn", Values: []string{first + " " + last}},
			{Name: "initials", Values: []string{first[:1] + last[:1]}},
			{Name: "mail", Values: []string{uid + "@example.com"}},
			{Name: "userPassword", Values: []string{fmt.Sprintf("password-%d", i)}},
			{Name: "telephoneNumber", Values: []string{fmt.Sprintf("+1 303 555 %04d", i%10000)}},
			{Name: "employeeNumber", Values: []string{fmt.Sprintf("%d", i)}},
			{Name: "description", Values: []string{"This is the description for " + uid + "."}},
		},
	}
}

var firstNames = []string{
	"Aaron", "Beth", "Carlos", "Dana", "Elena", "Felix", "Grace", "Hiro",
	"Ingrid", "Jamal", "Keiko", "Liam", "Mona", "Nadia", "Omar", "Priya",
}

var lastNames = []string{
	"Anderson", "Bauer", "Chen", "Diaz", "Eriksson", "Fischer", "Garcia",
	"Haddad", "Ivanov", "Johnson", "Kim", "Lopez", "Muller", "Nakamura",
	"Okafor", "Patel",
}
