package ldapdir

import (
	"testing"

	"repro/internal/telemetry"
)

// TestSearchOnlySessionZeroLeases asserts a search-only back-mnemosyne
// session takes no transaction thread at all: sessions lease lazily on
// their first update, and Search rides slot-free snapshot reads, so a
// reader burst performs zero leases and zero durability fences.
func TestSearchOnlySessionZeroLeases(t *testing.T) {
	dev, _, b := newMnemosyneBackend(t, 1)
	wsess, err := b.Session()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := wsess.Add(TemplateEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := wsess.Close(); err != nil {
		t.Fatal(err)
	}

	leases0 := uint64(telemetry.Default.Snapshot()["mtm_thread_leases_total"])
	fences0 := dev.Snapshot().Fences

	rsess, err := b.Session()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		e, err := rsess.Search(TemplateEntry(i).DN)
		if err != nil {
			t.Fatalf("Search %d: %v", i, err)
		}
		if e.DN != TemplateEntry(i).DN {
			t.Fatalf("Search %d returned DN %q", i, e.DN)
		}
	}
	if _, err := rsess.Search("cn=nosuch,dc=example,dc=com"); err != ErrNoSuchEntry {
		t.Fatalf("Search missing: %v, want ErrNoSuchEntry", err)
	}
	if err := rsess.Close(); err != nil {
		t.Fatal(err)
	}

	if d := uint64(telemetry.Default.Snapshot()["mtm_thread_leases_total"]) - leases0; d != 0 {
		t.Errorf("search-only session leased %d threads, want 0", d)
	}
	if d := dev.Snapshot().Fences - fences0; d != 0 {
		t.Errorf("search-only session issued %d fences, want 0", d)
	}
}
