package pmem

import "testing"

func TestAddrPersistentRange(t *testing.T) {
	cases := []struct {
		a    Addr
		want bool
	}{
		{Nil, false},
		{Base - 1, false},
		{Base, true},
		{Base + 1, true},
		{Base + Addr(Span) - 1, true},
		{Base + Addr(Span), false},
		{Addr(0x1234), false},
	}
	for _, c := range cases {
		if got := c.a.IsPersistent(); got != c.want {
			t.Errorf("IsPersistent(%v) = %v, want %v", c.a, got, c.want)
		}
	}
}

func TestAddrArithmetic(t *testing.T) {
	a := Base.Add(128)
	if a.Sub(Base) != 128 {
		t.Fatalf("Sub = %d", a.Sub(Base))
	}
	if a.Add(-128) != Base {
		t.Fatalf("Add(-128) = %v", a.Add(-128))
	}
}

func TestAddrString(t *testing.T) {
	if got := Base.String(); got != "p0x10000000000" {
		t.Fatalf("String = %q", got)
	}
}
