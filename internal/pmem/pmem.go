// Package pmem defines the persistent-memory programming interface of
// Mnemosyne: persistent addresses, the Memory access interface, and the
// consistent-update helpers of Table 2 in the paper.
//
// Persistent data is addressed with Addr, not Go pointers. Go's garbage
// collector cannot trace a persistent heap, and raw pointers into memory
// that is remapped across process restarts would be unsafe; Addr is this
// library's equivalent of the paper's `persistent` pointer annotation —
// the type system rejects code that confuses a volatile Go pointer with a
// persistent address.
//
// All of Mnemosyne's persistent regions live in a reserved range of the
// (virtual) address space, one terabyte starting at Base. This allows a
// quick determination of whether an address refers to persistent data
// (§4.2 of the paper).
package pmem

import "fmt"

// Addr is an address in the persistent virtual address space.
type Addr uint64

// Base is the start of the reserved persistent address range.
const Base Addr = 1 << 40

// Span is the size of the reserved persistent address range: 1 TB.
const Span uint64 = 1 << 40

// Nil is the persistent null address. Address zero is never mapped, so it
// doubles as the "no data" sentinel in persistent data structures.
const Nil Addr = 0

// IsPersistent reports whether a falls inside the reserved persistent
// range. The transaction system uses this quick range check to log only
// writes to persistent memory (§5).
func (a Addr) IsPersistent() bool {
	return a >= Base && uint64(a-Base) < Span
}

// Add returns the address n bytes past a.
func (a Addr) Add(n int64) Addr { return Addr(int64(a) + n) }

// Sub returns the distance in bytes from b to a.
func (a Addr) Sub(b Addr) int64 { return int64(a) - int64(b) }

// String formats the address for diagnostics.
func (a Addr) String() string { return fmt.Sprintf("p%#x", uint64(a)) }

// Memory is the persistence-primitive interface (Table 3 of the paper),
// bound to a mapped persistent address space. Implementations are
// per-goroutine: each carries its own emulated write-combining buffer, so
// a Memory must not be shared between goroutines without external
// synchronization. Obtain one per worker from the region runtime.
type Memory interface {
	// LoadU64 reads the 64-bit word at a. Loads are cached and free.
	LoadU64(a Addr) uint64
	// StoreU64 writes through the cache (the store() primitive). The
	// write is volatile until the containing cache line is flushed.
	StoreU64(a Addr, v uint64)
	// WTStoreU64 streams the word toward SCM (the wtstore() primitive).
	// The write is durable after the next Fence.
	WTStoreU64(a Addr, v uint64)
	// Flush writes back the cache line containing a (the flush()
	// primitive).
	Flush(a Addr)
	// FlushRange flushes every cache line overlapping [a, a+n).
	FlushRange(a Addr, n int64)
	// Fence orders and completes prior writes (the fence() primitive).
	Fence()

	// Load, Store and WTStore are byte-granular versions assembled from
	// atomic word accesses.
	Load(buf []byte, a Addr)
	Store(a Addr, buf []byte)
	WTStore(a Addr, buf []byte)
}

// The helpers below implement the four consistent-update methods of
// Table 2. Single-variable and append updates need no ordering inside the
// update; shadow updates need one ordering constraint; in-place updates
// are provided by the transaction system (package mtm).

// StoreDurable atomically and durably updates a single 64-bit variable: a
// single-variable update. Such updates are totally ordered with respect to
// each other. The store streams to SCM and the fence stalls until it is
// durable.
func StoreDurable(m Memory, a Addr, v uint64) {
	m.WTStoreU64(a, v)
	m.Fence()
}

// ShadowUpdate performs a shadow update: writeNew must write the new data
// (anywhere except *ref), and once that data is durable the reference at
// ref is atomically swung to newVal. The single ordering constraint —
// reference modified after the new data completes — is enforced by the
// intermediate fence.
//
// After a failure, a program must find and release unreferenced new data;
// allocating the new data with the persistent heap's pmalloc (which
// requires a persistent destination pointer) avoids such leaks.
func ShadowUpdate(m Memory, ref Addr, newVal uint64, writeNew func(Memory)) {
	writeNew(m)
	m.Fence() // new data durable before the reference moves
	m.WTStoreU64(ref, newVal)
	m.Fence()
}

// PublishRange makes [a, a+n) durable: it flushes the covered cache lines
// and fences. Use after a batch of cacheable stores to complete a shadow
// or append update written with Store.
func PublishRange(m Memory, a Addr, n int64) {
	m.FlushRange(a, n)
	m.Fence()
}
