package pmem_test

import (
	"fmt"
	"testing"

	"repro/internal/crashpoint"
	"repro/internal/pmem"
	"repro/internal/region"
	"repro/internal/scm"
)

// TestCrashPointsConsistentUpdates explores every crash point of the
// Table-2 consistent-update helpers over a freshly opened and mapped
// region — covering the region open/map path and StoreDurable,
// ShadowUpdate and PublishRange end to end.
//
// Layout inside one mapped page:
//
//	+0    counter updated with StoreDurable
//	+8    shadow reference (encodes buffer offset and generation)
//	+64   published flag: highest generation completed by PublishRange
//	+128  append area written with Store + PublishRange (64 B per gen)
//	+512  shadow buffer A (64 B)
//	+576  shadow buffer B (64 B)
func TestCrashPointsConsistentUpdates(t *testing.T) {
	const (
		offCounter = 0
		offRef     = 8
		offFlag    = 64
		offAppend  = 128
		offBufA    = 512
		offBufB    = 576
		gens       = 3
	)
	encode := func(buf int64, gen uint64) uint64 { return uint64(buf) | gen<<32 }
	decode := func(v uint64) (int64, uint64) { return int64(v & 0xffffffff), v >> 32 }

	workload := func() (*crashpoint.Run, error) {
		dev, err := scm.Open(scm.Config{Size: 2 << 20, Mode: scm.DelayOff})
		if err != nil {
			return nil, err
		}
		dir := t.TempDir()
		ackedCounter := uint64(0)
		ackedGen := uint64(0)  // shadow generations completed
		ackedFlag := uint64(0) // publish generations completed

		return &crashpoint.Run{
			Dev: dev,
			Body: func() error {
				rt, err := region.Open(dev, region.Config{Dir: dir, StaticSize: 64 << 10})
				if err != nil {
					return err
				}
				ptr, _, err := rt.Static("pmem.crash", 8)
				if err != nil {
					return err
				}
				base, err := rt.PMapAt(ptr, scm.PageSize, 0)
				if err != nil {
					return err
				}
				mem := rt.NewMemory()
				for gen := uint64(1); gen <= gens; gen++ {
					// Single-variable update.
					pmem.StoreDurable(mem, base.Add(offCounter), gen)
					ackedCounter = gen

					// Shadow update into the idle buffer.
					target := int64(offBufA)
					if gen%2 == 0 {
						target = offBufB
					}
					pmem.ShadowUpdate(mem, base.Add(offRef), encode(target, gen), func(m pmem.Memory) {
						for i := int64(0); i < 8; i++ {
							m.StoreU64(base.Add(target+i*8), gen)
						}
						m.Flush(base.Add(target))
					})
					ackedGen = gen

					// Append update: cacheable stores, then publish, then
					// a durable flag commits the append.
					at := offAppend + int64(gen-1)*64
					for i := int64(0); i < 8; i++ {
						mem.StoreU64(base.Add(at+i*8), gen*100+uint64(i))
					}
					pmem.PublishRange(mem, base.Add(at), 64)
					pmem.StoreDurable(mem, base.Add(offFlag), gen)
					ackedFlag = gen
				}
				return nil
			},
			Check: func() error {
				rt, err := region.Open(dev, region.Config{Dir: dir, StaticSize: 64 << 10})
				if err != nil {
					return fmt.Errorf("region tables not remappable: %w", err)
				}
				defer rt.Close()
				ptr, _, err := rt.Static("pmem.crash", 8)
				if err != nil {
					return err
				}
				mem := rt.NewMemory()
				base := pmem.Addr(mem.LoadU64(ptr))
				if base == pmem.Nil {
					if ackedCounter > 0 {
						return fmt.Errorf("data region lost after %d acked updates", ackedCounter)
					}
					return nil
				}

				// Single-variable: the word is always the last acked value
				// or the one in-flight behind it.
				if v := mem.LoadU64(base.Add(offCounter)); v != ackedCounter && v != ackedCounter+1 {
					return fmt.Errorf("counter %d, acked %d", v, ackedCounter)
				}

				// Shadow: whatever the reference names must be complete.
				if ref := mem.LoadU64(base.Add(offRef)); ref != 0 {
					target, gen := decode(ref)
					if gen < ackedGen || gen > ackedGen+1 {
						return fmt.Errorf("shadow ref generation %d, acked %d", gen, ackedGen)
					}
					for i := int64(0); i < 8; i++ {
						if v := mem.LoadU64(base.Add(target + i*8)); v != gen {
							return fmt.Errorf("shadow ref names gen %d but its buffer word %d reads %d", gen, i, v)
						}
					}
				} else if ackedGen > 0 {
					return fmt.Errorf("shadow ref lost after %d acked generations", ackedGen)
				}

				// Append: every generation the flag covers must be fully
				// durable.
				flag := mem.LoadU64(base.Add(offFlag))
				if flag < ackedFlag || flag > ackedFlag+1 {
					return fmt.Errorf("publish flag %d, acked %d", flag, ackedFlag)
				}
				for gen := uint64(1); gen <= flag; gen++ {
					at := offAppend + int64(gen-1)*64
					for i := int64(0); i < 8; i++ {
						if v := mem.LoadU64(base.Add(at + i*8)); v != gen*100+uint64(i) {
							return fmt.Errorf("published append gen %d word %d reads %d", gen, i, v)
						}
					}
				}
				return nil
			},
		}, nil
	}

	rep, err := crashpoint.Explore(workload, crashpoint.Options{
		Schedule: crashpoint.TestSchedule(testing.Short(), 24),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		for _, f := range rep.Failures {
			t.Errorf("%v", f)
		}
		t.Fatalf("pmem consistent-update oracle failed at %d of %d crash points (%s)",
			len(rep.Failures), rep.Points, rep)
	}
	t.Logf("pmem: %s", rep)
}
