package serial

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/mtm"
	"repro/internal/pcmdisk"
	"repro/internal/pds"
	"repro/internal/pheap"
	"repro/internal/region"
	"repro/internal/scm"
)

func buildTree(t *testing.T, n int) (*mtm.Thread, *pds.RBTree) {
	t.Helper()
	dev, err := scm.Open(scm.Config{Size: 64 << 20, Mode: scm.DelayOff})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := region.Open(dev, region.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	base, err := rt.PMap(32<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := pheap.Format(rt, base, 32<<20, pheap.Config{Lanes: 1})
	if err != nil {
		t.Fatal(err)
	}
	tm, err := mtm.Open(rt, "serial", mtm.Config{Heap: heap, Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	th, err := tm.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	root, _, err := rt.Static("serial.root", 8)
	if err != nil {
		t.Fatal(err)
	}
	tree := pds.NewRBTree(root)
	for i := 0; i < n; i++ {
		key := uint64(i*2654435761) % 1000003
		if err := th.Atomic(func(tx *mtm.Tx) error {
			return tree.Insert(tx, key, []byte(fmt.Sprintf("payload-%d", key)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	return th, tree
}

func TestSerializeRoundTrip(t *testing.T) {
	th, tree := buildTree(t, 500)
	var buf []byte
	if err := th.Atomic(func(tx *mtm.Tx) error {
		buf = SerializeRBTree(tx, tree)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	keys, payloads, err := Deserialize(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 500 {
		t.Fatalf("deserialized %d keys", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatal("keys not sorted")
		}
	}
	for i, k := range keys {
		want := fmt.Sprintf("payload-%d", k)
		if string(payloads[i][:len(want)]) != want {
			t.Fatalf("payload %d mismatch", i)
		}
	}
}

func TestDeserializeRejectsGarbage(t *testing.T) {
	if _, _, err := Deserialize([]byte("definitely not an archive")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, _, err := Deserialize(nil); err == nil {
		t.Fatal("nil accepted")
	}
}

func TestDeserializeRejectsTruncated(t *testing.T) {
	th, tree := buildTree(t, 50)
	var buf []byte
	if err := th.Atomic(func(tx *mtm.Tx) error {
		buf = SerializeRBTree(tx, tree)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Deserialize(buf[:len(buf)-5]); err == nil {
		t.Fatal("truncated archive accepted")
	}
}

func TestSnapshotterAlternatesSlots(t *testing.T) {
	disk := pcmdisk.Open(pcmdisk.Config{Size: 16 << 20})
	s, err := NewSnapshotter(disk, "snap", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	a := bytes.Repeat([]byte("A"), 100)
	b := bytes.Repeat([]byte("B"), 200)
	if err := s.Save(a); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load()
	if err != nil || !bytes.Equal(got, a) {
		t.Fatalf("load A: %v", err)
	}
	if err := s.Save(b); err != nil {
		t.Fatal(err)
	}
	got, err = s.Load()
	if err != nil || !bytes.Equal(got, b) {
		t.Fatalf("load B: %v", err)
	}
	// A crash mid-save of the next snapshot must not damage the last
	// one: write garbage into the active slot without syncing.
	_ = s.file.WriteAt([]byte("garbage"), s.slot*s.half)
	disk.Crash(-1)
	got, err = s.Load()
	if err != nil || !bytes.Equal(got, b) {
		t.Fatalf("snapshot B lost after crash: %v", err)
	}
}
