// Package serial is the Boost-serialization baseline of Table 5: it
// serializes a whole in-memory (or persistent) red-black tree into a
// binary archive and writes it to a file on the PCM-disk, the way
// "productivity applications including word processors use this approach
// for periodic fast saves."
//
// The archive format mimics a Boost binary archive: a signature, a
// version, an element count, then (key, payload) records.
package serial

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/mtm"
	"repro/internal/pcmdisk"
	"repro/internal/pds"
)

var archiveMagic = [8]byte{'s', 'e', 'r', 'a', 'r', 'c', 'h', '1'}

// SerializeRBTree walks the tree in order and encodes it into a fresh
// archive buffer.
func SerializeRBTree(tx *mtm.Tx, tree *pds.RBTree) []byte {
	buf := make([]byte, 0, 4096)
	buf = append(buf, archiveMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, 1) // version
	countAt := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, 0)
	n := uint64(0)
	tree.InOrder(tx, func(key uint64, payload []byte) bool {
		buf = binary.LittleEndian.AppendUint64(buf, key)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
		buf = append(buf, payload...)
		n++
		return true
	})
	binary.LittleEndian.PutUint64(buf[countAt:], n)
	return buf
}

// Deserialize decodes an archive into (key, payload) pairs.
func Deserialize(buf []byte) (keys []uint64, payloads [][]byte, err error) {
	if len(buf) < 20 || [8]byte(buf[:8]) != archiveMagic {
		return nil, nil, errors.New("serial: bad archive signature")
	}
	if v := binary.LittleEndian.Uint32(buf[8:]); v != 1 {
		return nil, nil, fmt.Errorf("serial: unsupported version %d", v)
	}
	n := binary.LittleEndian.Uint64(buf[12:])
	off := 20
	for i := uint64(0); i < n; i++ {
		if off+12 > len(buf) {
			return nil, nil, errors.New("serial: truncated archive")
		}
		key := binary.LittleEndian.Uint64(buf[off:])
		plen := int(binary.LittleEndian.Uint32(buf[off+8:]))
		off += 12
		if off+plen > len(buf) {
			return nil, nil, errors.New("serial: truncated payload")
		}
		p := make([]byte, plen)
		copy(p, buf[off:])
		off += plen
		keys = append(keys, key)
		payloads = append(payloads, p)
	}
	return keys, payloads, nil
}

// Snapshotter persists archives to a file on the PCM-disk, alternating
// between two slots so a crash during a save never loses the previous
// snapshot (the usual fast-save discipline).
type Snapshotter struct {
	file *pcmdisk.File
	slot int64
	half int64
}

// NewSnapshotter creates (or reopens) a snapshot file that can hold two
// archives of up to maxArchive bytes each.
func NewSnapshotter(disk *pcmdisk.Disk, name string, maxArchive int64) (*Snapshotter, error) {
	f, err := disk.CreateFile(name, 2*(maxArchive+16))
	if err != nil {
		return nil, err
	}
	return &Snapshotter{file: f, half: maxArchive + 16}, nil
}

// Save writes the archive to the next slot and syncs — the operation
// whose latency Table 5 reports.
func (s *Snapshotter) Save(archive []byte) error {
	base := s.slot * s.half
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(archive)))
	if err := s.file.WriteAt(hdr[:], base); err != nil {
		return err
	}
	if err := s.file.WriteAt(archive, base+8); err != nil {
		return err
	}
	s.file.Sync()
	s.slot ^= 1
	return nil
}

// Load reads back the most recent snapshot.
func (s *Snapshotter) Load() ([]byte, error) {
	slot := s.slot ^ 1 // last written
	base := slot * s.half
	var hdr [8]byte
	if err := s.file.ReadAt(hdr[:], base); err != nil {
		return nil, err
	}
	n := int64(binary.LittleEndian.Uint64(hdr[:]))
	if n <= 0 || n > s.half-8 {
		return nil, errors.New("serial: no snapshot")
	}
	buf := make([]byte, n)
	if err := s.file.ReadAt(buf, base+8); err != nil {
		return nil, err
	}
	return buf, nil
}
