package core

import (
	"repro/internal/pds/mod"
	"repro/internal/pgc"
	"repro/internal/pmem"
)

// MOD shadow-update structures (internal/pds/mod) allocate out of band:
// a mutation clones its path into fresh heap blocks and commits by a
// root-pointer swap, so the blocks of superseded paths become garbage
// that no free list ever sees. ModSweep is the instance-wide deferred
// reclamation pass: it syncs every registered structure (so the last
// root swap is durable and the sweep cannot race a pending publication),
// then runs the heap collector with all pinned snapshot roots kept live.

// ModStructure is the surface a shadow-update structure exposes to the
// sweep: force the last root swap durable, and report the roots of
// snapshots still held by readers.
type ModStructure interface {
	Sync()
	PinnedRoots() []pmem.Addr
}

// RegisterMod enrolls a MOD structure in this instance's ModSweep. The
// constructors ModMap and ModQueue register automatically; structures
// built directly against the runtime and heap (pds.NewOrderedMap with
// pds.BackendMOD) are registered by their owner.
func (pm *PM) RegisterMod(s ModStructure) {
	pm.modMu.Lock()
	pm.mods = append(pm.mods, s)
	pm.modMu.Unlock()
}

// ModMap returns the shadow-update map rooted at the named static cell,
// registered for ModSweep. Reopening the same name reattaches to the
// surviving structure.
func (pm *PM) ModMap(name string) (*mod.Map, error) {
	root, _, err := pm.rt.Static(name, 8)
	if err != nil {
		return nil, err
	}
	m := mod.NewMap(pm.rt, pm.heap, root)
	pm.RegisterMod(m)
	return m, nil
}

// ModQueue returns the shadow-update queue rooted at the named static
// cell, registered for ModSweep.
func (pm *PM) ModQueue(name string) (*mod.Queue, error) {
	root, _, err := pm.rt.Static(name, 8)
	if err != nil {
		return nil, err
	}
	q := mod.NewQueue(pm.rt, pm.heap, root)
	pm.RegisterMod(q)
	return q, nil
}

// ModSweep reclaims heap blocks superseded by MOD shadow updates: every
// registered structure is synced, every root still pinned by a live
// snapshot is kept (with everything it reaches), and unreachable blocks
// return to the heap. Like PM.Collect (it is one), the sweep must run
// quiesced: no concurrent transactions, mutations, or new snapshots —
// snapshots pinned before the call survive it and stay readable.
func (pm *PM) ModSweep() (pgc.Report, error) {
	pm.modMu.Lock()
	mods := append([]ModStructure(nil), pm.mods...)
	pm.modMu.Unlock()
	var pins []pmem.Addr
	for _, s := range mods {
		s.Sync()
		pins = append(pins, s.PinnedRoots()...)
	}
	rep, err := pm.Collect(pins...)
	if err == nil && rep.Freed > 0 {
		mod.CountReclaimed(rep.Freed)
	}
	return rep, err
}
