// Package core assembles the Mnemosyne stack — SCM device, region
// runtime, persistent heap and durable transaction system — into one
// coherent persistent-memory instance, mirroring the paper's layered
// architecture (Figure 1):
//
//	Application
//	  Durable Transactions          (internal/mtm)
//	  Persistence Primitives        (internal/pmem, rawl, pheap)
//	  Persistent Regions            (internal/region)
//	OS Kernel: Region Manager       (internal/region.Manager)
//	Hardware: SCM                   (internal/scm)
//
// The root package re-exports this as the library's public API.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/mtm"
	"repro/internal/pgc"
	"repro/internal/pheap"
	"repro/internal/pmem"
	"repro/internal/rawl"
	"repro/internal/region"
	"repro/internal/scm"
	"repro/internal/telemetry"
)

// Config assembles a persistent-memory instance.
type Config struct {
	// DevicePath optionally backs the emulated SCM with a file so data
	// survives process exit. Empty keeps the device in memory (data
	// then survives simulated crashes, but not process exit).
	DevicePath string
	// DeviceSize is the SCM capacity (default 256 MB).
	DeviceSize int64
	// Dir is the backing directory for region files; empty follows
	// MNEMOSYNE_REGION_PATH and then the current directory.
	Dir string
	// WriteLatency is the emulated extra PCM write latency; zero uses
	// the paper's 150 ns.
	WriteLatency time.Duration
	// EmulateLatency spins for write delays, like the paper's
	// evaluation platform. Off, persistence semantics are identical but
	// time is not modeled.
	EmulateLatency bool
	// HeapSize reserves the persistent heap on first open (default
	// 64 MB, rounded up to pages). The heap is created lazily at first
	// use either way.
	HeapSize int64
	// AsyncTruncation moves transaction-log truncation off the commit
	// path (Figure 6's optimization).
	AsyncTruncation bool
	// Threads bounds concurrent transaction threads (default 32).
	// Thread slots are leased and recycled, so the bound caps concurrent
	// threads, not cumulative ones.
	Threads int
	// LeaseTimeout bounds how long ThreadPool.Lease waits for a free
	// transaction thread when all Threads slots are leased (default 5s).
	// Negative disables waiting: Lease fails immediately when full.
	LeaseTimeout time.Duration
	// GroupCommit routes commits through the group-commit coordinator:
	// concurrent transactions share one durability fence per commit
	// epoch instead of fencing individually. Requires redo logging (the
	// default).
	GroupCommit bool
	// GroupCommitWait is the epoch leader's gathering window while other
	// writers are active (default 50µs; negative disables waiting). An
	// idle system commits at single-operation latency regardless.
	GroupCommitWait time.Duration
	// GroupCommitBatch caps members per commit epoch (default 64).
	GroupCommitBatch int
	// LatencySampleRate samples commit/abort latency observations 1-in-N
	// (default 16; 1 records every transaction — what phase attribution
	// wants). Rounded up to a power of two.
	LatencySampleRate int
	// CommitMode selects the durable-commit protocol: "redo" (default),
	// "undo" (in-place stores guarded by a persisted undo record — one
	// fewer fence per commit), or "hybrid" (undo for write sets up to
	// HybridUndoMax, redo above). Undo modes require synchronous
	// truncation. See mtm.Config.CommitMode.
	CommitMode string
	// HybridUndoMax is hybrid mode's write-set threshold (default 16).
	HybridUndoMax int
	// ReadCacheWords sizes the volatile read-through cache of hot
	// persistent words, per memory view (0 disables). Cached hits skip
	// the emulated SCM read path; coherence comes from the versioned
	// transaction locks.
	ReadCacheWords int
	// ReadLatency is the emulated extra PCM read latency charged on word
	// loads (default 0: reads are free, the paper's model). Set alongside
	// ReadCacheWords to make read-cache experiments meaningful.
	ReadLatency time.Duration
	// Shards is accepted for compatibility with the sharded front end's
	// configuration (internal/shard embeds this Config). A core instance
	// is always exactly one shard: 0 and 1 mean the same thing, and
	// Open/Attach reject larger values — multi-shard stores are built
	// with the shard package's Open, which derives one core.Config per
	// shard from the embedded base.
	Shards int
}

func (c *Config) fill() {
	if c.DeviceSize == 0 {
		c.DeviceSize = 256 << 20
	}
	if c.HeapSize == 0 {
		// A quarter of the device, capped at 64 MB, leaving room for
		// the static region, transaction logs and user regions.
		c.HeapSize = c.DeviceSize / 4
		if c.HeapSize > 64<<20 {
			c.HeapSize = 64 << 20
		}
	}
	if c.Threads == 0 {
		c.Threads = 32
	}
	if c.LeaseTimeout == 0 {
		c.LeaseTimeout = 5 * time.Second
	}
}

// PM is an open persistent-memory instance.
type PM struct {
	cfg  Config
	dev  *scm.Device
	rt   *region.Runtime
	heap *pheap.Heap
	tm   *mtm.TM

	// MOD shadow-update structures registered for ModSweep (see mod.go).
	modMu sync.Mutex
	mods  []ModStructure
}

// Open creates or reincarnates a persistent-memory instance: it boots the
// region manager, remaps persistent regions, scavenges the heap and
// replays any committed-but-unflushed transactions.
func Open(cfg Config) (*PM, error) {
	cfg.fill()
	mode := scm.DelayOff
	if cfg.EmulateLatency {
		mode = scm.DelaySpin
	}
	dev, err := scm.Open(scm.Config{
		Size:         cfg.DeviceSize,
		Path:         cfg.DevicePath,
		WriteLatency: cfg.WriteLatency,
		ReadLatency:  cfg.ReadLatency,
		Mode:         mode,
	})
	if err != nil {
		return nil, err
	}
	return Attach(dev, cfg)
}

// Attach builds the software stack over an already-open device (used
// after a simulated crash, where the device survives and everything above
// it reincarnates).
func Attach(dev *scm.Device, cfg Config) (*PM, error) {
	cfg.fill()
	if cfg.Shards > 1 {
		return nil, fmt.Errorf("core: %d shards requested; a core instance is one shard — open multi-shard stores through the shard front end", cfg.Shards)
	}
	rt, err := region.Open(dev, region.Config{Dir: cfg.Dir})
	if err != nil {
		return nil, err
	}
	pm := &PM{cfg: cfg, dev: dev, rt: rt}

	heapPtr, _, err := rt.Static("core.heap", 8)
	if err != nil {
		return nil, err
	}
	mem := rt.NewMemory()
	if base := pmem.Addr(mem.LoadU64(heapPtr)); base == pmem.Nil {
		base, err := rt.PMapAt(heapPtr, cfg.HeapSize, 0)
		if err != nil {
			return nil, err
		}
		pm.heap, err = pheap.Format(rt, base, cfg.HeapSize, pheap.Config{Lanes: 16})
		if err != nil {
			return nil, err
		}
	} else {
		pm.heap, err = pheap.Open(rt, base)
		if errors.Is(err, pheap.ErrNoHeap) {
			// A crash between linking the heap region and Format's
			// commit point left the pointer set over unformatted
			// memory. The region exists solely for this heap and no
			// allocation can predate the missing magic, so reformat.
			pm.heap, err = pheap.Format(rt, base, cfg.HeapSize, pheap.Config{Lanes: 16})
		}
		if err != nil {
			return nil, err
		}
	}

	pm.tm, err = mtm.Open(rt, "core", mtm.Config{
		Heap:              pm.heap,
		Slots:             cfg.Threads,
		AsyncTruncation:   cfg.AsyncTruncation,
		GroupCommit:       cfg.GroupCommit,
		GroupCommitWait:   cfg.GroupCommitWait,
		GroupCommitBatch:  cfg.GroupCommitBatch,
		LatencySampleRate: cfg.LatencySampleRate,
		CommitMode:        cfg.CommitMode,
		HybridUndoMax:     cfg.HybridUndoMax,
		ReadCacheWords:    cfg.ReadCacheWords,
	})
	if err != nil {
		return nil, err
	}
	pm.registerTelemetry()
	return pm, nil
}

// registerTelemetry publishes sampled gauges over the stack's own stats
// interfaces. Sampling at exposition time keeps the store/flush hot paths
// free of shared-counter traffic; when a stack is reincarnated (crash
// tests, reopen), the latest instance wins the registration.
func (pm *PM) registerTelemetry() {
	dev, heap := pm.dev, pm.heap
	telemetry.NewSampled("scm_stores", "Cumulative uncached stores issued to the SCM device.",
		func() float64 { return float64(dev.Snapshot().Stores) })
	telemetry.NewSampled("scm_wt_stores", "Cumulative write-through stores issued to the SCM device.",
		func() float64 { return float64(dev.Snapshot().WTStores) })
	telemetry.NewSampled("scm_flushes", "Cumulative cache-line flushes issued to the SCM device.",
		func() float64 { return float64(dev.Snapshot().Flushes) })
	telemetry.NewSampled("scm_fences", "Cumulative persistence fences issued to the SCM device.",
		func() float64 { return float64(dev.Snapshot().Fences) })
	telemetry.NewSampled("scm_wt_bytes", "Cumulative bytes written through write-combining buffers.",
		func() float64 { return float64(dev.Snapshot().BytesWT) })
	telemetry.NewSampled("scm_accounted_delay_ns", "Cumulative emulated PCM write delay accounted, in nanoseconds.",
		func() float64 { return float64(dev.Snapshot().AccountedNs) })
	telemetry.NewSampled("scm_dirty_lines", "Cache lines currently dirty (unflushed) in the emulated cache.",
		func() float64 { return float64(dev.DirtyLines()) })
	telemetry.NewSampled("scm_pending_wt_words", "Write-combining buffer words not yet drained by a fence.",
		func() float64 { return float64(dev.PendingWTWords()) })
	telemetry.NewSampled("pheap_superblocks", "Superblocks managed by the persistent heap.",
		func() float64 { return float64(heap.Stats().Superblocks) })
	telemetry.NewSampled("pheap_free_superblocks", "Superblocks currently unassigned to any size class.",
		func() float64 { return float64(heap.Stats().FreeSuperblocks) })
	telemetry.NewSampled("pheap_large_bytes", "Bytes in the persistent heap's large-object extent.",
		func() float64 { return float64(heap.Stats().LargeBytes) })
	telemetry.NewSampled("pheap_large_free_bytes", "Free bytes in the persistent heap's large-object extent.",
		func() float64 { return float64(heap.Stats().LargeFreeBytes) })
	tm := pm.tm
	telemetry.NewSampled("mtm_fences_per_commit", "Device fences divided by committed transactions; group commit drives this below 1.",
		func() float64 {
			commits := tm.Snapshot().Commits
			if commits == 0 {
				return 0
			}
			return float64(dev.Snapshot().Fences) / float64(commits)
		})
}

// Close shuts the instance down cleanly: asynchronous truncation drains,
// caches flush, and (with a DevicePath) the device image is saved.
func (pm *PM) Close() error {
	pm.tm.Close()
	if err := pm.rt.Close(); err != nil {
		return err
	}
	return pm.dev.Close()
}

// Device exposes the emulated SCM (for crash injection in tests).
func (pm *PM) Device() *scm.Device { return pm.dev }

// Runtime exposes the region runtime.
func (pm *PM) Runtime() *region.Runtime { return pm.rt }

// Heap exposes the persistent heap.
func (pm *PM) Heap() *pheap.Heap { return pm.heap }

// TM exposes the transaction system.
func (pm *PM) TM() *mtm.TM { return pm.tm }

// Static returns the address of a named persistent static variable,
// allocating it on first use — the library analogue of the paper's
// pstatic keyword.
func (pm *PM) Static(name string, size int64) (addr pmem.Addr, created bool, err error) {
	return pm.rt.Static(name, size)
}

// PMap creates a dynamic persistent region of at least length bytes.
func (pm *PM) PMap(length int64) (pmem.Addr, error) {
	return pm.rt.PMap(length, 0)
}

// PMapAt creates a region and durably stores its address through the
// persistent pointer at ptr (the paper's leak-avoiding pmap signature).
func (pm *PM) PMapAt(ptr pmem.Addr, length int64) (pmem.Addr, error) {
	return pm.rt.PMapAt(ptr, length, 0)
}

// PUnmap deletes the dynamic region starting at addr.
func (pm *PM) PUnmap(addr pmem.Addr) error { return pm.rt.PUnmap(addr) }

// Memory returns a per-goroutine persistence-primitive view
// (store/wtstore/flush/fence at persistent addresses).
func (pm *PM) Memory() *region.Mem { return pm.rt.NewMemory() }

// NewThread returns a transaction thread for the calling goroutine. The
// caller owns the thread's log slot until Thread.Close returns it; use
// ThreadPool for lease/release discipline with a bounded wait.
func (pm *PM) NewThread() (*mtm.Thread, error) { return pm.tm.NewThread() }

// ThreadPool leases transaction threads against the instance's Threads
// bound. Lease blocks up to the configured LeaseTimeout when every slot
// is taken — a burst of sessions beyond Threads queues instead of
// erroring — and Release recycles the thread's log slot for the next
// lease. Servers take one lease per connection or session.
type ThreadPool struct {
	tm      *mtm.TM
	timeout time.Duration
}

// ThreadPool returns the instance's thread pool.
func (pm *PM) ThreadPool() *ThreadPool {
	return &ThreadPool{tm: pm.tm, timeout: pm.cfg.LeaseTimeout}
}

// Lease binds a transaction thread to a free log slot. When every slot
// is leased it waits until one frees, ctx is cancelled, or — when ctx
// carries no deadline of its own — the instance's LeaseTimeout elapses.
// The cancellation error matches both mnemosyne's ErrLeaseTimeout and
// ctx.Err() under errors.Is.
func (p *ThreadPool) Lease(ctx context.Context) (*mtm.Thread, error) {
	if p.timeout < 0 {
		return p.tm.NewThread()
	}
	if _, ok := ctx.Deadline(); !ok && p.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.timeout)
		defer cancel()
	}
	return p.tm.Lease(ctx)
}

// LeaseWithTimeout is Lease with a bare timeout instead of a context.
//
// Deprecated: use Lease with a context carrying the deadline.
func (p *ThreadPool) LeaseWithTimeout(timeout time.Duration) (*mtm.Thread, error) {
	return p.tm.LeaseThread(timeout)
}

// Release closes the thread, recycling its slot. A non-nil error means
// the handoff invariants could not be established and the slot was
// quarantined rather than reused.
func (p *ThreadPool) Release(th *mtm.Thread) error { return th.Close() }

// Atomic runs fn as a durable memory transaction on a leased thread — a
// convenience for programs with casual transaction needs; hot paths
// should keep a Thread per goroutine. The thread is released afterwards,
// so casual use no longer consumes log slots cumulatively.
func (pm *PM) Atomic(fn func(tx *mtm.Tx) error) error {
	th, err := pm.tm.LeaseThread(pm.cfg.LeaseTimeout)
	if err != nil {
		return err
	}
	defer th.Close()
	return th.Atomic(fn)
}

// AtomicBatch runs every fn inside one transaction on a single leased
// thread: one lease, one log append and one durability fence (or one
// group-commit epoch) for the whole batch, where per-fn Atomic calls
// would pay a lease and a fence each. The batch commits or aborts as a
// unit: an error from any fn rolls back them all.
func (pm *PM) AtomicBatch(fns []func(tx *mtm.Tx) error) error {
	if len(fns) == 0 {
		return nil
	}
	th, err := pm.tm.LeaseThread(pm.cfg.LeaseTimeout)
	if err != nil {
		return err
	}
	defer th.Close()
	return th.AtomicBatch(fns)
}

// View runs fn as a slot-free snapshot read transaction — the read-only
// counterpart of Atomic. Every load inside fn observes one consistent
// committed snapshot. A View takes no thread lease, writes no log record
// and issues no fence, so it succeeds even when every transaction thread
// is leased, and any number of Views run concurrently. fn may be retried
// on conflict with concurrent commits and must not write persistent
// memory.
func (pm *PM) View(fn func(r *mtm.ReadTx) error) error {
	return pm.tm.View(fn)
}

// ViewSpanned is View with an explicit parent span id: the snapshot read
// is attributed (as a "view" phase span) under the caller's span when
// tracing or attribution is enabled. Parent 0 is equivalent to View.
func (pm *PM) ViewSpanned(parent uint64, fn func(r *mtm.ReadTx) error) error {
	return pm.tm.ViewSpanned(parent, fn)
}

// Allocator returns a persistent-heap allocator handle (pmalloc/pfree)
// for non-transactional allocation.
func (pm *PM) Allocator() *pheap.Allocator { return pm.heap.NewAllocator() }

// CreateLog formats a tornbit raw word log of capacity words inside a
// fresh persistent region, rooted at the named static pointer.
func (pm *PM) CreateLog(name string, words int64) (*rawl.Log, error) {
	ptr, _, err := pm.rt.Static(name, 8)
	if err != nil {
		return nil, err
	}
	mem := pm.rt.NewMemory()
	if base := pmem.Addr(mem.LoadU64(ptr)); base != pmem.Nil {
		return nil, fmt.Errorf("core: log %q already exists; use OpenLog", name)
	}
	base, err := pm.rt.PMapAt(ptr, rawl.Size(words), 0)
	if err != nil {
		return nil, err
	}
	return rawl.Create(mem, base, words)
}

// Collect runs a conservative mark-sweep garbage collection over the
// persistent heap (internal/pgc), reclaiming allocations unreachable from
// any persistent word. The instance must be quiesced: no concurrent
// transactions or allocations. extraRoots pins blocks referenced only
// from volatile memory.
func (pm *PM) Collect(extraRoots ...pmem.Addr) (pgc.Report, error) {
	gc, err := pgc.New(pm.rt, pm.heap)
	if err != nil {
		return pgc.Report{}, err
	}
	gc.SkipRegions = []pmem.Addr{pm.tm.RegionBase()}
	gc.ExtraRoots = extraRoots
	return gc.Collect()
}

// OpenLog reopens a named log, returning the records that survived (in
// append order) for the caller to replay.
func (pm *PM) OpenLog(name string) (*rawl.Log, [][]uint64, error) {
	ptr, created, err := pm.rt.Static(name, 8)
	if err != nil {
		return nil, nil, err
	}
	mem := pm.rt.NewMemory()
	base := pmem.Addr(mem.LoadU64(ptr))
	if created || base == pmem.Nil {
		return nil, nil, errors.New("core: no such log; use CreateLog")
	}
	return rawl.Open(mem, base)
}
