package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/mtm"
	"repro/internal/pmem"
	"repro/internal/scm"
)

func testPM(t *testing.T) *PM {
	t.Helper()
	pm, err := Open(Config{Dir: t.TempDir(), DeviceSize: 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return pm
}

func TestOpenBuildsWholeStack(t *testing.T) {
	pm := testPM(t)
	if pm.Device() == nil || pm.Runtime() == nil || pm.Heap() == nil || pm.TM() == nil {
		t.Fatal("incomplete stack")
	}
	if err := pm.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestHeapSizeDefaultsScaleWithDevice(t *testing.T) {
	// A small device must still open: the default heap shrinks to fit.
	pm, err := Open(Config{Dir: t.TempDir(), DeviceSize: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ptr, _, err := pm.Static("t.p", 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pm.Allocator().PMalloc(4096, ptr); err != nil {
		t.Fatal(err)
	}
}

func TestAttachAfterCrashRecovers(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, DeviceSize: 128 << 20, AsyncTruncation: true}
	pm, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, _, err := pm.Static("t.words", 8*64)
	if err != nil {
		t.Fatal(err)
	}
	th, err := pm.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 64; i++ {
		i := i
		if err := th.Atomic(func(tx *mtm.Tx) error {
			tx.StoreU64(addr.Add(i*8), uint64(i)+1000)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	pm.TM().StopTruncation()
	dev := pm.Device()
	dev.Crash(scm.DropAll{})
	if err := pm.Runtime().Close(); err != nil {
		t.Fatal(err)
	}

	pm2, err := Attach(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mem := pm2.Memory()
	for i := int64(0); i < 64; i++ {
		if got := mem.LoadU64(addr.Add(i * 8)); got != uint64(i)+1000 {
			t.Fatalf("word %d = %d after recovery", i, got)
		}
	}
}

func TestLogLifecycle(t *testing.T) {
	pm := testPM(t)
	if _, _, err := pm.OpenLog("t.nolog"); err == nil {
		t.Fatal("opening a missing log must fail")
	}
	log, err := pm.CreateLog("t.log", 512)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pm.CreateLog("t.log", 512); err == nil {
		t.Fatal("double create must fail")
	}
	for i := uint64(0); i < 10; i++ {
		if _, err := log.Append([]uint64{i, i * 2}); err != nil {
			t.Fatal(err)
		}
	}
	log.Flush()
	pm.Device().Crash(scm.DropAll{})
	_, recs, err := pm.OpenLog("t.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 || recs[9][1] != 18 {
		t.Fatalf("recovered %d records", len(recs))
	}
}

func TestAtomicConvenienceRecyclesSlots(t *testing.T) {
	pm, err := Open(Config{Dir: t.TempDir(), DeviceSize: 64 << 20, Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := pm.Static("t.a", 8)
	if err != nil {
		t.Fatal(err)
	}
	// Each Atomic leases and releases a thread, so calls well beyond the
	// Threads bound must all succeed — slot use is per-call, not
	// cumulative.
	for i := 0; i < 20; i++ {
		if err := pm.Atomic(func(tx *mtm.Tx) error {
			tx.StoreU64(a, uint64(i))
			return nil
		}); err != nil {
			t.Fatalf("Atomic %d: %v", i, err)
		}
	}
	if got := pm.TM().LiveThreads(); got != 0 {
		t.Fatalf("live threads after Atomic calls = %d, want 0", got)
	}
}

func TestThreadPoolLeaseReleaseAndTimeout(t *testing.T) {
	pm, err := Open(Config{Dir: t.TempDir(), DeviceSize: 64 << 20, Threads: 2,
		LeaseTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	pool := pm.ThreadPool()
	t1, err := pool.Lease(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t2, err := pool.Lease(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Full pool: a third lease must wait and time out.
	if _, err := pool.Lease(context.Background()); !errors.Is(err, mtm.ErrLeaseTimeout) {
		t.Fatalf("lease on full pool: %v, want ErrLeaseTimeout", err)
	}
	// A concurrent release unblocks a waiting lease before its timeout.
	pm2, err := Open(Config{Dir: t.TempDir(), DeviceSize: 64 << 20, Threads: 2,
		LeaseTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	pool2 := pm2.ThreadPool()
	a1, _ := pool2.Lease(context.Background())
	a2, _ := pool2.Lease(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		pool2.Release(a1)
	}()
	a3, err := pool2.Lease(context.Background())
	if err != nil {
		t.Fatalf("lease after concurrent release: %v", err)
	}
	for _, th := range []*mtm.Thread{t1, t2, a2, a3} {
		if err := th.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPMapAndPUnmap(t *testing.T) {
	pm := testPM(t)
	ptr, _, err := pm.Static("t.region", 8)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := pm.PMapAt(ptr, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	mem := pm.Memory()
	if got := pmem.Addr(mem.LoadU64(ptr)); got != addr {
		t.Fatalf("root = %v", got)
	}
	if err := pm.PUnmap(addr); err != nil {
		t.Fatal(err)
	}
	if err := pm.PUnmap(addr); err == nil {
		t.Fatal("double unmap must fail")
	}
}

func TestAtomicBatchSingleTransaction(t *testing.T) {
	pm := testPM(t)
	a, _, err := pm.Static("t.batch", 64)
	if err != nil {
		t.Fatal(err)
	}
	fns := make([]func(tx *mtm.Tx) error, 8)
	for i := range fns {
		i := i
		fns[i] = func(tx *mtm.Tx) error {
			tx.StoreU64(a.Add(int64(i)*8), uint64(i+1))
			return nil
		}
	}
	before := pm.TM().Snapshot().Commits
	if err := pm.AtomicBatch(fns); err != nil {
		t.Fatal(err)
	}
	if got := pm.TM().Snapshot().Commits - before; got != 1 {
		t.Fatalf("batch of 8 fns cost %d commits, want 1", got)
	}
	mem := pm.Memory()
	for i := int64(0); i < 8; i++ {
		if got := mem.LoadU64(a.Add(i * 8)); got != uint64(i+1) {
			t.Fatalf("word %d = %d, want %d", i, got, i+1)
		}
	}
	// An empty batch is a no-op, not an error.
	if err := pm.AtomicBatch(nil); err != nil {
		t.Fatal(err)
	}
	// A failing fn aborts the whole batch and releases the lease.
	boom := errors.New("boom")
	fns[3] = func(tx *mtm.Tx) error {
		tx.StoreU64(a, 999)
		return boom
	}
	if err := pm.AtomicBatch(fns); !errors.Is(err, boom) {
		t.Fatalf("failing batch: %v, want boom", err)
	}
	if got := mem.LoadU64(a); got != 1 {
		t.Fatalf("aborted batch leaked word 0 = %d, want 1", got)
	}
	if got := pm.TM().LiveThreads(); got != 0 {
		t.Fatalf("live threads after AtomicBatch calls = %d, want 0", got)
	}
}
