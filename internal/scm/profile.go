package scm

import "time"

// Profile captures the access characteristics of a memory technology, as
// surveyed in Table 1 of the paper. ReadLatency is informational: the
// emulator, like the paper's, does not delay loads (§6.1).
type Profile struct {
	Name        string
	ReadLatency time.Duration
	// WriteLatency is the technology's write latency; the emulator
	// charges the *extra* latency over DRAM, per §6.1.
	WriteLatency time.Duration
	// Endurance is the supported number of overwrites per cell.
	Endurance float64
}

// Technology profiles from Table 1. PCMToday is the currently available
// part; PCMProspective matches research prototypes whose write latencies
// the evaluation sweeps over (150 ns default, 1000 ns and 2000 ns in
// Figure 7).
var (
	DRAM = Profile{
		Name:         "DRAM",
		ReadLatency:  60 * time.Nanosecond,
		WriteLatency: 60 * time.Nanosecond,
		Endurance:    1e16,
	}
	NANDFlash = Profile{
		Name:         "NAND Flash",
		ReadLatency:  25 * time.Microsecond,
		WriteLatency: 350 * time.Microsecond,
		Endurance:    1e5,
	}
	PCMToday = Profile{
		Name:         "PCM (today)",
		ReadLatency:  115 * time.Nanosecond,
		WriteLatency: 120 * time.Microsecond,
		Endurance:    1e6,
	}
	PCMProspective = Profile{
		Name:         "PCM (prospective)",
		ReadLatency:  67 * time.Nanosecond,
		WriteLatency: 150 * time.Nanosecond,
		Endurance:    1e10,
	}
	STTRAM = Profile{
		Name:         "STT-RAM",
		ReadLatency:  6 * time.Nanosecond,
		WriteLatency: 13 * time.Nanosecond,
		Endurance:    1e15,
	}
)

// ExtraWriteLatency returns the additional write latency this technology
// has over DRAM, which is what the emulator charges per write reaching the
// device.
func (p Profile) ExtraWriteLatency() time.Duration {
	d := p.WriteLatency - DRAM.WriteLatency
	if d < 0 {
		return 0
	}
	return d
}
