package scm

import (
	"fmt"
	"math/rand"
)

// CrashPolicy decides, for each unpersisted write, whether it survives a
// simulated power failure. The paper's failure model (§2): "on a system
// failure, in-flight memory operations may fail, and atomic updates either
// complete or do not modify memory". The atomic unit is a 64-bit word for
// streaming writes and a cache line for cached stores.
type CrashPolicy interface {
	// KeepLine reports whether the dirty cache line at off reached SCM.
	KeepLine(off int64) bool
	// KeepWord reports whether the unfenced streaming word at off
	// reached SCM.
	KeepWord(off int64) bool
}

// DropAll loses every unpersisted write: the most adversarial power
// failure.
type DropAll struct{}

func (DropAll) KeepLine(int64) bool { return false }
func (DropAll) KeepWord(int64) bool { return false }

// KeepAll persists every in-flight write, as if the failure arrived just
// after everything drained.
type KeepAll struct{}

func (KeepAll) KeepLine(int64) bool { return true }
func (KeepAll) KeepWord(int64) bool { return true }

// RandomPolicy keeps each in-flight write independently with probability
// 1/2, using a deterministic seed so failures are reproducible.
type RandomPolicy struct{ rng *rand.Rand }

// NewRandomPolicy returns a reproducible random crash policy.
func NewRandomPolicy(seed int64) *RandomPolicy {
	return &RandomPolicy{rng: rand.New(rand.NewSource(seed))}
}

func (p *RandomPolicy) KeepLine(int64) bool { return p.rng.Intn(2) == 0 }
func (p *RandomPolicy) KeepWord(int64) bool { return p.rng.Intn(2) == 0 }

// Crash simulates a power failure and reboot. Every dirty cache line and
// every unfenced streaming word is either persisted or reverted to its
// last durable value, per the policy. Afterwards the device is in the
// state a fresh boot would observe: caches empty, WC buffers empty.
//
// The device must be quiesced: no concurrent operations, including on
// contexts. Crash fails loudly (panics) if any context has an operation in
// flight — crashing mid-operation would silently corrupt the reverted
// state. Existing contexts remain usable after Crash, modeling the process
// restarting on the same "hardware".
func (d *Device) Crash(policy CrashPolicy) {
	ctxs := d.snapshotContexts()
	for _, ctx := range ctxs {
		if ctx.inOp != 0 {
			panic(fmt.Sprintf(
				"scm: Crash while context %d has %d operation(s) in flight; the device must be quiesced (use CrashMidOp after a simulated power failure)",
				ctx.id, ctx.inOp))
		}
	}
	d.crash(policy, ctxs)
}

// CrashMidOp is Crash without the quiescence assertion, for the one caller
// that legitimately crashes mid-operation: the crash-point explorer, whose
// power-failure trigger panics out of a probe and leaves the interrupted
// context's in-flight counter unbalanced. It resets those counters and the
// power-cut freeze before reverting state.
func (d *Device) CrashMidOp(policy CrashPolicy) {
	d.crash(policy, d.snapshotContexts())
}

func (d *Device) snapshotContexts() []*Context {
	d.mu.Lock()
	ctxs := append([]*Context(nil), d.contexts...)
	d.mu.Unlock()
	return ctxs
}

// crash reverts unpersisted state per the policy. It clears the power-cut
// freeze first: the reverts below go through storeWord, which refuses to
// run on a power-cut device.
func (d *Device) crash(policy CrashPolicy, ctxs []*Context) {
	d.powerCut = false
	// Streaming words first: a WC word is newer than any cached line
	// pre-image only when the program mixed Store and WTStore on the
	// same line without an intervening flush, which the programming
	// model forbids (the paper uses wtstore for logs and store+flush
	// for data, on disjoint lines).
	for _, ctx := range ctxs {
		ctx.inOp = 0
		for _, p := range ctx.wc {
			if !policy.KeepWord(p.off) {
				d.storeWord(p.off, p.old)
			}
		}
		ctx.wc = ctx.wc[:0]
		ctx.wcBytes = 0
	}
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		for line, old := range sh.m {
			if !policy.KeepLine(line) {
				d.revertLine(line, old)
			}
		}
		sh.m = make(map[int64][WordsPerLine]uint64)
		sh.mu.Unlock()
	}
}
