package scm

import (
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// pendingWT is a streaming write sitting in a write-combining buffer: it is
// visible to the program but not yet durable. old is the word's last
// durable value, used to revert it on crash.
type pendingWT struct {
	off int64
	old uint64
}

// opCounters is the published view of one context's operation counts.
// Only the owning goroutine writes them, but Device.Snapshot reads them
// concurrently, so they are atomics; the trailing padding rounds the
// block up to a cache line so two contexts' hot counters never
// false-share. The owner does not touch these on the per-word fast path:
// it tallies into plain opTally fields and copies them here at each
// Fence, so a store costs an ordinary increment rather than a locked
// read-modify-write. Snapshot therefore lags a context's unfenced tail
// of operations — every durability path ends in a fence, so quiesced
// totals are exact.
type opCounters struct {
	stores      atomic.Uint64
	wtStores    atomic.Uint64
	flushes     atomic.Uint64
	fences      atomic.Uint64
	accountedNs atomic.Int64 // virtual delay in DelayAccount mode
	_           [24]byte
}

// opTally is the owner-side tally behind opCounters: plain fields touched
// only by the context's goroutine.
type opTally struct {
	stores      uint64
	wtStores    uint64
	flushes     uint64
	fences      uint64
	accountedNs int64
}

// Context is a per-goroutine view of the device, owning the goroutine's
// write-combining buffer and delay accounting. It corresponds to a hardware
// thread in the paper's emulator.
type Context struct {
	dev *Device
	id  uint64 // 1-based creation index; the trace tid

	// wc holds streaming writes not yet drained by a fence.
	wc      []pendingWT
	wcBytes int64

	// inOp is the depth of mutating operations currently executing on
	// this context. Device.Crash asserts it is zero (quiesced); a
	// crash-point trigger panicking out of a probe leaves it nonzero,
	// which CrashMidOp resets. Owner-goroutine only, so a plain int.
	inOp int

	// Operation counters: t is the owner-only tally, n the published
	// copy aggregated by Device.Snapshot.
	t opTally
	n opCounters
}

// publish copies the owner-side tally into the atomics Device.Snapshot
// reads. Called at Fence, the natural (and already expensive)
// serialization point.
// Unchanged counters are skipped: an uncontended atomic load is an
// ordinary load, so the comparison costs nothing, while the avoided
// atomic store is a full memory barrier.
func (c *Context) publish() {
	if v := c.t.stores; c.n.stores.Load() != v {
		c.n.stores.Store(v)
	}
	if v := c.t.wtStores; c.n.wtStores.Load() != v {
		c.n.wtStores.Store(v)
	}
	if v := c.t.flushes; c.n.flushes.Load() != v {
		c.n.flushes.Store(v)
	}
	c.n.fences.Store(c.t.fences)
	if v := c.t.accountedNs; c.n.accountedNs.Load() != v {
		c.n.accountedNs.Store(v)
	}
}

// Device returns the owning device.
func (c *Context) Device() *Device { return c.dev }

// AccountedTime reports this context's accumulated virtual delay.
func (c *Context) AccountedTime() time.Duration {
	return time.Duration(c.t.accountedNs)
}

// ResetAccounting zeroes this context's virtual delay counter.
func (c *Context) ResetAccounting() {
	c.t.accountedNs = 0
	c.n.accountedNs.Store(0)
}

func align8(off int64) bool { return off&7 == 0 }

// LoadU64 reads the 64-bit word at off. Loads hit the coherent memory
// image, so they observe unflushed stores and unfenced streaming writes,
// exactly as loads on a real cache-coherent machine do.
func (c *Context) LoadU64(off int64) uint64 {
	c.dev.checkRange(off, WordSize)
	if !align8(off) {
		panic("scm: unaligned LoadU64")
	}
	if c.dev.cfg.ReadLatency > 0 {
		c.delay(c.dev.cfg.ReadLatency)
	}
	return c.dev.loadWord(off)
}

// StoreU64 performs a regular cacheable write (the paper's store()
// primitive, x86 mov). The write is immediately visible but volatile until
// the containing line is flushed. No delay applies: the write hits the
// cache.
func (c *Context) StoreU64(off int64, v uint64) {
	c.dev.checkRange(off, WordSize)
	if !align8(off) {
		panic("scm: unaligned StoreU64")
	}
	c.inOp++
	c.dev.markDirty(off)
	c.dev.storeWord(off, v)
	c.t.stores++
	c.inOp--
}

// StoreU64InDirtyLine is StoreU64 for a word whose cache line this context
// has already dirtied since the last flush of that line: the pre-image is
// already recorded, so the dirty-table bookkeeping is skipped. Batch
// writers (the transaction write-back path) use it for the second and
// later stores to a line.
func (c *Context) StoreU64InDirtyLine(off int64, v uint64) {
	c.dev.checkRange(off, WordSize)
	if !align8(off) {
		panic("scm: unaligned StoreU64InDirtyLine")
	}
	c.inOp++
	c.dev.storeWord(off, v)
	c.t.stores++
	c.inOp--
}

// WTStoreU64 performs a streaming write-through write (the paper's
// wtstore() primitive, x86 movntq). The write is visible immediately and
// becomes durable at the next Fence; until then it may be lost, per word,
// on a crash. Bandwidth cost is charged at the draining fence, modeling
// write combining.
func (c *Context) WTStoreU64(off int64, v uint64) {
	c.dev.checkRange(off, WordSize)
	if !align8(off) {
		panic("scm: unaligned WTStoreU64")
	}
	c.inOp++
	c.dev.checkAlive()
	c.wc = append(c.wc, pendingWT{off: off, old: c.dev.loadWord(off)})
	c.dev.storeWord(off, v)
	c.wcBytes += WordSize
	c.t.wtStores++
	c.inOp--
}

// Flush writes the cache line containing off back to SCM (the paper's
// flush() primitive, x86 clflush), making any cached stores to that line
// durable. It charges the PCM write latency when the line was dirty.
func (c *Context) Flush(off int64) {
	c.dev.checkRange(off, 1)
	line := off &^ (LineSize - 1)
	c.inOp++
	// A clean-line flush changes no durable state, so only a dirty line's
	// write-back counts as a crash-point event.
	if p := c.dev.probeP(); p != nil && c.dev.lineDirty(line) {
		p.Event(ProbeFlush, c.id, line, 1)
	}
	dirty := c.dev.persistLine(line)
	if dirty {
		c.delay(c.dev.cfg.WriteLatency)
	}
	c.t.flushes++
	if telemetry.TraceEnabled() {
		wasDirty := uint64(0)
		if dirty {
			wasDirty = 1
		}
		telemetry.Emit(telemetry.EvFlush, c.id, uint64(line), wasDirty)
	}
	c.inOp--
}

// FlushRange flushes every cache line overlapping [off, off+n).
func (c *Context) FlushRange(off, n int64) {
	if n <= 0 {
		return
	}
	c.dev.checkRange(off, n)
	first := off &^ (LineSize - 1)
	last := (off + n - 1) &^ (LineSize - 1)
	for line := first; line <= last; line += LineSize {
		c.Flush(line)
	}
}

// Fence drains this context's write-combining buffer and stalls until all
// its prior writes are durable (the paper's fence() primitive, x86 mfence
// after movntq). The delay models waiting for outstanding writes plus the
// bandwidth-limited streaming of the combined data.
func (c *Context) Fence() {
	sp := telemetry.SpanBegin(telemetry.PhaseFence, c.id, 0)
	defer sp.End()
	c.inOp++
	if p := c.dev.probeP(); p != nil {
		kind := ProbeFence
		if len(c.wc) > 0 {
			kind = ProbeDrain
		}
		p.Event(kind, c.id, -1, len(c.wc))
	}
	c.dev.checkAlive()
	c.wc = c.wc[:0]
	drained := c.wcBytes
	d := c.dev.cfg.WriteLatency
	if drained > 0 && c.dev.cfg.WriteBandwidth > 0 {
		d += time.Duration(float64(drained) / c.dev.cfg.WriteBandwidth * 1e9)
	}
	c.wcBytes = 0
	c.delay(d)
	c.t.fences++
	c.publish()
	if telemetry.TraceEnabled() {
		telemetry.Emit(telemetry.EvFence, c.id, uint64(drained), 0)
	}
	c.inOp--
}

// FenceGroup drains this context's write-combining buffer and every
// peer's with a single fence, making all their prior streaming writes
// durable at once. It is the device-level primitive behind group commit:
// one mfence on the leader's hardware thread orders the combined stream,
// so only the leader's fence count advances while every member's pending
// data is charged against bandwidth. Callers must own every peer context
// for the duration of the call (group-commit members are parked on the
// epoch's completion channel, which transfers ownership to the leader).
func (c *Context) FenceGroup(peers ...*Context) {
	sp := telemetry.SpanBegin(telemetry.PhaseFence, c.id, 0)
	defer sp.End()
	c.inOp++
	pending := len(c.wc)
	drained := c.wcBytes
	for _, p := range peers {
		pending += len(p.wc)
		drained += p.wcBytes
	}
	// The probe event carries the combined pending count and fires before
	// any buffer is cleared, so crash policies still see every member's
	// undrained words.
	if pb := c.dev.probeP(); pb != nil {
		kind := ProbeFence
		if pending > 0 {
			kind = ProbeDrain
		}
		pb.Event(kind, c.id, -1, pending)
	}
	c.dev.checkAlive()
	c.wc = c.wc[:0]
	c.wcBytes = 0
	for _, p := range peers {
		p.wc = p.wc[:0]
		p.wcBytes = 0
	}
	d := c.dev.cfg.WriteLatency
	if drained > 0 && c.dev.cfg.WriteBandwidth > 0 {
		d += time.Duration(float64(drained) / c.dev.cfg.WriteBandwidth * 1e9)
	}
	c.delay(d)
	c.t.fences++
	c.publish()
	for _, p := range peers {
		p.publish()
	}
	if telemetry.TraceEnabled() {
		telemetry.Emit(telemetry.EvFence, c.id, uint64(drained), uint64(len(peers)))
	}
	c.inOp--
}

// Load copies n = len(buf) bytes starting at off into buf. Byte-granular
// access is assembled from atomic word loads.
func (c *Context) Load(buf []byte, off int64) {
	n := int64(len(buf))
	if n == 0 {
		return
	}
	c.dev.checkRange(off, n)
	i := int64(0)
	for i < n {
		w := c.dev.loadWord((off + i) &^ 7)
		shift := uint((off + i) & 7)
		for ; shift < 8 && i < n; shift++ {
			buf[i] = byte(w >> (shift * 8))
			i++
		}
	}
}

// Store performs cacheable writes of buf at off. Partial words at the
// edges use read-modify-write; callers racing on the same word must
// synchronize externally (the transaction system's locks do).
func (c *Context) Store(off int64, buf []byte) {
	c.rmw(off, buf, c.StoreU64)
}

// WTStore performs streaming writes of buf at off.
func (c *Context) WTStore(off int64, buf []byte) {
	c.rmw(off, buf, c.WTStoreU64)
}

func (c *Context) rmw(off int64, buf []byte, put func(int64, uint64)) {
	n := int64(len(buf))
	if n == 0 {
		return
	}
	c.dev.checkRange(off, n)
	i := int64(0)
	for i < n {
		wordOff := (off + i) &^ 7
		shift := uint((off + i) & 7)
		if shift == 0 && n-i >= 8 {
			v := uint64(buf[i]) | uint64(buf[i+1])<<8 | uint64(buf[i+2])<<16 |
				uint64(buf[i+3])<<24 | uint64(buf[i+4])<<32 | uint64(buf[i+5])<<40 |
				uint64(buf[i+6])<<48 | uint64(buf[i+7])<<56
			put(wordOff, v)
			i += 8
			continue
		}
		w := c.dev.loadWord(wordOff)
		for ; shift < 8 && i < n; shift++ {
			w &^= 0xff << (shift * 8)
			w |= uint64(buf[i]) << (shift * 8)
			i++
		}
		put(wordOff, w)
	}
}

// delay realizes a write delay according to the configured mode.
func (c *Context) delay(d time.Duration) {
	if d <= 0 {
		return
	}
	switch c.dev.cfg.Mode {
	case DelayOff:
	case DelaySpin:
		spin(d)
	case DelayAccount:
		c.t.accountedNs += int64(d)
	}
}

// spin busy-waits for d, like the paper's TSC calibration loop. The wait
// deliberately does not yield: an mfence stall occupies its core, so on a
// host with as many CPUs as emulated threads the model is exact. (On a
// host with fewer CPUs, emulated threads time-slice and multi-thread
// scaling cannot exceed one core's worth — see EXPERIMENTS.md.)
func spin(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}
