package scm

import (
	"sync"
	"testing"
)

// TestSnapshotWhileHammering is the regression test for the racy
// per-context counters: Device.Snapshot used to read plain uint64 fields
// that contexts incremented without synchronization, so running this under
// `go test -race` failed. Contexts now tally into owner-only fields and
// publish atomics at each fence, which Snapshot reads.
func TestSnapshotWhileHammering(t *testing.T) {
	d, err := Open(Config{Size: 1 << 20, Mode: DelayAccount})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	const opsPer = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := d.NewContext()
			base := int64(w) * 4096
			for i := 0; i < opsPer; i++ {
				off := base + int64(i%64)*8
				ctx.StoreU64(off, uint64(i))
				ctx.WTStoreU64(off, uint64(i))
				ctx.Flush(off)
				ctx.Fence()
			}
		}(w)
	}

	// Snapshot continuously while the workers hammer.
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = d.Snapshot()
				_ = d.AccountedTime()
			}
		}
	}()

	wg.Wait()
	close(stop)
	snapWG.Wait()

	s := d.Snapshot()
	want := uint64(workers * opsPer)
	if s.Stores != want || s.WTStores != want || s.Flushes != want || s.Fences != want {
		t.Errorf("snapshot = %+v, want %d of each op", s, want)
	}
	if s.BytesWT != want*WordSize {
		t.Errorf("BytesWT = %d, want %d", s.BytesWT, want*WordSize)
	}
	if s.AccountedNs == 0 {
		t.Error("AccountedNs = 0, want accumulated delay in DelayAccount mode")
	}
}
