package scm

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"
)

func testDevice(t *testing.T, size int64) *Device {
	t.Helper()
	d, err := Open(Config{Size: size, Mode: DelayOff})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return d
}

func TestOpenRoundsSizeToPage(t *testing.T) {
	d := testDevice(t, 100)
	if d.Size() != PageSize {
		t.Fatalf("size = %d, want %d", d.Size(), PageSize)
	}
}

func TestStoreLoadU64(t *testing.T) {
	d := testDevice(t, 1<<16)
	ctx := d.NewContext()
	ctx.StoreU64(64, 0xdeadbeefcafef00d)
	if got := ctx.LoadU64(64); got != 0xdeadbeefcafef00d {
		t.Fatalf("LoadU64 = %#x", got)
	}
	if got := ctx.LoadU64(72); got != 0 {
		t.Fatalf("adjacent word = %#x, want 0", got)
	}
}

func TestUnalignedWordAccessPanics(t *testing.T) {
	d := testDevice(t, 1<<16)
	ctx := d.NewContext()
	for _, f := range []func(){
		func() { ctx.LoadU64(3) },
		func() { ctx.StoreU64(5, 1) },
		func() { ctx.WTStoreU64(9, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on unaligned access")
				}
			}()
			f()
		}()
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d := testDevice(t, 1<<12)
	ctx := d.NewContext()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range access")
		}
	}()
	ctx.StoreU64(d.Size(), 1)
}

func TestByteLoadStoreRoundTrip(t *testing.T) {
	d := testDevice(t, 1<<16)
	ctx := d.NewContext()
	msg := []byte("the quick brown fox jumps over the lazy dog")
	// Deliberately unaligned offset.
	ctx.Store(13, msg)
	got := make([]byte, len(msg))
	ctx.Load(got, 13)
	if string(got) != string(msg) {
		t.Fatalf("round trip = %q", got)
	}
}

func TestByteStoreDoesNotClobberNeighbors(t *testing.T) {
	d := testDevice(t, 1<<16)
	ctx := d.NewContext()
	ctx.StoreU64(0, 0x1111111111111111)
	ctx.StoreU64(8, 0x2222222222222222)
	ctx.Store(6, []byte{0xaa, 0xbb, 0xcc, 0xdd})
	if got := ctx.LoadU64(0); got != 0xbbaa111111111111 {
		t.Fatalf("word0 = %#x", got)
	}
	if got := ctx.LoadU64(8); got != 0x222222222222ddcc {
		t.Fatalf("word1 = %#x", got)
	}
}

func TestQuickByteRoundTrip(t *testing.T) {
	d := testDevice(t, 1<<16)
	ctx := d.NewContext()
	f := func(off uint16, data []byte) bool {
		o := int64(off)
		if len(data) == 0 || o+int64(len(data)) > d.Size() {
			return true
		}
		ctx.Store(o, data)
		got := make([]byte, len(data))
		ctx.Load(got, o)
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCrashDropAllRevertsUnflushedStores(t *testing.T) {
	d := testDevice(t, 1<<16)
	ctx := d.NewContext()
	ctx.StoreU64(0, 1)
	ctx.Flush(0)
	ctx.StoreU64(0, 2) // dirty again, not flushed
	ctx.StoreU64(128, 3)
	d.Crash(DropAll{})
	if got := ctx.LoadU64(0); got != 1 {
		t.Fatalf("word0 after crash = %d, want flushed value 1", got)
	}
	if got := ctx.LoadU64(128); got != 0 {
		t.Fatalf("word128 after crash = %d, want 0", got)
	}
	if d.DirtyLines() != 0 {
		t.Fatalf("dirty lines after crash = %d", d.DirtyLines())
	}
}

func TestCrashKeepAllPersistsEverything(t *testing.T) {
	d := testDevice(t, 1<<16)
	ctx := d.NewContext()
	ctx.StoreU64(0, 7)
	ctx.WTStoreU64(64, 9)
	d.Crash(KeepAll{})
	if got := ctx.LoadU64(0); got != 7 {
		t.Fatalf("cached store lost: %d", got)
	}
	if got := ctx.LoadU64(64); got != 9 {
		t.Fatalf("streaming store lost: %d", got)
	}
}

func TestWTStoreVolatileUntilFence(t *testing.T) {
	d := testDevice(t, 1<<16)
	ctx := d.NewContext()
	ctx.WTStoreU64(0, 42)
	if got := ctx.LoadU64(0); got != 42 {
		t.Fatalf("WT store not visible: %d", got)
	}
	d.Crash(DropAll{})
	if got := ctx.LoadU64(0); got != 0 {
		t.Fatalf("unfenced WT store survived crash: %d", got)
	}

	ctx.WTStoreU64(0, 43)
	ctx.Fence()
	d.Crash(DropAll{})
	if got := ctx.LoadU64(0); got != 43 {
		t.Fatalf("fenced WT store lost: %d", got)
	}
}

func TestCrashWordGranularityForWTStores(t *testing.T) {
	// A random crash must lose streaming words independently: some of a
	// multi-word append survive, others do not. With 64 words and a fair
	// coin, both outcomes occur for any seed with overwhelming
	// probability.
	d := testDevice(t, 1<<16)
	ctx := d.NewContext()
	for i := int64(0); i < 64; i++ {
		ctx.WTStoreU64(i*8, uint64(i)+1)
	}
	d.Crash(NewRandomPolicy(1))
	kept, lost := 0, 0
	for i := int64(0); i < 64; i++ {
		switch ctx.LoadU64(i * 8) {
		case uint64(i) + 1:
			kept++
		case 0:
			lost++
		default:
			t.Fatalf("word %d has torn value", i)
		}
	}
	if kept == 0 || lost == 0 {
		t.Fatalf("crash not word-granular: kept=%d lost=%d", kept, lost)
	}
}

func TestCrashLineGranularityForStores(t *testing.T) {
	// Two stores on the same line live or die together.
	for seed := int64(0); seed < 8; seed++ {
		d := testDevice(t, 1<<16)
		ctx := d.NewContext()
		ctx.StoreU64(0, 1)
		ctx.StoreU64(8, 2)
		d.Crash(NewRandomPolicy(seed))
		a, b := ctx.LoadU64(0), ctx.LoadU64(8)
		if (a == 0) != (b == 0) {
			t.Fatalf("seed %d: line split by crash: a=%d b=%d", seed, a, b)
		}
	}
}

func TestFlushPersistsLine(t *testing.T) {
	d := testDevice(t, 1<<16)
	ctx := d.NewContext()
	ctx.StoreU64(0, 5)
	ctx.Flush(0)
	d.Crash(DropAll{})
	if got := ctx.LoadU64(0); got != 5 {
		t.Fatalf("flushed store lost: %d", got)
	}
}

func TestFlushRangeCoversAllLines(t *testing.T) {
	d := testDevice(t, 1<<16)
	ctx := d.NewContext()
	for off := int64(0); off < 256; off += 8 {
		ctx.StoreU64(off, uint64(off))
	}
	ctx.FlushRange(0, 256)
	d.Crash(DropAll{})
	for off := int64(0); off < 256; off += 8 {
		if got := ctx.LoadU64(off); got != uint64(off) {
			t.Fatalf("word at %d lost after FlushRange", off)
		}
	}
}

func TestDirtyTracking(t *testing.T) {
	d := testDevice(t, 1<<16)
	ctx := d.NewContext()
	ctx.StoreU64(0, 1)
	ctx.StoreU64(8, 2) // same line
	ctx.StoreU64(64, 3)
	if got := d.DirtyLines(); got != 2 {
		t.Fatalf("DirtyLines = %d, want 2", got)
	}
	ctx.Flush(0)
	if got := d.DirtyLines(); got != 1 {
		t.Fatalf("DirtyLines after flush = %d, want 1", got)
	}
	ctx.WTStoreU64(128, 1)
	ctx.WTStoreU64(136, 2)
	if got := d.PendingWTWords(); got != 2 {
		t.Fatalf("PendingWTWords = %d, want 2", got)
	}
	ctx.Fence()
	if got := d.PendingWTWords(); got != 0 {
		t.Fatalf("PendingWTWords after fence = %d", got)
	}
}

func TestAccountingMode(t *testing.T) {
	d, err := Open(Config{Size: 1 << 16, Mode: DelayAccount, WriteLatency: 150 * time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx := d.NewContext()
	ctx.StoreU64(0, 1)
	if ctx.AccountedTime() != 0 {
		t.Fatalf("store should be free, accounted %v", ctx.AccountedTime())
	}
	ctx.Flush(0)
	if got := ctx.AccountedTime(); got != 150*time.Nanosecond {
		t.Fatalf("flush accounted %v, want 150ns", got)
	}
	ctx.Flush(0) // clean line: free
	if got := ctx.AccountedTime(); got != 150*time.Nanosecond {
		t.Fatalf("clean flush charged: %v", got)
	}
	ctx.ResetAccounting()
	// 1024 streaming bytes at 4 GiB/s ≈ 238ns, plus the 150ns fence.
	for off := int64(0); off < 1024; off += 8 {
		ctx.WTStoreU64(off, 1)
	}
	ctx.Fence()
	bwNs := 1024.0 / float64(4<<30) * 1e9
	want := 150*time.Nanosecond + time.Duration(bwNs)
	if got := ctx.AccountedTime(); got < want-2*time.Nanosecond || got > want+2*time.Nanosecond {
		t.Fatalf("fence accounted %v, want ≈%v", got, want)
	}
}

func TestSpinDelayApproximatesTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	d, err := Open(Config{Size: 1 << 12, Mode: DelaySpin, WriteLatency: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx := d.NewContext()
	ctx.StoreU64(0, 1)
	start := time.Now()
	ctx.Flush(0)
	if got := time.Since(start); got < 50*time.Microsecond {
		t.Fatalf("spin flush took %v, want >= 50µs", got)
	}
}

func TestImageSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scm.img")
	d, err := Open(Config{Size: 1 << 16, Mode: DelayOff, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	ctx := d.NewContext()
	rng := rand.New(rand.NewSource(7))
	vals := make(map[int64]uint64)
	for i := 0; i < 100; i++ {
		off := int64(rng.Intn(1<<13)) * 8
		v := rng.Uint64()
		vals[off] = v
		ctx.StoreU64(off, v)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	d2, err := Open(Config{Size: 1 << 16, Mode: DelayOff, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	ctx2 := d2.NewContext()
	for off, v := range vals {
		if got := ctx2.LoadU64(off); got != v {
			t.Fatalf("word %d = %#x, want %#x", off, got, v)
		}
	}
}

func TestImageSizeMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scm.img")
	d, err := Open(Config{Size: 1 << 16, Mode: DelayOff, Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Size: 1 << 17, Mode: DelayOff, Path: path}); err == nil {
		t.Fatal("expected size-mismatch error")
	}
}

func TestImageCorruptMagicRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scm.img")
	if err := os.WriteFile(path, []byte("not an scm image at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Size: 1 << 12, Mode: DelayOff, Path: path}); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

func TestDoubleCloseFails(t *testing.T) {
	d := testDevice(t, 1<<12)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err == nil {
		t.Fatal("expected error on double close")
	}
}

func TestStatsCounters(t *testing.T) {
	d := testDevice(t, 1<<16)
	ctx := d.NewContext()
	ctx.StoreU64(0, 1)
	ctx.WTStoreU64(8, 2)
	ctx.Flush(0)
	ctx.Fence()
	s := d.Snapshot()
	if s.Stores != 1 || s.WTStores != 1 || s.Flushes != 1 || s.Fences != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.BytesWT != 8 {
		t.Fatalf("BytesWT = %d", s.BytesWT)
	}
}

func TestConcurrentDisjointAccess(t *testing.T) {
	d := testDevice(t, 1<<20)
	const workers = 8
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			ctx := d.NewContext()
			base := int64(w) * (1 << 16)
			for i := int64(0); i < 1000; i++ {
				off := base + (i%512)*8
				ctx.StoreU64(off, uint64(w)<<32|uint64(i))
				if i%16 == 0 {
					ctx.Flush(off)
				}
				ctx.WTStoreU64(base+4096+(i%64)*8, uint64(i))
				if i%8 == 0 {
					ctx.Fence()
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
}

func TestProfileExtraWriteLatency(t *testing.T) {
	if DRAM.ExtraWriteLatency() != 0 {
		t.Fatal("DRAM should have no extra write latency")
	}
	if STTRAM.ExtraWriteLatency() != 0 {
		t.Fatal("STT-RAM writes are faster than DRAM; extra latency clamps to 0")
	}
	if got := PCMProspective.ExtraWriteLatency(); got != 90*time.Nanosecond {
		t.Fatalf("PCM prospective extra latency = %v", got)
	}
}
