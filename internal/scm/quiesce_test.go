package scm

import (
	"strings"
	"testing"
)

// crashInProbe calls Crash from inside a persistence-event probe, i.e.
// while the issuing context is mid-operation — exactly the misuse the
// quiescence assertion must catch.
type crashInProbe struct {
	d     *Device
	fired bool
}

func (p *crashInProbe) Event(kind ProbeKind, ctx uint64, off int64, n int) {
	if p.fired {
		return
	}
	p.fired = true
	p.d.Crash(DropAll{})
}

func TestCrashAssertsQuiesced(t *testing.T) {
	d, err := Open(Config{Size: 1 << 20, Mode: DelayOff})
	if err != nil {
		t.Fatal(err)
	}
	ctx := d.NewContext()
	ctx.StoreU64(0, 1)

	probe := &crashInProbe{d: d}
	d.SetProbe(probe)
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("Crash during an in-flight Flush did not panic")
			}
			msg, ok := r.(string)
			if !ok || !strings.Contains(msg, "quiesced") {
				t.Fatalf("unexpected panic value: %v", r)
			}
		}()
		ctx.Flush(0) // probe fires mid-Flush and calls Crash
	}()
	d.SetProbe(nil)
	if !probe.fired {
		t.Fatal("probe never fired")
	}

	// The aborted Flush left the context's in-flight counter unbalanced;
	// CrashMidOp is the documented way to crash such a device.
	d.CrashMidOp(DropAll{})
	if got := ctx.LoadU64(0); got != 0 {
		t.Fatalf("dropped dirty line still visible: got %#x, want 0", got)
	}

	// After CrashMidOp the device is rebooted and fully usable again,
	// including the plain (asserting) Crash.
	ctx.StoreU64(0, 2)
	ctx.Flush(0)
	ctx.Fence()
	d.Crash(DropAll{})
	if got := ctx.LoadU64(0); got != 2 {
		t.Fatalf("persisted word lost: got %#x, want 2", got)
	}
}

func TestCrashQuiescedOK(t *testing.T) {
	d, err := Open(Config{Size: 1 << 20, Mode: DelayOff})
	if err != nil {
		t.Fatal(err)
	}
	ctx := d.NewContext()
	ctx.WTStoreU64(64, 7)
	ctx.Fence()
	ctx.StoreU64(128, 9) // dirty, unflushed
	d.Crash(DropAll{})   // quiesced: must not panic
	if got := ctx.LoadU64(64); got != 7 {
		t.Fatalf("fenced word lost: got %d, want 7", got)
	}
	if got := ctx.LoadU64(128); got != 0 {
		t.Fatalf("unflushed store survived DropAll: got %d", got)
	}
}

func TestPowerCutFreezesDevice(t *testing.T) {
	d, err := Open(Config{Size: 1 << 20, Mode: DelayOff})
	if err != nil {
		t.Fatal(err)
	}
	ctx := d.NewContext()
	ctx.StoreU64(0, 1)
	d.PowerCut()

	mustPowerFail := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if _, ok := recover().(PowerFailure); !ok {
				t.Fatalf("%s on a power-cut device did not raise PowerFailure", name)
			}
		}()
		fn()
	}
	mustPowerFail("StoreU64", func() { ctx.StoreU64(8, 2) })
	mustPowerFail("WTStoreU64", func() { ctx.WTStoreU64(16, 3) })
	mustPowerFail("Flush", func() { ctx.Flush(0) })
	mustPowerFail("Fence", func() { ctx.Fence() })
	mustPowerFail("DurableFill", func() { d.DurableFill(64, make([]byte, 64)) })
	mustPowerFail("FlushAll", func() { d.FlushAll() })

	// Loads still work: the post-mortem image is readable.
	if got := ctx.LoadU64(0); got != 1 {
		t.Fatalf("load on power-cut device: got %d, want 1", got)
	}

	// CrashMidOp reboots the device.
	d.CrashMidOp(DropAll{})
	ctx.StoreU64(8, 5)
	ctx.Flush(8)
	ctx.Fence()
	if got := ctx.LoadU64(8); got != 5 {
		t.Fatalf("device unusable after CrashMidOp: got %d, want 5", got)
	}
}
