package scm

// ProbeKind classifies a persistence-relevant device event: an operation
// that moves program-visible data toward (or into) durable SCM. The
// crash-point explorer (internal/crashpoint) counts these events to
// enumerate a workload's crash points; each kind corresponds to one
// hardware-level durability action.
type ProbeKind uint8

const (
	// ProbeFlush is the write-back of a dirty cache line (clflush).
	// Only flushes of actually-dirty lines are events: a clean-line
	// flush changes no durable state.
	ProbeFlush ProbeKind = iota
	// ProbeFence is a fence issued with an empty write-combining
	// buffer: an ordering point with no data movement of its own.
	ProbeFence
	// ProbeDrain is a fence draining pending streaming (write-through)
	// words from the context's write-combining buffer into SCM.
	ProbeDrain
	// ProbeFill is a DMA fill of durable contents, the kernel path that
	// populates a frame from a backing file during page fault-in.
	ProbeFill
	// ProbeEvictAll is a whole-cache write-back (FlushAll), modeling an
	// orderly shutdown's cache eviction.
	ProbeEvictAll

	probeKinds = 5
)

// ProbeKindCount is the number of distinct probe event kinds.
const ProbeKindCount = probeKinds

func (k ProbeKind) String() string {
	switch k {
	case ProbeFlush:
		return "flush"
	case ProbeFence:
		return "fence"
	case ProbeDrain:
		return "wt-drain"
	case ProbeFill:
		return "fill"
	case ProbeEvictAll:
		return "evict-all"
	}
	return "unknown"
}

// Probe observes persistence events on a device. Event is called
// immediately BEFORE the event takes effect, with no device locks held, so
// a probe may panic to simulate a power failure at exactly that boundary
// (after calling Device.PowerCut). ctx is the issuing context's id (0 for
// device-level events), off the affected device offset (-1 when the event
// has no single offset), and n the event's size in event-specific units
// (dirty lines, pending words, fill words).
//
// Probes run synchronously on the issuing goroutine. Installing a probe on
// a device used by concurrent goroutines requires the probe itself to be
// safe for concurrent use.
type Probe interface {
	Event(kind ProbeKind, ctx uint64, off int64, n int)
}

// probeHolder wraps the interface so it fits an atomic.Pointer.
type probeHolder struct{ p Probe }

// SetProbe installs (or, with nil, removes) the device's persistence-event
// probe. The hot paths pay one atomic pointer load when no probe is set.
func (d *Device) SetProbe(p Probe) {
	if p == nil {
		d.probe.Store(nil)
		return
	}
	d.probe.Store(&probeHolder{p: p})
}

func (d *Device) probeP() Probe {
	h := d.probe.Load()
	if h == nil {
		return nil
	}
	return h.p
}

// lineDirty reports whether the line-aligned offset is dirty (has an
// unflushed pre-image).
func (d *Device) lineDirty(line int64) bool {
	sh := d.shard(line)
	sh.mu.Lock()
	_, ok := sh.m[line]
	sh.mu.Unlock()
	return ok
}

// PowerFailure is the panic value raised by mutating device operations
// after PowerCut. A crash-point probe panics with it to unwind the
// workload, and the power-cut freeze guarantees that nothing on the
// unwinding path (deferred rollbacks, cleanup handlers) can alter the
// device state the simulated failure left behind: any attempt re-raises
// PowerFailure.
type PowerFailure struct{}

func (PowerFailure) Error() string { return "scm: device is power-cut" }

// PowerCut freezes the device at the instant of a simulated power failure:
// every subsequent mutating operation (store, streaming store, flush,
// fence, fill) panics with PowerFailure until Crash or CrashMidOp reboots
// the device. Loads remain readable, like inspecting a dead machine's
// memory image. Callers are expected to panic(PowerFailure{}) right after
// cutting power, from a probe callback.
func (d *Device) PowerCut() { d.powerCut = true }

// IsPowerCut reports whether the device is frozen by a simulated power
// failure. Multi-device workloads (keyspace shards) use it to learn which
// device a crash-point trigger cut, so they can keep operating the
// surviving devices while skipping the dead one.
func (d *Device) IsPowerCut() bool { return d.powerCut }

// checkAlive panics when the device is power-cut. Called at the head of
// every mutating primitive, before any durable or bookkeeping state
// changes.
func (d *Device) checkAlive() {
	if d.powerCut {
		panic(PowerFailure{})
	}
}
