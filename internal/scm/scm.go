// Package scm emulates a storage-class memory (SCM) device such as
// phase-change memory attached to the memory bus.
//
// The emulator reproduces the performance model of the Mnemosyne paper
// (§6.1): reads are free, writes to SCM incur an extra latency over DRAM
// (150 ns by default), sequential streaming writes are limited by a write
// bandwidth (4 GB/s by default), and a fence waits for outstanding writes.
//
// It also reproduces the paper's failure model (§2): data in the processor
// cache or in write-combining buffers is volatile; only data that has
// actually reached SCM survives a crash. Individual 64-bit writes are
// atomic. Crash simulates a power failure by reverting a subset of the
// unpersisted writes, chosen by a CrashPolicy.
//
// Four hardware primitives are exposed, matching Table 3 of the paper:
//
//	Store    — a regular cacheable write (mov); volatile until flushed
//	WTStore  — a streaming write-through write (movntq); volatile until fenced
//	Flush    — write a cache line back to SCM (clflush)
//	Fence    — drain write-combining buffers and stall until durable (mfence)
//
// All word accesses use sync/atomic, which both models the hardware's
// atomic 64-bit write guarantee and keeps concurrent benchmark workloads
// race-free.
package scm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// WordSize is the unit of atomic persistence, in bytes.
	WordSize = 8
	// LineSize is the cache-line size modeled by Flush, in bytes.
	LineSize = 64
	// WordsPerLine is the number of 64-bit words in a cache line.
	WordsPerLine = LineSize / WordSize
	// PageSize is the frame size used by the region manager, in bytes.
	PageSize = 4096
)

// Default performance parameters, from §6.1 of the paper: "All tests add
// 150 ns of extra latency and are limited to 4 GB/s of write bandwidth."
const (
	DefaultWriteLatency   = 150 * time.Nanosecond
	DefaultWriteBandwidth = 4 << 30 // bytes per second
)

// DelayMode selects how write delays are realized.
type DelayMode int

const (
	// DelayOff disables delays entirely; unit tests use this.
	DelayOff DelayMode = iota
	// DelaySpin busy-waits for the configured delay, like the paper's
	// emulator which spins on the timestamp counter. Benchmarks use this.
	DelaySpin
	// DelayAccount does not wait but accumulates the delay in a virtual
	// nanosecond counter, for deterministic latency measurements.
	DelayAccount
)

// Config describes an emulated SCM device.
type Config struct {
	// Size is the device capacity in bytes. Rounded up to a whole page.
	Size int64
	// WriteLatency is the extra latency of a PCM write over DRAM.
	// Zero selects DefaultWriteLatency; use Mode=DelayOff to disable.
	WriteLatency time.Duration
	// ReadLatency is the extra latency of a PCM read over DRAM, charged
	// on every word load. The paper's model treats reads as free (§6.1),
	// so zero keeps them free; read-cache experiments set it to expose
	// how much locality a DRAM cache in front of the device buys.
	ReadLatency time.Duration
	// WriteBandwidth caps sequential streaming writes, in bytes/second.
	// Zero selects DefaultWriteBandwidth.
	WriteBandwidth float64
	// Mode selects the delay realization.
	Mode DelayMode
	// Path optionally names a backing file so device contents survive
	// process exit. Empty means a purely in-memory device.
	Path string
	// TrackWear counts writes per page, supporting wear-leveling
	// decisions (§4.5 of the paper assumes wear leveling below the
	// programming model; the counters let the region manager provide
	// it by remapping hot pages).
	TrackWear bool
}

func (c *Config) fill() {
	if c.WriteLatency == 0 {
		c.WriteLatency = DefaultWriteLatency
	}
	if c.WriteBandwidth == 0 {
		c.WriteBandwidth = DefaultWriteBandwidth
	}
	if c.Size <= 0 {
		c.Size = 16 << 20
	}
	c.Size = (c.Size + PageSize - 1) &^ (PageSize - 1)
}

const dirtyShards = 64

type dirtyShard struct {
	mu sync.Mutex
	// m maps a line-aligned byte offset to the line's last persisted
	// contents. Present means the line is dirty in the "cache".
	m map[int64][WordsPerLine]uint64
}

// Device is an emulated SCM device. The word array is the device truth:
// anything there at crash time survives. The dirty-line table and each
// context's write-combining buffer track data that is visible to the
// program but not yet durable.
type Device struct {
	cfg   Config
	words []uint64
	wear  []atomic.Uint32 // per-page write counts; nil unless TrackWear

	shards [dirtyShards]dirtyShard

	// probe, when set, observes persistence events (see probe.go).
	probe atomic.Pointer[probeHolder]
	// powerCut freezes every mutating operation after a simulated power
	// failure (PowerCut). Written only by the goroutine simulating the
	// failure or by Crash/CrashMidOp on a quiesced device.
	powerCut bool

	mu       sync.Mutex
	contexts []*Context
	closed   bool
}

// StatsSnapshot aggregates the per-context operation counters.
type StatsSnapshot struct {
	Stores, WTStores, Flushes, Fences, BytesWT uint64
	AccountedNs                                int64
}

// Open creates (or reopens, when cfg.Path names an existing image) an
// emulated SCM device.
func Open(cfg Config) (*Device, error) {
	cfg.fill()
	d := &Device{cfg: cfg}
	d.words = make([]uint64, cfg.Size/WordSize)
	if cfg.TrackWear {
		d.wear = make([]atomic.Uint32, cfg.Size/PageSize)
	}
	for i := range d.shards {
		d.shards[i].m = make(map[int64][WordsPerLine]uint64)
	}
	if cfg.Path != "" {
		if err := d.loadImage(cfg.Path); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Size returns the device capacity in bytes.
func (d *Device) Size() int64 { return int64(len(d.words)) * WordSize }

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Snapshot sums the operation counters over every context. Each context
// publishes its counters at its fences (hot paths pay only a plain
// increment), so a snapshot taken while contexts are active reflects
// each context as of its last fence; once a context quiesces — every
// durability protocol ends in a fence — its counts are exact.
func (d *Device) Snapshot() StatsSnapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	var s StatsSnapshot
	for _, c := range d.contexts {
		s.Stores += c.n.stores.Load()
		s.WTStores += c.n.wtStores.Load()
		s.Flushes += c.n.flushes.Load()
		s.Fences += c.n.fences.Load()
		s.AccountedNs += c.n.accountedNs.Load()
	}
	// Streaming writes are word-granular (byte-level WTStore assembles
	// full words), so the byte total is derived rather than counted.
	s.BytesWT = s.WTStores * WordSize
	return s
}

// AccountedTime reports the virtual time accumulated in DelayAccount mode.
func (d *Device) AccountedTime() time.Duration {
	return time.Duration(d.Snapshot().AccountedNs)
}

// NewContext returns a per-thread hardware context. A context owns its
// write-combining buffer, mirroring per-core WC buffers: Fence drains only
// the calling context's streaming writes. Contexts must not be shared
// between goroutines without external synchronization.
func (d *Device) NewContext() *Context {
	ctx := &Context{dev: d}
	d.mu.Lock()
	d.contexts = append(d.contexts, ctx)
	ctx.id = uint64(len(d.contexts))
	d.mu.Unlock()
	return ctx
}

func (d *Device) shard(line int64) *dirtyShard {
	return &d.shards[uint64(line/LineSize)%dirtyShards]
}

// checkRange panics when [off, off+n) is outside the device; persistent
// memory corruption bugs should fail loudly in the emulator.
func (d *Device) checkRange(off, n int64) {
	if off < 0 || n < 0 || off+n > d.Size() {
		panic(fmt.Sprintf("scm: access [%#x,+%d) outside device of %d bytes", off, n, d.Size()))
	}
}

// loadWord / storeWord are the only routines that touch the word array.
func (d *Device) loadWord(off int64) uint64 {
	return atomic.LoadUint64(&d.words[off/WordSize])
}

func (d *Device) storeWord(off int64, v uint64) {
	d.checkAlive()
	atomic.StoreUint64(&d.words[off/WordSize], v)
	if d.wear != nil {
		d.wear[off/PageSize].Add(1)
	}
}

// WearCount reports the write count of the page containing off (zero
// unless TrackWear is configured).
func (d *Device) WearCount(off int64) uint32 {
	if d.wear == nil {
		return 0
	}
	return d.wear[off/PageSize].Load()
}

// WearProfile copies the per-page write counters (nil unless TrackWear).
func (d *Device) WearProfile() []uint32 {
	if d.wear == nil {
		return nil
	}
	out := make([]uint32, len(d.wear))
	for i := range d.wear {
		out[i] = d.wear[i].Load()
	}
	return out
}

// markDirty records the pre-image of the line containing off, the first
// time the line is dirtied since its last flush.
func (d *Device) markDirty(off int64) {
	line := off &^ (LineSize - 1)
	sh := d.shard(line)
	sh.mu.Lock()
	if _, ok := sh.m[line]; !ok {
		var old [WordsPerLine]uint64
		for i := 0; i < WordsPerLine; i++ {
			old[i] = d.loadWord(line + int64(i)*WordSize)
		}
		sh.m[line] = old
	}
	sh.mu.Unlock()
}

// persistLine drops the line's pre-image: its current contents are now the
// durable contents. Reports whether the line was dirty.
func (d *Device) persistLine(line int64) bool {
	d.checkAlive()
	sh := d.shard(line)
	sh.mu.Lock()
	_, ok := sh.m[line]
	if ok {
		delete(sh.m, line)
	}
	sh.mu.Unlock()
	return ok
}

// revertLine restores the line's pre-image, modeling a dirty cache line
// that never reached SCM before the crash.
func (d *Device) revertLine(line int64, old [WordsPerLine]uint64) {
	for i := 0; i < WordsPerLine; i++ {
		d.storeWord(line+int64(i)*WordSize, old[i])
	}
}

// DurableFill writes buf at off directly as durable contents, bypassing
// the cache and write-combining models. It is the DMA path used by the
// kernel when a page's contents arrive from a backing file (already
// durable there) — not a program-visible store primitive. off and len(buf)
// must be word-aligned.
func (d *Device) DurableFill(off int64, buf []byte) {
	n := int64(len(buf))
	d.checkRange(off, n)
	if off&7 != 0 || n&7 != 0 {
		panic("scm: unaligned DurableFill")
	}
	if p := d.probeP(); p != nil {
		p.Event(ProbeFill, 0, off, int(n/WordSize))
	}
	d.checkAlive()
	for i := int64(0); i < n; i += WordSize {
		v := uint64(buf[i]) | uint64(buf[i+1])<<8 | uint64(buf[i+2])<<16 |
			uint64(buf[i+3])<<24 | uint64(buf[i+4])<<32 | uint64(buf[i+5])<<40 |
			uint64(buf[i+6])<<48 | uint64(buf[i+7])<<56
		d.storeWord(off+i, v)
	}
	// The filled contents are the durable truth: drop any stale
	// pre-images so a crash cannot resurrect prior frame contents.
	first := off &^ (LineSize - 1)
	last := (off + n - 1) &^ (LineSize - 1)
	for line := first; line <= last; line += LineSize {
		sh := d.shard(line)
		sh.mu.Lock()
		delete(sh.m, line)
		sh.mu.Unlock()
	}
}

// DirtyLines reports how many cache lines are dirty (unflushed).
func (d *Device) DirtyLines() int {
	n := 0
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// PendingWTWords reports how many streaming words are unfenced, across all
// contexts.
func (d *Device) PendingWTWords() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, ctx := range d.contexts {
		n += len(ctx.wc)
	}
	return n
}

// FlushAll persists every dirty line and drains every context's
// write-combining buffer without applying delays. It models an orderly
// shutdown (the OS flushing caches before power-off).
func (d *Device) FlushAll() {
	if p := d.probeP(); p != nil {
		p.Event(ProbeEvictAll, 0, -1, d.DirtyLines())
	}
	d.checkAlive()
	d.mu.Lock()
	ctxs := append([]*Context(nil), d.contexts...)
	d.mu.Unlock()
	for _, ctx := range ctxs {
		ctx.wc = ctx.wc[:0]
		ctx.wcBytes = 0
	}
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		sh.m = make(map[int64][WordsPerLine]uint64)
		sh.mu.Unlock()
	}
}

// Close flushes all caches and, when the device has a backing file, saves
// the image. The device must be quiesced.
func (d *Device) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return errors.New("scm: device already closed")
	}
	d.closed = true
	d.mu.Unlock()
	d.FlushAll()
	if d.cfg.Path != "" {
		return d.saveImage(d.cfg.Path)
	}
	return nil
}

// Image persistence. The on-disk format is a small header followed by the
// raw word array in little-endian order.

var imageMagic = [8]byte{'M', 'N', 'E', 'S', 'C', 'M', '0', '1'}

func (d *Device) saveImage(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	buf := make([]byte, 16)
	copy(buf, imageMagic[:])
	binary.LittleEndian.PutUint64(buf[8:], uint64(len(d.words)))
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	const chunkWords = 1 << 16
	chunk := make([]byte, chunkWords*WordSize)
	for base := 0; base < len(d.words); base += chunkWords {
		end := base + chunkWords
		if end > len(d.words) {
			end = base + len(d.words) - base
			end = len(d.words)
		}
		n := 0
		for i := base; i < end; i++ {
			binary.LittleEndian.PutUint64(chunk[n:], d.words[i])
			n += WordSize
		}
		if _, err := f.Write(chunk[:n]); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func (d *Device) loadImage(path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil // fresh device
	}
	if err != nil {
		return err
	}
	defer f.Close()
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return fmt.Errorf("scm: bad image header: %w", err)
	}
	if [8]byte(hdr[:8]) != imageMagic {
		return fmt.Errorf("scm: %s is not an SCM image", path)
	}
	n := binary.LittleEndian.Uint64(hdr[8:])
	if n != uint64(len(d.words)) {
		return fmt.Errorf("scm: image has %d words, device has %d", n, len(d.words))
	}
	const chunkWords = 1 << 16
	chunk := make([]byte, chunkWords*WordSize)
	for base := 0; base < len(d.words); base += chunkWords {
		end := base + chunkWords
		if end > len(d.words) {
			end = len(d.words)
		}
		want := (end - base) * WordSize
		if _, err := io.ReadFull(f, chunk[:want]); err != nil {
			return fmt.Errorf("scm: short image: %w", err)
		}
		for i := base; i < end; i++ {
			d.words[i] = binary.LittleEndian.Uint64(chunk[(i-base)*WordSize:])
		}
	}
	return nil
}
