package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/mtm"
	"repro/internal/pds"
	"repro/internal/pmem"
	"repro/internal/scm"
)

// Cross-shard MSET atomicity.
//
// Every shard keeps a small persistent intent table (a pds.HashTable
// rooted at the "shard.xstage" static, created lazily on the first
// cross-shard MSET) mapping a transaction id to an intent record. A
// cross-shard MSET with participant set M runs three phases, each one
// local durable transaction per participant, each phase a barrier over
// ascending shard order:
//
//  1. prepare: every participant durably stores
//     {state=prepared, mask=M, its own pairs}.
//  2. apply: every participant, in ONE local transaction, puts its pairs
//     into the tree and rewrites its record to {state=applied, mask=M}.
//  3. cleanup: every participant deletes its record.
//
// Recovery (resolveIntents, run at Attach after every shard's own log
// replay) scans all intent tables and decides each transaction id once,
// for all shards:
//
//   - some shard applied        ⇒ commit. Apply never starts until every
//     prepare is durable, so each remaining participant holds either an
//     applied record (tree already updated — the apply transaction was
//     atomic), a prepared record carrying the pairs to roll forward, or
//     no record (it finished cleanup).
//   - every participant prepared ⇒ commit: the durable-everywhere point
//     had been reached, so roll every shard forward.
//   - otherwise                  ⇒ abort: some prepare never became
//     durable, no shard can have applied, delete the stragglers.
//
// Roll-forward applies a prepared shard's pairs and marks it applied
// before ANY record of that transaction is deleted, so a crash inside
// recovery re-reaches the same decision. The protocol gives cross-shard
// MSET all-or-nothing durability; it does not give cross-shard isolation
// (a reader between two apply transactions can observe one shard's pairs
// before another's — same as a pipelined reader racing a classic MSET on
// separate connections).
//
// Shards fail independently (each has its own device — its own power
// domain), so one participant can power-cut mid-protocol while the rest
// of the store keeps serving. The coordinator is still alive then, and
// it must not leave an UNDECIDED prepared record on any live shard:
// recovery's roll-forward would later reapply that record's stale pairs
// over writes acked after the cut. So on a power cut msetCross resolves
// the surviving participants inline before re-raising the failure —
// abort them if the cut landed before the last prepare was durable,
// finish applying them if it landed after. Only the dead shard is left
// for recovery, and its record covers only keys that route to it, which
// nothing can write until it is reattached (and Attach resolves intents
// before serving).

// Intent record states.
const (
	statePrepared = byte(1)
	stateApplied  = byte(2)
)

// encodeIntent builds an intent-table record: state, participant mask,
// then this shard's tree records (already in EncodeKV form, so applying
// is hash(key)→record puts).
func encodeIntent(state byte, mask uint64, recs [][]byte) []byte {
	n := 1 + 8 + 2
	for _, rec := range recs {
		n += 4 + len(rec)
	}
	out := make([]byte, 0, n)
	out = append(out, state)
	for s := 0; s < 64; s += 8 {
		out = append(out, byte(mask>>uint(s)))
	}
	out = append(out, byte(len(recs)), byte(len(recs)>>8))
	for _, rec := range recs {
		l := len(rec)
		out = append(out, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
		out = append(out, rec...)
	}
	return out
}

type intent struct {
	state byte
	mask  uint64
	recs  [][]byte
}

var errBadIntent = errors.New("shard: malformed intent record")

func decodeIntent(b []byte) (intent, error) {
	if len(b) < 11 {
		return intent{}, errBadIntent
	}
	it := intent{state: b[0]}
	for s := 0; s < 8; s++ {
		it.mask |= uint64(b[1+s]) << uint(8*s)
	}
	npairs := int(b[9]) | int(b[10])<<8
	off := 11
	for p := 0; p < npairs; p++ {
		if len(b) < off+4 {
			return intent{}, errBadIntent
		}
		l := int(b[off]) | int(b[off+1])<<8 | int(b[off+2])<<16 | int(b[off+3])<<24
		off += 4
		if l < 0 || len(b) < off+l {
			return intent{}, errBadIntent
		}
		it.recs = append(it.recs, b[off:off+l])
		off += l
	}
	if it.state != statePrepared && it.state != stateApplied {
		return intent{}, errBadIntent
	}
	return it, nil
}

// ensureStage returns the shard's intent table, creating it on first
// use. Creation is itself crash-atomic (the table's magic word commits
// last), and a root left torn by a crash mid-create is simply recreated.
func (sh *Shard) ensureStage() (*pds.HashTable, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.stage != nil {
		return sh.stage, nil
	}
	th, err := sh.PM.ThreadPool().Lease(context.Background())
	if err != nil {
		return nil, err
	}
	defer th.Close()
	var ht *pds.HashTable
	err = th.Atomic(func(tx *mtm.Tx) error {
		t, err := pds.OpenHashTable(tx, sh.stageRoot)
		if err != nil {
			return nil // absent or torn creation: create below
		}
		ht = t
		return nil
	})
	if err != nil {
		return nil, err
	}
	if ht == nil {
		ht, err = pds.CreateHashTable(th, sh.stageRoot, 64)
		if err != nil {
			return nil, err
		}
	}
	sh.stage = ht
	return ht, nil
}

// openStage returns the shard's intent table through a Reader, or nil
// when it was never created (or its creation was torn by a crash).
func (sh *Shard) openStage(r mtm.Reader) *pds.HashTable {
	if pmem.Addr(r.LoadU64(sh.stageRoot)) == pmem.Nil {
		return nil
	}
	ht, err := pds.OpenHashTable(r, sh.stageRoot)
	if err != nil {
		return nil
	}
	return ht
}

// powerGuard runs one participant's step of the intent protocol,
// converting a PowerFailure panic (that shard's power domain died) into
// the cut flag so the coordinator can resolve the survivors before
// re-raising it.
func powerGuard(fn func() error) (err error, cut bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(scm.PowerFailure); ok {
				cut = true
				return
			}
			panic(r)
		}
	}()
	return fn(), false
}

// msetCross runs the cross-shard intent protocol for an MSET touching
// two or more shards. parts indexes pair positions by shard; mask is the
// participant set.
func (st *Store) msetCross(parts [][]int, mask uint64, keys []string, recs [][]byte) error {
	telXMSets.Inc()
	xid := st.xid.Add(1)

	// deleteIntent best-effort removes xid's record from live shard j
	// (recovery handles leftovers; a second power cut just re-raises).
	stages := make([]*pds.HashTable, len(st.shards))
	deleteIntent := func(j int) (cut bool) {
		if len(parts[j]) == 0 || stages[j] == nil {
			return false
		}
		shj, stj := st.shards[j], stages[j]
		_, cut = powerGuard(func() error {
			return shj.PM.Atomic(func(tx *mtm.Tx) error {
				err := stj.Delete(tx, xid)
				if err == pds.ErrNotFound {
					return nil
				}
				return err
			})
		})
		return cut
	}

	// Phase 1: a durable prepare record on every participant. Failure
	// before the last prepare aborts: delete what was staged and report.
	// A power cut here aborts too — the cut shard's record (durable or
	// not) is aborted at its recovery because the survivors' records are
	// gone — and then re-raises the PowerFailure to the caller.
	for k, idxs := range parts {
		if len(idxs) == 0 {
			continue
		}
		sh := st.shards[k]
		var cut bool
		stage, err := sh.ensureStage()
		if err == nil {
			shardRecs := make([][]byte, 0, len(idxs))
			for _, i := range idxs {
				shardRecs = append(shardRecs, recs[i])
			}
			blob := encodeIntent(statePrepared, mask, shardRecs)
			err, cut = powerGuard(func() error {
				return sh.PM.Atomic(func(tx *mtm.Tx) error {
					// Collisions are detected here, before the commit
					// point, so the whole MSET aborts cleanly instead of
					// clobbering (or skipping) the colliding key later.
					for _, i := range idxs {
						if cerr := st.checkCollision(sh, tx, keys[i]); cerr != nil {
							return cerr
						}
					}
					return stage.Put(tx, xid, blob)
				})
			})
		}
		if err != nil || cut {
			telXAbort.Inc()
			for j := 0; j < k; j++ {
				deleteIntent(j)
			}
			if cut {
				panic(scm.PowerFailure{})
			}
			return fmt.Errorf("shard: mset prepare on shard %d: %w", k, err)
		}
		stages[k] = stage
	}

	// Phase 2: apply. Every prepare is durable, so the transaction is
	// now committed by rule — an error on one shard no longer aborts it.
	// Keep applying the rest; a shard left prepared is rolled forward by
	// the next recovery. A power cut likewise only stops its own shard:
	// the survivors still get applied here (no live shard may keep an
	// undecided prepared record), cleanup is skipped so the dead shard's
	// recovery sees the applied records and rolls itself forward, and the
	// PowerFailure is re-raised.
	var firstErr error
	anyCut := false
	for k, idxs := range parts {
		if len(idxs) == 0 {
			continue
		}
		sh, stage := st.shards[k], stages[k]
		skipped := 0
		err, cut := powerGuard(func() error {
			return sh.PM.Atomic(func(tx *mtm.Tx) error {
				skipped = 0 // conflict retries rerun the closure
				for _, i := range idxs {
					// Past the commit point a collision (a racing write
					// landed a colliding key after our prepare) cannot
					// abort the MSET anymore; skip the pair rather than
					// destroy the newer record, and count the skip.
					if cerr := st.checkCollision(sh, tx, keys[i]); cerr != nil {
						if errors.Is(cerr, ErrHashCollision) {
							skipped++
							continue
						}
						return cerr
					}
					if err := sh.Tree.Put(tx, st.hash(keys[i]), recs[i]); err != nil {
						return err
					}
				}
				return stage.Put(tx, xid, encodeIntent(stateApplied, mask, nil))
			})
		})
		if err == nil && !cut && skipped > 0 {
			telXCollisionSkips.Add(uint64(skipped))
		}
		if cut {
			anyCut = true
			continue
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard: mset apply on shard %d: %w", k, err)
		}
	}
	if anyCut {
		panic(scm.PowerFailure{})
	}
	if firstErr != nil {
		return firstErr
	}

	// Phase 3: cleanup, best effort — recovery deletes leftovers. A power
	// cut mid-cleanup is harmless (remaining records are applied, inert)
	// but still re-raised after the surviving shards are swept.
	for k := range parts {
		if deleteIntent(k) {
			anyCut = true
		}
	}
	if anyCut {
		panic(scm.PowerFailure{})
	}
	return nil
}

// resolveIntents scans every shard's intent table after recovery and
// decides each surviving cross-shard transaction: roll forward when any
// shard applied or every participant prepared, roll back otherwise.
// Runs sequentially over ascending shards and ascending transaction ids,
// so crash exploration of recovery itself is deterministic.
func (st *Store) resolveIntents() (commits, aborts int, err error) {
	n := len(st.shards)
	per := make([]map[uint64]intent, n)
	var maxXID uint64
	for k := 0; k < n; k++ {
		per[k] = make(map[uint64]intent)
		sh := st.shards[k]
		var scanErr error
		verr := sh.PM.View(func(r *mtm.ReadTx) error {
			stage := sh.openStage(r)
			if stage == nil {
				return nil
			}
			per[k] = make(map[uint64]intent) // retries rerun the closure
			scanErr = nil
			stage.Scan(r, func(key uint64, val []byte) bool {
				it, derr := decodeIntent(val)
				if derr != nil {
					scanErr = fmt.Errorf("shard %d xid %d: %w", k, key, derr)
					return false
				}
				per[k][key] = it
				if key > maxXID {
					maxXID = key
				}
				return true
			})
			return scanErr
		})
		if verr != nil {
			return 0, 0, verr
		}
	}
	// Later transaction ids must not collide with leftovers while we
	// resolve them.
	st.xid.Store(maxXID)

	xidSet := make(map[uint64]bool)
	for k := 0; k < n; k++ {
		for xid := range per[k] {
			xidSet[xid] = true
		}
	}
	xids := make([]uint64, 0, len(xidSet))
	for xid := range xidSet {
		xids = append(xids, xid)
	}
	sort.Slice(xids, func(i, j int) bool { return xids[i] < xids[j] })

	for _, xid := range xids {
		var mask uint64
		anyApplied := false
		for k := 0; k < n; k++ {
			if it, ok := per[k][xid]; ok {
				mask |= it.mask
				if it.state == stateApplied {
					anyApplied = true
				}
			}
		}
		allPrepared := true
		for k := 0; k < n; k++ {
			if mask&(1<<uint(k)) == 0 {
				continue
			}
			if _, ok := per[k][xid]; !ok {
				allPrepared = false
				break
			}
		}
		commit := anyApplied || allPrepared
		if commit {
			commits++
			// Roll forward: apply every still-prepared shard's pairs and
			// mark it applied, before any record is deleted, so a crash
			// mid-resolution re-reaches the same decision.
			for k := 0; k < n; k++ {
				it, ok := per[k][xid]
				if !ok || it.state != statePrepared {
					continue
				}
				sh := st.shards[k]
				skipped := 0
				if err := sh.PM.Atomic(func(tx *mtm.Tx) error {
					skipped = 0 // conflict retries rerun the closure
					stage, serr := pds.OpenHashTable(tx, sh.stageRoot)
					if serr != nil {
						return serr
					}
					for _, rec := range it.recs {
						key, derr := DecodeRecordKey(rec)
						if derr != nil {
							return derr
						}
						// Recovery must finish: a pair whose slot a
						// different key took since the prepare is skipped
						// and counted, never clobbered and never fatal.
						if cerr := st.checkCollision(sh, tx, key); cerr != nil {
							if errors.Is(cerr, ErrHashCollision) {
								skipped++
								continue
							}
							return cerr
						}
						if perr := sh.Tree.Put(tx, st.hash(key), rec); perr != nil {
							return perr
						}
					}
					return stage.Put(tx, xid, encodeIntent(stateApplied, it.mask, nil))
				}); err != nil {
					return commits, aborts, fmt.Errorf("shard %d: roll-forward xid %d: %w", k, xid, err)
				}
				if skipped > 0 {
					telXCollisionSkips.Add(uint64(skipped))
				}
			}
		} else {
			aborts++
		}
		// Cleanup (both outcomes): delete every record of this xid.
		for k := 0; k < n; k++ {
			if _, ok := per[k][xid]; !ok {
				continue
			}
			sh := st.shards[k]
			if err := sh.PM.Atomic(func(tx *mtm.Tx) error {
				stage, serr := pds.OpenHashTable(tx, sh.stageRoot)
				if serr != nil {
					return serr
				}
				derr := stage.Delete(tx, xid)
				if derr == pds.ErrNotFound {
					return nil
				}
				return derr
			}); err != nil {
				return commits, aborts, fmt.Errorf("shard %d: cleanup xid %d: %w", k, xid, err)
			}
		}
	}
	return commits, aborts, nil
}
