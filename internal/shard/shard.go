// Package shard fronts N fully independent persistent-memory instances
// with one key-value interface. Each shard owns a complete Mnemosyne
// stack — its own SCM device, region runtime, persistent heap,
// transaction system, log-slot pool and group-commit epoch stream — so
// shards share no commit clock, no durability fence and no coordinator:
// the per-instance serialization points that remain after group commit
// (PR 4) and slot-free snapshot reads (PR 5) are multiplied away instead
// of optimized further.
//
// Single-key operations route by key hash. Multi-key operations
// scatter-gather across the shards they touch, in ascending shard order.
// A cross-shard MSET is made atomic with a per-shard intent record
// protocol (see xstage.go): a prepare record becomes durable on every
// participant before any shard applies, so recovery can always decide
// the whole transaction one way on every shard.
//
// Open recovers all shards concurrently with a bounded worker pool, then
// runs one sequential resolution pass over the surviving cross-shard
// intents. A Shards=1 store lays its state out exactly like a direct
// core.Open — same device path, same region directory, same
// "kvserve.root" static — so pre-sharding images open unchanged.
package shard

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/mtm"
	"repro/internal/pds"
	"repro/internal/pmem"
	"repro/internal/scm"
	"repro/internal/telemetry"
)

// MaxShards bounds the shard count; participant sets of cross-shard
// transactions are tracked as 64-bit masks.
const MaxShards = 64

// Config assembles a sharded store. The embedded core.Config applies to
// every shard individually: DeviceSize and HeapSize are per shard, so a
// 4-shard store over 64 MB devices holds 256 MB total.
type Config struct {
	core.Config

	// Shards is the number of independent PM instances (0 ⇒ 1, max 64).
	// The count is fixed at first creation: images are laid out per
	// shard, and reopening with a different count would strand keys on
	// shards the hash no longer routes to.
	Shards int

	// RecoveryWorkers bounds how many shards recover concurrently at
	// Open/Attach (0 ⇒ min(Shards, number of CPUs); 1 recovers strictly
	// sequentially on the calling goroutine, which deterministic crash
	// workloads require).
	RecoveryWorkers int
}

func (c *Config) fill() error {
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Shards < 0 || c.Shards > MaxShards {
		return fmt.Errorf("shard: bad shard count %d (1..%d)", c.Shards, MaxShards)
	}
	if c.Shards > 1 && c.Dir == "" {
		return fmt.Errorf("shard: Config.Dir is required for %d shards (per-shard region directories)", c.Shards)
	}
	if c.RecoveryWorkers <= 0 {
		c.RecoveryWorkers = c.Shards
	}
	if c.RecoveryWorkers > c.Shards {
		c.RecoveryWorkers = c.Shards
	}
	return nil
}

// shardConfig derives shard k's core configuration. A single-shard store
// uses the base paths unchanged, keeping the on-disk layout identical to
// a direct core.Open; multi-shard stores suffix the device image and
// nest per-shard region directories.
func (c *Config) shardConfig(k int) core.Config {
	sc := c.Config
	sc.Shards = 1
	if c.Shards > 1 {
		if sc.DevicePath != "" {
			sc.DevicePath = fmt.Sprintf("%s.shard%d", c.Config.DevicePath, k)
		}
		sc.Dir = filepath.Join(c.Dir, fmt.Sprintf("shard-%d", k))
	}
	return sc
}

// Shard is one independent PM instance plus its key-value tree and
// cross-shard intent table.
type Shard struct {
	// ID is the shard's index, the value key hashes route to.
	ID int
	// PM is the shard's persistent-memory instance.
	PM *core.PM
	// Tree is the shard's key-value B+ tree, rooted at the same
	// "kvserve.root" static a direct kvserve server uses.
	Tree *pds.BPTree
	// RecoveryTime is how long this shard's core.Attach took (region
	// remap, heap scavenge, log replay).
	RecoveryTime time.Duration
	// Recovery is the shard transaction system's replay statistics.
	Recovery mtm.RecoveryStats

	stageRoot pmem.Addr // "shard.xstage" static: intent-table root pointer
	mu        sync.Mutex
	stage     *pds.HashTable // cached intent table, created on first cross-shard MSET
}

// Store routes a key-value workload across shards.
type Store struct {
	cfg    Config
	shards []*Shard
	hash   func(string) uint64
	now    func() int64 // clock for expiry masking, fake-able in tests
	xid    atomic.Uint64

	// recoveredCommits/Aborts count cross-shard intents resolved at the
	// most recent Attach.
	recoveredCommits int
	recoveredAborts  int
}

var (
	telXMSets          = telemetry.NewCounter("shard_xmsets_total", "Cross-shard MSET transactions started (two or more participant shards).")
	telXAbort          = telemetry.NewCounter("shard_xmset_aborts_total", "Cross-shard MSET transactions aborted before the prepare point.")
	telXCollisionSkips = telemetry.NewCounter("shard_xmset_collision_skips_total", "Cross-shard MSET pairs skipped at apply or roll-forward because a different key took the slot after the prepare (hash collision).")
)

// Open creates or reincarnates a sharded store: one device per shard,
// recovered concurrently, then cross-shard intent resolution.
func Open(cfg Config) (*Store, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	mode := scm.DelayOff
	if cfg.EmulateLatency {
		mode = scm.DelaySpin
	}
	devs := make([]*scm.Device, cfg.Shards)
	for k := range devs {
		sc := cfg.shardConfig(k)
		dev, err := scm.Open(scm.Config{
			Size:         sc.DeviceSize,
			Path:         sc.DevicePath,
			WriteLatency: sc.WriteLatency,
			Mode:         mode,
		})
		if err != nil {
			for _, d := range devs[:k] {
				d.Close()
			}
			return nil, fmt.Errorf("shard %d: %w", k, err)
		}
		devs[k] = dev
	}
	return Attach(devs, cfg)
}

// Attach builds the sharded store over already-open devices (used after
// a simulated crash, where the devices survive and every shard's stack
// reincarnates). len(devs) must equal the configured shard count.
func Attach(devs []*scm.Device, cfg Config) (*Store, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if len(devs) != cfg.Shards {
		return nil, fmt.Errorf("shard: %d devices for %d shards", len(devs), cfg.Shards)
	}
	st := &Store{
		cfg:    cfg,
		hash:   HashKey,
		now:    func() int64 { return time.Now().UnixNano() },
		shards: make([]*Shard, cfg.Shards),
	}

	attach := func(k int) error {
		start := time.Now()
		pm, err := core.Attach(devs[k], cfg.shardConfig(k))
		if err != nil {
			return fmt.Errorf("shard %d: %w", k, err)
		}
		sh := &Shard{ID: k, PM: pm, RecoveryTime: time.Since(start), Recovery: pm.TM().Recovery()}
		root, _, err := pm.Static("kvserve.root", 8)
		if err != nil {
			return fmt.Errorf("shard %d: %w", k, err)
		}
		sh.Tree = pds.NewBPTree(root)
		sh.stageRoot, _, err = pm.Static("shard.xstage", 8)
		if err != nil {
			return fmt.Errorf("shard %d: %w", k, err)
		}
		st.shards[k] = sh
		return nil
	}

	var firstErr error
	if cfg.RecoveryWorkers <= 1 {
		// Strictly sequential on the calling goroutine: deterministic
		// crash workloads need a reproducible device-event order.
		for k := range st.shards {
			if err := attach(k); err != nil {
				firstErr = err
				break
			}
		}
	} else {
		sem := make(chan struct{}, cfg.RecoveryWorkers)
		errs := make([]error, cfg.Shards)
		var wg sync.WaitGroup
		for k := range st.shards {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				errs[k] = attach(k)
			}(k)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				firstErr = err
				break
			}
		}
	}
	if firstErr != nil {
		for _, sh := range st.shards {
			if sh != nil {
				sh.PM.Close()
			}
		}
		return nil, firstErr
	}

	commits, aborts, err := st.resolveIntents()
	if err != nil {
		for _, sh := range st.shards {
			sh.PM.Close()
		}
		return nil, err
	}
	st.recoveredCommits, st.recoveredAborts = commits, aborts
	st.registerTelemetry()
	return st, nil
}

// registerTelemetry publishes per-shard gauges. Like core's stack
// gauges, a reincarnated store's registrations win over the previous
// instance's.
func (st *Store) registerTelemetry() {
	shards := st.shards
	telemetry.NewSampled("shard_count", "Shards behind the sharded store front end.",
		func() float64 { return float64(len(shards)) })
	for _, sh := range shards {
		sh := sh
		telemetry.NewSampled(fmt.Sprintf("shard%d_commits", sh.ID), "Committed transactions on this shard.",
			func() float64 { return float64(sh.PM.TM().Snapshot().Commits) })
		telemetry.NewSampled(fmt.Sprintf("shard%d_fences", sh.ID), "Persistence fences issued by this shard's device.",
			func() float64 { return float64(sh.PM.Device().Snapshot().Fences) })
		telemetry.NewSampled(fmt.Sprintf("shard%d_fences_per_commit", sh.ID), "This shard's device fences divided by its committed transactions.",
			func() float64 {
				commits := sh.PM.TM().Snapshot().Commits
				if commits == 0 {
					return 0
				}
				return float64(sh.PM.Device().Snapshot().Fences) / float64(commits)
			})
		telemetry.NewGauge(fmt.Sprintf("shard%d_recovery_ns", sh.ID), "This shard's recovery time at the most recent attach, in nanoseconds.").
			Set(sh.RecoveryTime.Nanoseconds())
	}
	telemetry.NewGauge("shard_recovered_xmset_commits", "Cross-shard intents rolled forward at the most recent attach.").
		Set(int64(st.recoveredCommits))
	telemetry.NewGauge("shard_recovered_xmset_aborts", "Cross-shard intents rolled back at the most recent attach.").
		Set(int64(st.recoveredAborts))
}

// NShards returns the shard count.
func (st *Store) NShards() int { return len(st.shards) }

// ShardOf returns the shard index key routes to.
func (st *Store) ShardOf(key string) int {
	return int(st.hash(key) % uint64(len(st.shards)))
}

// Shard returns shard k (for stats and tests).
func (st *Store) Shard(k int) *Shard { return st.shards[k] }

// RecoveredIntents reports how many cross-shard intents the most recent
// Attach rolled forward and rolled back.
func (st *Store) RecoveredIntents() (commits, aborts int) {
	return st.recoveredCommits, st.recoveredAborts
}

// Close shuts every shard down cleanly.
func (st *Store) Close() error {
	var firstErr error
	for _, sh := range st.shards {
		if err := sh.PM.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard %d: %w", sh.ID, err)
		}
	}
	return firstErr
}

// Drain blocks until every shard's pending asynchronous log truncations
// have completed.
func (st *Store) Drain() {
	for _, sh := range st.shards {
		sh.PM.TM().Drain()
	}
}

// StopTruncation halts every shard's asynchronous truncation manager
// without draining — the crash-test idiom before Device.Crash.
func (st *Store) StopTruncation() {
	for _, sh := range st.shards {
		sh.PM.TM().StopTruncation()
	}
}

// Devices returns every shard's SCM device in shard order (for crash
// injection in tests, and for reattaching with Attach afterwards).
func (st *Store) Devices() []*scm.Device {
	devs := make([]*scm.Device, len(st.shards))
	for i, sh := range st.shards {
		devs[i] = sh.PM.Device()
	}
	return devs
}

// AggregateStats sums transaction and device counters across shards.
type AggregateStats struct {
	Commits, Aborts, Views  uint64
	Stores, Flushes, Fences uint64
}

// Stats returns the store's aggregate counters.
func (st *Store) Stats() AggregateStats {
	var agg AggregateStats
	for _, sh := range st.shards {
		tm := sh.PM.TM().Snapshot()
		dev := sh.PM.Device().Snapshot()
		agg.Commits += tm.Commits
		agg.Aborts += tm.Aborts
		agg.Views += tm.Views
		agg.Stores += dev.Stores
		agg.Flushes += dev.Flushes
		agg.Fences += dev.Fences
	}
	return agg
}
