package shard

import (
	"errors"
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/crashpoint"
	"repro/internal/mtm"
	"repro/internal/scm"
)

// The sharded crash workload: a deterministic script of single-key SETs
// and DELs on known shards plus cross-shard MSETs, driven against a
// 3-shard store. The crash-point explorer cuts power inside exactly one
// shard's flush path at every persistence event; the body catches the
// power failure and keeps committing on the surviving shards, so the
// oracle can assert (a) every shard independently recovers an
// acked-prefix image and (b) a torn cross-shard MSET is all-or-nothing
// across every shard.

// crashOp kinds.
const (
	opSet = iota
	opDel
	opMSet
)

type crashOp struct {
	kind int
	keys []string
	vals []string // opSet/opMSet values, parallel to keys
}

// apply folds the op into the expected key-value model.
func (o crashOp) apply(model map[string]string) {
	switch o.kind {
	case opSet, opMSet:
		for i, k := range o.keys {
			model[k] = o.vals[i]
		}
	case opDel:
		for _, k := range o.keys {
			delete(model, k)
		}
	}
}

// run executes the op against the store.
func (o crashOp) run(st *Store) error {
	switch o.kind {
	case opSet:
		return st.Set(o.keys[0], o.vals[0])
	case opDel:
		err := st.Del(o.keys[0])
		if errors.Is(err, ErrNotFound) {
			return nil
		}
		return err
	case opMSet:
		return st.MSet(o.keys, o.vals)
	}
	return fmt.Errorf("bad op kind %d", o.kind)
}

// keyOnShard returns a key routing to shard k of n (deterministic probe
// over the fixed FNV hash).
func keyOnShard(prefix string, k, n int) string {
	for i := 0; ; i++ {
		key := fmt.Sprintf("%s%d", prefix, i)
		if int(HashKey(key)%uint64(n)) == k {
			return key
		}
	}
}

// shardScript builds the deterministic op sequence for an n-shard store:
// per-shard single-key traffic interleaved with cross-shard MSETs
// (including one single-participant MSET, one rewrite of MSET keys and
// one delete of an MSET key).
func shardScript(n int) []crashOp {
	k := func(prefix string, shard int) string { return keyOnShard(prefix, shard, n) }
	all := make([]string, n)
	allV, allV2 := make([]string, n), make([]string, n)
	for i := 0; i < n; i++ {
		all[i] = k("x", i)
		allV[i] = fmt.Sprintf("cross-%d", i)
		allV2[i] = fmt.Sprintf("cross2-%d", i)
	}
	return []crashOp{
		{kind: opSet, keys: []string{k("a", 0)}, vals: []string{"a0"}},
		{kind: opSet, keys: []string{k("b", 1)}, vals: []string{"b1"}},
		{kind: opSet, keys: []string{k("c", 2)}, vals: []string{"c2"}},
		{kind: opMSet, keys: all, vals: allV}, // spans every shard
		{kind: opSet, keys: []string{k("a", 0)}, vals: []string{"a0-rewritten"}},
		{kind: opDel, keys: []string{k("b", 1)}},
		{kind: opMSet, keys: []string{all[0], all[n-1]}, vals: []string{allV2[0], allV2[n-1]}}, // two shards
		{kind: opMSet, keys: []string{k("y", 1), k("z", 1)}, vals: []string{"y1", "z1"}},       // one shard: no intent protocol
		{kind: opDel, keys: []string{all[1]}},
		{kind: opSet, keys: []string{k("d", 2)}, vals: []string{"d2"}},
	}
}

// scriptKeys is every key the script touches, in first-use order.
func scriptKeys(script []crashOp) []string {
	var keys []string
	seen := map[string]bool{}
	for _, o := range script {
		for _, k := range o.keys {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	return keys
}

// TestCrashPointsSharded explores crash points of the sharded store: the
// power failure lands inside one shard's flush path while the body keeps
// committing on the surviving shards. The oracle reattaches all shards
// (sequentially — recovery itself is inside the explored determinism
// envelope) and asserts the recovered image equals the acked op set with
// at most the one in-flight op applied atomically — in particular, a
// cross-shard MSET torn by the crash is either visible on every
// participant shard or none.
func TestCrashPointsSharded(t *testing.T) {
	const nShards = 3
	script := shardScript(nShards)

	workload := func() (*crashpoint.Run, error) {
		cfg := Config{
			Config: core.Config{
				DeviceSize: 8 << 20,
				HeapSize:   256 << 10,
				Threads:    2,
			},
			Shards:          nShards,
			RecoveryWorkers: 1, // deterministic attach order
		}
		var err error
		if cfg.Dir, err = os.MkdirTemp("", "shard-crash-*"); err != nil {
			return nil, err
		}
		devs := make([]*scm.Device, nShards)
		for i := range devs {
			if devs[i], err = scm.Open(scm.Config{Size: cfg.DeviceSize, Mode: scm.DelayOff}); err != nil {
				return nil, err
			}
		}
		acked := make([]bool, len(script))
		inflight := -1
		return &crashpoint.Run{
			Devs: devs,
			Body: func() error {
				st, err := Attach(devs, cfg)
				if err != nil {
					return err
				}
				dead := -1
				for i, o := range script {
					if dead >= 0 && opTouchesShard(st, o, dead) {
						// The dead shard's slots may be wedged mid-unwind;
						// route nothing at it. Survivor-only ops continue.
						continue
					}
					err := runOpGuarded(st, o)
					switch {
					case err == nil:
						acked[i] = true
					case errors.Is(err, errPowerCut) && dead < 0:
						inflight = i
						for k, d := range devs {
							if d.IsPowerCut() {
								dead = k
							}
						}
						if dead < 0 {
							return fmt.Errorf("op %d power-cut but no device is frozen", i)
						}
					default:
						return fmt.Errorf("op %d: %w", i, err)
					}
				}
				return nil
			},
			Check: func() error {
				defer os.RemoveAll(cfg.Dir)
				st, err := Attach(devs, cfg)
				if err != nil {
					return fmt.Errorf("store not reopenable: %w", err)
				}
				defer st.Close()
				// Every shard's tree invariants hold independently.
				for k := 0; k < st.NShards(); k++ {
					sh := st.Shard(k)
					if err := sh.PM.View(func(r *mtm.ReadTx) error {
						return sh.Tree.CheckInvariants(r)
					}); err != nil {
						return fmt.Errorf("shard %d B+ tree invariants: %w", k, err)
					}
					// Recovery resolves every cross-shard intent.
					if err := sh.PM.View(func(r *mtm.ReadTx) error {
						if stage := sh.openStage(r); stage != nil {
							if n := stage.Len(r); n != 0 {
								return fmt.Errorf("%d unresolved intents", n)
							}
						}
						return nil
					}); err != nil {
						return fmt.Errorf("shard %d: %w", k, err)
					}
				}
				// The recovered image matches the acked ops, with at most
				// the in-flight op applied — atomically across shards.
				stateA := foldScript(script, acked, -1)
				stateB := stateA
				if inflight >= 0 {
					stateB = foldScript(script, acked, inflight)
				}
				diffA := diffState(st, script, stateA)
				if diffA == "" {
					return nil
				}
				if inflight < 0 {
					return fmt.Errorf("recovered image does not match acked set (no op in flight): %s", diffA)
				}
				diffB := diffState(st, script, stateB)
				if diffB == "" {
					return nil
				}
				return fmt.Errorf("recovered image matches neither acked set (%s) nor acked+in-flight op %d (%s)",
					diffA, inflight, diffB)
			},
		}, nil
	}

	rep, err := crashpoint.Explore(workload, crashpoint.Options{
		Schedule: crashpoint.TestSchedule(testing.Short(), 48),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		for _, f := range rep.Failures {
			t.Errorf("%v", f)
		}
		t.Fatalf("sharded durability oracle failed at %d of %d crash points (%s)",
			len(rep.Failures), rep.Points, rep)
	}
	if rep.Points < 200 {
		t.Errorf("only %d crash points enumerated; the sharded workload should expose at least 200", rep.Points)
	}
	t.Logf("sharded: %s", rep)
}

var errPowerCut = errors.New("power cut")

// opTouchesShard reports whether any of the op's keys route to shard k.
func opTouchesShard(st *Store, o crashOp, k int) bool {
	for _, key := range o.keys {
		if st.ShardOf(key) == k {
			return true
		}
	}
	return false
}

// runOpGuarded executes one op, converting a PowerFailure panic (the
// crash trigger, or a later touch of the frozen shard) into errPowerCut.
func runOpGuarded(st *Store, o crashOp) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(scm.PowerFailure); ok {
				err = errPowerCut
				return
			}
			panic(r)
		}
	}()
	return o.run(st)
}

// foldScript folds the acked ops (plus optionally the op at index extra)
// into the expected model, in script order.
func foldScript(script []crashOp, acked []bool, extra int) map[string]string {
	model := map[string]string{}
	for i, o := range script {
		if acked[i] || i == extra {
			o.apply(model)
		}
	}
	return model
}

// diffState compares the store against the model over every script key,
// returning "" on match or a description of the first difference.
func diffState(st *Store, script []crashOp, model map[string]string) string {
	for _, key := range scriptKeys(script) {
		v, err := st.Get(key)
		want, ok := model[key]
		switch {
		case err == nil && !ok:
			return fmt.Sprintf("key %q: got %q, want missing", key, v)
		case errors.Is(err, ErrNotFound) && ok:
			return fmt.Sprintf("key %q: missing, want %q", key, want)
		case err != nil && !errors.Is(err, ErrNotFound):
			return fmt.Sprintf("key %q: %v", key, err)
		case err == nil && v != want:
			return fmt.Sprintf("key %q: got %q, want %q", key, v, want)
		}
	}
	cnt, err := st.Count()
	if err != nil {
		return fmt.Sprintf("COUNT: %v", err)
	}
	if cnt != len(model) {
		return fmt.Sprintf("COUNT = %d, want %d", cnt, len(model))
	}
	return ""
}
