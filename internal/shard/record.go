package shard

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/blob"
)

// Tree records are typed since the RESP redesign: a record is no longer
// bare key+value bytes but carries a one-byte flag field declaring its
// value type (string or hash) and, optionally, an absolute expiry
// deadline. Layout:
//
//	[2B key length][key][1B flags][8B expiry deadline?][payload]
//
// flags bits 0-1 hold the RecType, bit 2 marks an expiry field present.
// The deadline is UNIX nanoseconds, little endian, and is the
// authoritative expiry: the timer wheel (internal/kvserve) only holds
// advisory reminders pointing back at records, so a stale or duplicated
// wheel entry can never expire a record whose own deadline says
// otherwise. String payloads are the raw value bytes; hash payloads are
// the field codec below.

// RecType is a record's value type.
type RecType byte

const (
	// RecString is a plain byte-string value.
	RecString RecType = 0
	// RecHash is a field→value map (HSET/HGET), encoded with
	// EncodeHashFields.
	RecHash RecType = 1
)

const (
	recTypeMask   = 0x03
	recFlagExpire = 0x04
	recFlagsKnown = recTypeMask | recFlagExpire
)

// Record is one decoded tree record.
type Record struct {
	Key    string
	Type   RecType
	Expire int64  // UNIX nanoseconds; 0 = no expiry
	Value  []byte // string bytes, or EncodeHashFields payload
}

// Expired reports whether the record's deadline has passed at now.
func (r *Record) Expired(now int64) bool {
	return r.Expire != 0 && r.Expire <= now
}

// ErrWrongType reports an operation against a key holding the other
// value type (a GET of a hash, an HGET of a string). Matchable with
// errors.Is.
var ErrWrongType = errors.New("WRONGTYPE operation against a key holding the wrong kind of value")

// EncodeRecord builds a tree record, enforcing the key and payload size
// caps (the payload cap applies to a hash's whole encoded field set).
func EncodeRecord(r Record) ([]byte, error) {
	if err := blob.CheckWrite(int64(len(r.Key)), MaxKeyLen); err != nil {
		return nil, fmt.Errorf("%w: %d bytes exceeds %d", ErrKeyTooLong, len(r.Key), MaxKeyLen)
	}
	if err := blob.CheckWrite(int64(len(r.Value)), MaxValueLen); err != nil {
		return nil, fmt.Errorf("%w: %d bytes exceeds %d", ErrValueTooLong, len(r.Value), MaxValueLen)
	}
	flags := byte(r.Type) & recTypeMask
	n := 2 + len(r.Key) + 1
	if r.Expire != 0 {
		flags |= recFlagExpire
		n += 8
	}
	out := make([]byte, n+len(r.Value))
	out[0] = byte(len(r.Key))
	out[1] = byte(len(r.Key) >> 8)
	copy(out[2:], r.Key)
	out[2+len(r.Key)] = flags
	if r.Expire != 0 {
		binary.LittleEndian.PutUint64(out[3+len(r.Key):], uint64(r.Expire))
	}
	copy(out[n:], r.Value)
	return out, nil
}

// DecodeRecord splits a tree record back into its parts. The returned
// Value aliases b.
func DecodeRecord(b []byte) (Record, error) {
	if len(b) < 2 {
		return Record{}, errors.New("shard: short record")
	}
	kl := int(b[0]) | int(b[1])<<8
	if err := blob.CheckRead(int64(kl), MaxKeyLen); err != nil {
		return Record{}, fmt.Errorf("shard: record key length: %w", err)
	}
	if len(b) < 2+kl+1 {
		return Record{}, errors.New("shard: truncated record")
	}
	r := Record{Key: string(b[2 : 2+kl])}
	flags := b[2+kl]
	if flags&^byte(recFlagsKnown) != 0 {
		return Record{}, fmt.Errorf("shard: unknown record flags %#x", flags)
	}
	r.Type = RecType(flags & recTypeMask)
	rest := b[2+kl+1:]
	if flags&recFlagExpire != 0 {
		if len(rest) < 8 {
			return Record{}, errors.New("shard: truncated record expiry")
		}
		r.Expire = int64(binary.LittleEndian.Uint64(rest))
		rest = rest[8:]
	}
	r.Value = rest
	return r, nil
}

// DecodeRecordKey extracts just the stored key — enough for collision
// checks and intent-recovery routing, without touching the payload.
func DecodeRecordKey(b []byte) (string, error) {
	if len(b) < 2 {
		return "", errors.New("shard: short record")
	}
	kl := int(b[0]) | int(b[1])<<8
	if err := blob.CheckRead(int64(kl), MaxKeyLen); err != nil {
		return "", fmt.Errorf("shard: record key length: %w", err)
	}
	if len(b) < 2+kl {
		return "", errors.New("shard: truncated record")
	}
	return string(b[2 : 2+kl]), nil
}

// HashField is one field of a hash value.
type HashField struct {
	Name  []byte
	Value []byte
}

// EncodeHashFields encodes a hash payload: a two-byte field count, then
// per field a two-byte name length, the name, a four-byte value length,
// and the value. Fields are sorted by name so equal hashes encode to
// equal bytes regardless of update order.
func EncodeHashFields(fields []HashField) []byte {
	sort.Slice(fields, func(i, j int) bool {
		return bytes.Compare(fields[i].Name, fields[j].Name) < 0
	})
	n := 2
	for _, f := range fields {
		n += 2 + len(f.Name) + 4 + len(f.Value)
	}
	out := make([]byte, 0, n)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(fields)))
	for _, f := range fields {
		out = binary.LittleEndian.AppendUint16(out, uint16(len(f.Name)))
		out = append(out, f.Name...)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(f.Value)))
		out = append(out, f.Value...)
	}
	return out
}

// DecodeHashFields decodes a hash payload. The returned slices alias p.
func DecodeHashFields(p []byte) ([]HashField, error) {
	if len(p) < 2 {
		return nil, errors.New("shard: short hash payload")
	}
	n := int(binary.LittleEndian.Uint16(p))
	p = p[2:]
	fields := make([]HashField, 0, n)
	for i := 0; i < n; i++ {
		if len(p) < 2 {
			return nil, errors.New("shard: truncated hash field")
		}
		nl := int(binary.LittleEndian.Uint16(p))
		p = p[2:]
		if len(p) < nl+4 {
			return nil, errors.New("shard: truncated hash field name")
		}
		name := p[:nl]
		p = p[nl:]
		vl := int(binary.LittleEndian.Uint32(p))
		p = p[4:]
		if err := blob.CheckRead(int64(vl), MaxValueLen); err != nil {
			return nil, fmt.Errorf("shard: hash field value length: %w", err)
		}
		if len(p) < vl {
			return nil, errors.New("shard: truncated hash field value")
		}
		fields = append(fields, HashField{Name: name, Value: p[:vl]})
		p = p[vl:]
	}
	if len(p) != 0 {
		return nil, errors.New("shard: trailing bytes in hash payload")
	}
	return fields, nil
}
