package shard

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/mtm"
	"repro/internal/pds"
	"repro/internal/scm"
)

func testConfig(t *testing.T, shards int) Config {
	t.Helper()
	return Config{
		Config: core.Config{
			DeviceSize: 16 << 20,
			HeapSize:   4 << 20,
			Dir:        t.TempDir(),
			Threads:    8,
		},
		Shards: shards,
	}
}

func openStore(t *testing.T, shards int) *Store {
	t.Helper()
	st, err := Open(testConfig(t, shards))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return st
}

// crashReattach quiesces the store, crashes every shard's device under
// pol, and reattaches over the surviving images.
func crashReattach(t *testing.T, st *Store, cfg Config, pol func() scm.CrashPolicy) *Store {
	t.Helper()
	st.StopTruncation()
	devs := st.Devices()
	for _, dev := range devs {
		dev.Crash(pol())
	}
	st2, err := Attach(devs, cfg)
	if err != nil {
		t.Fatalf("Attach after crash: %v", err)
	}
	return st2
}

func TestRoutingAndBasicOps(t *testing.T) {
	st := openStore(t, 3)
	defer st.Close()

	const n = 200
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%04d", i)
		if err := st.Set(key, fmt.Sprintf("v%d", i)); err != nil {
			t.Fatalf("Set %s: %v", key, err)
		}
	}
	// Keys must have spread over all shards (FNV over 200 keys cannot
	// plausibly land on fewer).
	for k := 0; k < st.NShards(); k++ {
		sh := st.Shard(k)
		ln := 0
		sh.PM.View(func(r *mtm.ReadTx) error {
			ln = sh.Tree.Len(r)
			return nil
		})
		if ln == 0 {
			t.Errorf("shard %d holds no keys", k)
		}
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%04d", i)
		v, err := st.Get(key)
		if err != nil || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get %s = %q, %v", key, v, err)
		}
		// Routing is stable: the shard index derives from the key alone.
		if got, want := st.ShardOf(key), int(HashKey(key)%uint64(st.NShards())); got != want {
			t.Fatalf("ShardOf(%s) = %d, want %d", key, got, want)
		}
	}
	if cnt, err := st.Count(); err != nil || cnt != n {
		t.Fatalf("Count = %d, %v; want %d", cnt, err, n)
	}
	if err := st.Del("key-0000"); err != nil {
		t.Fatalf("Del: %v", err)
	}
	if _, err := st.Get("key-0000"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Del: %v", err)
	}
	if err := st.Del("key-0000"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Del of absent key: %v", err)
	}

	keys := []string{"key-0001", "nope", "key-0199"}
	values, present, err := st.MGet(keys)
	if err != nil {
		t.Fatalf("MGet: %v", err)
	}
	if !present[0] || present[1] || !present[2] || values[0] != "v1" || values[2] != "v199" {
		t.Fatalf("MGet = %v %v", values, present)
	}
	if n, err := st.MDel([]string{"key-0001", "nope", "key-0002"}); err != nil || n != 2 {
		t.Fatalf("MDel = %d, %v", n, err)
	}
}

func TestCrossShardMSetAppliesEverywhere(t *testing.T) {
	cfg := testConfig(t, 4)
	st, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 16)
	values := make([]string, 16)
	for i := range keys {
		keys[i] = fmt.Sprintf("ms-%d", i)
		values[i] = fmt.Sprintf("mv-%d", i)
	}
	if err := st.MSet(keys, values); err != nil {
		t.Fatalf("MSet: %v", err)
	}
	// 16 FNV-hashed keys over 4 shards: this particular MSET must span
	// several shards, or the test exercises nothing.
	parts := st.partition(keys)
	spanned := 0
	for _, idxs := range parts {
		if len(idxs) > 0 {
			spanned++
		}
	}
	if spanned < 2 {
		t.Fatalf("MSET spanned %d shards; fix the key set", spanned)
	}
	for i := range keys {
		if v, err := st.Get(keys[i]); err != nil || v != values[i] {
			t.Fatalf("Get %s = %q, %v", keys[i], v, err)
		}
	}
	// Intent tables are clean after a completed MSET.
	for k := 0; k < st.NShards(); k++ {
		sh := st.Shard(k)
		sh.PM.View(func(r *mtm.ReadTx) error {
			if stage := sh.openStage(r); stage != nil {
				if n := stage.Len(r); n != 0 {
					t.Errorf("shard %d: %d leftover intents", k, n)
				}
			}
			return nil
		})
	}
	// The pairs survive a clean crash/reattach.
	st2 := crashReattach(t, st, cfg, func() scm.CrashPolicy { return scm.KeepAll{} })
	defer st2.Close()
	for i := range keys {
		if v, err := st2.Get(keys[i]); err != nil || v != values[i] {
			t.Fatalf("after reattach: Get %s = %q, %v", keys[i], v, err)
		}
	}
}

// stagePut durably writes a fabricated intent record on one shard, the
// way a crash between protocol phases would leave it.
func stagePut(t *testing.T, st *Store, k int, xid uint64, blob []byte) {
	t.Helper()
	sh := st.Shard(k)
	stage, err := sh.ensureStage()
	if err != nil {
		t.Fatalf("shard %d ensureStage: %v", k, err)
	}
	if err := sh.PM.Atomic(func(tx *mtm.Tx) error {
		return stage.Put(tx, xid, blob)
	}); err != nil {
		t.Fatalf("shard %d stage put: %v", k, err)
	}
}

func stageLen(t *testing.T, st *Store, k int) int64 {
	t.Helper()
	sh := st.Shard(k)
	var n int64
	sh.PM.View(func(r *mtm.ReadTx) error {
		if stage := sh.openStage(r); stage != nil {
			n = stage.Len(r)
		}
		return nil
	})
	return n
}

// TestRecoveryRollsBackPartialPrepare: a crash after some but not all
// participants prepared must leave no trace of the MSET.
func TestRecoveryRollsBackPartialPrepare(t *testing.T) {
	cfg := testConfig(t, 3)
	st, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec0, _ := EncodeKV("torn-a", "x")
	// Participants 0 and 2; only shard 0 got its prepare durable.
	mask := uint64(1<<0 | 1<<2)
	stagePut(t, st, 0, 7, encodeIntent(statePrepared, mask, [][]byte{rec0}))

	st2 := crashReattach(t, st, cfg, func() scm.CrashPolicy { return scm.KeepAll{} })
	defer st2.Close()
	if c, a := st2.RecoveredIntents(); c != 0 || a != 1 {
		t.Fatalf("recovered commits=%d aborts=%d, want 0/1", c, a)
	}
	if _, err := st2.Get("torn-a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("rolled-back pair visible: %v", err)
	}
	for k := 0; k < st2.NShards(); k++ {
		if n := stageLen(t, st2, k); n != 0 {
			t.Fatalf("shard %d: %d intents survive rollback", k, n)
		}
	}
}

// TestRecoveryRollsForwardFullPrepare: once every participant's prepare
// is durable the transaction commits, even though no shard applied yet.
func TestRecoveryRollsForwardFullPrepare(t *testing.T) {
	cfg := testConfig(t, 3)
	st, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a second key guaranteed to route to a different shard, so
	// the fabricated intent really is cross-shard.
	ka := st.ShardOf("fwd-a")
	keyB := pickKeyOffShard(st, ka, "fwd-b")
	kb := st.ShardOf(keyB)
	recA, _ := EncodeKV("fwd-a", "va")
	recB, _ := EncodeKV(keyB, "vb")
	mask := uint64(1<<uint(ka) | 1<<uint(kb))
	stagePut(t, st, ka, 9, encodeIntent(statePrepared, mask, [][]byte{recA}))
	stagePut(t, st, kb, 9, encodeIntent(statePrepared, mask, [][]byte{recB}))

	st2 := crashReattach(t, st, cfg, func() scm.CrashPolicy { return scm.KeepAll{} })
	defer st2.Close()
	if c, a := st2.RecoveredIntents(); c != 1 || a != 0 {
		t.Fatalf("recovered commits=%d aborts=%d, want 1/0", c, a)
	}
	if v, err := st2.Get("fwd-a"); err != nil || v != "va" {
		t.Fatalf("fwd-a = %q, %v", v, err)
	}
	if v, err := st2.Get(keyB); err != nil || v != "vb" {
		t.Fatalf("%s = %q, %v", keyB, v, err)
	}
	for k := 0; k < st2.NShards(); k++ {
		if n := stageLen(t, st2, k); n != 0 {
			t.Fatalf("shard %d: %d intents survive roll-forward", k, n)
		}
	}
}

// TestRecoveryRollsForwardAfterPartialApply: one shard applied (tree
// updated, record marked applied), the other still prepared — recovery
// must finish the job on the prepared shard.
func TestRecoveryRollsForwardAfterPartialApply(t *testing.T) {
	cfg := testConfig(t, 3)
	st, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ka := st.ShardOf("pa-a")
	keyB := pickKeyOffShard(st, ka, "pa-b")
	kb := st.ShardOf(keyB)
	recB, _ := EncodeKV(keyB, "vb")
	mask := uint64(1<<uint(ka) | 1<<uint(kb))
	// Shard ka applied: pair in tree, record applied.
	if err := st.Set("pa-a", "va"); err != nil {
		t.Fatal(err)
	}
	stagePut(t, st, ka, 11, encodeIntent(stateApplied, mask, nil))
	// Shard kb crashed still prepared.
	stagePut(t, st, kb, 11, encodeIntent(statePrepared, mask, [][]byte{recB}))

	st2 := crashReattach(t, st, cfg, func() scm.CrashPolicy { return scm.KeepAll{} })
	defer st2.Close()
	if c, a := st2.RecoveredIntents(); c != 1 || a != 0 {
		t.Fatalf("recovered commits=%d aborts=%d, want 1/0", c, a)
	}
	if v, err := st2.Get(keyB); err != nil || v != "vb" {
		t.Fatalf("%s = %q, %v", keyB, v, err)
	}
}

// pickKeyOffShard returns prefix<i> for the smallest i whose key routes
// to a shard other than avoid. Deterministic for a fixed hash.
func pickKeyOffShard(st *Store, avoid int, prefix string) string {
	for i := 0; ; i++ {
		key := fmt.Sprintf("%s%d", prefix, i)
		if st.ShardOf(key) != avoid {
			return key
		}
	}
}

// TestParallelRecoveryMatchesSerial: the same crashed image attaches to
// identical contents whether shards recover concurrently or one by one.
func TestParallelRecoveryMatchesSerial(t *testing.T) {
	cfg := testConfig(t, 4)
	st, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := st.Set(fmt.Sprintf("pr-%d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	serial := cfg
	serial.RecoveryWorkers = 1
	st2 := crashReattach(t, st, serial, func() scm.CrashPolicy { return scm.NewRandomPolicy(42) })
	want := make(map[string]string)
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("pr-%d", i)
		v, err := st2.Get(key)
		if err != nil {
			t.Fatalf("serial recovery lost %s: %v", key, err)
		}
		want[key] = v
	}
	parallel := cfg
	parallel.RecoveryWorkers = 4
	st3 := crashReattach(t, st2, parallel, func() scm.CrashPolicy { return scm.KeepAll{} })
	defer st3.Close()
	for key, v := range want {
		got, err := st3.Get(key)
		if err != nil || got != v {
			t.Fatalf("parallel recovery: %s = %q, %v; want %q", key, got, err, v)
		}
	}
	for k := 0; k < st3.NShards(); k++ {
		if st3.Shard(k).RecoveryTime <= 0 {
			t.Errorf("shard %d: no recovery time recorded", k)
		}
	}
}

// TestSingleShardCompat: an image written by a direct core.Open — the
// pre-sharding layout — opens as a one-shard store with its data intact,
// and vice versa.
func TestSingleShardCompat(t *testing.T) {
	dir := t.TempDir()
	img := dir + "/scm.img"
	ccfg := core.Config{DevicePath: img, DeviceSize: 16 << 20, HeapSize: 4 << 20, Dir: dir, Threads: 8}
	pm, err := core.Open(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	root, _, err := pm.Static("kvserve.root", 8)
	if err != nil {
		t.Fatal(err)
	}
	tree := pds.NewBPTree(root)
	rec, _ := EncodeKV("legacy", "value")
	if err := pm.Atomic(func(tx *mtm.Tx) error {
		return tree.Put(tx, HashKey("legacy"), rec)
	}); err != nil {
		t.Fatal(err)
	}
	if err := pm.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := Open(Config{Config: ccfg}) // Shards: 0 ⇒ 1
	if err != nil {
		t.Fatalf("sharded open of pre-sharding image: %v", err)
	}
	if v, err := st.Get("legacy"); err != nil || v != "value" {
		t.Fatalf("legacy key = %q, %v", v, err)
	}
	if err := st.Set("fresh", "new"); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// And back: core.Open reads what the one-shard store wrote.
	pm2, err := core.Open(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pm2.Close()
	var got string
	err = pm2.View(func(r *mtm.ReadTx) error {
		raw, err := tree.Get(r, HashKey("fresh"))
		if err != nil {
			return err
		}
		_, v, err := DecodeKV(raw)
		got = v
		return err
	})
	if err != nil || got != "new" {
		t.Fatalf("round-trip key = %q, %v", got, err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Open(Config{Shards: MaxShards + 1}); err == nil {
		t.Error("shard count over MaxShards accepted")
	}
	if _, err := Open(Config{Shards: 2}); err == nil {
		t.Error("multi-shard store without Dir accepted")
	}
	if _, err := core.Open(core.Config{Shards: 4}); err == nil {
		t.Error("core.Open accepted Shards > 1")
	}
	// Shards: 0 and 1 are both single-instance core configs.
	for _, n := range []int{0, 1} {
		pm, err := core.Open(core.Config{DeviceSize: 8 << 20, HeapSize: 2 << 20, Dir: t.TempDir(), Shards: n})
		if err != nil {
			t.Fatalf("core.Open Shards=%d: %v", n, err)
		}
		pm.Close()
	}
}

func TestIntentCodec(t *testing.T) {
	recs := [][]byte{{1, 2, 3}, {}, []byte("hello")}
	blob := encodeIntent(statePrepared, 0b1011, recs)
	it, err := decodeIntent(blob)
	if err != nil {
		t.Fatal(err)
	}
	if it.state != statePrepared || it.mask != 0b1011 || len(it.recs) != 3 {
		t.Fatalf("decoded %+v", it)
	}
	if string(it.recs[2]) != "hello" || len(it.recs[1]) != 0 {
		t.Fatalf("pair payloads corrupted: %v", it.recs)
	}
	if _, err := decodeIntent(blob[:5]); err == nil {
		t.Error("truncated intent accepted")
	}
	if _, err := decodeIntent([]byte{99, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("bad state accepted")
	}
}
