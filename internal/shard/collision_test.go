package shard

import (
	"errors"
	"testing"
)

// collideHash maps both named keys to one slot and everything else
// through the real hash — the two keys collide, route to the same
// shard, and the rest of the store behaves normally.
func collideHash(a, b string, h uint64) func(string) uint64 {
	return func(s string) uint64 {
		if s == a || s == b {
			return h
		}
		return HashKey(s)
	}
}

// TestSetCollision pins the Set clobber fix: with a hash that maps every
// key to one slot, a Set of a second key must fail with ErrHashCollision
// and leave the first key's record intact — the old unchecked put
// silently destroyed it and answered OK.
func TestSetCollision(t *testing.T) {
	st := openStore(t, 1)
	defer st.Close()
	st.hash = func(string) uint64 { return 42 }

	if err := st.Set("alpha", "one"); err != nil {
		t.Fatalf("Set alpha: %v", err)
	}
	if err := st.Set("beta", "two"); !errors.Is(err, ErrHashCollision) {
		t.Fatalf("Set of colliding key: %v, want ErrHashCollision", err)
	}
	if v, err := st.Get("alpha"); err != nil || v != "one" {
		t.Fatalf("alpha after colliding Set = %q, %v", v, err)
	}
	if _, err := st.Get("beta"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get beta: %v", err)
	}
	// Overwriting the SAME key is the normal update path and must work.
	if err := st.Set("alpha", "updated"); err != nil {
		t.Fatalf("Set alpha update: %v", err)
	}
	if v, _ := st.Get("alpha"); v != "updated" {
		t.Fatalf("alpha = %q after update", v)
	}
}

// TestMSetCollisionSingleShard covers the single-shard MSet transaction:
// a colliding pair aborts the whole batch, destroying nothing.
func TestMSetCollisionSingleShard(t *testing.T) {
	st := openStore(t, 1)
	defer st.Close()
	st.hash = func(string) uint64 { return 42 }

	if err := st.Set("alpha", "one"); err != nil {
		t.Fatal(err)
	}
	err := st.MSet([]string{"beta"}, []string{"x"})
	if !errors.Is(err, ErrHashCollision) {
		t.Fatalf("MSet of colliding key: %v, want ErrHashCollision", err)
	}
	if v, err := st.Get("alpha"); err != nil || v != "one" {
		t.Fatalf("alpha after colliding MSet = %q, %v", v, err)
	}
	if err := st.MSet([]string{"alpha"}, []string{"two"}); err != nil {
		t.Fatalf("same-key MSet update: %v", err)
	}
}

// TestMSetCollisionCrossShard: the cross-shard prepare phase detects the
// collision before the commit point, so the whole MSET aborts — no shard
// applies its pairs and no intent records survive.
func TestMSetCollisionCrossShard(t *testing.T) {
	st := openStore(t, 3)
	defer st.Close()
	st.hash = collideHash("col-a", "col-b", 77)

	if err := st.Set("col-b", "occupied"); err != nil {
		t.Fatal(err)
	}
	keyB := pickKeyOffShard(st, st.ShardOf("col-a"), "other-")
	err := st.MSet([]string{"col-a", keyB}, []string{"va", "vb"})
	if !errors.Is(err, ErrHashCollision) {
		t.Fatalf("cross-shard MSet with collision: %v, want ErrHashCollision", err)
	}
	if v, gerr := st.Get("col-b"); gerr != nil || v != "occupied" {
		t.Fatalf("col-b after aborted MSet = %q, %v", v, gerr)
	}
	if _, gerr := st.Get(keyB); !errors.Is(gerr, ErrNotFound) {
		t.Fatalf("aborted MSet applied %s: %v", keyB, gerr)
	}
	for k := 0; k < st.NShards(); k++ {
		if n := stageLen(t, st, k); n != 0 {
			t.Fatalf("shard %d: %d intents survive the abort", k, n)
		}
	}
}

// TestRollForwardSkipsCollision: recovery's roll-forward meets a
// prepared pair whose slot a different key has taken (a write that
// landed after the prepare). It must skip that pair — never clobber the
// newer record, never fail recovery — and still apply the rest.
func TestRollForwardSkipsCollision(t *testing.T) {
	st := openStore(t, 3)
	defer st.Close()
	st.hash = collideHash("col-a", "col-b", 77)

	ka := st.ShardOf("col-a")
	keyB := pickKeyOffShard(st, ka, "fwd-")
	kb := st.ShardOf(keyB)
	if err := st.Set("col-b", "occupied"); err != nil {
		t.Fatal(err)
	}
	recA, _ := EncodeKV("col-a", "va")
	recB, _ := EncodeKV(keyB, "vb")
	mask := uint64(1<<uint(ka) | 1<<uint(kb))
	stagePut(t, st, ka, 21, encodeIntent(statePrepared, mask, [][]byte{recA}))
	stagePut(t, st, kb, 21, encodeIntent(statePrepared, mask, [][]byte{recB}))

	skipsBefore := telXCollisionSkips.Value()
	commits, aborts, err := st.resolveIntents()
	if err != nil {
		t.Fatalf("resolveIntents: %v", err)
	}
	if commits != 1 || aborts != 0 {
		t.Fatalf("commits=%d aborts=%d, want 1/0", commits, aborts)
	}
	if got := telXCollisionSkips.Value() - skipsBefore; got != 1 {
		t.Fatalf("collision skips = %d, want 1", got)
	}
	// The colliding pair was skipped: col-b keeps its record, col-a never
	// appears.
	if v, gerr := st.Get("col-b"); gerr != nil || v != "occupied" {
		t.Fatalf("col-b after roll-forward = %q, %v", v, gerr)
	}
	if _, gerr := st.Get("col-a"); !errors.Is(gerr, ErrNotFound) {
		t.Fatalf("skipped pair visible: %v", gerr)
	}
	// The non-colliding participant still rolled forward.
	if v, gerr := st.Get(keyB); gerr != nil || v != "vb" {
		t.Fatalf("%s after roll-forward = %q, %v", keyB, v, gerr)
	}
	for k := 0; k < st.NShards(); k++ {
		if n := stageLen(t, st, k); n != 0 {
			t.Fatalf("shard %d: %d intents survive resolution", k, n)
		}
	}
}
