package shard

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// Linearizability smoke test for the sharded KV front end.
//
// The spec is per-key sequential (an atomic register per key, ∅ before
// the first write): single-key SET/GET are one-register ops, and a
// cross-shard MSET/MGET contributes one component per touched key, every
// component carrying the whole call's invocation/response interval — the
// multi-key op enters each register's history atomically. Cross-key
// isolation is deliberately NOT part of the spec: the shard design gives
// cross-shard MSET all-or-nothing durability but no cross-shard
// read isolation (see xstage.go), so only the per-key histories must
// linearize.
//
// The checker is a per-key Wing–Gong-style search: every written value
// is unique, so a history linearizes iff there is an order, consistent
// with real time (an op whose response precedes another's invocation
// comes first), in which each read returns the latest earlier write. The
// search walks minimal ops with memoization on (done-set, register
// value); histories are bounded (≤64 ops per key) to keep it exact.

// linOp is one component of a recorded operation: a write installing val
// at key, or a read that observed val (valMissing for MISSING).
type linOp struct {
	write    bool
	val      string
	inv, res int64
}

const valMissing = "∅"

// linearizable reports whether one key's component history admits a
// legal sequential order consistent with real time.
func linearizable(ops []linOp) bool {
	n := len(ops)
	if n > 64 {
		panic("history too long for bitmask search")
	}
	type state struct {
		done uint64
		val  string
	}
	seen := map[state]bool{}
	var search func(done uint64, val string) bool
	search = func(done uint64, val string) bool {
		if done == uint64(1)<<n-1 {
			return true
		}
		st := state{done, val}
		if seen[st] {
			return false
		}
		seen[st] = true
		for i := 0; i < n; i++ {
			if done&(1<<i) != 0 {
				continue
			}
			// i is minimal iff no other pending op completed before i was
			// invoked — real time forces such an op to linearize first.
			minimal := true
			for j := 0; j < n; j++ {
				if i != j && done&(1<<j) == 0 && ops[j].res < ops[i].inv {
					minimal = false
					break
				}
			}
			if !minimal {
				continue
			}
			if ops[i].write {
				if search(done|1<<i, ops[i].val) {
					return true
				}
			} else if ops[i].val == val {
				if search(done|1<<i, val) {
					return true
				}
			}
		}
		return false
	}
	return search(0, valMissing)
}

// TestLinearizableSmoke runs a bounded concurrent history of SET/GET and
// cross-shard MSET/MGET over a small contended key set, then checks
// every key's component history against the per-key sequential spec.
func TestLinearizableSmoke(t *testing.T) {
	workers, opsPer := 4, 24
	if testing.Short() {
		opsPer = 12
	}
	const nKeys = 8 // contended: every worker touches every key
	st, err := Open(Config{
		Config: core.Config{
			Dir:        t.TempDir(),
			DeviceSize: 16 << 20,
			Threads:    workers + 2,
		},
		Shards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("lin%d", i)
	}

	var clock atomic.Int64
	var mu sync.Mutex
	hist := map[string][]linOp{} // key -> component history

	record := func(key string, op linOp) {
		mu.Lock()
		hist[key] = append(hist[key], op)
		mu.Unlock()
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(90 + w)))
			for j := 0; j < opsPer; j++ {
				switch rng.Intn(4) {
				case 0: // SET one key
					key := keys[rng.Intn(nKeys)]
					val := fmt.Sprintf("w%d.%d", w, j)
					inv := clock.Add(1)
					if err := st.Set(key, val); err != nil {
						errs <- err
						return
					}
					record(key, linOp{write: true, val: val, inv: inv, res: clock.Add(1)})
				case 1: // MSET two distinct keys (usually cross-shard)
					a, b := rng.Intn(nKeys), rng.Intn(nKeys)
					if a == b {
						b = (b + 1) % nKeys
					}
					va := fmt.Sprintf("w%d.%da", w, j)
					vb := fmt.Sprintf("w%d.%db", w, j)
					inv := clock.Add(1)
					if err := st.MSet([]string{keys[a], keys[b]}, []string{va, vb}); err != nil {
						errs <- err
						return
					}
					res := clock.Add(1)
					record(keys[a], linOp{write: true, val: va, inv: inv, res: res})
					record(keys[b], linOp{write: true, val: vb, inv: inv, res: res})
				case 2: // GET one key
					key := keys[rng.Intn(nKeys)]
					inv := clock.Add(1)
					v, err := st.Get(key)
					if err == ErrNotFound {
						v = valMissing
					} else if err != nil {
						errs <- err
						return
					}
					record(key, linOp{val: v, inv: inv, res: clock.Add(1)})
				case 3: // MGET two keys
					a, b := rng.Intn(nKeys), rng.Intn(nKeys)
					if a == b {
						b = (b + 1) % nKeys
					}
					inv := clock.Add(1)
					vals, present, err := st.MGet([]string{keys[a], keys[b]})
					if err != nil {
						errs <- err
						return
					}
					res := clock.Add(1)
					for i, ki := range []int{a, b} {
						v := valMissing
						if present[i] {
							v = vals[i]
						}
						record(keys[ki], linOp{val: v, inv: inv, res: res})
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for _, key := range keys {
		ops := hist[key]
		if len(ops) > 64 {
			t.Fatalf("key %s: %d ops exceeds the checker's bound; lower the scale", key, len(ops))
		}
		if !linearizable(ops) {
			t.Errorf("key %s: history of %d ops is not linearizable", key, len(ops))
			for _, op := range ops {
				kind := "read "
				if op.write {
					kind = "write"
				}
				t.Logf("  %s %-12q [%d, %d]", kind, op.val, op.inv, op.res)
			}
		}
	}
}

// TestLinearizableChecker sanity-checks the checker itself: it must
// accept a legal interleaving and reject a stale and a future read.
func TestLinearizableChecker(t *testing.T) {
	w := func(v string, inv, res int64) linOp { return linOp{write: true, val: v, inv: inv, res: res} }
	r := func(v string, inv, res int64) linOp { return linOp{val: v, inv: inv, res: res} }
	cases := []struct {
		name string
		ops  []linOp
		want bool
	}{
		{"empty", nil, true},
		{"read initial missing", []linOp{r(valMissing, 1, 2)}, true},
		{"read own write", []linOp{w("a", 1, 2), r("a", 3, 4)}, true},
		{"concurrent read either", []linOp{w("a", 1, 4), r(valMissing, 2, 3)}, true},
		{"stale read", []linOp{w("a", 1, 2), w("b", 3, 4), r("a", 5, 6)}, false},
		{"future read", []linOp{r("a", 1, 2), w("a", 3, 4)}, false},
		{"missing after write", []linOp{w("a", 1, 2), r(valMissing, 3, 4)}, false},
		{"overlapping writes, both orders", []linOp{w("a", 1, 3), w("b", 2, 4), r("a", 5, 6)}, true},
	}
	for _, tc := range cases {
		if got := linearizable(tc.ops); got != tc.want {
			t.Errorf("%s: linearizable = %v, want %v", tc.name, got, tc.want)
		}
	}
}
