package shard

import (
	"errors"
	"fmt"

	"repro/internal/mtm"
	"repro/internal/pds"
)

// Record and protocol size limits, shared with kvserve's wire protocol
// (the record format is identical, so a single-shard store reads a
// pre-sharding kvserve image and vice versa).
const (
	// MaxKeyLen bounds keys (bytes); the length must fit the record
	// header's two bytes.
	MaxKeyLen = 4 << 10
	// MaxValueLen bounds values (bytes).
	MaxValueLen = 56 << 10
)

// Size-limit sentinels, matchable with errors.Is.
var (
	ErrKeyTooLong   = errors.New("shard: key too long")
	ErrValueTooLong = errors.New("shard: value too long")
)

// ErrHashCollision reports a write whose key hashes onto a slot already
// holding a DIFFERENT key's record. The tree is keyed by hash(key), so
// an unchecked put would silently destroy the colliding key's data; the
// store refuses instead. Matchable with errors.Is.
var ErrHashCollision = errors.New("shard: hash collision with a different stored key")

// ErrNotFound reports a lookup or delete of an absent key (an alias for
// the persistent data structures' sentinel, so both match errors.Is).
var ErrNotFound = pds.ErrNotFound

// HashKey maps a string key into the tree's key space (FNV-1a) — the
// same function kvserve partitions pipelined batches with, so a batch
// partition and the shard it routes to agree. The full key is stored
// with the value to detect collisions.
func HashKey(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// EncodeKV builds a plain string record without expiry — the classic
// SET record, kept as the string-typed convenience over EncodeRecord.
func EncodeKV(key, value string) ([]byte, error) {
	return EncodeRecord(Record{Key: key, Type: RecString, Value: []byte(value)})
}

// DecodeKV splits a string record back into key and value. Typed
// records that are not strings fail with ErrWrongType.
func DecodeKV(b []byte) (key, value string, err error) {
	rec, err := DecodeRecord(b)
	if err != nil {
		return "", "", err
	}
	if rec.Type != RecString {
		return "", "", ErrWrongType
	}
	return rec.Key, string(rec.Value), nil
}

// lookup reads one key on its shard through any Reader, resolving hash
// collisions against the stored full key. Records past their expiry
// deadline and records of non-string type answer ErrNotFound and
// ErrWrongType respectively, so the string API never leaks a hash
// payload or a logically-dead value.
func (st *Store) lookup(sh *Shard, r mtm.Reader, key string) (string, error) {
	raw, err := sh.Tree.Get(r, st.hash(key))
	if err != nil {
		return "", err
	}
	rec, err := DecodeRecord(raw)
	if err != nil {
		return "", err
	}
	if rec.Key != key {
		return "", ErrNotFound // hash collision with another key
	}
	if rec.Expired(st.now()) {
		return "", ErrNotFound
	}
	if rec.Type != RecString {
		return "", ErrWrongType
	}
	return string(rec.Value), nil
}

// checkCollision fails with ErrHashCollision when key's slot already
// holds a different key's record; an absent or same-key slot is fine.
func (st *Store) checkCollision(sh *Shard, r mtm.Reader, key string) error {
	h := st.hash(key)
	raw, err := sh.Tree.Get(r, h)
	if err == ErrNotFound {
		return nil
	}
	if err != nil {
		return err
	}
	k, derr := DecodeRecordKey(raw)
	if derr != nil {
		return derr
	}
	if k != key {
		return fmt.Errorf("%w: %q and stored %q share hash %#x", ErrHashCollision, key, k, h)
	}
	return nil
}

// checkedPut stores rec at key's slot after comparing the stored full
// key: overwriting the same key is the normal update, overwriting a
// colliding key would destroy its record, so that fails with
// ErrHashCollision and the transaction aborts untouched.
func (st *Store) checkedPut(sh *Shard, tx *mtm.Tx, key string, rec []byte) error {
	if err := st.checkCollision(sh, tx, key); err != nil {
		return err
	}
	return sh.Tree.Put(tx, st.hash(key), rec)
}

// Set durably stores key=value on its shard.
func (st *Store) Set(key, value string) error {
	rec, err := EncodeKV(key, value)
	if err != nil {
		return err
	}
	sh := st.shards[st.ShardOf(key)]
	return sh.PM.Atomic(func(tx *mtm.Tx) error {
		return st.checkedPut(sh, tx, key, rec)
	})
}

// Get reads key from a snapshot of its shard; ErrNotFound when absent.
func (st *Store) Get(key string) (string, error) {
	sh := st.shards[st.ShardOf(key)]
	var value string
	err := sh.PM.View(func(r *mtm.ReadTx) error {
		v, err := st.lookup(sh, r, key)
		if err != nil {
			return err
		}
		value = v
		return nil
	})
	return value, err
}

// Del durably deletes key from its shard; ErrNotFound when absent.
func (st *Store) Del(key string) error {
	sh := st.shards[st.ShardOf(key)]
	return sh.PM.Atomic(func(tx *mtm.Tx) error {
		// Compare the stored key before deleting: the tree is keyed by
		// hash, and deleting on a collision would destroy a different
		// key's record.
		raw, err := sh.Tree.Get(tx, st.hash(key))
		if err != nil {
			return err
		}
		k, err := DecodeRecordKey(raw)
		if err != nil {
			return err
		}
		if k != key {
			return ErrNotFound
		}
		return sh.Tree.Delete(tx, st.hash(key))
	})
}

// MGet reads every key, visiting the touched shards in ascending order
// with one snapshot View per shard: values[i] and present[i] answer
// keys[i], and all answers from the same shard reflect one committed
// snapshot. (Across shards the snapshots are independent — the store
// has no global clock to cut a cross-shard snapshot with.)
func (st *Store) MGet(keys []string) (values []string, present []bool, err error) {
	values = make([]string, len(keys))
	present = make([]bool, len(keys))
	parts := st.partition(keys)
	for k, idxs := range parts {
		if len(idxs) == 0 {
			continue
		}
		sh := st.shards[k]
		verr := sh.PM.View(func(r *mtm.ReadTx) error {
			for _, i := range idxs {
				v, err := st.lookup(sh, r, keys[i])
				if err == ErrNotFound {
					continue
				}
				if err != nil {
					return err
				}
				values[i], present[i] = v, true
			}
			return nil
		})
		if verr != nil {
			return nil, nil, verr
		}
	}
	return values, present, nil
}

// MSet durably stores every keys[i]=values[i] pair, atomically across
// all the shards it touches: after a crash at any instant, recovery
// leaves either every pair applied or none. Pairs on one shard commit in
// a single local transaction; pairs spanning shards run the cross-shard
// intent protocol (xstage.go).
func (st *Store) MSet(keys, values []string) error {
	if len(keys) != len(values) {
		return fmt.Errorf("shard: MSet with %d keys but %d values", len(keys), len(values))
	}
	recs := make([][]byte, len(keys))
	for i := range keys {
		rec, err := EncodeKV(keys[i], values[i])
		if err != nil {
			return err
		}
		recs[i] = rec
	}
	return st.MSetRecs(keys, recs)
}

// MSetRecs is MSet over pre-encoded records: keys[i] names the routing
// key of recs[i], which must be an EncodeRecord encoding of that same
// key (any type, any expiry). The RESP engine uses this to write typed
// records — hashes, TTL-carrying strings — through the same cross-shard
// atomicity protocol as plain MSET.
func (st *Store) MSetRecs(keys []string, recs [][]byte) error {
	if len(keys) != len(recs) {
		return fmt.Errorf("shard: MSetRecs with %d keys but %d records", len(keys), len(recs))
	}
	if len(keys) == 0 {
		return nil
	}
	parts := st.partition(keys)
	var mask uint64
	participants := 0
	for k, idxs := range parts {
		if len(idxs) > 0 {
			mask |= 1 << uint(k)
			participants++
		}
	}
	if participants == 1 {
		// All pairs land on one shard: one ordinary durable transaction.
		for k, idxs := range parts {
			if len(idxs) == 0 {
				continue
			}
			sh := st.shards[k]
			return sh.PM.Atomic(func(tx *mtm.Tx) error {
				for _, i := range idxs {
					if err := st.checkedPut(sh, tx, keys[i], recs[i]); err != nil {
						return err
					}
				}
				return nil
			})
		}
	}
	return st.msetCross(parts, mask, keys, recs)
}

// MDel durably deletes every named key, one local transaction per
// touched shard in ascending order, reporting how many were present.
// Missing keys (and hash collisions holding a different key's record)
// are skipped, not errors. Cross-shard MDEL is not atomic as a unit;
// each shard's deletions are.
func (st *Store) MDel(keys []string) (int, error) {
	parts := st.partition(keys)
	deleted := 0
	for k, idxs := range parts {
		if len(idxs) == 0 {
			continue
		}
		sh := st.shards[k]
		n := 0
		err := sh.PM.Atomic(func(tx *mtm.Tx) error {
			n = 0 // conflict retries rerun the closure
			for _, i := range idxs {
				raw, err := sh.Tree.Get(tx, st.hash(keys[i]))
				if err == ErrNotFound {
					continue
				}
				if err != nil {
					return err
				}
				sk, err := DecodeRecordKey(raw)
				if err != nil {
					return err
				}
				if sk != keys[i] {
					continue // hash collision with another key
				}
				if err := sh.Tree.Delete(tx, st.hash(keys[i])); err != nil {
					return err
				}
				n++
			}
			return nil
		})
		if err != nil {
			return deleted, err
		}
		deleted += n
	}
	return deleted, nil
}

// Count sums the per-shard key counts, one snapshot per shard.
func (st *Store) Count() (int, error) {
	total := 0
	for _, sh := range st.shards {
		n := 0
		err := sh.PM.View(func(r *mtm.ReadTx) error {
			n = sh.Tree.Len(r)
			return nil
		})
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// partition groups key indices by destination shard. The result is
// indexed by shard, so iterating it visits shards in ascending order —
// the deterministic order every multi-shard operation uses.
func (st *Store) partition(keys []string) [][]int {
	parts := make([][]int, len(st.shards))
	for i, key := range keys {
		k := st.ShardOf(key)
		parts[k] = append(parts[k], i)
	}
	return parts
}
