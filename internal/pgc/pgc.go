// Package pgc implements conservative mark-sweep garbage collection over
// a Mnemosyne persistent heap.
//
// The paper leaves leak prevention to "language-level techniques ...
// including conservative garbage collection" (§3.4) layered on the
// low-level interface; this package is that layer. It treats any 64-bit
// word in persistent memory whose value equals the start address of a
// live allocation as a reference — the Boehm-Weiser discipline, which is
// sound here because every reference the persistent data structures store
// is a block-start pmem.Addr in a word-aligned slot.
//
// Roots are all persistent words outside the heap's block areas: the
// static region's variable space and every mapped non-heap region. Marking
// then flows transitively through block contents. Unmarked allocated
// blocks are unreachable and are freed.
//
// The collector must run quiesced: no concurrent transactions,
// allocations or frees. It is the recovery tool for the crash windows the
// paper accepts (e.g. a transaction that allocated memory, made it
// reachable only from volatile state, and then crashed).
package pgc

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/pheap"
	"repro/internal/pmem"
	"repro/internal/region"
)

// Report summarizes a collection.
type Report struct {
	// Allocated is the number of live blocks before the sweep.
	Allocated int
	// Reachable is how many of them were marked.
	Reachable int
	// Freed is how many unreachable blocks were released.
	Freed int
	// FreedBytes is their total usable size.
	FreedBytes int64
	// ScannedWords counts the words examined during root and block
	// scanning.
	ScannedWords int64
	// Duration is the wall time of the collection.
	Duration time.Duration
}

// Collector runs collections over one heap.
type Collector struct {
	rt      *region.Runtime
	heap    *pheap.Heap
	mem     *region.Mem
	alloc   *pheap.Allocator
	scratch pmem.Addr

	// ExtraRoots are additional addresses treated as referenced, for
	// callers holding references in volatile memory across a collection.
	ExtraRoots []pmem.Addr

	// SkipRegions lists base addresses of regions to exclude from the
	// root scan. Transaction-log and raw-log regions belong here:
	// truncated logs still physically contain stale address words that
	// would conservatively retain garbage.
	SkipRegions []pmem.Addr
}

// New builds a collector. It allocates one persistent scratch pointer
// slot named "pgc.scratch" for sweep-time frees.
func New(rt *region.Runtime, heap *pheap.Heap) (*Collector, error) {
	scratch, _, err := rt.Static("pgc.scratch", 8)
	if err != nil {
		return nil, err
	}
	return &Collector{
		rt:      rt,
		heap:    heap,
		mem:     rt.NewMemory(),
		alloc:   heap.NewAllocator(),
		scratch: scratch,
	}, nil
}

// block is one live allocation, sorted by address for binary search.
type block struct {
	addr pmem.Addr
	size int64
	mark bool
}

// Collect performs one full mark-sweep collection.
func (c *Collector) Collect() (Report, error) {
	start := time.Now()
	var rep Report

	// Snapshot the allocated-block population.
	var blocks []block
	c.heap.ForEachAllocated(func(addr pmem.Addr, size int64) bool {
		blocks = append(blocks, block{addr: addr, size: size})
		return true
	})
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].addr < blocks[j].addr })
	rep.Allocated = len(blocks)

	find := func(v uint64) int {
		a := pmem.Addr(v)
		if !a.IsPersistent() {
			return -1
		}
		i := sort.Search(len(blocks), func(i int) bool { return blocks[i].addr >= a })
		if i < len(blocks) && blocks[i].addr == a {
			return i
		}
		return -1
	}

	// Mark from roots: every word of every non-heap region (including
	// the static region's payload), plus explicit extra roots.
	var work []int
	markWord := func(v uint64) {
		if i := find(v); i >= 0 && !blocks[i].mark {
			blocks[i].mark = true
			work = append(work, i)
		}
	}

	heapRegion := c.rt.Region(c.heap.Base())
	if heapRegion == nil {
		return rep, fmt.Errorf("pgc: heap base %v not mapped", c.heap.Base())
	}
	skip := func(r *region.Region) bool {
		for _, base := range c.SkipRegions {
			if r.Contains(base) {
				return true
			}
		}
		return false
	}
	for _, r := range c.rt.Regions() {
		if r == heapRegion || skip(r) {
			continue
		}
		if r.Flags&region.FlagSwappable != 0 {
			// Scanning would fault the whole region in; skip and
			// require explicit roots for swappable regions.
			continue
		}
		for off := int64(0); off < r.Len; off += 8 {
			markWord(c.mem.LoadU64(r.Addr.Add(off)))
			rep.ScannedWords++
		}
	}
	for _, a := range c.ExtraRoots {
		markWord(uint64(a))
		markWord(c.mem.LoadU64(a))
	}

	// Transitive closure through block contents.
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		b := blocks[i]
		for off := int64(0); off+8 <= b.size; off += 8 {
			markWord(c.mem.LoadU64(b.addr.Add(off)))
			rep.ScannedWords++
		}
	}

	// Sweep.
	for i := range blocks {
		if blocks[i].mark {
			rep.Reachable++
			continue
		}
		if err := c.alloc.FreeAddr(blocks[i].addr, c.scratch); err != nil {
			return rep, fmt.Errorf("pgc: freeing %v: %w", blocks[i].addr, err)
		}
		rep.Freed++
		rep.FreedBytes += blocks[i].size
	}
	rep.Duration = time.Since(start)
	return rep, nil
}
