package pgc

import (
	"testing"

	"repro/internal/mtm"
	"repro/internal/pds"
	"repro/internal/pheap"
	"repro/internal/pmem"
	"repro/internal/region"
	"repro/internal/scm"
)

type env struct {
	dev  *scm.Device
	rt   *region.Runtime
	heap *pheap.Heap
	tm   *mtm.TM
	th   *mtm.Thread
	gc   *Collector
}

func newEnv(t *testing.T) *env {
	t.Helper()
	dev, err := scm.Open(scm.Config{Size: 128 << 20, Mode: scm.DelayOff})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := region.Open(dev, region.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	heapPtr, _, err := rt.Static("gc.heap", 8)
	if err != nil {
		t.Fatal(err)
	}
	base, err := rt.PMapAt(heapPtr, 64<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := pheap.Format(rt, base, 64<<20, pheap.Config{Lanes: 2})
	if err != nil {
		t.Fatal(err)
	}
	tm, err := mtm.Open(rt, "gc", mtm.Config{Heap: heap, Slots: 4})
	if err != nil {
		t.Fatal(err)
	}
	th, err := tm.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	gc, err := New(rt, heap)
	if err != nil {
		t.Fatal(err)
	}
	gc.SkipRegions = []pmem.Addr{tm.RegionBase()}
	return &env{dev: dev, rt: rt, heap: heap, tm: tm, th: th, gc: gc}
}

func TestCollectKeepsReachable(t *testing.T) {
	e := newEnv(t)
	root, _, err := e.rt.Static("gc.tree", 8)
	if err != nil {
		t.Fatal(err)
	}
	tree := pds.NewBPTree(root)
	for i := uint64(0); i < 300; i++ {
		if err := e.th.Atomic(func(tx *mtm.Tx) error {
			return tree.Put(tx, i, []byte{byte(i), 2, 3})
		}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := e.gc.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Freed != 0 {
		t.Fatalf("GC freed %d reachable blocks", rep.Freed)
	}
	if rep.Reachable == 0 || rep.Allocated != rep.Reachable {
		t.Fatalf("report: %+v", rep)
	}
	// The tree must still be fully intact.
	if err := e.th.Atomic(func(tx *mtm.Tx) error {
		if err := tree.CheckInvariants(tx); err != nil {
			return err
		}
		for i := uint64(0); i < 300; i++ {
			if _, err := tree.Get(tx, i); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectFreesUnreachable(t *testing.T) {
	e := newEnv(t)
	// Create garbage: allocate blocks whose only pointers are then
	// durably overwritten (the leak the paper warns about when "the
	// only pointer to persistent data is stored in volatile memory").
	slots, _, err := e.rt.Static("gc.slots", 8*32)
	if err != nil {
		t.Fatal(err)
	}
	alloc := e.heap.NewAllocator()
	mem := e.rt.NewMemory()
	for i := int64(0); i < 32; i++ {
		if _, err := alloc.PMalloc(256, slots.Add(i*8)); err != nil {
			t.Fatal(err)
		}
	}
	// Keep the first 8 reachable; orphan the rest.
	for i := int64(8); i < 32; i++ {
		pmem.StoreDurable(mem, slots.Add(i*8), 0)
	}
	rep, err := e.gc.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Freed != 24 {
		t.Fatalf("freed %d, want 24 (report %+v)", rep.Freed, rep)
	}
	if rep.FreedBytes != 24*256 {
		t.Fatalf("freed bytes = %d", rep.FreedBytes)
	}
	// Survivors must still be allocated: free them normally.
	for i := int64(0); i < 8; i++ {
		if err := alloc.PFree(slots.Add(i * 8)); err != nil {
			t.Fatalf("survivor %d: %v", i, err)
		}
	}
}

func TestCollectFollowsChains(t *testing.T) {
	// A linked list reachable only through its head pointer: every node
	// must survive, because marking flows through block contents.
	e := newEnv(t)
	head, _, err := e.rt.Static("gc.head", 8)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	if err := e.th.Atomic(func(tx *mtm.Tx) error {
		prev := uint64(0)
		for i := 0; i < n; i++ {
			node, err := tx.Alloc(16)
			if err != nil {
				return err
			}
			tx.StoreU64(node, prev)
			tx.StoreU64(node.Add(8), uint64(i))
			prev = uint64(node)
		}
		tx.StoreU64(head, prev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := e.gc.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Freed != 0 {
		t.Fatalf("GC freed %d chained blocks", rep.Freed)
	}
	// Walk the list to prove it survived.
	mem := e.rt.NewMemory()
	count := 0
	for node := pmem.Addr(mem.LoadU64(head)); node != pmem.Nil; {
		count++
		node = pmem.Addr(mem.LoadU64(node))
	}
	if count != n {
		t.Fatalf("list length after GC = %d", count)
	}
}

func TestCollectAfterCrashReclaimsTxGarbage(t *testing.T) {
	// Abort-path garbage cannot leak (rollback frees), but blocks made
	// unreachable by committed deletes whose FreeBlock was superseded by
	// a crash can. Simulate: durably clear a structure's root, crash,
	// recover, collect.
	e := newEnv(t)
	root, _, err := e.rt.Static("gc.orphan", 8)
	if err != nil {
		t.Fatal(err)
	}
	tree := pds.NewBPTree(root)
	for i := uint64(0); i < 200; i++ {
		if err := e.th.Atomic(func(tx *mtm.Tx) error {
			return tree.Put(tx, i, []byte{1})
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Orphan the whole tree with a single durable root overwrite (a
	// shadow-update pattern whose old tree was never freed).
	mem := e.rt.NewMemory()
	pmem.StoreDurable(mem, root, 0)

	rep, err := e.gc.Collect()
	if err != nil {
		t.Fatal(err)
	}
	// The orphaned tree is ~14 B+tree nodes plus 200 value blocks.
	if rep.Freed < 200 {
		t.Fatalf("GC reclaimed only %d blocks from the orphaned tree", rep.Freed)
	}
	if rep.Reachable != rep.Allocated-rep.Freed {
		t.Fatalf("inconsistent report: %+v", rep)
	}
}

func TestExtraRootsRetain(t *testing.T) {
	e := newEnv(t)
	ptr, _, err := e.rt.Static("gc.vol", 8)
	if err != nil {
		t.Fatal(err)
	}
	alloc := e.heap.NewAllocator()
	block, err := alloc.PMalloc(64, ptr)
	if err != nil {
		t.Fatal(err)
	}
	// Clear the persistent pointer; hold the block only "volatilely".
	mem := e.rt.NewMemory()
	pmem.StoreDurable(mem, ptr, 0)

	e.gc.ExtraRoots = []pmem.Addr{block}
	rep, err := e.gc.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Freed != 0 {
		t.Fatalf("GC freed a block held via ExtraRoots (%+v)", rep)
	}
	e.gc.ExtraRoots = nil
	rep, err = e.gc.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Freed != 1 {
		t.Fatalf("GC did not free after root removal (%+v)", rep)
	}
}
