package tcabinet

import (
	"fmt"
	"testing"

	"repro/internal/telemetry"
)

// TestReadOpsZeroLeases asserts the converted store's pure-read entry
// points — Count and Session.Get — run on slot-free snapshot reads:
// across a burst of reads, zero transaction threads are leased and zero
// durability fences are issued.
func TestReadOpsZeroLeases(t *testing.T) {
	dev, _, s := newMnemosyne(t)
	sess, err := s.Session()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := sess.Put(uint64(i), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	leases0 := uint64(telemetry.Default.Snapshot()["mtm_thread_leases_total"])
	fences0 := dev.Snapshot().Fences

	for i := 0; i < 100; i++ {
		v, err := sess.Get(uint64(i))
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if want := fmt.Sprintf("val-%d", i); string(v) != want {
			t.Fatalf("Get %d = %q, want %q", i, v, want)
		}
	}
	if _, err := sess.Get(1 << 40); err != ErrNotFound {
		t.Fatalf("Get missing: %v, want ErrNotFound", err)
	}
	n, err := s.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("Count = %d, want 100", n)
	}

	if d := uint64(telemetry.Default.Snapshot()["mtm_thread_leases_total"]) - leases0; d != 0 {
		t.Errorf("read-only ops leased %d threads, want 0", d)
	}
	if d := dev.Snapshot().Fences - fences0; d != 0 {
		t.Errorf("read-only ops issued %d fences, want 0", d)
	}
}
