// Package tcabinet is a Tokyo-Cabinet-like key-value store (§6.2 of the
// paper): a B+ tree persisted in one of two ways.
//
//   - Msync mode reproduces stock Tokyo Cabinet: the tree lives in a
//     memory-mapped file on the PCM-disk and is made durable by calling
//     msync after updates. Synced after every update it is slow; synced
//     rarely it "loses unsaved data after a crash", and a crash during
//     the flush can tear multi-page updates (the inconsistency the paper
//     contrasts against Mnemosyne's transactions).
//
//   - Mnemosyne mode is the paper's conversion: the B+ tree is allocated
//     in a persistent region and every update runs in a durable memory
//     transaction. The file, msync calls and the application's own locks
//     are all removed; transactions provide concurrency control.
package tcabinet

import "errors"

// ErrNotFound reports a missing key.
var ErrNotFound = errors.New("tcabinet: key not found")

// Session is a per-worker handle to a store.
type Session interface {
	// Put inserts or replaces a record.
	Put(key uint64, val []byte) error
	// Delete removes a record.
	Delete(key uint64) error
	// Get copies a record's value.
	Get(key uint64) ([]byte, error)
}

// Store is a key-value store in either mode.
type Store interface {
	Name() string
	Session() (Session, error)
	// Count returns the number of records.
	Count() (int, error)
}
