package tcabinet

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/mtm"
	"repro/internal/pcmdisk"
	"repro/internal/pheap"
	"repro/internal/pmem"
	"repro/internal/region"
	"repro/internal/scm"
)

func newMsync(t *testing.T, syncEvery bool) (*pcmdisk.Disk, *MsyncStore) {
	t.Helper()
	disk := pcmdisk.Open(pcmdisk.Config{Size: 128 << 20})
	s, err := OpenMsync(disk, MsyncConfig{SyncEveryUpdate: syncEvery})
	if err != nil {
		t.Fatal(err)
	}
	return disk, s
}

func newMnemosyne(t *testing.T) (*scm.Device, *region.Runtime, *MnemosyneStore) {
	t.Helper()
	dev, err := scm.Open(scm.Config{Size: 256 << 20, Mode: scm.DelayOff})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := region.Open(dev, region.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	s, err := bootMnemosyne(rt)
	if err != nil {
		t.Fatal(err)
	}
	return dev, rt, s
}

func bootMnemosyne(rt *region.Runtime) (*MnemosyneStore, error) {
	heapPtr, _, err := rt.Static("tc.heap", 8)
	if err != nil {
		return nil, err
	}
	mem := rt.NewMemory()
	var heap *pheap.Heap
	if base := pmem.Addr(mem.LoadU64(heapPtr)); base == pmem.Nil {
		base, err := rt.PMapAt(heapPtr, 128<<20, 0)
		if err != nil {
			return nil, err
		}
		heap, err = pheap.Format(rt, base, 128<<20, pheap.Config{Lanes: 8})
		if err != nil {
			return nil, err
		}
	} else {
		heap, err = pheap.Open(rt, base)
		if err != nil {
			return nil, err
		}
	}
	tm, err := mtm.Open(rt, "tc", mtm.Config{Heap: heap})
	if err != nil {
		return nil, err
	}
	return OpenMnemosyne(rt, tm)
}

func stores(t *testing.T) map[string]Store {
	t.Helper()
	_, ms := newMsync(t, false)
	_, _, mn := newMnemosyne(t)
	return map[string]Store{"msync": ms, "mnemosyne": mn}
}

func TestPutGetDeleteBothModes(t *testing.T) {
	for name, st := range stores(t) {
		t.Run(name, func(t *testing.T) {
			sess, err := st.Session()
			if err != nil {
				t.Fatal(err)
			}
			for i := uint64(0); i < 500; i++ {
				if err := sess.Put(i, []byte(fmt.Sprintf("val-%d", i))); err != nil {
					t.Fatalf("put %d: %v", i, err)
				}
			}
			if n, _ := st.Count(); n != 500 {
				t.Fatalf("count = %d", n)
			}
			for i := uint64(0); i < 500; i++ {
				v, err := sess.Get(i)
				if err != nil || string(v) != fmt.Sprintf("val-%d", i) {
					t.Fatalf("get %d = %q, %v", i, v, err)
				}
			}
			for i := uint64(0); i < 500; i += 2 {
				if err := sess.Delete(i); err != nil {
					t.Fatalf("delete %d: %v", i, err)
				}
			}
			if n, _ := st.Count(); n != 250 {
				t.Fatalf("count after deletes = %d", n)
			}
			if _, err := sess.Get(0); err != ErrNotFound {
				t.Fatalf("deleted key found: %v", err)
			}
			if err := sess.Delete(0); err != ErrNotFound {
				t.Fatalf("double delete: %v", err)
			}
		})
	}
}

func TestReplaceValue(t *testing.T) {
	for name, st := range stores(t) {
		t.Run(name, func(t *testing.T) {
			sess, _ := st.Session()
			if err := sess.Put(1, []byte("aa")); err != nil {
				t.Fatal(err)
			}
			big := bytes.Repeat([]byte("z"), 1024)
			if err := sess.Put(1, big); err != nil {
				t.Fatal(err)
			}
			v, err := sess.Get(1)
			if err != nil || !bytes.Equal(v, big) {
				t.Fatalf("replace: %d bytes, %v", len(v), err)
			}
			if n, _ := st.Count(); n != 1 {
				t.Fatalf("count = %d", n)
			}
		})
	}
}

func TestMsyncSurvivesCrashWhenSynced(t *testing.T) {
	disk, s := newMsync(t, true)
	sess, _ := s.Session()
	for i := uint64(0); i < 300; i++ {
		if err := sess.Put(i, []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
	}
	disk.Crash(-1)
	if err := s.Reload(); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 300; i++ {
		v, err := sess.Get(i)
		if err != nil || v[0] != byte(i) {
			t.Fatalf("key %d after crash: %v %v", i, v, err)
		}
	}
}

func TestMsyncRareSyncLosesData(t *testing.T) {
	disk, s := newMsync(t, false) // stock Tokyo Cabinet: rare syncs
	sess, _ := s.Session()
	for i := uint64(0); i < 100; i++ {
		if err := sess.Put(i, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	s.Msync()
	for i := uint64(100); i < 200; i++ {
		if err := sess.Put(i, []byte("y")); err != nil {
			t.Fatal(err)
		}
	}
	disk.Crash(-1)
	if err := s.Reload(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Get(50); err != nil {
		t.Fatalf("synced key lost: %v", err)
	}
	if _, err := sess.Get(150); err != ErrNotFound {
		t.Fatalf("unsynced key survived: %v", err)
	}
}

func TestMsyncTornWritesCanCorrupt(t *testing.T) {
	// §6.2: the msync version "can suffer from torn writes if the
	// system fails while flushing pages". Crash in the middle of a
	// multi-page msync (random subset of blocks) and look for either
	// torn state (Verify fails) or losses; at least one seed must show
	// damage relative to the unsynced updates.
	damaged := false
	for seed := int64(0); seed < 20 && !damaged; seed++ {
		disk, s := newMsync(t, false)
		sess, _ := s.Session()
		val := bytes.Repeat([]byte("v"), 1024)
		for i := uint64(0); i < 2000; i++ {
			if err := sess.Put(i, val); err != nil {
				t.Fatal(err)
			}
		}
		// Many dirty pages; crash drops a random half mid-"msync".
		disk.Crash(seed)
		if err := s.Reload(); err != nil {
			t.Fatal(err)
		}
		if err := s.Verify(); err != nil {
			damaged = true
			break
		}
		for i := uint64(0); i < 2000; i++ {
			if _, err := sess.Get(i); err != nil {
				damaged = true
				break
			}
		}
	}
	if !damaged {
		t.Fatal("no seed produced torn/lost state; crash model too forgiving")
	}
}

func TestMnemosyneSurvivesCrashAlways(t *testing.T) {
	dev, rt, s := newMnemosyne(t)
	sess, err := s.Session()
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte("d"), 256)
	for i := uint64(0); i < 400; i++ {
		if err := sess.Put(i, val); err != nil {
			t.Fatal(err)
		}
	}
	dev.Crash(scm.NewRandomPolicy(9))
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	rt2, err := region.Open(dev, region.Config{Dir: rt.Manager().Dir()})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := bootMnemosyne(rt2)
	if err != nil {
		t.Fatal(err)
	}
	sess2, err := s2.Session()
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 400; i++ {
		v, err := sess2.Get(i)
		if err != nil || !bytes.Equal(v, val) {
			t.Fatalf("key %d after crash: %v", i, err)
		}
	}
}

func TestConcurrentMnemosyneSessions(t *testing.T) {
	_, _, s := newMnemosyne(t)
	const workers = 4
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			sess, err := s.Session()
			if err != nil {
				done <- err
				return
			}
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 400; i++ {
				k := uint64(w)<<32 | uint64(rng.Intn(200))
				if rng.Intn(4) == 0 {
					if err := sess.Delete(k); err != nil && err != ErrNotFound {
						done <- err
						return
					}
				} else if err := sess.Put(k, []byte{byte(w)}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestMsyncInsertDeleteSteadyState(t *testing.T) {
	// The Table 4 workload: inserts and deletes at equal rates.
	_, s := newMsync(t, true)
	sess, _ := s.Session()
	val := bytes.Repeat([]byte("w"), 64)
	for i := uint64(0); i < 2000; i++ {
		if err := sess.Put(i, val); err != nil {
			t.Fatal(err)
		}
		if i >= 100 {
			if err := sess.Delete(i - 100); err != nil {
				t.Fatal(err)
			}
		}
	}
	if n, _ := s.Count(); n != 100 {
		t.Fatalf("steady-state count = %d", n)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}
