package tcabinet

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/pcmdisk"
)

// Msync-mode store: a B+ tree in a byte image mapped onto a PCM-disk
// file. Every mutation dirties whole 4 KB pages; Msync writes the dirty
// pages back and fsyncs, which is exactly the cost profile of msync on a
// memory-mapped file.
//
// File image layout:
//
//	page 0:                  header (magic, root, nextNode, heapOff, count)
//	pages 1..nodePages:      tree nodes, one per page
//	heap area (after nodes): appended values, [len u32][bytes]
//
// Node page layout: meta(8: nkeys<<1|leaf) nextLeaf(8) keys[order]
// slots[order+1] — slots hold child node indexes in inner nodes and heap
// offsets in leaves.
const (
	msPage  = pcmdisk.BlockSize
	msOrder = 200

	msMagic = 0x4d4e544342543031 // "MNTCBT01"

	mhMagicOff = 0
	mhRootOff  = 8
	mhNextOff  = 16
	mhHeapOff  = 24
	mhCountOff = 32

	mnMetaOff = 0
	mnLeafOff = 8
	mnKeysOff = 16
	mnSlotOff = mnKeysOff + 8*msOrder
)

// MsyncConfig sizes the store.
type MsyncConfig struct {
	// NodePages bounds the tree size (default 4096 nodes).
	NodePages int
	// HeapBytes bounds appended values (default 32 MB).
	HeapBytes int64
	// SyncEveryUpdate selects durability after every update, the
	// configuration Table 4 measures. When false the caller must invoke
	// Msync explicitly (stock Tokyo Cabinet's rare syncs).
	SyncEveryUpdate bool
}

func (c *MsyncConfig) fill() {
	if c.NodePages == 0 {
		c.NodePages = 4096
	}
	if c.HeapBytes == 0 {
		c.HeapBytes = 32 << 20
	}
}

// MsyncStore is the msync-mode store. A single mutex serializes updates,
// like the locks the paper removed from Tokyo Cabinet.
type MsyncStore struct {
	cfg  MsyncConfig
	file *pcmdisk.File

	mu    sync.Mutex
	data  []byte
	dirty map[int64]bool

	heapBase int64
}

// OpenMsync creates or reopens an msync-mode store on the disk.
func OpenMsync(disk *pcmdisk.Disk, cfg MsyncConfig) (*MsyncStore, error) {
	cfg.fill()
	size := int64(cfg.NodePages+1)*msPage + cfg.HeapBytes
	f, err := disk.CreateFile("tcabinet.tcb", size)
	if err != nil {
		return nil, err
	}
	s := &MsyncStore{
		cfg:      cfg,
		file:     f,
		data:     make([]byte, size),
		dirty:    make(map[int64]bool),
		heapBase: int64(cfg.NodePages+1) * msPage,
	}
	if err := f.ReadAt(s.data, 0); err != nil {
		return nil, err
	}
	if s.u64(mhMagicOff) != msMagic {
		// Fresh store.
		s.putU64(mhMagicOff, msMagic)
		s.putU64(mhRootOff, 0)
		s.putU64(mhNextOff, 1)
		s.putU64(mhHeapOff, uint64(s.heapBase))
		s.putU64(mhCountOff, 0)
		s.Msync()
	}
	return s, nil
}

// Name implements Store.
func (s *MsyncStore) Name() string { return "tokyocabinet-msync" }

// Session implements Store; all sessions share the global lock.
func (s *MsyncStore) Session() (Session, error) { return s, nil }

// Count implements Store.
func (s *MsyncStore) Count() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.u64(mhCountOff)), nil
}

// Byte-image accessors; every write dirties its page.
func (s *MsyncStore) u64(off int64) uint64 {
	return binary.LittleEndian.Uint64(s.data[off:])
}

func (s *MsyncStore) putU64(off int64, v uint64) {
	binary.LittleEndian.PutUint64(s.data[off:], v)
	s.dirty[off&^(msPage-1)] = true
}

func (s *MsyncStore) putBytes(off int64, b []byte) {
	copy(s.data[off:], b)
	first := off &^ (msPage - 1)
	last := (off + int64(len(b)) - 1) &^ (msPage - 1)
	for p := first; p <= last; p += msPage {
		s.dirty[p] = true
	}
}

// Msync writes all dirty pages back to the file and fsyncs — the paper's
// msync call. Exposed for the rare-sync configuration.
func (s *MsyncStore) Msync() {
	s.mu.Lock()
	pages := make([]int64, 0, len(s.dirty))
	for p := range s.dirty {
		pages = append(pages, p)
	}
	s.dirty = make(map[int64]bool)
	for _, p := range pages {
		if err := s.file.WriteAt(s.data[p:p+msPage], p); err != nil {
			panic(err)
		}
	}
	s.mu.Unlock()
	s.file.Sync()
}

// Reload re-reads the file image after a crash (remounting the mapping).
func (s *MsyncStore) Reload() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dirty = make(map[int64]bool)
	return s.file.ReadAt(s.data, 0)
}

// Node accessors. Node index n lives at page n (index 0 = nil).
func (s *MsyncStore) node(n uint64) int64 { return int64(n) * msPage }

func (s *MsyncStore) meta(n uint64) (nkeys int, leaf bool) {
	m := s.u64(s.node(n) + mnMetaOff)
	return int(m >> 1), m&1 != 0
}

func (s *MsyncStore) setMeta(n uint64, nkeys int, leaf bool) {
	m := uint64(nkeys) << 1
	if leaf {
		m |= 1
	}
	s.putU64(s.node(n)+mnMetaOff, m)
}

func (s *MsyncStore) key(n uint64, i int) uint64 { return s.u64(s.node(n) + mnKeysOff + int64(i)*8) }
func (s *MsyncStore) setKey(n uint64, i int, k uint64) {
	s.putU64(s.node(n)+mnKeysOff+int64(i)*8, k)
}
func (s *MsyncStore) slot(n uint64, i int) uint64 { return s.u64(s.node(n) + mnSlotOff + int64(i)*8) }
func (s *MsyncStore) setSlot(n uint64, i int, v uint64) {
	s.putU64(s.node(n)+mnSlotOff+int64(i)*8, v)
}

func (s *MsyncStore) newNode(leaf bool) (uint64, error) {
	n := s.u64(mhNextOff)
	if n > uint64(s.cfg.NodePages) {
		return 0, fmt.Errorf("tcabinet: node space exhausted (%d pages)", s.cfg.NodePages)
	}
	s.putU64(mhNextOff, n+1)
	s.setMeta(n, 0, leaf)
	s.putU64(s.node(n)+mnLeafOff, 0)
	return n, nil
}

// appendValue copies val into the heap area, returning its offset.
func (s *MsyncStore) appendValue(val []byte) (uint64, error) {
	off := int64(s.u64(mhHeapOff))
	need := int64(4 + len(val))
	if off+need > int64(len(s.data)) {
		return 0, fmt.Errorf("tcabinet: value heap exhausted")
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(val)))
	s.putBytes(off, hdr[:])
	s.putBytes(off+4, val)
	s.putU64(mhHeapOff, uint64(off+need))
	return uint64(off), nil
}

func (s *MsyncStore) readValue(off uint64) []byte {
	n := binary.LittleEndian.Uint32(s.data[off:])
	out := make([]byte, n)
	copy(out, s.data[off+4:])
	return out
}

func (s *MsyncStore) search(n uint64, nkeys int, k uint64) int {
	lo, hi := 0, nkeys
	for lo < hi {
		mid := (lo + hi) / 2
		if s.key(n, mid) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Put implements Session.
func (s *MsyncStore) Put(key uint64, val []byte) error {
	s.mu.Lock()
	err := s.put(key, val)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if s.cfg.SyncEveryUpdate {
		s.Msync()
	}
	return nil
}

func (s *MsyncStore) put(key uint64, val []byte) error {
	root := s.u64(mhRootOff)
	if root == 0 {
		leaf, err := s.newNode(true)
		if err != nil {
			return err
		}
		voff, err := s.appendValue(val)
		if err != nil {
			return err
		}
		s.setKey(leaf, 0, key)
		s.setSlot(leaf, 0, voff)
		s.setMeta(leaf, 1, true)
		s.putU64(mhRootOff, leaf)
		s.putU64(mhCountOff, 1)
		return nil
	}
	midKey, sib, added, err := s.insert(root, key, val)
	if err != nil {
		return err
	}
	if sib != 0 {
		newRoot, err := s.newNode(false)
		if err != nil {
			return err
		}
		s.setKey(newRoot, 0, midKey)
		s.setSlot(newRoot, 0, root)
		s.setSlot(newRoot, 1, sib)
		s.setMeta(newRoot, 1, false)
		s.putU64(mhRootOff, newRoot)
	}
	if added {
		s.putU64(mhCountOff, s.u64(mhCountOff)+1)
	}
	return nil
}

func (s *MsyncStore) insert(n uint64, key uint64, val []byte) (uint64, uint64, bool, error) {
	nkeys, leaf := s.meta(n)
	if leaf {
		i := s.search(n, nkeys, key)
		if i < nkeys && s.key(n, i) == key {
			voff, err := s.appendValue(val)
			if err != nil {
				return 0, 0, false, err
			}
			s.setSlot(n, i, voff)
			return 0, 0, false, nil
		}
		voff, err := s.appendValue(val)
		if err != nil {
			return 0, 0, false, err
		}
		for j := nkeys; j > i; j-- {
			s.setKey(n, j, s.key(n, j-1))
			s.setSlot(n, j, s.slot(n, j-1))
		}
		s.setKey(n, i, key)
		s.setSlot(n, i, voff)
		nkeys++
		s.setMeta(n, nkeys, true)
		if nkeys < msOrder {
			return 0, 0, true, nil
		}
		mid, sib, err := s.splitLeaf(n, nkeys)
		return mid, sib, true, err
	}

	i := s.search(n, nkeys, key)
	if i < nkeys && s.key(n, i) == key {
		i++
	}
	midKey, sib, added, err := s.insert(s.slot(n, i), key, val)
	if err != nil || sib == 0 {
		return 0, 0, added, err
	}
	for j := nkeys; j > i; j-- {
		s.setKey(n, j, s.key(n, j-1))
		s.setSlot(n, j+1, s.slot(n, j))
	}
	s.setKey(n, i, midKey)
	s.setSlot(n, i+1, sib)
	nkeys++
	s.setMeta(n, nkeys, false)
	if nkeys < msOrder {
		return 0, 0, added, nil
	}
	mid, sib2, err := s.splitInner(n, nkeys)
	return mid, sib2, added, err
}

func (s *MsyncStore) splitLeaf(n uint64, nkeys int) (uint64, uint64, error) {
	sib, err := s.newNode(true)
	if err != nil {
		return 0, 0, err
	}
	half := nkeys / 2
	for j := half; j < nkeys; j++ {
		s.setKey(sib, j-half, s.key(n, j))
		s.setSlot(sib, j-half, s.slot(n, j))
	}
	s.setMeta(sib, nkeys-half, true)
	s.putU64(s.node(sib)+mnLeafOff, s.u64(s.node(n)+mnLeafOff))
	s.putU64(s.node(n)+mnLeafOff, sib)
	s.setMeta(n, half, true)
	return s.key(sib, 0), sib, nil
}

func (s *MsyncStore) splitInner(n uint64, nkeys int) (uint64, uint64, error) {
	sib, err := s.newNode(false)
	if err != nil {
		return 0, 0, err
	}
	half := nkeys / 2
	midKey := s.key(n, half)
	for j := half + 1; j < nkeys; j++ {
		s.setKey(sib, j-half-1, s.key(n, j))
		s.setSlot(sib, j-half-1, s.slot(n, j))
	}
	s.setSlot(sib, nkeys-half-1, s.slot(n, nkeys))
	s.setMeta(sib, nkeys-half-1, false)
	s.setMeta(n, half, false)
	return midKey, sib, nil
}

// Get implements Session.
func (s *MsyncStore) Get(key uint64) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.u64(mhRootOff)
	if n == 0 {
		return nil, ErrNotFound
	}
	for {
		nkeys, leaf := s.meta(n)
		i := s.search(n, nkeys, key)
		if leaf {
			if i < nkeys && s.key(n, i) == key {
				return s.readValue(s.slot(n, i)), nil
			}
			return nil, ErrNotFound
		}
		if i < nkeys && s.key(n, i) == key {
			i++
		}
		n = s.slot(n, i)
	}
}

// Delete implements Session (lazy, like the Mnemosyne-mode tree).
func (s *MsyncStore) Delete(key uint64) error {
	s.mu.Lock()
	err := s.delete(key)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if s.cfg.SyncEveryUpdate {
		s.Msync()
	}
	return nil
}

func (s *MsyncStore) delete(key uint64) error {
	n := s.u64(mhRootOff)
	if n == 0 {
		return ErrNotFound
	}
	for {
		nkeys, leaf := s.meta(n)
		i := s.search(n, nkeys, key)
		if leaf {
			if i >= nkeys || s.key(n, i) != key {
				return ErrNotFound
			}
			for j := i; j < nkeys-1; j++ {
				s.setKey(n, j, s.key(n, j+1))
				s.setSlot(n, j, s.slot(n, j+1))
			}
			s.setMeta(n, nkeys-1, true)
			s.putU64(mhCountOff, s.u64(mhCountOff)-1)
			return nil
		}
		if i < nkeys && s.key(n, i) == key {
			i++
		}
		n = s.slot(n, i)
	}
}

// Verify walks the tree checking structural sanity; it reports the
// corruption torn msync writes can cause after a crash.
func (s *MsyncStore) Verify() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	root := s.u64(mhRootOff)
	if root == 0 {
		return nil
	}
	next := s.u64(mhNextOff)
	var walk func(n uint64, depth int) error
	walk = func(n uint64, depth int) error {
		if n == 0 || n >= next || depth > 16 {
			return fmt.Errorf("tcabinet: bad node reference %d at depth %d", n, depth)
		}
		nkeys, leaf := s.meta(n)
		if nkeys < 0 || nkeys > msOrder {
			return fmt.Errorf("tcabinet: node %d has %d keys", n, nkeys)
		}
		for i := 1; i < nkeys; i++ {
			if s.key(n, i) <= s.key(n, i-1) {
				return fmt.Errorf("tcabinet: node %d keys out of order", n)
			}
		}
		if leaf {
			for i := 0; i < nkeys; i++ {
				off := s.slot(n, i)
				if off < uint64(s.heapBase) || off >= s.u64(mhHeapOff) {
					return fmt.Errorf("tcabinet: leaf %d slot %d points outside heap", n, i)
				}
			}
			return nil
		}
		for i := 0; i <= nkeys; i++ {
			if err := walk(s.slot(n, i), depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(root, 0)
}
