package tcabinet

import (
	"repro/internal/mtm"
	"repro/internal/pds"
	"repro/internal/region"
)

// MnemosyneStore is the paper's conversion: the B+ tree lives in a
// persistent region and every update is a durable memory transaction.
// "We also removed the locks used for synchronizing concurrent accesses
// to the tree and relied on transactions for concurrency control" (§6.2).
type MnemosyneStore struct {
	tm   *mtm.TM
	tree *pds.BPTree
}

// OpenMnemosyne opens the store over a region runtime; the TM must have a
// heap attached.
func OpenMnemosyne(rt *region.Runtime, tm *mtm.TM) (*MnemosyneStore, error) {
	root, _, err := rt.Static("tcabinet.root", 8)
	if err != nil {
		return nil, err
	}
	return &MnemosyneStore{tm: tm, tree: pds.NewBPTree(root)}, nil
}

// Name implements Store.
func (s *MnemosyneStore) Name() string { return "tokyocabinet-mnemosyne" }

// Session implements Store: each worker gets its own transaction thread.
// The session's Close method returns the thread's log slot for reuse.
func (s *MnemosyneStore) Session() (Session, error) {
	th, err := s.tm.NewThread()
	if err != nil {
		return nil, err
	}
	return &mnSession{s: s, th: th}, nil
}

// Count implements Store on a slot-free snapshot read: no thread, no log
// slot, no fence, so counting never contends with writers for slots.
func (s *MnemosyneStore) Count() (int, error) {
	n := 0
	err := s.tm.View(func(r *mtm.ReadTx) error {
		n = s.tree.Len(r)
		return nil
	})
	return n, err
}

type mnSession struct {
	s  *MnemosyneStore
	th *mtm.Thread
}

// Close releases the session's transaction thread back to the slot pool.
// Callers holding a Session interface can reach it via type assertion.
func (ss *mnSession) Close() error { return ss.th.Close() }

func (ss *mnSession) Put(key uint64, val []byte) error {
	return ss.th.Atomic(func(tx *mtm.Tx) error {
		return ss.s.tree.Put(tx, key, val)
	})
}

func (ss *mnSession) Delete(key uint64) error {
	err := ss.th.Atomic(func(tx *mtm.Tx) error {
		return ss.s.tree.Delete(tx, key)
	})
	if err == pds.ErrNotFound {
		return ErrNotFound
	}
	return err
}

// Get reads through a slot-free snapshot: the session's write thread is
// not involved, so concurrent readers never serialize on it.
func (ss *mnSession) Get(key uint64) ([]byte, error) {
	var out []byte
	err := ss.s.tm.View(func(r *mtm.ReadTx) error {
		v, err := ss.s.tree.Get(r, key)
		if err != nil {
			return err
		}
		out = v
		return nil
	})
	if err == pds.ErrNotFound {
		return nil, ErrNotFound
	}
	return out, err
}
