package pds

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/mtm"
	"repro/internal/pds/mod"
	"repro/internal/pheap"
	"repro/internal/pmem"
	"repro/internal/region"
)

// This file is the redesigned front door of the package. The historical
// surface grew one bespoke constructor per structure (CreateHashTable,
// NewBPTree, NewAVL, NewRBTree, CreateQueue), all hard-wired to the mtm
// transaction backend. The structures now sit behind three small
// interfaces — Map, OrderedMap, Queue — and a Backend selector:
//
//	BackendMTM  in-place updates inside mtm transactions (undo/redo
//	            logged, ≥2 fences per commit, multi-structure atomicity)
//	BackendMOD  shadow updates in internal/pds/mod (copy-on-write paths,
//	            exactly 1 fence per mutation, per-structure atomicity)
//
// The old constructors remain as thin deprecated wrappers; new code and
// the servers/bench kernels go through NewMap / NewOrderedMap / NewQueue.
//
// The tx / r parameters of the interface methods belong to the mtm
// backend. The MOD backend is self-committing and ignores them, with one
// exception: a reader obtained from View (a *mod.Snap) scopes all reads
// in the callback to one pinned snapshot. Callers that hold no
// transaction pass nil.

// Backend selects a persistence strategy for the pds structures.
type Backend int

const (
	// BackendMTM is the transactional backend: mutations run inside an
	// mtm transaction supplied by the caller and commit with its log.
	BackendMTM Backend = iota
	// BackendMOD is the shadow-update backend: mutations self-commit
	// with a single fence and a root-pointer swap (internal/pds/mod).
	BackendMOD
)

// String names the backend as accepted by ParseBackend.
func (b Backend) String() string {
	switch b {
	case BackendMTM:
		return "mtm"
	case BackendMOD:
		return "mod"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// ParseBackend parses a backend name ("mtm" or "mod"), for flags.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "mtm", "":
		return BackendMTM, nil
	case "mod":
		return BackendMOD, nil
	default:
		return 0, fmt.Errorf("pds: unknown backend %q (want mtm or mod)", s)
	}
}

// Env bundles the runtime handles a backend may need. MTM structures use
// TM (and optionally Thread); MOD structures use RT and Heap; the ring
// queue uses Mem. Unused fields may stay nil.
type Env struct {
	TM     *mtm.TM
	Thread *mtm.Thread // optional: Do runs on it instead of leasing
	RT     *region.Runtime
	Heap   *pheap.Heap
	Mem    pmem.Memory // optional: defaults to RT.NewMemory()
}

func (e Env) memory() pmem.Memory {
	if e.Mem != nil {
		return e.Mem
	}
	return e.RT.NewMemory()
}

// Map is an unordered persistent map keyed by uint64.
type Map interface {
	Put(tx *mtm.Tx, key uint64, val []byte) error
	Get(r mtm.Reader, key uint64) ([]byte, error)
	Delete(tx *mtm.Tx, key uint64) error
	Contains(r mtm.Reader, key uint64) bool
	Scan(r mtm.Reader, fn func(key uint64, val []byte) bool)
	Len(r mtm.Reader) int64
	// Do runs fn with a transaction when the backend needs one (MTM),
	// or with a nil tx for the self-committing MOD backend.
	Do(fn func(tx *mtm.Tx) error) error
	// View runs fn against a consistent read-only view: an mtm read
	// transaction, or a pinned MOD snapshot.
	View(fn func(r mtm.Reader) error) error
	Backend() Backend
}

// OrderedMap is a persistent map keyed by uint64 with in-order range
// scans from a start key.
type OrderedMap interface {
	Put(tx *mtm.Tx, key uint64, val []byte) error
	Get(r mtm.Reader, key uint64) ([]byte, error)
	Delete(tx *mtm.Tx, key uint64) error
	Contains(r mtm.Reader, key uint64) bool
	Scan(r mtm.Reader, from uint64, fn func(key uint64, val []byte) bool)
	Len(r mtm.Reader) int
	Do(fn func(tx *mtm.Tx) error) error
	View(fn func(r mtm.Reader) error) error
	Backend() Backend
}

// Queue is a persistent FIFO queue of byte payloads.
type Queue interface {
	Enqueue(val []byte) error
	Dequeue() ([]byte, error)
	Peek() ([]byte, error)
	Len() int
}

// NewMap returns a Map over the root cell rootPtr. For BackendMTM the
// map is a bucketed hash table: nbuckets sizes a table created on first
// use (an existing table is reopened regardless of nbuckets). For
// BackendMOD nbuckets is ignored.
func NewMap(b Backend, env Env, rootPtr pmem.Addr, nbuckets int) (Map, error) {
	switch b {
	case BackendMTM:
		e := &mtmEnv{env: env}
		var h *HashTable
		err := e.do(func(tx *mtm.Tx) error {
			var err error
			if tx.LoadU64(rootPtr) == 0 {
				return nil
			}
			h, err = OpenHashTable(tx, rootPtr)
			return err
		})
		if err != nil {
			return nil, err
		}
		if h == nil {
			if err := e.withThread(func(th *mtm.Thread) error {
				var err error
				h, err = CreateHashTable(th, rootPtr, nbuckets)
				return err
			}); err != nil {
				return nil, err
			}
		}
		return &mtmMap{mtmEnv: e, h: h}, nil
	case BackendMOD:
		return &modMap{m: mod.NewMap(env.RT, env.Heap, rootPtr)}, nil
	default:
		return nil, fmt.Errorf("pds: unknown backend %v", b)
	}
}

// NewOrderedMap returns an OrderedMap over the root cell rootPtr: a
// transactional B+ tree for BackendMTM, a shadow-updated treap for
// BackendMOD. A zero root cell is an empty map under either backend.
func NewOrderedMap(b Backend, env Env, rootPtr pmem.Addr) (OrderedMap, error) {
	switch b {
	case BackendMTM:
		return &mtmOrdered{mtmEnv: &mtmEnv{env: env}, t: NewBPTree(rootPtr)}, nil
	case BackendMOD:
		return &modOrdered{m: mod.NewMap(env.RT, env.Heap, rootPtr)}, nil
	default:
		return nil, fmt.Errorf("pds: unknown backend %v", b)
	}
}

// NewQueue returns a Queue at base. For BackendMTM this is the
// fixed-geometry persistent ring (capacity cells of cellSize bytes,
// formatted on first use); for BackendMOD it is the unbounded
// shadow-updated two-list queue rooted at the cell base, and the
// geometry arguments are ignored.
func NewQueue(b Backend, env Env, base pmem.Addr, capacity int, cellSize int64) (Queue, error) {
	switch b {
	case BackendMTM:
		mem := env.memory()
		q, err := OpenQueue(mem, base)
		if err != nil {
			q, err = CreateQueue(mem, base, capacity, cellSize)
			if err != nil {
				return nil, err
			}
		}
		return &ringAdapter{q: q, mem: mem}, nil
	case BackendMOD:
		return &modQueue{q: mod.NewQueue(env.RT, env.Heap, base)}, nil
	default:
		return nil, fmt.Errorf("pds: unknown backend %v", b)
	}
}

// mtmEnv supplies transactions for the MTM adapters.
type mtmEnv struct{ env Env }

func (e *mtmEnv) withThread(fn func(th *mtm.Thread) error) error {
	if e.env.Thread != nil {
		return fn(e.env.Thread)
	}
	th, err := e.env.TM.Lease(context.Background())
	if err != nil {
		return err
	}
	defer th.Close()
	return fn(th)
}

func (e *mtmEnv) do(fn func(tx *mtm.Tx) error) error {
	return e.withThread(func(th *mtm.Thread) error { return th.Atomic(fn) })
}

func (e *mtmEnv) view(fn func(r mtm.Reader) error) error {
	return e.env.TM.View(func(r *mtm.ReadTx) error { return fn(r) })
}

// mtmMap adapts *HashTable to Map.
type mtmMap struct {
	*mtmEnv
	h *HashTable
}

func (m *mtmMap) Put(tx *mtm.Tx, key uint64, val []byte) error { return m.h.Put(tx, key, val) }
func (m *mtmMap) Get(r mtm.Reader, key uint64) ([]byte, error) { return m.h.Get(r, key) }
func (m *mtmMap) Delete(tx *mtm.Tx, key uint64) error          { return m.h.Delete(tx, key) }
func (m *mtmMap) Contains(r mtm.Reader, key uint64) bool       { return m.h.Contains(r, key) }
func (m *mtmMap) Scan(r mtm.Reader, fn func(key uint64, val []byte) bool) {
	m.h.Scan(r, fn)
}
func (m *mtmMap) Len(r mtm.Reader) int64                 { return m.h.Len(r) }
func (m *mtmMap) Do(fn func(tx *mtm.Tx) error) error     { return m.do(fn) }
func (m *mtmMap) View(fn func(r mtm.Reader) error) error { return m.view(fn) }
func (m *mtmMap) Backend() Backend                       { return BackendMTM }

// mtmOrdered adapts *BPTree to OrderedMap.
type mtmOrdered struct {
	*mtmEnv
	t *BPTree
}

func (m *mtmOrdered) Put(tx *mtm.Tx, key uint64, val []byte) error { return m.t.Put(tx, key, val) }
func (m *mtmOrdered) Get(r mtm.Reader, key uint64) ([]byte, error) { return m.t.Get(r, key) }
func (m *mtmOrdered) Delete(tx *mtm.Tx, key uint64) error          { return m.t.Delete(tx, key) }
func (m *mtmOrdered) Contains(r mtm.Reader, key uint64) bool       { return m.t.Contains(r, key) }
func (m *mtmOrdered) Scan(r mtm.Reader, from uint64, fn func(key uint64, val []byte) bool) {
	m.t.Scan(r, from, fn)
}
func (m *mtmOrdered) Len(r mtm.Reader) int                   { return m.t.Len(r) }
func (m *mtmOrdered) Do(fn func(tx *mtm.Tx) error) error     { return m.do(fn) }
func (m *mtmOrdered) View(fn func(r mtm.Reader) error) error { return m.view(fn) }
func (m *mtmOrdered) Backend() Backend                       { return BackendMTM }

// OrderedRBTree adapts an *RBTree (Insert/InOrder vocabulary) to
// OrderedMap, for callers that want the red-black balancing policy
// behind the common interface.
func OrderedRBTree(env Env, rootPtr pmem.Addr) OrderedMap {
	return &rbOrdered{mtmEnv: &mtmEnv{env: env}, t: NewRBTree(rootPtr)}
}

type rbOrdered struct {
	*mtmEnv
	t *RBTree
}

func (m *rbOrdered) Put(tx *mtm.Tx, key uint64, val []byte) error { return m.t.Insert(tx, key, val) }
func (m *rbOrdered) Get(r mtm.Reader, key uint64) ([]byte, error) { return m.t.Get(r, key) }
func (m *rbOrdered) Delete(tx *mtm.Tx, key uint64) error          { return m.t.Delete(tx, key) }
func (m *rbOrdered) Contains(r mtm.Reader, key uint64) bool       { return m.t.Contains(r, key) }
func (m *rbOrdered) Scan(r mtm.Reader, from uint64, fn func(key uint64, val []byte) bool) {
	m.t.InOrder(r, func(key uint64, payload []byte) bool {
		if key < from {
			return true
		}
		return fn(key, payload)
	})
}
func (m *rbOrdered) Len(r mtm.Reader) int                   { return m.t.Len(r) }
func (m *rbOrdered) Do(fn func(tx *mtm.Tx) error) error     { return m.do(fn) }
func (m *rbOrdered) View(fn func(r mtm.Reader) error) error { return m.view(fn) }
func (m *rbOrdered) Backend() Backend                       { return BackendMTM }

// OrderedAVL adapts an *AVL (byte-string keys) to OrderedMap with
// big-endian uint64 keys, whose byte order matches integer order.
func OrderedAVL(env Env, rootPtr pmem.Addr) OrderedMap {
	return &avlOrdered{mtmEnv: &mtmEnv{env: env}, t: NewAVL(rootPtr)}
}

type avlOrdered struct {
	*mtmEnv
	t *AVL
}

func avlKeyBytes(key uint64) []byte {
	var k [8]byte
	binary.BigEndian.PutUint64(k[:], key)
	return k[:]
}

func (m *avlOrdered) Put(tx *mtm.Tx, key uint64, val []byte) error {
	return m.t.Put(tx, avlKeyBytes(key), val)
}
func (m *avlOrdered) Get(r mtm.Reader, key uint64) ([]byte, error) {
	return m.t.Get(r, avlKeyBytes(key))
}
func (m *avlOrdered) Delete(tx *mtm.Tx, key uint64) error { return m.t.Delete(tx, avlKeyBytes(key)) }
func (m *avlOrdered) Contains(r mtm.Reader, key uint64) bool {
	return m.t.Contains(r, avlKeyBytes(key))
}
func (m *avlOrdered) Scan(r mtm.Reader, from uint64, fn func(key uint64, val []byte) bool) {
	m.t.Scan(r, avlKeyBytes(from), func(key, val []byte) bool {
		return fn(binary.BigEndian.Uint64(key), val)
	})
}
func (m *avlOrdered) Len(r mtm.Reader) int                   { return m.t.Len(r) }
func (m *avlOrdered) Do(fn func(tx *mtm.Tx) error) error     { return m.do(fn) }
func (m *avlOrdered) View(fn func(r mtm.Reader) error) error { return m.view(fn) }
func (m *avlOrdered) Backend() Backend                       { return BackendMTM }

// modErr maps the mod package's sentinel onto the pds one so callers
// match errors.Is(err, pds.ErrNotFound) regardless of backend.
func modErr(err error) error {
	if errors.Is(err, mod.ErrNotFound) {
		return ErrNotFound
	}
	return err
}

// modReader resolves the reader for a MOD adapter call: a *mod.Snap
// pins the caller to one snapshot; anything else (typically nil, or an
// mtm reader leaking through mixed code) reads the live structure.
func modSnap(r mtm.Reader) (*mod.Snap, bool) {
	s, ok := r.(*mod.Snap)
	return s, ok
}

// modOrdered adapts *mod.Map to OrderedMap. Mutations ignore tx and
// self-commit (single fence); reads honor a *mod.Snap reader.
type modOrdered struct{ m *mod.Map }

func (a *modOrdered) Put(_ *mtm.Tx, key uint64, val []byte) error { return a.m.Put(key, val) }
func (a *modOrdered) Get(r mtm.Reader, key uint64) ([]byte, error) {
	if s, ok := modSnap(r); ok {
		v, err := s.Get(key)
		return v, modErr(err)
	}
	v, err := a.m.Get(key)
	return v, modErr(err)
}
func (a *modOrdered) Delete(_ *mtm.Tx, key uint64) error { return modErr(a.m.Delete(key)) }
func (a *modOrdered) Contains(r mtm.Reader, key uint64) bool {
	if s, ok := modSnap(r); ok {
		return s.Contains(key)
	}
	return a.m.Contains(key)
}
func (a *modOrdered) Scan(r mtm.Reader, from uint64, fn func(key uint64, val []byte) bool) {
	if s, ok := modSnap(r); ok {
		s.Scan(from, fn)
		return
	}
	a.m.Scan(from, fn)
}
func (a *modOrdered) Len(r mtm.Reader) int {
	if s, ok := modSnap(r); ok {
		return s.Len()
	}
	return a.m.Len()
}

// Do runs fn with a nil tx: MOD mutations are individually
// self-committing, so the callback is a convenience grouping only — it
// is NOT atomic across the operations inside it.
func (a *modOrdered) Do(fn func(tx *mtm.Tx) error) error { return fn(nil) }

// View pins a snapshot for the duration of fn; every read through the
// passed reader sees one consistent state, concurrent with writers.
func (a *modOrdered) View(fn func(r mtm.Reader) error) error {
	s := a.m.Snapshot()
	defer s.Release()
	return fn(s)
}
func (a *modOrdered) Backend() Backend { return BackendMOD }

// Mod returns the underlying shadow-update map (Sync, Snapshot,
// PinnedRoots) of a BackendMOD OrderedMap, or nil.
func (a *modOrdered) Mod() *mod.Map { return a.m }

// modMap adapts *mod.Map to the unordered Map interface (the treap is
// ordered anyway; Scan just starts at zero).
type modMap struct{ m *mod.Map }

func (a *modMap) Put(_ *mtm.Tx, key uint64, val []byte) error { return a.m.Put(key, val) }
func (a *modMap) Get(r mtm.Reader, key uint64) ([]byte, error) {
	if s, ok := modSnap(r); ok {
		v, err := s.Get(key)
		return v, modErr(err)
	}
	v, err := a.m.Get(key)
	return v, modErr(err)
}
func (a *modMap) Delete(_ *mtm.Tx, key uint64) error { return modErr(a.m.Delete(key)) }
func (a *modMap) Contains(r mtm.Reader, key uint64) bool {
	if s, ok := modSnap(r); ok {
		return s.Contains(key)
	}
	return a.m.Contains(key)
}
func (a *modMap) Scan(r mtm.Reader, fn func(key uint64, val []byte) bool) {
	if s, ok := modSnap(r); ok {
		s.Scan(0, fn)
		return
	}
	a.m.Scan(0, fn)
}
func (a *modMap) Len(r mtm.Reader) int64 {
	if s, ok := modSnap(r); ok {
		return int64(s.Len())
	}
	return int64(a.m.Len())
}
func (a *modMap) Do(fn func(tx *mtm.Tx) error) error { return fn(nil) }
func (a *modMap) View(fn func(r mtm.Reader) error) error {
	s := a.m.Snapshot()
	defer s.Release()
	return fn(s)
}
func (a *modMap) Backend() Backend { return BackendMOD }
func (a *modMap) Mod() *mod.Map    { return a.m }

// ringAdapter binds a RingQueue to one memory context behind Queue.
type ringAdapter struct {
	q   *RingQueue
	mem pmem.Memory
}

func (r *ringAdapter) Enqueue(val []byte) error { return r.q.Enqueue(r.mem, val) }
func (r *ringAdapter) Dequeue() ([]byte, error) { return r.q.Dequeue(r.mem) }
func (r *ringAdapter) Peek() ([]byte, error)    { return r.q.Peek(r.mem) }
func (r *ringAdapter) Len() int                 { return r.q.Len(r.mem) }

// modQueue adapts *mod.Queue to Queue, mapping its empty sentinel.
type modQueue struct{ q *mod.Queue }

func (m *modQueue) Enqueue(val []byte) error { return m.q.Enqueue(val) }
func (m *modQueue) Dequeue() ([]byte, error) {
	v, err := m.q.Dequeue()
	if errors.Is(err, mod.ErrQueueEmpty) {
		return nil, ErrQueueEmpty
	}
	return v, err
}
func (m *modQueue) Peek() ([]byte, error) {
	v, err := m.q.Peek()
	if errors.Is(err, mod.ErrQueueEmpty) {
		return nil, ErrQueueEmpty
	}
	return v, err
}
func (m *modQueue) Len() int { return m.q.Len() }
